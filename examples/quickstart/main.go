// Quickstart: certify that a watermelon graph is 2-colorable WITHOUT
// revealing a 2-coloring (Theorem 1.4 of the paper).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func main() {
	// A watermelon graph: two endpoints joined by three internally disjoint
	// paths with 2, 4, and 2 edges. All path lengths share a parity, so the
	// graph is bipartite.
	g := graph.MustWatermelon([]int{2, 4, 2})
	fmt.Printf("instance: %v (bipartite: %v)\n", g, g.IsBipartite())

	// Wrap it as a network instance: default ports, sequential identifiers.
	inst := core.NewInstance(g)

	// The prover assigns certificates: a proper 2-EDGE-coloring of each
	// path plus the endpoint identifiers — never a node coloring.
	scheme := decoders.Watermelon()
	labels, err := scheme.Prover.Certify(inst)
	if err != nil {
		log.Fatalf("prover: %v", err)
	}
	for v, l := range labels {
		// Printing the certificates is this example's point: the reader sees
		// path-structure fields and endpoint identifiers, never a color.
		//lint:ignore certflow the example deliberately shows raw certificates to demonstrate what they do (and do not) contain
		fmt.Printf("  node %d: %s\n", v, l)
	}

	// Every node of the distributed verifier accepts.
	labeled := core.MustNewLabeled(inst, labels)
	outs, err := core.Run(scheme.Decoder, labeled)
	if err != nil {
		log.Fatal(err)
	}
	allAccept := true
	for _, ok := range outs {
		allAccept = allAccept && ok
	}
	fmt.Printf("all nodes accept: %v\n", allAccept)
	fmt.Printf("largest certificate: %d bits (O(log n), Theorem 1.4)\n", scheme.MaxLabelBits(labels))

	// And yet the 2-coloring is hidden: the accepting neighborhood graph
	// built from the paper's two-identifier-assignment construction
	// contains an odd cycle, so by Lemma 3.2 NO local algorithm can extract
	// a proper 2-coloring from these certificates on every instance.
	l1, l2, err := decoders.WatermelonHidingPair()
	if err != nil {
		log.Fatal(err)
	}
	ng, err := nbhd.Build(scheme.Decoder, nbhd.FromLabeled(l1, l2))
	if err != nil {
		log.Fatal(err)
	}
	cyc := ng.OddCycle()
	fmt.Printf("odd cycle of views (hiding witness): length %d\n", len(cyc))
	if _, err := nbhd.NewExtractor(ng, 2, false); err != nil {
		fmt.Printf("extraction decoder cannot be built: %v\n", err)
	}
}
