// Promise-free separation demo: the paper's motivating LCL (Section 1) —
// "3-color the parts of the graph where a 2-colorability certificate is
// valid" — run end to end. Strong soundness makes the task solvable on
// EVERY input, even graphs that are not bipartite and certificates that
// are garbage; without strong soundness (the literal Theorem 1.3 decoder)
// solvability breaks.
//
// Run with: go run ./examples/promisefree
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/lcl"
)

func main() {
	fmt.Println("The LCL Π: output a 3-coloring valid on the certificate-accepted region.")
	fmt.Println()

	// 1. An honest instance: a certified spider. The whole graph accepts;
	//    the solution 3-colors everything.
	s := decoders.DegreeOne()
	g := graph.Spider([]int{2, 3, 2})
	inst := core.NewAnonymousInstance(g)
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		log.Fatal(err)
	}
	l := core.MustNewLabeled(inst, labels)
	sol, err := lcl.Solve(s.Decoder, l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest spider: solution %v (valid: %v)\n", sol, lcl.Check(s.Decoder, l, sol) == nil)

	// 2. Promise-free: a NON-bipartite graph with adversarial certificates.
	//    Some nodes reject; the accepted region is still 2-colorable
	//    (strong soundness) and Π remains solvable.
	rng := rand.New(rand.NewSource(7))
	bad := graph.Petersen()
	badInst := core.NewAnonymousInstance(bad)
	junk := make([]string, bad.N())
	for v := range junk {
		junk[v] = decoders.DegOneAlphabet()[rng.Intn(4)]
	}
	badL := core.MustNewLabeled(badInst, junk)
	accepting, err := core.AcceptingSet(s.Decoder, badL)
	if err != nil {
		log.Fatal(err)
	}
	sol, err = lcl.Solve(s.Decoder, badL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial Petersen: %d/%d nodes accept; Π still solvable: %v\n",
		len(accepting), bad.N(), lcl.Check(s.Decoder, badL, sol) == nil)

	// 3. Why STRONG soundness: with the literal Theorem 1.3 decoder the
	//    accepted region can be an odd cycle and the solver fails.
	lit := decoders.ShatterLiteral()
	cg := graph.MustFromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {5, 7}, {7, 8}, {8, 1},
	})
	cInst := core.NewInstance(cg)
	cLabels := []string{
		decoders.ShatterPointLabelLiteral(1),
		decoders.ShatterNeighborLabel(1, []int{0, 0}),
		decoders.ShatterCompLabel(1, 1, 0),
		decoders.ShatterCompLabel(1, 1, 1),
		decoders.ShatterCompLabel(1, 1, 0),
		decoders.ShatterNeighborLabel(1, []int{0, 1}),
		decoders.ShatterPointLabelLiteral(1),
		decoders.ShatterCompLabel(1, 2, 1),
		decoders.ShatterCompLabel(1, 2, 0),
	}
	cL := core.MustNewLabeled(cInst, cLabels)
	if _, err := lcl.Solve(lit.Decoder, cL); err != nil {
		fmt.Printf("literal shatter decoder: Π UNSOLVABLE — %v\n", err)
	} else {
		log.Fatal("expected the literal decoder's counterexample to break Π")
	}
	patched := decoders.Shatter()
	if sol, err := lcl.Solve(patched.Decoder, cL); err == nil && lcl.Check(patched.Decoder, cL, sol) == nil {
		fmt.Println("patched shatter decoder: Π solvable again on the same input.")
	} else {
		log.Fatal("patched decoder should restore solvability")
	}
}
