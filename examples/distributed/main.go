// Distributed verification demo: run the shatter-point scheme on a grid as
// a genuine synchronous message-passing computation — one goroutine per
// node — and report the communication profile, then corrupt one
// certificate and watch the affected neighborhood reject.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sim"
)

func main() {
	g := graph.Grid(4, 5)
	inst := core.NewInstance(g)
	scheme := decoders.Shatter()

	fmt.Printf("instance: 4x5 grid, %d nodes, %d edges\n", g.N(), g.M())
	accept, stats, err := sim.RunScheme(scheme, inst)
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for _, a := range accept {
		if a {
			ok++
		}
	}
	fmt.Printf("message-passing verification: %d rounds, %d messages, %d flooded records\n",
		stats.Rounds, stats.Messages, stats.Records)
	fmt.Printf("verdict: %d/%d nodes accept\n", ok, g.N())

	// Now corrupt the certificate of one node and re-verify: soundness in
	// action — rejection is local to the corrupted neighborhood.
	labels, err := scheme.Prover.Certify(inst)
	if err != nil {
		log.Fatal(err)
	}
	const victim = 7
	labels[victim] = decoders.ShatterCompLabel(99, 1, 0) // wrong shatter identifier
	l := core.MustNewLabeled(inst, labels)
	views, _, err := sim.Gather(l, scheme.Decoder.Rounds())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter corrupting node %d's certificate:\n", victim)
	rejecting := 0
	for v, mu := range views {
		if !scheme.Decoder.Decide(mu) {
			rejecting++
			fmt.Printf("  node %d rejects (distance %d from the corruption)\n", v, g.Dist(v, victim))
		}
	}
	if rejecting == 0 {
		log.Fatal("corruption went unnoticed — soundness bug!")
	}
	fmt.Printf("%d nodes reject; all within 1 hop of the corruption (one-round verification).\n", rejecting)
}
