// Hiding audit: for each certification scheme, attempt to EXTRACT a proper
// 2-coloring from its certificates via the Lemma 3.2 extraction decoder,
// and report where extraction succeeds (the revealing baseline) and where
// it provably fails (the paper's hiding schemes).
//
// Run with: go run ./examples/hidingaudit
package main

import (
	"fmt"
	"log"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func main() {
	fmt.Println("=== Revealing baseline: Trivial(2) ===")
	auditTrivial()

	fmt.Println()
	fmt.Println("=== Hiding schemes ===")
	auditHiding()
}

func auditTrivial() {
	s := decoders.Trivial(2)
	// Exhaustive slice of V(D, 4) over connected bipartite instances.
	var insts []core.Instance
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if g.IsBipartite() {
				gc := g.Clone()
				graph.EnumPorts(gc, func(pt *graph.Ports) bool {
					insts = append(insts, core.Instance{G: gc, Prt: pt, NBound: 4})
					return true
				})
			}
			return true
		})
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings([]string{"0", "1"}, insts...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V(D,4): %d views, 2-colorable: %v\n", ng.Size(), ng.IsKColorable(2))

	ex, err := nbhd.NewExtractor(ng, 2, true)
	if err != nil {
		log.Fatalf("extractor should exist for the revealing scheme: %v", err)
	}
	target := core.NewAnonymousInstance(graph.MustCycle(4))
	labels, err := s.Prover.Certify(target)
	if err != nil {
		log.Fatal(err)
	}
	witness, err := ex.ExtractWitness(core.MustNewLabeled(target, labels), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted coloring of C4: %v (proper: %v)\n", witness, target.G.IsProperColoring(witness))
	fmt.Println("-> the trivial certificate IS the coloring; nothing is hidden.")
}

func auditHiding() {
	type audit struct {
		name string
		ng   func() (*nbhd.NGraph, bool, error) // graph, anonymous
	}
	audits := []audit{
		{"degree-one (Lemma 4.1)", func() (*nbhd.NGraph, bool, error) {
			s := decoders.DegreeOne()
			ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(4)...))
			return ng, true, err
		}},
		{"even-cycle (Lemma 4.2)", func() (*nbhd.NGraph, bool, error) {
			s := decoders.EvenCycle()
			family, err := decoders.EvenCycleFamily(4, 6)
			if err != nil {
				return nil, true, err
			}
			ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(family...))
			return ng, true, err
		}},
		{"shatter (Theorem 1.3)", func() (*nbhd.NGraph, bool, error) {
			s := decoders.Shatter()
			l1, l2 := decoders.ShatterHidingPair()
			ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(l1, l2))
			return ng, false, err
		}},
		{"watermelon (Theorem 1.4)", func() (*nbhd.NGraph, bool, error) {
			s := decoders.Watermelon()
			l1, l2, err := decoders.WatermelonHidingPair()
			if err != nil {
				return nil, false, err
			}
			ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(l1, l2))
			return ng, false, err
		}},
	}
	for _, a := range audits {
		ng, anonymous, err := a.ng()
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		cyc := ng.OddCycle()
		_, exErr := nbhd.NewExtractor(ng, 2, anonymous)
		fmt.Printf("%-28s views=%-4d odd cycle: %-3v extraction: %v\n",
			a.name, ng.Size(), cyc != nil, exErr)
	}
	fmt.Println("-> every hiding scheme's neighborhood slice is non-2-colorable;")
	fmt.Println("   by Lemma 3.2 no r-round decoder can extract the coloring.")
}
