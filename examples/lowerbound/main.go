// Lower-bound walkthrough: the Section 5 pipeline, narrated. A strawman
// decoder that accepts any "ok"-labeled node pretends to be a strong and
// hiding LCP; the realizability machinery mechanically refutes it by
// assembling the counterexample instance G_bad of Lemma 5.1 from an odd
// cycle of accepting views.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"errors"
	"fmt"
	"log"

	"hidinglcp/internal/core"
	"hidinglcp/internal/forgetful"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/view"
)

func main() {
	okDecoder := core.NewDecoder(1, false, func(mu *view.View) bool {
		return mu.Labels[view.Center] == "ok"
	})

	fmt.Println("Step 1: collect accepting views from yes-instances.")
	// Three bipartite path instances; the center of each sees the other two
	// identifiers of {1, 2, 3}.
	var anchorViews []*view.View
	for _, ids := range []graph.IDs{{2, 1, 3}, {1, 2, 3}, {1, 3, 2}} {
		g := graph.Path(3)
		inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: ids, NBound: 3}
		l := core.MustNewLabeled(inst, []string{"ok", "ok", "ok"})
		mu, err := l.ViewOf(1, 1)
		if err != nil {
			log.Fatal(err)
		}
		anchorViews = append(anchorViews, mu)
		fmt.Printf("  anchor: center id %d sees ids %v\n", mu.IDs[view.Center], neighborsOf(mu))
	}

	fmt.Println("Step 2: check realizability (Section 5.1 compatibility).")
	anchors, err := forgetful.NewAnchors(anchorViews...)
	if err != nil {
		log.Fatal(err)
	}
	if err := forgetful.CheckRealizable(anchorViews, anchors); err != nil {
		log.Fatalf("not realizable: %v", err)
	}
	fmt.Println("  realizable: every shared identifier has compatible occurrences.")

	fmt.Println("Step 3: assemble G_bad (Lemma 5.1).")
	gBad, _, err := forgetful.BuildGBad(anchors, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  G_bad = %v, bipartite: %v\n", gBad.G, gBad.G.IsBipartite())

	fmt.Println("Step 4: the decoder accepts all of G_bad -> strong soundness refuted.")
	err = core.CheckStrongSoundness(okDecoder, core.TwoCol(), gBad)
	var violation *core.StrongSoundnessViolation
	if !errors.As(err, &violation) {
		log.Fatalf("expected a violation, got: %v", err)
	}
	fmt.Printf("  accepting set %v induces a non-bipartite subgraph.\n", violation.Accepting)

	fmt.Println("Step 5: the Fig. 8 escape walk on a 1-forgetful host (Lemma 5.4).")
	host := graph.MustCycle(12)
	walk, err := forgetful.EscapeWalk(host, 0, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  closed walk %v: non-backtracking %v, even length %v\n",
		walk, forgetful.IsNonBacktracking(walk), (len(walk)-1)%2 == 0)

	fmt.Println("Step 6: lift the walk into the accepting neighborhood graph.")
	labels := make([]string, host.N())
	for i := range labels {
		labels[i] = "ok"
	}
	l := core.MustNewLabeled(core.NewInstance(host), labels)
	ng, err := nbhd.Build(okDecoder, nbhd.FromLabeled(l, gBad))
	if err != nil {
		log.Fatal(err)
	}
	odd := forgetful.FindOddClosedWalk(ng, 9, true)
	fmt.Printf("  V(D,n) slice: %d views; non-backtracking odd walk found: %v (length %d)\n",
		ng.Size(), odd != nil, len(odd)-1)
	fmt.Println("Conclusion: a decoder accepting an odd view-cycle on realizable anchors")
	fmt.Println("cannot be strongly sound — the executable core of Theorem 1.5.")
}

func neighborsOf(mu *view.View) []int {
	var ids []int
	for _, w := range mu.Adj[view.Center] {
		ids = append(ids, mu.IDs[w])
	}
	return ids
}
