module hidinglcp

go 1.22
