package hidinglcp_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/view"
)

// These tests pin the pooled-memory isolation contract of the allocation-free
// pipeline: everything a build or a soundness check returns must be fully
// owned by the caller. If arena views, pooled key scratch, or reused
// enumeration slices ever leaked into a result, mutating that result would
// corrupt shared state and change the outcome of a subsequent run.

// ngFingerprint renders every observable property of a neighborhood graph
// into one string: canonical keys in node order, loops, and the adjacency
// structure.
func ngFingerprint(ng *nbhd.NGraph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d m=%d\n", ng.Size(), ng.EdgeCount())
	for i := 0; i < ng.Size(); i++ {
		mu := ng.ViewAt(i)
		fmt.Fprintf(&sb, "%d loop=%v key=%q labels=%v adj=%v\n",
			i, ng.HasLoop(i), mu.Key(), mu.Labels, ng.Graph().Neighbors(i))
	}
	return sb.String()
}

// TestBuildResultAliasing mutates every mutable structure reachable from one
// build's result — view label slices, the adjacency rows, the accepting
// graph — and asserts that an identical fresh build is bit-identical to the
// pristine first fingerprint.
func TestBuildResultAliasing(t *testing.T) {
	s := decoders.DegreeOne()
	build := func() *nbhd.NGraph {
		ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(3)...))
		if err != nil {
			t.Fatal(err)
		}
		return ng
	}

	first := build()
	want := ngFingerprint(first)

	// Vandalize the first result as thoroughly as the API allows. Views are
	// contractually immutable, so this violates the contract on purpose: the
	// point is that the damage must stay confined to `first` and not reach
	// any pooled or interned state a fresh build consumes.
	for i := 0; i < first.Size(); i++ {
		mu := first.ViewAt(i)
		for j := range mu.Labels {
			mu.Labels[j] = "vandalized"
		}
		for _, row := range mu.Adj {
			for k := range row {
				row[k] = -row[k] - 1
			}
		}
		for j := range mu.Dist {
			mu.Dist[j] = 99
		}
	}

	second := build()
	if got := ngFingerprint(second); got != want {
		t.Errorf("rebuild after mutating the first result diverged:\nfirst (pristine):\n%s\nsecond:\n%s", want, got)
	}
}

// acceptAllDecoder accepts every view — deliberately unsound, so a
// strong-soundness search is guaranteed to return a witness.
type acceptAllDecoder struct{}

func (acceptAllDecoder) Rounds() int            { return 1 }
func (acceptAllDecoder) Anonymous() bool        { return true }
func (acceptAllDecoder) Decide(*view.View) bool { return true }

// TestViolationWitnessAliasing mutates a returned strong-soundness witness
// and asserts the identical violation is found again on a re-run.
func TestViolationWitnessAliasing(t *testing.T) {
	// Every node accepts every labeling, so on an odd cycle the accepting
	// set induces the whole (non-2-colorable) cycle: the very first labeling
	// is a violation.
	inst := core.NewAnonymousInstance(graph.MustCycle(5))
	alphabet := []string{"a", "b"}

	find := func() *core.StrongSoundnessViolation {
		err := core.ExhaustiveStrongSoundness(acceptAllDecoder{}, core.TwoCol(), inst, alphabet)
		var v *core.StrongSoundnessViolation
		if !errors.As(err, &v) {
			t.Fatalf("expected a strong-soundness violation, got %v", err)
		}
		return v
	}

	first := find()
	want := fmt.Sprintf("%v|%v", first.Labeled.Labels, first.Accepting)

	for i := range first.Labeled.Labels {
		first.Labeled.Labels[i] = "vandalized"
	}
	for i := range first.Accepting {
		first.Accepting[i] = -1
	}

	second := find()
	if got := fmt.Sprintf("%v|%v", second.Labeled.Labels, second.Accepting); got != want {
		t.Errorf("witness after mutating the first one = %s, want %s", got, want)
	}
}
