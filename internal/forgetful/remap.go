package forgetful

import (
	"fmt"
	"sort"

	"hidinglcp/internal/view"
)

// This file implements the identifier surgery of Lemma 5.2: when a
// collection of views is only COMPONENT-WISE realizable — the occurrences
// of some identifier i split into groups that are pairwise incompatible —
// an order-invariant decoder lets us rename i to a fresh identifier inside
// all but one group, making the collection realizable outright. The paper
// allocates the interval I_i = [(i-1)|V(H)|+1, i|V(H)|] per original
// identifier so the renaming preserves relative order globally.

// IDComponents computes the connected components of S(id) exactly as
// Section 5.1 defines it: the subgraph of H induced by the views containing
// a node with the given identifier, under H's own adjacency (edges is the
// edge list of H over view indices 0..len(h)-1). It returns one sorted
// slice of view indices per component, components ordered by smallest
// member.
func IDComponents(h []*view.View, edges [][2]int, id int) [][]int {
	holder := make(map[int]bool, len(h))
	for hi, mu := range h {
		if mu.LocalNodeWithID(id) >= 0 {
			holder[hi] = true
		}
	}
	parent := make(map[int]int, len(holder))
	for hi := range holder {
		parent[hi] = hi
	}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		if holder[e[0]] && holder[e[1]] {
			parent[find(e[0])] = find(e[1])
		}
	}
	groups := map[int][]int{}
	for hi := range holder {
		root := find(hi)
		groups[root] = append(groups[root], hi)
	}
	var out [][]int
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// RemapIDs returns deep copies of the views with identifiers substituted
// according to remap (identifiers not in the map are kept). It errors if
// the substitution would collide two identifiers within one view.
func RemapIDs(h []*view.View, remap map[int]int) ([]*view.View, error) {
	out := make([]*view.View, len(h))
	for hi, mu := range h {
		c := mu.Anonymize() // deep copy; IDs restored below
		seen := map[int]bool{}
		for i, id := range mu.IDs {
			next := id
			if to, ok := remap[id]; ok {
				next = to
			}
			if next != 0 && seen[next] {
				return nil, fmt.Errorf("view %d: remap collides on identifier %d", hi, next)
			}
			seen[next] = true
			c.IDs[i] = next
			if next > c.NBound {
				c.NBound = next
			}
		}
		out[hi] = c
	}
	return out, nil
}

// SplitIdentifier performs one Lemma 5.2 step on the view collection h
// (with H-adjacency edges): if identifier id occurs in more than one
// component of S(id), every component after the first is renamed to a
// fresh identifier drawn from freshBase, freshBase+1, ... — preserving
// relative order requires the caller to pick freshBase inside the interval
// the paper allocates to id. The rewrite changes the decoder's outputs
// only if the decoder is not order-invariant, which is exactly the
// hypothesis of Lemma 5.2. It returns the rewritten collection and the
// number of fresh identifiers used.
func SplitIdentifier(h []*view.View, edges [][2]int, id, freshBase int) ([]*view.View, int, error) {
	comps := IDComponents(h, edges, id)
	if len(comps) <= 1 {
		return h, 0, nil
	}
	out := append([]*view.View(nil), h...)
	used := 0
	for ci := 1; ci < len(comps); ci++ {
		fresh := freshBase + used
		used++
		remap := map[int]int{id: fresh}
		for _, hi := range comps[ci] {
			replaced, err := RemapIDs([]*view.View{out[hi]}, remap)
			if err != nil {
				return nil, 0, fmt.Errorf("splitting identifier %d in view %d: %w", id, hi, err)
			}
			out[hi] = replaced[0]
		}
	}
	return out, used, nil
}
