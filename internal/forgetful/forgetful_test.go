package forgetful

import (
	"testing"

	"hidinglcp/internal/graph"
)

func TestEscapePathLongCycle(t *testing.T) {
	// On a long cycle, escaping from v away from u is walking the other way.
	g := graph.MustCycle(12)
	p := EscapePath(g, 1, 0, 2)
	if p == nil {
		t.Fatal("no escape path on C12")
	}
	if len(p) != 3 || p[0] != 1 {
		t.Fatalf("path %v, want length-2 path from 1", p)
	}
	// It must walk away: 1 -> 2 -> 3.
	if p[1] != 2 || p[2] != 3 {
		t.Errorf("path %v, want [1 2 3]", p)
	}
}

func TestEscapePathRadiusZero(t *testing.T) {
	g := graph.Path(3)
	p := EscapePath(g, 1, 0, 0)
	if len(p) != 1 || p[0] != 1 {
		t.Errorf("radius-0 escape = %v, want [1]", p)
	}
}

func TestEscapePathLeafFails(t *testing.T) {
	// A leaf's only neighbor is u itself: no escape.
	g := graph.Path(5)
	if p := EscapePath(g, 0, 1, 1); p != nil {
		t.Errorf("escape from a leaf = %v, want nil", p)
	}
}

func TestIsRForgetful(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		r    int
		want bool
	}{
		{"long odd cycle r1", graph.MustCycle(9), 1, true},
		{"long even cycle r1", graph.MustCycle(10), 1, true},
		{"short cycle r1", graph.MustCycle(3), 1, false},
		// C5 has diameter 2 < 2r+1 = 3, so by Lemma 2.1 it cannot be
		// 1-forgetful: walking away from u's 1-ball stalls at distance 2.
		{"C5 r1", graph.MustCycle(5), 1, false},
		{"C7 r1", graph.MustCycle(7), 1, true},
		{"C5 r2", graph.MustCycle(5), 2, false},
		{"C12 r2", graph.MustCycle(12), 2, true},
		{"path r1", graph.Path(6), 1, false}, // leaves cannot escape
		{"complete r1", graph.Complete(5), 1, false},
		{"grid 4x4 r1", graph.Grid(4, 4), 1, false}, // corner boundary effect
		{"star", graph.Star(5), 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, fv, fu := IsRForgetful(tt.g, tt.r)
			if got != tt.want {
				t.Errorf("IsRForgetful = %v (witness %d,%d), want %v", got, fv, fu, tt.want)
			}
		})
	}
}

func TestTorusForgetful(t *testing.T) {
	// Large even tori: bipartite, min degree 4, not cycles, and r-forgetful
	// — exactly the graphs Theorem 1.2's class needs to be non-empty.
	// (Smaller tori like 4x6 fail: the wrap-around makes some escape
	// direction re-approach u's ball.)
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsBipartite() {
		t.Fatal("6x6 torus should be bipartite")
	}
	ok, fv, fu := IsRForgetful(g, 1)
	if !ok {
		t.Errorf("6x6 torus not 1-forgetful (witness %d,%d)", fv, fu)
	}
	small, _ := graph.Torus(4, 4)
	if ok, _, _ := IsRForgetful(small, 1); ok {
		t.Error("4x4 torus should not be 1-forgetful (wrap-around too tight)")
	}
}

func TestCheckLemma21(t *testing.T) {
	// Every r-forgetful graph in the corpus has diameter >= 2r+1.
	graphs := []*graph.Graph{
		graph.MustCycle(5), graph.MustCycle(9), graph.MustCycle(12),
		graph.Grid(4, 4), graph.Complete(4), graph.Path(7),
	}
	if tor, err := graph.Torus(4, 6); err == nil {
		graphs = append(graphs, tor)
	}
	for _, g := range graphs {
		for r := 1; r <= 2; r++ {
			if err := CheckLemma21(g, r); err != nil {
				t.Errorf("Lemma 2.1 violated: %v", err)
			}
		}
	}
}

func TestCheckLemma21Exhaustive(t *testing.T) {
	// Lemma 2.1 on every connected graph with up to 6 nodes, r = 1.
	graph.EnumConnectedGraphs(6, func(g *graph.Graph) bool {
		if err := CheckLemma21(g, 1); err != nil {
			t.Errorf("Lemma 2.1 violated: %v", err)
			return false
		}
		return true
	})
}

func TestFarNode(t *testing.T) {
	g := graph.MustCycle(12)
	z := FarNode(g, 0, 1, 1)
	if z < 0 {
		t.Fatal("no far node on C12")
	}
	if g.Dist(z, 0) <= 2 || g.Dist(z, 1) <= 2 {
		t.Errorf("far node %d too close", z)
	}
	if z := FarNode(graph.MustCycle(4), 0, 1, 1); z >= 0 {
		t.Errorf("C4 has no far node, got %d", z)
	}
}

func TestEscapeWalk(t *testing.T) {
	g := graph.MustCycle(12)
	walk, err := EscapeWalk(g, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !IsClosedWalk(g, walk) {
		t.Fatalf("walk %v not closed", walk)
	}
	if (len(walk)-1)%2 != 0 {
		t.Errorf("walk %v has odd length in a bipartite host", walk)
	}
	if !IsNonBacktracking(walk) {
		t.Errorf("walk %v backtracks", walk)
	}
	if walk[0] != 0 || walk[1] != 1 {
		t.Errorf("walk %v does not start with edge u-v", walk)
	}
}

func TestEscapeWalkOnTorus(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := EscapeWalk(g, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !IsClosedWalk(g, walk) || !IsNonBacktracking(walk) {
		t.Errorf("torus walk %v invalid", walk)
	}
	if (len(walk)-1)%2 != 0 {
		t.Errorf("walk %v has odd length in a bipartite torus", walk)
	}
}

func TestEscapeWalkErrors(t *testing.T) {
	if _, err := EscapeWalk(graph.MustCycle(6), 0, 2, 1); err == nil {
		t.Error("non-adjacent endpoints accepted")
	}
	if _, err := EscapeWalk(graph.Path(6), 1, 2, 1); err == nil {
		t.Error("min degree 1 host accepted")
	}
	if _, err := EscapeWalk(graph.MustCycle(4), 0, 1, 1); err == nil {
		t.Error("C4 lacks a far node; expected error")
	}
}

func TestIsClosedWalk(t *testing.T) {
	g := graph.MustCycle(4)
	tests := []struct {
		name string
		walk []int
		want bool
	}{
		{"closed square", []int{0, 1, 2, 3, 0}, true},
		{"open", []int{0, 1, 2}, false},
		{"non-edge", []int{0, 2, 0}, false},
		{"too short", []int{0}, false},
		{"back and forth", []int{0, 1, 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsClosedWalk(g, tt.walk); got != tt.want {
				t.Errorf("IsClosedWalk(%v) = %v, want %v", tt.walk, got, tt.want)
			}
		})
	}
}

func TestIsNonBacktracking(t *testing.T) {
	tests := []struct {
		name string
		walk []int
		want bool
	}{
		{"square", []int{0, 1, 2, 3, 0}, true},
		{"pendulum", []int{0, 1, 0}, false},
		{"backtrack inside", []int{0, 1, 2, 1, 0}, false},
		{"open walk", []int{0, 1, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsNonBacktracking(tt.walk); got != tt.want {
				t.Errorf("IsNonBacktracking(%v) = %v, want %v", tt.walk, got, tt.want)
			}
		})
	}
}
