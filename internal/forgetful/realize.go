package forgetful

import (
	"fmt"
	"sort"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Anchors is the per-identifier view family of the realizability definition
// in Section 5.1: Anchors[i] is the view μ_i whose center carries identifier
// i, with which every occurrence of identifier i in the realized subgraph
// must be compatible.
type Anchors map[int]*view.View

// NewAnchors indexes views by their center identifiers. It returns an error
// on anonymous views or duplicate center identifiers.
func NewAnchors(views ...*view.View) (Anchors, error) {
	a := make(Anchors, len(views))
	for _, mu := range views {
		id := mu.IDs[view.Center]
		if id == 0 {
			return nil, fmt.Errorf("anchor view has no center identifier")
		}
		if _, dup := a[id]; dup {
			return nil, fmt.Errorf("duplicate anchor for identifier %d", id)
		}
		a[id] = mu
	}
	return a, nil
}

// CheckRealizable verifies the realizability condition of Section 5.1 for a
// collection of views H: for every identifier i appearing in a view of H
// with an anchor, that occurrence must be compatible with the anchor.
// Identifiers without anchors make the collection non-realizable.
func CheckRealizable(h []*view.View, anchors Anchors) error {
	for hi, mu := range h {
		for local, id := range mu.IDs {
			if id == 0 {
				return fmt.Errorf("view %d of H is anonymous", hi)
			}
			anchor, ok := anchors[id]
			if !ok {
				return fmt.Errorf("identifier %d (view %d of H) has no anchor", id, hi)
			}
			if !view.Compatible(mu, local, anchor) {
				return fmt.Errorf("identifier %d in view %d of H is incompatible with its anchor", id, hi)
			}
		}
	}
	return nil
}

// BuildGBad performs the Lemma 5.1 construction: it assembles the instance
// G_bad whose node set is the anchor identifiers, with an edge {i, j}
// whenever some anchor contains an edge between nodes carrying identifiers
// i and j, and with ports and labels read off the anchors. The returned map
// sends each identifier to its node in G_bad.
//
// The construction validates the consistency the paper's compatibility
// notion guarantees (and that radius-1 anchors may lack): edge symmetry
// between anchors, agreement of labels, and per-node port bijectivity. Any
// inconsistency is reported as an error.
func BuildGBad(anchors Anchors, nBound int) (core.Labeled, map[int]int, error) {
	var fail core.Labeled
	// Deterministic node order: sorted identifiers.
	ids := make([]int, 0, len(anchors))
	for id := range anchors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	nodeOf := make(map[int]int, len(ids))
	for i, id := range ids {
		nodeOf[id] = i
	}

	// Collect each anchor's center arms: neighbor identifier -> port.
	type arm struct{ port int }
	arms := make(map[int]map[int]arm, len(anchors)) // center id -> nb id -> arm
	for id, mu := range anchors {
		if got := mu.IDs[view.Center]; got != id {
			return fail, nil, fmt.Errorf("anchor for %d has center identifier %d", id, got)
		}
		m := make(map[int]arm)
		for _, w := range mu.Adj[view.Center] {
			nbID := mu.IDs[w]
			if nbID == 0 {
				return fail, nil, fmt.Errorf("anchor %d has an anonymous neighbor", id)
			}
			if _, ok := anchors[nbID]; !ok {
				return fail, nil, fmt.Errorf("anchor %d names neighbor %d which has no anchor", id, nbID)
			}
			p, ok := mu.Port(view.Center, w)
			if !ok {
				return fail, nil, fmt.Errorf("anchor %d lacks a port toward %d", id, nbID)
			}
			if _, dup := m[nbID]; dup {
				return fail, nil, fmt.Errorf("anchor %d has two edges toward identifier %d", id, nbID)
			}
			m[nbID] = arm{port: p}
		}
		arms[id] = m
	}

	// Edge symmetry: i names j iff j names i.
	for i, m := range arms {
		for j := range m {
			if _, ok := arms[j][i]; !ok {
				return fail, nil, fmt.Errorf("anchor %d names %d but not vice versa", i, j)
			}
		}
	}

	g := graph.New(len(ids))
	for i, m := range arms {
		for j := range m {
			if nodeOf[i] < nodeOf[j] {
				if err := g.AddEdge(nodeOf[i], nodeOf[j]); err != nil {
					return fail, nil, fmt.Errorf("adding edge {%d,%d}: %w", i, j, err)
				}
			}
		}
	}

	// Ports: each anchor dictates its own node's ports. Validate they form
	// a bijection onto [deg].
	perm := make([][]int, len(ids))
	for i, id := range ids {
		deg := g.Degree(i)
		perm[i] = make([]int, deg)
		seen := make([]bool, deg+1)
		nbs := g.Neighbors(i) // sorted node indices
		for idx, nbNode := range nbs {
			nbID := ids[nbNode]
			p := arms[id][nbID].port
			if p < 1 || p > deg || seen[p] {
				return fail, nil, fmt.Errorf("anchor %d assigns invalid/duplicate port %d (degree %d)", id, p, deg)
			}
			seen[p] = true
			perm[i][p-1] = idx
		}
	}
	prt, err := graph.PortsFromPerm(g, perm)
	if err != nil {
		return fail, nil, fmt.Errorf("assembling ports: %w", err)
	}

	labels := make([]string, len(ids))
	idAssign := make(graph.IDs, len(ids))
	for i, id := range ids {
		labels[i] = anchors[id].Labels[view.Center]
		idAssign[i] = id
	}
	if nBound < idAssign.Max() {
		nBound = idAssign.Max()
	}
	inst := core.Instance{G: g, Prt: prt, IDs: idAssign, NBound: nBound}
	if err := inst.Validate(); err != nil {
		return fail, nil, fmt.Errorf("assembled instance invalid: %w", err)
	}
	l, err := core.NewLabeled(inst, labels)
	if err != nil {
		return fail, nil, err
	}
	return l, nodeOf, nil
}

// VerifyRealization extracts the radius-r views of G_bad and reports, per
// identifier, whether the realized view equals its anchor. Full equality
// holds when the anchors came from mutually compatible radius-r views of
// rich enough instances (Lemma 5.1); radius-1 anchors from conflicting
// hosts may disagree on far-end structure while a port-oblivious decoder
// still accepts.
func VerifyRealization(l core.Labeled, nodeOf map[int]int, anchors Anchors, r int) (map[int]bool, error) {
	match := make(map[int]bool, len(anchors))
	for id, mu := range anchors {
		got, err := l.ViewOf(nodeOf[id], r)
		if err != nil {
			return nil, err
		}
		// NBound may legitimately differ between anchor hosts and G_bad;
		// compare with the anchor's bound.
		got.NBound = mu.NBound
		match[id] = got.Key() == mu.Key()
	}
	return match, nil
}
