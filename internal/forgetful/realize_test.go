package forgetful

import (
	"errors"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/view"
)

// okDecoder accepts any view whose center label is "ok" — an
// order-invariant (in fact anonymous-capable, but registered as
// non-anonymous so views keep identifiers) strawman whose strong soundness
// the Section 5 pipeline refutes mechanically.
func okDecoder() core.Decoder {
	return core.NewDecoder(1, false, func(mu *view.View) bool {
		return mu.Labels[view.Center] == "ok"
	})
}

// okP3 builds a labeled P3 yes-instance with the given identifiers along
// the path and all labels "ok".
func okP3(ids graph.IDs) core.Labeled {
	g := graph.Path(3)
	inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: ids, NBound: 3}
	return core.MustNewLabeled(inst, []string{"ok", "ok", "ok"})
}

// triangleAnchors returns the three path views whose centers see the other
// two identifiers — a realizable family whose G_bad is a triangle.
func triangleAnchors(t *testing.T) (Anchors, []*view.View) {
	t.Helper()
	hosts := []struct {
		ids    graph.IDs
		center int
	}{
		{graph.IDs{2, 1, 3}, 1},
		{graph.IDs{1, 2, 3}, 1},
		{graph.IDs{1, 3, 2}, 1},
	}
	var views []*view.View
	for _, h := range hosts {
		l := okP3(h.ids)
		mu, err := l.ViewOf(h.center, 1)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, mu)
	}
	anchors, err := NewAnchors(views...)
	if err != nil {
		t.Fatal(err)
	}
	return anchors, views
}

func TestNewAnchorsErrors(t *testing.T) {
	l := okP3(graph.IDs{1, 2, 3})
	mu, err := l.ViewOf(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnchors(mu, mu); err == nil {
		t.Error("duplicate center identifier accepted")
	}
	if _, err := NewAnchors(mu.Anonymize()); err == nil {
		t.Error("anonymous anchor accepted")
	}
}

func TestCheckRealizableTriangle(t *testing.T) {
	anchors, views := triangleAnchors(t)
	if err := CheckRealizable(views, anchors); err != nil {
		t.Errorf("triangle anchors should be realizable: %v", err)
	}
}

func TestCheckRealizableMissingAnchor(t *testing.T) {
	anchors, views := triangleAnchors(t)
	delete(anchors, 3)
	if err := CheckRealizable(views, anchors); err == nil {
		t.Error("missing anchor accepted")
	}
}

func TestCheckRealizableIncompatible(t *testing.T) {
	// Two radius-2 views disagreeing on a shared near node's label are not
	// realizable together.
	g := graph.Path(5)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(5)
	labA := []string{"ok", "ok", "ok", "ok", "ok"}
	labB := []string{"ok", "DIFFERENT", "ok", "ok", "ok"}
	muA := view.MustExtract(g, pt, ids, labA, 5, 1, 2)
	muB := view.MustExtract(g, pt, ids, labB, 5, 2, 2)
	anchors, err := NewAnchors(muA, muB)
	if err != nil {
		t.Fatal(err)
	}
	err = CheckRealizable([]*view.View{muA, muB}, anchors)
	if err == nil {
		t.Error("incompatible views reported realizable")
	}
}

// TestGBadPipeline runs the full Lemma 5.1 demonstration: realizable
// anchors forming an odd cycle assemble into a concrete instance G_bad on
// which the strawman decoder accepts every node, refuting its strong
// soundness mechanically.
func TestGBadPipeline(t *testing.T) {
	anchors, views := triangleAnchors(t)
	if err := CheckRealizable(views, anchors); err != nil {
		t.Fatal(err)
	}
	l, nodeOf, err := BuildGBad(anchors, 3)
	if err != nil {
		t.Fatalf("BuildGBad: %v", err)
	}
	if l.G.N() != 3 || l.G.M() != 3 {
		t.Fatalf("G_bad = %v, want a triangle", l.G)
	}
	// Radius-1 anchors from path hosts record far-end ports of degree-1
	// nodes; in the realized triangle those nodes have degree 2, so some
	// realized views legitimately differ from their anchors in far-end port
	// numbers (the caveat documented on VerifyRealization; for r >= 2 the
	// compatibility relation rules this out). At least the identifier-1
	// anchor, whose far-end ports happen to agree, must match exactly.
	match, err := VerifyRealization(l, nodeOf, anchors, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !match[1] {
		t.Error("realized view of identifier 1 should match its anchor exactly")
	}
	// The decoder accepts everywhere on a non-bipartite instance.
	err = core.CheckStrongSoundness(okDecoder(), core.TwoCol(), l)
	if err == nil {
		t.Fatal("expected a strong soundness violation on G_bad")
	}
	var v *core.StrongSoundnessViolation
	if !errors.As(err, &v) {
		t.Fatalf("unexpected error type %T", err)
	}
	if len(v.Accepting) != 3 {
		t.Errorf("accepting set %v, want all of G_bad", v.Accepting)
	}
}

func TestBuildGBadAsymmetricEdges(t *testing.T) {
	// An anchor naming a neighbor that does not name it back must fail.
	muA := view.MustExtract(graph.Path(2), graph.DefaultPorts(graph.Path(2)),
		graph.IDs{1, 2}, []string{"ok", "ok"}, 2, 0, 1)
	soloHost := graph.New(1)
	muB := view.MustExtract(soloHost, graph.DefaultPorts(soloHost),
		graph.IDs{2}, []string{"ok"}, 2, 0, 1)
	anchors, err := NewAnchors(muA, muB)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildGBad(anchors, 2); err == nil {
		t.Error("asymmetric anchor edges accepted")
	}
}

func TestBuildGBadMissingNeighborAnchor(t *testing.T) {
	muA := view.MustExtract(graph.Path(2), graph.DefaultPorts(graph.Path(2)),
		graph.IDs{1, 2}, []string{"ok", "ok"}, 2, 0, 1)
	anchors, err := NewAnchors(muA)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildGBad(anchors, 2); err == nil {
		t.Error("neighbor without anchor accepted")
	}
}

func TestBuildGBadPathRoundTrip(t *testing.T) {
	// Anchors taken from one instance reassemble that instance exactly.
	l := okP3(graph.IDs{1, 2, 3})
	var views []*view.View
	for v := 0; v < 3; v++ {
		mu, err := l.ViewOf(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, mu)
	}
	anchors, err := NewAnchors(views...)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, nodeOf, err := BuildGBad(anchors, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.G.Equal(l.G) {
		t.Errorf("rebuilt %v, want %v", rebuilt.G, l.G)
	}
	match, err := VerifyRealization(rebuilt, nodeOf, anchors, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id, ok := range match {
		if !ok {
			t.Errorf("identifier %d not realized faithfully", id)
		}
	}
}

func TestLiftWalk(t *testing.T) {
	// Lift the Lemma 5.4 escape walk of a C12 yes-instance into the
	// accepting neighborhood graph of the ok-decoder.
	g := graph.MustCycle(12)
	inst := core.NewInstance(g)
	labels := make([]string, 12)
	for i := range labels {
		labels[i] = "ok"
	}
	l := core.MustNewLabeled(inst, labels)
	d := okDecoder()
	ng, err := nbhd.Build(d, nbhd.FromLabeled(l))
	if err != nil {
		t.Fatal(err)
	}
	views, err := l.Views(1)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := EscapeWalk(g, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := LiftWalk(ng, views, walk, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lifted) != len(walk) {
		t.Errorf("lifted length %d, want %d", len(lifted), len(walk))
	}
	// Consecutive lifted views are adjacent in the neighborhood graph.
	for i := 0; i+1 < len(lifted); i++ {
		if lifted[i] != lifted[i+1] && !ng.Graph().HasEdge(lifted[i], lifted[i+1]) {
			t.Errorf("lifted step %d: views %d,%d not adjacent", i, lifted[i], lifted[i+1])
		}
	}
}

func TestLiftWalkRejectsForeignViews(t *testing.T) {
	// A walk over views the decoder rejects cannot be lifted.
	g := graph.MustCycle(4)
	inst := core.NewInstance(g)
	l := core.MustNewLabeled(inst, []string{"no", "no", "no", "no"})
	ng, err := nbhd.Build(okDecoder(), nbhd.FromLabeled(l))
	if err != nil {
		t.Fatal(err)
	}
	views, err := l.Views(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LiftWalk(ng, views, []int{0, 1, 0}, false); err == nil {
		t.Error("lift of rejected views succeeded")
	}
}

func TestFindOddClosedWalkDegreeOne(t *testing.T) {
	// The DegreeOne scheme's V(D,4) slice contains an odd closed walk, and
	// even a non-backtracking one (Lemma 5.5's precondition machinery).
	s := decoders.DegreeOne()
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(4)...))
	if err != nil {
		t.Fatal(err)
	}
	walk := FindOddClosedWalk(ng, 15, false)
	if walk == nil {
		t.Fatal("no odd closed walk found")
	}
	if (len(walk)-1)%2 == 0 {
		t.Errorf("walk %v has even edge count", walk)
	}
	nbWalk := FindOddClosedWalk(ng, 15, true)
	if nbWalk == nil {
		t.Log("no non-backtracking odd walk within bound (acceptable: anonymous views)")
	} else if (len(nbWalk)-1)%2 == 0 {
		t.Errorf("non-backtracking walk %v has even edge count", nbWalk)
	}
}

func TestFindOddClosedWalkBipartite(t *testing.T) {
	// The trivial revealing scheme's slice is bipartite: no odd walk.
	s := decoders.Trivial(2)
	inst := core.NewAnonymousInstance(graph.Path(3))
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings([]string{"0", "1"}, inst))
	if err != nil {
		t.Fatal(err)
	}
	if walk := FindOddClosedWalk(ng, 20, false); walk != nil {
		t.Errorf("odd walk %v in a bipartite neighborhood graph", walk)
	}
	if walk := FindOddClosedWalk(ng, 20, true); walk != nil {
		t.Errorf("non-backtracking odd walk %v in a bipartite neighborhood graph", walk)
	}
}
