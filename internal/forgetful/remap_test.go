package forgetful

import (
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// twoHostViews builds views of two P3 instances that SHARE identifier 2 at
// incompatible occurrences (different labels at the id-2 node), the
// component-wise situation of Lemma 5.2.
func twoHostViews(t *testing.T) []*view.View {
	t.Helper()
	mk := func(ids graph.IDs, labels []string, center int) *view.View {
		g := graph.Path(3)
		inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: ids, NBound: 9}
		l := core.MustNewLabeled(inst, labels)
		mu, err := l.ViewOf(center, 1)
		if err != nil {
			t.Fatal(err)
		}
		return mu
	}
	return []*view.View{
		mk(graph.IDs{1, 2, 3}, []string{"ok", "ok", "ok"}, 1),
		mk(graph.IDs{4, 2, 5}, []string{"ok", "DIFFERENT", "ok"}, 1),
	}
}

func TestIDComponentsSplit(t *testing.T) {
	// The two host views are NOT adjacent in H (they come from disjoint
	// instances), so identifier 2's occurrences form two components.
	h := twoHostViews(t)
	var noEdges [][2]int
	comps := IDComponents(h, noEdges, 2)
	if len(comps) != 2 {
		t.Fatalf("identifier 2 groups into %d components, want 2", len(comps))
	}
	// Identifier 1 occurs once: a single component.
	if got := IDComponents(h, noEdges, 1); len(got) != 1 {
		t.Errorf("identifier 1 components = %d, want 1", len(got))
	}
	// An absent identifier has no components.
	if got := IDComponents(h, noEdges, 99); len(got) != 0 {
		t.Errorf("absent identifier components = %d, want 0", len(got))
	}
}

func TestIDComponentsConnectedStayTogether(t *testing.T) {
	// Views of one instance, adjacent along the host path, form ONE
	// component of S(2).
	mk := func(center int) *view.View {
		g := graph.Path(3)
		inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: graph.IDs{1, 2, 3}, NBound: 9}
		l := core.MustNewLabeled(inst, []string{"ok", "ok", "ok"})
		mu, err := l.ViewOf(center, 1)
		if err != nil {
			t.Fatal(err)
		}
		return mu
	}
	h := []*view.View{mk(0), mk(1), mk(2)}
	edges := [][2]int{{0, 1}, {1, 2}} // H mirrors the host path
	if comps := IDComponents(h, edges, 2); len(comps) != 1 {
		t.Errorf("connected occurrences split into %d components", len(comps))
	}
	// Without the H-edges the same occurrences fall apart.
	if comps := IDComponents(h, nil, 2); len(comps) != 3 {
		t.Errorf("edgeless S(2) has %d components, want 3", len(comps))
	}
}

func TestRemapIDs(t *testing.T) {
	h := twoHostViews(t)
	out, err := RemapIDs(h[:1], map[int]int{2: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].LocalNodeWithID(2) != -1 || out[0].LocalNodeWithID(7) < 0 {
		t.Error("remap did not substitute identifier 2 -> 7")
	}
	if h[0].LocalNodeWithID(2) < 0 {
		t.Error("remap mutated the input view")
	}
	// Colliding remap fails.
	if _, err := RemapIDs(h[:1], map[int]int{2: 1}); err == nil {
		t.Error("collision with identifier 1 accepted")
	}
}

// TestLemma52Pipeline: the split makes an unrealizable collection
// realizable for an order-invariant decoder, after which G_bad assembles —
// the executable form of Lemma 5.2.
func TestLemma52Pipeline(t *testing.T) {
	h := twoHostViews(t)
	anchors, err := NewAnchors(h...)
	if err != nil {
		// Both views have the same center identifier (2)? No: centers are
		// both the middle node with ids 2 and 2 — duplicate anchors are
		// expected here; split FIRST, then anchor.
		t.Logf("pre-split anchors fail as expected: %v", err)
	}
	split, used, err := SplitIdentifier(h, nil, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("used %d fresh identifiers, want 1", used)
	}
	anchors, err = NewAnchors(split...)
	if err != nil {
		t.Fatalf("anchors after split: %v", err)
	}
	// The centers' neighbor identifiers (1,3,4,5) need anchors too before
	// BuildGBad can assemble; supply degree-1 leaf views from the hosts.
	leafViews := leafAnchors(t, split)
	all := append(append([]*view.View{}, split...), leafViews...)
	anchors, err = NewAnchors(all...)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRealizable(all, anchors); err != nil {
		t.Fatalf("split collection still unrealizable: %v", err)
	}
	gBad, _, err := BuildGBad(anchors, 101)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint P3s: 6 nodes, 4 edges.
	if gBad.G.N() != 6 || gBad.G.M() != 4 {
		t.Errorf("G_bad = %v, want two disjoint paths", gBad.G)
	}
}

// leafAnchors reconstructs the degree-1 views matching the split centers'
// host instances.
func leafAnchors(t *testing.T, centers []*view.View) []*view.View {
	t.Helper()
	var out []*view.View
	for _, mu := range centers {
		g := graph.Path(3)
		ids := make(graph.IDs, 3)
		labels := make([]string, 3)
		// Center view of a P3 middle node: local 0 = center, locals 1, 2 =
		// the leaves in host order.
		ids[1] = mu.IDs[view.Center]
		labels[1] = mu.Labels[view.Center]
		for _, w := range mu.Adj[view.Center] {
			p, _ := mu.Port(view.Center, w)
			host := 0
			if p == 2 {
				host = 2
			}
			ids[host] = mu.IDs[w]
			labels[host] = mu.Labels[w]
		}
		inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: ids, NBound: mu.NBound}
		l := core.MustNewLabeled(inst, labels)
		for _, leaf := range []int{0, 2} {
			lv, err := l.ViewOf(leaf, 1)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, lv)
		}
	}
	return out
}

func TestSplitIdentifierNoop(t *testing.T) {
	h := twoHostViews(t)
	out, used, err := SplitIdentifier(h, nil, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Errorf("single-component identifier used %d fresh ids", used)
	}
	if out[0] != h[0] || out[1] != h[1] {
		t.Error("no-op split copied views")
	}
}
