package forgetful

import (
	"fmt"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/view"
)

// EscapeWalk constructs the closed walk W_e of Lemma 5.4 (Fig. 8) in the
// host graph g: starting at u, it takes the edge to v, follows an escape
// path away from u's r-ball, continues without backtracking to a node z
// whose r-ball is disjoint from those of u and v, and finally returns to u
// without backtracking. The walk is closed and — in a bipartite host — of
// even length.
//
// It requires g to be connected with minimum degree at least 2 (so
// non-backtracking continuation is always possible) and returns an error
// when any stage fails.
func EscapeWalk(g *graph.Graph, u, v, r int) ([]int, error) {
	if !g.HasEdge(u, v) {
		return nil, fmt.Errorf("nodes %d and %d are not adjacent", u, v)
	}
	if g.MinDegree() < 2 {
		return nil, fmt.Errorf("escape walks need minimum degree 2, have %d", g.MinDegree())
	}
	esc := EscapePath(g, v, u, r)
	if esc == nil {
		return nil, fmt.Errorf("no escape path from %d with respect to %d (graph not %d-forgetful there)", v, u, r)
	}
	z := FarNode(g, u, v, r)
	if z < 0 {
		return nil, fmt.Errorf("no node with an r-ball disjoint from those of %d and %d", u, v)
	}

	walk := append([]int{u}, esc...) // u, v = esc[0], ..., esc[r]
	// Continue from the end of the escape path to z without backtracking.
	if err := extendWithout(g, &walk, z); err != nil {
		return nil, fmt.Errorf("reaching far node %d: %w", z, err)
	}
	// And return to u without backtracking — including at the closure: the
	// walk must not re-enter u through the edge it first left by (v).
	cur := walk[len(walk)-1]
	prev := walk[len(walk)-2]
	route := nonBacktrackingRouteAvoidFinal(g, cur, prev, u, v)
	if route == nil {
		return nil, fmt.Errorf("no non-backtracking return to %d avoiding final edge from %d", u, v)
	}
	return append(walk, route...), nil
}

// extendWithout extends the walk to target along a non-backtracking walk
// (no step immediately reverses the previous one, including the junction
// with the walk so far). The continuation is found by BFS over directed
// edges, which in a connected graph of minimum degree 2 always succeeds.
func extendWithout(g *graph.Graph, walk *[]int, target int) error {
	w := *walk
	cur := w[len(w)-1]
	prev := -1
	if len(w) >= 2 {
		prev = w[len(w)-2]
	}
	if cur == target {
		return nil
	}
	route := nonBacktrackingRoute(g, cur, prev, target)
	if route == nil {
		return fmt.Errorf("no non-backtracking route from %d to %d avoiding first step to %d", cur, prev, target)
	}
	*walk = append(w, route...)
	return nil
}

// nonBacktrackingRoute returns the node sequence (excluding `from`) of a
// shortest walk from `from` to `target` that never immediately reverses an
// edge and whose first step is not to `banned`. It returns nil if no such
// walk exists.
func nonBacktrackingRoute(g *graph.Graph, from, banned, target int) []int {
	return nonBacktrackingRouteAvoidFinal(g, from, banned, target, -1)
}

// nonBacktrackingRouteAvoidFinal is nonBacktrackingRoute with one more
// constraint: the walk must not enter `target` coming from `bannedFinal`.
func nonBacktrackingRouteAvoidFinal(g *graph.Graph, from, banned, target, bannedFinal int) []int {
	type state struct{ node, came int }
	parent := make(map[state]state)
	var queue []state
	seen := make(map[state]bool)
	for _, nb := range g.Neighbors(from) {
		if nb == banned {
			continue
		}
		s := state{nb, from}
		seen[s] = true
		parent[s] = state{from, -1}
		queue = append(queue, s)
	}
	var goal *state
	for len(queue) > 0 && goal == nil {
		s := queue[0]
		queue = queue[1:]
		if s.node == target && s.came != bannedFinal {
			goal = &s
			break
		}
		for _, nb := range g.Neighbors(s.node) {
			if nb == s.came {
				continue
			}
			next := state{nb, s.node}
			if seen[next] {
				continue
			}
			seen[next] = true
			parent[next] = s
			queue = append(queue, next)
		}
	}
	if goal == nil {
		return nil
	}
	var rev []int
	for s := *goal; s.came != -1; s = parent[s] {
		rev = append(rev, s.node)
	}
	route := make([]int, len(rev))
	for i, x := range rev {
		route[len(rev)-1-i] = x
	}
	return route
}

// IsClosedWalk reports whether walk is a closed walk of g (consecutive
// nodes adjacent, first node = last node, length >= 1).
func IsClosedWalk(g *graph.Graph, walk []int) bool {
	if len(walk) < 2 || walk[0] != walk[len(walk)-1] {
		return false
	}
	for i := 0; i+1 < len(walk); i++ {
		if !g.HasEdge(walk[i], walk[i+1]) {
			return false
		}
	}
	return true
}

// IsNonBacktracking reports whether the closed walk never immediately
// reverses an edge, including around the closing point (the
// non-backtracking condition of Section 5.2, evaluated structurally on the
// host graph; the view-level condition compares predecessor and successor
// center identifiers, which coincides with this on a host walk).
func IsNonBacktracking(walk []int) bool {
	if len(walk) < 2 || walk[0] != walk[len(walk)-1] {
		return false
	}
	steps := len(walk) - 1
	for i := 0; i < steps; i++ {
		prev := walk[(i-1+steps)%steps]
		next := walk[(i+1)%steps]
		if prev == next {
			return false
		}
	}
	return true
}

// LiftWalk maps a closed host walk to the corresponding closed walk of
// views in the accepting neighborhood graph slice ng (Lemma 5.4's lifting):
// it returns the view indices visited, or an error if some visited view is
// not an accepting view of ng.
func LiftWalk(ng *nbhd.NGraph, views []*view.View, walk []int, anonymous bool) ([]int, error) {
	lifted := make([]int, len(walk))
	for i, node := range walk {
		mu := views[node]
		if anonymous {
			mu = mu.Anonymize()
		}
		idx := ng.IndexOfView(mu)
		if idx < 0 {
			return nil, fmt.Errorf("walk node %d's view is not an accepting view", node)
		}
		lifted[i] = idx
	}
	return lifted, nil
}

// FindOddClosedWalk searches ng for a closed walk of odd length at most
// maxLen edges, optionally requiring the walk to be non-backtracking in the
// sense of Section 5.2: for every view on the walk, its predecessor and
// successor views have distinct center identifiers (for anonymous views,
// distinct view nodes are required instead). A self-looped view counts as
// an odd closed walk of length 1. It returns the visited view indices
// (first = last), or nil if none is found within the bound.
func FindOddClosedWalk(ng *nbhd.NGraph, maxLen int, nonBacktracking bool) []int {
	for i := 0; i < ng.Size(); i++ {
		if ng.HasLoop(i) {
			return []int{i, i}
		}
	}
	g := ng.Graph()
	if !nonBacktracking {
		cyc := g.OddCycle()
		if cyc == nil || len(cyc) > maxLen {
			return nil
		}
		return append(cyc, cyc[0])
	}
	// conflicts reports whether stepping a -> x -> b backtracks: the
	// predecessor and successor carry the same center identifier (or are
	// the same view, in the anonymous case).
	conflicts := func(a, b int) bool {
		if a < 0 || b < 0 {
			return false
		}
		ida := ng.ViewAt(a).IDs[view.Center]
		idb := ng.ViewAt(b).IDs[view.Center]
		if ida == 0 && idb == 0 {
			return a == b
		}
		return ida == idb
	}
	for start := 0; start < g.N(); start++ {
		walk := []int{start}
		var rec func(cur, prev, depth int) []int
		rec = func(cur, prev, depth int) []int {
			if depth >= maxLen {
				return nil
			}
			for _, nb := range g.Neighbors(cur) {
				if conflicts(prev, nb) {
					continue
				}
				if nb == start && depth >= 2 && depth%2 == 0 {
					// Closing yields odd edge count depth+1; the closure
					// must not backtrack at the start view either.
					if conflicts(cur, walk[1]) {
						continue
					}
					return append(append([]int(nil), walk...), start)
				}
				if nb == start {
					continue // keep walks simple except for the closure
				}
				walk = append(walk, nb)
				if res := rec(nb, cur, depth+1); res != nil {
					return res
				}
				walk = walk[:len(walk)-1]
			}
			return nil
		}
		if res := rec(start, -1, 0); res != nil {
			return res
		}
	}
	return nil
}
