// Package forgetful implements the lower-bound machinery of Sections 2
// and 5 of the paper: the r-forgetful graph property (Definition in
// Section 1.3, used by Theorem 1.2/1.5), escape paths, the realizability of
// view collections, the G_bad assembly of Lemma 5.1, and non-backtracking
// closed walks (Lemmas 5.4/5.5).
package forgetful

import (
	"fmt"

	"hidinglcp/internal/graph"
)

// EscapePath returns a path (v_0 = v, v_1, ..., v_r) such that for every
// node w in N^r(u) that is not an interior node of the path itself,
// dist(v_i, w) is strictly monotonically increasing in i — the "escape
// without backtracking through u's r-ball" of the r-forgetful definition.
// It returns nil if no such path exists. The path never runs through u.
//
// DEVIATION FROM THE PAPER: the definition in Section 1.3 quantifies over
// every w ∈ N^r(u) with no exception, but for r >= 2 that is unsatisfiable
// by ANY graph: the path's own node v_1 lies in N^r(u) (it is at distance
// <= 2 from u), and dist(v_i, v_1) equals |i - 1|, which is not monotone.
// Excluding the path's interior nodes {v_1, ..., v_r} from the
// quantification is the minimal repair; it coincides with the literal
// definition whenever the literal definition is satisfiable, and both
// Lemma 2.1 and the walk construction of Lemma 5.4 go through verbatim
// (their arguments only ever track distances to nodes off the escape path).
//
// Since adjacent nodes' distances differ by at most one, strict monotone
// growth means every step increases the distance to every tracked w by
// exactly one.
func EscapePath(g *graph.Graph, v, u, r int) []int {
	if r <= 0 {
		return []int{v}
	}
	ball := g.Ball(u, r)
	dist := make(map[int][]int, len(ball))
	for _, w := range ball {
		dist[w] = g.BFSDistances(w)
	}
	valid := func(path []int) bool {
		interior := make(map[int]bool, len(path))
		for _, x := range path[1:] {
			interior[x] = true
		}
		for _, w := range ball {
			if interior[w] {
				continue
			}
			dw := dist[w]
			for i, x := range path {
				if dw[x] == graph.Unreachable || dw[x] != dw[v]+i {
					return false
				}
			}
		}
		return true
	}
	// Enumerate simple paths of length r from v avoiding u (at most Δ^r of
	// them) and validate each against the repaired definition.
	path := []int{v}
	onPath := map[int]bool{v: true}
	var found []int
	var rec func() bool
	rec = func() bool {
		if len(path) == r+1 {
			if valid(path) {
				found = append([]int(nil), path...)
				return true
			}
			return false
		}
		for _, next := range g.Neighbors(path[len(path)-1]) {
			if next == u || onPath[next] {
				continue
			}
			path = append(path, next)
			onPath[next] = true
			if rec() {
				return true
			}
			onPath[next] = false
			path = path[:len(path)-1]
		}
		return false
	}
	rec()
	return found
}

// IsRForgetful reports whether g satisfies the r-forgetful property: for
// every node v and every neighbor u of v there is an escape path from v
// with respect to u. The first failing pair is returned as a witness when
// the property does not hold.
func IsRForgetful(g *graph.Graph, r int) (ok bool, failV, failU int) {
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if EscapePath(g, v, u, r) == nil {
				return false, v, u
			}
		}
	}
	return true, -1, -1
}

// CheckLemma21 verifies Lemma 2.1 on one graph: if g is r-forgetful, then
// diam(g) >= 2r+1. It returns an error if the implication fails (which
// would signal a bug in either the checker or the lemma).
func CheckLemma21(g *graph.Graph, r int) error {
	ok, _, _ := IsRForgetful(g, r)
	if !ok {
		return nil
	}
	if d := g.Diameter(); d != graph.Unreachable && d < 2*r+1 {
		return fmt.Errorf("graph %v is %d-forgetful but has diameter %d < %d", g, r, d, 2*r+1)
	}
	return nil
}

// FarNode returns a node z whose r-ball is disjoint from the r-balls of
// both u and v (the view μ' of Lemma 5.4's walk construction), or -1 if
// none exists.
func FarNode(g *graph.Graph, u, v, r int) int {
	du := g.BFSDistances(u)
	dv := g.BFSDistances(v)
	for z := 0; z < g.N(); z++ {
		if du[z] > 2*r && dv[z] > 2*r {
			return z
		}
	}
	return -1
}
