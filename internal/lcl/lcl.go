// Package lcl implements the paper's motivating application (Section 1):
// the locally checkable labeling problem Π = "output a proper 3-coloring on
// the parts of the graph where a 2-colorability certificate is valid". The
// paper introduces strong soundness precisely so that Π is promise-free
// solvable: on ANY input graph with ANY certificate assignment, the nodes
// the certificate convinces induce a 2-colorable subgraph, so a 3-coloring
// of the valid parts always exists (and an online-LOCAL algorithm can find
// one, while hiding is meant to defeat SLOCAL algorithms).
//
// This package makes the connection executable: the task definition, a
// constraint checker, and a solver whose success on every input is exactly
// the decoder's strong soundness — it fails precisely on strong-soundness
// counterexamples such as the literal Theorem 1.3 decoder's.
package lcl

import (
	"fmt"

	"hidinglcp/internal/core"
)

// Colors is the palette size of the target labeling (the paper's
// 3-coloring).
const Colors = 3

// Solution is a per-node color assignment in [0, Colors).
type Solution []int

// Check verifies the Π constraints for decoder d on the labeled instance:
// every node outputs a color in [0, Colors), and every edge whose BOTH
// endpoints accept their certificate neighborhood is bichromatic. Edges
// with a rejecting endpoint are unconstrained (that part of the graph has
// no valid certificate, so the promise-free task demands nothing there).
func Check(d core.Decoder, l core.Labeled, sol Solution) error {
	if len(sol) != l.G.N() {
		return fmt.Errorf("solution covers %d nodes, graph has %d", len(sol), l.G.N())
	}
	for v, c := range sol {
		if c < 0 || c >= Colors {
			return fmt.Errorf("node %d has color %d outside [0,%d)", v, c, Colors)
		}
	}
	accepting, err := core.Run(d, l)
	if err != nil {
		return err
	}
	for _, e := range l.G.Edges() {
		if accepting[e[0]] && accepting[e[1]] && sol[e[0]] == sol[e[1]] {
			return fmt.Errorf("monochromatic edge {%d,%d} inside the certificate-valid region", e[0], e[1])
		}
	}
	return nil
}

// Solve produces a Π solution by 2-coloring the accepting-induced subgraph
// and assigning the third color everywhere else — the move the paper's
// online-LOCAL separation sketch relies on. It succeeds on EVERY input iff
// the decoder is strongly sound; on a strong-soundness counterexample the
// accepting region is not bipartite and Solve reports the failure.
func Solve(d core.Decoder, l core.Labeled) (Solution, error) {
	accepting, err := core.AcceptingSet(d, l)
	if err != nil {
		return nil, err
	}
	sub, orig := l.G.InducedSubgraph(accepting)
	twoColoring, ok := sub.TwoColoring()
	if !ok {
		return nil, fmt.Errorf("certificate-valid region is not bipartite: the decoder is not strongly sound on this instance")
	}
	sol := make(Solution, l.G.N())
	for i := range sol {
		sol[i] = 2 // the spare color for unconstrained nodes
	}
	for i, c := range twoColoring {
		sol[orig[i]] = c
	}
	return sol, nil
}
