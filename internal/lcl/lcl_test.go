package lcl

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
)

func TestSolveOnCertifiedInstances(t *testing.T) {
	// On honestly certified yes-instances the whole graph accepts and Solve
	// must produce a coloring proper everywhere.
	runs := []struct {
		s    core.Scheme
		g    *graph.Graph
		anon bool
	}{
		{decoders.DegreeOne(), graph.Spider([]int{2, 3, 2}), true},
		{decoders.EvenCycle(), graph.MustCycle(8), true},
		{decoders.Shatter(), graph.Grid(3, 4), false},
		{decoders.Watermelon(), graph.MustWatermelon([]int{2, 4, 2}), false},
	}
	for _, r := range runs {
		var inst core.Instance
		if r.anon {
			inst = core.NewAnonymousInstance(r.g)
		} else {
			inst = core.NewInstance(r.g)
		}
		labels, err := r.s.Prover.Certify(inst)
		if err != nil {
			t.Fatalf("%s: %v", r.s.Name, err)
		}
		l := core.MustNewLabeled(inst, labels)
		sol, err := Solve(r.s.Decoder, l)
		if err != nil {
			t.Fatalf("%s: Solve: %v", r.s.Name, err)
		}
		if err := Check(r.s.Decoder, l, sol); err != nil {
			t.Errorf("%s: Check: %v", r.s.Name, err)
		}
	}
}

// TestSolvePromiseFree is the paper's point: Solve succeeds on ARBITRARY
// graphs with ARBITRARY (adversarial) certificates, because strong
// soundness keeps the certificate-valid region 2-colorable.
func TestSolvePromiseFree(t *testing.T) {
	s := decoders.DegreeOne()
	rng := rand.New(rand.NewSource(41))
	gen := func(_ int, rng *rand.Rand) string {
		return decoders.DegOneAlphabet()[rng.Intn(4)]
	}
	for trial := 0; trial < 150; trial++ {
		g := graph.GNP(8, 0.35, rng)
		inst := core.NewAnonymousInstance(g)
		labels := make([]string, g.N())
		for v := range labels {
			labels[v] = gen(v, rng)
		}
		l := core.MustNewLabeled(inst, labels)
		sol, err := Solve(s.Decoder, l)
		if err != nil {
			t.Fatalf("trial %d: Solve failed on adversarial input: %v", trial, err)
		}
		if err := Check(s.Decoder, l, sol); err != nil {
			t.Fatalf("trial %d: Check: %v", trial, err)
		}
	}
}

// TestSolveFailsWithoutStrongSoundness: on the literal Theorem 1.3
// decoder's counterexample the certificate-valid region contains an odd
// cycle and the bipartite-based solver must fail — the executable reason
// the paper demands strong (not plain) soundness.
func TestSolveFailsWithoutStrongSoundness(t *testing.T) {
	lit := decoders.ShatterLiteral()
	g := graph.MustFromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {5, 7}, {7, 8}, {8, 1},
	})
	inst := core.NewInstance(g)
	labels := []string{
		decoders.ShatterPointLabelLiteral(1),
		decoders.ShatterNeighborLabel(1, []int{0, 0}),
		decoders.ShatterCompLabel(1, 1, 0),
		decoders.ShatterCompLabel(1, 1, 1),
		decoders.ShatterCompLabel(1, 1, 0),
		decoders.ShatterNeighborLabel(1, []int{0, 1}),
		decoders.ShatterPointLabelLiteral(1),
		decoders.ShatterCompLabel(1, 2, 1),
		decoders.ShatterCompLabel(1, 2, 0),
	}
	l := core.MustNewLabeled(inst, labels)
	if _, err := Solve(lit.Decoder, l); err == nil {
		t.Fatal("Solve succeeded although the accepted region is an odd cycle")
	}
	// The patched decoder restores solvability on the same input.
	patched := decoders.Shatter()
	sol, err := Solve(patched.Decoder, l)
	if err != nil {
		t.Fatalf("patched decoder: %v", err)
	}
	if err := Check(patched.Decoder, l, sol); err != nil {
		t.Errorf("patched decoder: %v", err)
	}
}

func TestCheckRejectsBadSolutions(t *testing.T) {
	s := decoders.EvenCycle()
	inst := core.NewAnonymousInstance(graph.MustCycle(4))
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	l := core.MustNewLabeled(inst, labels)
	if err := Check(s.Decoder, l, Solution{0, 0, 1, 1}); err == nil {
		t.Error("monochromatic accepted edge passed Check")
	}
	if err := Check(s.Decoder, l, Solution{0, 1}); err == nil {
		t.Error("short solution passed Check")
	}
	if err := Check(s.Decoder, l, Solution{0, 1, 0, 5}); err == nil {
		t.Error("out-of-palette color passed Check")
	}
	if err := Check(s.Decoder, l, Solution{0, 1, 0, 1}); err != nil {
		t.Errorf("valid solution rejected: %v", err)
	}
}
