package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

// expvarOnce guards the expvar publication: expvar.Publish panics on
// duplicate names, and tests may start several debug servers.
var expvarOnce sync.Once

// currentRegistry is the registry the published expvar reads; swapped by
// ServeDebug so the latest server's scope is the one exposed.
var currentRegistry struct {
	mu  sync.Mutex
	reg *Registry
}

// ServeDebug starts an HTTP server on addr exposing net/http/pprof
// (/debug/pprof/) and expvar (/debug/vars, including the registry's
// metrics under "hidinglcp.metrics"). It returns the bound address (useful
// with ":0") and a closer. The server runs until closed; profile it with
//
//	go tool pprof http://<addr>/debug/pprof/profile
func ServeDebug(addr string, reg *Registry) (string, func() error, error) {
	currentRegistry.mu.Lock()
	currentRegistry.reg = reg
	currentRegistry.mu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("hidinglcp.metrics", expvar.Func(func() any {
			currentRegistry.mu.Lock()
			r := currentRegistry.reg
			currentRegistry.mu.Unlock()
			return r.Snapshot()
		}))
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}
