package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns a fresh mux carrying the process-debugging routes:
// net/http/pprof under /debug/pprof/ and a JSON snapshot of reg's metrics
// under /debug/vars (shaped like expvar output, {"hidinglcp.metrics": [...]},
// but computed per request from the given registry — no process-global
// expvar publication, so any number of servers over different registries
// can coexist in one process).
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)
	return mux
}

// RegisterDebug installs the /debug/pprof/* and /debug/vars routes on mux.
// The pprof handlers are registered explicitly rather than by importing
// net/http/pprof for its side effect, so nothing ever touches
// http.DefaultServeMux.
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"hidinglcp.metrics": reg.Snapshot()}) //nolint:errcheck // best-effort write to the client
	})
}

// ServeDebug starts an HTTP server on addr exposing the DebugMux routes for
// reg: net/http/pprof (/debug/pprof/) and the metrics snapshot
// (/debug/vars). It returns the bound address (useful with ":0") and a
// closer. Every server owns its mux, so concurrent servers — common in
// tests — never serve each other's registries. Profile it with
//
//	go tool pprof http://<addr>/debug/pprof/profile
//
// For the full telemetry surface (/metrics, /healthz, /trace, /events) see
// internal/obs/export.Serve, which layers onto the same mux.
func ServeDebug(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}
