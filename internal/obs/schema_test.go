package obs

import (
	"strings"
	"testing"
)

const testSchema = `{
  "type": "object",
  "required": ["schema", "metrics"],
  "additionalProperties": false,
  "properties": {
    "schema": {"const": "v1"},
    "outcome": {"enum": ["ok", "error"]},
    "count": {"type": "integer", "minimum": 0},
    "config": {"type": "object", "additionalProperties": {"type": "string"}},
    "metrics": {
      "type": "array",
      "items": {
        "type": "object",
        "required": ["name"],
        "properties": {"name": {"type": "string"}}
      }
    }
  }
}`

func TestValidateJSONAccepts(t *testing.T) {
	doc := `{
	  "schema": "v1",
	  "outcome": "ok",
	  "count": 3,
	  "config": {"shards": "16"},
	  "metrics": [{"name": "a"}, {"name": "b"}]
	}`
	if err := ValidateJSON([]byte(testSchema), []byte(doc)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestValidateJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"missing required", `{"schema": "v1"}`, "missing required property"},
		{"wrong const", `{"schema": "v2", "metrics": []}`, "want constant"},
		{"bad enum", `{"schema": "v1", "metrics": [], "outcome": "meh"}`, "not one of the allowed values"},
		{"non-integer", `{"schema": "v1", "metrics": [], "count": 1.5}`, "not of type integer"},
		{"below minimum", `{"schema": "v1", "metrics": [], "count": -1}`, "below the minimum"},
		{"extra property", `{"schema": "v1", "metrics": [], "bogus": 1}`, "unexpected property"},
		{"bad additionalProperties schema", `{"schema": "v1", "metrics": [], "config": {"k": 5}}`, "not of type string"},
		{"bad item", `{"schema": "v1", "metrics": [{"nope": 1}]}`, "missing required property"},
		{"malformed document", `{`, "parsing document"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateJSON([]byte(testSchema), []byte(tc.doc))
			if err == nil {
				t.Fatal("invalid document accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateJSONTypeList(t *testing.T) {
	schema := `{"type": ["integer", "null"]}`
	if err := ValidateJSON([]byte(schema), []byte(`7`)); err != nil {
		t.Errorf("integer rejected by type list: %v", err)
	}
	if err := ValidateJSON([]byte(schema), []byte(`null`)); err != nil {
		t.Errorf("null rejected by type list: %v", err)
	}
	if err := ValidateJSON([]byte(schema), []byte(`"s"`)); err == nil {
		t.Error("string accepted by integer|null type list")
	}
}
