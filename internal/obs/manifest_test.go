package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenManifest builds a fully deterministic manifest: every field that
// would normally come from the clock or the build is pinned.
func goldenManifest() *RunManifest {
	sc := NewScope().WithTracer(NewTracer(8))
	sc.Counter("nbhd.instances").Add(83521)
	sc.Counter("nbhd.intern.hits").Add(1204)
	sc.Gauge("nbhd.shards.total").Set(16)
	h := sc.Histogram("nbhd.build.duration_ns")
	h.Observe(1500)
	h.Observe(2500)
	sc.Event("note", "golden fixture")

	m := NewManifest("experiments", []string{"-run", "e04"})
	m.SetConfig("shards", "16")
	m.SetConfig("workers", "4")
	m.Finalize(sc, nil)

	// Pin the ambient fields so the rendering is byte-stable.
	m.GitRevision = "0123456789abcdef"
	m.GitDirty = false
	m.GoVersion = "go1.22.0"
	m.StartUnixNS = 1700000000000000000
	m.EndUnixNS = 1700000001500000000
	m.DurationNS = m.EndUnixNS - m.StartUnixNS
	for i := range m.Events {
		m.Events[i].TimeUnixNS = 1700000000100000000
	}
	return m
}

// TestManifestGolden pins the manifest JSON rendering byte for byte and
// proves it round-trips through encoding/json without loss.
func TestManifestGolden(t *testing.T) {
	m := goldenManifest()
	got, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "manifest_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest rendering drifted from golden; regenerate with -update if intended\ngot:\n%s\nwant:\n%s", got, want)
	}

	var back RunManifest
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("unmarshal round trip: %v", err)
	}
	if !reflect.DeepEqual(&back, m) {
		t.Errorf("round trip lost data:\ngot  %+v\nwant %+v", &back, m)
	}
}

// TestManifestMatchesSchema validates the golden manifest against the
// checked-in JSON schema — the same check CI runs on real manifests via
// cmd/manifestcheck.
func TestManifestMatchesSchema(t *testing.T) {
	schema, err := os.ReadFile(filepath.Join("..", "..", "docs", "run-manifest.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := goldenManifest().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(schema, doc); err != nil {
		t.Errorf("golden manifest fails its own schema: %v", err)
	}
}

func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := NewManifest("lcpcheck", nil)
	sc := NewScope()
	sc.Counter("x").Inc()
	m.Finalize(sc, os.ErrNotExist)
	if m.Outcome != "error" || m.Error == "" {
		t.Errorf("error outcome not recorded: %+v", m)
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written manifest is not valid JSON: %v", err)
	}
	if back.Schema != ManifestSchema || back.Tool != "lcpcheck" || len(back.Metrics) != 1 {
		t.Errorf("written manifest = %+v", back)
	}
	if back.DurationNS < 0 || back.EndUnixNS < back.StartUnixNS {
		t.Errorf("implausible timing: %+v", back)
	}
}
