package obs

import "fmt"

// Structured, leveled log events are the third telemetry signal next to
// metrics and spans: where a counter says how often and a span says how
// long, a LogEvent says what happened, with enough correlation context
// (run, phase, span) to line the three up after the fact. The pipelines
// emit events through Scope.EmitEvent; the transport — a JSONL file, an
// in-memory ring for the /events SSE tail, both — is whatever EventSink the
// CLI attached (internal/obs/export.EventLog in production).
//
// Events fall under the hiding contract exactly like span attributes and
// progress lines: Detail-bearing field values derived from certificate
// bytes must pass through the Redact* helpers first (enforced statically by
// certflow, and at runtime by the marker-byte regression tests in
// internal/sanitize).

// Level classifies a LogEvent. The levels are ordered; sinks may filter.
type Level string

// The event levels, from chattiest to most severe.
const (
	LevelDebug Level = "debug"
	LevelInfo  Level = "info"
	LevelWarn  Level = "warn"
	LevelError Level = "error"
)

// levelRank orders levels for sink-side filtering.
var levelRank = map[Level]int{LevelDebug: 0, LevelInfo: 1, LevelWarn: 2, LevelError: 3}

// Rank returns the level's position in the severity order (debug < info <
// warn < error); unknown levels rank as debug.
func (l Level) Rank() int { return levelRank[l] }

// LogEvent is one structured event, as serialized (one JSON object per
// line) into the JSONL event log. The machine-checkable schema is committed
// at docs/event-log.schema.json and enforced by cmd/manifestcheck.
type LogEvent struct {
	TimeUnixNS int64  `json:"time_unix_ns"`
	Level      Level  `json:"level"`
	Name       string `json:"name"`
	// Run is the correlation ID shared by every event of one CLI run (see
	// NewRunID), so interleaved histories from several processes can be
	// separated again.
	Run string `json:"run,omitempty"`
	// Phase is the emitting scope's label prefix (Scope.Named), typically
	// "scheme=<name>" or an experiment ID.
	Phase string `json:"phase,omitempty"`
	// Span is the ID of the span the event was emitted under, 0 when none.
	Span uint64 `json:"span,omitempty"`
	// Fields carries event-specific key/value details, in emission order.
	Fields []Attr `json:"fields,omitempty"`
}

// EventSink receives structured events. Implementations must be safe for
// concurrent use — shard workers emit from their own goroutines — and must
// not block the caller beyond a bounded append (the pipelines sit on the
// other side).
type EventSink interface {
	EmitLogEvent(ev LogEvent)
}

// NewRunID derives a process-unique correlation ID for one CLI run from the
// tool name and the start timestamp. obs owns the wall clock, so this is
// the one place run identity may come from time.
func NewRunID(tool string) string {
	return fmt.Sprintf("%s-%016x", tool, uint64(Now()))
}

// F is shorthand for one event field.
func F(key, value string) Attr { return Attr{Key: key, Value: value} }

// Fi is shorthand for one integer-valued event field.
func Fi(key string, value int64) Attr { return Attr{Key: key, Value: fmt.Sprint(value)} }
