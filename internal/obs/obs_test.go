package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestZeroScopeIsNoOp(t *testing.T) {
	var sc Scope
	if sc.Enabled() {
		t.Error("zero scope reports enabled")
	}
	// Every accessor and every method on what it returns must be callable.
	sc.Counter("x").Add(3)
	sc.Counter("x").Inc()
	if got := sc.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	sc.Gauge("g").Set(7)
	sc.Gauge("g").Add(1)
	if got := sc.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d", got)
	}
	sc.Histogram("h").Observe(5)
	if got := sc.Histogram("h").Count(); got != 0 {
		t.Errorf("nil histogram count = %d", got)
	}
	sp := sc.Span("root")
	sp.SetAttr("k", "v")
	sp.Child("child").End()
	sp.End()
	sc.Event("e", "detail")
	sc.Prog().StartPhase("p", 10)
	sc.Prog().Add(1)
	sc.Prog().SetExtra(func() string { return "x" })
	sc.Prog().EndPhase()
	sc.Prog().Close()
	if snap := sc.Registry().Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v", snap)
	}
	var m *RunManifest
	m.SetConfig("k", "v")
	m.Finalize(sc, nil)
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("runs")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if reg.Counter("runs") != c {
		t.Error("counter lookup is not stable")
	}
	g := reg.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	h := reg.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("histogram count = %d, want 6", got)
	}

	snap := reg.Snapshot()
	byName := map[string]MetricSnapshot{}
	for i, s := range snap {
		byName[s.Name] = s
		if i > 0 && snap[i-1].Name > s.Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, s.Name)
		}
	}
	if s := byName["runs"]; s.Kind != KindCounter || s.Value != 3 {
		t.Errorf("runs snapshot = %+v", s)
	}
	if s := byName["depth"]; s.Kind != KindGauge || s.Value != 7 {
		t.Errorf("depth snapshot = %+v", s)
	}
	s := byName["lat"]
	if s.Kind != KindHistogram || s.Count != 6 || s.Sum != 1006 || s.Min != 0 || s.Max != 1000 {
		t.Errorf("lat snapshot = %+v", s)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 6 {
		t.Errorf("bucket counts sum to %d, want 6", bucketTotal)
	}
}

func TestBucketUpperBound(t *testing.T) {
	if got := bucketUpperBound(0); got != 0 {
		t.Errorf("bucket 0 upper bound = %d", got)
	}
	if got := bucketUpperBound(3); got != 7 {
		t.Errorf("bucket 3 upper bound = %d", got)
	}
	if got := bucketUpperBound(63); got != math.MaxInt64 {
		t.Errorf("bucket 63 upper bound = %d", got)
	}
}

func TestScopeLabel(t *testing.T) {
	sc := NewScope()
	if got := sc.Label("build"); got != "build" {
		t.Errorf("unnamed label = %q", got)
	}
	named := sc.Named("scheme=even-cycle")
	if got := named.Label("build"); got != "scheme=even-cycle: build" {
		t.Errorf("named label = %q", got)
	}
	if sc.Name() != "" || named.Name() != "scheme=even-cycle" {
		t.Error("Named must not mutate the receiver")
	}
	// Named and WithTracer are value-copies sharing one registry.
	named.Counter("c").Inc()
	if got := sc.Counter("c").Value(); got != 1 {
		t.Errorf("derived scopes must share the registry, got %d", got)
	}
}

func TestProgressLines(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, 50*time.Millisecond)
	defer p.Close()
	p.StartPhase("unit-test build", 10)
	p.SetExtra(func() string { return "detail-string" })
	p.Add(4)
	time.Sleep(120 * time.Millisecond)
	p.EndPhase()
	out := buf.String()
	if !strings.Contains(out, "progress: unit-test build 4/10 (40.0%)") {
		t.Errorf("missing progress line in %q", out)
	}
	if !strings.Contains(out, "eta") {
		t.Errorf("missing ETA in %q", out)
	}
	if !strings.Contains(out, "detail-string") {
		t.Errorf("missing extra detail in %q", out)
	}
	if !strings.Contains(out, "done") {
		t.Errorf("missing final line in %q", out)
	}
	// After EndPhase the reporter is quiet.
	buf.Reset()
	time.Sleep(120 * time.Millisecond)
	if got := buf.String(); got != "" {
		t.Errorf("lines emitted after EndPhase: %q", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the ticker goroutine writes
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}
