package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
)

// ManifestSchema identifies the run-manifest JSON shape; bump the suffix on
// breaking changes. The machine-checkable schema is committed at
// docs/run-manifest.schema.json and enforced by cmd/manifestcheck in CI.
const ManifestSchema = "hidinglcp/run-manifest/v1"

// RunManifest is the single JSON artifact a CLI run leaves behind: what ran
// (tool, args, config, git revision), when and for how long, how it ended,
// and a snapshot of every metric plus any retained spans and events.
type RunManifest struct {
	Schema      string            `json:"schema"`
	Tool        string            `json:"tool"`
	Args        []string          `json:"args,omitempty"`
	Config      map[string]string `json:"config,omitempty"`
	GitRevision string            `json:"git_revision,omitempty"`
	GitDirty    bool              `json:"git_dirty,omitempty"`
	GoVersion   string            `json:"go_version,omitempty"`
	StartUnixNS int64             `json:"start_unix_ns"`
	EndUnixNS   int64             `json:"end_unix_ns"`
	DurationNS  int64             `json:"duration_ns"`
	Outcome     string            `json:"outcome"`
	Error       string            `json:"error,omitempty"`
	Metrics     []MetricSnapshot  `json:"metrics"`
	Spans       []SpanRecord      `json:"spans,omitempty"`
	Events      []EventRecord     `json:"events,omitempty"`
}

// NewManifest opens a manifest for one run of tool, stamping the start
// time, go version, and the git revision baked into the binary.
func NewManifest(tool string, args []string) *RunManifest {
	rev, dirty := GitRevision()
	return &RunManifest{
		Schema:      ManifestSchema,
		Tool:        tool,
		Args:        args,
		Config:      map[string]string{},
		GitRevision: rev,
		GitDirty:    dirty,
		GoVersion:   runtime.Version(),
		StartUnixNS: Now(),
	}
}

// SetConfig records one configuration key (typically a resolved flag).
func (m *RunManifest) SetConfig(key, value string) {
	if m == nil {
		return
	}
	if m.Config == nil {
		m.Config = map[string]string{}
	}
	m.Config[key] = value
}

// Finalize stamps the end time and outcome and freezes the scope's metrics
// (and the tracer's spans and events, when one is attached).
func (m *RunManifest) Finalize(sc Scope, runErr error) {
	if m == nil {
		return
	}
	m.EndUnixNS = Now()
	m.DurationNS = m.EndUnixNS - m.StartUnixNS
	if runErr != nil {
		m.Outcome = "error"
		m.Error = runErr.Error()
	} else {
		m.Outcome = "ok"
	}
	m.Metrics = sc.Registry().Snapshot()
	if m.Metrics == nil {
		m.Metrics = []MetricSnapshot{}
	}
	if tr := sc.Tracer(); tr != nil {
		// Leave empty slices nil so omitempty keeps the JSON round-trippable.
		if spans := tr.Spans(); len(spans) > 0 {
			m.Spans = spans
		}
		if events := tr.Events(); len(events) > 0 {
			m.Events = events
		}
	}
}

// MarshalIndent renders the manifest as indented JSON.
func (m *RunManifest) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// WriteFile writes the manifest as indented JSON to path.
func (m *RunManifest) WriteFile(path string) error {
	data, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GitRevision returns the VCS revision stamped into the running binary by
// the go tool, and whether the working tree was dirty at build time. It
// reports "unknown" when no build info is available (e.g. under `go test`).
func GitRevision() (rev string, dirty bool) {
	rev = "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return rev, false
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}
