// Package history is the longitudinal half of the telemetry plane: it
// appends finalized run manifests into a history directory, loads them back
// ordered by start time, and diffs latest-vs-baseline (plus N-run trends)
// under field-wise thresholds in the style of cmd/benchjson diff. The live
// half — /metrics, /events, /trace — lives in internal/obs/export.
package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hidinglcp/internal/obs"
)

// Entry is one manifest on disk: the parsed document plus where it lives.
type Entry struct {
	Path     string
	Manifest *obs.RunManifest
}

// Append writes a finalized manifest into dir (created if missing) under a
// name that sorts chronologically: <tool>-<start_unix_ns zero-padded>.json.
// It returns the path written.
func Append(dir string, m *obs.RunManifest) (string, error) {
	if m == nil {
		return "", fmt.Errorf("history: nil manifest")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("history: %w", err)
	}
	name := fmt.Sprintf("%s-%020d.json", sanitizeTool(m.Tool), m.StartUnixNS)
	path := filepath.Join(dir, name)
	if err := m.WriteFile(path); err != nil {
		return "", fmt.Errorf("history: %w", err)
	}
	return path, nil
}

// sanitizeTool keeps the tool segment filename- and sort-safe.
func sanitizeTool(tool string) string {
	if tool == "" {
		return "run"
	}
	var b strings.Builder
	for _, r := range tool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// Load reads every manifest in dir, oldest first by start time (filename
// order breaks ties). A missing dir is an empty history, not an error;
// unparseable files are.
func Load(dir string) ([]Entry, error) {
	files, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	var out []Entry
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, f.Name())
		m, err := ReadManifest(path)
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Path: path, Manifest: m})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Manifest, out[j].Manifest
		if a.StartUnixNS != b.StartUnixNS {
			return a.StartUnixNS < b.StartUnixNS
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}

// LoadTool is Load filtered to one tool ("" keeps everything).
func LoadTool(dir, tool string) ([]Entry, error) {
	all, err := Load(dir)
	if err != nil || tool == "" {
		return all, err
	}
	var out []Entry
	for _, e := range all {
		if e.Manifest.Tool == tool {
			out = append(out, e)
		}
	}
	return out, nil
}

// Latest returns the newest entry of a history slice (nil when empty).
func Latest(entries []Entry) *Entry {
	if len(entries) == 0 {
		return nil
	}
	return &entries[len(entries)-1]
}

// ReadManifest parses one manifest file, checking the schema marker so a
// stray JSON document cannot silently enter the history.
func ReadManifest(path string) (*obs.RunManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	var m obs.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("history: parsing %s: %w", path, err)
	}
	if m.Schema != obs.ManifestSchema {
		return nil, fmt.Errorf("history: %s: schema %q, want %q", path, m.Schema, obs.ManifestSchema)
	}
	return &m, nil
}
