package history

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hidinglcp/internal/obs"
)

// manifest builds a finalized-looking manifest from (name, value) counter
// pairs at the given start time.
func manifest(tool string, start int64, counters map[string]int64) *obs.RunManifest {
	m := &obs.RunManifest{
		Schema:      obs.ManifestSchema,
		Tool:        tool,
		StartUnixNS: start,
		Outcome:     "ok",
	}
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	// Registry snapshots are name-sorted; mimic that for realism.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		m.Metrics = append(m.Metrics, obs.MetricSnapshot{Name: n, Kind: obs.KindCounter, Value: counters[n]})
	}
	return m
}

// TestAppendLoadRoundTrip: Append writes chronologically-sorting filenames
// and Load returns entries oldest-first regardless of write order.
func TestAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, start := range []int64{300, 100, 200} {
		if _, err := Append(dir, manifest("experiments", start, map[string]int64{"c": start})); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(entries))
	}
	for i, want := range []int64{100, 200, 300} {
		if got := entries[i].Manifest.StartUnixNS; got != want {
			t.Errorf("entry %d start = %d, want %d", i, got, want)
		}
	}
	if l := Latest(entries); l.Manifest.StartUnixNS != 300 {
		t.Errorf("Latest = %d, want 300", l.Manifest.StartUnixNS)
	}
}

// TestLoadMissingDirIsEmpty: a history that does not exist yet is empty,
// not an error (first run of the CI gate).
func TestLoadMissingDirIsEmpty(t *testing.T) {
	entries, err := Load(filepath.Join(t.TempDir(), "nope"))
	if err != nil || entries != nil {
		t.Errorf("Load(missing) = %v, %v", entries, err)
	}
}

// TestLoadToolFilters keeps only the requested tool's runs.
func TestLoadToolFilters(t *testing.T) {
	dir := t.TempDir()
	Append(dir, manifest("experiments", 1, nil)) //nolint:errcheck
	Append(dir, manifest("lcpcheck", 2, nil))    //nolint:errcheck
	entries, err := LoadTool(dir, "lcpcheck")
	if err != nil || len(entries) != 1 || entries[0].Manifest.Tool != "lcpcheck" {
		t.Errorf("LoadTool = %+v, %v", entries, err)
	}
}

// TestReadManifestRejectsWrongSchema: stray JSON cannot enter the history.
func TestReadManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"schema":"something/else","tool":"x"}`), 0o644) //nolint:errcheck
	if _, err := ReadManifest(path); err == nil {
		t.Error("wrong-schema manifest accepted")
	}
}

// TestDiffSeededCounterRegression is the acceptance check: a counter that
// moved beyond the ratio limits regresses in both directions.
func TestDiffSeededCounterRegression(t *testing.T) {
	base := manifest("experiments", 1, map[string]int64{"nbhd.instances": 1000, "steady": 50})
	worse := manifest("experiments", 2, map[string]int64{"nbhd.instances": 1200, "steady": 50})
	rep := Diff(base, worse, DefaultThresholds())
	if !rep.HasRegressions() || len(rep.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want exactly the seeded one", rep.Regressions)
	}
	reg := rep.Regressions[0]
	if reg.Metric != "nbhd.instances" || reg.Reason != "ratio" || reg.Ratio != 1.2 {
		t.Errorf("regression = %+v", reg)
	}

	// A drop below MinRatio is just as much a regression (lost coverage).
	shrunk := manifest("experiments", 3, map[string]int64{"nbhd.instances": 500, "steady": 50})
	if rep := Diff(base, shrunk, DefaultThresholds()); !rep.HasRegressions() {
		t.Error("shrunk counter passed the gate")
	}

	// Within limits: clean.
	steady := manifest("experiments", 4, map[string]int64{"nbhd.instances": 1050, "steady": 50})
	if rep := Diff(base, steady, DefaultThresholds()); rep.HasRegressions() {
		t.Errorf("in-limit drift regressed: %+v", rep.Regressions)
	}
}

// TestDiffMissingMetricRegresses: deleting instrumentation cannot pass the
// gate, but Skip-listed metrics may come and go.
func TestDiffMissingMetricRegresses(t *testing.T) {
	base := manifest("t", 1, map[string]int64{"kept": 5, "deleted": 7})
	latest := manifest("t", 2, map[string]int64{"kept": 5})
	rep := Diff(base, latest, DefaultThresholds())
	if len(rep.Regressions) != 1 || rep.Regressions[0].Reason != "missing" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	th := DefaultThresholds()
	th.PerMetric = map[string]Limits{"deleted": {Skip: true}}
	if rep := Diff(base, latest, th); rep.HasRegressions() {
		t.Errorf("skip-listed missing metric regressed: %+v", rep.Regressions)
	}
}

// TestDiffSkipAndNewMetrics: skipped metrics never regress however far they
// move; brand-new metrics are reported but never regress.
func TestDiffSkipAndNewMetrics(t *testing.T) {
	base := manifest("t", 1, map[string]int64{"nbhd.shards.stolen": 10})
	latest := manifest("t", 2, map[string]int64{"nbhd.shards.stolen": 400, "fresh": 1})
	th := DefaultThresholds()
	th.PerMetric = map[string]Limits{"nbhd.shards.stolen": {Skip: true}}
	rep := Diff(base, latest, th)
	if rep.HasRegressions() {
		t.Errorf("regressions = %+v", rep.Regressions)
	}
	var sawSkip, sawNew bool
	for _, row := range rep.Rows {
		if row.Metric == "nbhd.shards.stolen" && row.Verdict == "skip" {
			sawSkip = true
		}
		if row.Metric == "fresh" && row.Verdict == "new" {
			sawNew = true
		}
	}
	if !sawSkip || !sawNew {
		t.Errorf("rows = %+v", rep.Rows)
	}
}

// TestCheckInvariants is the second acceptance check: a manifest violating
// extracted = hits + misses fails the gate even against itself.
func TestCheckInvariants(t *testing.T) {
	ok := manifest("t", 1, map[string]int64{
		"nbhd.views.extracted": 100, "nbhd.intern.hits": 90, "nbhd.intern.misses": 10,
	})
	if regs := CheckInvariants(ok); len(regs) != 0 {
		t.Errorf("consistent manifest flagged: %+v", regs)
	}
	bad := manifest("t", 2, map[string]int64{
		"nbhd.views.extracted": 100, "nbhd.intern.hits": 90, "nbhd.intern.misses": 5,
	})
	regs := CheckInvariants(bad)
	if len(regs) != 1 || regs[0].Reason != "invariant" {
		t.Fatalf("regressions = %+v", regs)
	}
	// The violation also surfaces through Diff, so -fail-on-regress trips.
	if rep := Diff(ok, bad, DefaultThresholds()); !rep.HasRegressions() {
		t.Error("Diff missed the invariant violation")
	}
	// Manifests without the subsystem's metrics pass vacuously.
	if regs := CheckInvariants(manifest("t", 3, map[string]int64{"other": 1})); len(regs) != 0 {
		t.Errorf("vacuous manifest flagged: %+v", regs)
	}
}

// TestCheckInvariantsFaultConservation covers the §10 checks: verdict
// conservation and crash accounting.
func TestCheckInvariantsFaultConservation(t *testing.T) {
	ok := manifest("t", 1, map[string]int64{
		"sim.nodes": 20, "sim.verdicts.accepted": 15, "sim.verdicts.rejected": 2,
		"sim.verdicts.crashed": 3, "sim.crashed": 3,
	})
	if regs := CheckInvariants(ok); len(regs) != 0 {
		t.Errorf("consistent fault manifest flagged: %+v", regs)
	}
	lost := manifest("t", 2, map[string]int64{
		"sim.nodes": 20, "sim.verdicts.accepted": 14, "sim.verdicts.rejected": 2,
		"sim.verdicts.crashed": 3, "sim.crashed": 3,
	})
	if regs := CheckInvariants(lost); len(regs) != 1 || regs[0].Metric != "sim.verdicts" {
		t.Errorf("lost verdict not flagged: %+v", regs)
	}
	unaccounted := manifest("t", 3, map[string]int64{
		"sim.nodes": 20, "sim.verdicts.accepted": 15, "sim.verdicts.rejected": 2,
		"sim.verdicts.crashed": 3, "sim.crashed": 4,
	})
	if regs := CheckInvariants(unaccounted); len(regs) != 1 || regs[0].Metric != "sim.verdicts.crashed" {
		t.Errorf("unaccounted crash not flagged: %+v", regs)
	}
}

// TestReportRendering: the JSON report round-trips and the Markdown report
// carries the verdicts and the trend table.
func TestReportRendering(t *testing.T) {
	dir := t.TempDir()
	var entries []Entry
	for i, v := range []int64{100, 110, 300} {
		m := manifest("experiments", int64(i+1), map[string]int64{"nbhd.instances": v})
		if _, err := Append(dir, m); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, Entry{Manifest: m})
	}
	rep := Diff(entries[1].Manifest, entries[2].Manifest, DefaultThresholds())
	rep.AddTrend(entries)

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if len(back.Regressions) != 1 || len(back.Trend) != 1 || len(back.Trend[0].Values) != 3 {
		t.Errorf("round-tripped report = %+v", back)
	}

	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"1 regression(s)", "| nbhd.instances |", "REGRESS", "## Trend", "100, 110, 300"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown report missing %q:\n%s", want, out)
		}
	}
}

// TestThresholdInheritance: per-metric overrides inherit unset fields from
// the default, field-wise.
func TestThresholdInheritance(t *testing.T) {
	th := Thresholds{
		Default:   Limits{MaxRatio: 1.5, MinRatio: 0.5},
		PerMetric: map[string]Limits{"tight": {MaxRatio: 1.01}},
	}
	l := th.limitsFor("tight")
	if l.MaxRatio != 1.01 || l.MinRatio != 0.5 || l.Skip {
		t.Errorf("limitsFor(tight) = %+v", l)
	}
	if l := th.limitsFor("other"); l.MaxRatio != 1.5 {
		t.Errorf("limitsFor(other) = %+v", l)
	}
}
