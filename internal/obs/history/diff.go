package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"hidinglcp/internal/obs"
)

// Limits bounds the acceptable latest/baseline ratio for one metric. A zero
// ratio field means "no limit" (or, inside a per-metric override, "inherit
// the default"). Skip excludes a metric entirely — the escape hatch for
// scheduling-sensitive counters (work-stealing tallies, prune counts) whose
// value is a function of GOMAXPROCS, not of the code under test.
type Limits struct {
	MaxRatio float64 `json:"max_ratio,omitempty"`
	MinRatio float64 `json:"min_ratio,omitempty"`
	Skip     bool    `json:"skip,omitempty"`
}

// Thresholds is a regression policy for manifest diffs: default limits plus
// per-metric overrides matched by exact metric name.
type Thresholds struct {
	Default   Limits            `json:"default"`
	PerMetric map[string]Limits `json:"per_metric,omitempty"`
}

// DefaultThresholds allows ±10% drift on every comparable metric. The
// pipelines' headline counters (instances enumerated, views extracted,
// intern classes) are deterministic for a pinned configuration, so even the
// default catches real regressions; scheduling-sensitive metrics should be
// Skip-listed per deployment.
func DefaultThresholds() Thresholds {
	return Thresholds{Default: Limits{MaxRatio: 1.1, MinRatio: 0.9}}
}

// limitsFor resolves the effective limits for one metric: per-metric fields
// override the default field-wise; zero fields inherit (Skip never
// inherits — it is only meaningful as an explicit override).
func (t Thresholds) limitsFor(name string) Limits {
	l := t.Default
	if o, ok := t.PerMetric[name]; ok {
		if o.MaxRatio != 0 {
			l.MaxRatio = o.MaxRatio
		}
		if o.MinRatio != 0 {
			l.MinRatio = o.MinRatio
		}
		l.Skip = o.Skip
	}
	return l
}

// Regression is one exceeded limit, a metric that vanished from the latest
// run (Reason "missing"), or a violated cross-metric invariant (Reason
// "invariant").
type Regression struct {
	Metric string  `json:"metric"`
	Reason string  `json:"reason"` // "ratio", "missing", "invariant"
	Base   float64 `json:"base,omitempty"`
	Latest float64 `json:"latest,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`
	Limit  float64 `json:"limit,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

func (r Regression) String() string {
	switch r.Reason {
	case "missing":
		return fmt.Sprintf("%s: present in baseline but missing from latest run", r.Metric)
	case "invariant":
		return fmt.Sprintf("%s: %s", r.Metric, r.Detail)
	default:
		return fmt.Sprintf("%s: %.0f -> %.0f (%.3fx outside limit %.3fx)",
			r.Metric, r.Base, r.Latest, r.Ratio, r.Limit)
	}
}

// Row is one compared metric in a report, regression or not.
type Row struct {
	Metric  string  `json:"metric"`
	Base    float64 `json:"base"`
	Latest  float64 `json:"latest"`
	Ratio   float64 `json:"ratio"`
	Verdict string  `json:"verdict"` // "ok", "skip", "new", "missing", "REGRESS"
}

// Report is the outcome of one latest-vs-baseline diff plus the invariant
// checks on the latest run; it serializes as the JSON report and renders as
// the Markdown trend report.
type Report struct {
	Tool        string       `json:"tool"`
	BaseStart   int64        `json:"base_start_unix_ns"`
	LatestStart int64        `json:"latest_start_unix_ns"`
	Rows        []Row        `json:"rows"`
	Regressions []Regression `json:"regressions,omitempty"`
	Trend       []TrendRow   `json:"trend,omitempty"`
}

// TrendRow tracks one metric across the last N runs, oldest first.
type TrendRow struct {
	Metric string    `json:"metric"`
	Values []float64 `json:"values"`
}

// comparableValue reduces a snapshot to the number the gate compares:
// counters and gauges by value, histograms by observation count (durations
// themselves are machine-speed noise; whether the code observed the same
// number of times is not).
func comparableValue(s obs.MetricSnapshot) (float64, bool) {
	switch s.Kind {
	case obs.KindCounter, obs.KindGauge:
		return float64(s.Value), true
	case obs.KindHistogram:
		return float64(s.Count), true
	}
	return 0, false
}

// metricIndex maps a manifest's metrics by name.
func metricIndex(m *obs.RunManifest) map[string]obs.MetricSnapshot {
	idx := make(map[string]obs.MetricSnapshot, len(m.Metrics))
	for _, s := range m.Metrics {
		idx[s.Name] = s
	}
	return idx
}

// Diff compares the latest manifest against the baseline under the
// thresholds and runs the invariant checks on the latest run. Metrics only
// in the latest run are new and never regress; metrics only in the baseline
// regress with Reason "missing", so a gate cannot pass by deleting its
// instrumentation.
func Diff(base, latest *obs.RunManifest, th Thresholds) *Report {
	rep := &Report{
		Tool:        latest.Tool,
		BaseStart:   base.StartUnixNS,
		LatestStart: latest.StartUnixNS,
	}
	latestIdx := metricIndex(latest)
	baseNames := make([]string, 0, len(base.Metrics))
	baseIdx := metricIndex(base)
	for name := range baseIdx {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)

	for _, name := range baseNames {
		bs := baseIdx[name]
		bv, ok := comparableValue(bs)
		if !ok {
			continue
		}
		lim := th.limitsFor(name)
		ls, present := latestIdx[name]
		if !present {
			if lim.Skip {
				rep.Rows = append(rep.Rows, Row{Metric: name, Base: bv, Verdict: "skip"})
				continue
			}
			rep.Rows = append(rep.Rows, Row{Metric: name, Base: bv, Verdict: "missing"})
			rep.Regressions = append(rep.Regressions, Regression{Metric: name, Reason: "missing", Base: bv})
			continue
		}
		lv, _ := comparableValue(ls)
		row := Row{Metric: name, Base: bv, Latest: lv}
		switch {
		case lim.Skip:
			row.Verdict = "skip"
		case bv == 0 && lv == 0:
			row.Verdict = "ok"
		case bv == 0:
			// No baseline signal to ratio against; growth from zero is a
			// change worth flagging only via explicit per-metric limits.
			row.Ratio = 0
			row.Verdict = "ok"
		default:
			row.Ratio = lv / bv
			row.Verdict = "ok"
			if lim.MaxRatio != 0 && row.Ratio > lim.MaxRatio {
				row.Verdict = "REGRESS"
				rep.Regressions = append(rep.Regressions, Regression{
					Metric: name, Reason: "ratio", Base: bv, Latest: lv, Ratio: row.Ratio, Limit: lim.MaxRatio,
				})
			} else if lim.MinRatio != 0 && row.Ratio < lim.MinRatio {
				row.Verdict = "REGRESS"
				rep.Regressions = append(rep.Regressions, Regression{
					Metric: name, Reason: "ratio", Base: bv, Latest: lv, Ratio: row.Ratio, Limit: lim.MinRatio,
				})
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, s := range latest.Metrics {
		if _, ok := baseIdx[s.Name]; ok {
			continue
		}
		if lv, ok := comparableValue(s); ok {
			rep.Rows = append(rep.Rows, Row{Metric: s.Name, Latest: lv, Verdict: "new"})
		}
	}
	rep.Regressions = append(rep.Regressions, CheckInvariants(latest)...)
	return rep
}

// Invariants the pipelines promise, checked on every gated run (not just
// against a baseline): a violated invariant means the run itself is
// internally inconsistent, which no ratio threshold can excuse. Each check
// fires only when all of its metrics are present, so manifests from tools
// that never touch a subsystem pass vacuously.
//
//   - extracted = hits + misses (§8): every extracted view either interned
//     a new equivalence class or hit an existing one.
//   - verdict conservation (§10): every node of a fault-injected run issues
//     exactly one verdict — accepted + rejected + crashed = nodes.
//   - crash accounting (§10): every crash the scheduler injected inside the
//     horizon is accounted by exactly one crashed verdict.
func CheckInvariants(m *obs.RunManifest) []Regression {
	idx := metricIndex(m)
	val := func(name string) (float64, bool) {
		s, ok := idx[name]
		if !ok {
			return 0, false
		}
		v, ok := comparableValue(s)
		return v, ok
	}
	type check struct {
		name   string // metric name the violation reports under
		lhs    []string
		rhs    []string
		detail string
	}
	checks := []check{
		{
			name: "nbhd.views.extracted",
			lhs:  []string{"nbhd.views.extracted"},
			rhs:  []string{"nbhd.intern.hits", "nbhd.intern.misses"},
			detail: "interning conservation violated: " +
				"nbhd.views.extracted != nbhd.intern.hits + nbhd.intern.misses",
		},
		{
			name: "sim.verdicts",
			lhs:  []string{"sim.verdicts.accepted", "sim.verdicts.rejected", "sim.verdicts.crashed"},
			rhs:  []string{"sim.nodes"},
			detail: "verdict conservation violated: " +
				"sim.verdicts.accepted + sim.verdicts.rejected + sim.verdicts.crashed != sim.nodes",
		},
		{
			name: "sim.verdicts.crashed",
			lhs:  []string{"sim.verdicts.crashed"},
			rhs:  []string{"sim.crashed"},
			detail: "crash accounting violated: " +
				"sim.verdicts.crashed != sim.crashed",
		},
	}
	var out []Regression
	for _, c := range checks {
		lhs, rhs := 0.0, 0.0
		complete := true
		for _, n := range c.lhs {
			v, ok := val(n)
			if !ok {
				complete = false
				break
			}
			lhs += v
		}
		for _, n := range c.rhs {
			v, ok := val(n)
			if !ok {
				complete = false
				break
			}
			rhs += v
		}
		if !complete {
			continue
		}
		if lhs != rhs {
			out = append(out, Regression{
				Metric: c.name, Reason: "invariant", Base: rhs, Latest: lhs,
				Detail: fmt.Sprintf("%s (%.0f != %.0f)", c.detail, lhs, rhs),
			})
		}
	}
	return out
}

// AddTrend fills the report's trend table from a history window (oldest
// first, the latest run included): one row per metric present in the latest
// run, one value per run (absent runs contribute 0).
func (r *Report) AddTrend(window []Entry) {
	if len(window) == 0 {
		return
	}
	last := window[len(window)-1].Manifest
	names := make([]string, 0, len(last.Metrics))
	for _, s := range last.Metrics {
		if _, ok := comparableValue(s); ok {
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		row := TrendRow{Metric: name, Values: make([]float64, len(window))}
		for i, e := range window {
			if s, ok := metricIndex(e.Manifest)[name]; ok {
				row.Values[i], _ = comparableValue(s)
			}
		}
		r.Trend = append(r.Trend, row)
	}
}

// HasRegressions reports whether the gate should fail.
func (r *Report) HasRegressions() bool { return len(r.Regressions) > 0 }

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the report as a Markdown document: verdict summary,
// the comparison table, any regressions, and the trend table when present.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run regression report: %s\n\n", r.Tool)
	if r.HasRegressions() {
		fmt.Fprintf(&b, "**%d regression(s) found.**\n\n", len(r.Regressions))
		for _, reg := range r.Regressions {
			fmt.Fprintf(&b, "- %s\n", reg.String())
		}
		b.WriteString("\n")
	} else {
		b.WriteString("No regressions.\n\n")
	}
	b.WriteString("| metric | base | latest | ratio | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, row := range r.Rows {
		ratio := "-"
		if row.Ratio != 0 {
			ratio = fmt.Sprintf("%.3f", row.Ratio)
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %s | %s |\n",
			row.Metric, row.Base, row.Latest, ratio, row.Verdict)
	}
	if len(r.Trend) > 0 {
		fmt.Fprintf(&b, "\n## Trend (last %d runs)\n\n", len(r.Trend[0].Values))
		b.WriteString("| metric | values (oldest first) |\n|---|---|\n")
		for _, tr := range r.Trend {
			vals := make([]string, len(tr.Values))
			for i, v := range tr.Values {
				vals[i] = fmt.Sprintf("%.0f", v)
			}
			fmt.Fprintf(&b, "| %s | %s |\n", tr.Metric, strings.Join(vals, ", "))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
