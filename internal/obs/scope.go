package obs

// Scope is the observability handle the pipelines thread through their hot
// paths: a Registry for metrics, an optional Tracer for spans and events,
// an optional Progress for periodic status lines, and a name that prefixes
// phase labels so concurrent consumers (lcpcheck schemes, experiments) can
// be told apart in the output.
//
// The zero value is a complete no-op — Enabled() is false, every metric
// accessor returns nil (whose methods are nil-safe), Span returns a nil
// span, and Prog returns a nil Progress — so library code instruments
// unconditionally and only pays when a caller opted in.
type Scope struct {
	reg  *Registry
	tr   *Tracer
	prog *Progress
	sink EventSink
	run  string
	name string
}

// NewScope returns a live scope backed by a fresh Registry, with no tracer
// or progress reporter attached.
func NewScope() Scope {
	return Scope{reg: NewRegistry()}
}

// WithTracer returns a copy of the scope that records spans and events
// through t.
func (s Scope) WithTracer(t *Tracer) Scope {
	s.tr = t
	return s
}

// WithProgress returns a copy of the scope that reports progress through p.
func (s Scope) WithProgress(p *Progress) Scope {
	s.prog = p
	return s
}

// WithEvents returns a copy of the scope that emits structured log events
// through sink, stamped with the run correlation ID (see NewRunID).
func (s Scope) WithEvents(sink EventSink, runID string) Scope {
	s.sink = sink
	s.run = runID
	return s
}

// Named returns a copy of the scope whose phase labels are prefixed with
// name (see Label).
func (s Scope) Named(name string) Scope {
	s.name = name
	return s
}

// Name returns the label prefix set by Named.
func (s Scope) Name() string { return s.name }

// Label renders a phase label: "<name>: <op>" under Named, else op.
func (s Scope) Label(op string) string {
	if s.name == "" {
		return op
	}
	return s.name + ": " + op
}

// Enabled reports whether the scope collects metrics.
func (s Scope) Enabled() bool { return s.reg != nil }

// Registry returns the backing registry (nil for a disabled scope).
func (s Scope) Registry() *Registry { return s.reg }

// Tracer returns the attached tracer (nil when tracing is off).
func (s Scope) Tracer() *Tracer { return s.tr }

// Counter returns the named counter, or nil on a disabled scope.
func (s Scope) Counter(name string) *Counter { return s.reg.Counter(name) }

// Gauge returns the named gauge, or nil on a disabled scope.
func (s Scope) Gauge(name string) *Gauge { return s.reg.Gauge(name) }

// Histogram returns the named histogram, or nil on a disabled scope.
func (s Scope) Histogram(name string) *Histogram { return s.reg.Histogram(name) }

// Span starts a root span, or returns the nil no-op span when no tracer is
// attached. End the returned span to record it.
func (s Scope) Span(name string) *Span {
	if s.tr == nil {
		return nil
	}
	return s.tr.Start(name, nil)
}

// Event records a point-in-time event into the tracer's ring buffer.
func (s Scope) Event(name, detail string) {
	if s.tr != nil {
		s.tr.Event(name, detail)
	}
}

// Prog returns the attached progress reporter; the nil Progress returned on
// a plain scope accepts every method.
func (s Scope) Prog() *Progress { return s.prog }

// Run returns the run correlation ID set by WithEvents ("" when none).
func (s Scope) Run() string { return s.run }

// EventsEnabled reports whether an event sink is attached. Hot call sites
// check it before assembling field slices, so the disabled path costs one
// nil comparison and nothing else.
func (s Scope) EventsEnabled() bool { return s.sink != nil }

// EmitEvent sends one structured event to the attached sink, stamping the
// time, the run ID, and the scope's phase label. Without a sink it is a
// no-op that never touches the fields.
func (s Scope) EmitEvent(level Level, name string, fields ...Attr) {
	if s.sink == nil {
		return
	}
	s.sink.EmitLogEvent(LogEvent{
		TimeUnixNS: Now(),
		Level:      level,
		Name:       name,
		Run:        s.run,
		Phase:      s.name,
		Fields:     fields,
	})
}

// EmitSpanEvent is EmitEvent correlated to an in-flight span (a nil span
// leaves the correlation ID zero).
func (s Scope) EmitSpanEvent(sp *Span, level Level, name string, fields ...Attr) {
	if s.sink == nil {
		return
	}
	s.sink.EmitLogEvent(LogEvent{
		TimeUnixNS: Now(),
		Level:      level,
		Name:       name,
		Run:        s.run,
		Phase:      s.name,
		Span:       sp.ID(),
		Fields:     fields,
	})
}
