package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultProgressInterval paces the periodic status lines.
const defaultProgressInterval = 2 * time.Second

// Progress prints periodic single-line status reports — units done/total,
// percentage, elapsed time, ETA, plus an optional live detail string — for
// long-running phases like sharded builds and exhaustive sweeps. One
// Progress serves a whole run: each pipeline opens a phase (StartPhase),
// bumps the done count as shards finish (Add), and closes it (EndPhase),
// which prints a final line.
//
// The nil Progress accepts every method, so pipelines report
// unconditionally and only a CLI's -progress flag makes lines appear.
// Progress is safe for concurrent use; Add is a single atomic increment.
type Progress struct {
	w        io.Writer
	interval time.Duration

	done atomic.Int64

	mu     sync.Mutex
	label  string
	total  int64
	start  time.Time
	active bool
	extra  func() string

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewProgress returns a running reporter writing to w every interval
// (<= 0 selects 2s). Close it to stop the ticker goroutine.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = defaultProgressInterval
	}
	p := &Progress{w: w, interval: interval, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.emit(false)
		}
	}
}

// StartPhase opens a phase of total units (0 when unknown; the line then
// omits percentage and ETA) and resets the done count and detail callback.
func (p *Progress) StartPhase(label string, total int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = label
	p.total = total
	p.start = time.Now()
	p.active = true
	p.extra = nil
	p.mu.Unlock()
	p.done.Store(0)
}

// SetExtra installs a callback rendered at each report; it must be safe to
// call from the ticker goroutine (read atomics, not plain fields).
func (p *Progress) SetExtra(f func() string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.extra = f
	p.mu.Unlock()
}

// Add records n completed units of the current phase.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// EndPhase prints the phase's final line and deactivates reporting until
// the next StartPhase.
func (p *Progress) EndPhase() {
	if p == nil {
		return
	}
	p.emit(true)
	p.mu.Lock()
	p.active = false
	p.extra = nil
	p.mu.Unlock()
}

// Close stops the ticker goroutine. The Progress must not be used after.
func (p *Progress) Close() {
	if p == nil {
		return
	}
	close(p.stop)
	p.wg.Wait()
}

// emit renders one status line while a phase is active.
func (p *Progress) emit(final bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return
	}
	done := p.done.Load()
	elapsed := time.Since(p.start)
	line := fmt.Sprintf("progress: %s %d", p.label, done)
	if p.total > 0 {
		line += fmt.Sprintf("/%d (%.1f%%)", p.total, 100*float64(done)/float64(p.total))
	}
	line += fmt.Sprintf(" elapsed %s", roundDuration(elapsed))
	if final {
		line += " done"
	} else if p.total > 0 && done > 0 && done < p.total {
		eta := time.Duration(float64(elapsed) * float64(p.total-done) / float64(done))
		line += fmt.Sprintf(" eta %s", roundDuration(eta))
	}
	if p.extra != nil {
		if detail := p.extra(); detail != "" {
			line += " — " + detail
		}
	}
	fmt.Fprintln(p.w, line)
}

// roundDuration trims durations to a readable precision.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
