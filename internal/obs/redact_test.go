package obs

import (
	"strings"
	"testing"
)

func TestRedactStringHidesBytes(t *testing.T) {
	secret := "SECRET-CERT-0xdeadbeef"
	got := RedactString(secret)
	if strings.Contains(got, "SECRET") || strings.Contains(got, "deadbeef") {
		t.Fatalf("RedactString leaked input bytes: %q", got)
	}
	if !strings.Contains(got, "len=22") {
		t.Errorf("RedactString(%q) = %q, want the length to survive", secret, got)
	}
	if got != RedactString(secret) {
		t.Error("RedactString is not deterministic")
	}
	if got == RedactString("SECRET-CERT-0xdeadbeee") {
		t.Error("RedactString digests distinct inputs identically (32-bit collision on adjacent strings is a red flag)")
	}
}

func TestRedactBytesMatchesString(t *testing.T) {
	if RedactBytes([]byte("abc")) != RedactString("abc") {
		t.Error("RedactBytes and RedactString disagree on identical content")
	}
}

func TestRedactStringsDistinguishesBoundaries(t *testing.T) {
	a := RedactStrings([]string{"ab", "c"})
	b := RedactStrings([]string{"a", "bc"})
	if a == b {
		t.Errorf("RedactStrings conflates different label boundaries: %q", a)
	}
	got := RedactStrings([]string{"red", "blue", "red"})
	for _, leak := range []string{"red", "blue"} {
		if strings.Contains(got, leak) {
			t.Fatalf("RedactStrings leaked label %q: %q", leak, got)
		}
	}
	if !strings.Contains(got, "n=3") || !strings.Contains(got, "bytes=10") {
		t.Errorf("RedactStrings summary missing counts: %q", got)
	}
}
