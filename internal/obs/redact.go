package obs

import (
	"fmt"
	"hash/fnv"
)

// Redaction is the only sanctioned way certificate-derived bytes cross into
// the observability layer. The hiding property (Section 2.4 of the paper)
// promises that certificates reveal nothing about the witness coloring
// beyond its existence, so raw label bytes must never reach metrics, span
// attributes, events, progress lines, run manifests, or log output — all of
// which outlive the run and are routinely uploaded as CI artifacts. The
// certflow analyzer (internal/analysis) enforces this statically: a value
// tainted by certificate sources may reach an obs sink only through the
// Redact* functions below (or a length), which keep the observable residue
// to sizes and one-way digests.

// RedactString reduces s to its length and a 32-bit FNV-1a digest —
// enough to correlate two occurrences of the same value across a trace,
// nothing to reconstruct the bytes from.
func RedactString(s string) string {
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("len=%d,fnv32a=%08x", len(s), h.Sum32())
}

// RedactBytes is RedactString for byte slices (canonical binary keys).
func RedactBytes(b []byte) string {
	h := fnv.New32a()
	h.Write(b)
	return fmt.Sprintf("len=%d,fnv32a=%08x", len(b), h.Sum32())
}

// RedactStrings reduces a labeling (one certificate per node) to its
// cardinality, total byte count, and a digest over the length-prefixed
// concatenation, so equal labelings redact equal and permuted ones do not.
func RedactStrings(ss []string) string {
	h := fnv.New32a()
	var lenBuf [10]byte
	total := 0
	for _, s := range ss {
		total += len(s)
		n := putUvarint(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:n])
		h.Write([]byte(s))
	}
	return fmt.Sprintf("n=%d,bytes=%d,fnv32a=%08x", len(ss), total, h.Sum32())
}

// putUvarint is encoding/binary.PutUvarint, inlined to keep the redactors'
// import set minimal.
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}
