// Package obs is the repository's dependency-free observability layer:
// atomic counters, gauges, and histograms collected in a Registry;
// lightweight span tracing with parent/child nesting and a ring-buffered
// event log (Tracer); periodic progress reporting with ETA (Progress); and
// a RunManifest that captures configuration, git revision, timings, and all
// metric snapshots as one JSON artifact per run.
//
// Everything hangs off a Scope, the handle the pipelines thread through
// their hot paths. The zero-value Scope is a complete no-op — every method
// on it, and on the nil metrics it hands out, is safe and free — so library
// callers and tests pay nothing unless a CLI opts in with -metrics-json,
// -trace, -progress, or -pprof.
//
// obs is the sanctioned owner of the wall clock: the nondet analyzer bans
// time.Now in every other library package, and the obspurity analyzer keeps
// both the clock and obs reads out of decoder Decide bodies, so
// instrumentation can never leak nondeterminism into the determinism
// contract (DESIGN.md Section 7).
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Now returns the current wall-clock time in nanoseconds since the Unix
// epoch. It is the one clock the library packages are allowed to read (via
// obs), so timings stay out of decoder bodies and deterministic code paths.
func Now() int64 { return time.Now().UnixNano() }

// Since returns the nanoseconds elapsed since a Now() reading.
func Since(startNS int64) int64 { return Now() - startNS }

// Kind discriminates metric snapshots.
type Kind string

// The metric kinds a Registry holds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing atomic counter. The nil Counter —
// what a disabled Scope hands out — accepts Add/Inc and reports 0.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge accepts every
// method and reports 0.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per power of two: bucket 0 holds observations
// of 0, bucket i>0 holds observations v with 2^(i-1) <= v < 2^i.
const histBuckets = 64

// Histogram accumulates int64 observations (typically durations in
// nanoseconds or batch sizes) into power-of-two buckets with atomic count,
// sum, min, and max. The nil Histogram accepts Observe and snapshots empty.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialized to MaxInt64 by newHistogram
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one populated histogram bucket: Count observations with value
// at most Le (and above the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// bucketUpperBound is the largest value bucket i holds.
func bucketUpperBound(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// MetricSnapshot is one metric's frozen state, as serialized into run
// manifests. Value carries counters and gauges; Count/Sum/Min/Max/Buckets
// carry histograms.
type MetricSnapshot struct {
	Name    string   `json:"name"`
	Kind    Kind     `json:"kind"`
	Value   int64    `json:"value,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry is a named collection of metrics. Lookups get-or-create, so
// instrumentation sites never need registration boilerplate; the nil
// Registry hands out nil metrics, completing the no-op chain of the
// zero-value Scope.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot freezes every registered metric, sorted by name (ties broken by
// kind, though names are unique per kind in practice).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range r.hists {
		s := MetricSnapshot{Name: name, Kind: KindHistogram, Count: h.count.Load(), Sum: h.sum.Load()}
		if s.Count > 0 {
			s.Min = h.min.Load()
			s.Max = h.max.Load()
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					s.Buckets = append(s.Buckets, Bucket{Le: bucketUpperBound(i), Count: n})
				}
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
