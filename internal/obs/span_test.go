package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	sc := NewScope().WithTracer(tr)
	root := sc.Span("root")
	child := root.Child("child")
	grand := child.Child("grandchild")
	grand.SetAttr("shard", "3")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Records land in end order: grandchild, child, root.
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %d", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, root id = %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, child id = %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	attrs := byName["grandchild"].Attrs
	if len(attrs) != 1 || attrs[0].Key != "shard" || attrs[0].Value != "3" {
		t.Errorf("grandchild attrs = %v", attrs)
	}
	for _, s := range spans {
		if s.DurationNS < 0 || s.StartUnixNS == 0 {
			t.Errorf("span %s has implausible timing %+v", s.Name, s)
		}
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event("e", fmt.Sprintf("%d", i))
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want ring capacity 4", len(events))
	}
	for i, e := range events {
		if want := fmt.Sprintf("%d", 6+i); e.Detail != want {
			t.Errorf("event %d detail = %q, want %q (oldest-first after eviction)", i, e.Detail, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("phase", nil)
	sp.End()
	tr.Event("note", "hello")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Spans  []SpanRecord  `json:"spans"`
		Events []EventRecord `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Spans) != 1 || decoded.Spans[0].Name != "phase" {
		t.Errorf("spans = %+v", decoded.Spans)
	}
	if len(decoded.Events) != 1 || decoded.Events[0].Detail != "hello" {
		t.Errorf("events = %+v", decoded.Events)
	}
}
