// Package export is the live half of the telemetry plane: a Prometheus
// text-format exporter over the obs Registry, a structured JSONL event log
// (EventLog, the production obs.EventSink), and an HTTP telemetry server
// exposing /metrics, /healthz, /readyz, /trace, a Server-Sent-Events tail
// of the event log at /events, and /debug/pprof — everything needed to
// watch and profile a long enumeration or soundness sweep while it runs.
//
// The longitudinal half lives in internal/obs/history (run-manifest
// history and regression diffing, driven by cmd/obsdiff).
//
// Every exported byte sits inside the hiding contract: metric names,
// counts, durations, and redacted digests only — never certificate bytes.
// The obspurity analyzer additionally keeps this package (like obs itself)
// out of decoder Decide bodies, so telemetry can never feed back into
// verdicts.
package export

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"hidinglcp/internal/obs"
)

// shutdownGrace bounds how long Close waits for in-flight scrapes before
// hard-closing connections. SSE tails are unblocked explicitly first.
const shutdownGrace = 2 * time.Second

// ServerOptions selects the telemetry the server exposes; nil fields
// degrade their routes gracefully (empty metrics page, empty trace, an
// /events stream that only ever heartbeats).
type ServerOptions struct {
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Events   *EventLog
}

// Server is a running telemetry server. Create one with Serve, mark it
// ready when setup completes, and Close it for a graceful shutdown.
type Server struct {
	opts    ServerOptions
	srv     *http.Server
	addr    string
	ready   chan struct{} // closed by MarkReady
	closing chan struct{} // closed by Close; unblocks SSE tails
	once    sync.Once
	readyMu sync.Once
}

// NewHandler returns the telemetry routes on a fresh, dedicated mux — the
// same handler Serve runs, exposed separately so tests can drive it with
// httptest. The ready and closing channels may be nil (then /readyz is
// always ready and /events streams until the client disconnects).
func NewHandler(opts ServerOptions, ready, closing <-chan struct{}) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, opts.Registry.Snapshot()) //nolint:errcheck // best-effort write to the client
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-readyOrNil(ready):
			fmt.Fprintln(w, "ready")
		default:
			http.Error(w, "starting", http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		opts.Tracer.WriteJSON(w) //nolint:errcheck // best-effort write to the client
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, r, opts.Events, closing)
	})
	obs.RegisterDebug(mux, opts.Registry)
	return mux
}

// alwaysReady backs readyOrNil's nil case.
var alwaysReady = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// readyOrNil treats a nil readiness channel as always-ready.
func readyOrNil(ch <-chan struct{}) <-chan struct{} {
	if ch == nil {
		return alwaysReady
	}
	return ch
}

// serveEvents streams the event log over Server-Sent Events: the retained
// tail first (so a late-attaching observer still sees recent history),
// then the live feed, with periodic comment heartbeats, until the client
// disconnects, the log closes, or the server shuts down. Frames follow the
// SSE grammar: "event: log", one "data:" line of JSON, a blank line.
func serveEvents(w http.ResponseWriter, r *http.Request, log *EventLog, closing <-chan struct{}) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	writeEvent := func(ev obs.LogEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		_, err = fmt.Fprintf(w, "event: log\ndata: %s\n\n", data)
		return err == nil
	}

	// Subscribe before replaying the tail so no event can fall between
	// the two; the overlap (an event in both tail and feed) is bounded by
	// the subscription buffer and harmless for observers.
	var feed <-chan obs.LogEvent
	cancel := func() {}
	if log != nil {
		feed, cancel = log.Subscribe(256)
		defer cancel()
		for _, ev := range log.Tail(0) {
			if !writeEvent(ev) {
				return
			}
		}
	}
	fmt.Fprintf(w, ": stream open\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-closingOrNever(closing):
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-feed:
			if !ok {
				return
			}
			if !writeEvent(ev) {
				return
			}
			flusher.Flush()
		}
	}
}

// closingOrNever treats a nil channel as never-closing.
func closingOrNever(ch <-chan struct{}) <-chan struct{} { return ch }

// Serve starts the telemetry server on addr (":0" picks a free port; the
// bound address is Server.Addr). The server starts unready — call
// MarkReady once run setup is done so /readyz flips — and runs until
// Close.
func Serve(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		addr:    ln.Addr().String(),
		ready:   make(chan struct{}),
		closing: make(chan struct{}),
	}
	s.srv = &http.Server{Handler: NewHandler(opts, s.ready, s.closing)}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

// MarkReady flips /readyz from 503 to 200. Safe to call more than once.
func (s *Server) MarkReady() {
	s.readyMu.Do(func() { close(s.ready) })
}

// Close shuts the server down gracefully: new connections stop, SSE tails
// are released, and in-flight scrapes get shutdownGrace to finish before
// the remaining connections are hard-closed.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.closing)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		err = s.srv.Shutdown(ctx)
		if err != nil {
			err = s.srv.Close()
		}
	})
	return err
}
