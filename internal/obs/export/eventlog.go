package export

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"hidinglcp/internal/obs"
)

// Event-log defaults; Config fields override each.
const (
	defaultEventRing    = 1024
	defaultEventMaxSize = 8 << 20 // 8 MiB per JSONL generation before rotation
	defaultEventsPerSec = 1000
)

// EventLogConfig configures an EventLog. The zero value is a memory-only
// log (ring but no file) with default limits.
type EventLogConfig struct {
	// Path is the JSONL destination; "" keeps the log memory-only (the
	// ring still feeds Tail and the /events SSE stream).
	Path string
	// MaxBytes rotates the file when a generation exceeds it (<= 0 selects
	// 8 MiB). Rotation keeps exactly one predecessor at Path + ".1".
	MaxBytes int64
	// MaxPerSec drops events beyond this emission rate per wall-clock
	// second (<= 0 selects 1000). Drops are counted and summarized with a
	// synthetic "obs.events.ratelimited" warning when the window rolls.
	MaxPerSec int
	// Ring is the in-memory tail length (<= 0 selects 1024).
	Ring int
	// MinLevel filters events below it ("" keeps everything).
	MinLevel obs.Level
}

// EventLog is the structured JSONL event sink: leveled obs.LogEvents with
// run/phase/span correlation IDs, one JSON object per line, rate-limited
// and size-rotated, with an in-memory ring tail for /events subscribers.
// It implements obs.EventSink; attach it with Scope.WithEvents.
//
// The log is transport, not policy: emitters own redaction (obs.Redact*)
// before any certificate-derived value reaches a field, which is what
// keeps certflow's hiding contract intact across this file format too.
type EventLog struct {
	cfg EventLogConfig

	mu      sync.Mutex
	f       *os.File
	written int64

	ring  []obs.LogEvent
	next  int
	count int

	window     int64 // unix second of the current rate-limit window
	inWindow   int
	rateDrops  int64 // drops inside the current window
	dropped    int64 // total rate-limit drops
	writeErr   error // first file write/rotation error, surfaced by Close
	subs       map[int]chan obs.LogEvent
	nextSub    int
	subDropped int64
}

// NewEventLog opens the log, creating (or truncating) cfg.Path when set.
func NewEventLog(cfg EventLogConfig) (*EventLog, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultEventMaxSize
	}
	if cfg.MaxPerSec <= 0 {
		cfg.MaxPerSec = defaultEventsPerSec
	}
	if cfg.Ring <= 0 {
		cfg.Ring = defaultEventRing
	}
	l := &EventLog{
		cfg:  cfg,
		ring: make([]obs.LogEvent, cfg.Ring),
		subs: map[int]chan obs.LogEvent{},
	}
	if cfg.Path != "" {
		f, err := os.Create(cfg.Path)
		if err != nil {
			return nil, fmt.Errorf("opening event log: %w", err)
		}
		l.f = f
	}
	return l, nil
}

// EmitLogEvent appends one event: level filter, rate-limit guard, ring,
// file, subscribers. Safe for concurrent use; never blocks beyond the
// serialized append (subscriber channels drop rather than block).
func (l *EventLog) EmitLogEvent(ev obs.LogEvent) {
	if l == nil {
		return
	}
	if l.cfg.MinLevel != "" && ev.Level.Rank() < l.cfg.MinLevel.Rank() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	// Rate-limit window keyed by the event's own second, so the guard is
	// a pure function of the stream (and testable with synthetic times).
	sec := ev.TimeUnixNS / 1e9
	if sec != l.window {
		if l.rateDrops > 0 {
			l.append(obs.LogEvent{
				TimeUnixNS: ev.TimeUnixNS,
				Level:      obs.LevelWarn,
				Name:       "obs.events.ratelimited",
				Run:        ev.Run,
				Fields:     []obs.Attr{obs.Fi("dropped", l.rateDrops)},
			})
			l.rateDrops = 0
		}
		l.window = sec
		l.inWindow = 0
	}
	l.inWindow++
	if l.inWindow > l.cfg.MaxPerSec {
		l.rateDrops++
		l.dropped++
		return
	}
	l.append(ev)
}

// append writes one admitted event to every destination. Caller holds mu.
func (l *EventLog) append(ev obs.LogEvent) {
	l.ring[l.next] = ev
	l.next = (l.next + 1) % len(l.ring)
	if l.count < len(l.ring) {
		l.count++
	}
	if l.f != nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = l.f.Write(line)
			l.written += int64(len(line))
		}
		if err == nil && l.written > l.cfg.MaxBytes {
			err = l.rotate()
		}
		if err != nil && l.writeErr == nil {
			l.writeErr = err
		}
	}
	for _, ch := range l.subs {
		select {
		case ch <- ev:
		default:
			l.subDropped++
		}
	}
}

// rotate closes the current generation, keeps it at Path + ".1"
// (overwriting any older predecessor), and reopens Path fresh.
func (l *EventLog) rotate() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(l.cfg.Path, l.cfg.Path+".1"); err != nil {
		return err
	}
	f, err := os.Create(l.cfg.Path)
	if err != nil {
		return err
	}
	l.f = f
	l.written = 0
	return nil
}

// Tail returns up to n of the most recent admitted events, oldest first
// (n <= 0 returns the whole retained ring).
func (l *EventLog) Tail(n int) []obs.LogEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.count {
		n = l.count
	}
	out := make([]obs.LogEvent, 0, n)
	start := (l.next - n + len(l.ring)) % len(l.ring)
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Subscribe registers a live feed of admitted events with the given
// channel buffer (<= 0 selects 64). Events that would block are dropped
// for that subscriber only. The returned cancel function unregisters and
// closes the channel; it is safe to call more than once.
func (l *EventLog) Subscribe(buf int) (<-chan obs.LogEvent, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan obs.LogEvent, buf)
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	return ch, func() {
		// Whoever removes the registration closes the channel — exactly one
		// of cancel and Close wins, so double cancel and cancel-after-Close
		// are both safe.
		l.mu.Lock()
		_, present := l.subs[id]
		delete(l.subs, id)
		l.mu.Unlock()
		if present {
			close(ch)
		}
	}
}

// Dropped returns the total events discarded by the rate limiter.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Close flushes and closes the file generation and reports the first
// write or rotation error the log swallowed while appending. Subscribers
// are closed so SSE tails terminate.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, ch := range l.subs {
		delete(l.subs, id)
		close(ch)
	}
	err := l.writeErr
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}
