package export

import (
	"fmt"
	"io"
	"math"
	"strings"

	"hidinglcp/internal/obs"
)

// The Prometheus text-format (0.0.4) exporter over Registry.Snapshot().
// Counters and gauges render as single samples; histograms render with
// cumulative le-labeled buckets plus _sum and _count, and additionally as
// derived p50/p95/p99 gauges so dashboards get latency quantiles without a
// server-side histogram_quantile. Metric names carry only sizes, counts,
// and durations — never certificate bytes — so the exported page sits
// inside the hiding contract by construction (and the marker-byte
// regression test in internal/sanitize pins it).

// promName maps a registry metric name ("nbhd.views.extracted") onto the
// Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other
// byte with '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// quantile estimates the q-quantile of a histogram snapshot from its
// power-of-two buckets: the upper bound of the first bucket whose
// cumulative count reaches q of the total, clamped into [Min, Max]. The
// snapshot's buckets are per-bucket counts in increasing Le order.
func quantile(s obs.MetricSnapshot, q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	est := float64(s.Max)
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			est = float64(b.Le)
			break
		}
	}
	if est < float64(s.Min) {
		est = float64(s.Min)
	}
	if est > float64(s.Max) {
		est = float64(s.Max)
	}
	return est
}

// promFloat renders a sample value; Prometheus accepts Go's shortest float
// form, and +Inf for the unbounded bucket.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the metric snapshots in Prometheus text format
// version 0.0.4, sorted as Snapshot sorts them (by name). Serve the output
// with content type "text/plain; version=0.0.4; charset=utf-8".
func WritePrometheus(w io.Writer, snaps []obs.MetricSnapshot) error {
	for _, s := range snaps {
		name := promName(s.Name)
		var err error
		switch s.Kind {
		case obs.KindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s hidinglcp counter %s\n# TYPE %s counter\n%s %d\n",
				name, s.Name, name, name, s.Value)
		case obs.KindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s hidinglcp gauge %s\n# TYPE %s gauge\n%s %d\n",
				name, s.Name, name, name, s.Value)
		case obs.KindHistogram:
			err = writePromHistogram(w, name, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram: cumulative buckets (the
// registry snapshots per-bucket counts; Prometheus wants running totals
// ending in the +Inf bucket equal to _count), _sum, _count, and the
// derived quantile gauges.
func writePromHistogram(w io.Writer, name string, s obs.MetricSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s hidinglcp histogram %s\n# TYPE %s histogram\n", name, s.Name, name); err != nil {
		return err
	}
	cum, sawInf := int64(0), false
	for _, b := range s.Buckets {
		cum += b.Count
		le := promFloat(float64(b.Le))
		if b.Le == math.MaxInt64 {
			le, sawInf = "+Inf", true
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if !sawInf {
		// Only populated buckets are snapshotted, so the +Inf terminator
		// (required to equal _count) is usually synthesized here.
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count); err != nil {
		return err
	}
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		qn := name + "_" + q.suffix
		if _, err := fmt.Fprintf(w, "# HELP %s derived %s quantile of %s\n# TYPE %s gauge\n%s %s\n",
			qn, q.suffix, s.Name, qn, qn, promFloat(quantile(s, q.q))); err != nil {
			return err
		}
	}
	return nil
}
