package export

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"hidinglcp/internal/obs"
)

// promSample is one parsed sample line.
type promSample struct {
	labels string // raw label block, "" when none
	value  float64
}

// promFamily is one parsed metric family.
type promFamily struct {
	typ     string
	samples []promSample
}

// parsePromText is the test-side mini-parser for Prometheus text format
// 0.0.4: it checks the line grammar strictly (TYPE before samples, known
// types, parseable values) and returns families keyed by base name with
// samples keyed by their raw label block. Exposed to the server and
// acceptance tests so "curl /metrics parses" is a checked property.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			fams[name] = &promFamily{typ: typ}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		// Sample: name[{labels}] value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd <= 0 {
			t.Fatalf("line %d: malformed sample: %q", lineNo, line)
		}
		name := line[:nameEnd]
		rest := line[nameEnd:]
		labels := ""
		if rest[0] == '{' {
			close := strings.Index(rest, "}")
			if close < 0 {
				t.Fatalf("line %d: unterminated label block: %q", lineNo, line)
			}
			labels = rest[1:close]
			rest = rest[close+1:]
		}
		valStr := strings.TrimSpace(rest)
		var value float64
		switch valStr {
		case "+Inf":
			value = math.Inf(1)
		default:
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: unparseable value %q: %v", lineNo, valStr, err)
			}
			value = v
		}
		if !validPromName(name) {
			t.Fatalf("line %d: invalid metric name %q", lineNo, name)
		}
		fam := fams[familyName(fams, name)]
		if fam == nil {
			t.Fatalf("line %d: sample %q before its TYPE line", lineNo, name)
		}
		fam.samples = append(fam.samples, promSample{labels: labels, value: value})
	}
	return fams
}

// familyName resolves a sample name to its family: exact, or the histogram
// sub-series suffixes.
func familyName(fams map[string]*promFamily, name string) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return base
			}
		}
	}
	return name
}

func validPromName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}

// TestWritePrometheusGolden pins the exact text rendering of one counter,
// one gauge, and one histogram with two populated buckets.
func TestWritePrometheusGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("nbhd.views.extracted").Add(12)
	reg.Gauge("nbhd.workers").Set(4)
	h := reg.Histogram("build.duration_ns")
	h.Observe(1) // bucket le=1
	h.Observe(5) // bucket le=7
	h.Observe(6) // bucket le=7

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP build_duration_ns hidinglcp histogram build.duration_ns
# TYPE build_duration_ns histogram
build_duration_ns_bucket{le="1"} 1
build_duration_ns_bucket{le="7"} 3
build_duration_ns_bucket{le="+Inf"} 3
build_duration_ns_sum 12
build_duration_ns_count 3
# HELP build_duration_ns_p50 derived p50 quantile of build.duration_ns
# TYPE build_duration_ns_p50 gauge
build_duration_ns_p50 6
# HELP build_duration_ns_p95 derived p95 quantile of build.duration_ns
# TYPE build_duration_ns_p95 gauge
build_duration_ns_p95 6
# HELP build_duration_ns_p99 derived p99 quantile of build.duration_ns
# TYPE build_duration_ns_p99 gauge
build_duration_ns_p99 6
# HELP nbhd_views_extracted hidinglcp counter nbhd.views.extracted
# TYPE nbhd_views_extracted counter
nbhd_views_extracted 12
# HELP nbhd_workers hidinglcp gauge nbhd.workers
# TYPE nbhd_workers gauge
nbhd_workers 4
`
	if got := b.String(); got != want {
		t.Errorf("WritePrometheus output:\n%s\nwant:\n%s", got, want)
	}
	// And the mini-parser accepts its own golden.
	fams := parsePromText(t, b.String())
	if fams["nbhd_views_extracted"].typ != "counter" {
		t.Errorf("parsed families = %+v", fams)
	}
	if n := len(fams["build_duration_ns"].samples); n != 5 {
		t.Errorf("histogram sample count = %d, want 5 (3 buckets + sum + count)", n)
	}
}

// TestWritePrometheusCumulativeBuckets checks bucket cumulativity and the
// +Inf terminator equal to _count on a wider distribution.
func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h")
	for i := int64(0); i < 100; i++ {
		h.Observe(i)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, b.String())
	var bucketVals []float64
	for _, s := range fams["h"].samples {
		if strings.HasPrefix(s.labels, "le=") {
			bucketVals = append(bucketVals, s.value)
		}
	}
	const count = 100.0
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Errorf("buckets not cumulative: %v", bucketVals)
		}
	}
	if last := bucketVals[len(bucketVals)-1]; last != count {
		t.Errorf("+Inf bucket = %v, want _count = %v", last, count)
	}
}

// TestQuantileEstimates checks the derived quantiles against a known
// distribution: estimates are bucket upper bounds, clamped into [min, max].
func TestQuantileEstimates(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("q")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	snap := reg.Snapshot()[0]
	p50 := quantile(snap, 0.50)
	p99 := quantile(snap, 0.99)
	if p50 < 500/2 || p50 > 1023 {
		t.Errorf("p50 = %v out of plausible range", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 (%v) < p50 (%v)", p99, p50)
	}
	if p99 > 1000 {
		t.Errorf("p99 = %v exceeds the observed max 1000 (clamp failed)", p99)
	}
	if got := quantile(obs.MetricSnapshot{}, 0.5); got != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", got)
	}
}

// TestPromNameSanitization covers the name grammar mapping.
func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"nbhd.views.extracted": "nbhd_views_extracted",
		"a-b/c d":              "a_b_c_d",
		"9lives":               "_9lives",
		"ok_name:sub":          "ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusEmptyHistogram: zero observations still render a
// parseable family with a zero +Inf bucket.
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("empty")
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, b.String())
	found := false
	for _, s := range fams["empty"].samples {
		if s.labels == `le="+Inf"` {
			found = true
			if s.value != 0 {
				t.Errorf("+Inf bucket of empty histogram = %v", s.value)
			}
		}
	}
	if !found {
		t.Errorf("no +Inf bucket rendered: %s", b.String())
	}
}
