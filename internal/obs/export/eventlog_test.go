package export

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hidinglcp/internal/obs"
)

// ev builds a synthetic event at a fixed time (seconds, sequence).
func ev(sec int64, name string) obs.LogEvent {
	return obs.LogEvent{TimeUnixNS: sec * 1e9, Level: obs.LevelInfo, Name: name, Run: "test-run"}
}

// TestEventLogJSONL checks the on-disk shape: one valid JSON object per
// line, fields round-tripping.
func TestEventLogJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := NewEventLog(EventLogConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	l.EmitLogEvent(obs.LogEvent{
		TimeUnixNS: 42, Level: obs.LevelInfo, Name: "nbhd.build.start",
		Run: "r1", Phase: "scheme=even-cycle", Span: 7,
		Fields: []obs.Attr{obs.F("shards", "8"), obs.Fi("workers", 2)},
	})
	l.EmitLogEvent(ev(1, "second"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []obs.LogEvent
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		var e obs.LogEvent
		if err := json.Unmarshal(scan.Bytes(), &e); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", scan.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	got := lines[0]
	if got.Name != "nbhd.build.start" || got.Run != "r1" || got.Phase != "scheme=even-cycle" ||
		got.Span != 7 || len(got.Fields) != 2 || got.Fields[1].Value != "2" {
		t.Errorf("round-tripped event = %+v", got)
	}
}

// TestEventLogRotation drives the log past MaxBytes and checks one
// predecessor generation survives at path.1 while path restarts fresh.
func TestEventLogRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := NewEventLog(EventLogConfig{Path: path, MaxBytes: 512, MaxPerSec: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		l.EmitLogEvent(ev(int64(i), "rotation-filler-event-with-some-padding"))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := os.Stat(path)
	if err != nil {
		t.Fatalf("current generation missing: %v", err)
	}
	prev, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	if cur.Size() > 512+256 {
		t.Errorf("current generation %d bytes; rotation never triggered", cur.Size())
	}
	if prev.Size() == 0 {
		t.Error("rotated generation is empty")
	}
}

// TestEventLogRateLimit: events beyond MaxPerSec within one second are
// dropped and summarized when the window rolls.
func TestEventLogRateLimit(t *testing.T) {
	l, err := NewEventLog(EventLogConfig{MaxPerSec: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.EmitLogEvent(ev(100, "burst"))
	}
	if got := l.Dropped(); got != 7 {
		t.Errorf("dropped = %d, want 7", got)
	}
	// Rolling the window admits again and emits the summary event.
	l.EmitLogEvent(ev(101, "after"))
	tail := l.Tail(0)
	var sawSummary, sawAfter bool
	for _, e := range tail {
		if e.Name == "obs.events.ratelimited" {
			sawSummary = true
			if len(e.Fields) != 1 || e.Fields[0].Value != "7" {
				t.Errorf("ratelimited summary fields = %+v", e.Fields)
			}
		}
		if e.Name == "after" {
			sawAfter = true
		}
	}
	if !sawSummary || !sawAfter {
		t.Errorf("tail = %+v, want ratelimited summary and the post-window event", tail)
	}
	l.Close()
}

// TestEventLogMinLevel filters below the configured level.
func TestEventLogMinLevel(t *testing.T) {
	l, err := NewEventLog(EventLogConfig{MinLevel: obs.LevelWarn})
	if err != nil {
		t.Fatal(err)
	}
	l.EmitLogEvent(obs.LogEvent{TimeUnixNS: 1, Level: obs.LevelDebug, Name: "nope"})
	l.EmitLogEvent(obs.LogEvent{TimeUnixNS: 2, Level: obs.LevelError, Name: "yep"})
	tail := l.Tail(0)
	if len(tail) != 1 || tail[0].Name != "yep" {
		t.Errorf("tail = %+v", tail)
	}
	l.Close()
}

// TestEventLogTailAndSubscribe: the ring replays oldest-first and live
// subscribers receive subsequent events; cancel after Close is safe.
func TestEventLogTailAndSubscribe(t *testing.T) {
	l, err := NewEventLog(EventLogConfig{Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.EmitLogEvent(ev(int64(i), "e"))
	}
	tail := l.Tail(0)
	if len(tail) != 4 || tail[0].TimeUnixNS != 2e9 || tail[3].TimeUnixNS != 5e9 {
		t.Errorf("tail = %+v, want the 4 newest oldest-first", tail)
	}
	if short := l.Tail(2); len(short) != 2 || short[1].TimeUnixNS != 5e9 {
		t.Errorf("Tail(2) = %+v", short)
	}

	feed, cancel := l.Subscribe(4)
	l.EmitLogEvent(ev(9, "live"))
	got := <-feed
	if got.Name != "live" {
		t.Errorf("subscriber got %+v", got)
	}
	l.Close()
	if _, ok := <-feed; ok {
		t.Error("feed still open after Close")
	}
	cancel() // must not panic after Close already closed the channel
}

// TestEventLogConcurrentEmit hammers the log from many goroutines (run
// under -race in CI) and checks nothing is lost below the rate limit.
func TestEventLogConcurrentEmit(t *testing.T) {
	l, err := NewEventLog(EventLogConfig{Ring: 4096, MaxPerSec: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, each = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.EmitLogEvent(ev(int64(w), "concurrent"))
			}
		}(w)
	}
	wg.Wait()
	if got := len(l.Tail(0)); got != workers*each {
		t.Errorf("retained %d events, want %d", got, workers*each)
	}
	l.Close()
}

// TestEventLogSurfacesWriteErrors: writing to a closed file is reported by
// Close instead of vanishing.
func TestEventLogSurfacesWriteErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := NewEventLog(EventLogConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	l.f.Close() // sabotage the generation behind the log's back
	l.EmitLogEvent(ev(1, "fails"))
	if err := l.Close(); err == nil {
		t.Error("Close returned nil after a failed append")
	}
}
