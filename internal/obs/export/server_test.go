package export

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hidinglcp/internal/decoders"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/obs"
)

// newTestServer wires a handler over live telemetry for httptest.
func newTestServer(t *testing.T, opts ServerOptions, ready, closing <-chan struct{}) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(opts, ready, closing))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerMetricsEndpoint scrapes /metrics and runs the mini-parser over
// the body: parseable text format with the live registry's families.
func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo.hits").Add(3)
	reg.Histogram("demo.lat_ns").Observe(1000)
	srv := newTestServer(t, ServerOptions{Registry: reg}, nil, nil)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 text format", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	fams := parsePromText(t, string(body))
	if fams["demo_hits"] == nil || fams["demo_hits"].typ != "counter" || fams["demo_hits"].samples[0].value != 3 {
		t.Errorf("families = %+v", fams)
	}
	if fams["demo_lat_ns"] == nil || fams["demo_lat_ns"].typ != "histogram" {
		t.Errorf("histogram family missing: %+v", fams)
	}
}

// TestServerHealthAndReady: /healthz is always 200; /readyz flips on the
// ready channel.
func TestServerHealthAndReady(t *testing.T) {
	ready := make(chan struct{})
	srv := newTestServer(t, ServerOptions{Registry: obs.NewRegistry()}, ready, nil)

	if code, body := get(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	close(ready)
	if code, body := get(t, srv.URL+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after ready = %d %q", code, body)
	}
}

// TestServerTraceEndpoint: /trace returns the ring-buffered span dump as
// JSON.
func TestServerTraceEndpoint(t *testing.T) {
	tr := obs.NewTracer(16)
	sp := tr.Start("phase.one", nil)
	sp.SetAttr("shards", "8")
	sp.End()
	srv := newTestServer(t, ServerOptions{Registry: obs.NewRegistry(), Tracer: tr}, nil, nil)

	code, body := get(t, srv.URL+"/trace")
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	var doc struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace body is not JSON: %v\n%s", err, body)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "phase.one" {
		t.Errorf("spans = %+v", doc.Spans)
	}
}

// TestServerEventsSSE pins the /events framing: the retained tail replays
// as "event: log" + "data: <json>" + blank line, then live events stream.
func TestServerEventsSSE(t *testing.T) {
	log, err := NewEventLog(EventLogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	log.EmitLogEvent(obs.LogEvent{TimeUnixNS: 1e9, Level: obs.LevelInfo, Name: "replayed.one", Run: "r"})
	log.EmitLogEvent(obs.LogEvent{TimeUnixNS: 2e9, Level: obs.LevelInfo, Name: "replayed.two", Run: "r"})

	srv := newTestServer(t, ServerOptions{Registry: obs.NewRegistry(), Events: log}, nil, nil)
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	reader := bufio.NewReader(resp.Body)
	readFrame := func() (string, obs.LogEvent) {
		t.Helper()
		var eventLine, dataLine string
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				t.Fatalf("stream ended early: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if dataLine == "" {
					continue // end of a comment-only frame
				}
				var ev obs.LogEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(dataLine, "data: ")), &ev); err != nil {
					t.Fatalf("data line is not JSON: %q: %v", dataLine, err)
				}
				return eventLine, ev
			case strings.HasPrefix(line, ":"):
				continue // comment (stream-open marker, heartbeats)
			case strings.HasPrefix(line, "event: "):
				eventLine = line
			case strings.HasPrefix(line, "data: "):
				dataLine = line
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
	}

	evLine, first := readFrame()
	if evLine != "event: log" || first.Name != "replayed.one" {
		t.Errorf("first frame = %q %+v", evLine, first)
	}
	if _, second := readFrame(); second.Name != "replayed.two" {
		t.Errorf("second frame = %+v", second)
	}

	// A live emission after attach arrives over the same stream.
	go log.EmitLogEvent(obs.LogEvent{TimeUnixNS: 3e9, Level: obs.LevelWarn, Name: "live.three", Run: "r"})
	if _, live := readFrame(); live.Name != "live.three" || live.Level != obs.LevelWarn {
		t.Errorf("live frame = %+v", live)
	}
}

// TestServerEventsStreamEndsOnClose: closing the server-side channel ends
// the stream instead of hanging the client.
func TestServerEventsStreamEndsOnClose(t *testing.T) {
	log, err := NewEventLog(EventLogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	closing := make(chan struct{})
	srv := newTestServer(t, ServerOptions{Registry: obs.NewRegistry(), Events: log}, nil, closing)

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(closing)
	done := make(chan struct{})
	go func() {
		io.ReadAll(resp.Body) //nolint:errcheck
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("/events stream did not end on server close")
	}
}

// TestServeLifecycle exercises the real listener: bind :0, scrape, mark
// ready, graceful close, double close.
func TestServeLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Inc()
	s, err := Serve("127.0.0.1:0", ServerOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before MarkReady = %d", code)
	}
	s.MarkReady()
	s.MarkReady() // idempotent
	if code, _ := get(t, "http://"+s.Addr()+"/readyz"); code != 200 {
		t.Errorf("readyz after MarkReady = %d", code)
	}
	if code, body := get(t, "http://"+s.Addr()+"/metrics"); code != 200 {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still accepting connections after Close")
	}
}

// TestConcurrentScrapeHammer scrapes /metrics, /trace, and /debug/vars
// from many goroutines while metrics, spans, and events mutate underneath
// — the data-race probe for the whole read path (run under -race in CI;
// see also TestServerScrapeDuringLiveBuild which drives a real pipeline).
func TestConcurrentScrapeHammer(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	log, err := NewEventLog(EventLogConfig{MaxPerSec: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	srv := newTestServer(t, ServerOptions{Registry: reg, Tracer: tr, Events: log}, nil, nil)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter("hammer.count").Inc()
			reg.Histogram("hammer.lat").Observe(int64(i % 1000))
			sp := tr.Start("hammer.span", nil)
			sp.End()
			log.EmitLogEvent(obs.LogEvent{TimeUnixNS: int64(i), Level: obs.LevelInfo, Name: "hammer"})
		}
	}()

	var scrapers sync.WaitGroup
	for w := 0; w < 4; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				for _, path := range []string{"/metrics", "/trace", "/debug/vars", "/healthz"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("%s: %v", path, err)
						return
					}
					io.ReadAll(resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

// TestServerScrapeDuringLiveBuild is the acceptance check for live
// telemetry: a real sharded neighborhood build runs with the server's
// registry, tracer, and event log attached while /metrics is scraped
// concurrently, and every scrape must parse as Prometheus text format.
// Run under -race this doubles as the pipeline-vs-scrape race probe.
func TestServerScrapeDuringLiveBuild(t *testing.T) {
	tr := obs.NewTracer(256)
	log, err := NewEventLog(EventLogConfig{MaxPerSec: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	sc := obs.NewScope().WithTracer(tr).WithEvents(log, obs.NewRunID("test"))
	srv := newTestServer(t, ServerOptions{Registry: sc.Registry(), Tracer: tr, Events: log}, nil, nil)

	done := make(chan error, 1)
	go func() {
		s := decoders.DegreeOne()
		fam := decoders.DegOneFamily(3)
		_, err := nbhd.BuildShardedScoped(sc, s.Decoder, nbhd.ShardedAllLabelings(decoders.DegOneAlphabet(), fam...), 8, 4)
		done <- err
	}()

	var scrapers sync.WaitGroup
	for w := 0; w < 3; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 20; i++ {
				code, body := get(t, srv.URL+"/metrics")
				if code != 200 {
					t.Errorf("/metrics during build = %d", code)
					return
				}
				parsePromText(t, body)
			}
		}()
	}
	scrapers.Wait()
	if err := <-done; err != nil {
		t.Fatalf("build failed: %v", err)
	}

	// The finished build's counters appear on a final scrape.
	_, body := get(t, srv.URL+"/metrics")
	fams := parsePromText(t, body)
	if fams["nbhd_views_extracted"] == nil || fams["nbhd_views_extracted"].samples[0].value == 0 {
		t.Errorf("post-build scrape missing build counters:\n%s", body)
	}
}
