package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentScopeHammer drives counters, gauges, histograms, spans,
// events, and progress from many goroutines at once — the exact access
// pattern of the shard workers — and checks the totals. Run with -race
// (CI does) to certify the whole layer data-race-free.
func TestConcurrentScopeHammer(t *testing.T) {
	const workers = 8
	const perWorker = 2000

	prog := NewProgress(io.Discard, 10*time.Millisecond)
	defer prog.Close()
	sc := NewScope().WithTracer(NewTracer(256)).WithProgress(prog)
	prog.StartPhase("hammer", workers*perWorker)
	prog.SetExtra(func() string {
		return fmt.Sprintf("%d so far", sc.Counter("hammer.ops").Value())
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := sc.Span(fmt.Sprintf("worker-%d", w))
			for i := 0; i < perWorker; i++ {
				sc.Counter("hammer.ops").Inc()
				sc.Gauge("hammer.last").Set(int64(i))
				sc.Histogram("hammer.val").Observe(int64(i % 100))
				if i%100 == 0 {
					child := root.Child("batch")
					child.SetAttr("i", fmt.Sprint(i))
					child.End()
					sc.Event("batch", fmt.Sprintf("w%d i%d", w, i))
				}
				sc.Prog().Add(1)
			}
			root.End()
		}(w)
	}
	wg.Wait()
	prog.EndPhase()

	if got := sc.Counter("hammer.ops").Value(); got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
	if got := sc.Histogram("hammer.val").Count(); got != workers*perWorker {
		t.Errorf("observations = %d, want %d", got, workers*perWorker)
	}
	// Snapshot while another goroutine is still mutating.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		for i := 0; i < 1000; i++ {
			sc.Counter("hammer.ops").Inc()
		}
	}()
	for i := 0; i < 50; i++ {
		_ = sc.Registry().Snapshot()
		_ = sc.Tracer().Spans()
		_ = sc.Tracer().Events()
	}
	wg2.Wait()
}
