package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestDebugMuxVars pins the /debug/vars shape: a JSON object whose
// "hidinglcp.metrics" member is the registry snapshot, computed per request.
func TestDebugMuxVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo.count").Add(7)
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	readVars := func() []MetricSnapshot {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/vars status = %d", resp.StatusCode)
		}
		var doc struct {
			Metrics []MetricSnapshot `json:"hidinglcp.metrics"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Metrics
	}

	got := readVars()
	if len(got) != 1 || got[0].Name != "demo.count" || got[0].Value != 7 {
		t.Errorf("snapshot = %+v", got)
	}
	// Live: a later scrape sees later registry state, no expvar caching.
	reg.Counter("demo.count").Add(3)
	if got := readVars(); got[0].Value != 10 {
		t.Errorf("second snapshot = %+v, want value 10", got)
	}
}

// TestDebugMuxPprofIndex checks the pprof index is wired on the per-server
// mux (not http.DefaultServeMux).
func TestDebugMuxPprofIndex(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) == 0 {
		t.Error("pprof index returned an empty body")
	}
}

// TestServeDebugIsolatedRegistries runs two debug servers in one process
// and checks each serves its own registry — the regression the old
// DefaultServeMux + package-level registry swap could not pass: the second
// server used to hijack the first one's routes.
func TestServeDebugIsolatedRegistries(t *testing.T) {
	mk := func(name string, v int64) (string, func() error) {
		reg := NewRegistry()
		reg.Counter(name).Add(v)
		addr, stop, err := ServeDebug("127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		return addr, stop
	}
	addrA, stopA := mk("server.a", 1)
	defer stopA() //nolint:errcheck
	addrB, stopB := mk("server.b", 2)
	defer stopB() //nolint:errcheck

	for _, tc := range []struct {
		addr, want string
	}{{addrA, "server.a"}, {addrB, "server.b"}} {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", tc.addr))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var doc struct {
			Metrics []MetricSnapshot `json:"hidinglcp.metrics"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: %v", tc.addr, err)
		}
		if len(doc.Metrics) != 1 || doc.Metrics[0].Name != tc.want {
			t.Errorf("server %s serves %+v, want its own counter %q", tc.addr, doc.Metrics, tc.want)
		}
	}
}
