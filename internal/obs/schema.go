package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// ValidateJSON checks doc against a JSON Schema written in the small
// draft-07 subset the run-manifest schema uses: type (string or list),
// const, enum, required, properties, additionalProperties (boolean or
// schema), items, and minimum. It exists so CI can validate manifests with
// the stdlib alone; unsupported keywords are ignored, matching JSON
// Schema's open-world semantics.
func ValidateJSON(schemaDoc, doc []byte) error {
	var schema, value any
	if err := json.Unmarshal(schemaDoc, &schema); err != nil {
		return fmt.Errorf("parsing schema: %w", err)
	}
	if err := json.Unmarshal(doc, &value); err != nil {
		return fmt.Errorf("parsing document: %w", err)
	}
	return validate("$", schema, value)
}

func validate(path string, schema, value any) error {
	s, ok := schema.(map[string]any)
	if !ok {
		// A boolean schema: true accepts everything, false nothing.
		if b, isBool := schema.(bool); isBool {
			if !b {
				return fmt.Errorf("%s: disallowed by schema", path)
			}
			return nil
		}
		return fmt.Errorf("%s: unsupported schema shape %T", path, schema)
	}

	if c, ok := s["const"]; ok {
		if !jsonEqual(c, value) {
			return fmt.Errorf("%s: got %v, want constant %v", path, render(value), render(c))
		}
	}
	if e, ok := s["enum"].([]any); ok {
		found := false
		for _, alt := range e {
			if jsonEqual(alt, value) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: %v is not one of the allowed values %v", path, render(value), render(e))
		}
	}
	if t, ok := s["type"]; ok {
		if err := checkType(path, t, value); err != nil {
			return err
		}
	}
	if m, ok := s["minimum"].(float64); ok {
		if n, isNum := value.(float64); isNum && n < m {
			return fmt.Errorf("%s: %v is below the minimum %v", path, n, m)
		}
	}

	switch v := value.(type) {
	case map[string]any:
		if req, ok := s["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := v[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		props, _ := s["properties"].(map[string]any)
		for name, pv := range v {
			if ps, ok := props[name]; ok {
				if err := validate(path+"."+name, ps, pv); err != nil {
					return err
				}
				continue
			}
			switch ap := s["additionalProperties"].(type) {
			case bool:
				if !ap {
					return fmt.Errorf("%s: unexpected property %q", path, name)
				}
			case map[string]any:
				if err := validate(path+"."+name, ap, pv); err != nil {
					return err
				}
			}
		}
	case []any:
		if items, ok := s["items"]; ok {
			for i, iv := range v {
				if err := validate(fmt.Sprintf("%s[%d]", path, i), items, iv); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkType matches value against a JSON Schema type name or list of names.
func checkType(path string, t, value any) error {
	var names []string
	switch tt := t.(type) {
	case string:
		names = []string{tt}
	case []any:
		for _, alt := range tt {
			if name, ok := alt.(string); ok {
				names = append(names, name)
			}
		}
	default:
		return fmt.Errorf("%s: unsupported type keyword %v", path, t)
	}
	for _, name := range names {
		if hasType(name, value) {
			return nil
		}
	}
	return fmt.Errorf("%s: %v is not of type %s", path, render(value), strings.Join(names, "|"))
}

func hasType(name string, value any) bool {
	switch name {
	case "object":
		_, ok := value.(map[string]any)
		return ok
	case "array":
		_, ok := value.([]any)
		return ok
	case "string":
		_, ok := value.(string)
		return ok
	case "boolean":
		_, ok := value.(bool)
		return ok
	case "number":
		_, ok := value.(float64)
		return ok
	case "integer":
		n, ok := value.(float64)
		return ok && n == math.Trunc(n)
	case "null":
		return value == nil
	}
	return false
}

// jsonEqual compares two unmarshaled JSON values structurally.
func jsonEqual(a, b any) bool {
	ab, errA := json.Marshal(a)
	bb, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(ab) == string(bb)
}

// render abbreviates a value for error messages.
func render(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprint(v)
	}
	const limit = 120
	if len(b) > limit {
		return string(b[:limit]) + "..."
	}
	return string(b)
}
