package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// defaultTraceCapacity bounds the span and event rings when NewTracer is
// given no explicit capacity.
const defaultTraceCapacity = 4096

// SpanRecord is one completed span, as retained by the Tracer and
// serialized into traces and manifests. Parent is 0 for root spans.
type SpanRecord struct {
	ID          uint64 `json:"id"`
	Parent      uint64 `json:"parent,omitempty"`
	Name        string `json:"name"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	Attrs       []Attr `json:"attrs,omitempty"`
}

// Attr is one span attribute. Attributes keep slice form (not a map) so
// records serialize in the order they were set.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// EventRecord is one ring-buffered point-in-time event.
type EventRecord struct {
	TimeUnixNS int64  `json:"time_unix_ns"`
	Name       string `json:"name"`
	Detail     string `json:"detail,omitempty"`
}

// Tracer records spans and events into fixed-capacity ring buffers: when a
// run produces more than the capacity, the oldest records are dropped and
// counted, so tracing a multi-minute sweep stays bounded. Safe for
// concurrent use by the shard workers.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64

	spans     []SpanRecord
	spanNext  int
	spanCount int

	events   []EventRecord
	evNext   int
	evCount  int
	dropped  int64
	capacity int
}

// NewTracer returns a tracer whose span and event rings each hold capacity
// records (<= 0 selects the default of 4096).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Tracer{
		spans:    make([]SpanRecord, capacity),
		events:   make([]EventRecord, capacity),
		capacity: capacity,
	}
}

// Span is one in-flight span. The nil span — what a tracer-less Scope hands
// out — accepts every method, so call sites never branch.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start opens a span under parent (nil for a root span).
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	var parentID uint64
	if parent != nil {
		parentID = parent.id
	}
	return &Span{tr: t, id: id, parent: parentID, name: name, start: time.Now()}
}

// ID returns the span's tracer-unique identifier, 0 for the nil span. It
// is the correlation key log events carry (LogEvent.Span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.Start(name, s)
}

// SetAttr attaches a key/value pair to the span. Spans are single-owner
// until End, so attributes need no locking.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span and records it in the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:          s.id,
		Parent:      s.parent,
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurationNS:  int64(time.Since(s.start)),
		Attrs:       s.attrs,
	}
	t := s.tr
	t.mu.Lock()
	if t.spanCount == t.capacity {
		t.dropped++
	} else {
		t.spanCount++
	}
	t.spans[t.spanNext] = rec
	t.spanNext = (t.spanNext + 1) % t.capacity
	t.mu.Unlock()
}

// Event records a point-in-time event.
func (t *Tracer) Event(name, detail string) {
	if t == nil {
		return
	}
	rec := EventRecord{TimeUnixNS: Now(), Name: name, Detail: detail}
	t.mu.Lock()
	if t.evCount == t.capacity {
		t.dropped++
	} else {
		t.evCount++
	}
	t.events[t.evNext] = rec
	t.evNext = (t.evNext + 1) % t.capacity
	t.mu.Unlock()
}

// Spans returns the retained span records, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.spanCount)
	start := (t.spanNext - t.spanCount + t.capacity) % t.capacity
	for i := 0; i < t.spanCount; i++ {
		out = append(out, t.spans[(start+i)%t.capacity])
	}
	return out
}

// Events returns the retained event records, oldest first.
func (t *Tracer) Events() []EventRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EventRecord, 0, t.evCount)
	start := (t.evNext - t.evCount + t.capacity) % t.capacity
	for i := 0; i < t.evCount; i++ {
		out = append(out, t.events[(start+i)%t.capacity])
	}
	return out
}

// Dropped returns how many records were evicted from full rings.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// trace is the JSON shape WriteJSON emits.
type trace struct {
	Spans   []SpanRecord  `json:"spans"`
	Events  []EventRecord `json:"events,omitempty"`
	Dropped int64         `json:"dropped,omitempty"`
}

// WriteJSON serializes the retained spans and events.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(trace{Spans: t.Spans(), Events: t.Events(), Dropped: t.Dropped()})
}
