package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGirth(t *testing.T) {
	mustMobius := func(k int) *Graph {
		g, err := MobiusLadder(k)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", Path(6), Unreachable},
		{"triangle", MustCycle(3), 3},
		{"c7", MustCycle(7), 7},
		{"petersen", Petersen(), 5},
		{"k4", Complete(4), 3},
		{"grid", Grid(3, 3), 4},
		{"theta(2,3)", MustWatermelon([]int{2, 3}), 5},
		{"mobius 3", mustMobius(3), 4},
		{"forest", DisjointUnion(Path(3), MustCycle(4)), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Girth(); got != tt.want {
				t.Errorf("Girth = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCutVertices(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want []int
	}{
		{"path", Path(4), []int{1, 2}},
		{"cycle", MustCycle(5), nil},
		{"star", Star(4), []int{0}},
		{"spider", Spider([]int{2, 2}), []int{0, 1, 3}},
		{"two blocks", MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}), []int{2}},
		{"complete", Complete(4), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.g.CutVertices()
			if len(got) != len(tt.want) {
				t.Fatalf("CutVertices = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Fatalf("CutVertices = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// Property: v is a cut vertex iff removing it increases the component
// count — cross-validate the low-link DFS against the definition.
func TestCutVerticesDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConnectedGNP(7, 0.3, rng)
		cuts := make(map[int]bool)
		for _, v := range g.CutVertices() {
			cuts[v] = true
		}
		base := len(g.Components())
		for v := 0; v < g.N(); v++ {
			keep := make([]int, 0, g.N()-1)
			for u := 0; u < g.N(); u++ {
				if u != v {
					keep = append(keep, u)
				}
			}
			sub, _ := g.InducedSubgraph(keep)
			increased := len(sub.Components()) > base
			if increased != cuts[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsTree(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path", Path(5), true},
		{"star", Star(4), true},
		{"cycle", MustCycle(4), false},
		{"forest", DisjointUnion(Path(2), Path(2)), false},
		{"empty", New(0), false},
		{"singleton", New(1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsTree(); got != tt.want {
				t.Errorf("IsTree = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComplement(t *testing.T) {
	g := Path(4)
	c := g.Complement()
	if c.M() != 6-3 {
		t.Errorf("complement edges = %d, want 3", c.M())
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if g.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Errorf("edge {%d,%d} present in both or neither", u, v)
			}
		}
	}
	if cc := c.Complement(); !cc.Equal(g) {
		t.Error("double complement differs from the original")
	}
}

func TestNewGenerators(t *testing.T) {
	if g := Hypercube(3); g.N() != 8 || g.M() != 12 || !g.IsBipartite() {
		t.Errorf("Q3 malformed: %v", g)
	}
	if g := Hypercube(0); g.N() != 1 {
		t.Errorf("Q0 should be a single node: %v", g)
	}
	if g := Ladder(4); g.N() != 8 || g.M() != 10 || !g.IsBipartite() || g.MinDegree() != 2 {
		t.Errorf("ladder malformed: %v", g)
	}
	m3, err := MobiusLadder(3)
	if err != nil {
		t.Fatal(err)
	}
	if !m3.IsBipartite() || m3.MaxDegree() != 3 {
		t.Errorf("M3 should be bipartite 3-regular (K33): %v", m3)
	}
	m4, err := MobiusLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	if m4.IsBipartite() {
		t.Error("M4 should be non-bipartite")
	}
	if _, err := MobiusLadder(2); err == nil {
		t.Error("M2 accepted")
	}
	w, err := Wheel(6)
	if err != nil {
		t.Fatal(err)
	}
	if w.Degree(0) != 5 || w.M() != 10 {
		t.Errorf("wheel malformed: %v", w)
	}
	if _, err := Wheel(3); err == nil {
		t.Error("W3 accepted")
	}
	cat, err := Caterpillar(3, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !cat.IsTree() || cat.N() != 6 || cat.MinDegree() != 1 {
		t.Errorf("caterpillar malformed: %v", cat)
	}
	if _, err := Caterpillar(0, nil); err == nil {
		t.Error("empty caterpillar accepted")
	}
	if _, err := Caterpillar(2, []int{1, 1, 1}); err == nil {
		t.Error("too many leg specs accepted")
	}
	if _, err := Caterpillar(2, []int{-1}); err == nil {
		t.Error("negative legs accepted")
	}
}

// Property: hypercubes are d-regular with girth 4 (d >= 2).
func TestHypercubeInvariants(t *testing.T) {
	for d := 2; d <= 5; d++ {
		g := Hypercube(d)
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != d {
				t.Fatalf("Q%d node %d degree %d", d, v, g.Degree(v))
			}
		}
		if g.Girth() != 4 {
			t.Errorf("Q%d girth = %d, want 4", d, g.Girth())
		}
	}
}
