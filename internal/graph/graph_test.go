package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Errorf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Errorf("M() = %d, want 0", g.M())
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 0 {
		t.Errorf("degrees = (%d,%d), want (0,0)", g.MinDegree(), g.MaxDegree())
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-3)
	if g.N() != 0 {
		t.Errorf("N() = %d, want 0", g.N())
	}
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} should be present symmetrically")
	}
	if g.HasEdge(0, 2) {
		t.Error("edge {0,2} should be absent")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	tests := []struct {
		name string
		u, v int
	}{
		{"loop", 1, 1},
		{"negative", -1, 0},
		{"out of range", 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New(3)
			if err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
	t.Run("duplicate", func(t *testing.T) {
		g := New(3)
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(1, 0); err == nil {
			t.Error("duplicate edge accepted")
		}
	})
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 {
		t.Errorf("M() = %d, want 3", g.M())
	}
	if _, err := FromEdges(2, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := MustFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) {
		t.Error("edge {0,1} still present after removal")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
	if err := g.RemoveEdge(0, 1); err == nil {
		t.Error("removing absent edge succeeded")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := MustFromEdges(5, [][2]int{{2, 4}, {2, 0}, {2, 3}, {2, 1}})
	nb := g.Neighbors(2)
	want := []int{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Errorf("center degree = %d, want 4", g.Degree(0))
	}
	if g.MinDegree() != 1 || g.MaxDegree() != 4 {
		t.Errorf("degrees = (%d,%d), want (1,4)", g.MinDegree(), g.MaxDegree())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone differs from original")
	}
	if err := c.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 3) {
		t.Error("mutating clone mutated original")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := Path(4)
	b := Path(4)
	c := MustCycle(4)
	if !a.Equal(b) {
		t.Error("identical paths not Equal")
	}
	if a.Equal(c) {
		t.Error("path Equal to cycle")
	}
	if a.Key() != b.Key() {
		t.Error("identical graphs have different keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct graphs share a key")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustCycle(5)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("sub.N() = %d, want 4", sub.N())
	}
	// Edges 0-1, 1-2, 4-0 survive; 2-3 and 3-4 do not.
	if sub.M() != 3 {
		t.Errorf("sub.M() = %d, want 3", sub.M())
	}
	wantOrig := []int{0, 1, 2, 4}
	for i, v := range wantOrig {
		if orig[i] != v {
			t.Errorf("orig = %v, want %v", orig, wantOrig)
			break
		}
	}
}

func TestInducedSubgraphDuplicatesAndOutOfRange(t *testing.T) {
	g := Path(3)
	sub, orig := g.InducedSubgraph([]int{1, 1, 2, 7, -1})
	if sub.N() != 2 || sub.M() != 1 {
		t.Errorf("sub = %v (orig %v), want 2 nodes 1 edge", sub, orig)
	}
}

func TestDeleteClosedNeighborhood(t *testing.T) {
	// Path 0-1-2-3-4: deleting N[2] leaves {0,1} and {3,4}? No: N[2]={1,2,3},
	// leaving {0} and {4}, two components -> 2 is a shatter point.
	g := Path(5)
	rest, orig := g.DeleteClosedNeighborhood(2)
	if rest.N() != 2 {
		t.Fatalf("rest.N() = %d, want 2", rest.N())
	}
	if len(rest.Components()) != 2 {
		t.Errorf("components = %d, want 2", len(rest.Components()))
	}
	if orig[0] != 0 || orig[1] != 4 {
		t.Errorf("orig = %v, want [0 4]", orig)
	}
}

func TestString(t *testing.T) {
	g := Path(3)
	want := "G(n=3; 0-1 1-2)"
	if got := g.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEdges(t *testing.T) {
	g := MustCycle(4)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(Edges()) = %d, want 4", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized u < v", e)
		}
	}
}

// Property: M() equals the number reported by Edges() on random graphs.
func TestEdgeCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(8, 0.4, rng)
		return g.M() == len(g.Edges())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HasEdge is symmetric on random graphs.
func TestHasEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(7, 0.5, rng)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: degree sums to twice the edge count.
func TestHandshakeLemma(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(9, 0.3, rng)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
