package graph

import "fmt"

// IDs is an identifier assignment: an injective map from nodes to positive
// identifiers in [1, N] for some N = poly(n), per Section 2.2. IDs[v] is the
// identifier of node v.
type IDs []int

// SequentialIDs assigns identifier v+1 to node v.
func SequentialIDs(n int) IDs {
	ids := make(IDs, n)
	for v := range ids {
		ids[v] = v + 1
	}
	return ids
}

// Validate checks that ids is injective, covers exactly n nodes, and uses
// identifiers in [1, maxID]. Pass maxID <= 0 to skip the range check.
func (ids IDs) Validate(n, maxID int) error {
	if len(ids) != n {
		return fmt.Errorf("identifier assignment covers %d nodes, want %d", len(ids), n)
	}
	seen := make(map[int]int, n)
	for v, id := range ids {
		if id < 1 {
			return fmt.Errorf("node %d has non-positive identifier %d", v, id)
		}
		if maxID > 0 && id > maxID {
			return fmt.Errorf("node %d has identifier %d > max %d", v, id, maxID)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("identifier %d assigned to both node %d and node %d", id, prev, v)
		}
		seen[id] = v
	}
	return nil
}

// NodeWithID returns the node carrying identifier id, or -1 if absent.
func (ids IDs) NodeWithID(id int) int {
	for v, x := range ids {
		if x == id {
			return v
		}
	}
	return -1
}

// Max returns the largest identifier in use, or 0 for an empty assignment.
func (ids IDs) Max() int {
	max := 0
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	return max
}

// Clone returns a copy of ids.
func (ids IDs) Clone() IDs {
	return append(IDs(nil), ids...)
}

// SameOrder reports whether ids and other induce the same relative order on
// nodes: ids[u] < ids[v] iff other[u] < other[v] for all u, v. This is the
// equivalence under which order-invariant decoders must not change output
// (Section 2.2).
func (ids IDs) SameOrder(other IDs) bool {
	if len(ids) != len(other) {
		return false
	}
	for u := range ids {
		for v := range ids {
			if (ids[u] < ids[v]) != (other[u] < other[v]) {
				return false
			}
		}
	}
	return true
}
