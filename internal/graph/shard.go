package graph

// This file partitions the enumeration spaces of enumerate.go into disjoint
// shards for the parallel drivers in internal/nbhd and internal/core. Every
// sharder obeys the same contract, pinned by the property tests in
// shard_test.go:
//
//   - DISJOINT COVER: the multiset union over shard = 0..shards-1 of the
//     items produced equals the sequential enumeration, with no duplicates
//     and no omissions.
//   - ORDER: each shard produces a subsequence of the sequential order, so
//     a rank-based merge of shard outputs reconstructs the sequential
//     stream deterministically.
//   - DEGENERATE SHARDS: shards <= 1 is the sequential enumeration;
//     out-of-range shard indices produce nothing.
//
// The partitions are chosen so that a shard can *skip* foreign subtrees of
// the enumeration recursion instead of enumerating and filtering: labelings
// are split by the rank of a short prefix, identifier assignments by the
// first node's identifier, and graphs by the edge-mask residue.

// EnumLabelingsShard calls fn with the labelings of EnumLabelings(n,
// alphabet) assigned to the given shard. The space is split on the
// lexicographic rank of the first prefixLen symbols (the shortest prefix
// with at least shards distinct values): a prefix of rank r belongs to
// shard r % shards, and the shard enumerates only its own prefix subtrees,
// each in full lexicographic order. Like EnumLabelings, the slice passed to
// fn is reused across calls; copy it to retain.
func EnumLabelingsShard(n, alphabet, shard, shards int, fn func([]int) bool) {
	if shards <= 1 {
		if shard == 0 {
			EnumLabelings(n, alphabet, fn)
		}
		return
	}
	if alphabet <= 0 || shard < 0 || shard >= shards {
		return
	}
	if n == 0 {
		// The empty labeling is the single point of the space.
		if shard == 0 {
			fn([]int{})
		}
		return
	}
	prefix := labelingPrefixLen(n, alphabet, shards)
	lab := make([]int, n)
	var suffix func(v int) bool
	suffix = func(v int) bool {
		if v == n {
			return fn(lab)
		}
		for a := 0; a < alphabet; a++ {
			lab[v] = a
			if !suffix(v + 1) {
				return false
			}
		}
		return true
	}
	rank := 0
	var walk func(v int) bool
	walk = func(v int) bool {
		if v == prefix {
			mine := rank%shards == shard
			rank++
			if !mine {
				return true
			}
			return suffix(prefix)
		}
		for a := 0; a < alphabet; a++ {
			lab[v] = a
			if !walk(v + 1) {
				return false
			}
		}
		return true
	}
	walk(0)
}

// labelingPrefixLen returns the shortest prefix length whose alphabet^len
// distinct values reach the shard count, capped at n.
func labelingPrefixLen(n, alphabet, shards int) int {
	values := 1
	for l := 0; l < n; l++ {
		if values >= shards {
			return l
		}
		// values < shards here, so the product stays below shards*alphabet
		// and cannot overflow for any sane shard count.
		values *= alphabet
	}
	return n
}

// EnumIDsShard calls fn with the injective identifier assignments of
// EnumIDs(n, maxID) assigned to the given shard. The space is split on the
// first node's identifier: an assignment with Id(0) = id belongs to shard
// (id-1) % shards. Shards beyond maxID produce nothing.
func EnumIDsShard(n, maxID, shard, shards int, fn func(IDs) bool) {
	if shards <= 1 {
		if shard == 0 {
			EnumIDs(n, maxID, fn)
		}
		return
	}
	if maxID < n || shard < 0 || shard >= shards {
		return
	}
	if n == 0 {
		if shard == 0 {
			fn(IDs{})
		}
		return
	}
	ids := make(IDs, n)
	used := make([]bool, maxID+1)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return fn(ids.Clone())
		}
		for id := 1; id <= maxID; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			ids[v] = id
			if !rec(v + 1) {
				return false
			}
			used[id] = false
		}
		return true
	}
	for id := 1; id <= maxID; id++ {
		if (id-1)%shards != shard {
			continue
		}
		used[id] = true
		ids[0] = id
		if !rec(1) {
			return
		}
		used[id] = false
	}
}

// EnumGraphsShard calls fn with the graphs of EnumGraphs(n) assigned to the
// given shard: the graph with edge mask m belongs to shard m % shards, so a
// shard strides through the mask space directly. Like EnumGraphs, the Graph
// passed to fn is reused across calls; Clone it to retain.
func EnumGraphsShard(n, shard, shards int, fn func(*Graph) bool) {
	if shards <= 1 {
		if shard == 0 {
			EnumGraphs(n, fn)
		}
		return
	}
	if shard < 0 || shard >= shards {
		return
	}
	pairs := allPairs(n)
	total := 1 << len(pairs)
	deg := make([]int, n)
	g := New(n)
	backing := make([]int, n*max(n-1, 0))
	for mask := shard; mask < total; mask += shards {
		// Same reused-Graph construction as EnumGraphs; see there.
		for v := range deg {
			deg[v] = 0
		}
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				deg[e[0]]++
				deg[e[1]]++
			}
		}
		off := 0
		for v := 0; v < n; v++ {
			if deg[v] > 0 {
				g.adj[v] = backing[off : off : off+deg[v]]
				off += deg[v]
			} else {
				g.adj[v] = nil
			}
		}
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				g.adj[e[0]] = append(g.adj[e[0]], e[1])
				g.adj[e[1]] = append(g.adj[e[1]], e[0])
			}
		}
		if !fn(g) {
			return
		}
	}
}

// LabelingRank returns the lexicographic rank of a labeling over the given
// alphabet size — the position EnumLabelings produces it at. The caller
// must ensure the space fits in a uint64 (see LabelingRankFits).
func LabelingRank(idx []int, alphabet int) uint64 {
	var r uint64
	for _, a := range idx {
		r = r*uint64(alphabet) + uint64(a)
	}
	return r
}

// LabelingRankFits reports whether alphabet^n fits a uint64 rank without
// overflow, i.e. whether LabelingRank is usable for n-node labelings.
func LabelingRankFits(n, alphabet int) bool {
	if alphabet <= 1 {
		return true
	}
	const limit = uint64(1) << 62
	v := uint64(1)
	for i := 0; i < n; i++ {
		if v > limit/uint64(alphabet) {
			return false
		}
		v *= uint64(alphabet)
	}
	return true
}
