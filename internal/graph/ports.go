package graph

import "fmt"

// Ports is a port assignment in the sense of Section 2.2: at every node v,
// the incident edges are numbered bijectively with 1..deg(v). Port numbers
// are 1-based, exactly as in the paper.
//
// The representation is a single flat neighbor-by-port table; the reverse
// map prt(v, {v,w}) -> port is answered by scanning v's row, which beats a
// per-node hash map at the tiny degrees of the micro universes this library
// enumerates (and EnumPorts builds one Ports per port assignment, so the
// construction itself must stay cheap: one backing array, no maps).
type Ports struct {
	// nbrByPort[v][p-1] is the neighbor of v reached through port p, or -1
	// for a gap in a partial restriction (see InducedPorts).
	nbrByPort [][]int
}

// DefaultPorts assigns port numbers in increasing neighbor order: the i-th
// smallest neighbor of v is behind port i. Adjacency lists are sorted
// ascending, so each row is a copy of the neighbor list itself.
func DefaultPorts(g *Graph) *Ports {
	ports := &Ports{nbrByPort: make([][]int, g.N())}
	backing := make([]int, 2*g.M())
	off := 0
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		row := backing[off : off+len(nb) : off+len(nb)]
		off += len(nb)
		copy(row, nb)
		ports.nbrByPort[v] = row
	}
	return ports
}

// PortsFromPerm builds a port assignment from per-node permutations: port p
// of node v leads to the perm[v][p-1]-th smallest neighbor of v. It returns
// an error if perm has the wrong shape or any perm[v] is not a permutation
// of 0..deg(v)-1.
func PortsFromPerm(g *Graph, perm [][]int) (*Ports, error) {
	if len(perm) != g.N() {
		return nil, fmt.Errorf("perm has %d rows, want %d", len(perm), g.N())
	}
	ports := &Ports{nbrByPort: make([][]int, g.N())}
	backing := make([]int, 2*g.M())
	var seen []bool
	off := 0
	for v := 0; v < g.N(); v++ {
		deg := g.Degree(v)
		if len(perm[v]) != deg {
			return nil, fmt.Errorf("perm[%d] has %d entries, want deg=%d", v, len(perm[v]), deg)
		}
		if cap(seen) < deg {
			seen = make([]bool, deg)
		}
		seen = seen[:deg]
		for i := range seen {
			seen[i] = false
		}
		row := backing[off : off+deg : off+deg]
		off += deg
		for p0, idx := range perm[v] {
			if idx < 0 || idx >= deg || seen[idx] {
				return nil, fmt.Errorf("perm[%d] is not a permutation of 0..%d", v, deg-1)
			}
			seen[idx] = true
			row[p0] = g.Neighbors(v)[idx]
		}
		ports.nbrByPort[v] = row
	}
	return ports, nil
}

// NeighborAt returns the neighbor of v behind port p (1-based), or an error
// if p is not a valid port of v.
func (pt *Ports) NeighborAt(v, p int) (int, error) {
	if v < 0 || v >= len(pt.nbrByPort) {
		return 0, fmt.Errorf("node %d out of range", v)
	}
	if p < 1 || p > len(pt.nbrByPort[v]) {
		return 0, fmt.Errorf("port %d out of range [1,%d] at node %d", p, len(pt.nbrByPort[v]), v)
	}
	if w := pt.nbrByPort[v][p-1]; w >= 0 {
		return w, nil
	}
	// Gap in a partial assignment (see InducedPorts): the port number was
	// held by an edge that does not survive in the restricted graph.
	return 0, fmt.Errorf("port %d of node %d is unassigned in this restriction", p, v)
}

// Port returns prt(v, {v,w}): the port number of edge {v,w} at v, or an
// error if w is not a neighbor of v. The lookup scans v's port row, which
// is linear in deg(v) — faster than a map at the degrees that occur here.
func (pt *Ports) Port(v, w int) (int, error) {
	if v < 0 || v >= len(pt.nbrByPort) {
		return 0, fmt.Errorf("node %d out of range", v)
	}
	if w >= 0 {
		for p0, x := range pt.nbrByPort[v] {
			if x == w {
				return p0 + 1, nil
			}
		}
	}
	return 0, fmt.Errorf("%d is not a neighbor of %d", w, v)
}

// MustPort is Port but panics on error; for use where {v,w} is an edge by
// construction.
func (pt *Ports) MustPort(v, w int) int {
	p, err := pt.Port(v, w)
	if err != nil {
		panic(fmt.Sprintf("graph.MustPort: %v", err))
	}
	return p
}

// DegreeOf returns the number of ports at v.
func (pt *Ports) DegreeOf(v int) int { return len(pt.nbrByPort[v]) }

// Restrict returns the port assignment induced on the subgraph sub of the
// original graph, where orig maps sub's nodes to original nodes (as returned
// by Graph.InducedSubgraph). Ports of surviving edges keep their original
// numbers; this is the restriction used when forming views.
//
// Note the result is not a valid Ports for sub in the Section 2.2 sense
// (port numbers may exceed the induced degree); it is a partial map kept for
// view bookkeeping. Use PortView for read access.
func (pt *Ports) Restrict(sub *Graph, orig []int) *PortView {
	pv := &PortView{port: make(map[[2]int]int)}
	for _, e := range sub.Edges() {
		u, v := orig[e[0]], orig[e[1]]
		pv.port[[2]int{e[0], e[1]}] = pt.MustPort(u, v)
		pv.port[[2]int{e[1], e[0]}] = pt.MustPort(v, u)
	}
	return pv
}

// InducedPorts returns the restriction of pt to the subgraph sub of the
// original graph, where orig maps sub's nodes to original nodes (as
// returned by Graph.InducedSubgraph). Every surviving edge keeps its
// original port number at both endpoints.
//
// Like Restrict's output, the result is generally NOT a valid Section 2.2
// port assignment for sub: port numbers of vanished edges leave gaps, so
// the surviving numbers need not cover 1..deg. It exists for view
// bookkeeping — centralized extraction over a crash-induced subgraph must
// see exactly the port numbers the surviving nodes always had, which is
// what the fault-injected simulator's truncated views carry. Port and
// MustPort work as usual; NeighborAt errors on gap ports; Validate fails
// by design; DegreeOf reports the highest surviving port number, not the
// induced degree.
func InducedPorts(pt *Ports, sub *Graph, orig []int) (*Ports, error) {
	if len(orig) != sub.N() {
		return nil, fmt.Errorf("orig maps %d nodes, subgraph has %d", len(orig), sub.N())
	}
	out := &Ports{nbrByPort: make([][]int, sub.N())}
	var pbuf []int
	for v := 0; v < sub.N(); v++ {
		nbrs := sub.Neighbors(v)
		pbuf = pbuf[:0]
		maxPort := 0
		for _, w := range nbrs {
			p, err := pt.Port(orig[v], orig[w])
			if err != nil {
				return nil, fmt.Errorf("restricting ports: %w", err)
			}
			pbuf = append(pbuf, p)
			if p > maxPort {
				maxPort = p
			}
		}
		row := make([]int, maxPort)
		for i := range row {
			row[i] = -1
		}
		for i, w := range nbrs {
			row[pbuf[i]-1] = w
		}
		out.nbrByPort[v] = row
	}
	return out, nil
}

// PortView is a partial, read-only port map over the nodes of a view.
type PortView struct {
	port map[[2]int]int
}

// Port returns the port number of the ordered pair (v, w) and whether it is
// present.
func (pv *PortView) Port(v, w int) (int, bool) {
	p, ok := pv.port[[2]int{v, w}]
	return p, ok
}

// Validate checks that pt is a consistent port assignment for g.
func (pt *Ports) Validate(g *Graph) error {
	if len(pt.nbrByPort) != g.N() {
		return fmt.Errorf("ports cover %d nodes, graph has %d", len(pt.nbrByPort), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if len(pt.nbrByPort[v]) != g.Degree(v) {
			return fmt.Errorf("node %d has %d ports, want deg=%d", v, len(pt.nbrByPort[v]), g.Degree(v))
		}
		seen := make(map[int]bool, g.Degree(v))
		for p0, w := range pt.nbrByPort[v] {
			if !g.HasEdge(v, w) {
				return fmt.Errorf("port %d of node %d points to non-neighbor %d", p0+1, v, w)
			}
			if seen[w] {
				return fmt.Errorf("node %d has two ports to neighbor %d", v, w)
			}
			seen[w] = true
		}
	}
	return nil
}
