package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsBipartite(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"singleton", New(1), true},
		{"path", Path(6), true},
		{"even cycle", MustCycle(8), true},
		{"odd cycle", MustCycle(7), false},
		{"triangle", MustCycle(3), false},
		{"complete bipartite", CompleteBipartite(3, 4), true},
		{"k4", Complete(4), false},
		{"grid", Grid(4, 5), true},
		{"petersen", Petersen(), false},
		{"even watermelon", MustWatermelon([]int{2, 4, 2}), true},
		{"odd watermelon", MustWatermelon([]int{2, 3}), false},
		{"union of odd and even", DisjointUnion(MustCycle(4), MustCycle(5)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsBipartite(); got != tt.want {
				t.Errorf("IsBipartite() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTwoColoringProper(t *testing.T) {
	g := Grid(3, 5)
	color, ok := g.TwoColoring()
	if !ok {
		t.Fatal("grid reported non-bipartite")
	}
	if !g.IsProperColoring(color) {
		t.Error("TwoColoring returned improper coloring")
	}
}

func TestOddCycle(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
	}{
		{"triangle", MustCycle(3)},
		{"c5", MustCycle(5)},
		{"petersen", Petersen()},
		{"odd watermelon", MustWatermelon([]int{2, 3})},
		{"k4", Complete(4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cyc := tt.g.OddCycle()
			if cyc == nil {
				t.Fatal("OddCycle() = nil on non-bipartite graph")
			}
			if len(cyc)%2 == 0 {
				t.Fatalf("cycle %v has even length", cyc)
			}
			for i := range cyc {
				j := (i + 1) % len(cyc)
				if !tt.g.HasEdge(cyc[i], cyc[j]) {
					t.Fatalf("cycle %v uses non-edge %d-%d", cyc, cyc[i], cyc[j])
				}
			}
			seen := make(map[int]bool)
			for _, v := range cyc {
				if seen[v] {
					t.Fatalf("cycle %v repeats node %d", cyc, v)
				}
				seen[v] = true
			}
		})
	}
}

func TestOddCycleNilOnBipartite(t *testing.T) {
	for _, g := range []*Graph{Path(5), MustCycle(6), Grid(3, 3), CompleteBipartite(2, 3)} {
		if cyc := g.OddCycle(); cyc != nil {
			t.Errorf("OddCycle() = %v on bipartite graph %v", cyc, g)
		}
	}
}

func TestIsProperColoring(t *testing.T) {
	g := Path(3)
	tests := []struct {
		name  string
		color []int
		want  bool
	}{
		{"proper", []int{0, 1, 0}, true},
		{"improper", []int{0, 0, 1}, false},
		{"short", []int{0, 1}, false},
		{"large palette", []int{5, 9, 5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.IsProperColoring(tt.color); got != tt.want {
				t.Errorf("IsProperColoring(%v) = %v, want %v", tt.color, got, tt.want)
			}
		})
	}
}

func TestKColoring(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		k    int
		want bool
	}{
		{"path 1-colorable no", Path(2), 1, false},
		{"path 2-colorable", Path(5), 2, true},
		{"c5 2-colorable no", MustCycle(5), 2, false},
		{"c5 3-colorable", MustCycle(5), 3, true},
		{"k4 3-colorable no", Complete(4), 3, false},
		{"k4 4-colorable", Complete(4), 4, true},
		{"petersen 3-colorable", Petersen(), 3, true},
		{"zero colors empty", New(0), 0, true},
		{"zero colors nonempty", New(1), 0, false},
		{"negative k", Path(2), -1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			color, got := tt.g.KColoring(tt.k)
			if got != tt.want {
				t.Fatalf("KColoring(%d) ok = %v, want %v", tt.k, got, tt.want)
			}
			if got && !tt.g.IsProperColoring(color) {
				t.Errorf("KColoring(%d) returned improper coloring %v", tt.k, color)
			}
		})
	}
}

func TestChromaticNumber(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"edgeless", New(4), 1},
		{"path", Path(4), 2},
		{"odd cycle", MustCycle(5), 3},
		{"k5", Complete(5), 5},
		{"petersen", Petersen(), 3},
		{"empty", New(0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.ChromaticNumber(); got != tt.want {
				t.Errorf("ChromaticNumber() = %d, want %d", got, tt.want)
			}
		})
	}
}

// Property: bipartite iff no odd cycle found, on random graphs.
func TestBipartiteOddCycleAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(9, 0.25, rng)
		return g.IsBipartite() == (g.OddCycle() == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: 2-coloring, when it exists, is proper.
func TestTwoColoringAlwaysProper(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(8, 0.3, rng)
		color, ok := g.TwoColoring()
		if !ok {
			return true
		}
		return g.IsProperColoring(color)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: chromatic number of a bipartite graph with at least one edge is 2.
func TestChromaticBipartite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random bipartite graph via random subgraph of K_{4,4}.
		g := New(8)
		for u := 0; u < 4; u++ {
			for v := 4; v < 8; v++ {
				if rng.Float64() < 0.5 {
					if err := g.AddEdge(u, v); err != nil {
						return false
					}
				}
			}
		}
		chi := g.ChromaticNumber()
		if g.M() == 0 {
			return chi <= 1
		}
		return chi == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKColoringBudget(t *testing.T) {
	// Unlimited budget always decides.
	_, ok, decided := Petersen().KColoringBudget(3, -1)
	if !decided || !ok {
		t.Errorf("Petersen 3-coloring: ok=%v decided=%v", ok, decided)
	}
	// A zero budget on a graph with a non-empty core cannot decide.
	_, _, decided = Complete(6).KColoringBudget(4, 0)
	if decided {
		t.Error("zero budget decided a K6 4-coloring search")
	}
	// Peeling alone decides trees without touching the budget.
	_, ok, decided = Path(10).KColoringBudget(3, 0)
	if !decided || !ok {
		t.Error("peeling should 3-color a path with zero search budget")
	}
	// k >= n shortcut.
	coloring, ok, decided := Complete(5).KColoringBudget(64, 0)
	if !decided || !ok || !Complete(5).IsProperColoring(coloring) {
		t.Error("k >= n shortcut failed")
	}
}

func TestKColoringPeelingCorrectness(t *testing.T) {
	// Graphs whose k-core is empty are fully handled by peeling; the
	// result must still be proper.
	for _, g := range []*Graph{Path(8), CompleteBinaryTree(4), Spider([]int{3, 3, 3})} {
		coloring, ok := g.KColoring(3)
		if !ok || !g.IsProperColoring(coloring) {
			t.Errorf("peeled coloring improper on %v", g)
		}
	}
}

// Property: KColoring agrees with chromatic-number facts on random graphs
// and always returns proper colorings.
func TestKColoringProperProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(9, 0.4, rng)
		for k := 1; k <= 5; k++ {
			coloring, ok := g.KColoring(k)
			if ok && !g.IsProperColoring(coloring) {
				return false
			}
			if ok {
				for _, c := range coloring {
					if c < 0 || c >= k {
						return false
					}
				}
			}
			// Monotonicity: k-colorable implies (k+1)-colorable.
			if ok {
				if _, ok2 := g.KColoring(k + 1); !ok2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
