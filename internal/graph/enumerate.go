package graph

import "fmt"

// EnumGraphs calls fn with every simple graph on exactly n labeled nodes
// (2^(n(n-1)/2) of them). Enumeration stops early if fn returns false.
// The Graph passed to fn — node set, adjacency storage, everything — is
// reused across calls; treat it as read-only and Clone it to retain.
func EnumGraphs(n int, fn func(*Graph) bool) {
	pairs := allPairs(n)
	total := 1 << len(pairs)
	deg := make([]int, n)
	// One Graph and one adjacency backing array (sized for the complete
	// graph) serve every mask; per mask the lists are re-sliced out of the
	// backing. Pairs are lexicographic, so plain appends keep each list
	// sorted — the same representation AddEdge produces.
	g := New(n)
	backing := make([]int, n*max(n-1, 0))
	for mask := 0; mask < total; mask++ {
		for v := range deg {
			deg[v] = 0
		}
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				deg[e[0]]++
				deg[e[1]]++
			}
		}
		off := 0
		for v := 0; v < n; v++ {
			if deg[v] > 0 {
				g.adj[v] = backing[off : off : off+deg[v]]
				off += deg[v]
			} else {
				g.adj[v] = nil
			}
		}
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				g.adj[e[0]] = append(g.adj[e[0]], e[1])
				g.adj[e[1]] = append(g.adj[e[1]], e[0])
			}
		}
		if !fn(g) {
			return
		}
	}
}

// EnumConnectedGraphs is EnumGraphs restricted to connected graphs.
func EnumConnectedGraphs(n int, fn func(*Graph) bool) {
	EnumGraphs(n, func(g *Graph) bool {
		if !g.Connected() {
			return true
		}
		return fn(g)
	})
}

func allPairs(n int) [][2]int {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return pairs
}

// EnumPorts calls fn with every port assignment of g (the product over nodes
// of deg(v)! permutations). Enumeration stops early if fn returns false.
func EnumPorts(g *Graph, fn func(*Ports) bool) {
	perms := make([][][]int, g.N())
	for v := 0; v < g.N(); v++ {
		perms[v] = permutations(g.Degree(v))
	}
	choice := make([][]int, g.N())
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N() {
			pt, err := PortsFromPerm(g, choice)
			if err != nil {
				panic(fmt.Sprintf("graph.EnumPorts: internal bug: %v", err))
			}
			return fn(pt)
		}
		for _, p := range perms[v] {
			choice[v] = p
			if !rec(v + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// permutations returns all permutations of 0..k-1.
func permutations(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), base...))
			return
		}
		for j := i; j < k; j++ {
			base[i], base[j] = base[j], base[i]
			rec(i + 1)
			base[i], base[j] = base[j], base[i]
		}
	}
	rec(0)
	return out
}

// EnumIDs calls fn with every injective identifier assignment of n nodes
// using identifiers from [1, maxID]. Enumeration stops early if fn returns
// false.
func EnumIDs(n, maxID int, fn func(IDs) bool) {
	if maxID < n {
		return
	}
	ids := make(IDs, n)
	used := make([]bool, maxID+1)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return fn(ids.Clone())
		}
		for id := 1; id <= maxID; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			ids[v] = id
			if !rec(v + 1) {
				return false
			}
			used[id] = false
		}
		return true
	}
	rec(0)
}

// EnumLabelings calls fn with every labeling of n nodes over an alphabet of
// the given size (alphabet^n total); labels are integers 0..alphabet-1
// indexed by node. Enumeration stops early if fn returns false. The slice
// passed to fn is reused across calls; copy it to retain.
func EnumLabelings(n, alphabet int, fn func([]int) bool) {
	if alphabet <= 0 {
		return
	}
	lab := make([]int, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return fn(lab)
		}
		for a := 0; a < alphabet; a++ {
			lab[v] = a
			if !rec(v + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// Combinations calls fn with every size-k subset of 0..n-1 in lexicographic
// order. Enumeration stops early if fn returns false. The slice passed to
// fn is reused across calls; copy it to retain.
func Combinations(n, k int, fn func([]int) bool) {
	if k < 0 || k > n {
		return
	}
	sel := make([]int, k)
	var rec func(start, i int) bool
	rec = func(start, i int) bool {
		if i == k {
			return fn(sel)
		}
		for v := start; v <= n-(k-i); v++ {
			sel[i] = v
			if !rec(v+1, i+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// CountGraphs returns the number of graphs on n labeled nodes satisfying
// pred. Exponential; intended for tiny n in tests.
func CountGraphs(n int, pred func(*Graph) bool) int {
	count := 0
	EnumGraphs(n, func(g *Graph) bool {
		if pred(g) {
			count++
		}
		return true
	})
	return count
}
