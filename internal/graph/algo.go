package graph

import "fmt"

// Unreachable is the distance value reported for node pairs in different
// connected components.
const Unreachable = -1

// BFSDistances returns the distance from src to every node, with Unreachable
// (-1) for nodes in other components.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or Unreachable if they are
// in different components.
func (g *Graph) Dist(u, v int) int {
	return g.BFSDistances(u)[v]
}

// Ball returns the sorted set N^r(v) of nodes at distance at most r from v.
func (g *Graph) Ball(v, r int) []int {
	dist := g.BFSDistances(v)
	ball := make([]int, 0)
	for w, d := range dist {
		if d != Unreachable && d <= r {
			ball = append(ball, w)
		}
	}
	return ball
}

// ShortestPath returns some shortest path from u to v inclusive of both
// endpoints, or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return nil
	}
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[u] = -1
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			break
		}
		for _, w := range g.adj[x] {
			if parent[w] == -2 {
				parent[w] = x
				queue = append(queue, w)
			}
		}
	}
	if parent[v] == -2 {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = parent[x] {
		rev = append(rev, x)
	}
	path := make([]int, len(rev))
	for i, x := range rev {
		path[len(rev)-1-i] = x
	}
	return path
}

// Connected reports whether g is connected. The empty graph and singletons
// are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	if g.n <= 64 {
		// Allocation-free reachability with a bitmask visited set; each
		// node is pushed at most once, so the stack fits in 64 slots.
		var stack [64]int
		seen := uint64(1)
		stack[0] = 0
		top, count := 1, 1
		for top > 0 {
			top--
			v := stack[top]
			for _, w := range g.adj[v] {
				if seen&(1<<uint(w)) == 0 {
					seen |= 1 << uint(w)
					count++
					stack[top] = w
					top++
				}
			}
		}
		return count == g.n
	}
	dist := g.BFSDistances(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components of g as sorted node lists,
// ordered by their smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		var comp []int
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			comp = append(comp, x)
			for _, w := range g.adj[x] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, sortedCopy(comp))
	}
	return comps
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j-1] > c[j]; j-- {
			c[j-1], c[j] = c[j], c[j-1]
		}
	}
	return c
}

// Diameter returns the diameter of g (the maximum pairwise distance), or
// Unreachable if g is disconnected, or 0 if g has at most one node.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFSDistances(v) {
			if d == Unreachable {
				return Unreachable
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// IsCycleGraph reports whether g is a single cycle: connected, n >= 3, and
// every node has degree exactly 2.
func (g *Graph) IsCycleGraph() bool {
	if g.n < 3 || !g.Connected() {
		return false
	}
	for v := 0; v < g.n; v++ {
		if g.Degree(v) != 2 {
			return false
		}
	}
	return true
}

// IsPathGraph reports whether g is a simple path: connected, with exactly two
// nodes of degree 1 and the rest of degree 2 (or a single node/edge).
func (g *Graph) IsPathGraph() bool {
	if !g.Connected() {
		return false
	}
	switch g.n {
	case 0:
		return false
	case 1:
		return true
	}
	deg1 := 0
	for v := 0; v < g.n; v++ {
		switch g.Degree(v) {
		case 1:
			deg1++
		case 2:
		default:
			return false
		}
	}
	return deg1 == 2
}

// CountCycles returns the cycle rank (circuit rank) of g: m - n + c, the
// number of independent cycles. A connected graph has at least two cycles in
// the sense of Section 5.2 of the paper iff its cycle rank is at least 2.
func (g *Graph) CountCycles() int {
	return g.M() - g.n + len(g.Components())
}

// ValidateNode returns an error if v is not a node of g.
func (g *Graph) ValidateNode(v int) error {
	if v < 0 || v >= g.n {
		return fmt.Errorf("node %d out of range [0,%d)", v, g.n)
	}
	return nil
}
