package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGraph6RoundTrip(t *testing.T) {
	corpus := []*Graph{
		New(0), New(1), New(5),
		Path(4), MustCycle(5), Complete(4), Petersen(), Grid(3, 4),
		CompleteBipartite(2, 3), Star(7),
	}
	for _, g := range corpus {
		s, err := g.Graph6()
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		back, err := ParseGraph6(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if !g.Equal(back) {
			t.Errorf("round trip lost structure: %v -> %q -> %v", g, s, back)
		}
	}
}

func TestGraph6KnownValues(t *testing.T) {
	// The canonical examples from the format specification: the 5-cycle
	// 0-1-2-3-4-0 encodes as "DQc" ... verify against a hand-computed
	// value: upper-triangle column-order bits for C5 are
	// (01)1 (02)0 (12)1 (03)0 (13)0 (23)1 (04)1 (14)0 (24)0 (34)1.
	g := MustCycle(5)
	s, err := g.Graph6()
	if err != nil {
		t.Fatal(err)
	}
	// n=5 -> 'D'; bits 101001 -> 41+63=104='h'; 1001(00) -> 36+63=99='c'.
	if s != "Dhc" {
		t.Errorf("C5 graph6 = %q, want %q", s, "Dhc")
	}
}

func TestParseGraph6Errors(t *testing.T) {
	bad := []string{"", "D", "Dhcc", string(rune(1)), "D\x01\x01"}
	for _, s := range bad {
		if _, err := ParseGraph6(s); err == nil {
			t.Errorf("ParseGraph6(%q) succeeded, want error", s)
		}
	}
}

func TestGraph6TooLarge(t *testing.T) {
	if _, err := New(63).Graph6(); err == nil {
		t.Error("graph6 of 63 nodes accepted")
	}
}

// Property: graph6 round-trips on random graphs.
func TestGraph6RoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(2+rng.Intn(12), 0.4, rng)
		s, err := g.Graph6()
		if err != nil {
			return false
		}
		back, err := ParseGraph6(s)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDOT(t *testing.T) {
	g := Path(3)
	out := g.DOT("demo", []string{"a", "", "c"})
	for _, want := range []string{"graph demo {", `n0 [label="a"]`, "n1;", `n2 [label="c"]`, "n0 -- n1;", "n1 -- n2;"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q in:\n%s", want, out)
		}
	}
}

func TestCanonicalGraph6(t *testing.T) {
	// Isomorphic graphs share a canonical form; non-isomorphic ones don't.
	a := Path(4)
	b := MustFromEdges(4, [][2]int{{2, 0}, {0, 3}, {3, 1}}) // relabeled P4
	c := Star(4)
	ca, err := a.CanonicalGraph6()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalGraph6()
	if err != nil {
		t.Fatal(err)
	}
	cc, err := c.CanonicalGraph6()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Errorf("isomorphic paths canonicalize differently: %q vs %q", ca, cb)
	}
	if ca == cc {
		t.Error("path and star share a canonical form")
	}
	if _, err := New(9).CanonicalGraph6(); err == nil {
		t.Error("canonical form for 9 nodes accepted")
	}
}

// Property: canonical form is invariant under random relabeling.
func TestCanonicalGraph6Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		g := GNP(n, 0.5, rng)
		perm := rng.Perm(n)
		h := New(n)
		for _, e := range g.Edges() {
			if err := h.AddEdge(perm[e[0]], perm[e[1]]); err != nil {
				return false
			}
		}
		cg, err1 := g.CanonicalGraph6()
		ch, err2 := h.CanonicalGraph6()
		return err1 == nil && err2 == nil && cg == ch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortedDegrees(t *testing.T) {
	// Spider(2,1): center (deg 2), a 2-edge leg (middle deg 2, tip deg 1),
	// and a 1-edge leg (tip deg 1).
	g := Spider([]int{2, 1})
	got := g.SortedDegrees()
	want := []int{1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("SortedDegrees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedDegrees = %v, want %v", got, want)
		}
	}
}
