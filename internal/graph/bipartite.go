package graph

// TwoColoring attempts to properly 2-color g. It returns the coloring (values
// 0/1 indexed by node) and true on success, or nil and false if g contains an
// odd cycle. Disconnected graphs are colored component by component, with
// color 0 assigned to the smallest node of each component.
func (g *Graph) TwoColoring() ([]int, bool) {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				switch color[w] {
				case -1:
					color[w] = 1 - color[v]
					queue = append(queue, w)
				case color[v]:
					return nil, false
				}
			}
		}
	}
	return color, true
}

// IsBipartite reports whether g has no odd cycle.
func (g *Graph) IsBipartite() bool {
	if g.n > 64 {
		_, ok := g.TwoColoring()
		return ok
	}
	// Allocation-free 2-coloring over bitmasks: seen marks visited nodes,
	// col holds their side (bit set = side 1). Each node is enqueued at
	// most once, so the queue fits in 64 slots.
	var seen, col uint64
	var queue [64]int
	for s := 0; s < g.n; s++ {
		if seen&(1<<uint(s)) != 0 {
			continue
		}
		seen |= 1 << uint(s)
		queue[0] = s
		head, tail := 0, 1
		for head < tail {
			v := queue[head]
			head++
			cv := (col >> uint(v)) & 1
			for _, w := range g.adj[v] {
				if seen&(1<<uint(w)) == 0 {
					seen |= 1 << uint(w)
					col |= (1 - cv) << uint(w)
					queue[tail] = w
					tail++
				} else if (col>>uint(w))&1 == cv {
					return false
				}
			}
		}
	}
	return true
}

// OddCycle returns the node sequence of some odd cycle in g (first node not
// repeated at the end), or nil if g is bipartite.
func (g *Graph) OddCycle() []int {
	color := make([]int, g.n)
	parent := make([]int, g.n)
	for i := range color {
		color[i] = -1
		parent[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if color[w] == -1 {
					color[w] = 1 - color[v]
					parent[w] = v
					queue = append(queue, w)
					continue
				}
				if color[w] != color[v] {
					continue
				}
				// Same-color edge {v, w}: splice the two tree paths together.
				return spliceOddCycle(parent, v, w)
			}
		}
	}
	return nil
}

// spliceOddCycle builds the odd cycle induced by BFS-tree paths to v and w
// plus the edge {v, w}.
func spliceOddCycle(parent []int, v, w int) []int {
	pathTo := func(x int) []int {
		var rev []int
		for ; x != -1; x = parent[x] {
			rev = append(rev, x)
		}
		out := make([]int, len(rev))
		for i, y := range rev {
			out[len(rev)-1-i] = y
		}
		return out
	}
	pv, pw := pathTo(v), pathTo(w)
	// Find the last common ancestor index.
	lca := 0
	for lca+1 < len(pv) && lca+1 < len(pw) && pv[lca+1] == pw[lca+1] {
		lca++
	}
	cycle := append([]int(nil), pv[lca:]...)
	for i := len(pw) - 1; i > lca; i-- {
		cycle = append(cycle, pw[i])
	}
	return cycle
}

// IsProperColoring reports whether color (indexed by node, arbitrary integer
// palette) is a proper coloring of g: every edge has differently colored
// endpoints. Colorings shorter than g.N() are improper.
func (g *Graph) IsProperColoring(color []int) bool {
	if len(color) < g.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v && color[u] == color[v] {
				return false
			}
		}
	}
	return true
}

// KColoring attempts to properly color g with colors 0..k-1. It returns
// the coloring and true on success. The search uses low-degree peeling,
// DSATUR-ordered backtracking, and color-symmetry breaking, and runs
// without a step budget — worst-case exponential; see KColoringBudget for
// the bounded variant used on large inputs.
func (g *Graph) KColoring(k int) ([]int, bool) {
	coloring, ok, decided := g.KColoringBudget(k, -1)
	if !decided {
		// Unreachable: an unlimited budget always decides.
		panic("graph.KColoring: unlimited search reported undecided")
	}
	return coloring, ok
}

// KColoringBudget is KColoring with a backtracking-step budget: budget < 0
// means unlimited. It returns decided = false when the budget is exhausted
// before the search concludes (coloring and ok are then meaningless).
//
// The search first peels vertices of degree < k (always greedily colorable
// afterwards), then backtracks over the remaining core choosing the most
// saturated vertex first (DSATUR) and introducing fresh colors one at a
// time; k = 2 short-circuits to the exact bipartiteness test.
func (g *Graph) KColoringBudget(k, budget int) (coloring []int, ok, decided bool) {
	switch {
	case k < 0:
		return nil, false, true
	case g.n == 0:
		return []int{}, true, true
	case k == 0:
		return nil, false, true
	case k == 1:
		if g.M() == 0 {
			return make([]int, g.n), true, true
		}
		return nil, false, true
	case k == 2:
		c, okTwo := g.TwoColoring()
		return c, okTwo, true
	case k >= g.n:
		// Enough colors for one per node (also keeps the color bitmasks
		// below within their 64-bit budget for any realistic k).
		c := make([]int, g.n)
		for i := range c {
			c[i] = i
		}
		return c, true, true
	}

	// Peel: repeatedly remove vertices with fewer than k remaining
	// neighbors; they can always be colored after the core.
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = g.Degree(v)
	}
	var peel []int
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if deg[v] < k {
			queue = append(queue, v)
			removed[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		peel = append(peel, v)
		for _, w := range g.adj[v] {
			if removed[w] {
				continue
			}
			deg[w]--
			if deg[w] < k {
				removed[w] = true
				queue = append(queue, w)
			}
		}
	}

	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	var core []int
	for v := 0; v < g.n; v++ {
		if !removed[v] {
			core = append(core, v)
		}
	}
	steps := 0
	outOfBudget := false
	var solve func(remaining, maxUsed int) bool
	solve = func(remaining, maxUsed int) bool {
		if remaining == 0 {
			return true
		}
		if budget >= 0 {
			steps++
			if steps > budget {
				outOfBudget = true
				return false
			}
		}
		// DSATUR: pick the uncolored core vertex with the most distinct
		// neighbor colors, breaking ties by degree then index.
		best, bestSat, bestDeg := -1, -1, -1
		for _, v := range core {
			if color[v] != -1 {
				continue
			}
			seen := 0
			var mask uint64
			for _, w := range g.adj[v] {
				if c := color[w]; c >= 0 && mask&(1<<uint(c)) == 0 {
					mask |= 1 << uint(c)
					seen++
				}
			}
			if seen > bestSat || (seen == bestSat && g.Degree(v) > bestDeg) {
				best, bestSat, bestDeg = v, seen, g.Degree(v)
			}
		}
		v := best
		limit := maxUsed + 1
		if limit > k {
			limit = k
		}
		for c := 0; c < limit; c++ {
			okColor := true
			for _, w := range g.adj[v] {
				if color[w] == c {
					okColor = false
					break
				}
			}
			if !okColor {
				continue
			}
			color[v] = c
			next := maxUsed
			if c == maxUsed {
				next = maxUsed + 1
			}
			if solve(remaining-1, next) {
				return true
			}
			color[v] = -1
			if outOfBudget {
				return false
			}
		}
		return false
	}
	if !solve(len(core), 0) {
		if outOfBudget {
			return nil, false, false
		}
		return nil, false, true
	}
	// Unpeel in reverse removal order: each vertex has fewer than k
	// colored neighbors at its reinsertion time.
	for i := len(peel) - 1; i >= 0; i-- {
		v := peel[i]
		var mask uint64
		for _, w := range g.adj[v] {
			if c := color[w]; c >= 0 {
				mask |= 1 << uint(c)
			}
		}
		for c := 0; c < k; c++ {
			if mask&(1<<uint(c)) == 0 {
				color[v] = c
				break
			}
		}
		if color[v] == -1 {
			panic("graph.KColoringBudget: peel reinsertion found no free color")
		}
	}
	return color, true, true
}

// IsKColorable reports whether g admits a proper coloring with k colors.
func (g *Graph) IsKColorable(k int) bool {
	_, ok := g.KColoring(k)
	return ok
}

// ChromaticNumber returns χ(G), computed by incremental backtracking.
// Intended for small graphs only.
func (g *Graph) ChromaticNumber() int {
	if g.n == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if g.IsKColorable(k) {
			return k
		}
	}
}
