package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph on n >= 1 nodes 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		mustAddEdge(g, v, v+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 nodes 0-1-...-(n-1)-0.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("cycle needs at least 3 nodes, got %d", n)
	}
	g := Path(n)
	mustAddEdge(g, n-1, 0)
	return g, nil
}

// MustCycle is Cycle but panics on error.
func MustCycle(n int) *Graph {
	g, err := Cycle(n)
	if err != nil {
		panic(fmt.Sprintf("graph.MustCycle: %v", err))
	}
	return g
}

// Star returns the star graph K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		mustAddEdge(g, 0, v)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAddEdge(g, u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			mustAddEdge(g, u, v)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph. Node (r, c) is r*cols + c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAddEdge(g, at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				mustAddEdge(g, at(r, c), at(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols toroidal grid (wrap-around in both
// dimensions). Requires rows, cols >= 3 so that the result is simple.
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("torus needs both dimensions >= 3, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	at := func(r, c int) int { return (r%rows)*cols + (c % cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustAddEdge(g, at(r, c), at(r, c+1))
			mustAddEdge(g, at(r, c), at(r+1, c))
		}
	}
	return g, nil
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (level 1 is a single root).
func CompleteBinaryTree(levels int) *Graph {
	if levels < 1 {
		return New(0)
	}
	n := (1 << levels) - 1
	g := New(n)
	for v := 1; v < n; v++ {
		mustAddEdge(g, v, (v-1)/2)
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n nodes drawn from
// the given source (via a Prüfer-like attachment process; not exactly
// uniform, but well spread and deterministic per seed).
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		mustAddEdge(g, v, rng.Intn(v))
	}
	return g
}

// GNP returns an Erdős–Rényi graph G(n, p) drawn from rng.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				mustAddEdge(g, u, v)
			}
		}
	}
	return g
}

// ConnectedGNP draws G(n, p) graphs until a connected one appears; it gives
// up after 1000 attempts and then returns a random tree plus GNP edges,
// which is always connected.
func ConnectedGNP(n int, p float64, rng *rand.Rand) *Graph {
	for attempt := 0; attempt < 1000; attempt++ {
		if g := GNP(n, p, rng); g.Connected() {
			return g
		}
	}
	g := RandomTree(n, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				mustAddEdge(g, u, v)
			}
		}
	}
	return g
}

// Watermelon returns the watermelon graph (Section 7.2) with endpoints
// v1 = 0 and v2 = 1 joined by len(pathLens) internally disjoint paths; path i
// has pathLens[i] edges (so pathLens[i]-1 internal nodes). Every length must
// be at least 2 so that the paths are internally disjoint and the graph is
// simple.
//
// Internal nodes are numbered 2, 3, ... path by path in order.
func Watermelon(pathLens []int) (*Graph, error) {
	if len(pathLens) < 1 {
		return nil, fmt.Errorf("watermelon needs at least one path")
	}
	n := 2
	for i, L := range pathLens {
		if L < 2 {
			return nil, fmt.Errorf("path %d has length %d, want >= 2", i, L)
		}
		n += L - 1
	}
	g := New(n)
	next := 2
	for _, L := range pathLens {
		prev := 0 // v1
		for j := 0; j < L-1; j++ {
			mustAddEdge(g, prev, next)
			prev = next
			next++
		}
		mustAddEdge(g, prev, 1) // v2
	}
	return g, nil
}

// MustWatermelon is Watermelon but panics on error.
func MustWatermelon(pathLens []int) *Graph {
	g, err := Watermelon(pathLens)
	if err != nil {
		panic(fmt.Sprintf("graph.MustWatermelon: %v", err))
	}
	return g
}

// WatermelonEndpoints returns the endpoint nodes of graphs built by
// Watermelon.
func WatermelonEndpoints() (v1, v2 int) { return 0, 1 }

// IsWatermelon reports whether g is a watermelon graph with the given
// endpoints: all other nodes have degree 2, the endpoints are nonadjacent...
// Precisely: g is connected, v1 != v2, deg(v1) = deg(v2) = number of paths,
// every other node has degree 2, and removing v1 and v2 leaves exactly
// deg(v1) path components each adjacent to both endpoints.
func IsWatermelon(g *Graph, v1, v2 int) bool {
	if v1 == v2 || v1 < 0 || v2 < 0 || v1 >= g.N() || v2 >= g.N() || !g.Connected() {
		return false
	}
	if g.HasEdge(v1, v2) {
		// Paths must have length at least 2.
		return false
	}
	k := g.Degree(v1)
	if k < 1 || g.Degree(v2) != k {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if v != v1 && v != v2 && g.Degree(v) != 2 {
			return false
		}
	}
	rest, orig := g.InducedSubgraph(without(g.N(), v1, v2))
	comps := rest.Components()
	if len(comps) != k {
		return false
	}
	for _, comp := range comps {
		sub, subOrig := rest.InducedSubgraph(comp)
		if !sub.IsPathGraph() {
			return false
		}
		touches1, touches2 := false, false
		for _, v := range subOrig {
			w := orig[v]
			if g.HasEdge(w, v1) {
				touches1 = true
			}
			if g.HasEdge(w, v2) {
				touches2 = true
			}
		}
		if !touches1 || !touches2 {
			return false
		}
	}
	return true
}

func without(n int, drop ...int) []int {
	dropSet := make(map[int]bool, len(drop))
	for _, d := range drop {
		dropSet[d] = true
	}
	keep := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !dropSet[v] {
			keep = append(keep, v)
		}
	}
	return keep
}

// HasShatterPoint reports whether g admits a shatter point (Section 7.1): a
// node v such that G - N[v] has at least two connected components. It returns
// the first such node, or -1.
func HasShatterPoint(g *Graph) int {
	for v := 0; v < g.N(); v++ {
		rest, _ := g.DeleteClosedNeighborhood(v)
		if len(rest.Components()) >= 2 {
			return v
		}
	}
	return -1
}

// Spider returns a spider graph: a center node 0 with legs legs, where leg i
// is a path with legLens[i] edges hanging off the center. Spiders with at
// least two legs of length >= 2 have a shatter point at the center.
func Spider(legLens []int) *Graph {
	n := 1
	for _, L := range legLens {
		n += L
	}
	g := New(n)
	next := 1
	for _, L := range legLens {
		prev := 0
		for j := 0; j < L; j++ {
			mustAddEdge(g, prev, next)
			prev = next
			next++
		}
	}
	return g
}

// Petersen returns the Petersen graph: 3-regular, girth 5, not bipartite,
// a handy no-instance for 2-coloring.
func Petersen() *Graph {
	g := New(10)
	for v := 0; v < 5; v++ {
		mustAddEdge(g, v, (v+1)%5) // outer cycle
		mustAddEdge(g, v, v+5)     // spokes
		mustAddEdge(g, v+5, (v+2)%5+5)
	}
	return g
}

// Theta returns the theta graph: two nodes joined by three internally
// disjoint paths of the given edge lengths (each >= 2). It is the smallest
// interesting watermelon with more than two paths... and, with suitable
// parities, the canonical graph with two independent cycles used in
// Section 5.2.
func Theta(a, b, c int) (*Graph, error) {
	return Watermelon([]int{a, b, c})
}

// DisjointUnion returns the disjoint union of gs, with nodes renumbered in
// order.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	u := New(n)
	base := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			mustAddEdge(u, base+e[0], base+e[1])
		}
		base += g.N()
	}
	return u
}

// AttachPendant returns a copy of g with one fresh degree-1 node attached to
// v, yielding a graph with δ(G) = 1 as required by the class H1 of
// Theorem 1.1. The pendant node is the last node of the result.
func AttachPendant(g *Graph, v int) (*Graph, error) {
	if err := g.ValidateNode(v); err != nil {
		return nil, err
	}
	h := New(g.N() + 1)
	for _, e := range g.Edges() {
		mustAddEdge(h, e[0], e[1])
	}
	mustAddEdge(h, v, g.N())
	return h, nil
}

// mustAddEdge adds an edge that is valid by construction of the caller.
func mustAddEdge(g *Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(fmt.Sprintf("graph: internal generator bug: %v", err))
	}
}

// Hypercube returns the d-dimensional hypercube graph Q_d on 2^d nodes
// (bipartite, d-regular; large hypercubes are further witnesses for the
// graph class of Theorem 1.2).
func Hypercube(d int) *Graph {
	n := 1 << d
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				mustAddEdge(g, v, w)
			}
		}
	}
	return g
}

// Ladder returns the ladder graph P_k x K_2 on 2k nodes: two parallel
// paths with rungs. Bipartite with minimum degree 2 (for k >= 2) and not a
// cycle for k >= 3.
func Ladder(k int) *Graph {
	g := New(2 * k)
	for i := 0; i < k; i++ {
		mustAddEdge(g, 2*i, 2*i+1) // rung
		if i+1 < k {
			mustAddEdge(g, 2*i, 2*(i+1))
			mustAddEdge(g, 2*i+1, 2*(i+1)+1)
		}
	}
	return g
}

// MobiusLadder returns the Möbius ladder M_k: the cycle C_{2k} plus the k
// antipodal chords. Each chord closes a (k+1)-cycle, so M_k is bipartite
// iff k is odd (M_3 = K_{3,3}); even k gives a 3-regular non-bipartite
// no-instance family. Requires k >= 3.
func MobiusLadder(k int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("Möbius ladder needs k >= 3, got %d", k)
	}
	g, err := Cycle(2 * k)
	if err != nil {
		return nil, err
	}
	for v := 0; v < k; v++ {
		mustAddEdge(g, v, v+k)
	}
	return g, nil
}

// Wheel returns the wheel graph W_n: a hub (node 0) joined to every node
// of an outer (n-1)-cycle. Requires n >= 4.
func Wheel(n int) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("wheel needs at least 4 nodes, got %d", n)
	}
	g := New(n)
	for v := 1; v < n; v++ {
		mustAddEdge(g, 0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		mustAddEdge(g, v, next)
	}
	return g, nil
}

// Caterpillar returns a caterpillar tree: a spine path on spine nodes with
// legs[i] pendant leaves attached to spine node i. Caterpillars are trees
// with minimum degree 1 — instances of the DegreeOne scheme's class H1.
func Caterpillar(spine int, legs []int) (*Graph, error) {
	if spine < 1 {
		return nil, fmt.Errorf("caterpillar needs a non-empty spine")
	}
	if len(legs) > spine {
		return nil, fmt.Errorf("more leg specs (%d) than spine nodes (%d)", len(legs), spine)
	}
	n := spine
	for _, l := range legs {
		if l < 0 {
			return nil, fmt.Errorf("negative leg count")
		}
		n += l
	}
	g := New(n)
	for i := 0; i+1 < spine; i++ {
		mustAddEdge(g, i, i+1)
	}
	next := spine
	for i, l := range legs {
		for j := 0; j < l; j++ {
			mustAddEdge(g, i, next)
			next++
		}
	}
	return g, nil
}
