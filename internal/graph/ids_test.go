package graph

import "testing"

func TestSequentialIDs(t *testing.T) {
	ids := SequentialIDs(4)
	if err := ids.Validate(4, 4); err != nil {
		t.Fatal(err)
	}
	if ids[0] != 1 || ids[3] != 4 {
		t.Errorf("ids = %v, want [1 2 3 4]", ids)
	}
}

func TestIDsValidate(t *testing.T) {
	tests := []struct {
		name    string
		ids     IDs
		n, max  int
		wantErr bool
	}{
		{"ok", IDs{3, 1, 2}, 3, 3, false},
		{"ok no max", IDs{100, 7}, 2, 0, false},
		{"wrong size", IDs{1, 2}, 3, 3, true},
		{"duplicate", IDs{1, 1}, 2, 3, true},
		{"zero id", IDs{0, 1}, 2, 3, true},
		{"over max", IDs{1, 9}, 2, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.ids.Validate(tt.n, tt.max)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestNodeWithID(t *testing.T) {
	ids := IDs{5, 2, 9}
	if got := ids.NodeWithID(2); got != 1 {
		t.Errorf("NodeWithID(2) = %d, want 1", got)
	}
	if got := ids.NodeWithID(7); got != -1 {
		t.Errorf("NodeWithID(7) = %d, want -1", got)
	}
}

func TestIDsMax(t *testing.T) {
	if got := (IDs{3, 8, 1}).Max(); got != 8 {
		t.Errorf("Max() = %d, want 8", got)
	}
	if got := (IDs{}).Max(); got != 0 {
		t.Errorf("Max() = %d, want 0", got)
	}
}

func TestSameOrder(t *testing.T) {
	tests := []struct {
		name string
		a, b IDs
		want bool
	}{
		{"identical", IDs{1, 2, 3}, IDs{1, 2, 3}, true},
		{"shifted", IDs{1, 2, 3}, IDs{10, 20, 30}, true},
		{"swapped", IDs{1, 2, 3}, IDs{2, 1, 3}, false},
		{"different length", IDs{1, 2}, IDs{1, 2, 3}, false},
		{"nonuniform gaps", IDs{5, 1, 7}, IDs{50, 2, 51}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.SameOrder(tt.b); got != tt.want {
				t.Errorf("SameOrder = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEnumIDsCount(t *testing.T) {
	// 2 nodes from [1,3]: 3*2 = 6 injective assignments.
	count := 0
	EnumIDs(2, 3, func(ids IDs) bool {
		if err := ids.Validate(2, 3); err != nil {
			t.Fatalf("enumerated invalid IDs: %v", err)
		}
		count++
		return true
	})
	if count != 6 {
		t.Errorf("enumerated %d assignments, want 6", count)
	}
}

func TestEnumIDsTooFew(t *testing.T) {
	called := false
	EnumIDs(3, 2, func(IDs) bool {
		called = true
		return true
	})
	if called {
		t.Error("EnumIDs with maxID < n should enumerate nothing")
	}
}

func TestEnumGraphsCount(t *testing.T) {
	// 2^3 = 8 graphs on 3 nodes; 4 of them connected.
	if got := CountGraphs(3, func(*Graph) bool { return true }); got != 8 {
		t.Errorf("graphs on 3 nodes = %d, want 8", got)
	}
	if got := CountGraphs(3, (*Graph).Connected); got != 4 {
		t.Errorf("connected graphs on 3 nodes = %d, want 4", got)
	}
}

func TestEnumConnectedGraphs(t *testing.T) {
	count := 0
	EnumConnectedGraphs(4, func(g *Graph) bool {
		if !g.Connected() {
			t.Fatal("enumerated disconnected graph")
		}
		count++
		return true
	})
	// Known: 38 connected labeled graphs on 4 nodes.
	if count != 38 {
		t.Errorf("connected graphs on 4 nodes = %d, want 38", count)
	}
}

func TestEnumLabelings(t *testing.T) {
	count := 0
	EnumLabelings(3, 2, func(lab []int) bool {
		for _, x := range lab {
			if x < 0 || x >= 2 {
				t.Fatalf("label out of range: %v", lab)
			}
		}
		count++
		return true
	})
	if count != 8 {
		t.Errorf("labelings = %d, want 8", count)
	}
	EnumLabelings(2, 0, func([]int) bool {
		t.Fatal("empty alphabet should enumerate nothing")
		return false
	})
}

func TestCombinations(t *testing.T) {
	var got [][]int
	Combinations(4, 2, func(c []int) bool {
		// The yielded slice is reused across calls; copy to retain.
		got = append(got, append([]int(nil), c...))
		return true
	})
	if len(got) != 6 {
		t.Fatalf("C(4,2) enumerated %d, want 6", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 1 {
		t.Errorf("first combination = %v, want [0 1]", got[0])
	}
	Combinations(3, 5, func([]int) bool {
		t.Fatal("k > n should enumerate nothing")
		return false
	})
}

func TestIsomorphic(t *testing.T) {
	tests := []struct {
		name string
		a, b *Graph
		want bool
	}{
		{"same path", Path(4), Path(4), true},
		{"relabeled path", Path(3), MustFromEdges(3, [][2]int{{0, 2}, {2, 1}}), true},
		{"path vs star", Path(4), Star(4), false},
		{"cycle sizes", MustCycle(4), MustCycle(5), false},
		{"k33 vs c6", CompleteBipartite(3, 3), MustCycle(6), false},
		{"empty", New(0), New(0), true},
		{"petersen to itself", Petersen(), Petersen(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Isomorphic(tt.a, tt.b); got != tt.want {
				t.Errorf("Isomorphic = %v, want %v", got, tt.want)
			}
		})
	}
}
