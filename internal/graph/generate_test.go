package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("P5: n=%d m=%d, want 5,4", g.N(), g.M())
	}
	if !g.IsPathGraph() {
		t.Error("Path(5) is not a path graph")
	}
}

func TestCycleErrors(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		if _, err := Cycle(n); err == nil {
			t.Errorf("Cycle(%d) succeeded, want error", n)
		}
	}
}

func TestCycle(t *testing.T) {
	g := MustCycle(6)
	if g.N() != 6 || g.M() != 6 {
		t.Errorf("C6: n=%d m=%d, want 6,6", g.N(), g.M())
	}
	if !g.IsCycleGraph() {
		t.Error("Cycle(6) is not a cycle graph")
	}
}

func TestStarComplete(t *testing.T) {
	if g := Star(6); g.M() != 5 || g.Degree(0) != 5 {
		t.Errorf("Star(6) malformed: %v", g)
	}
	if g := Complete(5); g.M() != 10 {
		t.Errorf("K5 has %d edges, want 10", g.M())
	}
	if g := CompleteBipartite(2, 3); g.M() != 6 || !g.IsBipartite() {
		t.Errorf("K23 malformed: %v", g)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n = %d, want 12", g.N())
	}
	// 3*3 horizontal + 2*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Errorf("grid m = %d, want 17", g.M())
	}
	if !g.IsBipartite() || !g.Connected() {
		t.Error("grid should be connected and bipartite")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || g.M() != 24 {
		t.Errorf("torus n=%d m=%d, want 12,24", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := Torus(2, 4); err == nil {
		t.Error("Torus(2,4) succeeded, want error")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(3)
	if g.N() != 7 || g.M() != 6 {
		t.Errorf("tree n=%d m=%d, want 7,6", g.N(), g.M())
	}
	if !g.Connected() || g.CountCycles() != 0 {
		t.Error("complete binary tree should be a tree")
	}
	if g := CompleteBinaryTree(0); g.N() != 0 {
		t.Error("CompleteBinaryTree(0) should be empty")
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		g := RandomTree(n, rng)
		if !g.Connected() || g.M() != n-1 {
			t.Fatalf("RandomTree(%d) not a tree: %v", n, g)
		}
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g := GNP(6, 0, rng); g.M() != 0 {
		t.Error("GNP(p=0) has edges")
	}
	if g := GNP(6, 1, rng); g.M() != 15 {
		t.Error("GNP(p=1) is not complete")
	}
}

func TestConnectedGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedGNP(8, 0.2, rng)
		if !g.Connected() {
			t.Fatal("ConnectedGNP returned disconnected graph")
		}
	}
}

func TestWatermelon(t *testing.T) {
	g := MustWatermelon([]int{2, 3, 4})
	// n = 2 + (1 + 2 + 3) = 8; m = 2 + 3 + 4 = 9.
	if g.N() != 8 || g.M() != 9 {
		t.Fatalf("watermelon n=%d m=%d, want 8,9", g.N(), g.M())
	}
	v1, v2 := WatermelonEndpoints()
	if g.Degree(v1) != 3 || g.Degree(v2) != 3 {
		t.Errorf("endpoint degrees = (%d,%d), want (3,3)", g.Degree(v1), g.Degree(v2))
	}
	if !IsWatermelon(g, v1, v2) {
		t.Error("IsWatermelon rejects a generated watermelon")
	}
}

func TestWatermelonErrors(t *testing.T) {
	if _, err := Watermelon(nil); err == nil {
		t.Error("empty watermelon accepted")
	}
	if _, err := Watermelon([]int{1, 2}); err == nil {
		t.Error("length-1 path accepted")
	}
}

func TestWatermelonParityBipartite(t *testing.T) {
	tests := []struct {
		name  string
		paths []int
		want  bool
	}{
		{"all even", []int{2, 4, 6}, true},
		{"all odd", []int{3, 5}, true},
		{"mixed", []int{2, 3}, false},
		{"single path", []int{5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := MustWatermelon(tt.paths)
			if got := g.IsBipartite(); got != tt.want {
				t.Errorf("bipartite = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsWatermelonRejects(t *testing.T) {
	tests := []struct {
		name   string
		g      *Graph
		v1, v2 int
	}{
		{"cycle wrong endpoints", MustCycle(6), 0, 1},
		{"same node", Path(3), 1, 1},
		{"grid", Grid(3, 3), 0, 8},
		{"adjacent endpoints", Path(2), 0, 1},
		{"star", Star(5), 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if IsWatermelon(tt.g, tt.v1, tt.v2) {
				t.Error("IsWatermelon accepted a non-watermelon")
			}
		})
	}
	// A cycle IS a watermelon when the endpoints are antipodal non-adjacent
	// nodes (two paths of length >= 2).
	if !IsWatermelon(MustCycle(6), 0, 3) {
		t.Error("C6 with antipodal endpoints should be a watermelon")
	}
}

func TestHasShatterPoint(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path5", Path(5), true},
		{"path4", Path(4), false},
		{"cycle6", MustCycle(6), false},
		{"spider", Spider([]int{2, 2, 2}), true},
		{"complete", Complete(4), false},
		{"grid4x4", Grid(4, 4), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := HasShatterPoint(tt.g) >= 0
			if got != tt.want {
				t.Errorf("HasShatterPoint = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSpider(t *testing.T) {
	g := Spider([]int{2, 3, 1})
	if g.N() != 7 || g.M() != 6 {
		t.Errorf("spider n=%d m=%d, want 7,6", g.N(), g.M())
	}
	if g.Degree(0) != 3 {
		t.Errorf("spider center degree = %d, want 3", g.Degree(0))
	}
	if g.CountCycles() != 0 {
		t.Error("spider should be a tree")
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen n=%d m=%d, want 10,15", g.N(), g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("petersen node %d degree %d, want 3", v, g.Degree(v))
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Path(3), MustCycle(4))
	if g.N() != 7 || g.M() != 6 {
		t.Errorf("union n=%d m=%d, want 7,6", g.N(), g.M())
	}
	if len(g.Components()) != 2 {
		t.Error("union should have two components")
	}
}

func TestAttachPendant(t *testing.T) {
	g, err := AttachPendant(MustCycle(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.MinDegree() != 1 {
		t.Errorf("pendant graph n=%d δ=%d, want 5,1", g.N(), g.MinDegree())
	}
	if g.Degree(4) != 1 || !g.HasEdge(2, 4) {
		t.Error("pendant not attached to node 2")
	}
	if _, err := AttachPendant(Path(2), 9); err == nil {
		t.Error("out-of-range attach accepted")
	}
}

func TestTheta(t *testing.T) {
	g, err := Theta(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.CountCycles() != 2 {
		t.Errorf("theta cycle rank = %d, want 2", g.CountCycles())
	}
}

// Property: watermelons are connected with exactly k = len(paths) endpoint
// degree and cycle rank k-1.
func TestWatermelonInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		paths := make([]int, k)
		for i := range paths {
			paths[i] = 2 + rng.Intn(4)
		}
		g := MustWatermelon(paths)
		v1, v2 := WatermelonEndpoints()
		return g.Connected() &&
			g.Degree(v1) == k &&
			g.Degree(v2) == k &&
			g.CountCycles() == k-1 &&
			IsWatermelon(g, v1, v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
