// Package graph provides the graph substrate underlying the locally checkable
// proof (LCP) framework: finite simple undirected graphs together with the
// port assignments and identifier assignments of the distributed LOCAL model
// (Section 2.2 of the paper), plus the algorithmic toolbox the paper's
// constructions rely on (BFS, bipartiteness, components, colorability) and
// generators for every graph family the paper mentions.
//
// Nodes are the integers 0..N()-1. Identifiers (package-level type IDs) are a
// separate injective assignment, as in the paper, so that the same structural
// graph can carry many identifier assignments.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a finite simple undirected graph on nodes 0..n-1.
//
// The zero value is the empty graph on zero nodes. Graphs are mutable while
// being built (AddEdge) and are treated as immutable by the rest of the
// library once constructed.
type Graph struct {
	n   int
	adj [][]int // adj[v] is sorted ascending and loop-free
}

// New returns an edgeless graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// FromEdges builds a graph on n nodes with the given edges.
// It returns an error if any endpoint is out of range, an edge is a loop, or
// an edge is duplicated.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("edge %v: %w", e, err)
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges but panics on error. It is intended for
// statically known graphs in tests and examples.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("graph.MustFromEdges: %v", err))
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// AddEdge inserts the undirected edge {u, v}.
// It returns an error if u or v is out of range, u == v, or the edge already
// exists.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("node out of range: have {%d,%d}, want within [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("loop at node %d not allowed", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return nil
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// HasEdge reports whether the undirected edge {u, v} is present.
// Out-of-range endpoints simply yield false.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MinDegree returns the minimum degree δ(G), or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree Δ(G), or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges as pairs {u, v} with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v := 0; v < g.n; v++ {
		c.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return c
}

// RemoveEdge deletes the undirected edge {u, v}.
// It returns an error if the edge is not present.
func (g *Graph) RemoveEdge(u, v int) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("edge {%d,%d} not present", u, v)
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	return nil
}

func removeSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	return append(s[:i], s[i+1:]...)
}

// InducedSubgraph returns the subgraph of g induced by keep, together with
// the mapping orig such that node i of the subgraph corresponds to node
// orig[i] of g. Duplicate entries in keep are ignored; the mapping is sorted.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	present := make(map[int]bool, len(keep))
	for _, v := range keep {
		if v >= 0 && v < g.n {
			present[v] = true
		}
	}
	orig := make([]int, 0, len(present))
	for v := range present {
		orig = append(orig, v)
	}
	sort.Ints(orig)
	index := make(map[int]int, len(orig))
	for i, v := range orig {
		index[v] = i
	}
	sub := New(len(orig))
	for i, v := range orig {
		for _, w := range g.adj[v] {
			if j, ok := index[w]; ok && i < j {
				// Ignoring the error: endpoints are in range, no loops, no
				// duplicates by construction.
				_ = sub.AddEdge(i, j)
			}
		}
	}
	return sub, orig
}

// DeleteClosedNeighborhood returns G - N[v]: the subgraph induced by all
// nodes other than v and its neighbors, plus the original-node mapping.
func (g *Graph) DeleteClosedNeighborhood(v int) (*Graph, []int) {
	drop := make(map[int]bool, g.Degree(v)+1)
	drop[v] = true
	for _, u := range g.adj[v] {
		drop[u] = true
	}
	keep := make([]int, 0, g.n)
	for u := 0; u < g.n; u++ {
		if !drop[u] {
			keep = append(keep, u)
		}
	}
	return g.InducedSubgraph(keep)
}

// Equal reports whether g and h are identical as labeled graphs (same node
// count and same edge set).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) != len(h.adj[v]) {
			return false
		}
		for i, w := range g.adj[v] {
			if h.adj[v][i] != w {
				return false
			}
		}
	}
	return true
}

// String renders the graph compactly, e.g. "G(n=4; 0-1 1-2 2-3)".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G(n=%d;", g.n)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, " %d-%d", e[0], e[1])
	}
	b.WriteString(")")
	return b.String()
}

// Key returns a deterministic string key identifying the labeled graph.
// Two graphs have the same key iff they are Equal.
func (g *Graph) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d", g.n)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "|%d,%d", e[0], e[1])
	}
	return b.String()
}
