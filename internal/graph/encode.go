package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph6 encodes g in the standard graph6 format (the de-facto interchange
// format for small undirected graphs: one printable ASCII string per
// graph). Only graphs with at most 62 nodes are supported, which covers
// every corpus this library enumerates.
func (g *Graph) Graph6() (string, error) {
	n := g.n
	if n > 62 {
		return "", fmt.Errorf("graph6 small-format supports up to 62 nodes, have %d", n)
	}
	var b strings.Builder
	b.WriteByte(byte(n + 63))
	// Upper-triangle bits in column order: (0,1), (0,2), (1,2), (0,3), ...
	var bits []byte
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			if g.HasEdge(u, v) {
				bits = append(bits, 1)
			} else {
				bits = append(bits, 0)
			}
		}
	}
	for i := 0; i < len(bits); i += 6 {
		var x byte
		for j := 0; j < 6; j++ {
			x <<= 1
			if i+j < len(bits) {
				x |= bits[i+j]
			}
		}
		b.WriteByte(x + 63)
	}
	return b.String(), nil
}

// ParseGraph6 decodes a graph6 string produced by Graph6 (small format,
// n <= 62).
func ParseGraph6(s string) (*Graph, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("empty graph6 string")
	}
	n := int(s[0]) - 63
	if n < 0 || n > 62 {
		return nil, fmt.Errorf("graph6 node count byte %q out of range", s[0])
	}
	need := (n*(n-1)/2 + 5) / 6
	if len(s)-1 != need {
		return nil, fmt.Errorf("graph6 body has %d bytes, want %d for n=%d", len(s)-1, need, n)
	}
	g := New(n)
	bitIndex := 0
	readBit := func() (int, error) {
		byteIdx := 1 + bitIndex/6
		x := int(s[byteIdx]) - 63
		if x < 0 || x > 63 {
			return 0, fmt.Errorf("graph6 body byte %q out of range", s[byteIdx])
		}
		shift := 5 - bitIndex%6
		bitIndex++
		return (x >> uint(shift)) & 1, nil
	}
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			bit, err := readBit()
			if err != nil {
				return nil, err
			}
			if bit == 1 {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// DOT renders g in Graphviz DOT format with optional per-node labels
// (pass nil for bare node names).
func (g *Graph) DOT(name string, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for v := 0; v < g.n; v++ {
		if labels != nil && v < len(labels) && labels[v] != "" {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", v, labels[v])
		} else {
			fmt.Fprintf(&b, "  n%d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -- n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// CanonicalGraph6 returns the lexicographically smallest graph6 encoding
// over all node permutations — a canonical form usable for isomorphism
// dedup of the small graphs this library enumerates. Factorial cost; keep
// n small (it refuses n > 8).
func (g *Graph) CanonicalGraph6() (string, error) {
	if g.n > 8 {
		return "", fmt.Errorf("canonical form by permutation search limited to 8 nodes, have %d", g.n)
	}
	perm := make([]int, g.n)
	for i := range perm {
		perm[i] = i
	}
	best := ""
	var rec func(i int) error
	rec = func(i int) error {
		if i == g.n {
			h := New(g.n)
			for _, e := range g.Edges() {
				if err := h.AddEdge(perm[e[0]], perm[e[1]]); err != nil {
					return err
				}
			}
			s, err := h.Graph6()
			if err != nil {
				return err
			}
			if best == "" || s < best {
				best = s
			}
			return nil
		}
		for j := i; j < g.n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			if err := rec(i + 1); err != nil {
				return err
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return "", err
	}
	return best, nil
}

// SortedDegrees returns the degree sequence in ascending order.
func (g *Graph) SortedDegrees() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Degree(v)
	}
	sort.Ints(out)
	return out
}
