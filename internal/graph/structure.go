package graph

// Girth returns the length of a shortest cycle of g, or Unreachable (-1)
// for forests. Computed by BFS from every node (O(n·m)).
func (g *Graph) Girth() int {
	best := -1
	for s := 0; s < g.n; s++ {
		dist := make([]int, g.n)
		parent := make([]int, g.n)
		for i := range dist {
			dist[i] = Unreachable
			parent[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
					continue
				}
				if w == parent[v] {
					continue
				}
				// Non-tree edge: cycle through s of length at most
				// dist[v] + dist[w] + 1.
				cyc := dist[v] + dist[w] + 1
				if best == -1 || cyc < best {
					best = cyc
				}
			}
		}
	}
	if best == -1 {
		return Unreachable
	}
	return best
}

// CutVertices returns the articulation points of g (nodes whose removal
// increases the number of connected components), sorted ascending, via the
// classical low-link DFS.
func (g *Graph) CutVertices() []int {
	disc := make([]int, g.n)
	low := make([]int, g.n)
	for i := range disc {
		disc[i] = -1
	}
	isCut := make([]bool, g.n)
	timer := 0
	var dfs func(v, parent int)
	dfs = func(v, parent int) {
		disc[v] = timer
		low[v] = timer
		timer++
		children := 0
		for _, w := range g.adj[v] {
			if w == parent {
				continue
			}
			if disc[w] != -1 {
				if disc[w] < low[v] {
					low[v] = disc[w]
				}
				continue
			}
			children++
			dfs(w, v)
			if low[w] < low[v] {
				low[v] = low[w]
			}
			if parent != -1 && low[w] >= disc[v] {
				isCut[v] = true
			}
		}
		if parent == -1 && children > 1 {
			isCut[v] = true
		}
	}
	for v := 0; v < g.n; v++ {
		if disc[v] == -1 {
			dfs(v, -1)
		}
	}
	var out []int
	for v, c := range isCut {
		if c {
			out = append(out, v)
		}
	}
	return out
}

// IsTree reports whether g is a tree: connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.Connected() && g.M() == g.n-1 && g.n > 0
}

// Complement returns the complement graph of g.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				mustAddEdge(c, u, v)
			}
		}
	}
	return c
}
