package graph

import (
	"fmt"
	"reflect"
	"testing"
)

var shardCounts = []int{1, 2, 3, 7, 16}

// checkPartition verifies the sharding contract shared by every sharder:
// the concatenation of shard outputs is a permutation of the sequential
// enumeration, each shard is a subsequence of the sequential order, and
// shards are pairwise disjoint. Items are compared by their fingerprint,
// which must be unique across the space.
func checkPartition(t *testing.T, k int, sequential []string, shardsOut [][]string) {
	t.Helper()
	rank := make(map[string]int, len(sequential))
	for i, fp := range sequential {
		if _, dup := rank[fp]; dup {
			t.Fatalf("sequential enumeration repeats %q; fingerprints must be unique", fp)
		}
		rank[fp] = i
	}
	seen := make(map[string]int)
	total := 0
	for s, out := range shardsOut {
		last := -1
		for _, fp := range out {
			r, ok := rank[fp]
			if !ok {
				t.Fatalf("k=%d shard %d produced %q, absent from the sequential enumeration", k, s, fp)
			}
			if r <= last {
				t.Fatalf("k=%d shard %d violates sequential order at %q (rank %d after %d)", k, s, fp, r, last)
			}
			last = r
			if prev, dup := seen[fp]; dup {
				t.Fatalf("k=%d: %q produced by both shard %d and shard %d", k, fp, prev, s)
			}
			seen[fp] = s
			total++
		}
	}
	if total != len(sequential) {
		t.Fatalf("k=%d: shards produced %d items, sequential enumeration has %d", k, total, len(sequential))
	}
}

func TestEnumLabelingsShardPartition(t *testing.T) {
	cases := []struct{ n, alphabet int }{
		{0, 2}, {1, 2}, {3, 2}, {4, 3}, {5, 2}, {3, 4}, {2, 17},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n%d_a%d", c.n, c.alphabet), func(t *testing.T) {
			var sequential []string
			EnumLabelings(c.n, c.alphabet, func(idx []int) bool {
				sequential = append(sequential, fmt.Sprint(idx))
				return true
			})
			for _, k := range shardCounts {
				shardsOut := make([][]string, k)
				for s := 0; s < k; s++ {
					EnumLabelingsShard(c.n, c.alphabet, s, k, func(idx []int) bool {
						shardsOut[s] = append(shardsOut[s], fmt.Sprint(idx))
						return true
					})
				}
				checkPartition(t, k, sequential, shardsOut)
			}
		})
	}
}

func TestEnumIDsShardPartition(t *testing.T) {
	cases := []struct{ n, maxID int }{
		{0, 3}, {1, 1}, {2, 4}, {3, 4}, {3, 5}, {4, 4},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("n%d_max%d", c.n, c.maxID), func(t *testing.T) {
			var sequential []string
			EnumIDs(c.n, c.maxID, func(ids IDs) bool {
				sequential = append(sequential, fmt.Sprint(ids))
				return true
			})
			for _, k := range shardCounts {
				shardsOut := make([][]string, k)
				for s := 0; s < k; s++ {
					EnumIDsShard(c.n, c.maxID, s, k, func(ids IDs) bool {
						shardsOut[s] = append(shardsOut[s], fmt.Sprint(ids))
						return true
					})
				}
				checkPartition(t, k, sequential, shardsOut)
			}
		})
	}
}

func TestEnumGraphsShardPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			var sequential []string
			EnumGraphs(n, func(g *Graph) bool {
				g6, err := g.Graph6()
				if err != nil {
					t.Fatal(err)
				}
				sequential = append(sequential, g6)
				return true
			})
			for _, k := range shardCounts {
				shardsOut := make([][]string, k)
				for s := 0; s < k; s++ {
					EnumGraphsShard(n, s, k, func(g *Graph) bool {
						g6, err := g.Graph6()
						if err != nil {
							t.Fatal(err)
						}
						shardsOut[s] = append(shardsOut[s], g6)
						return true
					})
				}
				checkPartition(t, k, sequential, shardsOut)
			}
		})
	}
}

func TestEnumShardEarlyStop(t *testing.T) {
	// Returning false must stop the shard immediately, like the sequential
	// enumerators.
	count := 0
	EnumLabelingsShard(4, 3, 1, 3, func([]int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("labeling shard yielded %d after stop, want 5", count)
	}
	count = 0
	EnumIDsShard(3, 4, 0, 2, func(IDs) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("ID shard yielded %d after stop, want 1", count)
	}
	count = 0
	EnumGraphsShard(4, 2, 3, func(*Graph) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("graph shard yielded %d after stop, want 1", count)
	}
}

func TestEnumShardDegenerate(t *testing.T) {
	// shards <= 1 is the sequential enumeration; out-of-range shard indices
	// produce nothing.
	var a, b []string
	EnumLabelings(3, 2, func(idx []int) bool { a = append(a, fmt.Sprint(idx)); return true })
	EnumLabelingsShard(3, 2, 0, 1, func(idx []int) bool { b = append(b, fmt.Sprint(idx)); return true })
	if !reflect.DeepEqual(a, b) {
		t.Error("shards=1 differs from sequential enumeration")
	}
	for _, bad := range []int{-1, 5} {
		EnumLabelingsShard(3, 2, bad, 5, func([]int) bool { t.Errorf("shard %d of 5 yielded", bad); return false })
		EnumIDsShard(2, 3, bad, 5, func(IDs) bool { t.Errorf("ID shard %d of 5 yielded", bad); return false })
		EnumGraphsShard(3, bad, 5, func(*Graph) bool { t.Errorf("graph shard %d of 5 yielded", bad); return false })
	}
	// shard index other than 0 with shards <= 1 also produces nothing.
	EnumLabelingsShard(3, 2, 1, 1, func([]int) bool { t.Error("shard 1 of 1 yielded"); return false })
}

func TestLabelingRank(t *testing.T) {
	// Rank must equal the position in the sequential enumeration.
	for _, c := range []struct{ n, alphabet int }{{3, 2}, {4, 3}, {2, 17}} {
		pos := uint64(0)
		EnumLabelings(c.n, c.alphabet, func(idx []int) bool {
			if r := LabelingRank(idx, c.alphabet); r != pos {
				t.Fatalf("n=%d a=%d: rank(%v) = %d, want %d", c.n, c.alphabet, idx, r, pos)
			}
			pos++
			return true
		})
	}
}

func TestLabelingRankFits(t *testing.T) {
	cases := []struct {
		n, alphabet int
		want        bool
	}{
		{5, 4, true},
		{10, 17, true},
		{62, 2, true},
		{63, 2, false},
		{16, 17, false},
		{100, 1, true},
		{1000, 0, true},
	}
	for _, c := range cases {
		if got := LabelingRankFits(c.n, c.alphabet); got != c.want {
			t.Errorf("LabelingRankFits(%d, %d) = %v, want %v", c.n, c.alphabet, got, c.want)
		}
	}
}
