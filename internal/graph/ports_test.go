package graph

import "testing"

func TestDefaultPorts(t *testing.T) {
	g := Star(4)
	pt := DefaultPorts(g)
	if err := pt.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Center 0 has neighbors 1,2,3 behind ports 1,2,3.
	for p := 1; p <= 3; p++ {
		w, err := pt.NeighborAt(0, p)
		if err != nil {
			t.Fatal(err)
		}
		if w != p {
			t.Errorf("NeighborAt(0,%d) = %d, want %d", p, w, p)
		}
	}
	if got := pt.MustPort(1, 0); got != 1 {
		t.Errorf("MustPort(1,0) = %d, want 1", got)
	}
}

func TestPortsFromPermErrors(t *testing.T) {
	g := Path(3)
	tests := []struct {
		name string
		perm [][]int
	}{
		{"wrong rows", [][]int{{0}}},
		{"wrong row len", [][]int{{0}, {0}, {0}}},
		{"not a permutation", [][]int{{0}, {0, 0}, {0}}},
		{"out of range", [][]int{{1}, {0, 1}, {0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PortsFromPerm(g, tt.perm); err == nil {
				t.Error("invalid permutation accepted")
			}
		})
	}
}

func TestPortsFromPermReversed(t *testing.T) {
	g := Path(3) // node 1 has neighbors [0, 2]
	pt, err := PortsFromPerm(g, [][]int{{0}, {1, 0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Port 1 of node 1 now leads to neighbor index 1, i.e. node 2.
	w, err := pt.NeighborAt(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("NeighborAt(1,1) = %d, want 2", w)
	}
	if pt.MustPort(1, 0) != 2 {
		t.Errorf("MustPort(1,0) = %d, want 2", pt.MustPort(1, 0))
	}
}

func TestPortErrors(t *testing.T) {
	g := Path(3)
	pt := DefaultPorts(g)
	if _, err := pt.NeighborAt(0, 5); err == nil {
		t.Error("out-of-range port accepted")
	}
	if _, err := pt.NeighborAt(-1, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := pt.Port(0, 2); err == nil {
		t.Error("non-neighbor port lookup succeeded")
	}
	if _, err := pt.Port(17, 0); err == nil {
		t.Error("out-of-range node accepted in Port")
	}
}

func TestPortRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	pt := DefaultPorts(g)
	for v := 0; v < g.N(); v++ {
		for p := 1; p <= pt.DegreeOf(v); p++ {
			w, err := pt.NeighborAt(v, p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := pt.Port(v, w)
			if err != nil {
				t.Fatal(err)
			}
			if back != p {
				t.Errorf("port round trip at (%d,%d): got %d", v, p, back)
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	g := MustCycle(5)
	pt := DefaultPorts(g)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2})
	pv := pt.Restrict(sub, orig)
	// Edge 0-1 in sub corresponds to 0-1 in g.
	p, ok := pv.Port(0, 1)
	if !ok {
		t.Fatal("restricted port missing for surviving edge")
	}
	if want := pt.MustPort(0, 1); p != want {
		t.Errorf("restricted port = %d, want %d", p, want)
	}
	if _, ok := pv.Port(0, 2); ok {
		t.Error("restricted port present for non-edge")
	}
}

func TestEnumPortsCount(t *testing.T) {
	// Path on 3 nodes: degrees 1,2,1 -> 1!*2!*1! = 2 port assignments.
	g := Path(3)
	count := 0
	EnumPorts(g, func(pt *Ports) bool {
		if err := pt.Validate(g); err != nil {
			t.Fatalf("enumerated invalid ports: %v", err)
		}
		count++
		return true
	})
	if count != 2 {
		t.Errorf("enumerated %d port assignments, want 2", count)
	}
}

func TestEnumPortsEarlyStop(t *testing.T) {
	g := MustCycle(4) // 2^4 = 16 assignments
	count := 0
	EnumPorts(g, func(*Ports) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d, want 3", count)
	}
}
