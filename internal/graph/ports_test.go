package graph

import "testing"

func TestDefaultPorts(t *testing.T) {
	g := Star(4)
	pt := DefaultPorts(g)
	if err := pt.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Center 0 has neighbors 1,2,3 behind ports 1,2,3.
	for p := 1; p <= 3; p++ {
		w, err := pt.NeighborAt(0, p)
		if err != nil {
			t.Fatal(err)
		}
		if w != p {
			t.Errorf("NeighborAt(0,%d) = %d, want %d", p, w, p)
		}
	}
	if got := pt.MustPort(1, 0); got != 1 {
		t.Errorf("MustPort(1,0) = %d, want 1", got)
	}
}

func TestPortsFromPermErrors(t *testing.T) {
	g := Path(3)
	tests := []struct {
		name string
		perm [][]int
	}{
		{"wrong rows", [][]int{{0}}},
		{"wrong row len", [][]int{{0}, {0}, {0}}},
		{"not a permutation", [][]int{{0}, {0, 0}, {0}}},
		{"out of range", [][]int{{1}, {0, 1}, {0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PortsFromPerm(g, tt.perm); err == nil {
				t.Error("invalid permutation accepted")
			}
		})
	}
}

func TestPortsFromPermReversed(t *testing.T) {
	g := Path(3) // node 1 has neighbors [0, 2]
	pt, err := PortsFromPerm(g, [][]int{{0}, {1, 0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Port 1 of node 1 now leads to neighbor index 1, i.e. node 2.
	w, err := pt.NeighborAt(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("NeighborAt(1,1) = %d, want 2", w)
	}
	if pt.MustPort(1, 0) != 2 {
		t.Errorf("MustPort(1,0) = %d, want 2", pt.MustPort(1, 0))
	}
}

func TestPortErrors(t *testing.T) {
	g := Path(3)
	pt := DefaultPorts(g)
	if _, err := pt.NeighborAt(0, 5); err == nil {
		t.Error("out-of-range port accepted")
	}
	if _, err := pt.NeighborAt(-1, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := pt.Port(0, 2); err == nil {
		t.Error("non-neighbor port lookup succeeded")
	}
	if _, err := pt.Port(17, 0); err == nil {
		t.Error("out-of-range node accepted in Port")
	}
}

func TestPortRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	pt := DefaultPorts(g)
	for v := 0; v < g.N(); v++ {
		for p := 1; p <= pt.DegreeOf(v); p++ {
			w, err := pt.NeighborAt(v, p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := pt.Port(v, w)
			if err != nil {
				t.Fatal(err)
			}
			if back != p {
				t.Errorf("port round trip at (%d,%d): got %d", v, p, back)
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	g := MustCycle(5)
	pt := DefaultPorts(g)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2})
	pv := pt.Restrict(sub, orig)
	// Edge 0-1 in sub corresponds to 0-1 in g.
	p, ok := pv.Port(0, 1)
	if !ok {
		t.Fatal("restricted port missing for surviving edge")
	}
	if want := pt.MustPort(0, 1); p != want {
		t.Errorf("restricted port = %d, want %d", p, want)
	}
	if _, ok := pv.Port(0, 2); ok {
		t.Error("restricted port present for non-edge")
	}
}

func TestEnumPortsCount(t *testing.T) {
	// Path on 3 nodes: degrees 1,2,1 -> 1!*2!*1! = 2 port assignments.
	g := Path(3)
	count := 0
	EnumPorts(g, func(pt *Ports) bool {
		if err := pt.Validate(g); err != nil {
			t.Fatalf("enumerated invalid ports: %v", err)
		}
		count++
		return true
	})
	if count != 2 {
		t.Errorf("enumerated %d port assignments, want 2", count)
	}
}

func TestEnumPortsEarlyStop(t *testing.T) {
	g := MustCycle(4) // 2^4 = 16 assignments
	count := 0
	EnumPorts(g, func(*Ports) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d, want 3", count)
	}
}

func TestInducedPortsKeepsOriginalNumbers(t *testing.T) {
	// Star(5): hub 0 with leaves 1..4 behind ports 1..4. Drop leaves 1 and
	// 3; the survivors must keep their original port numbers at the hub,
	// with gaps where the vanished edges were.
	g := Star(5)
	pt := DefaultPorts(g)
	sub, orig := g.InducedSubgraph([]int{0, 2, 4})
	ip, err := InducedPorts(pt, sub, orig)
	if err != nil {
		t.Fatal(err)
	}
	// orig is sorted: sub node 0 = hub, 1 = leaf 2, 2 = leaf 4.
	if p, err := ip.Port(0, 1); err != nil || p != 2 {
		t.Errorf("Port(hub, leaf2) = %d,%v, want 2", p, err)
	}
	if p, err := ip.Port(0, 2); err != nil || p != 4 {
		t.Errorf("Port(hub, leaf4) = %d,%v, want 4", p, err)
	}
	// NeighborAt resolves surviving ports and errors on gaps.
	if w, err := ip.NeighborAt(0, 2); err != nil || w != 1 {
		t.Errorf("NeighborAt(hub, 2) = %d,%v", w, err)
	}
	for _, gap := range []int{1, 3} {
		if _, err := ip.NeighborAt(0, gap); err == nil {
			t.Errorf("gap port %d resolved", gap)
		}
	}
	// The partial assignment is not a valid Section 2.2 assignment for the
	// subgraph — by design.
	if err := ip.Validate(sub); err == nil {
		t.Error("partial induced assignment validated")
	}
	// Leaves keep port 1 to the hub; MustPort works on surviving edges.
	if ip.MustPort(1, 0) != 1 || ip.MustPort(2, 0) != 1 {
		t.Error("leaf ports renumbered")
	}
}

func TestInducedPortsFullSubgraphIsOriginal(t *testing.T) {
	// Keeping every node reproduces the original assignment exactly (and
	// therefore validates).
	g := Grid(3, 3)
	pt := DefaultPorts(g)
	keep := make([]int, g.N())
	for v := range keep {
		keep[v] = v
	}
	sub, orig := g.InducedSubgraph(keep)
	ip, err := InducedPorts(pt, sub, orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Validate(sub); err != nil {
		t.Errorf("full restriction invalid: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if ip.MustPort(v, w) != pt.MustPort(v, w) {
				t.Fatalf("port (%d,%d) changed", v, w)
			}
		}
	}
}

func TestInducedPortsErrors(t *testing.T) {
	g := Path(4)
	pt := DefaultPorts(g)
	sub, orig := g.InducedSubgraph([]int{0, 1})
	if _, err := InducedPorts(pt, sub, orig[:1]); err == nil {
		t.Error("mismatched orig length accepted")
	}
	// A stale orig mapping pointing at non-neighbors must surface the
	// underlying port lookup error.
	if _, err := InducedPorts(pt, sub, []int{0, 3}); err == nil {
		t.Error("non-edge mapping accepted")
	}
}
