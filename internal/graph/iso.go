package graph

// Isomorphic reports whether g and h are isomorphic, by degree-pruned
// backtracking. Exponential in the worst case; intended for the small graphs
// this library enumerates.
func Isomorphic(g, h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	n := g.N()
	if n == 0 {
		return true
	}
	if !sameDegreeSequence(g, h) {
		return false
	}
	mapping := make([]int, n) // mapping[v in g] = node in h
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for w := 0; w < n; w++ {
			if used[w] || g.Degree(v) != h.Degree(w) {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if g.HasEdge(v, u) != h.HasEdge(w, mapping[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = w
			used[w] = true
			if rec(v + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}
	return rec(0)
}

func sameDegreeSequence(g, h *Graph) bool {
	count := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		count[g.Degree(v)]++
		count[h.Degree(v)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
