package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSDistancesPath(t *testing.T) {
	g := Path(5)
	dist := g.BFSDistances(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	g := DisjointUnion(Path(2), Path(2))
	dist := g.BFSDistances(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Errorf("dist = %v, want unreachable for nodes 2,3", dist)
	}
}

func TestDist(t *testing.T) {
	g := MustCycle(6)
	tests := []struct{ u, v, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 5, 1}, {1, 4, 3},
	}
	for _, tt := range tests {
		if got := g.Dist(tt.u, tt.v); got != tt.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestBall(t *testing.T) {
	g := Path(7)
	ball := g.Ball(3, 2)
	want := []int{1, 2, 3, 4, 5}
	if len(ball) != len(want) {
		t.Fatalf("Ball(3,2) = %v, want %v", ball, want)
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("Ball(3,2) = %v, want %v", ball, want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := MustCycle(6)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 {
		t.Fatalf("path %v, want length-3 path", p)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Errorf("path %v does not run 0..3", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path %v uses non-edge %d-%d", p, p[i], p[i+1])
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := DisjointUnion(Path(2), Path(2))
	if p := g.ShortestPath(0, 3); p != nil {
		t.Errorf("path across components = %v, want nil", p)
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"singleton", New(1), true},
		{"two isolated", New(2), false},
		{"path", Path(5), true},
		{"union", DisjointUnion(Path(3), Path(2)), false},
		{"petersen", Petersen(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Errorf("Connected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := DisjointUnion(Path(3), MustCycle(3), New(1))
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	if sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Errorf("component sizes = %v, want [3 3 1]", sizes)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"singleton", New(1), 0},
		{"path5", Path(5), 4},
		{"cycle6", MustCycle(6), 3},
		{"cycle7", MustCycle(7), 3},
		{"complete4", Complete(4), 1},
		{"grid3x4", Grid(3, 4), 5},
		{"disconnected", DisjointUnion(Path(2), Path(2)), Unreachable},
		{"petersen", Petersen(), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Errorf("Diameter() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestIsCycleGraph(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"c3", MustCycle(3), true},
		{"c8", MustCycle(8), true},
		{"path", Path(4), false},
		{"two cycles", DisjointUnion(MustCycle(3), MustCycle(3)), false},
		{"theta", MustWatermelon([]int{2, 2, 2}), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsCycleGraph(); got != tt.want {
				t.Errorf("IsCycleGraph() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsPathGraph(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"p1", Path(1), true},
		{"p2", Path(2), true},
		{"p6", Path(6), true},
		{"cycle", MustCycle(4), false},
		{"star", Star(4), false},
		{"empty", New(0), false},
		{"disconnected", DisjointUnion(Path(2), Path(2)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsPathGraph(); got != tt.want {
				t.Errorf("IsPathGraph() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCountCycles(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", Path(6), 0},
		{"cycle", MustCycle(5), 1},
		{"theta", MustWatermelon([]int{2, 2, 2}), 2},
		{"k4", Complete(4), 3},
		{"forest", DisjointUnion(Path(3), Path(4)), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.CountCycles(); got != tt.want {
				t.Errorf("CountCycles() = %d, want %d", got, tt.want)
			}
		})
	}
}

// Property: BFS distances satisfy the triangle inequality along edges.
func TestBFSEdgeLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConnectedGNP(8, 0.35, rng)
		dist := g.BFSDistances(0)
		for _, e := range g.Edges() {
			d := dist[e[0]] - dist[e[1]]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ShortestPath length equals Dist.
func TestShortestPathMatchesDist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConnectedGNP(7, 0.4, rng)
		u, v := rng.Intn(7), rng.Intn(7)
		p := g.ShortestPath(u, v)
		return len(p)-1 == g.Dist(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
