//go:build !race

package graph

import "testing"

// Allocation pins for the enumeration core: one full enumeration pays a
// small constant setup (the reused slice or Graph), and the per-item cost is
// zero — the yielded values are reused across calls by contract. The race
// detector instruments allocations, so these run only in plain builds.

func TestEnumLabelingsAllocs(t *testing.T) {
	// 3^4 = 81 labelings; only the single reused slice may allocate.
	if n := testing.AllocsPerRun(20, func() {
		EnumLabelings(4, 3, func([]int) bool { return true })
	}); n > 2 {
		t.Errorf("EnumLabelings(4,3) allocates %.1f objects per full enumeration, want <= 2", n)
	}
}

func TestCombinationsAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(20, func() {
		Combinations(8, 3, func([]int) bool { return true })
	}); n > 2 {
		t.Errorf("Combinations(8,3) allocates %.1f objects per full enumeration, want <= 2", n)
	}
}

func TestEnumGraphsAllocs(t *testing.T) {
	// 2^6 = 64 graphs on 4 nodes through one reused Graph and one shared
	// adjacency backing array.
	if n := testing.AllocsPerRun(20, func() {
		EnumGraphs(4, func(*Graph) bool { return true })
	}); n > 8 {
		t.Errorf("EnumGraphs(4) allocates %.1f objects per full enumeration, want <= 8", n)
	}
}
