package view

import (
	"fmt"

	"hidinglcp/internal/graph"
)

// Extractor owns reusable scratch (BFS queue, distance and local-index
// buffers) for radius-r view extraction, so the inner enumeration loops of
// the checkers stop allocating per call. An Extractor is deterministic — the
// views it produces are identical to those of the package-level Extract —
// and is NOT safe for concurrent use: give each goroutine its own (the
// sharded builders do exactly that; there is deliberately no sync.Pool).
//
// The zero value is ready to use.
type Extractor struct {
	epoch int
	dist  []int
	dseen []int
	local []int
	lseen []int
	queue []int
	hosts []int
	deg   []int
}

// NewExtractor returns a fresh Extractor.
func NewExtractor() *Extractor { return &Extractor{} }

// ensure sizes the scratch for a host graph of n nodes and opens a new
// epoch, logically clearing the stamped buffers in O(1).
func (ex *Extractor) ensure(n int) {
	if len(ex.dist) < n {
		ex.dist = make([]int, n)
		ex.dseen = make([]int, n)
		ex.local = make([]int, n)
		ex.lseen = make([]int, n)
		ex.deg = make([]int, n)
	}
	ex.epoch++
}

// Extract is Extract from the package API, but reuses the Extractor's
// scratch across calls. The returned view is fully owned by the caller and
// never aliases the scratch.
func (ex *Extractor) Extract(g *graph.Graph, pt *graph.Ports, ids graph.IDs, labels []string, nBound, center, r int) (*View, error) {
	if err := g.ValidateNode(center); err != nil {
		return nil, fmt.Errorf("view center: %w", err)
	}
	if len(labels) != g.N() {
		return nil, fmt.Errorf("labeling covers %d nodes, graph has %d", len(labels), g.N())
	}
	if ids != nil && len(ids) != g.N() {
		return nil, fmt.Errorf("identifier assignment covers %d nodes, graph has %d", len(ids), g.N())
	}
	if r < 0 {
		return nil, fmt.Errorf("negative radius %d", r)
	}
	return ex.buildTemplate(g, pt, ids, nBound, center, r).Instantiate(labels), nil
}

// Template precomputes the label-independent part of a view — topology,
// distances, ports, identifiers, and the host-node mapping — so that
// sweeping many labelings of one instance only pays for the per-view label
// slice. Views instantiated from one template share the immutable Adj,
// Dist, Ports, and IDs structures (views are contractually immutable, so
// the sharing is safe).
func (ex *Extractor) Template(g *graph.Graph, pt *graph.Ports, ids graph.IDs, nBound, center, r int) (*Template, error) {
	if err := g.ValidateNode(center); err != nil {
		return nil, fmt.Errorf("view center: %w", err)
	}
	if ids != nil && len(ids) != g.N() {
		return nil, fmt.Errorf("identifier assignment covers %d nodes, graph has %d", len(ids), g.N())
	}
	if r < 0 {
		return nil, fmt.Errorf("negative radius %d", r)
	}
	return ex.buildTemplate(g, pt, ids, nBound, center, r), nil
}

// Template is the label-independent part of one node's radius-r view.
type Template struct {
	radius int
	nBound int
	adj    [][]int
	dist   []int
	ports  map[[2]int]int
	ids    []int
	hosts  []int
}

// Hosts returns the host-graph node at each local index (hosts[0] is the
// center). The slice is owned by the template; do not modify it.
func (t *Template) Hosts() []int { return t.hosts }

// N returns the number of nodes in views instantiated from the template.
func (t *Template) N() int { return len(t.hosts) }

// Instantiate builds the view for one labeling of the host graph. labels
// must cover the full host graph (len(labels) == host N); only the entries
// of visible nodes are read.
func (t *Template) Instantiate(labels []string) *View {
	ls := make([]string, len(t.hosts))
	for i, w := range t.hosts {
		ls[i] = labels[w]
	}
	return &View{
		Radius: t.radius,
		Adj:    t.adj,
		Dist:   t.dist,
		Ports:  t.ports,
		IDs:    t.ids,
		Labels: ls,
		NBound: t.nBound,
	}
}

// buildTemplate runs the truncated BFS and assembles the template. Inputs
// are pre-validated.
func (ex *Extractor) buildTemplate(g *graph.Graph, pt *graph.Ports, ids graph.IDs, nBound, center, r int) *Template {
	n := g.N()
	ex.ensure(n)
	ep := ex.epoch
	dist, dseen := ex.dist, ex.dseen

	// BFS out to distance r. The FIFO queue visits nodes in nondecreasing
	// distance, so hosts comes out grouped by distance layer.
	q := ex.queue[:0]
	dist[center], dseen[center] = 0, ep
	q = append(q, center)
	for qi := 0; qi < len(q); qi++ {
		w := q[qi]
		if dist[w] == r {
			continue
		}
		for _, x := range g.Neighbors(w) {
			if dseen[x] == ep {
				continue
			}
			dseen[x] = ep
			dist[x] = dist[w] + 1
			q = append(q, x)
		}
	}
	ex.queue = q

	// Local nodes sorted by (distance, host index): sort each distance
	// layer by host index.
	hosts := append(ex.hosts[:0], q...)
	for lo := 0; lo < len(hosts); {
		hi := lo + 1
		for hi < len(hosts) && dist[hosts[hi]] == dist[hosts[lo]] {
			hi++
		}
		insertionSortInts(hosts[lo:hi])
		lo = hi
	}
	ex.hosts = hosts

	local, lseen := ex.local, ex.lseen
	for i, w := range hosts {
		local[w], lseen[w] = i, ep
	}

	// Count visible directed edges per node so the adjacency lists can
	// share one backing array.
	deg := ex.deg
	total := 0
	for i, w := range hosts {
		c := 0
		for _, x := range g.Neighbors(w) {
			if lseen[x] != ep {
				continue
			}
			// Frontier truncation: an edge between two distance-r nodes is
			// not part of G_v^r.
			if dist[w] == r && dist[x] == r {
				continue
			}
			c++
		}
		deg[i] = c
		total += c
	}

	// One backing array carries dist, ids, hosts, and the adjacency
	// segments; capped subslices keep the template fields independent.
	nv := len(hosts)
	buf := make([]int, 3*nv+total)
	t := &Template{
		radius: r,
		nBound: nBound,
		adj:    make([][]int, nv),
		dist:   buf[:nv:nv],
		ids:    buf[nv : 2*nv : 2*nv],
		hosts:  buf[2*nv : 3*nv : 3*nv],
	}
	copy(t.hosts, hosts)
	for i, w := range hosts {
		t.dist[i] = dist[w]
		if ids != nil {
			t.ids[i] = ids[w]
		}
	}
	t.ports = make(map[[2]int]int, total)
	backing := buf[3*nv:]
	start := 0
	for i, w := range hosts {
		if deg[i] == 0 {
			continue
		}
		seg := backing[start : start+deg[i]]
		start += deg[i]
		k := 0
		for _, x := range g.Neighbors(w) {
			if lseen[x] != ep || (dist[w] == r && dist[x] == r) {
				continue
			}
			j := local[x]
			seg[k] = j
			k++
			t.ports[[2]int{i, j}] = pt.MustPort(w, x)
		}
		insertionSortInts(seg)
		t.adj[i] = seg
	}
	return t
}
