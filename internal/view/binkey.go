package view

import (
	"bytes"
	"encoding/binary"
	"slices"
	"strings"

	"hidinglcp/internal/mem"
)

// keyScratch holds every per-call buffer of the canonical-key computations
// (Key and BinKey): orderings, refinement colors, flat arm storage, and the
// serialization candidates. The buffers are recycled through keyScratchPool;
// nothing reachable from a scratch may be returned to a caller — the final
// key is always a fresh copy (see the escape rules of internal/mem).
type keyScratch struct {
	ord, color, next []int // refinement working set
	armStart, armNbr []int
	armPorts         [][2]int
	arms             [][3]int
	classNodes       []int   // center + color-grouped rest; classes subslice it
	classes          [][]int // class headers over classNodes
	tmp              []int   // idOrder duplicate detection
	order, pos       []int   // serialization ordering and its inverse
	cand, best       []byte  // minimization candidates
}

var keyScratchPool mem.Pool[keyScratch]

// BinKey returns a compact binary canonical key: two views have the same
// binary key iff they are equal as views, exactly as with Key (the
// partition equality is enforced by differential and fuzz tests). The
// encoding is an append-to-[]byte varint serialization — no fmt, no string
// joins — minimized over the same kind of class-respecting node orderings
// as Key, with the Weisfeiler-Leman-style refinement run over integer color
// arrays instead of string signatures.
//
// The key is computed once and cached. The returned slice is shared; the
// caller must not modify it.
func (v *View) BinKey() []byte {
	v.cacheMu.Lock()
	k := v.cachedBin
	if k == nil {
		k = v.computeBinKey()
		v.cachedBin = k
	}
	v.cacheMu.Unlock()
	return k
}

func (v *View) computeBinKey() []byte {
	sc := keyScratchPool.Get()
	defer keyScratchPool.Put(sc)
	if v.idOrderInto(sc) {
		sc.pos = mem.Ints(sc.pos, v.N())
		return v.appendBinSerialize(nil, sc.order, sc.pos)
	}
	return v.minBinKey(sc)
}

// appendBinSerialize renders the view under the given node ordering into
// dst: a varint header (radius, n, NBound), per node (dist, id,
// length-prefixed label), then every visible edge as (ka, kb, port a→b,
// port b→a) for positions ka < kb in increasing (ka, kb) order. Every field
// is self-delimiting, so the encoding determines the ordered view — equal
// bytes mean equal views under the chosen orderings.
func (v *View) appendBinSerialize(dst []byte, order, pos []int) []byte {
	n := v.N()
	if dst == nil {
		dst = make([]byte, 0, 16+8*n)
	}
	dst = binary.AppendUvarint(dst, uint64(v.Radius))
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(v.NBound))
	for _, i := range order {
		dst = binary.AppendUvarint(dst, uint64(v.Dist[i]))
		dst = binary.AppendVarint(dst, int64(v.IDs[i]))
		dst = binary.AppendUvarint(dst, uint64(len(v.Labels[i])))
		dst = append(dst, v.Labels[i]...)
	}
	for k, i := range order {
		pos[i] = k
	}
	var nbArr [16]int
	nb := nbArr[:0]
	for ka := 0; ka < n; ka++ {
		a := order[ka]
		nb = nb[:0]
		for _, w := range v.Adj[a] {
			if kb := pos[w]; kb > ka {
				nb = append(nb, kb)
			}
		}
		insertionSortInts(nb)
		for _, kb := range nb {
			b := order[kb]
			dst = binary.AppendUvarint(dst, uint64(ka))
			dst = binary.AppendUvarint(dst, uint64(kb))
			dst = binary.AppendUvarint(dst, uint64(v.Ports[[2]int{a, b}]))
			dst = binary.AppendUvarint(dst, uint64(v.Ports[[2]int{b, a}]))
		}
	}
	return dst
}

// minBinKey is minKey over the binary serialization: the byte-wise minimum
// over all orderings that put the center first and otherwise permute nodes
// only within refined invariant classes. Minimizing any injective
// serialization over an isomorphism-invariant set of orderings is
// canonical, so minBinKey and minKey induce the same view partition even
// though the byte strings differ.
func (v *View) minBinKey(sc *keyScratch) []byte {
	classes := v.refinedClassesInt(sc)
	n := v.N()
	sc.pos = mem.Ints(sc.pos, n)
	multi := false
	for _, c := range classes {
		if len(c) > 1 {
			multi = true
			break
		}
	}
	order := mem.Ints(sc.order, n)[:0]
	for _, c := range classes {
		order = append(order, c...)
	}
	sc.order = order
	if !multi {
		// Discrete refinement: the ordering is forced, no search needed.
		return v.appendBinSerialize(nil, order, sc.pos)
	}
	// The search permutes each class segment of order in place; the
	// byte-wise minimum over the whole ordering set is order-independent.
	sc.best = sc.best[:0]
	hasBest := false
	var rec func(ci, lo int)
	rec = func(ci, lo int) {
		if ci == len(classes) {
			sc.cand = v.appendBinSerialize(sc.cand[:0], order, sc.pos)
			if !hasBest || bytes.Compare(sc.cand, sc.best) < 0 {
				sc.best = append(sc.best[:0], sc.cand...)
				hasBest = true
			}
			return
		}
		permuteInPlace(order[lo:lo+len(classes[ci])], func() {
			rec(ci+1, lo+len(classes[ci]))
		})
	}
	rec(0, 0)
	out := make([]byte, len(sc.best))
	copy(out, sc.best)
	return out
}

// permuteInPlace runs fn under every permutation of s, restoring the
// original order before returning.
func permuteInPlace(s []int, fn func()) {
	var rec func(i int)
	rec = func(i int) {
		if i == len(s) {
			fn()
			return
		}
		for j := i; j < len(s); j++ {
			s[i], s[j] = s[j], s[i]
			rec(i + 1)
			s[i], s[j] = s[j], s[i]
		}
	}
	rec(0)
}

// refinedClassesInt is the integer-color counterpart of refinedClasses:
// nodes start colored by the rank of their invariant tuple (distance,
// label, degree, identifier) and are iteratively refined by the multiset of
// (port out, port back, neighbor color) arms, all over int arrays — no
// string signatures. The resulting partition is isomorphism-invariant, as
// is the class order (by color rank, center always first on its own), which
// is all minBinKey needs for canonicity. All working storage comes from the
// scratch; the returned class slices alias sc.classNodes and are valid only
// until the scratch is recycled.
func (v *View) refinedClassesInt(sc *keyScratch) [][]int {
	n := v.N()
	ord := mem.Ints(sc.ord, n)
	for i := range ord {
		ord[i] = i
	}
	sc.ord = ord
	initCmp := func(a, b int) int {
		if v.Dist[a] != v.Dist[b] {
			if v.Dist[a] < v.Dist[b] {
				return -1
			}
			return 1
		}
		if c := strings.Compare(v.Labels[a], v.Labels[b]); c != 0 {
			return c
		}
		if da, db := len(v.Adj[a]), len(v.Adj[b]); da != db {
			if da < db {
				return -1
			}
			return 1
		}
		switch {
		case v.IDs[a] < v.IDs[b]:
			return -1
		case v.IDs[a] > v.IDs[b]:
			return 1
		}
		return 0
	}
	insertionSortCmp(ord, initCmp)
	color := mem.Ints(sc.color, n)
	sc.color = color
	color[ord[0]] = 0
	colors := 1
	for k := 1; k < n; k++ {
		if initCmp(ord[k-1], ord[k]) != 0 {
			colors++
		}
		color[ord[k]] = colors - 1
	}

	if colors < n {
		// Flat arm storage: armStart[i]..armStart[i+1] are node i's arms.
		// Ports never change across rounds, so they are gathered once.
		armStart := mem.Ints(sc.armStart, n+1)
		sc.armStart = armStart
		armStart[0] = 0
		for i := 0; i < n; i++ {
			armStart[i+1] = armStart[i] + len(v.Adj[i])
		}
		m := armStart[n]
		armNbr := mem.Ints(sc.armNbr, m)
		sc.armNbr = armNbr
		if cap(sc.armPorts) < m {
			sc.armPorts = make([][2]int, m)
		}
		armPorts := sc.armPorts[:m]
		if cap(sc.arms) < m {
			sc.arms = make([][3]int, m)
		}
		arms := sc.arms[:m]
		for i := 0; i < n; i++ {
			for k, w := range v.Adj[i] {
				j := armStart[i] + k
				armNbr[j] = w
				armPorts[j] = [2]int{v.Ports[[2]int{i, w}], v.Ports[[2]int{w, i}]}
			}
		}
		next := mem.Ints(sc.next, n)
		sc.next = next
		armCmp := func(a, b int) int {
			if color[a] != color[b] {
				if color[a] < color[b] {
					return -1
				}
				return 1
			}
			// Equal colors imply equal degrees (degree is part of the
			// round-0 tuple), so the arm segments have equal length.
			sa := arms[armStart[a]:armStart[a+1]]
			sb := arms[armStart[b]:armStart[b+1]]
			for k := range sa {
				for c := 0; c < 3; c++ {
					if sa[k][c] != sb[k][c] {
						if sa[k][c] < sb[k][c] {
							return -1
						}
						return 1
					}
				}
			}
			return 0
		}
		for round := 0; round < n && colors < n; round++ {
			// Re-gather arms from the pristine port table each round:
			// sortArms permutes the segment, so ports and neighbor colors
			// must be re-paired before refilling.
			for j := 0; j < m; j++ {
				arms[j] = [3]int{armPorts[j][0], armPorts[j][1], color[armNbr[j]]}
			}
			for i := 0; i < n; i++ {
				sortArms(arms[armStart[i]:armStart[i+1]])
			}
			insertionSortCmp(ord, armCmp)
			nc := 1
			next[ord[0]] = 0
			for k := 1; k < n; k++ {
				if armCmp(ord[k-1], ord[k]) != 0 {
					nc++
				}
				next[ord[k]] = nc - 1
			}
			same := true
			for i := 0; i < n; i++ {
				if next[i] != color[i] {
					same = false
					break
				}
			}
			if same {
				break
			}
			copy(color, next)
			colors = nc
		}
	}

	// Center first on its own, then non-center nodes grouped by final color
	// in increasing order, increasing node index within a class.
	nodes := mem.Ints(sc.classNodes, n)
	sc.classNodes = nodes
	nodes[0] = Center
	rest := nodes[1:1]
	for i := 1; i < n; i++ {
		rest = append(rest, i)
	}
	slices.SortFunc(rest, func(a, b int) int {
		if color[a] != color[b] {
			return color[a] - color[b]
		}
		return a - b
	})
	classes := append(sc.classes[:0], nodes[0:1:1])
	for lo := 0; lo < len(rest); {
		hi := lo + 1
		for hi < len(rest) && color[rest[hi]] == color[rest[lo]] {
			hi++
		}
		classes = append(classes, rest[lo:hi:hi])
		lo = hi
	}
	sc.classes = classes
	return classes
}

// insertionSortCmp sorts s by the three-way comparator; views are tiny, so
// the quadratic sort beats the sort package's interface machinery and
// allocates nothing.
func insertionSortCmp(s []int, cmp func(a, b int) int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && cmp(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortArms(s [][3]int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && armLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func armLess(a, b [3]int) bool {
	for c := 0; c < 3; c++ {
		if a[c] != b[c] {
			return a[c] < b[c]
		}
	}
	return false
}
