package view

import (
	"bytes"
	"encoding/binary"
	"sort"
	"strings"
)

// BinKey returns a compact binary canonical key: two views have the same
// binary key iff they are equal as views, exactly as with Key (the
// partition equality is enforced by differential and fuzz tests). The
// encoding is an append-to-[]byte varint serialization — no fmt, no string
// joins — minimized over the same kind of class-respecting node orderings
// as Key, with the Weisfeiler-Leman-style refinement run over integer color
// arrays instead of string signatures.
//
// The key is computed once and cached. The returned slice is shared; the
// caller must not modify it.
func (v *View) BinKey() []byte {
	v.cacheMu.Lock()
	k := v.cachedBin
	if k == nil {
		k = v.computeBinKey()
		v.cachedBin = k
	}
	v.cacheMu.Unlock()
	return k
}

func (v *View) computeBinKey() []byte {
	if order, ok := v.idOrder(); ok {
		return v.appendBinSerialize(nil, order, make([]int, v.N()))
	}
	return v.minBinKey()
}

// appendBinSerialize renders the view under the given node ordering into
// dst: a varint header (radius, n, NBound), per node (dist, id,
// length-prefixed label), then every visible edge as (ka, kb, port a→b,
// port b→a) for positions ka < kb in increasing (ka, kb) order. Every field
// is self-delimiting, so the encoding determines the ordered view — equal
// bytes mean equal views under the chosen orderings.
func (v *View) appendBinSerialize(dst []byte, order, pos []int) []byte {
	n := v.N()
	if dst == nil {
		dst = make([]byte, 0, 16+8*n)
	}
	dst = binary.AppendUvarint(dst, uint64(v.Radius))
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(v.NBound))
	for _, i := range order {
		dst = binary.AppendUvarint(dst, uint64(v.Dist[i]))
		dst = binary.AppendVarint(dst, int64(v.IDs[i]))
		dst = binary.AppendUvarint(dst, uint64(len(v.Labels[i])))
		dst = append(dst, v.Labels[i]...)
	}
	for k, i := range order {
		pos[i] = k
	}
	var nbArr [16]int
	nb := nbArr[:0]
	for ka := 0; ka < n; ka++ {
		a := order[ka]
		nb = nb[:0]
		for _, w := range v.Adj[a] {
			if kb := pos[w]; kb > ka {
				nb = append(nb, kb)
			}
		}
		insertionSortInts(nb)
		for _, kb := range nb {
			b := order[kb]
			dst = binary.AppendUvarint(dst, uint64(ka))
			dst = binary.AppendUvarint(dst, uint64(kb))
			dst = binary.AppendUvarint(dst, uint64(v.Ports[[2]int{a, b}]))
			dst = binary.AppendUvarint(dst, uint64(v.Ports[[2]int{b, a}]))
		}
	}
	return dst
}

// minBinKey is minKey over the binary serialization: the byte-wise minimum
// over all orderings that put the center first and otherwise permute nodes
// only within refined invariant classes. Minimizing any injective
// serialization over an isomorphism-invariant set of orderings is
// canonical, so minBinKey and minKey induce the same view partition even
// though the byte strings differ.
func (v *View) minBinKey() []byte {
	classes := v.refinedClassesInt()
	pos := make([]int, v.N())
	order := make([]int, 0, v.N())
	multi := false
	for _, c := range classes {
		if len(c) > 1 {
			multi = true
			break
		}
	}
	if !multi {
		// Discrete refinement: the ordering is forced, no search needed.
		for _, c := range classes {
			order = append(order, c...)
		}
		return v.appendBinSerialize(nil, order, pos)
	}
	var best, cand []byte
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(classes) {
			cand = v.appendBinSerialize(cand[:0], order, pos)
			if best == nil || bytes.Compare(cand, best) < 0 {
				best = append(best[:0], cand...)
			}
			return
		}
		permute(classes[ci], func(perm []int) {
			order = append(order, perm...)
			rec(ci + 1)
			order = order[:len(order)-len(perm)]
		})
	}
	rec(0)
	return best
}

// refinedClassesInt is the integer-color counterpart of refinedClasses:
// nodes start colored by the rank of their invariant tuple (distance,
// label, degree, identifier) and are iteratively refined by the multiset of
// (port out, port back, neighbor color) arms, all over int arrays — no
// string signatures. The resulting partition is isomorphism-invariant, as
// is the class order (by color rank, center always first on its own), which
// is all minBinKey needs for canonicity.
func (v *View) refinedClassesInt() [][]int {
	n := v.N()
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	initCmp := func(a, b int) int {
		if v.Dist[a] != v.Dist[b] {
			if v.Dist[a] < v.Dist[b] {
				return -1
			}
			return 1
		}
		if c := strings.Compare(v.Labels[a], v.Labels[b]); c != 0 {
			return c
		}
		if da, db := len(v.Adj[a]), len(v.Adj[b]); da != db {
			if da < db {
				return -1
			}
			return 1
		}
		switch {
		case v.IDs[a] < v.IDs[b]:
			return -1
		case v.IDs[a] > v.IDs[b]:
			return 1
		}
		return 0
	}
	sort.Slice(ord, func(x, y int) bool { return initCmp(ord[x], ord[y]) < 0 })
	color := make([]int, n)
	colors := 1
	for k := 1; k < n; k++ {
		if initCmp(ord[k-1], ord[k]) != 0 {
			colors++
		}
		color[ord[k]] = colors - 1
	}

	if colors < n {
		// Flat arm storage: armStart[i]..armStart[i+1] are node i's arms.
		// Ports never change across rounds, so they are gathered once.
		armStart := make([]int, n+1)
		for i := 0; i < n; i++ {
			armStart[i+1] = armStart[i] + len(v.Adj[i])
		}
		m := armStart[n]
		armNbr := make([]int, m)
		armPorts := make([][2]int, m)
		arms := make([][3]int, m)
		for i := 0; i < n; i++ {
			for k, w := range v.Adj[i] {
				j := armStart[i] + k
				armNbr[j] = w
				armPorts[j] = [2]int{v.Ports[[2]int{i, w}], v.Ports[[2]int{w, i}]}
			}
		}
		next := make([]int, n)
		armCmp := func(a, b int) int {
			if color[a] != color[b] {
				if color[a] < color[b] {
					return -1
				}
				return 1
			}
			// Equal colors imply equal degrees (degree is part of the
			// round-0 tuple), so the arm segments have equal length.
			sa := arms[armStart[a]:armStart[a+1]]
			sb := arms[armStart[b]:armStart[b+1]]
			for k := range sa {
				for c := 0; c < 3; c++ {
					if sa[k][c] != sb[k][c] {
						if sa[k][c] < sb[k][c] {
							return -1
						}
						return 1
					}
				}
			}
			return 0
		}
		for round := 0; round < n && colors < n; round++ {
			// Re-gather arms from the pristine port table each round:
			// sortArms permutes the segment, so ports and neighbor colors
			// must be re-paired before refilling.
			for j := 0; j < m; j++ {
				arms[j] = [3]int{armPorts[j][0], armPorts[j][1], color[armNbr[j]]}
			}
			for i := 0; i < n; i++ {
				sortArms(arms[armStart[i]:armStart[i+1]])
			}
			sort.Slice(ord, func(x, y int) bool { return armCmp(ord[x], ord[y]) < 0 })
			nc := 1
			next[ord[0]] = 0
			for k := 1; k < n; k++ {
				if armCmp(ord[k-1], ord[k]) != 0 {
					nc++
				}
				next[ord[k]] = nc - 1
			}
			same := true
			for i := 0; i < n; i++ {
				if next[i] != color[i] {
					same = false
					break
				}
			}
			if same {
				break
			}
			copy(color, next)
			colors = nc
		}
	}

	// Center first on its own, then non-center nodes grouped by final color
	// in increasing order, increasing node index within a class.
	rest := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		rest = append(rest, i)
	}
	sort.Slice(rest, func(x, y int) bool {
		a, b := rest[x], rest[y]
		if color[a] != color[b] {
			return color[a] < color[b]
		}
		return a < b
	})
	classes := [][]int{{Center}}
	for lo := 0; lo < len(rest); {
		hi := lo + 1
		for hi < len(rest) && color[rest[hi]] == color[rest[lo]] {
			hi++
		}
		classes = append(classes, rest[lo:hi:hi])
		lo = hi
	}
	return classes
}

func sortArms(s [][3]int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && armLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func armLess(a, b [3]int) bool {
	for c := 0; c < 3; c++ {
		if a[c] != b[c] {
			return a[c] < b[c]
		}
	}
	return false
}
