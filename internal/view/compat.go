package view

import (
	"fmt"
	"sort"
	"strings"
)

// Radius1Key returns a canonical key for the radius-1 subview of local node
// i within v: node i, its visible neighbors, the connecting edges with both
// port numbers, and all identifiers and labels. For nodes at distance
// strictly less than the view radius this coincides with the node's radius-1
// view in the host graph, which is exactly the object Section 5.1's
// compatibility relation compares.
//
// Neighbors are ordered by the port number at i, which is canonical because
// ports at a node are distinct.
func (v *View) Radius1Key(i int) string {
	type arm struct {
		portAtI, portAtW int
		id               int
		label            string
	}
	arms := make([]arm, 0, v.Degree(i))
	for _, w := range v.Adj[i] {
		pIW := v.Ports[[2]int{i, w}]
		pWI := v.Ports[[2]int{w, i}]
		arms = append(arms, arm{pIW, pWI, v.IDs[w], v.Labels[w]})
	}
	sort.Slice(arms, func(a, b int) bool { return arms[a].portAtI < arms[b].portAtI })
	var b strings.Builder
	fmt.Fprintf(&b, "c:i%d;l%q;deg%d", v.IDs[i], v.Labels[i], len(arms))
	for _, a := range arms {
		fmt.Fprintf(&b, "|p%d>%d;i%d;l%q", a.portAtI, a.portAtW, a.id, a.label)
	}
	return b.String()
}

// Compatible reports whether local node u of mu1 is compatible with mu2 in
// the sense of Section 5.1: u carries the identifier of mu2's center, and
// every node of mu1 at distance < r from mu1's center that reappears in mu2
// at distance < r from mu2's center (matched by identifier) has an identical
// radius-1 view in both.
//
// Both views must be non-anonymous (compatibility matches nodes by
// identifier); if u carries identifier 0 the result is false.
func Compatible(mu1 *View, u int, mu2 *View) bool {
	if u < 0 || u >= mu1.N() {
		return false
	}
	if mu1.IDs[u] == 0 || mu1.IDs[u] != mu2.IDs[Center] {
		return false
	}
	for w1 := 0; w1 < mu1.N(); w1++ {
		if mu1.Dist[w1] >= mu1.Radius && mu1.Radius > 0 {
			continue
		}
		w2 := mu2.LocalNodeWithID(mu1.IDs[w1])
		if w2 < 0 {
			continue
		}
		if mu2.Dist[w2] >= mu2.Radius && mu2.Radius > 0 {
			continue
		}
		if mu1.Radius1Key(w1) != mu2.Radius1Key(w2) {
			return false
		}
	}
	return true
}
