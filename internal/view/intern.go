package view

import (
	"sync"
	"sync/atomic"
)

// Handle is a dense identifier for one canonical view class inside an
// Interner: handles are assigned 0, 1, 2, … in first-intern order, so they
// index plain slices where the string-keyed builders used map[string]
// tables. Handle values depend on intern order and are NOT canonical across
// runs or workers — never order output by handle; sort by Key instead.
type Handle uint32

const (
	internStripes   = 64
	internChunkBits = 10
	internChunkSize = 1 << internChunkBits
	internChunkMask = internChunkSize - 1
	internMaxChunks = 1 << 13 // 8M distinct views per interner
)

type internChunk [internChunkSize]*View

type internStripe struct {
	mu sync.RWMutex
	m  map[string]Handle
}

// Interner deduplicates views by binary canonical key and maps each
// distinct view class to a dense Handle. It is safe for concurrent use: the
// key→handle table is striped by key hash (read-mostly RWMutex fast path),
// and handle assignment is serialized behind one small critical section.
// The first view interned for a class is retained as the class
// representative.
type Interner struct {
	stripes [internStripes]internStripe

	// mu serializes handle assignment; n is the number of assigned handles.
	// Representatives live in fixed-position chunks so ViewOf can read them
	// without holding mu: the chunk pointer is atomic, and the entry write
	// happens-before the stripe-map publish that makes its handle visible.
	mu     sync.Mutex
	n      atomic.Uint32
	chunks [internMaxChunks]atomic.Pointer[internChunk]

	// hits counts Intern calls that found an existing class; misses counts
	// first-sight interns. Kept as plain relaxed atomics so instrumented and
	// uninstrumented builds take the same code path.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	it := &Interner{}
	for i := range it.stripes {
		it.stripes[i].m = make(map[string]Handle)
	}
	return it
}

// Intern returns the handle of mu's view class, assigning the next dense
// handle (and retaining mu as representative) on first sight.
func (it *Interner) Intern(mu *View) Handle {
	k := mu.BinKey()
	s := &it.stripes[internHash(k)&(internStripes-1)]
	s.mu.RLock()
	h, ok := s.m[string(k)] // compiler avoids the []byte→string copy for map reads
	s.mu.RUnlock()
	if ok {
		it.hits.Add(1)
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.m[string(k)]; ok {
		it.hits.Add(1)
		return h
	}
	it.misses.Add(1)
	it.mu.Lock()
	h = Handle(it.n.Load())
	c := h >> internChunkBits
	if c >= internMaxChunks {
		it.mu.Unlock()
		panic("view.Interner: too many distinct views")
	}
	ch := it.chunks[c].Load()
	if ch == nil {
		ch = new(internChunk)
		it.chunks[c].Store(ch)
	}
	ch[h&internChunkMask] = mu
	it.n.Store(uint32(h) + 1)
	it.mu.Unlock()
	s.m[string(k)] = h
	return h
}

// Lookup returns the handle of mu's view class without interning it.
func (it *Interner) Lookup(mu *View) (Handle, bool) {
	k := mu.BinKey()
	s := &it.stripes[internHash(k)&(internStripes-1)]
	s.mu.RLock()
	h, ok := s.m[string(k)]
	s.mu.RUnlock()
	return h, ok
}

// Len returns the number of distinct view classes interned so far.
func (it *Interner) Len() int { return int(it.n.Load()) }

// Stats reports how many Intern calls found an existing class (hits) and
// how many assigned a new handle (misses). Safe to call concurrently with
// Intern; the two values are read independently and may be one call apart.
func (it *Interner) Stats() (hits, misses uint64) {
	return it.hits.Load(), it.misses.Load()
}

// ViewOf returns the representative view of handle h. h must have been
// returned by Intern on this interner.
func (it *Interner) ViewOf(h Handle) *View {
	if uint32(h) >= it.n.Load() {
		panic("view.Interner: handle out of range")
	}
	return it.chunks[h>>internChunkBits].Load()[h&internChunkMask]
}

// internHash is FNV-1a over the key bytes, used only to pick a stripe.
func internHash(k []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range k {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}
