package view

import (
	"slices"
	"sort"
	"strconv"

	"hidinglcp/internal/mem"
)

// Key returns a canonical string key: two views have the same key iff they
// are equal as views (same radius, same N bound, and isomorphic via a
// center-fixing, distance-preserving bijection that matches identifiers,
// labels, and ports).
//
// When identifiers are present and distinct they already determine the
// canonical node order; otherwise the key is the lexicographic minimum over
// all distance-class-respecting orderings (views are small, so the search is
// cheap).
//
// The key is computed once and cached; see BinKey for the compact binary
// encoding used by the interner fast path.
func (v *View) Key() string {
	v.cacheMu.Lock()
	k := v.cachedKey
	if k == "" {
		k = v.computeKey()
		v.cachedKey = k
	}
	v.cacheMu.Unlock()
	return k
}

func (v *View) computeKey() string {
	sc := keyScratchPool.Get()
	defer keyScratchPool.Put(sc)
	if v.idOrderInto(sc) {
		sc.pos = mem.Ints(sc.pos, v.N())
		return string(v.appendSerialize(nil, sc.order, sc.pos))
	}
	return v.minKey(sc)
}

// Equal reports whether two views are equal in the sense of Key. It compares
// the cached binary keys, which partition views exactly as Key does.
func (v *View) Equal(w *View) bool {
	if v == w {
		return true
	}
	if v.N() != w.N() || v.Radius != w.Radius || v.NBound != w.NBound {
		return false
	}
	return string(v.BinKey()) == string(w.BinKey())
}

// idOrderSortCutoff is the view size above which idOrderInto switches from
// insertion sort to slices.SortFunc; below it the insertion sort wins on
// constant factors (see BenchmarkIDOrder for the crossover).
const idOrderSortCutoff = 24

// idOrderInto computes the nodes sorted by (distance, identifier) into
// sc.order and reports whether all identifiers are nonzero and distinct
// (the precondition for the identifier-determined canonical order).
func (v *View) idOrderInto(sc *keyScratch) bool {
	n := v.N()
	tmp := mem.Ints(sc.tmp, n)
	sc.tmp = tmp
	for i, id := range v.IDs {
		if id == 0 {
			return false
		}
		tmp[i] = id
	}
	slices.Sort(tmp)
	for i := 1; i < n; i++ {
		if tmp[i] == tmp[i-1] {
			return false
		}
	}
	order := mem.Ints(sc.order, n)
	sc.order = order
	for i := range order {
		order[i] = i
	}
	dist, ids := v.Dist, v.IDs
	if n > idOrderSortCutoff {
		slices.SortFunc(order, func(x, y int) int {
			if dist[x] != dist[y] {
				return dist[x] - dist[y]
			}
			return ids[x] - ids[y]
		})
		return true
	}
	// Insertion sort by (dist, id); small views.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if dist[a] < dist[b] || (dist[a] == dist[b] && ids[a] < ids[b]) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return true
}

// minKey computes the lexicographically smallest serialization over all
// orderings that respect the canonical class sequence (center first, then
// refined invariant classes in increasing order). Only nodes sharing an
// isomorphism-invariant signature may swap, which keeps the search tiny on
// realistic views while remaining canonical.
func (v *View) minKey(sc *keyScratch) string {
	classes := v.refinedClasses()
	n := v.N()
	sc.pos = mem.Ints(sc.pos, n)
	order := mem.Ints(sc.order, n)[:0]
	for _, c := range classes {
		order = append(order, c...)
	}
	sc.order = order
	sc.best = sc.best[:0]
	hasBest := false
	var rec func(ci, lo int)
	rec = func(ci, lo int) {
		if ci == len(classes) {
			sc.cand = v.appendSerialize(sc.cand[:0], order, sc.pos)
			if !hasBest || string(sc.cand) < string(sc.best) {
				sc.best = append(sc.best[:0], sc.cand...)
				hasBest = true
			}
			return
		}
		permuteInPlace(order[lo:lo+len(classes[ci])], func() {
			rec(ci+1, lo+len(classes[ci]))
		})
	}
	rec(0, 0)
	return string(sc.best)
}

// refinedClasses partitions local nodes into ordered classes by an
// iteratively refined isomorphism-invariant signature (distance, label,
// degree, sorted incident-edge descriptors over neighbor signatures — a
// Weisfeiler-Leman-style coloring). Permuting only within classes preserves
// canonicity because equal-signature nodes are interchangeable in any
// serialization-minimal ordering. This is the legacy string-signature
// refinement behind Key; the BinKey hot path runs refinedClassesInt
// instead.
func (v *View) refinedClasses() [][]int {
	n := v.N()
	sig := make([]string, n)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = v.appendBaseSig(buf[:0], i)
		sig[i] = string(buf)
	}
	allDistinct := func() bool {
		seen := make(map[string]bool, n)
		for _, s := range sig {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	for round := 0; round < n && !allDistinct(); round++ {
		next := make([]string, n)
		changed := false
		arms := make([]string, 0, n)
		for i := 0; i < n; i++ {
			arms = arms[:0]
			for _, w := range v.Adj[i] {
				buf = strconv.AppendInt(buf[:0], int64(v.Ports[[2]int{i, w}]), 10)
				buf = append(buf, '>')
				buf = strconv.AppendInt(buf, int64(v.Ports[[2]int{w, i}]), 10)
				buf = append(buf, ':')
				buf = append(buf, sig[w]...)
				arms = append(arms, string(buf))
			}
			sort.Strings(arms)
			buf = append(buf[:0], sig[i]...)
			buf = append(buf, '|')
			for k, a := range arms {
				if k > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, a...)
			}
			next[i] = string(buf)
		}
		// Compress to keep signatures short.
		index := map[string]int{}
		var keys []string
		for _, s := range next {
			if _, ok := index[s]; !ok {
				index[s] = 0
				keys = append(keys, s)
			}
		}
		sort.Strings(keys)
		for rank, s := range keys {
			index[s] = rank
		}
		for i := 0; i < n; i++ {
			buf = v.appendBaseSig(buf[:0], i)
			buf = append(buf, ";c"...)
			buf = appendPaddedInt(buf, index[next[i]], 6)
			compressed := string(buf)
			if compressed != sig[i] {
				changed = true
			}
			sig[i] = compressed
		}
		if !changed {
			break
		}
	}
	// Group by signature; the center is always its own first class.
	bySig := map[string][]int{}
	for i := 1; i < n; i++ {
		bySig[sig[i]] = append(bySig[sig[i]], i)
	}
	var sigs []string
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	classes := [][]int{{Center}}
	for _, s := range sigs {
		classes = append(classes, bySig[s])
	}
	return classes
}

// appendBaseSig appends node i's round-0 refinement signature
// ("d%03d;l%q;k%03d;i%06d" in the legacy fmt spelling).
func (v *View) appendBaseSig(b []byte, i int) []byte {
	b = append(b, 'd')
	b = appendPaddedInt(b, v.Dist[i], 3)
	b = append(b, ";l"...)
	b = strconv.AppendQuote(b, v.Labels[i])
	b = append(b, ";k"...)
	b = appendPaddedInt(b, v.Degree(i), 3)
	b = append(b, ";i"...)
	b = appendPaddedInt(b, v.IDs[i], 6)
	return b
}

// appendPaddedInt appends x zero-padded to the given width, matching
// fmt's %0<width>d (sign first, digits padded to the remaining width).
func appendPaddedInt(b []byte, x, width int) []byte {
	var tmp [20]byte
	if x < 0 {
		b = append(b, '-')
		x = -x
		width--
	}
	s := strconv.AppendInt(tmp[:0], int64(x), 10)
	for i := len(s); i < width; i++ {
		b = append(b, '0')
	}
	return append(b, s...)
}

// appendSerialize renders the view under the given node ordering into dst.
// order[k] is the local node placed at position k; pos is caller-provided
// scratch of length ≥ N. The output is byte-identical to the historical
// fmt-based serialization ("r%d#n%d#N%d" header, "|d%d;i%d;l%q" per node,
// "|e%d,%d:%d,%d" per visible edge in increasing position order).
func (v *View) appendSerialize(dst []byte, order []int, pos []int) []byte {
	n := v.N()
	if dst == nil {
		dst = make([]byte, 0, 24+20*n)
	}
	dst = append(dst, 'r')
	dst = strconv.AppendInt(dst, int64(v.Radius), 10)
	dst = append(dst, "#n"...)
	dst = strconv.AppendInt(dst, int64(n), 10)
	dst = append(dst, "#N"...)
	dst = strconv.AppendInt(dst, int64(v.NBound), 10)
	for _, i := range order {
		dst = append(dst, "|d"...)
		dst = strconv.AppendInt(dst, int64(v.Dist[i]), 10)
		dst = append(dst, ";i"...)
		dst = strconv.AppendInt(dst, int64(v.IDs[i]), 10)
		dst = append(dst, ";l"...)
		dst = strconv.AppendQuote(dst, v.Labels[i])
	}
	for k, i := range order {
		pos[i] = k
	}
	var nbArr [16]int
	nb := nbArr[:0]
	for ka := 0; ka < n; ka++ {
		a := order[ka]
		nb = nb[:0]
		for _, w := range v.Adj[a] {
			if kb := pos[w]; kb > ka {
				nb = append(nb, kb)
			}
		}
		insertionSortInts(nb)
		for _, kb := range nb {
			b := order[kb]
			dst = append(dst, "|e"...)
			dst = strconv.AppendInt(dst, int64(ka), 10)
			dst = append(dst, ',')
			dst = strconv.AppendInt(dst, int64(kb), 10)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, int64(v.Ports[[2]int{a, b}]), 10)
			dst = append(dst, ',')
			dst = strconv.AppendInt(dst, int64(v.Ports[[2]int{b, a}]), 10)
		}
	}
	return dst
}

// insertionSortInts sorts small int slices in place without the sort
// package's interface overhead; neighbor lists are tiny.
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
