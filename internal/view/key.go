package view

import (
	"fmt"
	"sort"
	"strings"
)

// Key returns a canonical string key: two views have the same key iff they
// are equal as views (same radius, same N bound, and isomorphic via a
// center-fixing, distance-preserving bijection that matches identifiers,
// labels, and ports).
//
// When identifiers are present and distinct they already determine the
// canonical node order; otherwise the key is the lexicographic minimum over
// all distance-class-respecting orderings (views are small, so the search is
// cheap).
func (v *View) Key() string {
	if order, ok := v.idOrder(); ok {
		return v.serialize(order)
	}
	return v.minKey()
}

// Equal reports whether two views are equal in the sense of Key.
func (v *View) Equal(w *View) bool {
	if v.N() != w.N() || v.Radius != w.Radius || v.NBound != w.NBound {
		return false
	}
	return v.Key() == w.Key()
}

// idOrder returns nodes sorted by (distance, identifier) if all identifiers
// are nonzero and distinct.
func (v *View) idOrder() ([]int, bool) {
	seen := make(map[int]bool, len(v.IDs))
	for _, id := range v.IDs {
		if id == 0 || seen[id] {
			return nil, false
		}
		seen[id] = true
	}
	order := make([]int, v.N())
	for i := range order {
		order[i] = i
	}
	dist, ids := v.Dist, v.IDs
	// Insertion sort by (dist, id); views are small.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if dist[a] < dist[b] || (dist[a] == dist[b] && ids[a] < ids[b]) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return order, true
}

// minKey computes the lexicographically smallest serialization over all
// orderings that respect the canonical class sequence (center first, then
// refined invariant classes in increasing order). Only nodes sharing an
// isomorphism-invariant signature may swap, which keeps the search tiny on
// realistic views while remaining canonical.
func (v *View) minKey() string {
	classes := v.refinedClasses()
	best := ""
	order := make([]int, 0, v.N())
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(classes) {
			s := v.serialize(order)
			if best == "" || s < best {
				best = s
			}
			return
		}
		permute(classes[ci], func(perm []int) {
			order = append(order, perm...)
			rec(ci + 1)
			order = order[:len(order)-len(perm)]
		})
	}
	rec(0)
	return best
}

// refinedClasses partitions local nodes into ordered classes by an
// iteratively refined isomorphism-invariant signature (distance, label,
// degree, sorted incident-edge descriptors over neighbor signatures — a
// Weisfeiler-Leman-style coloring). Permuting only within classes preserves
// canonicity because equal-signature nodes are interchangeable in any
// serialization-minimal ordering.
func (v *View) refinedClasses() [][]int {
	n := v.N()
	sig := make([]string, n)
	for i := 0; i < n; i++ {
		sig[i] = fmt.Sprintf("d%03d;l%q;k%03d;i%06d", v.Dist[i], v.Labels[i], v.Degree(i), v.IDs[i])
	}
	allDistinct := func() bool {
		seen := make(map[string]bool, n)
		for _, s := range sig {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	for round := 0; round < n && !allDistinct(); round++ {
		next := make([]string, n)
		changed := false
		for i := 0; i < n; i++ {
			arms := make([]string, 0, v.Degree(i))
			for _, w := range v.Adj[i] {
				arms = append(arms, fmt.Sprintf("%d>%d:%s", v.Ports[[2]int{i, w}], v.Ports[[2]int{w, i}], sig[w]))
			}
			sort.Strings(arms)
			next[i] = sig[i] + "|" + strings.Join(arms, ",")
		}
		// Compress to keep signatures short.
		index := map[string]int{}
		var keys []string
		for _, s := range next {
			if _, ok := index[s]; !ok {
				index[s] = 0
				keys = append(keys, s)
			}
		}
		sort.Strings(keys)
		for rank, s := range keys {
			index[s] = rank
		}
		for i := 0; i < n; i++ {
			compressed := fmt.Sprintf("d%03d;l%q;k%03d;i%06d;c%06d", v.Dist[i], v.Labels[i], v.Degree(i), v.IDs[i], index[next[i]])
			if compressed != sig[i] {
				changed = true
			}
			sig[i] = compressed
		}
		if !changed {
			break
		}
	}
	// Group by signature; the center is always its own first class.
	bySig := map[string][]int{}
	for i := 1; i < n; i++ {
		bySig[sig[i]] = append(bySig[sig[i]], i)
	}
	var sigs []string
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	classes := [][]int{{Center}}
	for _, s := range sigs {
		classes = append(classes, bySig[s])
	}
	return classes
}

func permute(items []int, fn func([]int)) {
	perm := append([]int(nil), items...)
	var rec func(i int)
	rec = func(i int) {
		if i == len(perm) {
			fn(perm)
			return
		}
		for j := i; j < len(perm); j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
}

// serialize renders the view under the given node ordering. order[k] is the
// local node placed at position k.
func (v *View) serialize(order []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d#n%d#N%d", v.Radius, v.N(), v.NBound)
	for _, i := range order {
		fmt.Fprintf(&b, "|d%d;i%d;l%q", v.Dist[i], v.IDs[i], v.Labels[i])
	}
	for ka := 0; ka < v.N(); ka++ {
		for kb := ka + 1; kb < v.N(); kb++ {
			a, b2 := order[ka], order[kb]
			pab, ok := v.Ports[[2]int{a, b2}]
			if !ok {
				continue
			}
			pba := v.Ports[[2]int{b2, a}]
			fmt.Fprintf(&b, "|e%d,%d:%d,%d", ka, kb, pab, pba)
		}
	}
	return b.String()
}
