//go:build !race

package view_test

import (
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Allocation pins for the steady-state extraction paths. The race detector
// instruments allocations, so these run only in plain builds.

// TestInstantiateIntoAllocs pins the scratch-view refill at zero
// allocations: after the first call sizes the label slice, sweeping
// labelings through one scratch view must not touch the heap.
func TestInstantiateIntoAllocs(t *testing.T) {
	g := graph.Grid(4, 4)
	pt := graph.DefaultPorts(g)
	labels := make([]string, g.N())
	for i := range labels {
		labels[i] = "x"
	}
	var ex view.Extractor
	tpl, err := ex.Template(g, pt, nil, g.N(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var scratch view.View
	tpl.InstantiateInto(&scratch, labels) // size the label slice once
	if n := testing.AllocsPerRun(100, func() {
		tpl.InstantiateInto(&scratch, labels)
	}); n != 0 {
		t.Errorf("InstantiateInto allocates %.1f objects per call in steady state, want 0", n)
	}
}

// TestCachedKeyAllocs pins cached canonical-key reads at zero allocations.
func TestCachedKeyAllocs(t *testing.T) {
	g := graph.MustCycle(8)
	pt := graph.DefaultPorts(g)
	labels := make([]string, g.N())
	mu := view.MustExtract(g, pt, nil, labels, g.N(), 0, 1)
	mu.Key()
	mu.BinKey()
	if n := testing.AllocsPerRun(100, func() {
		_ = mu.Key()
		_ = mu.BinKey()
	}); n != 0 {
		t.Errorf("cached Key+BinKey allocate %.1f objects per call, want 0", n)
	}
}
