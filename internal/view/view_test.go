package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hidinglcp/internal/graph"
)

func blankLabels(n int) []string { return make([]string, n) }

func extract(t *testing.T, g *graph.Graph, center, r int) *View {
	t.Helper()
	v, err := Extract(g, graph.DefaultPorts(g), graph.SequentialIDs(g.N()), blankLabels(g.N()), g.N(), center, r)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return v
}

func TestExtractRadiusZero(t *testing.T) {
	g := graph.Path(3)
	v := extract(t, g, 1, 0)
	if v.N() != 1 {
		t.Fatalf("radius-0 view has %d nodes, want 1", v.N())
	}
	if v.Dist[Center] != 0 {
		t.Errorf("center distance = %d, want 0", v.Dist[Center])
	}
}

func TestExtractRadiusOnePath(t *testing.T) {
	g := graph.Path(5)
	v := extract(t, g, 2, 1)
	if v.N() != 3 {
		t.Fatalf("view has %d nodes, want 3", v.N())
	}
	if v.Degree(Center) != 2 {
		t.Errorf("center degree = %d, want 2", v.Degree(Center))
	}
	// IDs: center is host node 2 (ID 3); neighbors are 1 and 3 (IDs 2, 4).
	if v.IDs[Center] != 3 {
		t.Errorf("center ID = %d, want 3", v.IDs[Center])
	}
}

func TestFrontierTruncation(t *testing.T) {
	// Triangle: radius-1 view of node 0 sees nodes 1, 2 but NOT the edge
	// between them (both at distance exactly 1).
	g := graph.MustCycle(3)
	v := extract(t, g, 0, 1)
	if v.N() != 3 {
		t.Fatalf("view has %d nodes, want 3", v.N())
	}
	if v.HasEdge(1, 2) {
		t.Error("frontier edge 1-2 visible in radius-1 view")
	}
	if !v.HasEdge(Center, 1) || !v.HasEdge(Center, 2) {
		t.Error("center edges missing")
	}
	// With radius 2 the whole triangle is visible.
	v2 := extract(t, g, 0, 2)
	if !v2.HasEdge(1, 2) {
		t.Error("edge 1-2 should be visible at radius 2")
	}
}

// Fig. 2 of the paper: in C4 viewed at radius 2 from a node, the edge
// between the two distance-2... actually in C4 at radius 2 all nodes are
// within distance 2; the far node is at distance 2 and its two incident
// edges connect distance-1 nodes to a distance-2 node, hence visible. Use C5
// at radius 2: the two far nodes are both at distance 2 and the edge between
// them is invisible (the paper's "edge between nodes 1 and 4" phenomenon).
func TestFig2HiddenEdge(t *testing.T) {
	g := graph.MustCycle(5)
	v := extract(t, g, 0, 2)
	if v.N() != 5 {
		t.Fatalf("view has %d nodes, want 5", v.N())
	}
	// Find the two local nodes at distance 2; their edge must be hidden.
	var far []int
	for i, d := range v.Dist {
		if d == 2 {
			far = append(far, i)
		}
	}
	if len(far) != 2 {
		t.Fatalf("found %d distance-2 nodes, want 2", len(far))
	}
	if v.HasEdge(far[0], far[1]) {
		t.Error("edge between the two distance-2 nodes should be invisible")
	}
	// Total visible edges: 4 of the 5 cycle edges.
	if got := len(v.Ports) / 2; got != 4 {
		t.Errorf("visible edges = %d, want 4", got)
	}
}

func TestExtractErrors(t *testing.T) {
	g := graph.Path(3)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(3)
	if _, err := Extract(g, pt, ids, blankLabels(3), 3, 9, 1); err == nil {
		t.Error("bad center accepted")
	}
	if _, err := Extract(g, pt, ids, blankLabels(2), 3, 0, 1); err == nil {
		t.Error("short labeling accepted")
	}
	if _, err := Extract(g, pt, graph.IDs{1, 2}, blankLabels(3), 3, 0, 1); err == nil {
		t.Error("short ID assignment accepted")
	}
	if _, err := Extract(g, pt, ids, blankLabels(3), 3, 0, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestPortsVisibleBothDirections(t *testing.T) {
	g := graph.Path(3)
	v := extract(t, g, 1, 1)
	for _, w := range v.Adj[Center] {
		if _, ok := v.Port(Center, w); !ok {
			t.Errorf("missing port (center,%d)", w)
		}
		if _, ok := v.Port(w, Center); !ok {
			t.Errorf("missing port (%d,center)", w)
		}
	}
}

func TestAnonymize(t *testing.T) {
	g := graph.Path(3)
	v := extract(t, g, 1, 1)
	if v.Anonymous() {
		t.Fatal("fresh view with IDs should not be anonymous")
	}
	a := v.Anonymize()
	if !a.Anonymous() {
		t.Fatal("anonymized view still has IDs")
	}
	if v.Anonymous() {
		t.Error("Anonymize mutated the original")
	}
	if a.N() != v.N() || a.Radius != v.Radius {
		t.Error("Anonymize changed structure")
	}
}

func TestLocalNodeWithID(t *testing.T) {
	g := graph.Path(5)
	v := extract(t, g, 2, 1)
	if got := v.LocalNodeWithID(3); got != Center {
		t.Errorf("LocalNodeWithID(3) = %d, want center", got)
	}
	if got := v.LocalNodeWithID(1); got != -1 {
		t.Errorf("LocalNodeWithID(1) = %d, want -1 (outside view)", got)
	}
	if got := v.Anonymize().LocalNodeWithID(0); got != -1 {
		t.Error("identifier 0 should never match")
	}
}

func TestKeyEqualSameViews(t *testing.T) {
	g := graph.MustCycle(6)
	// Under DefaultPorts, nodes 0 and 1 of C6 have identical port patterns
	// (center ports 1,2; both far-end ports 1), so their radius-1 views are
	// equal once anonymized, but differ while IDs are present.
	v0 := extract(t, g, 0, 1)
	v1 := extract(t, g, 1, 1)
	if v0.Key() == v1.Key() {
		t.Error("views with different IDs share a key")
	}
	if v0.Anonymize().Key() != v1.Anonymize().Key() {
		t.Error("anonymized symmetric views should share a key")
	}
	if !v0.Anonymize().Equal(v1.Anonymize()) {
		t.Error("Equal disagrees with Key")
	}
	// Node 5 sees far-end ports 2,2 — genuinely different even anonymized.
	v5 := extract(t, g, 5, 1)
	if v0.Anonymize().Key() == v5.Anonymize().Key() {
		t.Error("views with different far-end ports share a key")
	}
}

func TestKeyDistinguishesLabels(t *testing.T) {
	g := graph.Path(2)
	pt := graph.DefaultPorts(g)
	a := MustExtract(g, pt, nil, []string{"x", "y"}, 2, 0, 1)
	b := MustExtract(g, pt, nil, []string{"x", "z"}, 2, 0, 1)
	if a.Key() == b.Key() {
		t.Error("views with different labels share a key")
	}
}

func TestKeyDistinguishesPorts(t *testing.T) {
	// Path 0-1-2-3 viewed from node 1: flipping node 2's ports changes the
	// far-end port number that node 1 sees, which must change the key.
	// (Merely permuting the CENTER's own ports over identical arms does not
	// change the anonymous view, and must not change the key.)
	g := graph.Path(4)
	ptA := graph.DefaultPorts(g)
	ptB, err := graph.PortsFromPerm(g, [][]int{{0}, {0, 1}, {1, 0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	a := MustExtract(g, ptA, nil, blankLabels(4), 4, 1, 1)
	b := MustExtract(g, ptB, nil, blankLabels(4), 4, 1, 1)
	if a.Key() == b.Key() {
		t.Error("views with different far-end ports share a key")
	}

	// Sanity: swapping which neighbor is behind the center's port 1 leaves
	// the anonymous view unchanged when the arms are otherwise identical.
	g2 := graph.Path(3)
	ptC, err := graph.PortsFromPerm(g2, [][]int{{0}, {1, 0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	c := MustExtract(g2, graph.DefaultPorts(g2), nil, blankLabels(3), 3, 1, 1)
	d := MustExtract(g2, ptC, nil, blankLabels(3), 3, 1, 1)
	if c.Key() != d.Key() {
		t.Error("center port relabeling over identical arms changed the anonymous key")
	}
}

func TestKeyDistinguishesNBound(t *testing.T) {
	g := graph.Path(2)
	pt := graph.DefaultPorts(g)
	a := MustExtract(g, pt, nil, blankLabels(2), 2, 0, 1)
	b := MustExtract(g, pt, nil, blankLabels(2), 99, 0, 1)
	if a.Key() == b.Key() {
		t.Error("views with different N bounds share a key")
	}
}

func TestAnonymousKeyCanonicalUnderRelabeling(t *testing.T) {
	// The same star, with host nodes named differently, must give identical
	// anonymized keys when ports agree.
	gA := graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	gB := graph.MustFromEdges(4, [][2]int{{3, 0}, {3, 1}, {3, 2}})
	a := MustExtract(gA, graph.DefaultPorts(gA), nil, blankLabels(4), 4, 0, 1)
	b := MustExtract(gB, graph.DefaultPorts(gB), nil, blankLabels(4), 4, 3, 1)
	if a.Key() != b.Key() {
		t.Errorf("relabeled stars have different keys:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestRadius1Key(t *testing.T) {
	g := graph.Path(5)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(5)
	full := MustExtract(g, pt, ids, blankLabels(5), 5, 2, 2)
	// The radius-1 subview of the center inside the radius-2 view equals the
	// radius-1 key of a radius-1 extraction at the same node.
	direct := MustExtract(g, pt, ids, blankLabels(5), 5, 2, 1)
	if full.Radius1Key(Center) != direct.Radius1Key(Center) {
		t.Error("radius-1 subview disagrees with direct radius-1 extraction")
	}
}

func TestCompatibleBasic(t *testing.T) {
	// Host: path 0-1-2-3-4 with r=2. view(1) contains node 2 (ID 3) at
	// distance 1 < r; view(2) is centered at that node. Node 2-in-view(1)
	// must be compatible with view(2).
	g := graph.Path(5)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(5)
	mu1 := MustExtract(g, pt, ids, blankLabels(5), 5, 1, 2)
	mu2 := MustExtract(g, pt, ids, blankLabels(5), 5, 2, 2)
	u := mu1.LocalNodeWithID(ids[2])
	if u < 0 {
		t.Fatal("node 2 not in view(1)")
	}
	if !Compatible(mu1, u, mu2) {
		t.Error("same-instance views should be compatible")
	}
}

func TestCompatibleRejectsIDMismatch(t *testing.T) {
	g := graph.Path(5)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(5)
	mu1 := MustExtract(g, pt, ids, blankLabels(5), 5, 1, 2)
	mu2 := MustExtract(g, pt, ids, blankLabels(5), 5, 3, 2)
	u := mu1.LocalNodeWithID(ids[2])
	if Compatible(mu1, u, mu2) {
		t.Error("compatibility with wrong center ID accepted")
	}
	if Compatible(mu1, -1, mu2) || Compatible(mu1, 99, mu2) {
		t.Error("out-of-range node accepted")
	}
}

func TestCompatibleRejectsConflictingLabels(t *testing.T) {
	// Same path, same IDs, but node 1's label differs between the two
	// instances; node 1 is at distance < r in both views, so they conflict.
	g := graph.Path(5)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(5)
	lab1 := []string{"a", "b", "c", "d", "e"}
	lab2 := []string{"a", "X", "c", "d", "e"}
	mu1 := MustExtract(g, pt, ids, lab1, 5, 1, 2)
	mu2 := MustExtract(g, pt, ids, lab2, 5, 2, 2)
	u := mu1.LocalNodeWithID(ids[2])
	if Compatible(mu1, u, mu2) {
		t.Error("views with conflicting labels on a shared near node accepted")
	}
}

func TestCompatibleAllowsFarDifferences(t *testing.T) {
	// Fig. 7: nodes at distance >= r may differ arbitrarily. Take two hosts
	// that agree on the 1-ball around the shared region but differ beyond.
	g1 := graph.Path(5)                                                            // 0-1-2-3-4
	g2 := graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}) // longer path
	ids1 := graph.IDs{1, 2, 3, 4, 5}
	ids2 := graph.IDs{1, 2, 3, 4, 5, 6}
	pt1 := graph.DefaultPorts(g1)
	pt2 := graph.DefaultPorts(g2)
	mu1 := MustExtract(g1, pt1, ids1, blankLabels(5), 9, 1, 2)
	mu2 := MustExtract(g2, pt2, ids2, blankLabels(6), 9, 2, 2)
	u := mu1.LocalNodeWithID(3) // host node 2 in g1, center of mu2
	if u < 0 {
		t.Fatal("ID 3 not found in mu1")
	}
	if !Compatible(mu1, u, mu2) {
		t.Error("views differing only far from the shared region should be compatible")
	}
}

func TestCompatibleAnonymousFails(t *testing.T) {
	g := graph.Path(3)
	pt := graph.DefaultPorts(g)
	mu1 := MustExtract(g, pt, nil, blankLabels(3), 3, 0, 1)
	mu2 := MustExtract(g, pt, nil, blankLabels(3), 3, 1, 1)
	if Compatible(mu1, 1, mu2) {
		t.Error("anonymous views must not be compatible (IDs are 0)")
	}
}

// Property: a view's key is stable under re-extraction.
func TestKeyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNP(7, 0.4, rng)
		pt := graph.DefaultPorts(g)
		ids := graph.SequentialIDs(g.N())
		c := rng.Intn(g.N())
		r := rng.Intn(3)
		a := MustExtract(g, pt, ids, blankLabels(g.N()), g.N(), c, r)
		b := MustExtract(g, pt, ids, blankLabels(g.N()), g.N(), c, r)
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every node of a radius-r view is within distance r, and Dist is
// consistent with local adjacency (edges change distance by at most 1).
func TestViewDistanceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNP(8, 0.3, rng)
		pt := graph.DefaultPorts(g)
		c := rng.Intn(g.N())
		r := 1 + rng.Intn(2)
		v := MustExtract(g, pt, nil, blankLabels(g.N()), g.N(), c, r)
		for i, d := range v.Dist {
			if d < 0 || d > r {
				return false
			}
			for _, j := range v.Adj[i] {
				diff := v.Dist[j] - d
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return v.Dist[Center] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: no frontier-frontier edges survive extraction.
func TestNoFrontierEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNP(8, 0.35, rng)
		pt := graph.DefaultPorts(g)
		c := rng.Intn(g.N())
		r := 1 + rng.Intn(2)
		v := MustExtract(g, pt, nil, blankLabels(g.N()), g.N(), c, r)
		for i := 0; i < v.N(); i++ {
			for _, j := range v.Adj[i] {
				if v.Dist[i] == r && v.Dist[j] == r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompatibleRejectsPortMismatch(t *testing.T) {
	// Same path and IDs but node 1's port assignment differs: node 1 sits
	// at distance < r in both radius-2 views, so its radius-1 views (which
	// include ports) must match; they don't.
	g := graph.Path(5)
	ids := graph.SequentialIDs(5)
	ptA := graph.DefaultPorts(g)
	ptB, err := graph.PortsFromPerm(g, [][]int{{0}, {1, 0}, {0, 1}, {0, 1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	labels := blankLabels(5)
	mu1 := MustExtract(g, ptA, ids, labels, 5, 1, 2)
	mu2 := MustExtract(g, ptB, ids, labels, 5, 2, 2)
	u := mu1.LocalNodeWithID(ids[2])
	if Compatible(mu1, u, mu2) {
		t.Error("views with conflicting ports on a shared near node accepted")
	}
}

func TestCompatibleFrontierUnconstrained(t *testing.T) {
	// A node at distance exactly r in BOTH views is unconstrained: its
	// radius-1 views may differ arbitrarily.
	g1 := graph.Path(5) // 0-1-2-3-4
	g2 := graph.Star(4) // 0 with leaves 1..3
	ids1 := graph.IDs{1, 2, 3, 4, 5}
	ids2 := graph.IDs{2, 3, 7, 8} // node with ID 3 is a LEAF here
	mu1 := MustExtract(g1, graph.DefaultPorts(g1), ids1, blankLabels(5), 9, 1, 1)
	// mu1 is centered at ID 2 and contains ID 3 at distance 1 = r; in the
	// star host, ID 3 is a leaf in a completely different environment.
	// Because the occurrence in mu1 sits on the frontier, only the center
	// identifiers constrain compatibility, and the ID-3 node of mu1 is
	// compatible with a star view centered at ID 3.
	u := mu1.LocalNodeWithID(3)
	mu3 := MustExtract(g2, graph.DefaultPorts(g2), ids2, blankLabels(4), 9, 1, 1)
	if mu3.IDs[Center] != 3 {
		t.Fatalf("expected center ID 3, got %d", mu3.IDs[Center])
	}
	if !Compatible(mu1, u, mu3) {
		t.Error("frontier node should be compatible with any matching-ID center")
	}
}

func TestRadius1KeyOrdersByPort(t *testing.T) {
	// Two stars whose arms differ only in which PORT leads to which label
	// must have different radius-1 keys.
	g := graph.Star(3)
	pt := graph.DefaultPorts(g)
	a := MustExtract(g, pt, nil, []string{"c", "x", "y"}, 3, 0, 1)
	b := MustExtract(g, pt, nil, []string{"c", "y", "x"}, 3, 0, 1)
	if a.Radius1Key(Center) == b.Radius1Key(Center) {
		t.Error("port-to-label association lost in Radius1Key")
	}
}
