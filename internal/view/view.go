// Package view implements the radius-r views of Section 2.2 of the paper:
// the structure a node of the distributed verifier sees after r rounds of
// communication. A view comprises the graph G_v^r (full structure up to r-1
// hops; no edges between two nodes both at distance exactly r), together with
// the restrictions of the port assignment, the identifier assignment, and the
// label (certificate) assignment to N^r(v).
//
// Views support canonical serialization (for hashing into the accepting
// neighborhood graph of Section 3), anonymization, radius-1 subviews, and the
// node-in-view compatibility relation of Section 5.1.
package view

import (
	"fmt"
	"sync"

	"hidinglcp/internal/graph"
)

// View is the radius-r view of a single node. Local nodes are numbered
// 0..N-1 with the center always local node 0 and nodes sorted by
// (distance from center, host-graph index) at extraction time.
//
// Views are immutable after extraction.
type View struct {
	// Radius is the r of view_r.
	Radius int
	// Adj is the local adjacency structure of G_v^r (sorted neighbor lists).
	Adj [][]int
	// Dist[i] is the distance of local node i from the center.
	Dist []int
	// Ports maps the ordered local pair (i, j) of a visible edge to
	// prt(i, {i,j}). Both orientations are present for every visible edge.
	Ports map[[2]int]int
	// IDs[i] is the identifier of local node i, or 0 everywhere if the view
	// has been anonymized.
	IDs []int
	// Labels[i] is the certificate of local node i (an opaque string; the
	// per-scheme encodings measure their own bit sizes).
	Labels []string
	// NBound is the common upper bound N = poly(n) on identifiers that is
	// part of every node's input (Section 2.2).
	NBound int

	// cacheMu guards the lazily computed canonical-key caches below. Views
	// are immutable after extraction, so the caches are write-once; clones
	// start with empty caches and never share them with the original.
	cacheMu   sync.Mutex
	cachedKey string
	cachedBin []byte
}

// Center is the local index of the view's center node; always 0.
const Center = 0

// N returns the number of nodes in the view.
func (v *View) N() int { return len(v.Adj) }

// Degree returns the local degree of node i.
func (v *View) Degree(i int) int { return len(v.Adj[i]) }

// HasEdge reports whether local nodes i and j are adjacent in the view.
func (v *View) HasEdge(i, j int) bool {
	for _, w := range v.Adj[i] {
		if w == j {
			return true
		}
	}
	return false
}

// Port returns the port number prt(i, {i,j}) of the visible edge (i, j) and
// whether the edge is visible.
func (v *View) Port(i, j int) (int, bool) {
	p, ok := v.Ports[[2]int{i, j}]
	return p, ok
}

// Anonymous reports whether the view carries no identifiers.
func (v *View) Anonymous() bool {
	for _, id := range v.IDs {
		if id != 0 {
			return false
		}
	}
	return true
}

// Anonymize returns a view with all identifiers erased (set to 0): a copy
// when v carries identifiers, and v itself when it is already anonymous
// (views are immutable, so the shared value is safe). Anonymous decoders and
// the anonymous hiding property work on anonymized views.
func (v *View) Anonymize() *View {
	if v.Anonymous() {
		return v
	}
	c := v.clone()
	for i := range c.IDs {
		c.IDs[i] = 0
	}
	return c
}

// Clone returns a deep copy of v sharing no mutable state with the
// original. The runtime decoder sanitizer (internal/sanitize) uses it to
// snapshot views before and after Decide calls; views are contractually
// immutable, so regular callers never need it.
func (v *View) Clone() *View { return v.clone() }

func (v *View) clone() *View {
	c := &View{
		Radius: v.Radius,
		Adj:    make([][]int, len(v.Adj)),
		Dist:   append([]int(nil), v.Dist...),
		Ports:  make(map[[2]int]int, len(v.Ports)),
		IDs:    append([]int(nil), v.IDs...),
		Labels: append([]string(nil), v.Labels...),
		NBound: v.NBound,
	}
	for i := range v.Adj {
		c.Adj[i] = append([]int(nil), v.Adj[i]...)
	}
	for k, p := range v.Ports {
		c.Ports[k] = p
	}
	return c
}

// LocalNodeWithID returns the local index of the node carrying identifier
// id, or -1 if absent. Identifier 0 (anonymized) never matches.
func (v *View) LocalNodeWithID(id int) int {
	if id == 0 {
		return -1
	}
	for i, x := range v.IDs {
		if x == id {
			return i
		}
	}
	return -1
}

// Extract computes view_r(G, prt, Id, I)(center) per Section 2.2. labels has
// one certificate string per node of g; ids may be nil for an anonymous
// instance. nBound is the identifier bound N known to all nodes (pass
// g.N() when irrelevant).
//
// The view's node set is N^r(center); edges between two nodes both at
// distance exactly r are invisible and omitted, as are their ports.
func Extract(g *graph.Graph, pt *graph.Ports, ids graph.IDs, labels []string, nBound, center, r int) (*View, error) {
	var ex Extractor
	return ex.Extract(g, pt, ids, labels, nBound, center, r)
}

// MustExtract is Extract but panics on error; for inputs valid by
// construction.
func MustExtract(g *graph.Graph, pt *graph.Ports, ids graph.IDs, labels []string, nBound, center, r int) *View {
	v, err := Extract(g, pt, ids, labels, nBound, center, r)
	if err != nil {
		panic(fmt.Sprintf("view.MustExtract: %v", err))
	}
	return v
}

// String renders a debug representation. The canonical key appears only as
// KeyDigest's redacted fingerprint: views carry certificate bytes in their
// labels, String output flows into error messages and logs (e.g. the
// sanitizer's violation reports), and the hiding contract forbids label
// bytes in anything an observer can read. Lengths and digests only.
func (v *View) String() string {
	return fmt.Sprintf("View(r=%d, n=%d, key=%s)", v.Radius, v.N(), v.KeyDigest())
}

// KeyDigest returns a redacted fingerprint of the canonical key — its byte
// length and a 32-bit FNV-1a digest — sufficient to tell two view classes
// apart in diagnostics without revealing the label bytes the key embeds.
// It is one of the sanctioned sanitizers of the certflow taint analyzer.
func (v *View) KeyDigest() string {
	k := v.Key()
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint32(k[i])) * 16777619
	}
	return fmt.Sprintf("fnv32a:%08x#%d", h, len(k))
}
