package view

import "hidinglcp/internal/mem"

// Arena is slab storage for views whose lifetime is tied to one build: the
// nbhd builders instantiate candidate views from an arena because the
// interner may retain any of them as a class representative, so individual
// reclamation is impossible — but the whole arena dies with the build. Per
// the internal/mem escape rules, pointers into the arena are safe to hand
// out (they stay valid as long as the arena is reachable); an Arena is not
// safe for concurrent use.
type Arena struct {
	views  mem.Slab[View]
	labels mem.SliceSlab[string]
}

// NewView returns a zero View allocated from the arena.
func (a *Arena) NewView() *View { return a.views.Alloc() }

// Labels returns an uninitialized label slice of length n from the arena.
func (a *Arena) Labels(n int) []string { return a.labels.Make(n) }

// Len returns the number of views allocated from the arena.
func (a *Arena) Len() int { return a.views.Len() }

// InstantiateIn is Instantiate with the View and its label slice allocated
// from the arena: the steady-state cost is two bump-pointer increments
// instead of two heap objects. The returned view is immutable and shares
// the template's label-independent structures, exactly like Instantiate.
func (t *Template) InstantiateIn(a *Arena, labels []string) *View {
	ls := a.Labels(len(t.hosts))
	for i, w := range t.hosts {
		ls[i] = labels[w]
	}
	v := a.NewView()
	v.Radius = t.radius
	v.Adj = t.adj
	v.Dist = t.dist
	v.Ports = t.ports
	v.IDs = t.ids
	v.Labels = ls
	v.NBound = t.nBound
	return v
}

// InstantiateInto refills dst with the view for one labeling of the host
// graph, reusing dst's label-slice capacity and resetting the cached
// canonical keys. It exists for the decide-and-discard sweeps (strong
// soundness search), where the view never outlives the decoder call: the
// result is dst itself, valid only until the next InstantiateInto on the
// same dst, and must not be retained, interned, or published to another
// goroutine. dst must be a scratch view owned by the caller.
func (t *Template) InstantiateInto(dst *View, labels []string) *View {
	n := len(t.hosts)
	ls := dst.Labels
	if cap(ls) < n {
		ls = make([]string, n)
	}
	ls = ls[:n]
	for i, w := range t.hosts {
		ls[i] = labels[w]
	}
	dst.Radius = t.radius
	dst.Adj = t.adj
	dst.Dist = t.dist
	dst.Ports = t.ports
	dst.IDs = t.ids
	dst.Labels = ls
	dst.NBound = t.nBound
	dst.cachedKey = ""
	dst.cachedBin = nil
	return dst
}
