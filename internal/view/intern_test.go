package view_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// sampleViews builds a varied pool of views (grids, cycles, stars; with and
// without identifiers) for extractor and interner tests.
func sampleViews(t testing.TB) []*view.View {
	t.Helper()
	var out []*view.View
	hosts := []*graph.Graph{
		graph.Grid(3, 3),
		graph.MustCycle(6),
		graph.Complete(4),
		graph.Spider([]int{2, 2, 2}),
	}
	for gi, g := range hosts {
		pt := graph.DefaultPorts(g)
		ids := graph.SequentialIDs(g.N())
		labels := make([]string, g.N())
		for i := range labels {
			labels[i] = fmt.Sprintf("g%d-%d", gi, i%3)
		}
		for r := 0; r <= 2; r++ {
			for v := 0; v < g.N(); v++ {
				out = append(out, view.MustExtract(g, pt, ids, labels, g.N(), v, r))
				out = append(out, view.MustExtract(g, pt, nil, labels, g.N(), v, r))
			}
		}
	}
	return out
}

// TestExtractorReuseDoesNotCorrupt interleaves extractions from different
// host graphs and radii through ONE Extractor and checks every produced view
// against a fresh per-call extraction.
func TestExtractorReuseDoesNotCorrupt(t *testing.T) {
	type job struct {
		g      *graph.Graph
		pt     *graph.Ports
		ids    graph.IDs
		labels []string
		v, r   int
	}
	var jobs []job
	for _, g := range []*graph.Graph{graph.Grid(4, 4), graph.MustCycle(5), graph.Complete(3)} {
		pt := graph.DefaultPorts(g)
		ids := graph.SequentialIDs(g.N())
		labels := make([]string, g.N())
		for i := range labels {
			labels[i] = fmt.Sprintf("x%d", i%2)
		}
		for r := 0; r <= 2; r++ {
			for v := 0; v < g.N(); v++ {
				jobs = append(jobs, job{g, pt, ids, labels, v, r})
			}
		}
	}
	ex := view.NewExtractor()
	// Two passes in opposite orders: scratch state from any job must not
	// leak into any other.
	for pass := 0; pass < 2; pass++ {
		for i := range jobs {
			j := jobs[i]
			if pass == 1 {
				j = jobs[len(jobs)-1-i]
			}
			got, err := ex.Extract(j.g, j.pt, j.ids, j.labels, j.g.N(), j.v, j.r)
			if err != nil {
				t.Fatal(err)
			}
			want := view.MustExtract(j.g, j.pt, j.ids, j.labels, j.g.N(), j.v, j.r)
			if got.Key() != want.Key() || !bytes.Equal(got.BinKey(), want.BinKey()) {
				t.Fatalf("reused extractor diverges at job %+v", j)
			}
			if !reflect.DeepEqual(got.Adj, want.Adj) || !reflect.DeepEqual(got.Dist, want.Dist) ||
				!reflect.DeepEqual(got.Ports, want.Ports) || !reflect.DeepEqual(got.IDs, want.IDs) ||
				!reflect.DeepEqual(got.Labels, want.Labels) || got.NBound != want.NBound || got.Radius != want.Radius {
				t.Fatalf("reused extractor produced different view structure at job %+v", j)
			}
		}
	}
}

// TestTemplateInstantiateIsolation checks that views instantiated from one
// template share structure but never labels: relabeling the host between
// instantiations must not disturb earlier views.
func TestTemplateInstantiateIsolation(t *testing.T) {
	g := graph.MustCycle(5)
	pt := graph.DefaultPorts(g)
	ex := view.NewExtractor()
	tpl, err := ex.Template(g, pt, nil, g.N(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"a", "b", "c", "d", "e"}
	v1 := tpl.Instantiate(labels)
	k1 := v1.Key()
	labels[1] = "CHANGED"
	v2 := tpl.Instantiate(labels)
	if v1.Labels[1] == "CHANGED" {
		t.Fatal("instantiated view aliases the caller's label slice")
	}
	if v1.Key() != k1 {
		t.Fatal("earlier instantiation changed after relabeling")
	}
	if v2.Key() == k1 {
		t.Fatal("new labeling did not reach the new view")
	}
	// Shared structure is intentional.
	if &v1.Adj[0] != &v2.Adj[0] {
		t.Fatal("template instantiations should share adjacency")
	}
}

// TestInternerConcurrent interns overlapping batches of views from many
// goroutines and checks that equal views always receive equal handles, that
// handles are dense, and that every handle resolves to a representative of
// its class.
func TestInternerConcurrent(t *testing.T) {
	pool := sampleViews(t)
	in := view.NewInterner()
	const workers = 8
	results := make([]map[string]view.Handle, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make(map[string]view.Handle)
			for i := range pool {
				// Vary the order per worker; clone so each goroutine interns
				// a distinct *View of the same class.
				mu := pool[(i*7+w*13)%len(pool)].Clone()
				got[string(mu.BinKey())] = in.Intern(mu)
			}
			results[w] = got
		}()
	}
	wg.Wait()

	distinct := make(map[string]bool)
	for _, mu := range pool {
		distinct[string(mu.BinKey())] = true
	}
	if in.Len() != len(distinct) {
		t.Fatalf("interner holds %d classes, want %d", in.Len(), len(distinct))
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(results[0], results[w]) {
			t.Fatalf("worker %d saw different handles than worker 0", w)
		}
	}
	for key, h := range results[0] {
		if int(h) >= in.Len() {
			t.Fatalf("handle %d out of range %d", h, in.Len())
		}
		rep := in.ViewOf(h)
		if string(rep.BinKey()) != key {
			t.Fatalf("ViewOf(%d) is not a representative of its class", h)
		}
		if got, ok := in.Lookup(rep); !ok || got != h {
			t.Fatalf("Lookup disagrees with Intern for handle %d", h)
		}
	}
}
