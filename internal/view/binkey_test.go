package view_test

import (
	"bytes"
	"fmt"
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// partitionChecker verifies, view by view, that the legacy string key and
// the binary key induce exactly the same equivalence classes: each legacy
// key maps to one binary key and vice versa, and Equal agrees with both.
type partitionChecker struct {
	t     *testing.T
	byKey map[string]string // legacy key -> binary key
	byBin map[string]string // binary key -> legacy key
	rep   map[string]*view.View
	other *view.View
}

func newPartitionChecker(t *testing.T) *partitionChecker {
	return &partitionChecker{
		t:     t,
		byKey: map[string]string{},
		byBin: map[string]string{},
		rep:   map[string]*view.View{},
	}
}

func (pc *partitionChecker) add(mu *view.View) {
	pc.t.Helper()
	k := mu.Key()
	b := string(mu.BinKey())
	if prev, ok := pc.byKey[k]; ok && prev != b {
		pc.t.Fatalf("legacy key maps to two binary keys:\nkey %q\nbin %x\nbin %x", k, prev, b)
	}
	pc.byKey[k] = b
	if prev, ok := pc.byBin[b]; ok && prev != k {
		pc.t.Fatalf("binary key maps to two legacy keys:\nbin %x\nkey %q\nkey %q", b, prev, k)
	}
	pc.byBin[b] = k
	if rep, ok := pc.rep[b]; ok {
		if !rep.Equal(mu) {
			pc.t.Fatalf("Equal is false inside one key class %q", k)
		}
	} else {
		pc.rep[b] = mu
	}
	if pc.other != nil && string(pc.other.BinKey()) != b {
		if pc.other.Equal(mu) {
			pc.t.Fatalf("Equal is true across distinct key classes %q vs %q", pc.other.Key(), k)
		}
	}
	pc.other = mu
}

func (pc *partitionChecker) classes() int { return len(pc.byBin) }

// TestBinKeyPartitionConnectedGraphs sweeps every connected graph on up to
// 4 nodes under every 2-letter labeling, with sequential identifiers and
// anonymously, at radii 1 and 2, and checks that binary and legacy keys
// partition the views identically.
func TestBinKeyPartitionConnectedGraphs(t *testing.T) {
	pc := newPartitionChecker(t)
	alphabet := []string{"a", "b"}
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			gg := g.Clone()
			pt := graph.DefaultPorts(gg)
			ids := graph.SequentialIDs(n)
			graph.EnumLabelings(n, len(alphabet), func(idx []int) bool {
				labels := make([]string, n)
				for v, a := range idx {
					labels[v] = alphabet[a]
				}
				for r := 1; r <= 2; r++ {
					for v := 0; v < n; v++ {
						pc.add(view.MustExtract(gg, pt, ids, labels, n, v, r))
						pc.add(view.MustExtract(gg, pt, nil, labels, n, v, r))
					}
				}
				return true
			})
			return true
		})
	}
	if pc.classes() < 50 {
		t.Fatalf("suspiciously few classes: %d", pc.classes())
	}
}

// TestBinKeyPartitionPortsAndDuplicateIDs varies the parts the connected
// sweep keeps fixed: every port assignment of C4, duplicated and zero-mixed
// identifier assignments, and two NBound values.
func TestBinKeyPartitionPortsAndDuplicateIDs(t *testing.T) {
	pc := newPartitionChecker(t)
	g := graph.MustCycle(4)
	labels := []string{"x", "y", "x", "z"}
	graph.EnumPorts(g, func(pt *graph.Ports) bool {
		for v := 0; v < g.N(); v++ {
			pc.add(view.MustExtract(g, pt, nil, labels, g.N(), v, 1))
		}
		return true
	})
	pt := graph.DefaultPorts(g)
	idCases := []graph.IDs{
		{7, 7, 3, 5}, // duplicate nonzero: disables the idOrder fast path
		{0, 1, 2, 3}, // zero mixed in
		{9, 8, 7, 6}, // descending
		{1, 2, 3, 4}, // ascending
	}
	for _, ids := range idCases {
		for nb := 4; nb <= 5; nb++ {
			for r := 1; r <= 2; r++ {
				for v := 0; v < g.N(); v++ {
					pc.add(view.MustExtract(g, pt, ids, labels, nb, v, r))
				}
			}
		}
	}
}

// TestBinKeyCanonicalUnderRelabeling checks canonicity directly: the same
// anonymous structure presented under permuted host-node numbering must
// produce identical binary keys (the property the min-search guarantees).
func TestBinKeyCanonicalUnderRelabeling(t *testing.T) {
	// C5 labeled twice with rotated node numbering.
	a := graph.MustCycle(5)
	labels := []string{"p", "q", "p", "q", "r"}
	muA := view.MustExtract(a, graph.DefaultPorts(a), nil, labels, 5, 0, 2)

	b := graph.New(5)
	// Same cycle with nodes renumbered v -> (v+2) mod 5.
	perm := func(v int) int { return (v + 2) % 5 }
	for v := 0; v < 5; v++ {
		w := (v + 1) % 5
		if !b.HasEdge(perm(v), perm(w)) {
			if err := b.AddEdge(perm(v), perm(w)); err != nil {
				t.Fatal(err)
			}
		}
	}
	labelsB := make([]string, 5)
	for v := 0; v < 5; v++ {
		labelsB[perm(v)] = labels[v]
	}
	muB := view.MustExtract(b, graph.DefaultPorts(b), nil, labelsB, 5, perm(0), 2)

	// Ports may differ between the two presentations (DefaultPorts follows
	// adjacency order), so only structural equality up to ports is forced;
	// with ports equalized via EnumPorts, some assignment must match.
	found := false
	graph.EnumPorts(b, func(pt *graph.Ports) bool {
		mu := view.MustExtract(b, pt, nil, labelsB, 5, perm(0), 2)
		if bytes.Equal(mu.BinKey(), muA.BinKey()) {
			if mu.Key() != muA.Key() {
				t.Fatal("binary keys match but legacy keys differ")
			}
			found = true
			return false
		}
		if mu.Key() == muA.Key() {
			t.Fatal("legacy keys match but binary keys differ")
		}
		return true
	})
	if !found {
		t.Fatal("no port assignment reproduces the rotated view")
	}
	_ = muB
}

// TestKeyCacheCloneSafety is the satellite mutation test: keys are cached on
// first computation, and the cache must never leak into clones or
// anonymized copies, nor go stale on the original.
func TestKeyCacheCloneSafety(t *testing.T) {
	g := graph.Grid(3, 3)
	pt := graph.DefaultPorts(g)
	ids := graph.SequentialIDs(g.N())
	labels := make([]string, g.N())
	for i := range labels {
		labels[i] = fmt.Sprintf("l%d", i%3)
	}
	mu := view.MustExtract(g, pt, ids, labels, g.N(), 4, 2)

	k1 := mu.Key()
	b1 := append([]byte(nil), mu.BinKey()...)
	if mu.Key() != k1 || !bytes.Equal(mu.BinKey(), b1) {
		t.Fatal("cached keys are not stable")
	}

	// A clone mutated before keying must compute its own keys...
	c := mu.Clone()
	c.Labels[0] = "mutated"
	if c.Key() == k1 {
		t.Fatal("legacy key cache leaked into a mutated clone")
	}
	if bytes.Equal(c.BinKey(), b1) {
		t.Fatal("binary key cache leaked into a mutated clone")
	}
	// ...and the original's cache must survive the clone's life unchanged.
	if mu.Key() != k1 || !bytes.Equal(mu.BinKey(), b1) {
		t.Fatal("original keys changed after mutating a clone")
	}

	// An unmutated clone agrees with the original without sharing the cache.
	c2 := mu.Clone()
	if c2.Key() != k1 || !bytes.Equal(c2.BinKey(), b1) {
		t.Fatal("unmutated clone disagrees with original")
	}

	// Anonymize drops identifiers, so its keys must differ from the cached
	// identified ones, and the original cache must again be untouched.
	a := mu.Anonymize()
	if a.Key() == k1 || bytes.Equal(a.BinKey(), b1) {
		t.Fatal("anonymized view reused the identified key cache")
	}
	if mu.Key() != k1 {
		t.Fatal("original key changed after Anonymize")
	}

	// An already-anonymous view returns itself from Anonymize; the shared
	// cache is then genuinely the same view's cache, which is sound.
	if a.Anonymize() != a {
		t.Fatal("anonymous view should Anonymize to itself")
	}
}

// TestIDOrderSortCutoff exercises both sides of the idOrder crossover (the
// insertion sort below the cutoff, sort.Slice above): keys must stay
// canonical under host renumbering at both sizes.
func TestIDOrderSortCutoff(t *testing.T) {
	for _, leaves := range []int{8, 40} {
		star := func(order []int) (*graph.Graph, graph.IDs, []string, int) {
			g := graph.New(leaves + 1)
			for _, v := range order {
				if err := g.AddEdge(0, v); err != nil {
					t.Fatal(err)
				}
			}
			ids := make(graph.IDs, leaves+1)
			labels := make([]string, leaves+1)
			ids[0] = 1000
			labels[0] = "c"
			for v := 1; v <= leaves; v++ {
				ids[v] = 2000 + v
				labels[v] = fmt.Sprintf("leaf%d", v%5)
			}
			return g, ids, labels, leaves + 1
		}
		asc := make([]int, leaves)
		desc := make([]int, leaves)
		for i := 0; i < leaves; i++ {
			asc[i] = i + 1
			desc[i] = leaves - i
		}
		gA, idsA, labelsA, n := star(asc)
		gD, idsD, labelsD, _ := star(desc)
		muA := view.MustExtract(gA, graph.DefaultPorts(gA), idsA, labelsA, n, 0, 1)
		muD := view.MustExtract(gD, graph.DefaultPorts(gD), idsD, labelsD, n, 0, 1)
		// Edge insertion order changed the port assignment; star ports from
		// the center are the adjacency positions, so DefaultPorts gives the
		// ascending star port p to neighbor with id 2000+p+1 and the
		// descending star port p to id 2000+leaves-p. Those are genuinely
		// different views; equality must hold only after aligning ports.
		ptAligned := graph.DefaultPorts(gA)
		muAligned := view.MustExtract(gA, ptAligned, idsA, labelsA, n, 0, 1)
		if muAligned.Key() != muA.Key() || !bytes.Equal(muAligned.BinKey(), muA.BinKey()) {
			t.Fatalf("leaves=%d: identical extraction disagrees with itself", leaves)
		}
		if (muA.Key() == muD.Key()) != bytes.Equal(muA.BinKey(), muD.BinKey()) {
			t.Fatalf("leaves=%d: legacy and binary keys disagree on the port-permuted pair", leaves)
		}
	}
}

// FuzzBinKeyKeyAgreement cross-checks the three equality notions — legacy
// key, binary key, and Equal — on fuzz-built view pairs, including
// anonymous and duplicate-identifier cases.
func FuzzBinKeyKeyAgreement(f *testing.F) {
	f.Add([]byte{3, 0xff, 1, 0, 1, 2, 3, 4})
	f.Add([]byte{4, 0x3f, 2, 1, 0, 0, 0, 0, 9, 9})
	f.Add([]byte{5, 0xaa, 1, 2, 3, 1, 4, 1, 5, 9, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		n := 2 + int(data[0])%4
		var pairs [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, [2]int{u, v})
			}
		}
		mask := int(data[1])
		g := graph.New(n)
		for i, e := range pairs {
			if mask&(1<<uint(i%8)) != 0 || i == 0 {
				if err := g.AddEdge(e[0], e[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		r := int(data[2]) % 3
		mode := int(data[3]) % 3
		var ids graph.IDs
		switch mode {
		case 1:
			ids = graph.SequentialIDs(n)
		case 2:
			ids = make(graph.IDs, n)
			for v := 0; v < n; v++ {
				// Deliberately collision-heavy identifiers.
				ids[v] = 1 + int(data[(4+v)%len(data)])%3
			}
		}
		labels := make([]string, n)
		for v := 0; v < n; v++ {
			labels[v] = string(rune('a' + int(data[(5+v)%len(data)])%3))
		}
		pt := graph.DefaultPorts(g)
		c1 := int(data[4]) % n
		c2 := int(data[len(data)-1]) % n
		v1 := view.MustExtract(g, pt, ids, labels, n, c1, r)
		v2 := view.MustExtract(g, pt, ids, labels, n, c2, r)

		keyEq := v1.Key() == v2.Key()
		binEq := bytes.Equal(v1.BinKey(), v2.BinKey())
		eq := v1.Equal(v2)
		if keyEq != binEq || binEq != eq {
			t.Fatalf("equality notions disagree: key=%v bin=%v equal=%v\nv1=%q\nv2=%q",
				keyEq, binEq, eq, v1.Key(), v2.Key())
		}
		// Determinism across a cache-free recomputation.
		if v1.Clone().Key() != v1.Key() || !bytes.Equal(v1.Clone().BinKey(), v1.BinKey()) {
			t.Fatal("keys are not deterministic under Clone")
		}
		// The anonymous projections must agree with each other the same way.
		a1, a2 := v1.Anonymize(), v2.Anonymize()
		akeyEq := a1.Key() == a2.Key()
		abinEq := bytes.Equal(a1.BinKey(), a2.BinKey())
		if akeyEq != abinEq {
			t.Fatalf("anonymous equality notions disagree: key=%v bin=%v", akeyEq, abinEq)
		}
	})
}

// BenchmarkIDOrderCrossover measures identifier-ordered canonicalization at
// view sizes straddling the insertion-sort/sort.Slice cutoff (24).
func BenchmarkIDOrderCrossover(b *testing.B) {
	for _, leaves := range []int{8, 16, 24, 32, 64, 128} {
		g := graph.New(leaves + 1)
		for v := 1; v <= leaves; v++ {
			if err := g.AddEdge(0, v); err != nil {
				b.Fatal(err)
			}
		}
		pt := graph.DefaultPorts(g)
		ids := graph.SequentialIDs(g.N())
		labels := make([]string, g.N())
		mu := view.MustExtract(g, pt, ids, labels, g.N(), 0, 1)
		b.Run(fmt.Sprintf("n=%d", leaves+1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = mu.Clone().Key()
			}
		})
	}
}
