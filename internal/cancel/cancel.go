// Package cancel is the cooperative-cancellation primitive shared by the
// parallel pipelines (nbhd.BuildShardedCtx, the core soundness sweeps,
// sim.GatherFaultsCtx). The pipelines already stop their workers through a
// plain atomic flag checked at shard/instance/round checkpoints; this
// package bridges a context.Context onto such a flag without adding
// anything to the hot path: a single watcher goroutine arms the flag when
// the context fires and is released when the pipeline finishes.
//
// A nil context is the never-cancelled context everywhere in this package,
// so the bare (non-context) pipeline entry points can delegate to their
// context-accepting implementations without manufacturing a
// context.Background() — which the ctxflow analyzer forbids inside the
// engine, core, nbhd, and sim layers.
package cancel

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Watch arms flag when ctx is cancelled. It returns a release function
// that must be called (normally deferred) once the guarded work has
// finished: it reclaims the watcher goroutine, so pipelines stay clean
// under the sanitize goroutine-leak probes. A nil ctx (or one that can
// never fire) arms nothing and returns a no-op release.
//
// If ctx is already cancelled when Watch is called, the flag is set
// synchronously before Watch returns, so a checkpoint immediately after
// Watch observes it deterministically.
func Watch(ctx context.Context, flag *atomic.Bool) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if ctx.Err() != nil {
		flag.Store(true)
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			flag.Store(true)
		case <-done:
		}
	}()
	return func() { close(done) }
}

// Err reports why ctx fired, or nil for a live (or nil) context. The
// returned error wraps context.Cause(ctx), so callers can test it with
// errors.Is(err, context.Canceled) / context.DeadlineExceeded, and the
// engine layer can re-tag it as engine.ErrCancelled.
func Err(ctx context.Context, what string) error {
	if ctx == nil {
		return nil
	}
	if ctx.Err() == nil {
		return nil
	}
	return fmt.Errorf("%s cancelled: %w", what, context.Cause(ctx))
}

// Cancelled reports whether ctx has fired. A nil ctx never has.
func Cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}
