package cancel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchNilContext(t *testing.T) {
	var flag atomic.Bool
	release := Watch(nil, &flag)
	release()
	if flag.Load() {
		t.Error("nil context armed the flag")
	}
	if Err(nil, "x") != nil || Cancelled(nil) {
		t.Error("nil context reported as cancelled")
	}
}

func TestWatchNeverFires(t *testing.T) {
	var flag atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := Watch(ctx, &flag)
	release()
	if flag.Load() {
		t.Error("live context armed the flag")
	}
	if err := Err(ctx, "build"); err != nil {
		t.Errorf("live context Err = %v", err)
	}
}

func TestWatchAlreadyCancelled(t *testing.T) {
	var flag atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release := Watch(ctx, &flag)
	defer release()
	// Pre-cancelled contexts arm synchronously: no race, no sleep needed.
	if !flag.Load() {
		t.Fatal("pre-cancelled context did not arm the flag synchronously")
	}
	err := Err(ctx, "build")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want wrapped context.Canceled", err)
	}
}

func TestWatchFiresMidFlight(t *testing.T) {
	var flag atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	release := Watch(ctx, &flag)
	defer release()
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !flag.Load() {
		if time.Now().After(deadline) {
			t.Fatal("flag not armed after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	if !Cancelled(ctx) {
		t.Error("Cancelled(ctx) = false after cancel")
	}
}

func TestErrCarriesDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := Err(ctx, "sweep")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Err = %v, want wrapped context.DeadlineExceeded", err)
	}
}
