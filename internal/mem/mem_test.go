package mem

import "testing"

func TestSlabPointerStability(t *testing.T) {
	var s Slab[int]
	var ptrs []*int
	for i := 0; i < 10000; i++ {
		p := s.Alloc()
		if *p != 0 {
			t.Fatalf("Alloc %d returned non-zero value %d", i, *p)
		}
		*p = i
		ptrs = append(ptrs, p)
	}
	if s.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", s.Len())
	}
	for i, p := range ptrs {
		if *p != i {
			t.Fatalf("value %d moved or was overwritten: got %d", i, *p)
		}
	}
}

func TestSliceSlabIndependence(t *testing.T) {
	var s SliceSlab[int]
	a := s.Make(4)
	b := s.Make(3)
	for i := range a {
		a[i] = 10 + i
	}
	for i := range b {
		b[i] = 20 + i
	}
	// Appending to an earlier slice must not bleed into a later one.
	a = append(a, 99)
	if b[0] != 20 {
		t.Fatalf("append to a overwrote b: b = %v", b)
	}
	if len(a) != 5 || a[4] != 99 {
		t.Fatalf("append to a lost data: a = %v", a)
	}
	if got := s.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	if s.Make(0) != nil {
		t.Fatal("Make(0) should return nil")
	}
	// Requests larger than a chunk still work.
	big := s.Make(100000)
	if len(big) != 100000 {
		t.Fatalf("big Make returned len %d", len(big))
	}
}

func TestSlabAllocAmortized(t *testing.T) {
	var s Slab[[4]int]
	// Warm past the growth phase, then the steady state is one heap chunk
	// per slabChunkMax allocations.
	for i := 0; i < 4*slabChunkMax; i++ {
		s.Alloc()
	}
	avg := testing.AllocsPerRun(3*slabChunkMax, func() { s.Alloc() })
	if avg > 0.01 {
		t.Fatalf("Slab.Alloc steady state allocates %.4f objects/op, want ~0", avg)
	}
}

func TestScratchHelpers(t *testing.T) {
	buf := make([]int, 8)
	for i := range buf {
		buf[i] = 7
	}
	got := Ints(buf, 4)
	if len(got) != 4 || &got[0] != &buf[0] {
		t.Fatalf("Ints should reuse the backing array")
	}
	got = Ints(buf[:0], 16)
	if len(got) != 16 {
		t.Fatalf("Ints grow: len = %d", len(got))
	}
	z := ZeroInts(buf, 6)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("ZeroInts left z[%d] = %d", i, v)
		}
	}
	b := Bytes(nil, 5)
	if len(b) != 5 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	if got := Bytes(b, 3); &got[0] != &b[0] {
		t.Fatal("Bytes should reuse the backing array")
	}
}

func TestPoolResetDiscipline(t *testing.T) {
	type scratch struct{ buf []int }
	p := Pool[scratch]{
		New:   func() *scratch { return &scratch{buf: make([]int, 0, 8)} },
		Reset: func(s *scratch) { s.buf = s.buf[:0] },
	}
	s := p.Get()
	s.buf = append(s.buf, 1, 2, 3)
	p.Put(s)
	s2 := p.Get()
	if len(s2.buf) != 0 {
		t.Fatalf("recycled scratch not Reset: len = %d", len(s2.buf))
	}
}

func TestFreeListLIFOAndReset(t *testing.T) {
	n := 0
	f := FreeList[int]{
		New:   func() *int { n++; x := -n; return &x },
		Reset: func(x *int) { *x = 0 },
	}
	a, b := f.Get(), f.Get()
	if n != 2 {
		t.Fatalf("New called %d times, want 2", n)
	}
	*a, *b = 10, 20
	f.Put(a)
	f.Put(b)
	got := f.Get()
	if got != b {
		t.Fatal("FreeList should reuse LIFO")
	}
	if *got != 0 {
		t.Fatalf("recycled value not Reset: %d", *got)
	}
	if f.Get() != a {
		t.Fatal("second Get should return the first Put object")
	}
	if f.Get() == nil || n != 3 {
		t.Fatalf("empty list should call New; n = %d", n)
	}
}
