package mem

import "sync"

// Pool is a typed free list over sync.Pool for scratch objects shared across
// goroutines (e.g. the canonical-key scratch of internal/view). Reset, when
// set, runs on every recycled object before Get returns it, so callers
// always see the declared post-Reset state. Objects put back must not be
// touched again by the caller.
type Pool[T any] struct {
	// New builds a fresh object when the pool is empty; nil means new(T).
	New func() *T
	// Reset restores a recycled object to its ready state before reuse.
	Reset func(*T)

	p sync.Pool
}

// Get returns a ready-to-use object: recycled and Reset, or freshly built.
func (p *Pool[T]) Get() *T {
	if v := p.p.Get(); v != nil {
		x := v.(*T)
		if p.Reset != nil {
			p.Reset(x)
		}
		return x
	}
	if p.New != nil {
		return p.New()
	}
	return new(T)
}

// Put recycles x. The caller must not use x (or any buffer it owns) after
// Put; escape sites are flagged by the poolescape analyzer.
func (p *Pool[T]) Put(x *T) { p.p.Put(x) }

// FreeList is a single-owner typed free list: the goroutine-private
// counterpart of Pool with deterministic reuse (LIFO) and no interface
// boxing. The zero value is empty and ready to use.
type FreeList[T any] struct {
	// New builds a fresh object when the list is empty; nil means new(T).
	New func() *T
	// Reset restores a recycled object before Get returns it.
	Reset func(*T)

	free []*T
}

// Get returns a ready-to-use object: the most recently Put one (after
// Reset), or a freshly built one.
func (f *FreeList[T]) Get() *T {
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		if f.Reset != nil {
			f.Reset(x)
		}
		return x
	}
	if f.New != nil {
		return f.New()
	}
	return new(T)
}

// Put recycles x for a later Get. The caller must not use x after Put.
func (f *FreeList[T]) Put(x *T) { f.free = append(f.free, x) }
