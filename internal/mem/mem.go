// Package mem provides the allocation-discipline building blocks of the hot
// enumeration paths: chunked slab arenas for objects that live exactly as
// long as one build, capacity-reusing scratch helpers, and typed free lists
// with an explicit Reset contract.
//
// Escape rules (safe by construction):
//
//   - Slab/SliceSlab memory is NEVER reclaimed individually; it is released
//     only when the whole arena becomes unreachable. Allocate from a slab
//     only objects whose lifetime is tied to the arena owner (e.g. interned
//     view representatives owned by a builder). Pointers into a slab stay
//     valid for the arena's lifetime, so handing them out is safe.
//   - Pool/FreeList buffers are REUSED: a buffer obtained from a pool must
//     not be returned, stored in a struct, or otherwise retained past the
//     Put that recycles it, unless defensively copied first. The poolescape
//     analyzer (cmd/lcplint) enforces this rule over the repository.
//   - The scratch helpers (Ints, Bytes, and friends) return slices with
//     undefined contents that alias the input's backing array; callers own
//     the result exactly as they owned the input.
package mem

// slabChunkMin is the element count of the first chunk of a Slab or
// SliceSlab; subsequent chunks double up to slabChunkMax. Small first chunks
// keep one-shot arenas cheap, geometric growth keeps the per-element
// amortized cost at O(1) allocations per chunk.
const (
	slabChunkMin = 64
	slabChunkMax = 16384
)

// Slab is a chunked bump allocator for values of type T. Alloc returns
// pointers into fixed-position chunks, so allocated values never move and
// pointers remain valid for the slab's lifetime. The zero value is ready to
// use. A Slab is not safe for concurrent use; give each goroutine its own.
type Slab[T any] struct {
	chunks [][]T
	n      int
}

// Alloc returns a pointer to a new zero value of T from the slab.
func (s *Slab[T]) Alloc() *T {
	if len(s.chunks) == 0 || len(s.chunks[len(s.chunks)-1]) == cap(s.chunks[len(s.chunks)-1]) {
		size := slabChunkMin << len(s.chunks)
		if size > slabChunkMax {
			size = slabChunkMax
		}
		s.chunks = append(s.chunks, make([]T, 0, size))
	}
	c := &s.chunks[len(s.chunks)-1]
	*c = (*c)[:len(*c)+1]
	s.n++
	return &(*c)[len(*c)-1]
}

// Len returns the number of values allocated from the slab.
func (s *Slab[T]) Len() int { return s.n }

// SliceSlab carves variable-length []T slices out of shared chunk backings.
// Returned slices have full length n, undefined contents, capped capacity
// (appends never bleed into a neighbor), and never move. The zero value is
// ready to use; not safe for concurrent use.
type SliceSlab[T any] struct {
	cur    []T
	nextSz int
	n      int
}

// Make returns a fresh slice of length and capacity n from the slab.
func (s *SliceSlab[T]) Make(n int) []T {
	if n == 0 {
		return nil
	}
	if cap(s.cur)-len(s.cur) < n {
		size := s.nextSz
		if size < slabChunkMin {
			size = slabChunkMin
		}
		if size < n {
			size = n
		}
		s.cur = make([]T, 0, size)
		if s.nextSz = size * 2; s.nextSz > slabChunkMax {
			s.nextSz = slabChunkMax
		}
	}
	off := len(s.cur)
	s.cur = s.cur[:off+n]
	s.n += n
	return s.cur[off : off+n : off+n]
}

// Len returns the total number of elements handed out by Make.
func (s *SliceSlab[T]) Len() int { return s.n }

// Ints returns a slice of length n with undefined contents, reusing buf's
// backing array when it is large enough. The idiomatic call site is
// s.buf = mem.Ints(s.buf, n).
func Ints(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// ZeroInts is Ints with the result cleared.
func ZeroInts(buf []int, n int) []int {
	buf = Ints(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Bytes returns a slice of length n with undefined contents, reusing buf's
// backing array when it is large enough.
func Bytes(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}
