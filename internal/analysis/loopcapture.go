package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopCaptureAnalyzer reports goroutines launched inside a loop whose
// function literal captures loop state instead of receiving it as an
// argument. Two cases:
//
//   - Capture of the loop clause variable itself (the range key/value or
//     the for-init variable). Since Go 1.22 each iteration gets a fresh
//     binding, so this is no longer the classic last-value race — but the
//     fan-out code in this repository (shard builders, parallel soundness
//     workers) standardizes on the explicit-argument idiom `go func(w int)
//     {...}(w)`: the binding survives refactors that hoist the variable
//     out of the clause, and the goroutine's inputs are visible at the go
//     statement.
//
//   - Capture of a variable declared outside the loop and written inside
//     its body. That one is a genuine data race in every Go version: the
//     goroutine's reads run concurrently with the next iteration's write.
var LoopCaptureAnalyzer = &Analyzer{
	Name: "loopcapture",
	Doc:  "report loop variables captured by goroutines spawned in the loop; pass them as arguments",
	Run:  runLoopCapture,
}

func runLoopCapture(pass *Pass) error {
	for _, file := range pass.Files {
		lc := &loopCapture{pass: pass}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ForStmt:
				lc.walkLoop(node, node.Init, node.Body)
				return false
			case *ast.RangeStmt:
				lc.walkLoop(node, node, node.Body)
				return false
			}
			return true
		})
	}
	return nil
}

type loopStat struct {
	node       ast.Node
	clauseVars map[types.Object]bool
	bodyWrites map[types.Object]bool
}

type loopCapture struct {
	pass  *Pass
	loops []*loopStat
}

// walkLoop pushes one loop's clause variables and body-write set, scans
// the body (recursing into nested loops), and pops.
func (lc *loopCapture) walkLoop(loop ast.Node, clause ast.Node, body *ast.BlockStmt) {
	st := &loopStat{
		node:       loop,
		clauseVars: map[types.Object]bool{},
		bodyWrites: map[types.Object]bool{},
	}
	switch c := clause.(type) {
	case *ast.AssignStmt: // for i := 0; ...
		if c.Tok == token.DEFINE {
			for _, l := range c.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := lc.pass.Info.Defs[id]; obj != nil {
						st.clauseVars[obj] = true
					}
				}
			}
		}
	case *ast.RangeStmt: // for k, v := range ...
		for _, e := range []ast.Expr{c.Key, c.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := lc.pass.Info.Defs[id]; obj != nil {
					st.clauseVars[obj] = true
				}
			}
		}
	}
	lc.collectBodyWrites(st, body)
	lc.loops = append(lc.loops, st)
	lc.walkBody(body)
	lc.loops = lc.loops[:len(lc.loops)-1]
}

// collectBodyWrites records loop-body assignments to variables declared
// outside the loop — the shared mutable state a spawned goroutine must not
// read unsynchronized.
func (lc *loopCapture) collectBodyWrites(st *loopStat, body *ast.BlockStmt) {
	record := func(expr ast.Expr) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return
		}
		obj := lc.pass.Info.Uses[id]
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if obj.Pos() < st.node.Pos() || obj.Pos() > st.node.End() {
			st.bodyWrites[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, l := range node.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(node.X)
		}
		return true
	})
}

// walkBody scans loop-body statements, reporting go-statement literals and
// recursing into nested loops with the stack maintained.
func (lc *loopCapture) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ForStmt:
			lc.walkLoop(node, node.Init, node.Body)
			return false
		case *ast.RangeStmt:
			lc.walkLoop(node, node, node.Body)
			return false
		case *ast.GoStmt:
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				lc.checkGoLit(lit)
			}
			// Arguments of the go statement evaluate before the goroutine
			// starts; only the literal's captures matter.
			return true
		}
		return true
	})
}

// checkGoLit reports captures of enclosing-loop state inside a go-spawned
// function literal.
func (lc *loopCapture) checkGoLit(lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := lc.pass.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		// Identifiers declared inside the literal are its own locals.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		for _, st := range lc.loops {
			if st.clauseVars[obj] {
				seen[obj] = true
				lc.pass.Reportf(id.Pos(),
					"goroutine launched in a loop captures the loop variable %s; pass it as an argument (go func(%s ...) {...}(%s)) like the other fan-out paths", obj.Name(), obj.Name(), obj.Name())
				return true
			}
			if st.bodyWrites[obj] {
				seen[obj] = true
				lc.pass.Reportf(id.Pos(),
					"goroutine captures %s, which the loop body writes each iteration; the read races with the next iteration's write — pass a copy as an argument", obj.Name())
				return true
			}
		}
		return true
	})
}
