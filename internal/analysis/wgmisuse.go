package analysis

import (
	"go/ast"
	"go/types"
)

// WGMisuseAnalyzer reports sync.WaitGroup.Add calls made inside the spawned
// goroutine itself. Add must happen before the go statement: if the counter
// increment races with the parent's Wait, the Wait can observe zero and
// return while workers are still starting — the barrier the shard builders
// and parallel searchers rely on silently stops being one. The correct
// shape, used throughout the fan-out code, is
//
//	wg.Add(1)
//	go func() { defer wg.Done(); ... }()
//
// An Add on a WaitGroup declared inside the literal is a fresh, inner
// barrier and is not reported.
var WGMisuseAnalyzer = &Analyzer{
	Name: "wgmisuse",
	Doc:  "report WaitGroup.Add called inside the goroutine it accounts for; Add must precede the go statement",
	Run:  runWGMisuse,
}

func runWGMisuse(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineAdds(pass, lit)
			return true
		})
	}
	return nil
}

// checkGoroutineAdds reports Add calls within lit on wait groups captured
// from outside it.
func checkGoroutineAdds(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isWaitGroup(pass.Info.TypeOf(sel.X)) {
			return true
		}
		root := lhsRoot(sel.X)
		if root == nil {
			return true
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			return true
		}
		// A wait group declared inside this literal is an inner barrier the
		// goroutine owns; only captured (outer) groups race with Wait.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s.Add inside the spawned goroutine races with Wait, which can return before the counter rises; call Add before the go statement", root.Name)
		return true
	})
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
