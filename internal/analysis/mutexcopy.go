package analysis

import (
	"go/ast"
	"go/types"
)

// MutexCopyAnalyzer reports values containing synchronization state —
// sync.Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool, or any typed
// atomic from sync/atomic — being copied: passed or returned by value,
// assigned from an existing value, bound by a by-value range clause, or
// held by a value method receiver. A copied lock is a fork of the lock
// state: goroutines that synchronize on the copy and on the original are
// not synchronizing with each other at all, which is precisely the failure
// mode the sharded builders and the parallel soundness search cannot
// afford. Constructing a fresh value (composite literal, call result) is
// fine; duplicating a live one is not — pass a pointer.
var MutexCopyAnalyzer = &Analyzer{
	Name: "mutexcopy",
	Doc:  "report sync primitives (mutexes, wait groups, typed atomics) copied by value",
	Run:  runMutexCopy,
}

func runMutexCopy(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, node.Recv, node.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, node.Type)
			case *ast.AssignStmt:
				if len(node.Lhs) == len(node.Rhs) {
					for _, rhs := range node.Rhs {
						checkCopyExpr(pass, rhs, "assignment copies")
					}
				}
			case *ast.ValueSpec:
				for _, v := range node.Values {
					checkCopyExpr(pass, v, "declaration copies")
				}
			case *ast.RangeStmt:
				if node.Value != nil {
					if lock := lockPath(pass.Info.TypeOf(node.Value)); lock != "" {
						pass.Reportf(node.Value.Pos(),
							"range clause copies a value containing %s per iteration; range over indices or pointers instead", lock)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range node.Results {
					checkCopyExpr(pass, r, "return copies")
				}
			case *ast.CallExpr:
				if tv, ok := pass.Info.Types[node.Fun]; ok && tv.IsType() {
					return true
				}
				for _, arg := range node.Args {
					checkCopyExpr(pass, arg, "call passes")
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncSig flags by-value receivers, parameters, and results whose
// types contain a lock.
func checkFuncSig(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	kinds := []string{"receiver", "parameter", "result"}
	for i, list := range lists {
		if list == nil {
			continue
		}
		for _, field := range list.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lock := lockPath(t); lock != "" {
				pass.Reportf(field.Type.Pos(),
					"by-value %s copies a value containing %s; use a pointer", kinds[i], lock)
			}
		}
	}
}

// checkCopyExpr flags expr when it duplicates an existing lock-bearing
// value: a read of a variable, field, element, or dereference. Fresh
// values — composite literals, call results, conversions — are first
// copies, not forks, and pass.
func checkCopyExpr(pass *Pass, expr ast.Expr, verb string) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.Info.TypeOf(expr)
	if t == nil {
		return
	}
	if lock := lockPath(t); lock != "" {
		pass.Reportf(expr.Pos(), "%s a value containing %s; use a pointer", verb, lock)
	}
}

// lockPath reports the first synchronization primitive embedded (by value,
// transitively through structs and arrays) in t, or "" if none. Pointers,
// slices, maps, channels, and interfaces break the chain: sharing a
// pointer to a lock is the whole point.
func lockPath(t types.Type) string {
	return lockPathRec(t, map[types.Type]bool{})
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
		return lockPathRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockPathRec(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}
