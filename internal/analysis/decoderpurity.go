package analysis

import (
	"go/ast"
	"go/types"
)

// DecoderPurityAnalyzer enforces the core.Decoder contract that Decide is a
// pure function of its view: inside any method or function literal with the
// Decide signature (one *view.View parameter, bool result), it reports
//
//   - writes to receiver fields (statefulness across invocations),
//   - writes to package-level variables (hidden shared state), and
//   - mutation of the *view.View argument (views are immutable after
//     extraction and shared between nodes, caches, and workers).
//
// Reads are unrestricted. The check is syntactic over assignment statements,
// ++/--, and the delete builtin; mutation smuggled through helper calls is
// out of scope (the runtime sanitizer in internal/sanitize covers it).
var DecoderPurityAnalyzer = &Analyzer{
	Name: "decoderpurity",
	Doc:  "report Decide methods that write receiver fields, package-level variables, or their view argument",
	Run:  runDecoderPurity,
}

func runDecoderPurity(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if isDecideMethod(pass.Info, fn) && fn.Body != nil {
					checkDecideBody(pass, fn.Body, receiverObj(pass.Info, fn), paramObj(pass.Info, fn.Type))
				}
			case *ast.FuncLit:
				if hasDecideSignature(pass.Info, fn.Type) {
					checkDecideBody(pass, fn.Body, nil, paramObj(pass.Info, fn.Type))
				}
			}
			return true
		})
	}
	return nil
}

// receiverObj returns the object of the method's receiver variable, or nil
// for an unnamed receiver.
func receiverObj(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// paramObj returns the object of the single view parameter, or nil if it is
// unnamed.
func paramObj(info *types.Info, ft *ast.FuncType) types.Object {
	p := ft.Params.List[0]
	if len(p.Names) == 0 {
		return nil
	}
	return info.Defs[p.Names[0]]
}

// checkDecideBody reports impure writes within one Decide body. recv and
// param may be nil (unnamed); nested function literals are included since
// they share the enclosing state.
func checkDecideBody(pass *Pass, body *ast.BlockStmt, recv, param types.Object) {
	classify := func(target ast.Expr) (string, bool) {
		root := lhsRoot(target)
		if root == nil {
			return "", false
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			obj = pass.Info.Defs[root]
		}
		if obj == nil {
			return "", false
		}
		switch {
		case recv != nil && obj == recv:
			// A plain reassignment of the receiver variable itself is a
			// local write; only writes *through* it (selector/index/deref)
			// touch shared state.
			if _, isIdent := target.(*ast.Ident); isIdent {
				return "", false
			}
			return "receiver field", true
		case param != nil && obj == param:
			if _, isIdent := target.(*ast.Ident); isIdent {
				return "", false
			}
			return "view argument", true
		case isPackageLevelVar(pass.Pkg, obj):
			return "package-level variable", true
		}
		return "", false
	}

	report := func(pos ast.Node, kind string, target ast.Expr) {
		pass.Reportf(pos.Pos(), "Decide must be a pure function of the view: write to %s %s", kind, exprString(target))
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if kind, bad := classify(lhs); bad {
					report(stmt, kind, lhs)
				}
			}
		case *ast.IncDecStmt:
			if kind, bad := classify(stmt.X); bad {
				report(stmt, kind, stmt.X)
			}
		case *ast.CallExpr:
			if fun, ok := stmt.Fun.(*ast.Ident); ok && len(stmt.Args) > 0 {
				if obj, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
					switch obj.Name() {
					case "delete", "clear":
						if kind, bad := classify(stmt.Args[0]); bad {
							report(stmt, kind, stmt.Args[0])
						}
					}
				}
			}
		}
		return true
	})
}

// isPackageLevelVar reports whether obj is a variable declared at package
// scope.
func isPackageLevelVar(pkg *types.Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == pkg.Scope()
}

// exprString renders a short description of an assignment target.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.SliceExpr:
		return exprString(x.X) + "[...]"
	case *ast.TypeAssertExpr:
		return exprString(x.X) + ".(...)"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
