// Package loopcapture exercises the loop-variable capture analyzer.
package loopcapture

import "sync"

func work(int) {}

// capturesRangeVar spawns goroutines that close over the range variable
// instead of taking it as an argument.
func capturesRangeVar(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(it) // want "goroutine launched in a loop captures the loop variable it"
		}()
	}
	wg.Wait()
}

// capturesIndexVar does the same with a classic counted loop.
func capturesIndexVar(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i) // want "goroutine launched in a loop captures the loop variable i"
		}()
	}
	wg.Wait()
}

// capturesLoopWrite races: cur is written each iteration and read
// concurrently by the goroutine.
func capturesLoopWrite(items []int) {
	var wg sync.WaitGroup
	var cur int
	for _, it := range items {
		cur = it * 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(cur) // want "goroutine captures cur, which the loop body writes each iteration"
		}()
	}
	wg.Wait()
}

// explicitArgument is the sanctioned fan-out shape used by the shard
// builders; nothing to report.
func explicitArgument(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			work(v)
		}(it)
	}
	wg.Wait()
}

// outsideLoop: a goroutine outside any loop may capture what it likes.
func outsideLoop(x int) {
	done := make(chan struct{})
	go func() {
		work(x)
		close(done)
	}()
	<-done
}

// loopLocal: a variable declared inside the loop body is per-iteration
// state, not shared; nothing to report.
func loopLocal(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		doubled := it * 2
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			work(v)
		}(doubled)
	}
	wg.Wait()
}

// suppressed documents a deliberate capture behind a same-iteration wait.
func suppressed(items []int) {
	for _, it := range items {
		done := make(chan struct{})
		go func() {
			//lint:ignore loopcapture the loop blocks on done before the next iteration, so the capture cannot race
			work(it)
			close(done)
		}()
		<-done
	}
}
