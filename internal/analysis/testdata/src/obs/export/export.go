// Package export is a minimal replica of hidinglcp/internal/obs/export for
// analyzer fixtures: the obspurity analyzer matches the "obs/export" path
// suffix, so fixtures stay self-contained.
package export

// LogEvent mirrors the real structured log event.
type LogEvent struct {
	Name string
}

// EventLog mirrors the real JSONL event sink.
type EventLog struct{}

// NewEventLog mirrors the real constructor.
func NewEventLog() *EventLog { return &EventLog{} }

// EmitLogEvent mirrors the real sink method; a certflow sink.
func (l *EventLog) EmitLogEvent(ev LogEvent) {}

// Dropped mirrors the real rate-limit counter read.
func (l *EventLog) Dropped() int64 { return 0 }

// WritePrometheus mirrors the real exporter entry point.
func WritePrometheus() error { return nil }
