// Package obs is a minimal replica of hidinglcp/internal/obs for analyzer
// fixtures: the obspurity analyzer matches on the package name "obs", so
// fixtures stay self-contained.
package obs

// Counter mirrors the real monotonically increasing counter.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Scope mirrors the real metric-handle factory.
type Scope struct{}

// Counter returns the named counter.
func (s Scope) Counter(name string) *Counter { return &Counter{} }

// Now mirrors the real package's sanctioned clock read.
func Now() int64 { return 0 }
