// Package obs is a minimal replica of hidinglcp/internal/obs for analyzer
// fixtures: the obspurity analyzer matches on the package name "obs", so
// fixtures stay self-contained.
package obs

// Counter mirrors the real monotonically increasing counter.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Scope mirrors the real metric-handle factory.
type Scope struct{}

// Counter returns the named counter.
func (s Scope) Counter(name string) *Counter { return &Counter{} }

// Event mirrors the real trace-event emitter; a certflow sink.
func (s Scope) Event(name, detail string) {}

// Span mirrors the real trace span.
type Span struct{}

// Span opens a child span.
func (s Scope) Span(name string) *Span { return &Span{} }

// SetAttr attaches an attribute to the span; a certflow sink.
func (sp *Span) SetAttr(key, value string) {}

// RunManifest mirrors the real JSON run manifest.
type RunManifest struct{}

// SetConfig records a config key; a certflow sink.
func (m *RunManifest) SetConfig(key, value string) {}

// Progress mirrors the real progress reporter.
type Progress struct{}

// SetExtra installs a status-line callback; a certflow sink.
func (p *Progress) SetExtra(f func() string) {}

// RedactString mirrors the real redactor; a certflow sanitizer.
func RedactString(s string) string { return "" }

// RedactStrings mirrors the real labeling redactor; a certflow sanitizer.
func RedactStrings(ss []string) string { return "" }

// Now mirrors the real package's sanctioned clock read.
func Now() int64 { return 0 }
