// Fixture for the maporder analyzer: map-range loops feeding slices or
// strings without a subsequent sort are seeded violations; the
// collect-then-sort idiom and order-insensitive sinks stay clean.
package maporder

import (
	"sort"
	"strings"
)

func badKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order flows into slice \"keys\""
		keys = append(keys, k)
	}
	return keys
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration order flows into string \"s\""
		s += k
	}
	return s
}

func badPlus(m map[string]int) string {
	out := "prefix:"
	for k, v := range m { // want "map iteration order flows into string \"out\""
		if v > 0 {
			out = out + k
		}
	}
	return out
}

func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func goodAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodLoopLocal(m map[string]int) int {
	n := 0
	for k := range m {
		parts := []string{}
		parts = append(parts, k)
		n += len(strings.Join(parts, ","))
	}
	return n
}

func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // slices iterate deterministically
		out = append(out, x)
	}
	return out
}
