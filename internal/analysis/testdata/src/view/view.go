// Package view is a minimal replica of hidinglcp/internal/view for
// analyzer fixtures: the analyzers match on the package name "view" and
// the View type shape, so fixtures stay self-contained.
package view

// View mirrors the fields of the real radius-r view.
type View struct {
	Radius int
	Adj    [][]int
	Dist   []int
	Ports  map[[2]int]int
	IDs    []int
	Labels []string
	NBound int
}

// N returns the number of nodes in the view.
func (v *View) N() int { return len(v.Adj) }

// Degree returns the local degree of node i.
func (v *View) Degree(i int) int { return len(v.Adj[i]) }

// LocalNodeWithID returns the local index carrying identifier id, or -1.
func (v *View) LocalNodeWithID(id int) int {
	for i, x := range v.IDs {
		if x != 0 && x == id {
			return i
		}
	}
	return -1
}

// Key mirrors the real canonical serialization, which embeds the raw label
// bytes; certflow treats its result as a certificate source.
func (v *View) Key() string {
	s := ""
	for _, l := range v.Labels {
		s += l
	}
	return s
}

// BinKey mirrors the binary canonical key; also a certflow source.
func (v *View) BinKey() []byte { return []byte(v.Key()) }

// KeyDigest mirrors the real redacted fingerprint; a certflow sanitizer.
func (v *View) KeyDigest() string { return "fnv32a:00000000#0" }
