// Package mutexcopy exercises the lock-copy analyzer.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct {
	inner guarded
}

// byValueParam copies the caller's lock on every call.
func byValueParam(g guarded) int { // want "by-value parameter copies a value containing sync.Mutex"
	return g.n
}

// byValueReceiver copies the lock on every method call.
func (g guarded) byValueReceiver() int { // want "by-value receiver copies a value containing sync.Mutex"
	return g.n
}

// assignCopy forks the lock state of an existing value.
func assignCopy(g *guarded) {
	snapshot := *g // want "assignment copies a value containing sync.Mutex"
	_ = snapshot.n
}

// callCopy passes the lock by value at the call site too.
func callCopy(g *guarded) int {
	return byValueParam(*g) // want "call passes a value containing sync.Mutex"
}

// transitive locks are found through embedded structs.
func transitive(w wrapper) { // want "by-value parameter copies a value containing sync.Mutex"
}

// rangeCopy duplicates each element's lock into the loop variable.
func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range clause copies a value containing sync.Mutex"
		total += g.n
	}
	return total
}

// pointers share the lock instead of copying it; nothing to report.
func pointerParam(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// freshValue initializes a new lock; a first copy is not a fork.
func freshValue() *guarded {
	g := guarded{}
	return &g
}

// indexPointer iterates by index to avoid the copy.
func indexPointer(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// suppressed documents a deliberate copy of a never-used zero lock.
func suppressed(g *guarded) {
	//lint:ignore mutexcopy the copy is of a documented never-locked zero value
	dup := *g
	_ = dup.n
}
