// Fixture for the decoderpurity analyzer: Decide bodies that write
// receiver fields, package-level variables, or their view argument are
// seeded violations; pure decoders and non-decoder methods stay clean.
package decoderpurity

import "view"

var calls int

// badStateful keeps a counter across invocations — the archetypal
// statefulness bug.
type badStateful struct{ count int }

func (d *badStateful) Rounds() int     { return 1 }
func (d *badStateful) Anonymous() bool { return true }

func (d *badStateful) Decide(mu *view.View) bool {
	d.count++           // want "write to receiver field d.count"
	calls = calls + 1   // want "write to package-level variable calls"
	return d.count%2 == 0
}

// badMutator edits the shared view in place.
type badMutator struct{}

func (d *badMutator) Rounds() int     { return 1 }
func (d *badMutator) Anonymous() bool { return true }

func (d *badMutator) Decide(mu *view.View) bool {
	mu.IDs[0] = 7                      // want "write to view argument mu.IDs"
	mu.Labels = append(mu.Labels, "x") // want "write to view argument mu.Labels"
	delete(mu.Ports, [2]int{0, 1})     // want "write to view argument mu.Ports"
	mu.NBound++                        // want "write to view argument mu.NBound"
	return true
}

// goodPure reads the receiver and the view and writes only locals.
type goodPure struct{ threshold int }

func (d *goodPure) Rounds() int     { return 1 }
func (d *goodPure) Anonymous() bool { return true }

func (d *goodPure) Decide(mu *view.View) bool {
	sum := 0
	for _, nbs := range mu.Adj {
		sum += len(nbs)
	}
	local := append([]string(nil), mu.Labels...)
	if len(local) > 0 {
		local[0] = "scratch"
	}
	seen := map[int]bool{}
	for _, id := range mu.IDs {
		seen[id] = true
	}
	mu = nil // reassigning the parameter variable itself is a local write
	return sum >= d.threshold
}

// Function literals with the Decide signature are held to the same
// contract.
var _ = func(mu *view.View) bool {
	mu.NBound = 3 // want "write to view argument mu.NBound"
	return false
}

var _ = func(mu *view.View) bool {
	r := mu.Radius
	return r > 0
}

// suppressed carries decoder instrumentation behind an explicit
// //lint:ignore directive; only the annotated write is silenced.
type suppressed struct{ probes, hidden int }

func (d *suppressed) Rounds() int     { return 1 }
func (d *suppressed) Anonymous() bool { return true }

func (d *suppressed) Decide(mu *view.View) bool {
	//lint:ignore decoderpurity probe bookkeeping for the test harness
	d.probes++
	d.hidden++ // want "write to receiver field d.hidden"
	//lint:ignore decoderpurity
	d.hidden++ // want "write to receiver field d.hidden"
	return true
}

// notDecoder has a Decide method with the wrong signature; it is out of
// scope and free to mutate.
type notDecoder struct{ x int }

func (n *notDecoder) Decide(a int) int {
	n.x = a
	return n.x
}
