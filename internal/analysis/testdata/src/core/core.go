// Package core is a minimal replica of hidinglcp/internal/core for
// analyzer fixtures: anonid matches NewDecoder calls by function name and
// package name "core".
package core

import "view"

// Decoder mirrors the real r-round binary decoder interface.
type Decoder interface {
	Rounds() int
	Anonymous() bool
	Decide(mu *view.View) bool
}

type decoderFunc struct {
	r      int
	anon   bool
	decide func(mu *view.View) bool
}

// NewDecoder builds a Decoder from a plain function.
func NewDecoder(rounds int, anonymous bool, decide func(mu *view.View) bool) Decoder {
	return &decoderFunc{r: rounds, anon: anonymous, decide: decide}
}

func (d *decoderFunc) Rounds() int               { return d.r }
func (d *decoderFunc) Anonymous() bool           { return d.anon }
func (d *decoderFunc) Decide(mu *view.View) bool { return d.decide(mu) }

// Instance mirrors the real unlabeled instance.
type Instance struct{ N int }

// Labeled mirrors the real instance-plus-certificates pair; certflow
// treats its Labels field as a certificate source.
type Labeled struct {
	Instance
	Labels []string
}

// Prover mirrors the real certificate generator; certflow treats Certify
// results as certificate sources.
type Prover interface {
	Certify(inst Instance) ([]string, error)
}
