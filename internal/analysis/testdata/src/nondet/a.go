// Fixture for the nondet analyzer: ambient-state reads (wall clock,
// global math/rand, environment) are seeded violations; explicit seeded
// sources and innocent uses of the same packages stay clean.
package nondet

import (
	"math/rand"
	"os"
	"time"
)

func badClock() int64 {
	return time.Now().Unix() // want "call to time.Now reads ambient state"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "call to time.Since reads ambient state"
}

func badGlobalRand() int {
	return rand.Intn(6) // want "call to math/rand.Intn reads ambient state"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "call to math/rand.Shuffle reads ambient state"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func badEnv() string {
	return os.Getenv("HOME") // want "call to os.Getenv reads ambient state"
}

func goodSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func goodConversion(d int64) time.Duration {
	return time.Duration(d) * time.Millisecond
}

func goodOS(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	return f.Close()
}
