// Fixture for the anonid analyzer: decoders declaring Anonymous() == true
// while reading identifiers are seeded violations; identifier reads in
// declared non-anonymous decoders stay clean.
package anonid

import (
	"core"
	"view"
)

// leaky claims anonymity but branches on an identifier.
type leaky struct{}

func (d *leaky) Rounds() int     { return 1 }
func (d *leaky) Anonymous() bool { return true }

func (d *leaky) Decide(mu *view.View) bool {
	return mu.IDs[0] == 0 // want "anonymous decoder reads view identifiers"
}

// lookup claims anonymity but resolves identifiers to local nodes.
type lookup struct{}

func (d *lookup) Rounds() int     { return 1 }
func (d *lookup) Anonymous() bool { return true }

func (d *lookup) Decide(mu *view.View) bool {
	return mu.LocalNodeWithID(3) >= 0 // want "anonymous decoder resolves identifiers"
}

// honest reads identifiers and says so.
type honest struct{}

func (d *honest) Rounds() int     { return 1 }
func (d *honest) Anonymous() bool { return false }

func (d *honest) Decide(mu *view.View) bool {
	return mu.IDs[0] > 0
}

// cleanAnon is anonymous and identifier-oblivious.
type cleanAnon struct{}

func (d *cleanAnon) Rounds() int     { return 1 }
func (d *cleanAnon) Anonymous() bool { return true }

func (d *cleanAnon) Decide(mu *view.View) bool {
	return len(mu.Adj) > 0 && mu.Labels[0] != ""
}

// Function literals passed to core.NewDecoder with the anonymous flag
// literally true are held to the same contract.
var _ = core.NewDecoder(1, true, func(mu *view.View) bool {
	return len(mu.IDs) > 0 // want "anonymous decoder reads view identifiers"
})

var _ = core.NewDecoder(1, false, func(mu *view.View) bool {
	return mu.IDs[0] == 1
})
