// Package wgmisuse exercises the WaitGroup.Add placement analyzer.
package wgmisuse

import "sync"

func work() {}

// addInsideGoroutine races: Wait can observe a zero counter and return
// before the goroutine has registered itself.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "wg.Add inside the spawned goroutine races with Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// addInsideNested finds the pattern through nested literals too.
func addInsideNested(wg *sync.WaitGroup) {
	go func() {
		func() {
			wg.Add(1) // want "wg.Add inside the spawned goroutine races with Wait"
		}()
		defer wg.Done()
		work()
	}()
}

// addBeforeGo is the sanctioned shape; nothing to report.
func addBeforeGo() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// innerBarrier: a WaitGroup declared inside the goroutine is a fresh
// barrier the goroutine owns; nothing to report.
func innerBarrier() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sub sync.WaitGroup
		sub.Add(1)
		go func() {
			defer sub.Done()
			work()
		}()
		sub.Wait()
	}()
	wg.Wait()
}

// suppressed documents an Add that is ordered by a channel handshake.
func suppressed(wg *sync.WaitGroup, ready chan struct{}) {
	go func() {
		//lint:ignore wgmisuse the parent blocks on ready before calling Wait, ordering this Add ahead of it
		wg.Add(1)
		close(ready)
		defer wg.Done()
		work()
	}()
}
