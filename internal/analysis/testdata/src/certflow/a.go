// Package certflow exercises the hiding-contract taint analyzer: flows
// from certificate sources (view labels, canonical keys, Certify results)
// into observability and logging sinks, with and without sanitization.
package certflow

import (
	"fmt"
	"strings"

	"core"
	"obs"
	"view"
)

// directFieldLeak: a raw label read reaches a span attribute.
func directFieldLeak(sp *obs.Span, mu *view.View) {
	sp.SetAttr("first", mu.Labels[0]) // want "certificate-tainted value flows into observability sink obs.Span.SetAttr"
}

// keyLeak: the canonical key embeds label bytes; printing it is a leak.
func keyLeak(mu *view.View) {
	fmt.Println(mu.Key()) // want "certificate-tainted value flows into fmt.Println output"
}

// certifyLeak: prover output is a certificate assignment; an error built
// from it would cross the CLI boundary onto stderr.
func certifyLeak(p core.Prover, inst core.Instance) error {
	labels, _ := p.Certify(inst)
	return fmt.Errorf("bad labels %v", labels) // want "certificate-tainted value flows into an error message"
}

// formattedLeak: taint survives string formatting and concatenation.
func formattedLeak(sc obs.Scope, l core.Labeled) {
	detail := "labels: " + strings.Join(l.Labels, ",")
	sc.Event("dump", fmt.Sprintf("got %s", detail)) // want "certificate-tainted value flows into observability sink obs.Scope.Event"
}

// helper forwards its argument into a manifest field; certflow summarizes
// the flow and reports at the tainted call site.
func helper(m *obs.RunManifest, s string) {
	m.SetConfig("labels", s)
}

func interproceduralLeak(m *obs.RunManifest, mu *view.View) {
	helper(m, mu.Labels[0]) // want "certificate-tainted value flows into call to helper"
}

// closureLeak: a tainted callback handed to the progress reporter leaks
// on every status line.
func closureLeak(p *obs.Progress, mu *view.View) {
	p.SetExtra(func() string { return mu.Key() }) // want "certificate-tainted value flows into observability sink obs.Progress.SetExtra"
}

// panicLeak: the panic argument lands on stderr with the crash dump.
func panicLeak(mu *view.View) {
	panic("bad view " + mu.Labels[0]) // want "certificate-tainted value flows into panic"
}

// redactedFlow is the sanctioned shape: lengths and digests only.
func redactedFlow(sp *obs.Span, sc obs.Scope, mu *view.View, l core.Labeled) {
	sp.SetAttr("labels", obs.RedactStrings(mu.Labels))
	sp.SetAttr("key", mu.KeyDigest())
	sc.Event("sizes", fmt.Sprintf("n=%d first=%d", len(l.Labels), len(mu.Labels[0])))
}

// countsAreClean: numeric conversions and indices carry no bytes.
func countsAreClean(sc obs.Scope, l core.Labeled) {
	total := 0
	for i, s := range l.Labels {
		total += i + len(s)
	}
	sc.Event("total", fmt.Sprint(total))
}

// errorsAreClean: an error that got past construction carries no label
// bytes (certflow flags the construction, not the hand-off).
func errorsAreClean(p core.Prover, inst core.Instance) {
	_, err := p.Certify(inst)
	if err != nil {
		fmt.Println(err)
	}
}

// builderIsNotASink: fmt.Fprintf into a strings.Builder constructs a
// string; the taint follows the builder instead of being reported...
func builderIsNotASink(mu *view.View) string {
	var b strings.Builder
	fmt.Fprintf(&b, "key=%s", mu.Key())
	return b.String()
}

// ...and reading the builder back out re-surfaces it at a real sink.
func builderTaintResurfaces(mu *view.View) {
	var b strings.Builder
	fmt.Fprintf(&b, "key=%s", mu.Key())
	fmt.Println(b.String()) // want "certificate-tainted value flows into fmt.Println output"
}

// suppressed: the operator explicitly asked for the raw bytes.
func suppressed(mu *view.View) {
	//lint:ignore certflow fixture demonstrates a documented operator-requested dump
	fmt.Println(mu.Labels[0])
}
