// Fixture for the poolescape analyzer: pooled objects (mem.Pool,
// mem.FreeList, sync.Pool) escaping via return, package-level store, or
// caller-visible store are seeded violations; defensive copies, stores into
// the pooled object itself, and plain local use stay clean.
package poolescape

import (
	"mem"
	"sync"
)

type scratch struct {
	buf  []byte
	ints []int
}

var pool mem.Pool[scratch]

var fl mem.FreeList[scratch]

// badReturn returns the pooled object itself.
func badReturn() *scratch {
	sc := pool.Get()
	defer pool.Put(sc)
	return sc // want "pooled buffer sc is returned"
}

// badReturnField returns a buffer owned by the pooled object.
func badReturnField() []byte {
	sc := pool.Get()
	defer pool.Put(sc)
	return sc.buf // want "pooled buffer sc is returned"
}

// badFreeList leaks from the single-owner free list the same way.
func badFreeList() *scratch {
	sc := fl.Get()
	defer fl.Put(sc)
	return sc // want "pooled buffer sc is returned"
}

var leaked []byte

// badGlobalStore parks a pooled buffer in package-level state.
func badGlobalStore() {
	sc := pool.Get()
	defer pool.Put(sc)
	leaked = sc.buf // want "package-level variable leaked"
}

var leakedVar = func() []byte { return nil }()

// badGlobalIdent assigns the pooled buffer to a package-level variable
// directly.
func badGlobalIdent() {
	sc := pool.Get()
	defer pool.Put(sc)
	leakedVar = sc.buf // want "package-level variable leakedVar"
}

type holder struct{ b []byte }

var globalHolder holder

// badGlobalFieldStore stores through a field path rooted at a package-level
// variable.
func badGlobalFieldStore() {
	sc := pool.Get()
	defer pool.Put(sc)
	globalHolder.b = sc.buf // want "package-level state rooted at globalHolder"
}

// badParamStore hands the pooled buffer to caller-visible state.
func badParamStore(h *holder) {
	sc := pool.Get()
	defer pool.Put(sc)
	h.b = sc.buf // want "caller-visible state rooted at parameter h"
}

// badRecvStore is the method-receiver variant.
func (h *holder) badRecvStore() {
	sc := pool.Get()
	defer pool.Put(sc)
	h.b = sc.ints2() // no call results are tainted, so this line is clean
	h.b = sc.buf     // want "caller-visible state rooted at parameter h"
}

func (s *scratch) ints2() []byte { return nil }

// badSyncPool taints through sync.Pool and a type assertion.
func badSyncPool(p *sync.Pool) []byte {
	v := p.Get()
	b := v.(*[]byte)
	p.Put(v)
	return *b // want "pooled buffer b is returned"
}

// badGrowingAppend aliases the pooled backing array: append without fresh
// backing may return the same array.
func badGrowingAppend() []byte {
	sc := pool.Get()
	defer pool.Put(sc)
	out := append(sc.buf, 1, 2)
	return out // want "pooled buffer out is returned"
}

// badSlice returns a subslice of the pooled buffer.
func badSlice() []byte {
	sc := pool.Get()
	defer pool.Put(sc)
	return sc.buf[:2] // want "pooled buffer sc is returned"
}

// goodCopyAppend makes the canonical fresh-backing copy.
func goodCopyAppend() []byte {
	sc := pool.Get()
	defer pool.Put(sc)
	return append([]byte(nil), sc.buf...)
}

// goodEmptyLitAppend is the composite-literal spelling of the same copy.
func goodEmptyLitAppend() []int {
	sc := pool.Get()
	defer pool.Put(sc)
	return append([]int{}, sc.ints...)
}

// goodString copies via a string conversion.
func goodString() string {
	sc := pool.Get()
	defer pool.Put(sc)
	return string(sc.buf)
}

// goodMakeCopy copies into a separately allocated buffer.
func goodMakeCopy() []int {
	sc := pool.Get()
	defer pool.Put(sc)
	out := make([]int, len(sc.ints))
	copy(out, sc.ints)
	return out
}

// goodScratchStore writes into the pooled object itself — the normal
// scratch discipline.
func goodScratchStore() {
	sc := pool.Get()
	sc.buf = append(sc.buf[:0], 'a')
	pool.Put(sc)
}

// goodLocalUse reads the pooled object without leaking it.
func goodLocalUse() int {
	sc := pool.Get()
	defer pool.Put(sc)
	return len(sc.buf)
}

// goodReassign kills taint when the variable is rebound to fresh backing.
func goodReassign() []byte {
	sc := pool.Get()
	b := sc.buf
	b = make([]byte, 4)
	pool.Put(sc)
	return b
}
