// Package mem is a minimal replica of hidinglcp/internal/mem for analyzer
// fixtures: the poolescape analyzer matches recyclers structurally (a named
// Pool or FreeList type in a package named mem with a zero-argument Get), so
// the fixture only needs the shape, not the implementation.
package mem

// Pool is a typed free list over recycled objects.
type Pool[T any] struct {
	New   func() *T
	Reset func(*T)
}

// Get returns a ready-to-use object.
func (p *Pool[T]) Get() *T {
	if p.New != nil {
		return p.New()
	}
	return new(T)
}

// Put recycles x.
func (p *Pool[T]) Put(x *T) {}

// FreeList is a single-owner typed free list.
type FreeList[T any] struct {
	New   func() *T
	Reset func(*T)

	free []*T
}

// Get returns a ready-to-use object.
func (f *FreeList[T]) Get() *T {
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free = f.free[:n-1]
		return x
	}
	return new(T)
}

// Put recycles x for a later Get.
func (f *FreeList[T]) Put(x *T) { f.free = append(f.free, x) }
