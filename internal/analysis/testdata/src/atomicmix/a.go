// Package atomicmix exercises the mixed atomic/plain access analyzer.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	plain  int64
}

var global int64

// mixedField accesses hits both through sync/atomic and directly.
func mixedField(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	c.hits++ // want "non-atomic access to field hits"
	return c.hits // want "non-atomic access to field hits"
}

// mixedGlobal does the same to a package-level variable.
func mixedGlobal() int64 {
	atomic.StoreInt64(&global, 0)
	global = 7 // want "non-atomic access to variable global"
	return atomic.LoadInt64(&global)
}

// consistent uses sync/atomic for every access; nothing to report.
func consistent(c *counters) int64 {
	atomic.AddInt64(&c.misses, 1)
	return atomic.LoadInt64(&c.misses)
}

// plainOnly never touches sync/atomic; plain access is fine.
func plainOnly(c *counters) int64 {
	c.plain++
	return c.plain
}

// typed uses the typed wrappers, which make mixing inexpressible.
type typed struct {
	n atomic.Int64
}

func typedOnly(t *typed) int64 {
	t.n.Add(1)
	return t.n.Load()
}

// suppressed documents a deliberate pre-publication write.
func suppressed(c *counters) {
	//lint:ignore atomicmix the struct is not yet shared; constructor-time write precedes publication
	c.hits = 0
	atomic.AddInt64(&c.hits, 1)
}
