// Fixture for the obspurity analyzer: clock reads and calls into the obs
// package inside Decide bodies are seeded violations; the same calls
// outside Decide, time conversions, and //lint:ignore'd counting wrappers
// stay clean.
package obspurity

import (
	"time"

	"obs"
	"obs/export"
	"view"
)

// badClock times its own decision — the verdict depends on the wall clock.
type badClock struct{ budget time.Duration }

func (d *badClock) Rounds() int     { return 1 }
func (d *badClock) Anonymous() bool { return true }

func (d *badClock) Decide(mu *view.View) bool {
	t0 := time.Now() // want "Decide must not read the clock: call to time.Now"
	for _, nbs := range mu.Adj {
		_ = nbs
	}
	return time.Since(t0) < d.budget // want "Decide must not read the clock: call to time.Since"
}

// badMetrics reads and writes live counters — the verdict depends on how
// often the pipeline has run.
type badMetrics struct {
	hits *obs.Counter
	sc   obs.Scope
}

func (d *badMetrics) Rounds() int     { return 1 }
func (d *badMetrics) Anonymous() bool { return true }

func (d *badMetrics) Decide(mu *view.View) bool {
	d.hits.Inc() // want "Decide must not call into the observability layer: d.hits.Inc"
	if obs.Now() > 0 { // want "Decide must not call into the observability layer: obs.Now"
		return false
	}
	d.sc.Counter("bad").Add(1) // want "layer: d.sc.Counter [(]metrics" "layer: d.sc.Counter[(]...[)].Add"
	return d.hits.Value()%2 == 0 // want "Decide must not call into the observability layer: d.hits.Value"
}

// Function literals with the Decide signature are held to the same
// contract.
var _ = func(mu *view.View) bool {
	return time.Now().Unix()%2 == 0 // want "Decide must not read the clock: call to time.Now"
}

// suppressedWrapper mirrors core.InstrumentDecoder: counting around a
// delegated verdict is sanctioned behind an explicit directive.
type suppressedWrapper struct{ calls *obs.Counter }

func (d *suppressedWrapper) Rounds() int     { return 1 }
func (d *suppressedWrapper) Anonymous() bool { return true }

func (d *suppressedWrapper) Decide(mu *view.View) bool {
	//lint:ignore obspurity counting wrapper: the verdict is delegated unchanged
	d.calls.Inc()
	return mu.N() > 0
}

// goodPure converts durations and counts locally; neither is a clock read
// nor an obs call.
type goodPure struct{ cutoff time.Duration }

func (d *goodPure) Rounds() int     { return 1 }
func (d *goodPure) Anonymous() bool { return true }

func (d *goodPure) Decide(mu *view.View) bool {
	local := 0
	for i := 0; i < mu.N(); i++ {
		local += mu.Degree(i)
	}
	return time.Duration(local)*time.Millisecond < d.cutoff
}

// badEvents leaks its decision into the structured event log — and reads
// the rate-limit counter back into the verdict. Both directions are banned:
// the export subpackage is part of the observability layer.
type badEvents struct{ log *export.EventLog }

func (d *badEvents) Rounds() int     { return 1 }
func (d *badEvents) Anonymous() bool { return true }

func (d *badEvents) Decide(mu *view.View) bool {
	d.log.EmitLogEvent(export.LogEvent{Name: "decide"}) // want "Decide must not call into the observability layer: d.log.EmitLogEvent"
	if export.WritePrometheus() != nil { // want "Decide must not call into the observability layer: export.WritePrometheus"
		return false
	}
	return d.log.Dropped() == 0 // want "Decide must not call into the observability layer: d.log.Dropped"
}

// reportOutside is free to use the clock and metrics: it does not have the
// Decide signature, so it is outside the purity contract.
func reportOutside(c *obs.Counter) time.Time {
	c.Inc()
	_ = obs.Now()
	_ = export.NewEventLog()
	return time.Now()
}
