// Fixture for the ctxflow analyzer: misplaced context parameters,
// struct-stored contexts, and fresh context roots are seeded violations;
// first-position contexts, context-free functions, and //lint:ignore'd
// call sites stay clean. The package name "ctxflow" is in the restricted
// set, so Background/TODO calls here stand in for engine/core/nbhd/sim
// bodies.
package ctxflow

import "context"

// goodFirst threads the context in first position: clean.
func goodFirst(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// goodNoCtx takes no context at all: clean.
func goodNoCtx(n int) int { return n + 1 }

// badSecond buries the context behind another parameter.
func badSecond(n int, ctx context.Context) error { // want "context.Context must be the first parameter, not parameter 2"
	_ = n
	return ctx.Err()
}

// badGrouped hides the context at the tail of a grouped declaration.
func badGrouped(a, b int, ctx context.Context) { // want "context.Context must be the first parameter, not parameter 3"
	_, _, _ = a, b, ctx
}

// Function literals are held to the same rule.
var _ = func(n int, ctx context.Context) { // want "context.Context must be the first parameter, not parameter 2"
	_, _ = n, ctx
}

// badHolder stores a context for later: the context outlives the call it
// was scoped to.
type badHolder struct {
	ctx context.Context // want "context.Context must not be stored in a struct field"
	n   int
}

// goodJob carries only data; its Run method takes the context.
type goodJob struct{ name string }

func (j goodJob) run(ctx context.Context) error { return ctx.Err() }

// badRoot mints fresh roots inside a restricted package, detaching the
// work from the caller's deadline.
func badRoot() context.Context {
	_ = context.TODO() // want "context.TODO must not be called in package ctxflow"
	return context.Background() // want "context.Background must not be called in package ctxflow"
}

// goodWithCancel derives from the caller's context: deriving is fine,
// only minting roots is banned.
func goodWithCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// suppressedRoot mirrors a sanctioned root behind an explicit directive.
func suppressedRoot() context.Context {
	//lint:ignore ctxflow test scaffolding needs a detached root
	return context.Background()
}
