package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CertflowAnalyzer enforces the hiding contract (paper Section 2.4) as a
// taint discipline: certificate bytes must never reach an observability or
// logging sink. The certification of k-coloring is *hiding* — certificates
// reveal nothing about the witness coloring beyond its existence — and that
// guarantee dies the moment a label string is interpolated into a span
// attribute, a run-manifest field, a progress line, an error message, or a
// stderr print, because all of those outlive the run and ship as CI
// artifacts.
//
// Taint sources (certificate-derived values):
//
//   - reads of the Labels field of view.View or core.Labeled,
//   - results of the canonical serializations view.View.Key and BinKey
//     (both embed the raw label bytes),
//   - results of core Prover.Certify calls (the certificate assignment).
//
// Sinks (observable surfaces):
//
//   - any call into a package named "obs" — counters, gauges, span
//     attributes, events, manifest config, progress callbacks,
//   - the printing fmt family (Print/Println/Printf/Fprint*) and package
//     log,
//   - error construction (fmt.Errorf, errors.New) — errors cross the CLI
//     boundary onto stderr,
//   - panic — its argument lands on stderr with the crash dump.
//
// Sanitizers (flows through them are clean): the obs.Redact* helpers,
// view.View.KeyDigest, the builtin len, and any conversion to a numeric
// type — lengths, counts, and one-way digests are exactly the residue the
// hiding contract permits an observer to see.
//
// Taint propagates through assignments, field and index reads, string
// concatenation, the string-manipulation stdlib (fmt.Sprint*, strings,
// bytes, strconv), composite literals, range statements, closures, and —
// interprocedurally — same-package function calls: per-function summaries
// record which parameters flow to results or onward into sinks, and the
// summaries themselves compose through certflowCallDepth levels of calls,
// which bounds the analysis (a flow buried deeper than the bound is the
// dynamic regression tests' problem, not this analyzer's).
var CertflowAnalyzer = &Analyzer{
	Name: "certflow",
	Doc:  "report certificate-tainted values flowing into observability, logging, or error-message sinks",
	Run:  runCertflow,
}

// certflowCallDepth bounds interprocedural summary composition: a tainted
// value is tracked through at most this many levels of same-package calls.
const certflowCallDepth = 4

// taint masks: bit 0 marks certificate-derived values; bit i+1 marks values
// derived from parameter i of the function under summary.
const certSourceBit uint64 = 1

func paramBit(i int) uint64 {
	if i >= 62 {
		return 0
	}
	return 1 << uint(i+1)
}

// fnSummary is the interprocedural abstraction of one function: which
// parameters (receiver first) reach a result, which reach a sink inside the
// callee (with a human-readable chain), and whether the body taints its
// results from certificate sources regardless of arguments.
type fnSummary struct {
	paramRet  uint64
	paramSink []string
	retSource bool
}

type certflow struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*fnSummary
	// globals holds taint for package-level variables initialized from
	// certificate sources.
	globals map[types.Object]uint64
	// reported dedupes diagnostics across the fixpoint's final walk.
	reported map[string]bool
	report   bool
}

func runCertflow(pass *Pass) error {
	cf := &certflow{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		sums:     map[*types.Func]*fnSummary{},
		globals:  map[types.Object]uint64{},
		reported: map[string]bool{},
	}
	var fns []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if obj, ok := pass.Info.Defs[d.Name].(*types.Func); ok && d.Body != nil {
					cf.decls[obj] = d
					fns = append(fns, d)
				}
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					cf.seedGlobals(d)
				}
			}
		}
	}
	// Deterministic iteration order for the summary fixpoint.
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	// Summary fixpoint: each round composes summaries one call level
	// deeper; certflowCallDepth rounds bound the interprocedural horizon.
	for round := 0; round < certflowCallDepth; round++ {
		changed := false
		for _, fn := range fns {
			obj := cf.pass.Info.Defs[fn.Name].(*types.Func)
			sum := cf.analyzeFunc(fn)
			if !summariesEqual(cf.sums[obj], sum) {
				cf.sums[obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass with the stabilized summaries.
	cf.report = true
	for _, fn := range fns {
		cf.analyzeFunc(fn)
	}
	return nil
}

func summariesEqual(a, b *fnSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.paramRet != b.paramRet || a.retSource != b.retSource || len(a.paramSink) != len(b.paramSink) {
		return false
	}
	for i := range a.paramSink {
		if a.paramSink[i] != b.paramSink[i] {
			return false
		}
	}
	return true
}

// seedGlobals marks package-level variables whose initializers draw from
// certificate sources.
func (cf *certflow) seedGlobals(d *ast.GenDecl) {
	env := &taintEnv{cf: cf, vars: map[types.Object]uint64{}, fields: map[types.Object]map[string]uint64{}, sum: &fnSummary{}}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, val := range vs.Values {
			if env.exprMask(val)&certSourceBit != 0 && i < len(vs.Names) {
				if obj := cf.pass.Info.Defs[vs.Names[i]]; obj != nil {
					cf.globals[obj] = certSourceBit
				}
			}
		}
	}
}

// analyzeFunc runs the intra-procedural taint walk over one function to a
// local fixpoint and returns its summary. Diagnostics are emitted only when
// cf.report is set (the final pass, after summaries stabilized).
func (cf *certflow) analyzeFunc(fn *ast.FuncDecl) *fnSummary {
	env := &taintEnv{cf: cf, vars: map[types.Object]uint64{}, fields: map[types.Object]map[string]uint64{}}
	params := funcParams(cf.pass.Info, fn)
	env.sum = &fnSummary{paramSink: make([]string, len(params))}
	env.params = params
	for i, p := range params {
		if p != nil {
			env.vars[p] = paramBit(i)
		}
	}
	// Local fixpoint: loops carry taint backwards, so walk until the
	// variable map stops growing (masks only ever grow — termination).
	for iter := 0; iter < 4; iter++ {
		before := env.snapshot()
		env.walkStmt(fn.Body)
		if env.snapshot() == before {
			break
		}
	}
	if cf.report {
		env.reporting = true
		env.walkStmt(fn.Body)
		env.reporting = false
	}
	return env.sum
}

// funcParams lists a function's taint-tracked parameters: the receiver (if
// any) first, then the declared parameters.
func funcParams(info *types.Info, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, name := range f.Names {
				out = append(out, info.Defs[name])
			}
			if len(f.Names) == 0 {
				out = append(out, nil)
			}
		}
	}
	for _, f := range fn.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// taintEnv is the per-function (and shared-with-closures) taint state.
// Taint is field-sensitive at one level: an assignment to s.f taints the
// key (s, "f"), not all of s, so a builder whose cache field holds label
// bytes can still put its name field into a diagnostic. A read of s.f sees
// the union of (s, "f") and whole-value taint on s (for structs copied
// from tainted values wholesale).
type taintEnv struct {
	cf        *certflow
	vars      map[types.Object]uint64
	fields    map[types.Object]map[string]uint64
	params    []types.Object
	sum       *fnSummary
	reporting bool
}

func (e *taintEnv) snapshot() uint64 {
	var h uint64 = uint64(len(e.vars))
	for _, m := range e.vars {
		h += m * 31
	}
	for _, fm := range e.fields {
		h += uint64(len(fm)) * 17
		for _, m := range fm {
			h += m * 13
		}
	}
	return h
}

// assign merges mask into the root object of an assignable expression.
// Error-typed destinations stay clean: certflow flags every construction of
// an error from tainted bytes (fmt.Errorf, errors.New), so an error value
// that got past construction carries no label bytes by induction — tainting
// it again would re-report every flow at each hand-off of the same error.
func (e *taintEnv) assign(lhs ast.Expr, mask uint64) {
	if mask == 0 {
		return
	}
	root := lhsRoot(lhs)
	if root == nil {
		return
	}
	obj := e.cf.pass.Info.Defs[root]
	if obj == nil {
		obj = e.cf.pass.Info.Uses[root]
	}
	if obj == nil {
		return
	}
	if isErrorType(obj.Type()) {
		return
	}
	// Field-sensitive case: peel indexing/dereferencing down to the
	// innermost selector and key the taint on (base object, field name).
	inner := ast.Unparen(lhs)
	for {
		switch x := inner.(type) {
		case *ast.IndexExpr:
			inner = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			inner = ast.Unparen(x.X)
			continue
		case *ast.SliceExpr:
			inner = ast.Unparen(x.X)
			continue
		}
		break
	}
	if sel, ok := inner.(*ast.SelectorExpr); ok {
		fm := e.fields[obj]
		if fm == nil {
			fm = map[string]uint64{}
			e.fields[obj] = fm
		}
		fm[sel.Sel.Name] |= mask
		return
	}
	e.vars[obj] |= mask
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func (e *taintEnv) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if st == nil {
			return
		}
		for _, s2 := range st.List {
			e.walkStmt(s2)
		}
	case *ast.ExprStmt:
		e.exprMask(st.X)
	case *ast.AssignStmt:
		if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
			m := e.exprMask(st.Rhs[0])
			for _, l := range st.Lhs {
				e.assign(l, m)
			}
			return
		}
		for i, r := range st.Rhs {
			m := e.exprMask(r)
			if i < len(st.Lhs) {
				e.assign(st.Lhs[i], m)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, val := range vs.Values {
						m := e.exprMask(val)
						if i < len(vs.Names) {
							e.assign(vs.Names[i], m)
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			m := e.exprMask(r)
			e.sum.paramRet |= m &^ certSourceBit
			if m&certSourceBit != 0 {
				e.sum.retSource = true
			}
		}
	case *ast.IfStmt:
		e.walkStmt(st.Init)
		e.exprMask(st.Cond)
		e.walkStmt(st.Body)
		e.walkStmt(st.Else)
	case *ast.ForStmt:
		e.walkStmt(st.Init)
		if st.Cond != nil {
			e.exprMask(st.Cond)
		}
		e.walkStmt(st.Post)
		e.walkStmt(st.Body)
	case *ast.RangeStmt:
		m := e.exprMask(st.X)
		// An integer range key is an index — a count, sanctioned residue
		// like len. Non-numeric keys (ranging over a map keyed by tainted
		// strings) stay tainted. Values always carry the element bytes.
		if st.Key != nil && !isNumericOrBool(e.cf.pass.Info.TypeOf(st.Key)) {
			e.assign(st.Key, m)
		}
		if st.Value != nil {
			e.assign(st.Value, m)
		}
		e.walkStmt(st.Body)
	case *ast.SwitchStmt:
		e.walkStmt(st.Init)
		if st.Tag != nil {
			e.exprMask(st.Tag)
		}
		e.walkStmt(st.Body)
	case *ast.TypeSwitchStmt:
		e.walkStmt(st.Init)
		e.walkStmt(st.Assign)
		e.walkStmt(st.Body)
	case *ast.CaseClause:
		for _, x := range st.List {
			e.exprMask(x)
		}
		for _, s2 := range st.Body {
			e.walkStmt(s2)
		}
	case *ast.SelectStmt:
		e.walkStmt(st.Body)
	case *ast.CommClause:
		e.walkStmt(st.Comm)
		for _, s2 := range st.Body {
			e.walkStmt(s2)
		}
	case *ast.SendStmt:
		e.exprMask(st.Chan)
		e.exprMask(st.Value)
	case *ast.GoStmt:
		e.exprMask(st.Call)
	case *ast.DeferStmt:
		e.exprMask(st.Call)
	case *ast.LabeledStmt:
		e.walkStmt(st.Stmt)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// exprMask computes the taint mask of an expression, checking every call it
// contains against the sink list exactly once per walk.
func (e *taintEnv) exprMask(x ast.Expr) uint64 {
	switch ex := x.(type) {
	case nil:
		return 0
	case *ast.BasicLit:
		return 0
	case *ast.Ident:
		obj := e.cf.pass.Info.Uses[ex]
		if obj == nil {
			obj = e.cf.pass.Info.Defs[ex]
		}
		if obj == nil {
			return 0
		}
		return e.vars[obj] | e.cf.globals[obj]
	case *ast.SelectorExpr:
		if e.isCertSourceSel(ex) {
			return certSourceBit
		}
		m := e.exprMask(ex.X)
		if root := lhsRoot(ex); root != nil {
			obj := e.cf.pass.Info.Uses[root]
			if obj == nil {
				obj = e.cf.pass.Info.Defs[root]
			}
			if obj != nil {
				m |= e.fields[obj][ex.Sel.Name]
			}
		}
		return m
	case *ast.ParenExpr:
		return e.exprMask(ex.X)
	case *ast.StarExpr:
		return e.exprMask(ex.X)
	case *ast.UnaryExpr:
		return e.exprMask(ex.X)
	case *ast.IndexExpr:
		e.exprMask(ex.Index)
		return e.exprMask(ex.X)
	case *ast.SliceExpr:
		return e.exprMask(ex.X)
	case *ast.TypeAssertExpr:
		return e.exprMask(ex.X)
	case *ast.BinaryExpr:
		l, r := e.exprMask(ex.X), e.exprMask(ex.Y)
		if ex.Op == token.ADD {
			return l | r
		}
		return 0
	case *ast.CompositeLit:
		var m uint64
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= e.exprMask(kv.Value)
				continue
			}
			m |= e.exprMask(el)
		}
		return m
	case *ast.KeyValueExpr:
		return e.exprMask(ex.Value)
	case *ast.FuncLit:
		// Closures share the enclosing taint state; the literal's mask is
		// the union of its return values, so a tainted callback handed to a
		// sink (Progress.SetExtra) is caught at the hand-off.
		sub := &taintEnv{cf: e.cf, vars: e.vars, fields: e.fields, params: e.params, sum: e.sum, reporting: e.reporting}
		lit := &litReturns{env: sub}
		lit.walk(ex.Body)
		return lit.mask
	case *ast.CallExpr:
		return e.callMask(ex)
	}
	return 0
}

// litReturns walks a function literal's body with the shared environment,
// unioning the masks of its return expressions.
type litReturns struct {
	env  *taintEnv
	mask uint64
}

func (l *litReturns) walk(body *ast.BlockStmt) {
	prevSum := l.env.sum
	// Returns inside the literal belong to the literal, not the enclosing
	// function's summary: intercept them with a scratch summary.
	scratch := &fnSummary{paramSink: prevSum.paramSink}
	l.env.sum = scratch
	l.env.walkStmt(body)
	l.env.sum = prevSum
	l.mask = scratch.paramRet
	if scratch.retSource {
		l.mask |= certSourceBit
	}
}

// callMask sink-checks and propagates one call expression.
func (e *taintEnv) callMask(call *ast.CallExpr) uint64 {
	info := e.cf.pass.Info
	// Type conversions: numeric results launder nothing worth reporting
	// (lengths and counts are sanctioned); stringish conversions carry the
	// bytes along.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var m uint64
		for _, a := range call.Args {
			m |= e.exprMask(a)
		}
		if isNumericOrBool(tv.Type) {
			return 0
		}
		return m
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max":
				for _, a := range call.Args {
					e.exprMask(a)
				}
				return 0
			case "append":
				var m uint64
				for _, a := range call.Args {
					m |= e.exprMask(a)
				}
				return m
			case "panic":
				var m uint64
				for _, a := range call.Args {
					m |= e.exprMask(a)
				}
				if m&certSourceBit != 0 {
					e.reportSink(call.Pos(), "panic (the argument lands on stderr with the crash dump)")
				}
				e.recordParamSink(m, "panic")
				return 0
			default:
				for _, a := range call.Args {
					e.exprMask(a)
				}
				return 0
			}
		}
	}

	argMasks := make([]uint64, len(call.Args))
	var union uint64
	for i, a := range call.Args {
		argMasks[i] = e.exprMask(a)
		union |= argMasks[i]
	}

	// fmt.Fprint* into an in-memory buffer is string construction, not
	// observation: taint the builder and move on. (Fprint to anything else
	// — os.Stderr, a file, an unknown io.Writer — is a sink below.)
	if path := calleePkgPath(info, call); path == "fmt" && len(call.Args) > 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Fprint") {
			if isMemoryWriter(info.TypeOf(call.Args[0])) {
				dst := ast.Unparen(call.Args[0])
				if un, ok := dst.(*ast.UnaryExpr); ok && un.Op == token.AND {
					dst = un.X
				}
				e.assign(dst, union)
				return 0
			}
		}
	}

	// Sanitizers terminate flows: redacted residue is the permitted
	// observable.
	if e.isSanitizerCall(call) {
		return 0
	}

	// Certificate sources.
	if e.isCertSourceCall(call) {
		return certSourceBit | union
	}

	// Sinks.
	if desc, ok := e.sinkDesc(call); ok {
		if union&certSourceBit != 0 {
			e.reportSink(call.Pos(), desc)
		}
		e.recordParamSink(union, desc)
		// Errors built from tainted parts stay tainted so a later print of
		// the same error is not double-reported but a stored-then-emitted
		// error still carries its mask.
		return union
	}

	// Same-package calls: compose the callee's summary.
	if callee := e.calleeFunc(call); callee != nil {
		if sum := e.cf.sums[callee]; sum != nil {
			masks := argMasks
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if _, isMethod := info.Selections[sel]; isMethod {
					masks = append([]uint64{e.exprMask(sel.X)}, argMasks...)
				}
			}
			var out uint64
			if sum.retSource {
				out |= certSourceBit
			}
			for i, m := range masks {
				if i >= len(sum.paramSink) {
					break
				}
				if m == 0 {
					continue
				}
				if sum.paramRet&paramBit(i) != 0 {
					out |= m
				}
				if chain := sum.paramSink[i]; chain != "" {
					if m&certSourceBit != 0 {
						e.reportSink(call.Pos(), "call to "+callee.Name()+", which forwards it to "+chain)
					}
					e.recordParamSink(m, callee.Name()+" → "+chain)
				}
			}
			return out
		}
	}

	// Known cross-package propagators: the string-manipulation stdlib.
	if path := calleePkgPath(info, call); path != "" {
		switch path {
		case "strings", "bytes", "strconv", "fmt", "unicode/utf8", "encoding/hex", "encoding/base64", "encoding/json":
			// The scanning family writes parsed pieces of its input through
			// pointer arguments: a color scanned out of a certificate is
			// witness data and stays tainted.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && strings.Contains(sel.Sel.Name, "Scan") {
				for _, a := range call.Args {
					if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && un.Op == token.AND {
						e.assign(un.X, union)
					}
				}
			}
			return union
		}
		return 0
	}

	// Unknown method call: a stringish result of a tainted receiver stays
	// tainted (err.Error(), strings.Builder.String(), ...).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[call]; ok && isStringish(tv.Type) {
			return e.exprMask(sel.X) | union
		}
		e.exprMask(sel.X)
	}
	return 0
}

// recordParamSink notes in the function summary that the parameters in mask
// reach the described sink, so callers one level up inherit the flow.
func (e *taintEnv) recordParamSink(mask uint64, desc string) {
	for i := range e.sum.paramSink {
		if mask&paramBit(i) != 0 && e.sum.paramSink[i] == "" {
			e.sum.paramSink[i] = desc
		}
	}
}

func (e *taintEnv) reportSink(pos token.Pos, desc string) {
	if !e.reporting {
		return
	}
	p := e.cf.pass.Fset.Position(pos)
	key := p.String() + "|" + desc
	if e.cf.reported[key] {
		return
	}
	e.cf.reported[key] = true
	e.cf.pass.Reportf(pos,
		"certificate-tainted value flows into %s; the hiding contract forbids label bytes in observable output — redact to lengths or digests (obs.RedactString, view.KeyDigest)", desc)
}

// isCertSourceSel reports whether sel reads the Labels field of view.View
// or core.Labeled.
func (e *taintEnv) isCertSourceSel(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Labels" {
		return false
	}
	t := e.cf.pass.Info.TypeOf(sel.X)
	return isCertCarrier(t)
}

// isCertCarrier reports whether t (possibly behind a pointer) is view.View
// or core.Labeled — the two types that hold raw certificate assignments.
func isCertCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Name() == "view" && obj.Name() == "View":
		return true
	case obj.Pkg().Name() == "core" && obj.Name() == "Labeled":
		return true
	}
	return false
}

// isCertSourceCall reports calls whose results embed certificate bytes:
// view.View.Key/BinKey and any core Certify method.
func (e *taintEnv) isCertSourceCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := e.cf.pass.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Name() == "view" && (fn.Name() == "Key" || fn.Name() == "BinKey"):
		return isCertCarrier(e.cf.pass.Info.TypeOf(sel.X))
	case fn.Pkg().Name() == "core" && fn.Name() == "Certify":
		return true
	}
	return false
}

// isSanitizerCall reports the sanctioned redactors: obs.Redact*, the len
// builtin (handled earlier), and view.View.KeyDigest.
func (e *taintEnv) isSanitizerCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	info := e.cf.pass.Info
	if pkgIdent, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[pkgIdent].(*types.PkgName); ok {
			return pkgName.Imported().Name() == "obs" && strings.HasPrefix(sel.Sel.Name, "Redact")
		}
	}
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Name() == "view" && fn.Name() == "KeyDigest" {
				return true
			}
			if fn.Pkg().Name() == "obs" && strings.HasPrefix(fn.Name(), "Redact") {
				return true
			}
		}
	}
	return false
}

// sinkDesc classifies a call as an observability/logging sink.
func (e *taintEnv) sinkDesc(call *ast.CallExpr) (string, bool) {
	info := e.cf.pass.Info
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// pkg.Func form.
	if pkgIdent, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[pkgIdent].(*types.PkgName); ok {
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
				return "", false
			}
			path := pkgName.Imported().Path()
			name := sel.Sel.Name
			switch {
			case pkgName.Imported().Name() == "obs":
				return "observability sink obs." + name, true
			case path == "fmt" && isFmtPrint(name):
				return "fmt." + name + " output", true
			case path == "fmt" && name == "Errorf":
				return "an error message (fmt.Errorf)", true
			case path == "errors" && name == "New":
				return "an error message (errors.New)", true
			case path == "log":
				return "log." + name + " output", true
			}
			return "", false
		}
	}
	// Method form: any method declared in a package named "obs" is an
	// observability sink (SetAttr, Event, SetConfig, SetExtra, ...).
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Name() == "obs" {
			if strings.HasPrefix(fn.Name(), "Redact") {
				return "", false
			}
			recv := ""
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				t := sig.Recv().Type()
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					recv = named.Obj().Name() + "."
				}
			}
			return "observability sink obs." + recv + fn.Name(), true
		}
	}
	return "", false
}

// calleeFunc resolves a call to a function or method declared in the
// package under analysis, for summary lookup.
func (e *taintEnv) calleeFunc(call *ast.CallExpr) *types.Func {
	info := e.cf.pass.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if _, declared := e.cf.decls[fn]; declared {
				return fn
			}
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				if _, declared := e.cf.decls[fn]; declared {
					return fn
				}
			}
		}
	}
	return nil
}

// calleePkgPath returns the import path of a pkg.Func call's package, or "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return ""
	}
	if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
		return ""
	}
	return pkgName.Imported().Path()
}

// isMemoryWriter reports whether t is *strings.Builder or *bytes.Buffer —
// the in-memory accumulators that make Fprint a propagator, not a sink.
func isMemoryWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	}
	return false
}

func isFmtPrint(name string) bool {
	switch name {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
		return true
	}
	return false
}

func isNumericOrBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}

// isStringish reports types that carry bytes an observer could read:
// strings, byte slices, and string slices.
func isStringish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		if eb, ok := u.Elem().Underlying().(*types.Basic); ok {
			return eb.Kind() == types.Byte || eb.Info()&types.IsString != 0
		}
	}
	return false
}
