package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load resolves the package patterns (e.g. "./...") with `go list` relative
// to dir and type-checks every matched package using only the standard
// library: files are parsed with go/parser and checked with go/types
// backed by the source importer, so no export data or external modules are
// required. Test files are excluded — the determinism contract governs
// library code; tests are free to use ambient randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to the go tool for package resolution (the one part of
// loading the standard library cannot do by itself).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from its file list.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	names := append([]string(nil), goFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// newInfo allocates the type-checker result maps the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
