package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderAnalyzer reports the classic map-iteration nondeterminism bug:
// a `for range` over a map whose body feeds an order-sensitive accumulator
// — appending to a slice or concatenating onto a string declared outside
// the loop — with no subsequent sort of that accumulator in the enclosing
// function. Go randomizes map iteration order, so such code returns a
// differently-ordered result on every run, which poisons canonical view
// keys, caches, and golden outputs.
//
// Order-insensitive sinks (writes into another map, numeric accumulation,
// boolean flags) are not flagged. A call after the loop to sort.* or
// slices.Sort* with the accumulator as an argument suppresses the report,
// matching the repository idiom "collect keys, then sort".
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "report map iteration whose order flows into a slice or string without an intervening sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fnBody, ok := functionBody(n)
			if !ok || fnBody == nil {
				return true
			}
			checkFunctionMapLoops(pass, fnBody)
			return true
		})
	}
	return nil
}

// functionBody extracts the body of a function declaration or literal.
func functionBody(n ast.Node) (*ast.BlockStmt, bool) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body, true
	case *ast.FuncLit:
		return fn.Body, true
	}
	return nil, false
}

// checkFunctionMapLoops scans one function body for map-range loops with
// order-sensitive accumulators that are never sorted afterwards.
func checkFunctionMapLoops(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, nested := n.(*ast.FuncLit); nested {
			// Function literals get their own scan; their sorts cannot
			// vouch for our loops and vice versa.
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Info.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		for _, acc := range orderSensitiveAccumulators(pass, rng) {
			if !sortedAfter(pass, body, acc, rng.End()) {
				pass.Reportf(rng.Pos(),
					"map iteration order flows into %s %q without a subsequent sort; map order is nondeterministic",
					accKind(acc), acc.Name())
			}
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// accKind names the accumulator's shape for the diagnostic.
func accKind(v *types.Var) string {
	if basic, ok := v.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		return "string"
	}
	return "slice"
}

// orderSensitiveAccumulators returns the outside-declared slice and string
// variables that the loop body extends in iteration order.
func orderSensitiveAccumulators(pass *Pass, rng *ast.RangeStmt) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	record := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			v := outerVar(pass, lhs, rng)
			if v == nil {
				continue
			}
			switch {
			case isAppendTo(pass, assign, i, v):
				record(v)
			case isStringConcat(pass, assign, i, v):
				record(v)
			}
		}
		return true
	})
	return out
}

// outerVar resolves lhs to a variable declared before (outside) the range
// statement, or nil.
func outerVar(pass *Pass, lhs ast.Expr, rng *ast.RangeStmt) *types.Var {
	ident, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[ident]
	if obj == nil {
		obj = pass.Info.Defs[ident]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pos() >= rng.Pos() {
		return nil
	}
	return v
}

// isAppendTo reports whether assign's i-th position is `v = append(v, ...)`
// with v of slice type.
func isAppendTo(pass *Pass, assign *ast.AssignStmt, i int, v *types.Var) bool {
	if assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE {
		return false
	}
	if i >= len(assign.Rhs) && len(assign.Rhs) != 1 {
		return false
	}
	rhsIdx := i
	if len(assign.Rhs) == 1 {
		rhsIdx = 0
	}
	call, ok := assign.Rhs[rhsIdx].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	builtin, ok := pass.Info.Uses[fun].(*types.Builtin)
	if !ok || builtin.Name() != "append" || len(call.Args) == 0 {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	return ok && pass.Info.Uses[base] == types.Object(v)
}

// isStringConcat reports whether assign's i-th position grows string v:
// `v += x` or `v = v + x`.
func isStringConcat(pass *Pass, assign *ast.AssignStmt, i int, v *types.Var) bool {
	basic, ok := v.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	if assign.Tok == token.ADD_ASSIGN {
		return true
	}
	if assign.Tok != token.ASSIGN || i >= len(assign.Rhs) {
		return false
	}
	bin, ok := assign.Rhs[i].(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	root := lhsRoot(bin.X)
	return root != nil && pass.Info.Uses[root] == types.Object(v)
}

// sortedAfter reports whether, anywhere in the enclosing function after the
// loop, the accumulator is passed to a sorting function (sort.* or
// slices.Sort*).
func sortedAfter(pass *Pass, body *ast.BlockStmt, v *types.Var, after token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			root := lhsRoot(arg)
			if root != nil && pass.Info.Uses[root] == types.Object(v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether call invokes a function from package sort or a
// Sort* function from package slices.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort"
	}
	return false
}
