package analysis_test

import (
	"testing"

	"hidinglcp/internal/analysis"
	"hidinglcp/internal/analysis/analysistest"
)

// Each analyzer's fixture seeds at least one violation per rule (the
// `// want` lines) and several clean constructions that must stay quiet.

func TestDecoderPurity(t *testing.T) {
	analysistest.Run(t, "testdata", "decoderpurity", analysis.DecoderPurityAnalyzer)
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", "maporder", analysis.MapOrderAnalyzer)
}

func TestNondet(t *testing.T) {
	analysistest.Run(t, "testdata", "nondet", analysis.NondetAnalyzer)
}

func TestAnonID(t *testing.T) {
	analysistest.Run(t, "testdata", "anonid", analysis.AnonIDAnalyzer)
}

func TestObsPurity(t *testing.T) {
	analysistest.Run(t, "testdata", "obspurity", analysis.ObsPurityAnalyzer)
}

func TestCertflow(t *testing.T) {
	analysistest.Run(t, "testdata", "certflow", analysis.CertflowAnalyzer)
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", "atomicmix", analysis.AtomicMixAnalyzer)
}

func TestMutexCopy(t *testing.T) {
	analysistest.Run(t, "testdata", "mutexcopy", analysis.MutexCopyAnalyzer)
}

func TestLoopCapture(t *testing.T) {
	analysistest.Run(t, "testdata", "loopcapture", analysis.LoopCaptureAnalyzer)
}

func TestWGMisuse(t *testing.T) {
	analysistest.Run(t, "testdata", "wgmisuse", analysis.WGMisuseAnalyzer)
}

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, "testdata", "poolescape", analysis.PoolEscapeAnalyzer)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", "ctxflow", analysis.CtxFlowAnalyzer)
}

func TestAllListsEveryAnalyzer(t *testing.T) {
	names := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"decoderpurity", "maporder", "nondet", "anonid", "obspurity",
		"certflow", "atomicmix", "mutexcopy", "loopcapture", "wgmisuse",
		"poolescape", "ctxflow",
	} {
		if !names[want] {
			t.Errorf("All() is missing analyzer %q", want)
		}
	}
}
