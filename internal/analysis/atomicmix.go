package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMixAnalyzer reports variables and struct fields that are accessed
// both through sync/atomic operations and through plain loads or stores in
// the same package. Mixing the two voids every guarantee the atomic side
// was bought for: the plain access races with the atomic one, and the race
// detector only catches the schedules it happens to see. The parallel
// pipelines (work-stealing shard builders, the lock-striped interner, the
// parallel soundness search) coordinate exclusively through typed atomics
// today; this analyzer keeps any future function-style atomic
// (atomic.AddInt64(&x, ...)) from acquiring a non-atomic twin.
//
// Every access to a location that is the &-argument of some sync/atomic
// call must itself be such an argument. Initialization through a composite
// literal or constructor counts as an access: publish the value before the
// goroutines start instead, or use the typed atomic wrappers
// (atomic.Int64 and friends), whose methods make non-atomic access
// inexpressible.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "report plain accesses to variables that are elsewhere accessed through sync/atomic",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: find every object whose address feeds a sync/atomic call,
	// remembering the positions of those sanctioned uses.
	atomicObjs := map[types.Object]string{}
	sanctioned := map[token.Pos]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj, use := accessedObject(pass.Info, un.X)
				if obj == nil {
					continue
				}
				atomicObjs[obj] = objLabel(obj)
				sanctioned[use] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other use of those objects is a plain, racy access.
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var findings []finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, tracked := atomicObjs[obj]; tracked && !sanctioned[id.Pos()] {
				findings = append(findings, finding{id.Pos(), obj})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos,
			"non-atomic access to %s, which is accessed with sync/atomic elsewhere in this package; every access must go through sync/atomic (or switch the field to a typed atomic like atomic.Int64)",
			atomicObjs[f.obj])
	}
	return nil
}

// isAtomicPkgCall reports whether call invokes a function from sync/atomic
// (the function-style API; typed-atomic methods need no address-taking).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return false
	}
	return pkgName.Imported().Path() == "sync/atomic"
}

// accessedObject resolves the variable or field named by an addressable
// expression (x, s.f, p.f after any parens) together with the position of
// the resolving identifier.
func accessedObject(info *types.Info, expr ast.Expr) (types.Object, token.Pos) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e], e.Pos()
	case *ast.SelectorExpr:
		return info.Uses[e.Sel], e.Sel.Pos()
	case *ast.IndexExpr:
		return accessedObject(info, e.X)
	}
	return nil, token.NoPos
}

// objLabel renders an object for diagnostics: fields as Type.field,
// variables by name.
func objLabel(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	return "variable " + obj.Name()
}
