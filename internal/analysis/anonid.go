package analysis

import (
	"go/ast"
	"go/types"
)

// AnonIDAnalyzer enforces the anonymity half of the decoder contract: a
// decoder that declares itself identifier-oblivious — its Anonymous()
// method is the constant `return true` — must not read view identifiers in
// its Decide method. Identifier reads it reports:
//
//   - selecting the IDs field of a view value, and
//   - calling the view's LocalNodeWithID method.
//
// The anonymity and hiding theorems quantify over identifier assignments;
// an "anonymous" decoder that peeks at IDs silently narrows those
// quantifiers to the assignments exercised in tests. The same rule covers
// core.NewDecoder(r, true, fn): a function literal passed with the
// anonymous flag literally true is checked like an anonymous Decide.
var AnonIDAnalyzer = &Analyzer{
	Name: "anonid",
	Doc:  "report anonymous decoders (Anonymous() == true) whose Decide reads view identifiers",
	Run:  runAnonID,
}

func runAnonID(pass *Pass) error {
	anonTypes := constTrueAnonymousTypes(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if isDecideMethod(pass.Info, fn) && fn.Body != nil {
					if t := receiverNamedType(pass.Info, fn); t != nil && anonTypes[t] {
						reportIDReads(pass, fn.Body)
					}
				}
			case *ast.CallExpr:
				if lit, ok := anonymousNewDecoderLiteral(pass, fn); ok {
					reportIDReads(pass, lit.Body)
				}
			}
			return true
		})
	}
	return nil
}

// constTrueAnonymousTypes collects the named types whose Anonymous() bool
// method body is exactly `return true`.
func constTrueAnonymousTypes(pass *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != "Anonymous" || fn.Body == nil {
				continue
			}
			if len(fn.Body.List) != 1 {
				continue
			}
			ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			ident, ok := ret.Results[0].(*ast.Ident)
			if !ok || ident.Name != "true" {
				continue
			}
			if t := receiverNamedType(pass.Info, fn); t != nil {
				out[t] = true
			}
		}
	}
	return out
}

// receiverNamedType resolves a method's receiver to its named type's
// TypeName, unwrapping one pointer.
func receiverNamedType(info *types.Info, fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// anonymousNewDecoderLiteral matches core.NewDecoder(r, true, func(...){}),
// returning the function literal when the anonymous flag is literally true.
func anonymousNewDecoderLiteral(pass *Pass, call *ast.CallExpr) (*ast.FuncLit, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewDecoder" || len(call.Args) != 3 {
		return nil, false
	}
	fnObj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fnObj.Pkg() == nil || fnObj.Pkg().Name() != "core" {
		return nil, false
	}
	flag, ok := call.Args[1].(*ast.Ident)
	if !ok || flag.Name != "true" {
		return nil, false
	}
	lit, ok := call.Args[2].(*ast.FuncLit)
	if !ok {
		return nil, false
	}
	return lit, true
}

// reportIDReads flags identifier reads inside one anonymous Decide body.
func reportIDReads(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if !isViewPtr(t) && !isViewValue(t) {
			return true
		}
		switch sel.Sel.Name {
		case "IDs":
			pass.Reportf(sel.Pos(), "anonymous decoder reads view identifiers (%s.IDs); Anonymous() promises identifier-obliviousness", exprString(sel.X))
		case "LocalNodeWithID":
			pass.Reportf(sel.Pos(), "anonymous decoder resolves identifiers (%s.LocalNodeWithID); Anonymous() promises identifier-obliviousness", exprString(sel.X))
		}
		return true
	})
}

// isViewValue reports whether t is the named view.View value type.
func isViewValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "View" && obj.Pkg() != nil && obj.Pkg().Name() == "view"
}
