// Package analysis is a dependency-free static-analysis framework plus the
// lcplint analyzers that enforce the repository's decoder determinism
// contract (core.Decoder: "implementations must be pure functions of the
// view"). It mirrors the golang.org/x/tools/go/analysis API surface —
// Analyzer, Pass, Diagnostic — but is built entirely on the standard
// library's go/ast, go/parser, and go/types so the linter works offline
// with no external modules.
//
// Twelve analyzers are provided (see All). Five enforce the determinism
// contract:
//
//   - decoderpurity: a Decide method must not write receiver fields,
//     package-level variables, or mutate its *view.View argument.
//   - maporder: iteration order of a Go map must not flow into an
//     order-sensitive accumulator (slice append, string concatenation)
//     without a subsequent sort.
//   - nondet: library packages must not call ambient-nondeterminism
//     sources (time.Now, global math/rand, os.Getenv, ...).
//   - anonid: a decoder whose Anonymous() constantly returns true must not
//     read view identifiers in Decide.
//   - obspurity: a Decide body must not read the clock or call into the
//     observability layer (internal/obs); metrics flow out of the
//     pipelines, never back into verdicts.
//
// One enforces the hiding contract:
//
//   - certflow: interprocedural taint analysis from certificate sources
//     (view/Labeled label fields, canonical keys, Certify results) to
//     observability and logging sinks; raw label bytes must never become
//     observable — only lengths and digests (obs.Redact*, view.KeyDigest).
//
// And four audit the concurrent pipelines:
//
//   - atomicmix: a location accessed through sync/atomic must never also
//     be accessed plainly.
//   - mutexcopy: values containing sync primitives or typed atomics must
//     not be copied (by-value parameters, receivers, assignments, range
//     clauses).
//   - loopcapture: goroutines spawned in a loop take their iteration state
//     as arguments, never by capture.
//   - wgmisuse: WaitGroup.Add precedes the go statement it accounts for.
//
// One guards the memory-reuse discipline (internal/mem):
//
//   - poolescape: a buffer borrowed from a recycler (mem.Pool, mem.FreeList,
//     sync.Pool) must not escape its borrow scope — returned or stored into
//     caller-visible state — without a defensive copy.
//
// And one enforces the cancellation-plumbing discipline (internal/engine):
//
//   - ctxflow: a context.Context parameter comes first, is never stored in
//     a struct field, and the cancellation-threaded packages (engine, core,
//     nbhd, sim) never mint their own context.Background/TODO roots — they
//     thread the caller's context or the nil never-cancelled sentinel.
//
// The analyzers run over packages loaded by Load (backed by `go list` and
// the go/types source importer) and are wired into the cmd/lcplint
// multichecker.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the package's parsed (non-test) source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full lcplint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		DecoderPurityAnalyzer,
		MapOrderAnalyzer,
		NondetAnalyzer,
		AnonIDAnalyzer,
		ObsPurityAnalyzer,
		CertflowAnalyzer,
		AtomicMixAnalyzer,
		MutexCopyAnalyzer,
		LoopCaptureAnalyzer,
		WGMisuseAnalyzer,
		PoolEscapeAnalyzer,
		CtxFlowAnalyzer,
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position, minus any suppressed by `//lint:ignore`
// directives. Analyzer runtime errors are returned after all packages have
// been attempted.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var firstErr error
	for _, pkg := range pkgs {
		ignores := ignoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if !ignores.suppresses(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, firstErr
}

// ignoreRe matches suppression directives of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory: a suppression must explain itself to the next
// reader, exactly like staticcheck's directive of the same name.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)

// ignoreSet indexes the suppression directives of one package:
// filename -> line -> analyzer names silenced on that line.
type ignoreSet map[string]map[int]map[string]bool

// ignoreIndex scans a package's comments for //lint:ignore directives. A
// directive silences the named analyzers on its own line (trailing
// comment) and on the following line (directive on a line of its own).
func ignoreIndex(pkg *Package) ignoreSet {
	idx := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = map[string]bool{}
						lines[line] = set
					}
					for _, name := range strings.Split(m[1], ",") {
						set[strings.TrimSpace(name)] = true
					}
				}
			}
		}
	}
	return idx
}

// suppresses reports whether d is silenced by a //lint:ignore directive.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	set := s[d.Pos.Filename][d.Pos.Line]
	return set[d.Analyzer]
}

// lhsRoot unwraps selectors, indexing, dereferences, parens, and type
// assertions around an assignable expression and returns the base
// identifier, or nil if the base is not a plain identifier (e.g. a call
// result).
func lhsRoot(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isViewPtr reports whether t is *view.View for any package named "view"
// (the real hidinglcp/internal/view or an analyzer-testdata replica).
func isViewPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "View" && obj.Pkg() != nil && obj.Pkg().Name() == "view"
}

// isDecideMethod reports whether fn is a decoder Decide method or function:
// named Decide, with exactly one parameter of type *view.View and a single
// bool result.
func isDecideMethod(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Name.Name != "Decide" || fn.Recv == nil {
		return false
	}
	return hasDecideSignature(info, fn.Type)
}

// hasDecideSignature reports whether the function type takes exactly one
// *view.View and returns exactly one bool.
func hasDecideSignature(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) != 1 || ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	if len(ft.Params.List[0].Names) > 1 {
		return false
	}
	pt := info.TypeOf(ft.Params.List[0].Type)
	if pt == nil || !isViewPtr(pt) {
		return false
	}
	rt := info.TypeOf(ft.Results.List[0].Type)
	basic, ok := rt.(*types.Basic)
	return ok && basic.Kind() == types.Bool
}
