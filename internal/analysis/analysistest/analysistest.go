// Package analysistest is the test driver for the lcplint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library alone: it loads a fixture package from a testdata tree, runs one
// analyzer, and checks the reported diagnostics against `// want "regexp"`
// comments in the fixture source. Every diagnostic must be wanted and
// every want must fire, so each fixture proves both the positive and the
// negative behavior of its analyzer.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hidinglcp/internal/analysis"
)

// Run loads the package rooted at testdataDir/src/<pkgpath>, applies the
// analyzer, and matches diagnostics against the fixture's want comments.
//
// Imports inside the fixture resolve against sibling directories under
// testdataDir/src first (so fixtures can carry replica `view` and `core`
// packages), then fall back to the standard library.
func Run(t *testing.T, testdataDir, pkgpath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loadPackage(testdataDir, pkgpath)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}
	match(t, a.Name, diags, wants)
}

// want is one expected diagnostic, parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantComment = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts expectations from the package's comments. Multiple
// quoted regexps may follow one want marker.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, quoted := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted splits a run of space-separated double-quoted strings,
// keeping the quotes.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+end+2])
		s = rest[end+1:]
	}
}

// match pairs diagnostics with wants by (file, line) and regexp.
func match(t *testing.T, name string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic %s", name, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", name, w.file, w.line, w.re)
		}
	}
}

// testImporter resolves imports for fixture packages: directories under
// the testdata src root shadow the real import space, everything else is
// delegated to the source importer.
type testImporter struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*types.Package
}

func newTestImporter(fset *token.FileSet, srcRoot string) *testImporter {
	return &testImporter{
		fset: fset,
		src:  srcRoot,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ti.src, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		pkg, err := ti.checkDir(path, dir)
		if err != nil {
			return nil, err
		}
		ti.pkgs[path] = pkg.Types
		return pkg.Types, nil
	}
	return ti.std.Import(path)
}

// checkDir parses and type-checks every non-test .go file in dir as the
// package imported as path.
func (ti *testImporter) checkDir(path, dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ti.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: ti}
	tpkg, err := conf.Check(path, ti.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       ti.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// loadPackage loads testdataDir/src/<pkgpath> for analysis.
func loadPackage(testdataDir, pkgpath string) (*analysis.Package, error) {
	fset := token.NewFileSet()
	ti := newTestImporter(fset, filepath.Join(testdataDir, "src"))
	dir := filepath.Join(testdataDir, "src", filepath.FromSlash(pkgpath))
	return ti.checkDir(pkgpath, dir)
}
