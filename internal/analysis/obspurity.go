package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsPurityAnalyzer keeps the observability layer one-directional: metrics
// flow from the pipelines into internal/obs, never back into decoder
// verdicts. Inside any method or function literal with the Decide signature
// (one *view.View parameter, bool result) it reports
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — a verdict that
//     depends on when it was computed is not a function of the view, and
//     nondet's internal/obs exemption must not become a tunnel for clock
//     reads to re-enter decoders via obs helpers, and
//   - any call into a package named "obs" or its export subpackage (package
//     path suffix "obs/export"), whether a package-level function (obs.Now,
//     export.NewEventLog) or a method whose receiver type lives there
//     (Counter.Inc, Scope.Counter, Histogram.Observe, EventLog.EmitLogEvent):
//     reading a counter makes the verdict depend on how often the pipeline
//     ran; writing one — or emitting a log event — from Decide is
//     receiver/global state by another name, and would let telemetry feed
//     back into verdicts.
//
// Sanctioned counting wrappers (core.InstrumentDecoder) carry
// `//lint:ignore obspurity` directives; the runtime complement is the
// sanitizer's instrumentation probe (internal/sanitize), which re-runs each
// Decide under a live instrumented copy and fails on any verdict change.
var ObsPurityAnalyzer = &Analyzer{
	Name: "obspurity",
	Doc:  "report Decide bodies that read the clock or call into the observability layer",
	Run:  runObsPurity,
}

// obsPurityClock lists the time-package functions whose result varies call
// to call; conversions (time.Duration) and arithmetic stay legal.
var obsPurityClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// isObsLayerPkg reports whether pkg belongs to the observability layer the
// purity contract fences off: the obs package itself (matched by name, so
// the fixture replica counts too) or its export subpackage (matched by path
// suffix, since its package name is "export").
func isObsLayerPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Name() == "obs" || strings.HasSuffix(pkg.Path(), "obs/export")
}

func runObsPurity(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if isDecideMethod(pass.Info, fn) && fn.Body != nil {
					checkObsPurityBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				if hasDecideSignature(pass.Info, fn.Type) {
					checkObsPurityBody(pass, fn.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkObsPurityBody reports clock reads and obs-layer calls within one
// Decide body, nested function literals included (they run as part of the
// same decision).
func checkObsPurityBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// pkg.Func form: a call through an imported package name.
		if pkgIdent, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName); ok {
				if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				switch {
				case pkgName.Imported().Path() == "time" && obsPurityClock[sel.Sel.Name]:
					pass.Reportf(call.Pos(),
						"Decide must not read the clock: call to time.%s makes the verdict depend on when it ran, not on the view",
						sel.Sel.Name)
				case isObsLayerPkg(pkgName.Imported()):
					pass.Reportf(call.Pos(),
						"Decide must not call into the observability layer: %s.%s (metrics flow pipeline -> obs, never back into verdicts)",
						pkgName.Imported().Name(), sel.Sel.Name)
				}
				return true
			}
		}
		// Method form: a call whose method is declared in the obs layer
		// (Counter.Inc, Scope.Counter, EventLog.EmitLogEvent, ...), resolved
		// through the type-checker so aliased and embedded receivers are
		// covered.
		if s, ok := pass.Info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && isObsLayerPkg(fn.Pkg()) {
				pass.Reportf(call.Pos(),
					"Decide must not call into the observability layer: %s.%s (metrics flow pipeline -> obs, never back into verdicts)",
					exprString(sel.X), sel.Sel.Name)
			}
		}
		return true
	})
}
