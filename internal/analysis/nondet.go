package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NondetAnalyzer reports calls that smuggle ambient nondeterminism into
// library packages: wall-clock reads (time.Now, time.Since), the global
// math/rand and math/rand/v2 top-level functions (which draw from a shared,
// unseedable-per-call-site source), and environment reads (os.Getenv and
// friends). Reproducible decoders, provers, and instance generators must
// thread explicit state — a *rand.Rand, an injected clock, a config struct
// — instead.
//
// Test files and package main are exempt: the contract governs library
// code, while binaries and tests may interact with the environment.
// Constructing explicit sources (rand.New, rand.NewSource, rand.NewPCG,
// rand.NewChaCha8, rand.NewZipf) is allowed. The observability layer
// (internal/obs) is also exempt: it is the sanctioned clock owner —
// timestamps, span durations, and progress ETAs are ambient by design and
// never feed back into pipeline results (the obspurity analyzer and the
// sanitizer's instrumentation probe enforce that separation on the decoder
// side).
var NondetAnalyzer = &Analyzer{
	Name: "nondet",
	Doc:  "report time.Now, global math/rand, and os.Getenv calls in non-test library packages",
	Run:  runNondet,
}

// nondetAllowed lists the permitted functions per flagged package: explicit
// source constructors, which are the reproducible alternative the analyzer
// pushes callers toward.
var nondetAllowed = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
	"time":         {},
	"os":           {},
}

// nondetBanned lists, for packages where most functions are legitimate, the
// specific ambient-state readers to flag. Packages absent here (math/rand,
// math/rand/v2) flag every top-level function not in nondetAllowed.
var nondetBanned = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true},
}

func runNondet(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	// The internal/obs subtree is the clock owner: every other library
	// package reads time through obs.Now/obs.Since, so the ban concentrates
	// here. Subpackages (obs/export's heartbeat tickers and shutdown
	// timeouts, obs/history) inherit the exemption — they are the same
	// observer-facing layer, fenced off from verdicts by obspurity and the
	// sanitizer's instrumentation probe.
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") ||
		strings.Contains(pass.Pkg.Path(), "internal/obs/") {
		return nil
	}
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, funcName, ok := packageFuncCall(pass, call)
			if !ok {
				return true
			}
			allowed, tracked := nondetAllowed[pkgPath]
			if !tracked || allowed[funcName] {
				return true
			}
			if banned, ok := nondetBanned[pkgPath]; ok && !banned[funcName] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s reads ambient state; thread explicit state (e.g. a seeded *rand.Rand) through the API instead",
				pkgPath, funcName)
			return true
		})
	}
	return nil
}

// packageFuncCall matches a call of the form pkg.Func where pkg is an
// imported package name, returning the package path and function name.
// Method calls (receiver expressions) do not match.
func packageFuncCall(pass *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
		// Type conversions (time.Duration(x)) and called variables are not
		// the ambient-state readers this analyzer is after.
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}
