package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the cancellation-plumbing discipline the engine
// layer introduced: a context.Context travels down the call tree as an
// explicit argument, never sideways or out of thin air. It reports
//
//   - a context.Context parameter that is not the first parameter (after
//     the receiver) — mixed-position contexts make call sites ambiguous
//     about which scope governs the work, and
//   - a context.Context stored in a struct field — a struct-held context
//     outlives the call it was scoped to, so cancellation no longer maps
//     to the dynamic extent of the work (pass it through parameters), and
//   - any call to context.Background or context.TODO inside the
//     cancellation-threaded packages (engine, core, nbhd, sim, matched by
//     package name so fixture replicas count): minting a fresh root there
//     detaches the work from the caller's deadline — these packages treat
//     a nil context as the never-cancelled sentinel instead.
//
// The first two rules apply everywhere; the third only inside the
// restricted packages, since CLIs and tests legitimately create roots.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "report misplaced context parameters, struct-stored contexts, and fresh context roots inside the cancellation-threaded packages",
	Run:  runCtxFlow,
}

// ctxFlowRestricted names the packages (by package name, like obspurity's
// layer match) that must never mint their own context root: everything
// beneath the engine dispatch layer threads the caller's context or the
// nil never-cancelled sentinel. "ctxflow" admits the analyzer's own
// fixture package.
var ctxFlowRestricted = map[string]bool{
	"engine": true, "core": true, "nbhd": true, "sim": true, "ctxflow": true,
}

// isContextType reports whether t is context.Context from the standard
// library.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func runCtxFlow(pass *Pass) error {
	restricted := ctxFlowRestricted[pass.Pkg.Name()]
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkCtxParamPosition(pass, node.Type)
			case *ast.FuncLit:
				checkCtxParamPosition(pass, node.Type)
			case *ast.StructType:
				checkCtxStructFields(pass, node)
			case *ast.CallExpr:
				if restricted {
					checkCtxRootCall(pass, node)
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxParamPosition reports a context.Context parameter at any
// flattened position other than the first.
func checkCtxParamPosition(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		// A field may declare several names ("a, b int") or none ("int").
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(t) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter, not parameter %d", idx+1)
		}
		idx += n
	}
}

// checkCtxStructFields reports struct fields of type context.Context.
func checkCtxStructFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass.Info.TypeOf(field.Type)) {
			pass.Reportf(field.Pos(),
				"context.Context must not be stored in a struct field: a struct-held context outlives its call scope (thread it through parameters)")
		}
	}
}

// checkCtxRootCall reports context.Background()/context.TODO() calls.
func checkCtxRootCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s must not be called in package %s: it detaches the work from the caller's deadline (accept a context parameter; nil is the never-cancelled sentinel)",
		sel.Sel.Name, pass.Pkg.Name())
}
