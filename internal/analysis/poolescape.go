package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscapeAnalyzer reports pooled scratch objects escaping their borrow
// scope. A value obtained from a recycler — mem.Pool.Get, mem.FreeList.Get,
// or sync.Pool.Get — is only borrowed: after the matching Put, the object is
// handed to the next caller, so any reference that outlives the function
// turns into silent shared-mutable state. The analyzer taints Get results
// (and everything reachable from them through assignments, slicing, field
// and index selection, and growing appends) within each function and flags:
//
//   - returning a tainted value;
//   - storing a tainted value into a package-level variable;
//   - storing a tainted value into state reachable from a parameter or the
//     receiver (a caller-visible escape).
//
// Defensive copies sanitize: a fresh-backing append (append([]T(nil), x...)
// or append([]T{}, x...)), a string(x) conversion, or copying into a
// separately made buffer all produce untainted values. Stores into the
// pooled object itself (sc.buf = ...) are the normal scratch discipline and
// stay silent, as do the Get methods of the pool implementations themselves.
var PoolEscapeAnalyzer = &Analyzer{
	Name: "poolescape",
	Doc:  "report pooled buffers escaping via return or caller-visible store without a defensive copy",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isPoolImplGet(pass.Info, fn) {
				continue
			}
			pe := &poolEscape{pass: pass, tainted: map[types.Object]bool{}}
			pe.collectBoundary(fn)
			pe.walk(fn.Body)
		}
	}
	return nil
}

// isPoolImplGet reports whether fn is the Get method of a recycler type
// itself (mem.Pool, mem.FreeList): the implementation legitimately returns
// the recycled object — that hand-off is the API.
func isPoolImplGet(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || fn.Name.Name != "Get" || len(fn.Recv.List) != 1 {
		return false
	}
	return isRecyclerType(info.TypeOf(fn.Recv.List[0].Type))
}

// isRecyclerType reports whether t (possibly behind a pointer) is a named
// type Pool or FreeList from a package named mem or sync.
func isRecyclerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	name, pkg := obj.Name(), obj.Pkg().Name()
	return (name == "Pool" || name == "FreeList") && (pkg == "mem" || pkg == "sync")
}

// poolEscape is the per-function taint state.
type poolEscape struct {
	pass    *Pass
	tainted map[types.Object]bool
	// boundary holds the function's parameters and receiver: storing a
	// pooled buffer into state rooted at one of these escapes to the caller.
	boundary map[types.Object]bool
}

// collectBoundary records the receiver and parameter objects.
func (pe *poolEscape) collectBoundary(fn *ast.FuncDecl) {
	pe.boundary = map[types.Object]bool{}
	record := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pe.pass.Info.Defs[name]; obj != nil {
					pe.boundary[obj] = true
				}
			}
		}
	}
	record(fn.Recv)
	record(fn.Type.Params)
}

// walk scans the body in source order, updating taint at assignments and
// reporting escapes at returns and stores. Nested function literals are
// walked in the same scope: closures share the function's locals.
func (pe *poolEscape) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			pe.assign(node)
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if pe.taintedExpr(res) {
					pe.pass.Reportf(res.Pos(),
						"pooled buffer %s is returned; it is recycled after Put — return a defensive copy (append([]T(nil), x...), string(x), or make+copy)", exprName(res))
				}
			}
		case *ast.GenDecl:
			pe.varDecl(node)
		}
		return true
	})
}

// varDecl taints variables initialized from tainted expressions in
// `var x = ...` declarations.
func (pe *poolEscape) varDecl(decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, name := range vs.Names {
			if pe.taintedExpr(vs.Values[i]) {
				if obj := pe.pass.Info.Defs[name]; obj != nil {
					pe.taintObj(obj, name.Pos(), name.Name)
				}
			}
		}
	}
}

// assign propagates taint through assignments and reports caller-visible
// stores. Only 1:1 value positions are considered: multi-value calls return
// fresh (untainted) results.
func (pe *poolEscape) assign(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		rhs := st.Rhs[i]
		if !pe.taintedExpr(rhs) {
			// A fresh right-hand side overwrites (untaints) a plain local.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := pe.pass.Info.ObjectOf(id); obj != nil {
					delete(pe.tainted, obj)
				}
			}
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			obj := pe.pass.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			pe.taintObj(obj, id.Pos(), id.Name)
			continue
		}
		// Store through a selector/index path: silent into the pooled
		// object itself or another tainted local; an escape when the root
		// is a global, a parameter, or the receiver.
		root := lhsRoot(lhs)
		if root == nil {
			continue
		}
		obj := pe.pass.Info.ObjectOf(root)
		if obj == nil || pe.tainted[obj] {
			continue
		}
		switch {
		case isPackageLevel(obj):
			pe.pass.Reportf(lhs.Pos(),
				"pooled buffer %s is stored in package-level state rooted at %s; it is recycled after Put — store a defensive copy", exprName(rhs), root.Name)
		case pe.boundary[obj]:
			pe.pass.Reportf(lhs.Pos(),
				"pooled buffer %s is stored into caller-visible state rooted at parameter %s; it is recycled after Put — store a defensive copy", exprName(rhs), root.Name)
		}
	}
}

// taintObj taints a variable, reporting immediately when the variable is
// itself package-level (the store already escaped).
func (pe *poolEscape) taintObj(obj types.Object, pos token.Pos, name string) {
	if isPackageLevel(obj) {
		pe.pass.Reportf(pos,
			"pooled buffer is stored in package-level variable %s; it is recycled after Put — store a defensive copy", name)
		return
	}
	pe.tainted[obj] = true
}

// taintedExpr reports whether the expression denotes (or aliases) a pooled
// object: a Get call, a tainted variable, or any selection, indexing,
// slicing, dereference, address-of, type assertion, or growing append
// rooted at one.
func (pe *poolEscape) taintedExpr(expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.CallExpr:
		if isRecyclerGet(pe.pass.Info, e) {
			return true
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			// append keeps the first argument's backing array unless it is
			// fresh; append([]T(nil), x...) / append([]T{}, x...) sanitize.
			return !isFreshSliceExpr(e.Args[0]) && pe.taintedExpr(e.Args[0])
		}
		// Conversions (string(x), []byte(x) of a string) and ordinary call
		// results are fresh values.
		return false
	case *ast.UnaryExpr:
		return pe.taintedExpr(e.X)
	case *ast.Ident:
		obj := pe.pass.Info.ObjectOf(e)
		return obj != nil && pe.tainted[obj]
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.TypeAssertExpr:
		root := lhsRoot(expr)
		if root == nil {
			// The root may be a call, e.g. pool.Get().buf — unwrap one level.
			switch x := expr.(type) {
			case *ast.SelectorExpr:
				return pe.taintedExpr(x.X)
			case *ast.IndexExpr:
				return pe.taintedExpr(x.X)
			case *ast.SliceExpr:
				return pe.taintedExpr(x.X)
			case *ast.StarExpr:
				return pe.taintedExpr(x.X)
			case *ast.TypeAssertExpr:
				return pe.taintedExpr(x.X)
			}
			return false
		}
		obj := pe.pass.Info.ObjectOf(root)
		return obj != nil && pe.tainted[obj]
	}
	return false
}

// isRecyclerGet reports whether call is a zero-argument Get on a mem.Pool,
// mem.FreeList, or sync.Pool value.
func isRecyclerGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" || len(call.Args) != 0 {
		return false
	}
	return isRecyclerType(info.TypeOf(sel.X))
}

// isFreshSliceExpr reports whether expr builds a slice with fresh (empty)
// backing: a []T{...} literal or a []T(nil) conversion.
func isFreshSliceExpr(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr: // []T(nil)
		if len(e.Args) != 1 {
			return false
		}
		if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
			_, isSliceType := e.Fun.(*ast.ArrayType)
			return isSliceType
		}
	}
	return false
}

// isPackageLevel reports whether obj is a package-level variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// exprName renders a short name for diagnostics: the root identifier when
// there is one.
func exprName(expr ast.Expr) string {
	if root := lhsRoot(expr); root != nil {
		return root.Name
	}
	return "value"
}
