package core

import "fmt"

// Verdict is a node's outcome in a fault-injected run of the distributed
// verifier. The fault-free pipeline's boolean accept/reject gains a third
// state: a crash-stopped node issues no verdict at all.
//
// Semantics under crashes follow the paper's acceptance convention
// conservatively: "the network accepts" means every node accepts, and a
// crashed node cannot attest anything, so any crash already refutes global
// acceptance (AllAccept). The surviving nodes' verdicts remain meaningful
// individually — each is the decoder's genuine output on the (possibly
// truncated) view that node managed to assemble.
//
// The zero value is VerdictReject: absent evidence of acceptance, a node
// rejects — the same default-deny stance the decoders take on malformed
// views.
type Verdict int8

const (
	// VerdictReject: the decoder ran and rejected the node's view.
	VerdictReject Verdict = iota
	// VerdictAccept: the decoder ran and accepted the node's view.
	VerdictAccept
	// VerdictCrashed: the node crash-stopped before completing the run;
	// no decoder output exists.
	VerdictCrashed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictReject:
		return "reject"
	case VerdictAccept:
		return "accept"
	case VerdictCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("Verdict(%d)", int8(v))
	}
}

// Accepted reports whether the verdict is an acceptance.
func (v Verdict) Accepted() bool { return v == VerdictAccept }

// AllAcceptVerdicts reports whether the run certifies the instance: every
// node ran to completion and accepted. Any crash refutes it.
func AllAcceptVerdicts(vs []Verdict) bool {
	for _, v := range vs {
		if v != VerdictAccept {
			return false
		}
	}
	return true
}

// CountVerdicts tallies a verdict slice into (accepted, rejected,
// crashed).
func CountVerdicts(vs []Verdict) (accepted, rejected, crashed int) {
	for _, v := range vs {
		switch v {
		case VerdictAccept:
			accepted++
		case VerdictCrashed:
			crashed++
		default:
			rejected++
		}
	}
	return accepted, rejected, crashed
}

// VerdictsFromBools lifts fault-free boolean outputs into verdicts.
func VerdictsFromBools(outs []bool) []Verdict {
	vs := make([]Verdict, len(outs))
	for i, ok := range outs {
		if ok {
			vs[i] = VerdictAccept
		}
	}
	return vs
}
