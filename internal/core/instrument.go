package core

import (
	"hidinglcp/internal/obs"
	"hidinglcp/internal/view"
)

// InstrumentDecoder wraps d so that every Decide call bumps the scope
// counters "<prefix>.decide.calls" and "<prefix>.decide.accepts", while the
// verdict itself is delegated unchanged. This is the one sanctioned way to
// observe a decoder from inside a pipeline: the wrapper adds no state the
// verdict could depend on, so it preserves the determinism contract the
// obspurity analyzer and the sanitizer's instrumentation probe enforce for
// decoder implementations themselves. A disabled scope returns d untouched,
// so the uninstrumented path has zero wrapping cost.
func InstrumentDecoder(d Decoder, sc obs.Scope, prefix string) Decoder {
	if !sc.Enabled() {
		return d
	}
	return &instrumentedDecoder{
		d:       d,
		calls:   sc.Counter(prefix + ".decide.calls"),
		accepts: sc.Counter(prefix + ".decide.accepts"),
	}
}

type instrumentedDecoder struct {
	d       Decoder
	calls   *obs.Counter
	accepts *obs.Counter
}

func (i *instrumentedDecoder) Rounds() int     { return i.d.Rounds() }
func (i *instrumentedDecoder) Anonymous() bool { return i.d.Anonymous() }

func (i *instrumentedDecoder) Decide(mu *view.View) bool {
	//lint:ignore obspurity counting wrapper: the verdict is delegated unchanged
	i.calls.Inc()
	out := i.d.Decide(mu)
	if out {
		//lint:ignore obspurity counting wrapper: the verdict is delegated unchanged
		i.accepts.Inc()
	}
	return out
}
