package core

import (
	"errors"
	"math/rand"
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// centerNonzeroDecoder accepts iff the center's label is not "0". Against
// TwoCol on an odd cycle it is unsound: the lexicographically first violating
// labeling is all-"1" (every node accepts, the accepting set induces the odd
// cycle itself), which pins down the parallel search's first-violation
// determinism.
func centerNonzeroDecoder() Decoder {
	return NewDecoder(1, true, func(mu *view.View) bool {
		return mu.Labels[view.Center] != "0"
	})
}

func alwaysAcceptDecoder() Decoder {
	return NewDecoder(1, true, func(*view.View) bool { return true })
}

// violationLabels extracts the violating labeling, or nil for a clean pass.
func violationLabels(t *testing.T, err error) []string {
	t.Helper()
	if err == nil {
		return nil
	}
	var v *StrongSoundnessViolation
	if !errors.As(err, &v) {
		t.Fatalf("unexpected error type: %v", err)
	}
	return v.Labeled.Labels
}

var parallelGrid = []struct{ shards, workers int }{
	{0, 0}, {1, 1}, {3, 2}, {16, 2}, {7, 7}, {16, 16},
}

func TestExhaustiveParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		d        Decoder
		inst     Instance
		alphabet []string
	}{
		{"reveal-sound/P4", revealDecoder(), NewInstance(graph.Path(4)), []string{"0", "1", "x"}},
		{"reveal-sound/C4", revealDecoder(), NewInstance(graph.MustCycle(4)), []string{"0", "1"}},
		{"center-nonzero/C5", centerNonzeroDecoder(), NewInstance(graph.MustCycle(5)), []string{"0", "1", "2"}},
		{"always-accept/C3", alwaysAcceptDecoder(), NewInstance(graph.MustCycle(3)), []string{"a", "b"}},
	}
	lang := TwoCol()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seqErr := ExhaustiveStrongSoundness(c.d, lang, c.inst, c.alphabet)
			seqLabels := violationLabels(t, seqErr)
			for _, p := range parallelGrid {
				parErr := ExhaustiveStrongSoundnessParallel(c.d, lang, c.inst, c.alphabet, p.shards, p.workers)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("shards=%d workers=%d: sequential err %v, parallel err %v", p.shards, p.workers, seqErr, parErr)
				}
				if seqErr == nil {
					continue
				}
				parLabels := violationLabels(t, parErr)
				if len(parLabels) != len(seqLabels) {
					t.Fatalf("shards=%d workers=%d: violation labels %v != sequential %v", p.shards, p.workers, parLabels, seqLabels)
				}
				for i := range seqLabels {
					if parLabels[i] != seqLabels[i] {
						t.Fatalf("shards=%d workers=%d: violation labels %v != sequential %v", p.shards, p.workers, parLabels, seqLabels)
					}
				}
			}
		})
	}
}

// TestExhaustiveParallelFirstViolation pins the early-stop determinism of the
// parallel search: whatever the shard/worker schedule, the reported violation
// is the lexicographically first one — all-"1" on C5, rank 121 of 3^5.
func TestExhaustiveParallelFirstViolation(t *testing.T) {
	inst := NewInstance(graph.MustCycle(5))
	alphabet := []string{"0", "1", "2"}
	want := []string{"1", "1", "1", "1", "1"}
	for rep := 0; rep < 5; rep++ {
		for _, p := range parallelGrid {
			err := ExhaustiveStrongSoundnessParallel(centerNonzeroDecoder(), TwoCol(), inst, alphabet, p.shards, p.workers)
			got := violationLabels(t, err)
			if len(got) != len(want) {
				t.Fatalf("rep=%d shards=%d workers=%d: got violation %v, want %v", rep, p.shards, p.workers, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rep=%d shards=%d workers=%d: got violation %v, want %v", rep, p.shards, p.workers, got, want)
				}
			}
		}
	}
}

func TestFuzzParallelMatchesSequential(t *testing.T) {
	alphabet := []string{"0", "1", "x"}
	gen := func(_ int, rng *rand.Rand) string { return alphabet[rng.Intn(len(alphabet))] }
	cases := []struct {
		name string
		d    Decoder
		inst Instance
	}{
		{"reveal-sound/petersen", revealDecoder(), NewInstance(graph.Petersen())},
		{"center-nonzero/C5", centerNonzeroDecoder(), NewInstance(graph.MustCycle(5))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, workers := range []int{0, 1, 2, 7} {
				seqErr := FuzzStrongSoundness(c.d, TwoCol(), c.inst, 200, rand.New(rand.NewSource(42)), gen)
				parErr := FuzzStrongSoundnessParallel(c.d, TwoCol(), c.inst, 200, rand.New(rand.NewSource(42)), gen, workers)
				switch {
				case seqErr == nil && parErr == nil:
				case seqErr == nil || parErr == nil:
					t.Fatalf("workers=%d: sequential err %v, parallel err %v", workers, seqErr, parErr)
				case seqErr.Error() != parErr.Error():
					t.Fatalf("workers=%d: sequential %q != parallel %q", workers, seqErr, parErr)
				}
			}
		})
	}
}

// TestCheckAnonymousEdgeCases drives CheckAnonymous through its boundary
// inputs: no assignments at all, a single-node graph, and bounds too small
// for the identifiers.
func TestCheckAnonymousEdgeCases(t *testing.T) {
	single := MustNewLabeled(NewAnonymousInstance(graph.New(1)), []string{"0"})
	path := MustNewLabeled(NewAnonymousInstance(graph.Path(3)), []string{"0", "1", "0"})
	cases := []struct {
		name    string
		l       Labeled
		idSets  []graph.IDs
		nBounds []int
		wantErr bool
	}{
		{"empty-id-sets", path, nil, nil, false},
		{"single-assignment", path, []graph.IDs{{1, 2, 3}}, []int{3}, false},
		{"single-node-graph", single, []graph.IDs{{5}, {9}}, []int{10, 10}, false},
		{"length-mismatch", path, []graph.IDs{{1, 2, 3}}, []int{3, 4}, true},
		{"nbound-below-ids", path, []graph.IDs{{1, 2, 3}}, []int{2}, true},
		{"wrong-id-count", path, []graph.IDs{{1, 2}}, []int{3}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := CheckAnonymous(revealDecoder(), c.l, c.idSets, c.nBounds)
			if (err != nil) != c.wantErr {
				t.Errorf("CheckAnonymous = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

// TestCheckOrderInvariantEdgeCases: empty assignment lists pass vacuously;
// pairs with different identifier orders are exempt from the comparison; a
// parity-sensitive decoder is caught on a same-order pair.
func TestCheckOrderInvariantEdgeCases(t *testing.T) {
	l := MustNewLabeled(NewAnonymousInstance(graph.Path(3)), []string{"", "", ""})
	parity := NewDecoder(1, false, func(mu *view.View) bool {
		return mu.IDs[view.Center]%2 == 0
	})
	cases := []struct {
		name    string
		d       Decoder
		idSets  []graph.IDs
		wantErr bool
	}{
		{"empty-id-sets", parity, nil, false},
		{"single-assignment", parity, []graph.IDs{{2, 4, 6}}, false},
		{"different-order-ignored", parity, []graph.IDs{{1, 2, 3}, {3, 2, 1}}, false},
		{"same-order-parity-violation", parity, []graph.IDs{{2, 4, 6}, {1, 3, 5}}, true},
		{"order-invariant-decoder", revealDecoder(), []graph.IDs{{2, 4, 6}, {1, 3, 5}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := CheckOrderInvariant(c.d, l, c.idSets, 30)
			if (err != nil) != c.wantErr {
				t.Errorf("CheckOrderInvariant = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}
