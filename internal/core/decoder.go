package core

import (
	"fmt"

	"hidinglcp/internal/view"
)

// Decoder is an r-round binary decoder (Section 2.2): a computable map from
// radius-r views to accept/reject. Implementations must be pure functions of
// the view.
type Decoder interface {
	// Rounds returns the verification radius r.
	Rounds() int
	// Anonymous reports whether the decoder is identifier-oblivious. Views
	// are anonymized before being passed to an anonymous decoder, so an
	// implementation may rely on seeing only zero identifiers.
	Anonymous() bool
	// Decide returns the accept (true) / reject (false) output for one view.
	Decide(mu *view.View) bool
}

// Prover assigns certificates to instances of the promise class. It mirrors
// the all-powerful prover of the paper restricted to yes-instances, where
// the paper's constructions are explicit.
type Prover interface {
	// Certify returns a labeling of inst that the scheme's decoder accepts
	// at every node, or an error if inst lies outside the promise class the
	// prover understands.
	Certify(inst Instance) ([]string, error)
}

// Scheme bundles a named LCP: decoder, prover, the promise problem it
// certifies, and its certificate encoding size.
type Scheme struct {
	Name    string
	Decoder Decoder
	Prover  Prover
	Promise Promise
	// CertBits returns the length in bits of a label under the scheme's
	// documented binary encoding. If nil, 8*len(label) is used.
	CertBits func(label string) int
}

// LabelBits measures one label under the scheme's encoding.
func (s Scheme) LabelBits(label string) int {
	if s.CertBits != nil {
		return s.CertBits(label)
	}
	return 8 * len(label)
}

// MaxLabelBits measures the largest label of a labeling.
func (s Scheme) MaxLabelBits(labels []string) int {
	max := 0
	for _, l := range labels {
		if b := s.LabelBits(l); b > max {
			max = b
		}
	}
	return max
}

// Run evaluates the decoder at every node of the labeled instance and
// returns the per-node outputs. Views are anonymized first iff the decoder
// is anonymous.
func Run(d Decoder, l Labeled) ([]bool, error) {
	views, err := l.Views(d.Rounds())
	if err != nil {
		return nil, fmt.Errorf("extracting views: %w", err)
	}
	out := make([]bool, len(views))
	for v, mu := range views {
		if d.Anonymous() {
			mu = mu.Anonymize()
		}
		out[v] = d.Decide(mu)
	}
	return out, nil
}

// AcceptingSet returns the nodes at which the decoder accepts.
func AcceptingSet(d Decoder, l Labeled) ([]int, error) {
	outs, err := Run(d, l)
	if err != nil {
		return nil, err
	}
	var acc []int
	for v, ok := range outs {
		if ok {
			acc = append(acc, v)
		}
	}
	return acc, nil
}

// AllAccept reports whether every node accepts.
func AllAccept(d Decoder, l Labeled) (bool, error) {
	outs, err := Run(d, l)
	if err != nil {
		return false, err
	}
	for _, ok := range outs {
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

var _ Decoder = (*decoderFunc)(nil)

type decoderFunc struct {
	r      int
	anon   bool
	decide func(mu *view.View) bool
}

// NewDecoder builds a Decoder from a plain function.
func NewDecoder(rounds int, anonymous bool, decide func(mu *view.View) bool) Decoder {
	return &decoderFunc{r: rounds, anon: anonymous, decide: decide}
}

func (d *decoderFunc) Rounds() int               { return d.r }
func (d *decoderFunc) Anonymous() bool           { return d.anon }
func (d *decoderFunc) Decide(mu *view.View) bool { return d.decide(mu) }
