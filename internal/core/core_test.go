package core

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// revealDecoder is the textbook 2-coloring LCP: certificates are "0"/"1" and
// a node accepts iff its own label is a color and differs from every visible
// neighbor's.
func revealDecoder() Decoder {
	return NewDecoder(1, true, func(mu *view.View) bool {
		own := mu.Labels[view.Center]
		if own != "0" && own != "1" {
			return false
		}
		for _, w := range mu.Adj[view.Center] {
			if mu.Labels[w] == own || (mu.Labels[w] != "0" && mu.Labels[w] != "1") {
				return false
			}
		}
		return true
	})
}

type revealProver struct{}

func (revealProver) Certify(inst Instance) ([]string, error) {
	color, ok := inst.G.TwoColoring()
	if !ok {
		return nil, errors.New("graph is not bipartite")
	}
	labels := make([]string, inst.G.N())
	for v, c := range color {
		labels[v] = strconv.Itoa(c)
	}
	return labels, nil
}

func revealScheme() Scheme {
	return Scheme{
		Name:     "reveal-2col",
		Decoder:  revealDecoder(),
		Prover:   revealProver{},
		Promise:  Promise{Lang: TwoCol(), InClass: (*graph.Graph).IsBipartite},
		CertBits: func(string) int { return 1 },
	}
}

func TestInstanceValidate(t *testing.T) {
	inst := NewInstance(graph.Path(4))
	if err := inst.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := inst
	bad.IDs = graph.IDs{1, 1, 2, 3}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if err := (Instance{}).Validate(); err == nil {
		t.Error("empty instance accepted")
	}
	noPorts := Instance{G: graph.Path(2)}
	if err := noPorts.Validate(); err == nil {
		t.Error("missing ports accepted")
	}
}

func TestNewLabeled(t *testing.T) {
	inst := NewInstance(graph.Path(3))
	if _, err := NewLabeled(inst, []string{"a"}); err == nil {
		t.Error("short labeling accepted")
	}
	l, err := NewLabeled(inst, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if l.Labels[2] != "c" {
		t.Error("labels not stored")
	}
}

func TestViewsCount(t *testing.T) {
	inst := NewInstance(graph.MustCycle(5))
	l := MustNewLabeled(inst, make([]string, 5))
	views, err := l.Views(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 5 {
		t.Fatalf("got %d views, want 5", len(views))
	}
	for _, mu := range views {
		if mu.N() != 3 {
			t.Errorf("cycle radius-1 view has %d nodes, want 3", mu.N())
		}
	}
}

func TestRunAnonymization(t *testing.T) {
	// A decoder that accepts iff it sees only zero IDs: Run must anonymize
	// for anonymous decoders and must not for non-anonymous ones.
	seeZeros := func(mu *view.View) bool { return mu.Anonymous() }
	inst := NewInstance(graph.Path(3))
	l := MustNewLabeled(inst, make([]string, 3))

	anon := NewDecoder(1, true, seeZeros)
	outs, err := Run(anon, l)
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range outs {
		if !ok {
			t.Errorf("anonymous decoder at node %d saw identifiers", v)
		}
	}

	named := NewDecoder(1, false, seeZeros)
	outs, err = Run(named, l)
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range outs {
		if ok {
			t.Errorf("non-anonymous decoder at node %d saw no identifiers", v)
		}
	}
}

func TestCheckCompleteness(t *testing.T) {
	s := revealScheme()
	for _, g := range []*graph.Graph{graph.Path(5), graph.MustCycle(6), graph.Grid(3, 3)} {
		if _, err := CheckCompleteness(s, NewInstance(g)); err != nil {
			t.Errorf("completeness on %v: %v", g, err)
		}
	}
}

func TestCheckCompletenessProverFailure(t *testing.T) {
	s := revealScheme()
	if _, err := CheckCompleteness(s, NewInstance(graph.MustCycle(5))); err == nil {
		t.Error("prover succeeded on an odd cycle")
	}
}

func TestCheckStrongSoundness(t *testing.T) {
	d := revealDecoder()
	lang := TwoCol()
	// Odd cycle with an improper labeling: the accepting set must induce a
	// bipartite subgraph.
	inst := NewInstance(graph.MustCycle(5))
	l := MustNewLabeled(inst, []string{"0", "1", "0", "1", "0"})
	if err := CheckStrongSoundness(d, lang, l); err != nil {
		t.Errorf("reveal decoder violated strong soundness: %v", err)
	}
}

func TestStrongSoundnessViolationError(t *testing.T) {
	// An always-accept decoder violates strong soundness on a triangle.
	always := NewDecoder(1, true, func(*view.View) bool { return true })
	inst := NewInstance(graph.MustCycle(3))
	l := MustNewLabeled(inst, make([]string, 3))
	err := CheckStrongSoundness(always, TwoCol(), l)
	if err == nil {
		t.Fatal("always-accept decoder passed strong soundness on a triangle")
	}
	var v *StrongSoundnessViolation
	if !errors.As(err, &v) {
		t.Fatalf("error type = %T, want *StrongSoundnessViolation", err)
	}
	if len(v.Accepting) != 3 {
		t.Errorf("violation accepting set = %v, want all 3 nodes", v.Accepting)
	}
	if v.Error() == "" {
		t.Error("empty error message")
	}
}

func TestCheckSoundness(t *testing.T) {
	d := revealDecoder()
	lang := TwoCol()
	inst := NewInstance(graph.MustCycle(3))
	l := MustNewLabeled(inst, []string{"0", "1", "0"})
	if err := CheckSoundness(d, lang, l); err != nil {
		t.Errorf("soundness check failed: %v", err)
	}
	// Yes-instances are vacuously fine even if all nodes accept.
	inst2 := NewInstance(graph.Path(2))
	l2 := MustNewLabeled(inst2, []string{"0", "1"})
	if err := CheckSoundness(d, lang, l2); err != nil {
		t.Errorf("soundness on yes-instance: %v", err)
	}
	always := NewDecoder(1, true, func(*view.View) bool { return true })
	if err := CheckSoundness(always, lang, l); err == nil {
		t.Error("always-accept decoder passed soundness on a triangle")
	}
}

func TestExhaustiveStrongSoundness(t *testing.T) {
	d := revealDecoder()
	lang := TwoCol()
	alphabet := []string{"0", "1", "x"}
	for _, g := range []*graph.Graph{graph.MustCycle(3), graph.MustCycle(5), graph.Complete(4)} {
		if err := ExhaustiveStrongSoundness(d, lang, NewInstance(g), alphabet); err != nil {
			t.Errorf("exhaustive strong soundness on %v: %v", g, err)
		}
	}
	always := NewDecoder(1, true, func(*view.View) bool { return true })
	if err := ExhaustiveStrongSoundness(always, lang, NewInstance(graph.MustCycle(3)), alphabet); err == nil {
		t.Error("always-accept decoder passed exhaustive check on a triangle")
	}
}

func TestFuzzStrongSoundness(t *testing.T) {
	d := revealDecoder()
	lang := TwoCol()
	rng := rand.New(rand.NewSource(42))
	gen := func(_ int, rng *rand.Rand) string {
		return []string{"0", "1", "junk"}[rng.Intn(3)]
	}
	if err := FuzzStrongSoundness(d, lang, NewInstance(graph.Petersen()), 200, rng, gen); err != nil {
		t.Errorf("fuzz strong soundness: %v", err)
	}
}

func TestCheckAnonymous(t *testing.T) {
	inst := NewInstance(graph.Path(3))
	l := MustNewLabeled(inst, []string{"0", "1", "0"})
	idSets := []graph.IDs{{1, 2, 3}, {3, 1, 2}, {7, 9, 8}}
	bounds := []int{3, 3, 9}
	if err := CheckAnonymous(revealDecoder(), l, idSets, bounds); err != nil {
		t.Errorf("anonymous decoder failed anonymity check: %v", err)
	}
	// A decoder keying on the center's ID parity is not anonymous.
	idDep := NewDecoder(1, false, func(mu *view.View) bool {
		return mu.IDs[view.Center]%2 == 0
	})
	if err := CheckAnonymous(idDep, l, idSets, bounds); err == nil {
		t.Error("ID-dependent decoder passed anonymity check")
	}
	if err := CheckAnonymous(revealDecoder(), l, idSets, []int{3}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestCheckOrderInvariant(t *testing.T) {
	inst := NewInstance(graph.Path(3))
	l := MustNewLabeled(inst, []string{"0", "1", "0"})
	// Same order {1,2,3} vs {10,20,30}; different order {2,1,3}.
	idSets := []graph.IDs{{1, 2, 3}, {10, 20, 30}, {2, 1, 3}}
	// Order-invariant but not anonymous: accept iff center has the locally
	// smallest ID.
	ordInv := NewDecoder(1, false, func(mu *view.View) bool {
		own := mu.IDs[view.Center]
		for _, id := range mu.IDs {
			if id < own {
				return false
			}
		}
		return true
	})
	if err := CheckOrderInvariant(ordInv, l, idSets, 30); err != nil {
		t.Errorf("order-invariant decoder failed: %v", err)
	}
	// ID-value-dependent: accept iff center ID is even.
	idDep := NewDecoder(1, false, func(mu *view.View) bool {
		return mu.IDs[view.Center]%2 == 0
	})
	if err := CheckOrderInvariant(idDep, l, idSets, 30); err == nil {
		t.Error("value-dependent decoder passed order-invariance check")
	}
}

func TestLanguageKCol(t *testing.T) {
	three := KCol(3)
	if !three.Contains(graph.MustCycle(5)) {
		t.Error("C5 should be 3-colorable")
	}
	if three.Contains(graph.Complete(4)) {
		t.Error("K4 should not be 3-colorable")
	}
	if !three.ValidWitness(graph.MustCycle(3), []int{0, 1, 2}) {
		t.Error("valid witness rejected")
	}
	if three.ValidWitness(graph.MustCycle(3), []int{0, 1, 3}) {
		t.Error("out-of-palette witness accepted")
	}
	if three.ValidWitness(graph.MustCycle(3), []int{0, 1}) {
		t.Error("short witness accepted")
	}
	if three.ValidWitness(graph.Path(2), []int{1, 1}) {
		t.Error("improper witness accepted")
	}
}

func TestTwoColName(t *testing.T) {
	lang := TwoCol()
	if lang.Name != "2-col" {
		t.Errorf("name = %q, want 2-col", lang.Name)
	}
	if !lang.Contains(graph.Grid(3, 3)) || lang.Contains(graph.Petersen()) {
		t.Error("TwoCol membership wrong")
	}
}

func TestPromiseClassify(t *testing.T) {
	p := Promise{Lang: TwoCol(), InClass: func(g *graph.Graph) bool { return g.IsCycleGraph() && g.N()%2 == 0 }}
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"even cycle yes", graph.MustCycle(6), 1},
		{"odd cycle no", graph.MustCycle(5), -1},
		{"bipartite non-cycle dont-care", graph.Path(4), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.Classify(tt.g); got != tt.want {
				t.Errorf("Classify = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestLabelBits(t *testing.T) {
	s := Scheme{}
	if got := s.LabelBits("ab"); got != 16 {
		t.Errorf("default LabelBits = %d, want 16", got)
	}
	s.CertBits = func(string) int { return 3 }
	if got := s.MaxLabelBits([]string{"a", "bb"}); got != 3 {
		t.Errorf("MaxLabelBits = %d, want 3", got)
	}
}

func TestWithIDsWithPorts(t *testing.T) {
	inst := NewAnonymousInstance(graph.Path(3))
	if inst.IDs != nil {
		t.Fatal("anonymous instance has IDs")
	}
	withIDs := inst.WithIDs(graph.IDs{5, 6, 7}, 10)
	if withIDs.IDs == nil || withIDs.NBound != 10 {
		t.Error("WithIDs did not apply")
	}
	if inst.IDs != nil {
		t.Error("WithIDs mutated the receiver")
	}
	pt := graph.DefaultPorts(inst.G)
	if got := inst.WithPorts(pt); got.Prt != pt {
		t.Error("WithPorts did not apply")
	}
}

// Property: for anonymous decoders, Run is invariant under identifier
// reassignment on random instances and labelings.
func TestAnonymousRunInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNP(6, 0.4, rng)
		labels := make([]string, g.N())
		for v := range labels {
			labels[v] = strconv.Itoa(rng.Intn(3))
		}
		d := revealDecoder()
		base := MustNewLabeled(NewInstance(g), labels)
		outA, err := Run(d, base)
		if err != nil {
			return false
		}
		shuffled := base
		perm := rng.Perm(g.N())
		ids := make(graph.IDs, g.N())
		for v := range ids {
			ids[v] = perm[v]*7 + 3
		}
		shuffled.IDs = ids
		shuffled.NBound = base.NBound // keep the known bound fixed
		outB, err := Run(d, shuffled)
		if err != nil {
			return false
		}
		for v := range outA {
			if outA[v] != outB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
