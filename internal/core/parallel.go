package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"hidinglcp/internal/cancel"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/obs"
)

func resolveShardsWorkers(shards, workers int) (int, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards <= 0 {
		shards = 4 * workers
	}
	if workers > shards {
		workers = shards
	}
	return shards, workers
}

// ExhaustiveStrongSoundnessParallel is ExhaustiveStrongSoundness with the
// |alphabet|^n labeling space split into labeling-prefix shards
// (graph.EnumLabelingsShard) searched by a worker pool. It returns exactly
// the error the sequential search returns: the violation at the
// lexicographically first violating labeling, found via rank-based pruning —
// workers abandon any shard position whose labeling rank exceeds the best
// violation seen so far, and the minimum-rank violation is reported.
//
// shards <= 0 selects 4 per worker; workers <= 0 selects GOMAXPROCS. The
// search falls back to the sequential path when only one worker or shard
// results, or when the labeling space is too large for 64-bit ranks.
func ExhaustiveStrongSoundnessParallel(d Decoder, lang Language, inst Instance, alphabet []string, shards, workers int) error {
	return exhaustiveStrongSoundnessParallel(nil, obs.Scope{}, d, lang, inst, alphabet, shards, workers)
}

// ExhaustiveStrongSoundnessParallelCtx is the scoped parallel search under
// cooperative cancellation: when ctx fires, every worker abandons its
// current shard at the next labeling checkpoint, the pool drains through
// the WaitGroup barrier (no goroutine outlives the call — pinned by
// sanitize.ProbeExhaustiveStrongSoundnessParallelCancel), and the error
// wraps context.Cause(ctx). A cancelled search never reports a violation:
// its partial answer would depend on scheduling. With a context that never
// fires the result is exactly the Scoped search's.
func ExhaustiveStrongSoundnessParallelCtx(ctx context.Context, sc obs.Scope, d Decoder, lang Language, inst Instance, alphabet []string, shards, workers int) error {
	return exhaustiveStrongSoundnessParallel(ctx, sc, d, lang, inst, alphabet, shards, workers)
}

// ExhaustiveStrongSoundnessParallelScoped is ExhaustiveStrongSoundnessParallel
// reporting into an observability scope: per-worker sweep tallies (labelings
// checked, decoder memo hits, language memo hits) are harvested after the
// worker barrier, shard completion advances the scope's progress phase, and
// pruned shard abandonments are counted. A zero Scope degrades to exactly
// the unscoped search; verdicts are never affected by instrumentation
// (enforced by the sanitizer's instrumentation probe).
func ExhaustiveStrongSoundnessParallelScoped(sc obs.Scope, d Decoder, lang Language, inst Instance, alphabet []string, shards, workers int) error {
	return exhaustiveStrongSoundnessParallel(nil, sc, d, lang, inst, alphabet, shards, workers)
}

// exhaustiveStrongSoundnessParallel is the search beneath the three
// exported variants. A nil ctx is the never-cancelled context
// (internal/cancel), so the bare and Scoped entry points need no
// background context of their own.
func exhaustiveStrongSoundnessParallel(ctx context.Context, sc obs.Scope, d Decoder, lang Language, inst Instance, alphabet []string, shards, workers int) error {
	n := inst.G.N()
	shards, workers = resolveShardsWorkers(shards, workers)
	if workers == 1 || shards == 1 || !graph.LabelingRankFits(n, len(alphabet)) {
		sc.Counter("core.sweep.sequential_fallback").Inc()
		if ctx == nil {
			return ExhaustiveStrongSoundness(d, lang, inst, alphabet)
		}
		return exhaustiveSequentialCtx(ctx, sc, d, lang, inst, alphabet)
	}

	span := sc.Span(sc.Label("core.exhaustive"))
	span.SetAttr("shards", fmt.Sprint(shards))
	span.SetAttr("workers", fmt.Sprint(workers))
	defer span.End()
	sc.Prog().StartPhase(sc.Label("exhaustive"), int64(shards))
	defer sc.Prog().EndPhase()
	if sc.EventsEnabled() {
		sc.EmitSpanEvent(span, obs.LevelInfo, "core.sweep.start",
			obs.Fi("shards", int64(shards)), obs.Fi("workers", int64(workers)))
	}
	shardsDone := sc.Counter("core.sweep.shards.done")
	pruned := sc.Counter("core.sweep.shards.pruned")

	var best atomic.Uint64
	best.Store(math.MaxUint64)
	var mu sync.Mutex
	found := map[uint64]error{}
	record := func(r uint64, err error) {
		for {
			cur := best.Load()
			if r >= cur {
				return
			}
			if best.CompareAndSwap(cur, r) {
				mu.Lock()
				found[r] = err
				mu.Unlock()
				return
			}
		}
	}

	sweeps := make([]*labelSweep, workers)
	// Cancellation checkpoints sit at shard claims and at every labeling:
	// the watcher arms the flag when ctx fires, workers abandon their
	// current shard position, and the WaitGroup barrier drains the pool.
	var aborted atomic.Bool
	release := cancel.Watch(ctx, &aborted)
	defer release()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a sweep: templates and verdict memos are
			// per-goroutine, so workers never contend on them.
			sweep, serr := newLabelSweep(d, lang, inst, alphabet)
			if serr != nil {
				record(0, fmt.Errorf("extracting views: %w", serr))
				return
			}
			sweeps[w] = sweep
			for {
				s := int(next.Add(1)) - 1
				if s >= shards || aborted.Load() {
					return
				}
				graph.EnumLabelingsShard(n, len(alphabet), s, shards, func(idx []int) bool {
					if aborted.Load() {
						return false
					}
					r := graph.LabelingRank(idx, len(alphabet))
					// Ranks increase within a shard, so everything past the
					// best violation is prunable: any violation there would
					// rank higher and lose to the recorded one anyway.
					if r >= best.Load() {
						pruned.Inc()
						return false
					}
					if err := sweep.check(idx); err != nil {
						record(r, err)
						return false
					}
					return true
				})
				shardsDone.Inc()
				sc.Prog().Add(1)
			}
		}(w)
	}
	wg.Wait()
	for _, sweep := range sweeps {
		sweep.harvest(sc)
	}
	if err := cancel.Err(ctx, "exhaustive soundness sweep"); err != nil {
		sc.Counter("core.sweep.cancelled").Inc()
		if sc.EventsEnabled() {
			sc.EmitSpanEvent(span, obs.LevelWarn, "core.sweep.cancelled",
				obs.Fi("shards", int64(shards)))
		}
		return err
	}

	r := best.Load()
	if r == math.MaxUint64 {
		if sc.EventsEnabled() {
			sc.EmitSpanEvent(span, obs.LevelInfo, "core.sweep.done",
				obs.Fi("violations", 0))
		}
		return nil
	}
	sc.Counter("core.sweep.violations").Inc()
	if sc.EventsEnabled() {
		// Rank only: it identifies the violating labeling without revealing
		// any certificate content (hiding contract). The full witness stays
		// in the returned error, which never reaches an obs sink.
		sc.EmitSpanEvent(span, obs.LevelWarn, "core.sweep.violation",
			obs.F("rank", fmt.Sprint(r)))
	}
	mu.Lock()
	defer mu.Unlock()
	return found[r]
}

// exhaustiveSequentialCtx is ExhaustiveStrongSoundness with a per-labeling
// cancellation checkpoint — the path the parallel entry points fall back to
// when the search degenerates to one worker or the labeling space outgrows
// 64-bit ranks but the caller still holds a real context. A cancelled
// search never reports a violation.
func exhaustiveSequentialCtx(ctx context.Context, sc obs.Scope, d Decoder, lang Language, inst Instance, alphabet []string) error {
	n := inst.G.N()
	sweep, serr := newLabelSweep(d, lang, inst, alphabet)
	if serr != nil {
		return fmt.Errorf("extracting views: %w", serr)
	}
	var aborted atomic.Bool
	release := cancel.Watch(ctx, &aborted)
	defer release()
	var violation error
	graph.EnumLabelings(n, len(alphabet), func(idx []int) bool {
		if aborted.Load() {
			return false
		}
		if err := sweep.check(idx); err != nil {
			violation = err
			return false
		}
		return true
	})
	sweep.harvest(sc)
	if err := cancel.Err(ctx, "exhaustive soundness sweep"); err != nil {
		sc.Counter("core.sweep.cancelled").Inc()
		return err
	}
	return violation
}

// FuzzStrongSoundnessParallel is FuzzStrongSoundness with the trials checked
// by a worker pool. The labelings are pre-drawn from rng in sequential trial
// order — the identical random stream the sequential fuzzer consumes — and
// the violation at the lowest trial index is reported, so the result matches
// FuzzStrongSoundness exactly. (When a violation exists, the sequential
// fuzzer stops drawing at the violating trial while this variant has already
// drawn all of them, so the final rng positions differ; the reported
// violation does not.)
func FuzzStrongSoundnessParallel(d Decoder, lang Language, inst Instance, trials int, rng *rand.Rand, gen func(node int, rng *rand.Rand) string, workers int) error {
	return FuzzStrongSoundnessParallelScoped(obs.Scope{}, d, lang, inst, trials, rng, gen, workers)
}

// FuzzStrongSoundnessParallelScoped is FuzzStrongSoundnessParallel reporting
// into an observability scope: trials advance the scope's progress phase,
// and the per-worker sweep tallies are harvested after the worker barrier.
// A zero Scope degrades to exactly the unscoped fuzzer.
func FuzzStrongSoundnessParallelScoped(sc obs.Scope, d Decoder, lang Language, inst Instance, trials int, rng *rand.Rand, gen func(node int, rng *rand.Rand) string, workers int) error {
	n := inst.G.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	span := sc.Span(sc.Label("core.fuzz"))
	span.SetAttr("trials", fmt.Sprint(trials))
	span.SetAttr("workers", fmt.Sprint(workers))
	defer span.End()
	sc.Prog().StartPhase(sc.Label("fuzz"), int64(trials))
	defer sc.Prog().EndPhase()
	trialsChecked := sc.Counter("core.fuzz.trials.checked")

	drawn := make([][]string, trials)
	for t := range drawn {
		labels := make([]string, n)
		for v := range labels {
			labels[v] = gen(v, rng)
		}
		drawn[t] = labels
	}

	bestT := int64(trials)
	var best atomic.Int64
	best.Store(bestT)
	var mu sync.Mutex
	found := map[int64]error{}
	sweeps := make([]*labelSweep, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sweep, serr := newLabelSweep(d, lang, inst, nil)
			if serr == nil {
				sweeps[w] = sweep
			}
			for {
				t := next.Add(1) - 1
				// Trials are claimed in increasing order, so once t passes
				// the best violation every later claim does too.
				if t >= int64(trials) || t >= best.Load() {
					return
				}
				var err error
				if serr != nil {
					err = fmt.Errorf("extracting views: %w", serr)
				} else {
					err = sweep.checkLabels(drawn[t])
				}
				trialsChecked.Inc()
				sc.Prog().Add(1)
				if err != nil {
					for {
						cur := best.Load()
						if t >= cur {
							break
						}
						if best.CompareAndSwap(cur, t) {
							mu.Lock()
							found[t] = err
							mu.Unlock()
							break
						}
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, sweep := range sweeps {
		sweep.harvest(sc)
	}

	t := best.Load()
	if t == int64(trials) {
		return nil
	}
	sc.Counter("core.fuzz.violations").Inc()
	mu.Lock()
	defer mu.Unlock()
	return fmt.Errorf("trial %d: %w", t, found[t])
}
