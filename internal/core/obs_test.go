package core

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/obs"
	"hidinglcp/internal/view"
)

// TestExhaustiveScopedEquivalence checks that a live scope never changes
// the search result, and that the sweep counters land nonzero and
// consistent after a full exhaustive pass.
func TestExhaustiveScopedEquivalence(t *testing.T) {
	d := revealDecoder()
	lang := TwoCol()
	inst := NewInstance(graph.Path(4))
	alphabet := []string{"0", "1", "x"}

	bare := ExhaustiveStrongSoundnessParallel(d, lang, inst, alphabet, 8, 4)
	sc := obs.NewScope().WithTracer(obs.NewTracer(64))
	scoped := ExhaustiveStrongSoundnessParallelScoped(sc, d, lang, inst, alphabet, 8, 4)
	if (bare == nil) != (scoped == nil) {
		t.Fatalf("scoped search changed the verdict: bare %v, scoped %v", bare, scoped)
	}

	checked := sc.Counter("core.sweep.labelings.checked").Value()
	decides := sc.Counter("core.sweep.decide.calls").Value()
	memoHits := sc.Counter("core.sweep.decide.memo_hits").Value()
	inner := sc.Counter("core.sweep.decide.inner").Value()
	done := sc.Counter("core.sweep.shards.done").Value()
	if checked == 0 || decides == 0 || memoHits == 0 || done == 0 {
		t.Errorf("headline counters must be nonzero: checked=%d decide.calls=%d memo_hits=%d shards.done=%d",
			checked, decides, memoHits, done)
	}
	if decides != memoHits+inner {
		t.Errorf("decide.calls (%d) != memo_hits (%d) + inner (%d)", decides, memoHits, inner)
	}
	// The clean search visits all |alphabet|^n labelings exactly once
	// across shards (no pruning without a violation).
	if want := int64(3 * 3 * 3 * 3); checked != want {
		t.Errorf("labelings.checked = %d, want %d", checked, want)
	}
	langTotal := sc.Counter("core.sweep.lang.evals").Value() + sc.Counter("core.sweep.lang.memo_hits").Value()
	if langTotal != checked {
		t.Errorf("lang evals+memo_hits (%d) != labelings checked (%d)", langTotal, checked)
	}
	if sc.Counter("core.sweep.violations").Value() != 0 {
		t.Errorf("violations counter nonzero on a sound decoder")
	}

	var haveSpan bool
	for _, sp := range sc.Tracer().Spans() {
		if sp.Name == "core.exhaustive" {
			haveSpan = true
		}
	}
	if !haveSpan {
		t.Error("no core.exhaustive span recorded")
	}
}

// TestExhaustiveScopedViolationCounters checks the pruning-side counters on
// an unsound decoder: the violation is found, counted, and prunes work.
func TestExhaustiveScopedViolationCounters(t *testing.T) {
	d := centerNonzeroDecoder()
	lang := TwoCol()
	inst := NewInstance(graph.MustCycle(5))
	alphabet := []string{"0", "1", "2"}

	bare := ExhaustiveStrongSoundnessParallel(d, lang, inst, alphabet, 8, 4)
	sc := obs.NewScope()
	scoped := ExhaustiveStrongSoundnessParallelScoped(sc, d, lang, inst, alphabet, 8, 4)
	bareLabels, scopedLabels := violationLabels(t, bare), violationLabels(t, scoped)
	if len(bareLabels) == 0 || len(scopedLabels) == 0 {
		t.Fatalf("expected a violation from both searches: bare %v, scoped %v", bare, scoped)
	}
	for i := range bareLabels {
		if bareLabels[i] != scopedLabels[i] {
			t.Fatalf("scoped violation %v != bare %v", scopedLabels, bareLabels)
		}
	}
	if got := sc.Counter("core.sweep.violations").Value(); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
	if sc.Counter("core.sweep.shards.pruned").Value() == 0 {
		t.Error("expected pruned shard positions after an early violation")
	}
}

// TestExhaustiveScopedSequentialFallback pins the fallback counter: a
// single-worker request must route to the sequential search and say so.
func TestExhaustiveScopedSequentialFallback(t *testing.T) {
	sc := obs.NewScope()
	err := ExhaustiveStrongSoundnessParallelScoped(sc, revealDecoder(), TwoCol(), NewInstance(graph.Path(3)), []string{"0", "1", "x"}, 1, 1)
	if err != nil {
		t.Fatalf("sequential fallback failed: %v", err)
	}
	if got := sc.Counter("core.sweep.sequential_fallback").Value(); got != 1 {
		t.Errorf("sequential_fallback = %d, want 1", got)
	}
}

// TestFuzzScopedCounters checks the fuzz driver's trial accounting and that
// instrumentation leaves the reported violation untouched.
func TestFuzzScopedCounters(t *testing.T) {
	d := revealDecoder()
	lang := TwoCol()
	inst := NewInstance(graph.Path(4))
	gen := func(node int, rng *rand.Rand) string {
		return []string{"0", "1", "x"}[rng.Intn(3)]
	}

	bare := FuzzStrongSoundnessParallel(d, lang, inst, 200, rand.New(rand.NewSource(7)), gen, 4)
	sc := obs.NewScope()
	scoped := FuzzStrongSoundnessParallelScoped(sc, d, lang, inst, 200, rand.New(rand.NewSource(7)), gen, 4)
	if (bare == nil) != (scoped == nil) {
		t.Fatalf("scoped fuzz changed the verdict: bare %v, scoped %v", bare, scoped)
	}
	if got := sc.Counter("core.fuzz.trials.checked").Value(); got != 200 {
		t.Errorf("trials.checked = %d, want 200", got)
	}
	if sc.Counter("core.sweep.decide.calls").Value() == 0 {
		t.Error("fuzz sweep recorded no decide calls")
	}
}

// TestInstrumentDecoder checks the counting wrapper: verdicts are delegated
// unchanged, calls and accepts are tallied, and a disabled scope is free.
func TestInstrumentDecoder(t *testing.T) {
	inner := NewDecoder(1, true, func(mu *view.View) bool {
		return mu.Labels[view.Center] == "1"
	})
	if got := InstrumentDecoder(inner, obs.Scope{}, "x"); got != inner {
		t.Error("disabled scope must return the decoder unwrapped")
	}

	sc := obs.NewScope()
	d := InstrumentDecoder(inner, sc, "probe")
	if d.Rounds() != inner.Rounds() || d.Anonymous() != inner.Anonymous() {
		t.Error("wrapper changed Rounds/Anonymous")
	}
	var ex view.Extractor
	inst := NewInstance(graph.Path(2))
	for i, want := range []bool{false, true} {
		labels := []string{"0", "0"}
		if want {
			labels[0] = "1"
		}
		mu, err := ex.Extract(inst.G, inst.Prt, nil, labels, inst.NBound, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Decide(mu); got != want {
			t.Errorf("trial %d: wrapper verdict %v, want %v", i, got, want)
		}
	}
	if got := sc.Counter("probe.decide.calls").Value(); got != 2 {
		t.Errorf("decide.calls = %d, want 2", got)
	}
	if got := sc.Counter("probe.decide.accepts").Value(); got != 1 {
		t.Errorf("decide.accepts = %d, want 1", got)
	}
}
