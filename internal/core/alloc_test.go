//go:build !race

package core

import (
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// rejectAllDecoder rejects every view: the accepting set stays empty, so a
// strong-soundness sweep never constructs a violation and the steady state
// is pure memo traffic.
type rejectAllDecoder struct{}

func (rejectAllDecoder) Rounds() int            { return 1 }
func (rejectAllDecoder) Anonymous() bool        { return true }
func (rejectAllDecoder) Decide(*view.View) bool { return false }

// TestLabelSweepSteadyStateAllocs pins the memoized soundness sweep at zero
// allocations once every (node, neighborhood-labeling) rank and the language
// verdict are memoized. The race detector instruments allocations, so this
// runs only in plain builds.
func TestLabelSweepSteadyStateAllocs(t *testing.T) {
	inst := NewAnonymousInstance(graph.MustCycle(4))
	alphabet := []string{"0", "1"}
	s, err := newLabelSweep(rejectAllDecoder{}, TwoCol(), inst, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	sweep := func() {
		graph.EnumLabelings(inst.G.N(), len(alphabet), func(idx []int) bool {
			if err := s.check(idx); err != nil {
				t.Fatalf("reject-all sweep found a violation: %v", err)
			}
			return true
		})
	}
	sweep() // fill the rank and language memos
	if n := testing.AllocsPerRun(50, sweep); n > 2 {
		t.Errorf("memoized sweep allocates %.1f objects per 2^4-labeling pass, want <= 2", n)
	}
}

// TestMemoDecoderHitAllocs pins the interned-verdict fast path at zero
// allocations.
func TestMemoDecoderHitAllocs(t *testing.T) {
	views := memoTestViews(t)
	in := view.NewInterner()
	md := NewMemoDecoder(rejectAllDecoder{}, in)
	handles := make([]view.Handle, len(views))
	for i, mu := range views {
		handles[i] = in.Intern(mu)
		md.DecideInterned(handles[i], mu)
	}
	if n := testing.AllocsPerRun(100, func() {
		for i, mu := range views {
			md.DecideInterned(handles[i], mu)
		}
	}); n != 0 {
		t.Errorf("memo-hit DecideInterned allocates %.1f objects per pass, want 0", n)
	}
}
