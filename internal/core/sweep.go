package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"hidinglcp/internal/obs"
	"hidinglcp/internal/view"
)

// labelSweep accelerates repeated strong-soundness checks of many labelings
// of one fixed instance: per-node view templates amortize extraction across
// labelings (only the per-view label slice is rebuilt), and per-node
// verdict memos keyed by the node's neighborhood labeling amortize decoder
// calls. A labelSweep is not safe for concurrent use; the parallel drivers
// give each worker its own.
//
// The sweep reproduces the sequential check exactly: same decoder verdicts
// (decoders are pure functions of the view), same induced subgraph, same
// first violation.
type labelSweep struct {
	d        Decoder
	lang     Language
	inst     Instance
	alphabet []string
	tpl      []*view.Template
	// pows[v][i] is |alphabet|^i for ranking node v's neighborhood labeling
	// in check; nil when the rank would overflow uint64.
	pows [][]uint64
	memo []map[uint64]bool
	// smemo memoizes checkLabels verdicts by the node's concatenated
	// (length-prefixed) host labels, for label streams outside the alphabet.
	smemo  []map[string]bool
	labels []string
	acc    []int
	keyBuf []byte
	// mu is the scratch view refilled per memo-miss decoder call
	// (view.Template.InstantiateInto). Decoders are pure functions of the
	// view (pinned by the decoderpurity analyzer) and the sweep never
	// retains or interns the instance, so one scratch view per sweep is
	// safe.
	mu view.View
	// langMemo memoizes lang.Contains by accepting-set bitmask (instances
	// with at most 64 nodes): the language verdict is a pure function of
	// the induced subgraph, which the accepting set determines.
	langMemo map[uint64]bool
	useMask  bool

	// Plain tallies, private to the owning goroutine (a labelSweep is
	// single-goroutine by contract); the scoped parallel drivers harvest
	// them after their WaitGroup barrier.
	nChecked        int64 // labelings verified
	nDecide         int64 // per-node verdicts requested
	nDecideMemoHits int64 // verdicts served from the rank/string memos
	nDecideInner    int64 // verdicts that invoked the decoder
	nLangEvals      int64 // language membership evaluations
	nLangMemoHits   int64 // language verdicts served from the bitmask memo
}

// harvest folds the sweep's tallies into the scope's counters. Call only
// after the owning goroutine has finished sweeping.
func (s *labelSweep) harvest(sc obs.Scope) {
	if s == nil || !sc.Enabled() {
		return
	}
	sc.Counter("core.sweep.labelings.checked").Add(s.nChecked)
	sc.Counter("core.sweep.decide.calls").Add(s.nDecide)
	sc.Counter("core.sweep.decide.memo_hits").Add(s.nDecideMemoHits)
	sc.Counter("core.sweep.decide.inner").Add(s.nDecideInner)
	sc.Counter("core.sweep.lang.evals").Add(s.nLangEvals)
	sc.Counter("core.sweep.lang.memo_hits").Add(s.nLangMemoHits)
}

// newLabelSweep extracts one view template per node of inst. The returned
// error matches the text of the legacy per-labeling extraction error
// ("node %d: ..."), which only triggers on malformed instances.
func newLabelSweep(d Decoder, lang Language, inst Instance, alphabet []string) (*labelSweep, error) {
	n := inst.G.N()
	s := &labelSweep{
		d: d, lang: lang, inst: inst, alphabet: alphabet,
		tpl:      make([]*view.Template, n),
		pows:     make([][]uint64, n),
		memo:     make([]map[uint64]bool, n),
		smemo:    make([]map[string]bool, n),
		labels:   make([]string, n),
		acc:      make([]int, 0, n),
		langMemo: make(map[uint64]bool),
		useMask:  n <= 64,
	}
	ids := inst.IDs
	if d.Anonymous() {
		// Anonymous decoders see anonymized views; extracting without
		// identifiers yields the same views without the per-call clone.
		ids = nil
	}
	var ex view.Extractor
	r := d.Rounds()
	a := uint64(len(alphabet))
	for v := 0; v < n; v++ {
		t, err := ex.Template(inst.G, inst.Prt, ids, inst.NBound, v, r)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", v, err)
		}
		s.tpl[v] = t
		s.smemo[v] = make(map[string]bool)
		pows := make([]uint64, t.N())
		ok := true
		p := uint64(1)
		for i := range pows {
			pows[i] = p
			if a != 0 && p > math.MaxUint64/a {
				ok = false
				break
			}
			p *= a
		}
		if ok {
			s.pows[v] = pows
			s.memo[v] = make(map[uint64]bool)
		}
	}
	return s, nil
}

// check verifies strong soundness for the labeling alphabet[idx[0]],
// alphabet[idx[1]], … — the EnumLabelings representation.
func (s *labelSweep) check(idx []int) error {
	for v, a := range idx {
		s.labels[v] = s.alphabet[a]
	}
	return s.verify(s.labels, func(v int) bool {
		t := s.tpl[v]
		if s.memo[v] == nil {
			s.nDecideInner++
			return s.d.Decide(t.InstantiateInto(&s.mu, s.labels))
		}
		rank := uint64(0)
		for i, w := range t.Hosts() {
			rank += uint64(idx[w]) * s.pows[v][i]
		}
		if out, ok := s.memo[v][rank]; ok {
			s.nDecideMemoHits++
			return out
		}
		s.nDecideInner++
		out := s.d.Decide(t.InstantiateInto(&s.mu, s.labels))
		s.memo[v][rank] = out
		return out
	})
}

// checkLabels verifies strong soundness for an arbitrary labeling (the fuzz
// path). len(labels) must equal the instance size.
func (s *labelSweep) checkLabels(labels []string) error {
	return s.verify(labels, func(v int) bool {
		t := s.tpl[v]
		kb := s.keyBuf[:0]
		for _, w := range t.Hosts() {
			kb = binary.AppendUvarint(kb, uint64(len(labels[w])))
			kb = append(kb, labels[w]...)
		}
		s.keyBuf = kb
		if out, ok := s.smemo[v][string(kb)]; ok {
			s.nDecideMemoHits++
			return out
		}
		s.nDecideInner++
		out := s.d.Decide(t.InstantiateInto(&s.mu, labels))
		s.smemo[v][string(kb)] = out
		return out
	})
}

func (s *labelSweep) verify(labels []string, decide func(v int) bool) error {
	s.nChecked++
	acc := s.acc[:0]
	var mask uint64
	for v := range s.tpl {
		s.nDecide++
		if decide(v) {
			acc = append(acc, v)
			mask |= 1 << uint(v&63)
		}
	}
	s.acc = acc
	var ok, hit bool
	if s.useMask {
		ok, hit = s.langMemo[mask]
	}
	if hit {
		s.nLangMemoHits++
	} else {
		s.nLangEvals++
		sub, _ := s.inst.G.InducedSubgraph(acc)
		ok = s.lang.Contains(sub)
		if s.useMask {
			s.langMemo[mask] = ok
		}
	}
	if !ok {
		return &StrongSoundnessViolation{
			Labeled:   MustNewLabeled(s.inst, append([]string(nil), labels...)),
			Accepting: append([]int(nil), acc...),
		}
	}
	return nil
}
