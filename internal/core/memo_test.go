package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// countingDecoder wraps a decoder and counts Decide calls, to verify the
// memo layer's deduplication.
type countingDecoder struct {
	Decoder
	mu    sync.Mutex
	calls int
}

func (c *countingDecoder) Decide(mu *view.View) bool {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.Decoder.Decide(mu)
}

func memoTestViews(t testing.TB) []*view.View {
	t.Helper()
	var out []*view.View
	for _, g := range []*graph.Graph{graph.MustCycle(4), graph.MustCycle(6), graph.Grid(2, 3)} {
		pt := graph.DefaultPorts(g)
		labels := make([]string, g.N())
		for i := range labels {
			labels[i] = []string{"0", "1"}[i%2]
		}
		for v := 0; v < g.N(); v++ {
			out = append(out, view.MustExtract(g, pt, nil, labels, g.N(), v, 1))
		}
	}
	return out
}

// TestMemoDecoderEquivalence checks that the memoized decoder returns
// exactly the inner decoder's verdicts while calling it once per class.
func TestMemoDecoderEquivalence(t *testing.T) {
	views := memoTestViews(t)
	inner := &countingDecoder{Decoder: revealDecoder()}
	md := NewMemoDecoder(inner, nil)
	if md.Rounds() != inner.Rounds() || md.Anonymous() != inner.Anonymous() {
		t.Fatal("memo decoder does not pass through Rounds/Anonymous")
	}
	want := make([]bool, len(views))
	for i, mu := range views {
		want[i] = revealDecoder().Decide(mu)
	}
	for pass := 0; pass < 3; pass++ {
		for i, mu := range views {
			if got := md.Decide(mu.Clone()); got != want[i] {
				t.Fatalf("pass %d view %d: memoized verdict %v, want %v", pass, i, got, want[i])
			}
		}
	}
	distinct := make(map[string]bool)
	for _, mu := range views {
		distinct[string(mu.BinKey())] = true
	}
	if inner.calls != len(distinct) {
		t.Fatalf("inner decoder called %d times, want one per class (%d)", inner.calls, len(distinct))
	}
	calls, misses := md.Stats()
	if int(calls) != 3*len(views) || int(misses) != len(distinct) {
		t.Fatalf("Stats() = (%d, %d), want (%d, %d)", calls, misses, 3*len(views), len(distinct))
	}
}

// TestMemoDecoderInterned checks the handle-keyed entry point against the
// view-keyed one, sharing one interner.
func TestMemoDecoderInterned(t *testing.T) {
	views := memoTestViews(t)
	in := view.NewInterner()
	md := NewMemoDecoder(revealDecoder(), in)
	if md.Interner() != in {
		t.Fatal("Interner() does not return the shared interner")
	}
	for _, mu := range views {
		h := in.Intern(mu)
		if md.DecideInterned(h, mu) != md.Decide(mu.Clone()) {
			t.Fatal("DecideInterned disagrees with Decide")
		}
	}
}

// TestMemoDecoderConcurrent hammers one memoized decoder from many
// goroutines; correctness is re-checked sequentially afterwards and the
// race detector covers the synchronization.
func TestMemoDecoderConcurrent(t *testing.T) {
	views := memoTestViews(t)
	md := NewMemoDecoder(revealDecoder(), nil)
	ref := revealDecoder()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mu := views[(i*5+w)%len(views)]
				if md.Decide(mu.Clone()) != ref.Decide(mu.Clone()) {
					select {
					case errc <- errors.New("concurrent memo verdict mismatch"):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// acceptAllDecoder makes violations easy to manufacture: every node accepts,
// so the accepting set is the whole instance.
func acceptAllDecoder() Decoder {
	return NewDecoder(1, true, func(mu *view.View) bool { return true })
}

// referenceExhaustive is the pre-sweep formulation: one fresh Labeled and a
// full CheckStrongSoundness per labeling.
func referenceExhaustive(d Decoder, lang Language, inst Instance, alphabet []string) error {
	n := inst.G.N()
	var firstErr error
	graph.EnumLabelings(n, len(alphabet), func(idx []int) bool {
		labels := make([]string, n)
		for v, a := range idx {
			labels[v] = alphabet[a]
		}
		l, err := NewLabeled(inst, labels)
		if err != nil {
			firstErr = err
			return false
		}
		if err := CheckStrongSoundness(d, lang, l); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

// TestSweepMatchesReference compares the template/memo sweep against the
// per-labeling reference on instances with and without violations,
// including the identity of the first violation.
func TestSweepMatchesReference(t *testing.T) {
	alphabet := []string{"0", "1", "x"}
	cases := []struct {
		name string
		d    Decoder
		lang Language
		inst Instance
	}{
		{"reveal-no-violation-C4", revealDecoder(), TwoCol(), NewAnonymousInstance(graph.MustCycle(4))},
		{"reveal-no-violation-C5", revealDecoder(), TwoCol(), NewAnonymousInstance(graph.MustCycle(5))},
		{"accept-all-violation-C3", acceptAllDecoder(), TwoCol(), NewAnonymousInstance(graph.MustCycle(3))},
		{"accept-all-violation-K4", acceptAllDecoder(), TwoCol(), NewAnonymousInstance(graph.Complete(4))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ExhaustiveStrongSoundness(tc.d, tc.lang, tc.inst, alphabet)
			want := referenceExhaustive(tc.d, tc.lang, tc.inst, alphabet)
			if (got == nil) != (want == nil) {
				t.Fatalf("sweep err=%v, reference err=%v", got, want)
			}
			if got == nil {
				return
			}
			var gv, wv *StrongSoundnessViolation
			if !errors.As(got, &gv) || !errors.As(want, &wv) {
				t.Fatalf("non-violation errors: sweep %v, reference %v", got, want)
			}
			if gv.Error() != wv.Error() {
				t.Fatalf("first violations differ:\nsweep:     %v\nreference: %v", gv, wv)
			}
		})
	}
}

// TestSweepFuzzMatchesReference drives the fuzz path and the reference with
// identical random streams and compares trial-for-trial outcomes.
func TestSweepFuzzMatchesReference(t *testing.T) {
	gen := func(node int, rng *rand.Rand) string {
		return []string{"0", "1", "x"}[rng.Intn(3)]
	}
	for _, tc := range []struct {
		name string
		d    Decoder
		inst Instance
	}{
		{"reveal-C5", revealDecoder(), NewAnonymousInstance(graph.MustCycle(5))},
		{"accept-all-C3", acceptAllDecoder(), NewAnonymousInstance(graph.MustCycle(3))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := FuzzStrongSoundness(tc.d, TwoCol(), tc.inst, 60, rand.New(rand.NewSource(7)), gen)

			// Reference replay with an identically seeded stream.
			rng := rand.New(rand.NewSource(7))
			n := tc.inst.G.N()
			var want error
			for trial := 0; trial < 60 && want == nil; trial++ {
				labels := make([]string, n)
				for v := range labels {
					labels[v] = gen(v, rng)
				}
				l := MustNewLabeled(tc.inst, labels)
				if err := CheckStrongSoundness(tc.d, TwoCol(), l); err != nil {
					want = err
				}
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("fuzz sweep err=%v, reference err=%v", got, want)
			}
			if got != nil {
				var gv, wv *StrongSoundnessViolation
				if !errors.As(got, &gv) || !errors.As(want, &wv) {
					t.Fatalf("non-violation errors: %v vs %v", got, want)
				}
				if gv.Error() != wv.Error() {
					t.Fatalf("violations differ:\nsweep:     %v\nreference: %v", gv, wv)
				}
			}
		})
	}
}
