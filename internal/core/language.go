package core

import (
	"fmt"

	"hidinglcp/internal/graph"
)

// Language models the graph side of a distributed language: the set G(L) of
// graphs admitting a witness (Section 2.1), together with a witness checker.
// For k-col, G(L) is the set of k-colorable graphs and a witness is a proper
// k-coloring.
type Language struct {
	// Name identifies the language, e.g. "2-col".
	Name string
	// Contains reports whether g ∈ G(L).
	Contains func(g *graph.Graph) bool
	// ValidWitness reports whether witness (one output per node) certifies
	// g ∈ G(L), i.e. (G, witness) ∈ L.
	ValidWitness func(g *graph.Graph, witness []int) bool
}

// KCol returns the k-coloring language of Section 2.1: witnesses are proper
// colorings with colors 0..k-1.
func KCol(k int) Language {
	return Language{
		Name: fmt.Sprintf("%d-col", k),
		Contains: func(g *graph.Graph) bool {
			return g.IsKColorable(k)
		},
		ValidWitness: func(g *graph.Graph, witness []int) bool {
			if len(witness) != g.N() {
				return false
			}
			for _, c := range witness {
				if c < 0 || c >= k {
					return false
				}
			}
			return g.IsProperColoring(witness)
		},
	}
}

// TwoCol is the bipartiteness language 2-col, the paper's central case.
func TwoCol() Language {
	lang := KCol(2)
	// Bipartiteness has a fast exact test; prefer it over backtracking.
	lang.Contains = (*graph.Graph).IsBipartite
	return lang
}

// Promise is a promise problem L_H (Section 2.5): yes-instances are the
// graphs of class H ⊆ G(L); no-instances are the graphs outside G(L);
// everything else is a don't-care.
type Promise struct {
	Lang Language
	// InClass reports membership in H (the promise).
	InClass func(g *graph.Graph) bool
}

// Classify returns +1 for yes-instances, -1 for no-instances, and 0 for
// graphs covered by neither side of the promise.
func (p Promise) Classify(g *graph.Graph) int {
	switch {
	case p.InClass(g):
		return 1
	case !p.Lang.Contains(g):
		return -1
	default:
		return 0
	}
}
