// Package core implements the locally checkable proof (LCP) model of
// Section 2 of the paper: distributed languages, labeled instances
// (G, prt, Id, ℓ), r-round binary decoders, provers, and mechanical checkers
// for the completeness, soundness, strong soundness (Section 2.3),
// anonymity, and order-invariance properties. The hiding property
// (Section 2.4) is characterized through the accepting neighborhood graph
// and lives in package nbhd.
package core

import (
	"fmt"

	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Instance is an unlabeled network: a graph together with a port assignment,
// an optional identifier assignment (nil = anonymous network), and the
// common identifier bound N = poly(n) known to all nodes.
type Instance struct {
	G      *graph.Graph
	Prt    *graph.Ports
	IDs    graph.IDs // nil for anonymous instances
	NBound int
}

// NewInstance wraps g with default ports, sequential identifiers, and
// NBound = n.
func NewInstance(g *graph.Graph) Instance {
	return Instance{
		G:      g,
		Prt:    graph.DefaultPorts(g),
		IDs:    graph.SequentialIDs(g.N()),
		NBound: g.N(),
	}
}

// NewAnonymousInstance wraps g with default ports and no identifiers.
func NewAnonymousInstance(g *graph.Graph) Instance {
	return Instance{G: g, Prt: graph.DefaultPorts(g), NBound: g.N()}
}

// WithIDs returns a copy of inst using the given identifier assignment and
// bound.
func (inst Instance) WithIDs(ids graph.IDs, nBound int) Instance {
	inst.IDs = ids
	inst.NBound = nBound
	return inst
}

// WithPorts returns a copy of inst using the given port assignment.
func (inst Instance) WithPorts(pt *graph.Ports) Instance {
	inst.Prt = pt
	return inst
}

// Validate checks internal consistency of the instance.
func (inst Instance) Validate() error {
	if inst.G == nil {
		return fmt.Errorf("instance has no graph")
	}
	if inst.Prt == nil {
		return fmt.Errorf("instance has no port assignment")
	}
	if err := inst.Prt.Validate(inst.G); err != nil {
		return fmt.Errorf("ports: %w", err)
	}
	if inst.IDs != nil {
		if err := inst.IDs.Validate(inst.G.N(), inst.NBound); err != nil {
			return fmt.Errorf("identifiers: %w", err)
		}
	}
	return nil
}

// Labeled is an instance with a certificate assignment: the labeled
// yes-instance tuple (G, prt, Id, ℓ) of Section 3 when the labels are
// accepted everywhere.
type Labeled struct {
	Instance
	Labels []string
}

// NewLabeled attaches labels to inst. It returns an error if the labeling
// does not cover every node.
func NewLabeled(inst Instance, labels []string) (Labeled, error) {
	if len(labels) != inst.G.N() {
		return Labeled{}, fmt.Errorf("labeling covers %d nodes, graph has %d", len(labels), inst.G.N())
	}
	return Labeled{Instance: inst, Labels: labels}, nil
}

// MustNewLabeled is NewLabeled but panics on error.
func MustNewLabeled(inst Instance, labels []string) Labeled {
	l, err := NewLabeled(inst, labels)
	if err != nil {
		panic(fmt.Sprintf("core.MustNewLabeled: %v", err))
	}
	return l
}

// ViewOf extracts the radius-r view of node v in the labeled instance.
func (l Labeled) ViewOf(v, r int) (*view.View, error) {
	return view.Extract(l.G, l.Prt, l.IDs, l.Labels, l.NBound, v, r)
}

// Views extracts the radius-r views of all nodes, sharing one extraction
// scratch across the loop.
func (l Labeled) Views(r int) ([]*view.View, error) {
	var ex view.Extractor
	return l.ViewsWith(&ex, r)
}

// ViewsWith is Views reusing the caller's Extractor scratch; repeated
// callers (simulators, sweeps) amortize extraction allocations across
// instances.
func (l Labeled) ViewsWith(ex *view.Extractor, r int) ([]*view.View, error) {
	out := make([]*view.View, l.G.N())
	for v := 0; v < l.G.N(); v++ {
		mu, err := ex.Extract(l.G, l.Prt, l.IDs, l.Labels, l.NBound, v, r)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", v, err)
		}
		out[v] = mu
	}
	return out, nil
}
