package core

import "testing"

func TestVerdictZeroValueRejects(t *testing.T) {
	// Default-deny: the zero value of Verdict must be a rejection so that
	// forgetting to set a verdict can never widen acceptance.
	var v Verdict
	if v != VerdictReject || v.Accepted() {
		t.Errorf("zero verdict = %v, accepted=%v", v, v.Accepted())
	}
}

func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{VerdictAccept, "accept"},
		{VerdictReject, "reject"},
		{VerdictCrashed, "crashed"},
		{Verdict(42), "Verdict(42)"},
	}
	for _, tt := range cases {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int8(tt.v), got, tt.want)
		}
	}
}

func TestVerdictAccepted(t *testing.T) {
	if !VerdictAccept.Accepted() {
		t.Error("accept not accepted")
	}
	if VerdictReject.Accepted() || VerdictCrashed.Accepted() {
		t.Error("reject or crashed counted as accepted")
	}
}

func TestAllAcceptVerdicts(t *testing.T) {
	cases := []struct {
		name string
		vs   []Verdict
		want bool
	}{
		{"empty", nil, true},
		{"all accept", []Verdict{VerdictAccept, VerdictAccept}, true},
		{"one reject", []Verdict{VerdictAccept, VerdictReject}, false},
		{"one crash refutes", []Verdict{VerdictAccept, VerdictCrashed, VerdictAccept}, false},
	}
	for _, tt := range cases {
		if got := AllAcceptVerdicts(tt.vs); got != tt.want {
			t.Errorf("%s: AllAcceptVerdicts = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestCountVerdicts(t *testing.T) {
	vs := []Verdict{VerdictAccept, VerdictReject, VerdictAccept, VerdictCrashed, VerdictReject}
	a, r, c := CountVerdicts(vs)
	if a != 2 || r != 2 || c != 1 {
		t.Errorf("CountVerdicts = %d,%d,%d, want 2,2,1", a, r, c)
	}
}

func TestVerdictsFromBools(t *testing.T) {
	vs := VerdictsFromBools([]bool{true, false, true})
	want := []Verdict{VerdictAccept, VerdictReject, VerdictAccept}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("index %d: %v, want %v", i, vs[i], want[i])
		}
	}
}
