package core

import (
	"fmt"
	"math/rand"

	"hidinglcp/internal/graph"
)

// CheckCompleteness verifies the completeness property of Section 2.2 on one
// instance: the scheme's prover must produce a labeling accepted by every
// node. It returns the certified labeling on success.
func CheckCompleteness(s Scheme, inst Instance) ([]string, error) {
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		return nil, fmt.Errorf("prover failed on %v: %w", inst.G, err)
	}
	l, err := NewLabeled(inst, labels)
	if err != nil {
		return nil, fmt.Errorf("prover produced malformed labeling: %w", err)
	}
	outs, err := Run(s.Decoder, l)
	if err != nil {
		return nil, err
	}
	for v, ok := range outs {
		if !ok {
			return nil, fmt.Errorf("completeness violated: node %d rejects prover's certificate on %v", v, inst.G)
		}
	}
	return labels, nil
}

// StrongSoundnessViolation describes a labeled instance on which the
// accepting nodes induce a subgraph outside G(L) (Section 2.3 / 2.5).
type StrongSoundnessViolation struct {
	Labeled   Labeled
	Accepting []int
}

// Error implements error.
func (v *StrongSoundnessViolation) Error() string {
	return fmt.Sprintf("strong soundness violated on %v: accepting set %v induces a subgraph outside the language",
		v.Labeled.G, v.Accepting)
}

// CheckStrongSoundness verifies strong (promise) soundness of the decoder on
// one labeled instance: the subgraph induced by accepting nodes must lie in
// G(L). It returns a *StrongSoundnessViolation error when violated.
func CheckStrongSoundness(d Decoder, lang Language, l Labeled) error {
	acc, err := AcceptingSet(d, l)
	if err != nil {
		return err
	}
	sub, _ := l.G.InducedSubgraph(acc)
	if !lang.Contains(sub) {
		return &StrongSoundnessViolation{Labeled: l, Accepting: acc}
	}
	return nil
}

// CheckSoundness verifies plain soundness on one labeled no-instance: at
// least one node must reject. (Vacuous on yes-instances.)
func CheckSoundness(d Decoder, lang Language, l Labeled) error {
	if lang.Contains(l.G) {
		return nil
	}
	all, err := AllAccept(d, l)
	if err != nil {
		return err
	}
	if all {
		return fmt.Errorf("soundness violated: all nodes accept on no-instance %v", l.G)
	}
	return nil
}

// ExhaustiveStrongSoundness checks strong soundness of d against every
// labeling of inst over the given label alphabet. It returns the first
// violation found, or nil. The search space is |alphabet|^n; callers keep n
// small. Views are extracted once per node via templates and decoder
// verdicts are memoized per neighborhood labeling, which the equivalence
// tests pin to the naive per-labeling check.
func ExhaustiveStrongSoundness(d Decoder, lang Language, inst Instance, alphabet []string) error {
	n := inst.G.N()
	sweep, err := newLabelSweep(d, lang, inst, alphabet)
	if err != nil {
		return fmt.Errorf("extracting views: %w", err)
	}
	var violation error
	graph.EnumLabelings(n, len(alphabet), func(idx []int) bool {
		if err := sweep.check(idx); err != nil {
			violation = err
			return false
		}
		return true
	})
	return violation
}

// FuzzStrongSoundness checks strong soundness of d against trials random
// labelings of inst, with labels drawn by gen (which receives the node and
// the rng). It returns the first violation found, or nil.
func FuzzStrongSoundness(d Decoder, lang Language, inst Instance, trials int, rng *rand.Rand, gen func(node int, rng *rand.Rand) string) error {
	n := inst.G.N()
	sweep, err := newLabelSweep(d, lang, inst, nil)
	if err != nil {
		return fmt.Errorf("extracting views: %w", err)
	}
	for t := 0; t < trials; t++ {
		labels := make([]string, n)
		for v := range labels {
			labels[v] = gen(v, rng)
		}
		if err := sweep.checkLabels(labels); err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
	}
	return nil
}

// CheckAnonymous tests that the decoder's outputs on the labeled instance do
// not change across the supplied identifier assignments (each paired with an
// NBound). A genuine anonymity proof would quantify over all assignments;
// this is the finite slice used in tests.
func CheckAnonymous(d Decoder, l Labeled, idSets []graph.IDs, nBounds []int) error {
	if len(idSets) != len(nBounds) {
		return fmt.Errorf("idSets and nBounds have different lengths")
	}
	var ref []bool
	for i, ids := range idSets {
		alt := l
		alt.IDs = ids
		alt.NBound = nBounds[i]
		if err := alt.Validate(); err != nil {
			return fmt.Errorf("assignment %d: %w", i, err)
		}
		outs, err := Run(d, alt)
		if err != nil {
			return err
		}
		if ref == nil {
			ref = outs
			continue
		}
		for v := range outs {
			if outs[v] != ref[v] {
				return fmt.Errorf("output at node %d depends on identifier assignment %v", v, ids)
			}
		}
	}
	return nil
}

// CheckOrderInvariant tests that the decoder's outputs agree on every pair
// of supplied identifier assignments that induce the same order
// (Section 2.2). Pairs with different orders are ignored.
func CheckOrderInvariant(d Decoder, l Labeled, idSets []graph.IDs, nBound int) error {
	type result struct {
		ids  graph.IDs
		outs []bool
	}
	var results []result
	for i, ids := range idSets {
		alt := l
		alt.IDs = ids
		alt.NBound = nBound
		if err := alt.Validate(); err != nil {
			return fmt.Errorf("assignment %d: %w", i, err)
		}
		outs, err := Run(d, alt)
		if err != nil {
			return err
		}
		results = append(results, result{ids, outs})
	}
	for i := range results {
		for j := i + 1; j < len(results); j++ {
			if !results[i].ids.SameOrder(results[j].ids) {
				continue
			}
			for v := range results[i].outs {
				if results[i].outs[v] != results[j].outs[v] {
					return fmt.Errorf("order-invariance violated at node %d between %v and %v",
						v, results[i].ids, results[j].ids)
				}
			}
		}
	}
	return nil
}
