package core

import (
	"sync"
	"sync/atomic"

	"hidinglcp/internal/view"
)

const memoStripes = 64

type memoStripe struct {
	mu sync.RWMutex
	m  map[view.Handle]bool
}

// MemoDecoder wraps a Decoder with a verdict memo keyed on interned view
// handles, so a view class enumerated many times — by one worker or by
// different shard workers sharing the memo — pays for exactly one inner
// Decide call. The wrapper is observationally pure: decoders are pure
// functions of the view and constant on canonical-key classes (the
// neighborhood-graph construction has always deduplicated Decide calls by
// canonical key), so replaying a cached verdict is indistinguishable from
// re-deciding.
//
// MemoDecoder is safe for concurrent use; the memo is striped by handle and
// read-mostly.
type MemoDecoder struct {
	inner   Decoder
	in      *view.Interner
	stripes [memoStripes]memoStripe
	calls   atomic.Uint64
	misses  atomic.Uint64
}

var _ Decoder = (*MemoDecoder)(nil)

// NewMemoDecoder wraps d with a fresh memo over the given interner (a new
// interner is created when in is nil). Callers that already intern views —
// the neighborhood-graph builders — share one interner between the memo and
// their dedupe tables and use DecideInterned to skip the second key lookup.
func NewMemoDecoder(d Decoder, in *view.Interner) *MemoDecoder {
	if in == nil {
		in = view.NewInterner()
	}
	m := &MemoDecoder{inner: d, in: in}
	for i := range m.stripes {
		m.stripes[i].m = make(map[view.Handle]bool)
	}
	return m
}

// Rounds implements Decoder.
func (m *MemoDecoder) Rounds() int { return m.inner.Rounds() }

// Anonymous implements Decoder.
func (m *MemoDecoder) Anonymous() bool { return m.inner.Anonymous() }

// Interner returns the interner backing the memo.
func (m *MemoDecoder) Interner() *view.Interner { return m.in }

// Inner returns the wrapped decoder.
func (m *MemoDecoder) Inner() Decoder { return m.inner }

// Decide implements Decoder. The view is interned (canonicalized) first;
// per the Decoder contract it must already be anonymized iff the inner
// decoder is anonymous.
func (m *MemoDecoder) Decide(mu *view.View) bool {
	return m.DecideInterned(m.in.Intern(mu), mu)
}

// DecideInterned is Decide for callers that have already interned mu as h
// on the memo's interner.
func (m *MemoDecoder) DecideInterned(h view.Handle, mu *view.View) bool {
	m.calls.Add(1)
	s := &m.stripes[h%memoStripes]
	s.mu.RLock()
	out, ok := s.m[h]
	s.mu.RUnlock()
	if ok {
		return out
	}
	m.misses.Add(1)
	out = m.inner.Decide(mu)
	s.mu.Lock()
	s.m[h] = out
	s.mu.Unlock()
	return out
}

// Stats returns the number of Decide calls served and the number of memo
// misses (= inner decoder invocations).
func (m *MemoDecoder) Stats() (calls, misses uint64) {
	return m.calls.Load(), m.misses.Load()
}
