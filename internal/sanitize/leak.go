// Goroutine-leak probe: the dynamic complement of the concurrency
// analyzers (atomicmix, loopcapture, wgmisuse). The parallel pipelines —
// nbhd.BuildSharded's work-stealing builders and
// core.ExhaustiveStrongSoundnessParallel's searchers — promise that every
// goroutine they spawn has exited by the time they return. A worker that
// outlives its barrier is a latent bug even when the answer is right: it
// holds shard state alive, keeps racing with the next phase, and
// accumulates across a sweep until the process starves. The probe
// snapshots the runtime's goroutine set around a call and attributes every
// survivor by its creation site.
package sanitize

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hidinglcp/internal/core"
	"hidinglcp/internal/nbhd"
)

// GoroutineInfo describes one live goroutine from a runtime stack dump.
type GoroutineInfo struct {
	// ID is the runtime's goroutine id.
	ID int
	// State is the scheduler state from the dump header ("running",
	// "chan receive", "semacquire", ...).
	State string
	// Top is the innermost function on the goroutine's stack.
	Top string
	// CreatedBy is the function that spawned the goroutine (the "created
	// by" attribution line), or "" for the main goroutine.
	CreatedBy string
	// Stack is the goroutine's raw stack block from the dump.
	Stack string
}

// LeakReport lists goroutines that were born during a probed call and
// still ran after it returned (and after a drain grace period).
type LeakReport struct {
	// Before and After are the goroutine counts around the call.
	Before, After int
	// Leaked holds the surviving goroutines, attributed by creation site.
	Leaked []GoroutineInfo
}

// Error implements error with one attribution line per leaked goroutine.
func (r *LeakReport) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "goroutine leak: %d goroutine(s) outlived the probed call (%d before, %d after)",
		len(r.Leaked), r.Before, r.After)
	for _, g := range r.Leaked {
		fmt.Fprintf(&b, "\n  goroutine %d [%s] at %s", g.ID, g.State, g.Top)
		if g.CreatedBy != "" {
			fmt.Fprintf(&b, " (created by %s)", g.CreatedBy)
		}
	}
	return b.String()
}

// leakDrainAttempts x leakDrainStep is the grace period granted for
// legitimately winding-down goroutines (a worker between its last send and
// its return) before a survivor counts as leaked.
const (
	leakDrainAttempts = 50
	leakDrainStep     = 10 * time.Millisecond
)

// LeakCheck runs f and reports goroutines that exist after it returns but
// did not exist before it started, after a drain grace period. A nil
// report means f cleaned up after itself.
//
// The comparison is by goroutine id, so goroutines that predate f (timer
// goroutines, the test runner's pool) never count against it.
func LeakCheck(f func()) *LeakReport {
	before := goroutineSnapshot()
	known := make(map[int]bool, len(before))
	for _, g := range before {
		known[g.ID] = true
	}

	f()

	var after []GoroutineInfo
	var leaked []GoroutineInfo
	for attempt := 0; attempt < leakDrainAttempts; attempt++ {
		after = goroutineSnapshot()
		leaked = leaked[:0]
		for _, g := range after {
			if !known[g.ID] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		time.Sleep(leakDrainStep)
	}
	return &LeakReport{Before: len(before), After: len(after), Leaked: leaked}
}

// ProbeBuildSharded runs nbhd.BuildSharded under the leak probe. The
// builder's contract is that its worker pool has fully exited on return;
// a non-nil LeakReport is a contract violation regardless of err.
func ProbeBuildSharded(d core.Decoder, se nbhd.ShardedEnumerator, shards, workers int) (*nbhd.NGraph, *LeakReport, error) {
	var g *nbhd.NGraph
	var err error
	leak := LeakCheck(func() {
		g, err = nbhd.BuildSharded(d, se, shards, workers)
	})
	return g, leak, err
}

// ProbeExhaustiveStrongSoundnessParallel runs the parallel soundness
// search under the leak probe; same contract as ProbeBuildSharded.
func ProbeExhaustiveStrongSoundnessParallel(d core.Decoder, lang core.Language, inst core.Instance, alphabet []string, shards, workers int) (*LeakReport, error) {
	var err error
	leak := LeakCheck(func() {
		err = core.ExhaustiveStrongSoundnessParallel(d, lang, inst, alphabet, shards, workers)
	})
	return leak, err
}

// goroutineSnapshot parses a full runtime stack dump into per-goroutine
// records.
func goroutineSnapshot() []GoroutineInfo {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return parseGoroutineDump(string(buf))
}

// parseGoroutineDump splits a runtime.Stack(..., true) dump into records.
// Each block looks like:
//
//	goroutine 18 [chan receive]:
//	hidinglcp/internal/nbhd.worker(...)
//		/path/shard.go:203 +0x1b
//	created by hidinglcp/internal/nbhd.BuildSharded in goroutine 1
//		/path/parallel.go:30 +0x5c
func parseGoroutineDump(dump string) []GoroutineInfo {
	var out []GoroutineInfo
	for _, block := range strings.Split(strings.TrimSpace(dump), "\n\n") {
		lines := strings.Split(block, "\n")
		if len(lines) == 0 {
			continue
		}
		header := lines[0]
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		rest := strings.TrimPrefix(header, "goroutine ")
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		id, err := strconv.Atoi(rest[:sp])
		if err != nil {
			continue
		}
		state := strings.Trim(strings.TrimSuffix(strings.TrimSpace(rest[sp+1:]), ":"), "[]")
		// Scheduler annotations like "chan receive, 2 minutes" keep only
		// the state word(s).
		if c := strings.IndexByte(state, ','); c >= 0 {
			state = state[:c]
		}
		g := GoroutineInfo{ID: id, State: state, Stack: block}
		if len(lines) > 1 {
			g.Top = strings.TrimSpace(lines[1])
			if p := strings.IndexByte(g.Top, '('); p > 0 {
				g.Top = g.Top[:p]
			}
		}
		for _, l := range lines {
			if strings.HasPrefix(l, "created by ") {
				created := strings.TrimPrefix(l, "created by ")
				if in := strings.Index(created, " in goroutine"); in >= 0 {
					created = created[:in]
				}
				g.CreatedBy = strings.TrimSpace(created)
				break
			}
		}
		out = append(out, g)
	}
	return out
}
