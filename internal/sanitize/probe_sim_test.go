package sanitize

import (
	"testing"
	"time"

	"hidinglcp/internal/core"
	"hidinglcp/internal/faults"
	"hidinglcp/internal/graph"
)

func chaosLabeled(t *testing.T, n int) core.Labeled {
	t.Helper()
	g := graph.MustCycle(n)
	inst := core.NewInstance(g)
	labels := make([]string, n)
	for v := range labels {
		labels[v] = string(rune('a' + v%3))
	}
	l, err := core.NewLabeled(inst, labels)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestProbeGatherFaultsNoLeak: the scheduler must wind down every per-node
// goroutine under each fault regime — including crash-stop, where nodes
// leave the round barrier early instead of completing all phases.
func TestProbeGatherFaultsNoLeak(t *testing.T) {
	l := chaosLabeled(t, 8)
	plans := []faults.Plan{
		{},
		{Seed: 1, Drop: 0.4},
		{Seed: 2, Duplicate: 0.4, Reorder: true},
		{Seed: 3, Delay: 0.5, MaxDelay: 2},
		{Seed: 4, Crashes: map[int]int{0: 0, 3: 1, 5: 2}},
		{Seed: 5, Drop: 0.3, Duplicate: 0.3, Delay: 0.3, MaxDelay: 3,
			Reorder: true, Crashes: map[int]int{2: 1}, CorruptNodes: []int{4}},
	}
	for _, plan := range plans {
		views, _, _, leak, err := ProbeGatherFaults(l, 3, plan)
		if err != nil {
			t.Fatalf("plan %s: %v", plan, err)
		}
		if leak != nil {
			t.Errorf("plan %s leaked goroutines: %v", plan, leak)
		}
		if len(views) != 8 {
			t.Errorf("plan %s: %d views", plan, len(views))
		}
	}
}

// TestProbeGatherFaultsLeakOnError: even when the gather errors out (an
// invalid plan), no goroutines may survive.
func TestProbeGatherFaultsNoLeakOnError(t *testing.T) {
	l := chaosLabeled(t, 4)
	_, _, _, leak, err := ProbeGatherFaults(l, 2, faults.Plan{Drop: 7})
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
	if leak != nil {
		t.Errorf("error path leaked goroutines: %v", leak)
	}
}

// TestWatchGatherFaultsCompletes: the round barrier releases under every
// fault regime well inside the watchdog budget.
func TestWatchGatherFaultsCompletes(t *testing.T) {
	l := chaosLabeled(t, 10)
	plans := []faults.Plan{
		{Seed: 6, Drop: 1},                                    // total silence: all timeouts
		{Seed: 7, Crashes: map[int]int{0: 0, 5: 0}},           // crash-stop leavers
		{Seed: 8, Delay: 1, MaxDelay: 3},                      // everything late
		{Seed: 9, Duplicate: 1, Reorder: true, RetryLimit: 1}, // bursty with minimal retry budget
	}
	for _, plan := range plans {
		stall, err := WatchGatherFaults(30*time.Second, l, 3, plan)
		if stall != nil {
			t.Fatalf("plan %s wedged the scheduler: %v", plan, stall)
		}
		if err != nil {
			t.Fatalf("plan %s: %v", plan, err)
		}
	}
}
