package sanitize_test

import (
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/sanitize"
)

// TestProbeBuildShardedCancel cancels the sharded build mid-decode (the
// cancel-stress CI job runs this under -race): zero leaked goroutines, a
// drained work-stealing queue, no partial graph, context.Canceled in the
// error chain.
func TestProbeBuildShardedCancel(t *testing.T) {
	s := decoders.DegreeOne()
	fam := decoders.DegOneFamily(4)
	alpha := decoders.DegOneAlphabet()

	leak, err := sanitize.ProbeBuildShardedCancel(
		s.Decoder, nbhd.ShardedAllLabelings(alpha, fam...), 64, 4)
	if leak != nil {
		t.Fatalf("cancelled BuildSharded leaked goroutines: %v", leak.Error())
	}
	if err != nil {
		t.Fatalf("cancellation contract violated: %v", err)
	}
}

// TestProbeExhaustiveStrongSoundnessParallelCancel cancels the parallel
// soundness sweep mid-decode; same contract.
func TestProbeExhaustiveStrongSoundnessParallelCancel(t *testing.T) {
	s := decoders.DegreeOne()
	inst := core.NewAnonymousInstance(graph.Path(5))
	alpha := decoders.DegOneAlphabet()

	leak, err := sanitize.ProbeExhaustiveStrongSoundnessParallelCancel(
		s.Decoder, s.Promise.Lang, inst, alpha, 8, 2)
	if leak != nil {
		t.Fatalf("cancelled soundness sweep leaked goroutines: %v", leak.Error())
	}
	if err != nil {
		t.Fatalf("cancellation contract violated: %v", err)
	}
}
