package sanitize

import (
	"time"

	"hidinglcp/internal/core"
	"hidinglcp/internal/faults"
	"hidinglcp/internal/sim"
	"hidinglcp/internal/view"
)

// ProbeGatherFaults runs the fault-injected gather under the goroutine-leak
// probe. The scheduler's contract is that every per-node goroutine — the
// crashed ones included, which leave the round barrier early — has exited
// by the time GatherFaults returns; a non-nil LeakReport is a contract
// violation regardless of err.
func ProbeGatherFaults(l core.Labeled, r int, plan faults.Plan) ([]*view.View, sim.Stats, *faults.Report, *LeakReport, error) {
	var views []*view.View
	var stats sim.Stats
	var rep *faults.Report
	var err error
	leak := LeakCheck(func() {
		views, stats, rep, err = sim.GatherFaults(l, r, plan)
	})
	return views, stats, rep, leak, err
}

// WatchGatherFaults runs the fault-injected gather under the watchdog. The
// round barrier must release every party no matter which combination of
// crashes, drops, and delays the plan injects; a StallReport names the
// blocked barrier when it does not.
func WatchGatherFaults(timeout time.Duration, l core.Labeled, r int, plan faults.Plan) (*StallReport, error) {
	var err error
	stall := Watch(timeout, func() {
		_, _, _, err = sim.GatherFaults(l, r, plan)
	})
	if stall != nil {
		// The probed call never returned; its error is unknowable.
		return stall, nil
	}
	return nil, err
}
