package sanitize_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hidinglcp/internal/sanitize"
)

// TestWatchReportsStalledBarrier is the deadlock probe's positive case: a
// WaitGroup whose counter can never drain. The watchdog must trip, and the
// stalled barrier must appear among the blocked goroutines so the failure
// names the wedge instead of timing out anonymously.
func TestWatchReportsStalledBarrier(t *testing.T) {
	report := sanitize.Watch(100*time.Millisecond, func() {
		var wg sync.WaitGroup
		wg.Add(1) // nothing ever calls Done
		wg.Wait()
	})
	if report == nil {
		t.Fatal("Watch returned nil for a permanently stalled barrier")
	}
	if report.Timeout != 100*time.Millisecond {
		t.Errorf("report timeout %v, want the configured 100ms", report.Timeout)
	}
	msg := report.Error()
	if !strings.Contains(msg, "watchdog") || !strings.Contains(msg, "still running") {
		t.Errorf("report text %q does not describe the stall", msg)
	}

	blocked := report.Blocked()
	if len(blocked) == 0 {
		t.Fatalf("Blocked() is empty; full report: %v", msg)
	}
	found := false
	for _, g := range blocked {
		if strings.Contains(g.Stack, "TestWatchReportsStalledBarrier") {
			found = true
			if !strings.HasPrefix(g.State, "semacquire") && !strings.HasPrefix(g.State, "sync.WaitGroup.Wait") {
				t.Errorf("stalled barrier in state %q, want a WaitGroup wait state", g.State)
			}
		}
	}
	if !found {
		t.Errorf("no blocked goroutine attributed to the stalled barrier; blocked set: %+v", blocked)
	}
}

// TestWatchReportsUndrainedChannel: a worker blocked on a channel receive
// must classify as blocked under the chan states.
func TestWatchReportsUndrainedChannel(t *testing.T) {
	report := sanitize.Watch(100*time.Millisecond, func() {
		ch := make(chan struct{})
		<-ch // nobody sends
	})
	if report == nil {
		t.Fatal("Watch returned nil for a permanently blocked receive")
	}
	found := false
	for _, g := range report.Blocked() {
		if strings.Contains(g.Stack, "TestWatchReportsUndrainedChannel") {
			found = true
			if !strings.HasPrefix(g.State, "chan ") {
				t.Errorf("blocked receive in state %q, want a chan state", g.State)
			}
		}
	}
	if !found {
		t.Errorf("no blocked goroutine attributed to the undrained channel; report: %v", report.Error())
	}
}

// TestWatchPassesPromptCall is the negative case: a call that returns
// within budget must produce no report.
func TestWatchPassesPromptCall(t *testing.T) {
	report := sanitize.Watch(5*time.Second, func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
		wg.Wait()
	})
	if report != nil {
		t.Fatalf("Watch flagged a prompt call: %v", report.Error())
	}
}
