package sanitize_test

import (
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sanitize"
	"hidinglcp/internal/view"
)

// TestSanitizeMemoDecoder probes the determinism contract straight through
// the memoized decoder layer: a MemoDecoder wrapping a well-behaved decoder
// must pass every sanitizer check (the memo is observationally pure), on
// views instantiated from shared Extractor templates — the exact structures
// the fast-path builders feed to decoders.
func TestSanitizeMemoDecoder(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    core.Decoder
		g    *graph.Graph
	}{
		{"degree-one", decoders.DegreeOne().Decoder, graph.Spider([]int{2, 2, 2})},
		{"even-cycle", decoders.EvenCycle().Decoder, graph.MustCycle(6)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			md := core.NewMemoDecoder(tc.d, nil)
			san, res := sanitize.WithScheme(core.Scheme{Name: tc.name, Decoder: md}, sanitize.Config{})

			ex := view.NewExtractor()
			labels := make([]string, tc.g.N())
			for i := range labels {
				labels[i] = []string{"0", "1"}[i%2]
			}
			pt := graph.DefaultPorts(tc.g)
			for v := 0; v < tc.g.N(); v++ {
				tpl, err := ex.Template(tc.g, pt, nil, tc.g.N(), v, md.Rounds())
				if err != nil {
					t.Fatal(err)
				}
				// Two instantiations per template: the sanitizer's mutation
				// probes must hold on repeat template-shared views exactly as
				// on fresh ones.
				san.Decoder.Decide(tpl.Instantiate(labels))
				san.Decoder.Decide(tpl.Instantiate(labels))
			}
			if err := res.Err(); err != nil {
				t.Fatalf("sanitizer flagged the memoized decoder: %v", err)
			}
			if res.Decisions() == 0 {
				t.Fatal("sanitizer saw no decisions")
			}
		})
	}
}

// TestSanitizeCheckLabeledMemo runs the bundled CheckLabeled probe over a
// memoized decoder on certified instances.
func TestSanitizeCheckLabeledMemo(t *testing.T) {
	s := decoders.DegreeOne()
	inst := core.NewAnonymousInstance(graph.Spider([]int{2, 2}))
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	l := core.MustNewLabeled(inst, labels)
	md := core.NewMemoDecoder(s.Decoder, nil)
	res, err := sanitize.CheckLabeled(md, []core.Labeled{l}, sanitize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("CheckLabeled flagged the memoized decoder: %v", err)
	}
}
