package sanitize_test

import (
	"strings"
	"sync"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/sanitize"
)

// TestLeakCheckCatchesLeakyBuilder is the probe's positive case: a fake
// builder that spawns workers blocked on a channel nobody closes. Every
// worker must show up in the report, attributed to its creation site.
func TestLeakCheckCatchesLeakyBuilder(t *testing.T) {
	const workers = 3
	stall := make(chan struct{})
	started := make(chan struct{})
	var done sync.WaitGroup

	report := sanitize.LeakCheck(func() {
		// Deliberately leaky: the workers survive the builder's return.
		for i := 0; i < workers; i++ {
			done.Add(1)
			go func() {
				defer done.Done()
				started <- struct{}{}
				<-stall
			}()
		}
		for i := 0; i < workers; i++ {
			<-started
		}
	})
	// Unwedge the fake workers before any assertion can bail out, so the
	// deliberate leak does not outlive this test.
	close(stall)
	done.Wait()

	if report == nil {
		t.Fatal("LeakCheck returned nil for a builder that leaked goroutines")
	}
	if len(report.Leaked) != workers {
		t.Fatalf("leaked %d goroutines, want %d: %v", len(report.Leaked), workers, report.Error())
	}
	msg := report.Error()
	if !strings.Contains(msg, "goroutine leak") {
		t.Errorf("report text %q does not name the failure", msg)
	}
	for _, g := range report.Leaked {
		if g.ID == 0 {
			t.Errorf("leaked goroutine has no id: %+v", g)
		}
		if !strings.Contains(g.CreatedBy, "TestLeakCheckCatchesLeakyBuilder") {
			t.Errorf("leaked goroutine attributed to %q, want this test's fake builder", g.CreatedBy)
		}
		if g.Stack == "" {
			t.Errorf("leaked goroutine %d carries no stack", g.ID)
		}
	}
}

// TestLeakCheckAllowsJoinedPool is the negative case: a worker pool joined
// on a WaitGroup before returning is exactly the contract the probe
// enforces, so the report must be nil.
func TestLeakCheckAllowsJoinedPool(t *testing.T) {
	report := sanitize.LeakCheck(func() {
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				_ = worker * worker
			}(i)
		}
		wg.Wait()
	})
	if report != nil {
		t.Fatalf("LeakCheck flagged a joined pool: %v", report.Error())
	}
}

// TestLeakCheckGrantsDrainGrace: a goroutine still winding down when f
// returns (past its last synchronization, before its exit) must not count
// as leaked — the drain loop has to absorb it.
func TestLeakCheckGrantsDrainGrace(t *testing.T) {
	handoff := make(chan struct{})
	report := sanitize.LeakCheck(func() {
		go func() {
			<-handoff
		}()
		// Return with the goroutine alive but already scheduled to exit.
		close(handoff)
	})
	if report != nil {
		t.Fatalf("LeakCheck flagged a goroutine inside the drain grace period: %v", report.Error())
	}
}

// TestProbeBuildSharded pins the shipped builder to its cleanup contract:
// the work-stealing pool must be fully exited when BuildSharded returns.
func TestProbeBuildSharded(t *testing.T) {
	s := decoders.DegreeOne()
	fam := decoders.DegOneFamily(3)
	alpha := decoders.DegOneAlphabet()

	g, leak, err := sanitize.ProbeBuildSharded(s.Decoder, nbhd.ShardedAllLabelings(alpha, fam...), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil {
		t.Fatal("probe returned no graph")
	}
	if leak != nil {
		t.Fatalf("BuildSharded leaked goroutines: %v", leak.Error())
	}
}

// TestProbeExhaustiveStrongSoundnessParallel pins the parallel soundness
// search to the same contract across shard/worker shapes.
func TestProbeExhaustiveStrongSoundnessParallel(t *testing.T) {
	s := decoders.DegreeOne()
	inst := core.NewAnonymousInstance(graph.Path(4))
	alpha := decoders.DegOneAlphabet()

	for _, shape := range []struct{ shards, workers int }{
		{1, 1}, {4, 2}, {8, 4},
	} {
		leak, err := sanitize.ProbeExhaustiveStrongSoundnessParallel(
			s.Decoder, s.Promise.Lang, inst, alpha, shape.shards, shape.workers)
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shape.shards, shape.workers, err)
		}
		if leak != nil {
			t.Fatalf("shards=%d workers=%d leaked goroutines: %v",
				shape.shards, shape.workers, leak.Error())
		}
	}
}
