package sanitize

import (
	"errors"
	"fmt"

	"hidinglcp/internal/core"
)

// Result collects the outcome of a sanitized run.
type Result struct {
	san *Sanitizer
	// Violations holds every detected contract breach, in detection order.
	Violations []*Violation
}

// Decisions is the number of Decide calls probed.
func (r *Result) Decisions() int {
	if r.san == nil {
		return 0
	}
	return r.san.Decisions()
}

// Err folds the violations into one error, or nil when the run was clean.
func (r *Result) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	errs := make([]error, len(r.Violations))
	for i, v := range r.Violations {
		errs[i] = v
	}
	return fmt.Errorf("decoder violated the determinism contract %d time(s): %w",
		len(r.Violations), errors.Join(errs...))
}

// collecting returns a copy of cfg whose Report appends into a fresh
// Result (chaining any caller-supplied Report).
func collecting(cfg Config) (Config, *Result) {
	res := &Result{}
	prev := cfg.Report
	cfg.Report = func(v *Violation) {
		res.Violations = append(res.Violations, v)
		if prev != nil {
			prev(v)
		}
	}
	return cfg, res
}

// WithScheme returns a copy of s whose decoder is wrapped in a collecting
// Sanitizer, plus the Result the wrapper reports into. Thread the returned
// scheme through any core/nbhd/sim check to sanitize every view that check
// visits, then consult Result.Err:
//
//	ss, res := sanitize.WithScheme(scheme, sanitize.Config{})
//	_, err := core.CheckCompleteness(ss, inst)
//	// handle err, then res.Err()
func WithScheme(s core.Scheme, cfg Config) (core.Scheme, *Result) {
	cfg, res := collecting(cfg)
	wrapped := Wrap(s.Decoder, cfg)
	res.san = wrapped
	s.Decoder = wrapped
	return s, res
}

// CheckScheme certifies every instance with the scheme's prover and
// evaluates the decoder at every node under the sanitizer — the
// core.CheckCompleteness loop with dynamic contract checking switched on.
// It returns the first completeness or validation error, or the folded
// contract violations.
func CheckScheme(s core.Scheme, insts []core.Instance, cfg Config) error {
	ss, res := WithScheme(s, cfg)
	for _, inst := range insts {
		if _, err := core.CheckCompleteness(ss, inst); err != nil {
			return err
		}
	}
	return res.Err()
}

// CheckLabeled evaluates the decoder on every node of every labeled
// instance under the sanitizer, ignoring the verdicts (adversarial
// labelings are allowed to be rejected) and returning only contract
// violations.
func CheckLabeled(d core.Decoder, labeled []core.Labeled, cfg Config) (*Result, error) {
	cfg, res := collecting(cfg)
	wrapped := Wrap(d, cfg)
	res.san = wrapped
	for _, l := range labeled {
		if _, err := core.Run(wrapped, l); err != nil {
			return res, err
		}
	}
	return res, nil
}
