// Cancellation probes: the dynamic complement of the ctxflow analyzer.
// The context-threaded pipelines (nbhd.BuildShardedCtx,
// core.ExhaustiveStrongSoundnessParallelCtx) promise that when the caller's
// context fires mid-run, every worker exits at its next shard/instance
// checkpoint, the work-stealing queue stops handing out claims, no partial
// result is published, and the returned error carries the context's cause.
// Each probe forces the cancellation to land strictly mid-pipeline — the
// context is cancelled only once the decoder is provably deciding — then
// checks all four promises plus goroutine hygiene via LeakCheck.
package sanitize

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hidinglcp/internal/core"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/obs"
	"hidinglcp/internal/view"
)

// gateDecoder closes started on its first Decide call and then blocks
// every Decide until release is closed. A probe cancels the context
// between the two, so the pipeline is guaranteed to be mid-decode — not
// before its first claim, not after its last — when the cancellation
// lands.
type gateDecoder struct {
	inner   core.Decoder
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func newGateDecoder(inner core.Decoder) *gateDecoder {
	return &gateDecoder{
		inner:   inner,
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (d *gateDecoder) Rounds() int     { return d.inner.Rounds() }
func (d *gateDecoder) Anonymous() bool { return d.inner.Anonymous() }

func (d *gateDecoder) Decide(mu *view.View) bool {
	//lint:ignore decoderpurity probe scaffolding: signals run-start, then delegates the verdict unchanged
	d.once.Do(func() { close(d.started) })
	<-d.release
	return d.inner.Decide(mu)
}

// watcherGrace is how long cancelMidRun waits between firing the context
// and releasing the gated decoders: the pipeline's cancellation watcher (a
// goroutine blocked on ctx.Done) needs a scheduling slot to arm the abort
// flag, and releasing before it runs would let the workers sprint through
// a small search space and finish cleanly — a raced queue the probe exists
// to rule out.
const watcherGrace = 20 * time.Millisecond

// cancelMidRun runs pipeline against a context that a helper goroutine
// cancels as soon as gate reports its first decode, under the leak probe.
// The helper is joined before LeakCheck's snapshot, so it can never count
// as a leak itself. Returns the leak report, the pipeline's error, and
// whether the pipeline decoded at all (false means the cancellation was
// never exercised — a probe-setup failure, not a pipeline bug).
func cancelMidRun(gate *gateDecoder, pipeline func(ctx context.Context) error) (*LeakReport, error, bool) {
	var err error
	decided := true
	leak := LeakCheck(func() {
		ctx, stop := context.WithCancel(context.Background())
		defer stop()
		done := make(chan struct{})
		go func() {
			defer close(done)
			<-gate.started
			stop()
			time.Sleep(watcherGrace)
			close(gate.release)
		}()
		err = pipeline(ctx)
		// If the pipeline returned without ever deciding, unblock the
		// canceller so it cannot deadlock the probe.
		gate.once.Do(func() {
			decided = false
			close(gate.started)
		})
		<-done
	})
	return leak, err, decided
}

// checkCancelVerdict asserts the error half of the cancellation contract.
func checkCancelVerdict(what string, err error, decided bool) error {
	switch {
	case !decided:
		return fmt.Errorf("%s finished before its first decode: cancellation never exercised (use a larger family)", what)
	case err == nil:
		return fmt.Errorf("cancelled %s returned a nil error", what)
	case !errors.Is(err, context.Canceled):
		return fmt.Errorf("cancelled %s returned %w, want context.Canceled in the chain", what, err)
	}
	return nil
}

// ProbeBuildShardedCancel cancels a sharded neighborhood-graph build
// mid-decode and verifies the cancellation contract: zero leaked
// goroutines, no partial graph published, context.Canceled in the error
// chain, the cancellation counted exactly once, and the work-stealing
// queue drained rather than raced to completion (with every worker exited
// the done counter is final, and it must fall short of the shard total —
// pending claims were abandoned at the checkpoint, not processed).
func ProbeBuildShardedCancel(d core.Decoder, se nbhd.ShardedEnumerator, shards, workers int) (*LeakReport, error) {
	gate := newGateDecoder(d)
	sc := obs.NewScope()
	var g *nbhd.NGraph
	leak, err, decided := cancelMidRun(gate, func(ctx context.Context) error {
		var buildErr error
		g, buildErr = nbhd.BuildShardedCtx(ctx, sc, gate, se, shards, workers)
		return buildErr
	})
	if leak != nil {
		return leak, err
	}
	if verdictErr := checkCancelVerdict("build", err, decided); verdictErr != nil {
		return nil, verdictErr
	}
	if g != nil {
		return nil, fmt.Errorf("cancelled build published a partial graph (%d views)", g.Size())
	}
	if got := sc.Counter("nbhd.shards.cancelled").Value(); got != 1 {
		return nil, fmt.Errorf("nbhd.shards.cancelled = %d, want 1", got)
	}
	done := sc.Counter("nbhd.shards.done").Value()
	total := sc.Gauge("nbhd.shards.total").Value()
	if done >= total {
		return nil, fmt.Errorf("all %d shards completed despite mid-run cancellation: the queue raced instead of draining", total)
	}
	return nil, nil
}

// ProbeExhaustiveStrongSoundnessParallelCancel cancels the parallel
// soundness sweep mid-decode; same contract as ProbeBuildShardedCancel
// (the "no partial result" half is the sweep's own promise that a
// cancelled search never reports a violation — surfaced as the error
// carrying context.Canceled rather than a core.StrongSoundnessViolation).
func ProbeExhaustiveStrongSoundnessParallelCancel(d core.Decoder, lang core.Language, inst core.Instance, alphabet []string, shards, workers int) (*LeakReport, error) {
	gate := newGateDecoder(d)
	sc := obs.NewScope()
	leak, err, decided := cancelMidRun(gate, func(ctx context.Context) error {
		return core.ExhaustiveStrongSoundnessParallelCtx(ctx, sc, gate, lang, inst, alphabet, shards, workers)
	})
	if leak != nil {
		return leak, err
	}
	if verdictErr := checkCancelVerdict("soundness sweep", err, decided); verdictErr != nil {
		return nil, verdictErr
	}
	var violation *core.StrongSoundnessViolation
	if errors.As(err, &violation) {
		return nil, fmt.Errorf("cancelled sweep published a partial verdict: %v", err)
	}
	if got := sc.Counter("core.sweep.cancelled").Value(); got != 1 {
		return nil, fmt.Errorf("core.sweep.cancelled = %d, want 1", got)
	}
	if done := sc.Counter("core.sweep.shards.done").Value(); done >= int64(shards) {
		return nil, fmt.Errorf("all %d shards completed despite mid-run cancellation: the queue raced instead of draining", shards)
	}
	return nil, nil
}
