package sanitize_test

import (
	"strings"
	"testing"

	"hidinglcp/internal/cli"
	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/obs"
	"hidinglcp/internal/orderinv"
	"hidinglcp/internal/sanitize"
	"hidinglcp/internal/view"
)

// candidateGraphs is the pool every scheme picks its in-promise instances
// from; together they cover paths, cycles, stars, trees, grids, and the
// watermelon family.
func candidateGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	var gs []*graph.Graph
	for _, spec := range []string{
		"path:2", "path:4", "path:7", "path:8",
		"cycle:4", "cycle:5", "cycle:6", "cycle:8",
		"star:4", "binarytree:3", "grid:3x3",
		"spider:2,2,2", "watermelon:2,4,2", "complete:4",
	} {
		g, err := cli.ParseGraph(spec)
		if err != nil {
			t.Fatalf("parsing %q: %v", spec, err)
		}
		gs = append(gs, g)
	}
	return gs
}

// TestEveryDecoderSatisfiesContract wraps every scheme in the repository
// in the sanitizer and certifies a slice of in-promise instances: a pure
// decoder sails through; any statefulness, view mutation, extraction-order
// dependence, or identifier peeking fails the run. This is the acceptance
// check "sanitizer wrapper passes for every decoder in internal/decoders".
func TestEveryDecoderSatisfiesContract(t *testing.T) {
	pool := candidateGraphs(t)
	for _, name := range decoders.SchemeNames() {
		t.Run(name, func(t *testing.T) {
			s, err := decoders.SchemeByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var insts []core.Instance
			for _, g := range pool {
				if s.Promise.InClass != nil && !s.Promise.InClass(g) {
					continue
				}
				if s.Decoder.Anonymous() {
					insts = append(insts, core.NewAnonymousInstance(g))
				} else {
					insts = append(insts, core.NewInstance(g))
				}
			}
			if len(insts) == 0 {
				t.Fatalf("no candidate graph lies in the promise class of %s", name)
			}
			if err := sanitize.CheckScheme(s, insts, sanitize.Config{}); err != nil {
				t.Errorf("scheme %s: %v", name, err)
			}
		})
	}
}

// TestAdversarialLabelingsStayClean runs the sanitizer over adversarial
// (not prover-produced) labelings: the contract must hold on rejecting
// views too, since strong-soundness checks evaluate exactly those.
func TestAdversarialLabelingsStayClean(t *testing.T) {
	s := decoders.DegreeOne()
	g, err := cli.ParseGraph("path:4")
	if err != nil {
		t.Fatal(err)
	}
	inst := core.NewAnonymousInstance(g)
	alphabet := decoders.DegOneAlphabet()
	var labeled []core.Labeled
	graph.EnumLabelings(g.N(), len(alphabet), func(idx []int) bool {
		labels := make([]string, g.N())
		for v, a := range idx {
			labels[v] = alphabet[a]
		}
		labeled = append(labeled, core.MustNewLabeled(inst, labels))
		return true
	})
	res, err := sanitize.CheckLabeled(s.Decoder, labeled, sanitize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Error(err)
	}
	if res.Decisions() == 0 {
		t.Error("sanitizer probed no decisions")
	}
}

// statefulDecoder flips its answer on every call — the archetypal
// violation of repeat determinism.
type statefulDecoder struct{ calls int }

func (d *statefulDecoder) Rounds() int     { return 1 }
func (d *statefulDecoder) Anonymous() bool { return true }
func (d *statefulDecoder) Decide(mu *view.View) bool {
	d.calls++
	return d.calls%2 == 0
}

// mutatingDecoder scribbles on its view argument.
type mutatingDecoder struct{}

func (d *mutatingDecoder) Rounds() int     { return 1 }
func (d *mutatingDecoder) Anonymous() bool { return true }
func (d *mutatingDecoder) Decide(mu *view.View) bool {
	mu.Labels[0] = "scribbled"
	return true
}

// orderDependentDecoder reads the label of local node 1 — which node that
// is depends on the arbitrary host numbering, so relabeling probes must
// catch it.
type orderDependentDecoder struct{}

func (d *orderDependentDecoder) Rounds() int     { return 1 }
func (d *orderDependentDecoder) Anonymous() bool { return true }
func (d *orderDependentDecoder) Decide(mu *view.View) bool {
	if mu.N() < 2 {
		return true
	}
	return mu.Labels[1] == "a"
}

// idPeekingDecoder claims anonymity but branches on identifiers.
type idPeekingDecoder struct{}

func (d *idPeekingDecoder) Rounds() int     { return 1 }
func (d *idPeekingDecoder) Anonymous() bool { return true }
func (d *idPeekingDecoder) Decide(mu *view.View) bool {
	return mu.IDs[0] > 0
}

// obsReadingDecoder branches on a live metric it also bumps — the exact
// feedback loop the instrumentation probe (and, statically, the obspurity
// analyzer) forbids: its verdict depends on how often the pipeline ran.
type obsReadingDecoder struct{ hits *obs.Counter }

func (d *obsReadingDecoder) Rounds() int     { return 1 }
func (d *obsReadingDecoder) Anonymous() bool { return true }
func (d *obsReadingDecoder) Decide(mu *view.View) bool {
	d.hits.Inc()
	return d.hits.Value()%2 == 0
}

// idParityDecoder is honestly non-anonymous but not order-invariant: it
// branches on identifier parity, which order-preserving remaps change.
type idParityDecoder struct{}

func (d *idParityDecoder) Rounds() int     { return 1 }
func (d *idParityDecoder) Anonymous() bool { return false }
func (d *idParityDecoder) Decide(mu *view.View) bool {
	return mu.IDs[0]%2 == 0
}

// probeView extracts the radius-1 view of the center of a 3-path with
// distinct leaf labels and identifiers 1..3.
func probeView(t *testing.T, ids graph.IDs) *view.View {
	t.Helper()
	g := graph.Path(3)
	labels := []string{"a", "x", "b"}
	mu, err := view.Extract(g, graph.DefaultPorts(g), ids, labels, 9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return mu
}

// runCollecting wraps d, feeds it mu, and returns the violations.
func runCollecting(t *testing.T, d core.Decoder, mu *view.View, cfg sanitize.Config) []*sanitize.Violation {
	t.Helper()
	var got []*sanitize.Violation
	cfg.Report = func(v *sanitize.Violation) { got = append(got, v) }
	san := sanitize.Wrap(d, cfg)
	san.Decide(mu)
	return got
}

func requireCheck(t *testing.T, violations []*sanitize.Violation, check string) {
	t.Helper()
	for _, v := range violations {
		if v.Check == check {
			return
		}
	}
	t.Errorf("expected a %q violation, got %v", check, violations)
}

func TestCatchesStatefulness(t *testing.T) {
	vs := runCollecting(t, &statefulDecoder{}, probeView(t, nil), sanitize.Config{})
	requireCheck(t, vs, "repeat")
}

func TestCatchesViewMutation(t *testing.T) {
	vs := runCollecting(t, &mutatingDecoder{}, probeView(t, nil), sanitize.Config{})
	requireCheck(t, vs, "mutation")
}

func TestCatchesExtractionOrderDependence(t *testing.T) {
	// The two leaves sit in the same distance class with labels "a" and
	// "b", so some relabeling probe swaps them and flips the output.
	vs := runCollecting(t, &orderDependentDecoder{}, probeView(t, nil), sanitize.Config{Relabelings: 8})
	requireCheck(t, vs, "relabeling")
}

func TestCatchesInstrumentationDivergence(t *testing.T) {
	d := &obsReadingDecoder{hits: obs.NewScope().Counter("test.hits")}
	vs := runCollecting(t, d, probeView(t, nil), sanitize.Config{})
	requireCheck(t, vs, "instrumentation")
}

func TestCatchesAnonymityViolation(t *testing.T) {
	vs := runCollecting(t, &idPeekingDecoder{}, probeView(t, graph.IDs{1, 2, 3}), sanitize.Config{})
	requireCheck(t, vs, "anonymity")
}

func TestCatchesOrderInvarianceViolation(t *testing.T) {
	mu := probeView(t, graph.IDs{1, 2, 3})
	// Center is local node 0 of the view; its identifier is 2 (even). The
	// remap targets shift every identifier, flipping the parity read.
	vs := runCollecting(t, &idParityDecoder{}, mu, sanitize.Config{OrderInvariant: true})
	requireCheck(t, vs, "order-invariance")
}

func TestOrderInvariantifiedDecoderPassesOrderProbe(t *testing.T) {
	d := orderinv.OrderInvariantify(decoders.Shatter().Decoder, []int{10, 20, 30, 40, 50, 60, 70, 80})
	mu := probeView(t, graph.IDs{1, 2, 3})
	vs := runCollecting(t, d, mu, sanitize.Config{OrderInvariant: true})
	if len(vs) != 0 {
		t.Errorf("order-invariantified decoder reported violations: %v", vs)
	}
}

func TestPanicsByDefault(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on violation with nil Report")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "determinism violation") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	san := sanitize.Wrap(&statefulDecoder{}, sanitize.Config{})
	san.Decide(probeView(t, nil))
}

// TestCleanDecoderForwardsTransparently checks output equivalence of the
// wrapper on a real scheme.
func TestCleanDecoderForwardsTransparently(t *testing.T) {
	s := decoders.EvenCycle()
	g := graph.MustCycle(6)
	inst := core.NewAnonymousInstance(g)
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	l := core.MustNewLabeled(inst, labels)
	plain, err := core.Run(s.Decoder, l)
	if err != nil {
		t.Fatal(err)
	}
	san := sanitize.Wrap(s.Decoder, sanitize.Config{})
	wrapped, err := core.Run(san, l)
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain {
		if plain[v] != wrapped[v] {
			t.Errorf("node %d: wrapper output %v differs from plain %v", v, wrapped[v], plain[v])
		}
	}
	if san.Decisions() != g.N() {
		t.Errorf("sanitizer probed %d decisions, want %d", san.Decisions(), g.N())
	}
	if got := san.InstrumentationProbes(); got != int64(g.N()) {
		t.Errorf("instrumentation probe ran %d times, want once per decision (%d)", got, g.N())
	}
}
