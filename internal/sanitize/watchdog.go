// Watchdog probe: deadlock and starvation detection for the barriers the
// parallel pipelines synchronize on. A wgmisuse-style bug (Add racing with
// Wait), a worker blocked on a channel nobody drains, or a work-stealing
// loop that starves all make the pipeline hang rather than fail; under
// `go test` that surfaces as a 10-minute timeout with no attribution. The
// watchdog bounds the wait and, on expiry, captures every goroutine stack
// so the blocked barrier is named in the failure instead of inferred from
// a panic dump.
package sanitize

import (
	"fmt"
	"strings"
	"time"
)

// StallReport describes a probed call that failed to return in time.
type StallReport struct {
	// Timeout is the budget the call exceeded.
	Timeout time.Duration
	// Goroutines is the full goroutine set at expiry — the blocked
	// barrier, its workers, and their scheduler states.
	Goroutines []GoroutineInfo
}

// Error implements error, listing non-running goroutines first since the
// blocked ones carry the attribution.
func (r *StallReport) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: probed call still running after %v; %d goroutine(s) live", r.Timeout, len(r.Goroutines))
	for _, g := range r.Goroutines {
		fmt.Fprintf(&b, "\n  goroutine %d [%s] at %s", g.ID, g.State, g.Top)
		if g.CreatedBy != "" {
			fmt.Fprintf(&b, " (created by %s)", g.CreatedBy)
		}
	}
	return b.String()
}

// Blocked returns the goroutines waiting on synchronization — the
// interesting suspects in a deadlock (semacquire is a mutex or WaitGroup,
// "chan receive"/"chan send" an undrained channel).
func (r *StallReport) Blocked() []GoroutineInfo {
	var out []GoroutineInfo
	for _, g := range r.Goroutines {
		switch {
		case strings.HasPrefix(g.State, "semacquire"),
			strings.HasPrefix(g.State, "sync.WaitGroup.Wait"),
			strings.HasPrefix(g.State, "chan "),
			strings.HasPrefix(g.State, "select"):
			out = append(out, g)
		}
	}
	return out
}

// Watch runs f under a deadline. It returns nil when f finishes in time
// and a StallReport with full stack attribution when it does not.
//
// On expiry f's goroutine is abandoned, not killed — Go offers no
// preemption — so a tripped watchdog means the process is already wedged;
// the report's job is to say where. Use from tests and probe harnesses,
// with a timeout far above any honest runtime of the probed call.
func Watch(timeout time.Duration, f func()) *StallReport {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-t.C:
		return &StallReport{Timeout: timeout, Goroutines: goroutineSnapshot()}
	}
}
