// Hiding regression: the observability layer must never emit raw
// certificate bytes. Every channel an operator can see — manifests, span
// traces, progress lines, stringified views, violation and soundness error
// texts — is driven here with a distinctive marker planted in every label,
// and the marker must not survive into any output. This pins the
// redactions that certflow enforces statically (obs.Redact*, view.KeyDigest,
// length-only decoder errors) against the live pipelines.
package sanitize_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/obs"
	"hidinglcp/internal/obs/export"
	"hidinglcp/internal/sanitize"
	"hidinglcp/internal/view"
)

// hidingMarker is a byte sequence that cannot occur by chance in any
// honest output; its presence anywhere downstream is a leak.
const hidingMarker = "HIDEME-SECRET-7Q3"

// markerAlphabet labels every node with marker-bearing certificates.
func markerAlphabet() []string {
	return []string{hidingMarker + "-a", hidingMarker + "-b"}
}

// assertHidden fails if any observable output contains the marker.
func assertHidden(t *testing.T, channel, output string) {
	t.Helper()
	if strings.Contains(output, hidingMarker) {
		t.Errorf("%s leaks raw certificate bytes:\n%s", channel, output)
	}
}

// markerDecoder accepts exactly the "-a" marker certificate, so sweeps over
// the marker alphabet exercise both accept and reject paths.
type markerDecoder struct{}

func (markerDecoder) Rounds() int     { return 1 }
func (markerDecoder) Anonymous() bool { return true }
func (markerDecoder) Decide(mu *view.View) bool {
	return mu.Labels[view.Center] == hidingMarker+"-a"
}

// TestHidingScopedPipelines drives the instrumented enumeration and
// soundness pipelines with marker labels and checks every emission channel:
// the span trace JSON, the progress lines, and the finalized run manifest.
func TestHidingScopedPipelines(t *testing.T) {
	inst := core.NewAnonymousInstance(graph.Path(3))
	alpha := markerAlphabet()

	var progressBuf bytes.Buffer
	prog := obs.NewProgress(&progressBuf, time.Millisecond)
	tr := obs.NewTracer(256)
	sc := obs.NewScope().WithTracer(tr).WithProgress(prog)

	if _, err := nbhd.BuildShardedScoped(sc, markerDecoder{}, nbhd.ShardedAllLabelings(alpha, inst), 4, 2); err != nil {
		t.Fatal(err)
	}
	runErr := core.ExhaustiveStrongSoundnessParallelScoped(sc, markerDecoder{}, core.TwoCol(), inst, alpha, 4, 2)
	prog.Close()

	var traceBuf bytes.Buffer
	if err := tr.WriteJSON(&traceBuf); err != nil {
		t.Fatal(err)
	}
	assertHidden(t, "span trace JSON", traceBuf.String())
	assertHidden(t, "progress lines", progressBuf.String())
	if runErr != nil {
		assertHidden(t, "soundness sweep error", runErr.Error())
	}

	m := obs.NewManifest("hiding-regression", []string{"sweep"})
	m.Finalize(sc, runErr)
	manifest, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	assertHidden(t, "run manifest JSON", string(manifest))
}

// TestHidingLiveTelemetryPlane drives the instrumented pipelines with
// marker labels while the full telemetry plane is attached — metric
// registry, span tracer, structured event log — and then scrapes every
// surface the plane exposes: the Prometheus /metrics text, the /trace JSON,
// the /events SSE stream, and the JSONL log file on disk. The marker must
// not reach any of them.
func TestHidingLiveTelemetryPlane(t *testing.T) {
	inst := core.NewAnonymousInstance(graph.Path(3))
	alpha := markerAlphabet()

	logPath := filepath.Join(t.TempDir(), "events.jsonl")
	log, err := export.NewEventLog(export.EventLogConfig{Path: logPath})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(256)
	sc := obs.NewScope().WithTracer(tr).WithEvents(log, obs.NewRunID("hiding"))

	if _, err := nbhd.BuildShardedScoped(sc, markerDecoder{}, nbhd.ShardedAllLabelings(alpha, inst), 4, 2); err != nil {
		t.Fatal(err)
	}
	if runErr := core.ExhaustiveStrongSoundnessParallelScoped(sc, markerDecoder{}, core.TwoCol(), inst, alpha, 4, 2); runErr != nil {
		assertHidden(t, "soundness sweep error", runErr.Error())
	}

	closing := make(chan struct{})
	srv := httptest.NewServer(export.NewHandler(export.ServerOptions{
		Registry: sc.Registry(), Tracer: tr, Events: log,
	}, nil, closing))
	defer srv.Close()

	// Closing the plane first makes /events deterministic: the stream
	// replays the retained tail and then ends instead of blocking live.
	close(closing)
	for _, ep := range []string{"/metrics", "/trace", "/events"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", ep, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", ep, resp.StatusCode)
		}
		assertHidden(t, ep, string(body))
	}

	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		t.Fatal("event log recorded nothing; the marker check would be vacuous")
	}
	assertHidden(t, "events JSONL file", string(raw))
}

// TestHidingViewAndViolationStrings pins the per-value redactions: a
// stringified view shows a digest of its labels, never the bytes, and a
// sanitizer violation embedding that view inherits the guarantee.
func TestHidingViewAndViolationStrings(t *testing.T) {
	g := graph.Path(3)
	labels := []string{hidingMarker + "-a", hidingMarker + "-b", hidingMarker + "-a"}
	mu, err := view.Extract(g, graph.DefaultPorts(g), graph.SequentialIDs(g.N()), labels, 9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertHidden(t, "view.String()", mu.String())
	if mu.KeyDigest() == "" {
		t.Error("KeyDigest must still give operators a correlation handle")
	}

	v := &sanitize.Violation{Check: "repeat", Detail: "flipped verdict on identical view", View: mu}
	assertHidden(t, "sanitize.Violation.Error()", v.Error())

	l, err := core.NewLabeled(core.NewInstance(g), labels)
	if err != nil {
		t.Fatal(err)
	}
	sv := &core.StrongSoundnessViolation{Labeled: l, Accepting: []int{0, 2}}
	assertHidden(t, "core.StrongSoundnessViolation.Error()", sv.Error())
}

// TestHidingRedactionResidue checks the sanctioned residue directly: the
// redactors expose length and digest, which certflow treats as clean, and
// nothing else of the input.
func TestHidingRedactionResidue(t *testing.T) {
	red := obs.RedactString(hidingMarker)
	assertHidden(t, "obs.RedactString", red)
	if !strings.Contains(red, "len=17") {
		t.Errorf("redaction %q lost the length residue", red)
	}
	assertHidden(t, "obs.RedactStrings", obs.RedactStrings(markerAlphabet()))
}
