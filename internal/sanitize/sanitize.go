// Package sanitize is the dynamic half of the decoder determinism
// contract (the static half is internal/analysis + cmd/lcplint): a
// core.Decoder wrapper that re-runs every Decide call under
// behavior-preserving transformations of the view and fails loudly on any
// divergence. The transformations exercise exactly the freedoms the model
// grants the environment, so a divergence is always a contract violation,
// never a false positive:
//
//   - Repetition: Decide on an identical copy must return the same answer
//     (catches hidden state, map-iteration races, ambient randomness).
//   - Immutability: the view compares deep-equal before and after Decide
//     (views are shared between nodes, caches, and worker pools).
//   - Relabeling: local node numbers inside a distance class reflect
//     arbitrary host-graph indices, so Decide must be invariant under
//     distance-class-preserving renumberings — including the induced
//     rekeying of the port map (catches dependence on extraction order).
//   - Anonymity: a decoder with Anonymous() == true must decide identically
//     on the identifier-erased view.
//   - Instrumentation transparency: a counting wrapper around the decoder
//     (core.InstrumentDecoder with a live obs scope) must return the same
//     verdict as the plain decoder — observability is one-directional, so
//     switching metrics on must never change a decision. The static half of
//     this rule is the obspurity analyzer in internal/analysis.
//   - Order-invariance (opt-in, Config.OrderInvariant): order-preserving
//     identifier remaps via orderinv.RemapViewIDs must not change the
//     answer. Off by default because schemes that embed identifiers in
//     certificates (shatter, watermelon) are legitimately sensitive to the
//     remap desynchronizing labels from identifiers.
//
// Wrap the decoder of any scheme before running core or nbhd checks to
// sanitize every view the check visits; CheckScheme bundles that pattern.
package sanitize

import (
	"fmt"
	"math/rand"
	"reflect"

	"hidinglcp/internal/core"
	"hidinglcp/internal/obs"
	"hidinglcp/internal/orderinv"
	"hidinglcp/internal/view"
)

// Config tunes the sanitizer. The zero value enables every default check
// with deterministic probe permutations.
type Config struct {
	// Repeats is the number of identical re-invocations per Decide call
	// (default 2).
	Repeats int
	// Relabelings is the number of random distance-class-preserving
	// renumberings probed per Decide call (default 3).
	Relabelings int
	// OrderInvariant additionally probes order-preserving identifier
	// remaps. Enable for decoders that claim order-invariance.
	OrderInvariant bool
	// Seed drives the probe permutations; runs are deterministic for a
	// fixed seed (default 1).
	Seed int64
	// Report receives each violation. Nil panics on the first violation,
	// which is the fail-loudly default for tests and checks.
	Report func(*Violation)
}

func (c Config) withDefaults() Config {
	if c.Repeats == 0 {
		c.Repeats = 2
	}
	if c.Relabelings == 0 {
		c.Relabelings = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Violation describes one detected contract breach.
type Violation struct {
	// Check names the probe that diverged: "repeat", "mutation",
	// "relabeling", "anonymity", "instrumentation", or "order-invariance".
	Check string
	// Detail is a human-readable account of the divergence.
	Detail string
	// View is the offending input view (the caller's original).
	View *view.View
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("decoder determinism violation [%s]: %s (on %s)", v.Check, v.Detail, v.View)
}

// Sanitizer is a core.Decoder that forwards to the wrapped decoder while
// probing every Decide call. It is itself stateless apart from the
// violation log and the probe RNG, and safe for the sequential use all
// repository checkers perform.
type Sanitizer struct {
	inner core.Decoder
	cfg   Config
	rng   *rand.Rand
	count int
	// instr is inner wrapped by core.InstrumentDecoder with a live scope;
	// probes compare its verdicts against inner's to prove the metrics
	// layer never feeds back into decisions.
	instr       core.Decoder
	instrProbes *obs.Counter
}

var _ core.Decoder = (*Sanitizer)(nil)

// Wrap builds a sanitizing decoder around d.
func Wrap(d core.Decoder, cfg Config) *Sanitizer {
	cfg = cfg.withDefaults()
	sc := obs.NewScope()
	return &Sanitizer{
		inner:       d,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		instr:       core.InstrumentDecoder(d, sc, "sanitize.probe"),
		instrProbes: sc.Counter("sanitize.probe.decide.calls"),
	}
}

// Rounds forwards to the wrapped decoder.
func (s *Sanitizer) Rounds() int { return s.inner.Rounds() }

// Anonymous forwards to the wrapped decoder.
func (s *Sanitizer) Anonymous() bool { return s.inner.Anonymous() }

// Decisions returns the number of Decide calls sanitized so far.
func (s *Sanitizer) Decisions() int { return s.count }

// InstrumentationProbes returns how many times the instrumented copy of the
// decoder has been invoked, i.e. how often the instrumentation-transparency
// probe actually ran.
func (s *Sanitizer) InstrumentationProbes() int64 { return s.instrProbes.Value() }

// Decide forwards to the wrapped decoder and probes the call. On a clean
// decoder it is output-equivalent to the wrapped Decide.
func (s *Sanitizer) Decide(mu *view.View) bool {
	// The sanitizer is instrumentation around decoders, not a decoder under
	// the purity contract: the decision counter is probe bookkeeping.
	//lint:ignore decoderpurity the Decisions() counter is sanitizer instrumentation, not decoder state
	s.count++
	snap := mu.Clone()
	out := s.inner.Decide(mu)

	if !viewsDeepEqual(mu, snap) {
		s.violate("mutation", mu, "Decide mutated its view argument")
		// Continue probing against the pristine snapshot.
	}
	if got := s.instr.Decide(snap.Clone()); got != out {
		s.violate("instrumentation", mu, fmt.Sprintf(
			"instrumented decoder returned %v where the plain decoder returned %v; enabling metrics must not change verdicts", got, out))
	}
	for i := 0; i < s.cfg.Repeats; i++ {
		if got := s.inner.Decide(snap.Clone()); got != out {
			s.violate("repeat", mu, fmt.Sprintf("repeated invocation %d returned %v, first returned %v", i+1, got, out))
		}
	}
	for i := 0; i < s.cfg.Relabelings; i++ {
		perm, free := distClassPerm(snap, s.rng)
		if !free {
			break // every distance class is a singleton; nothing to probe
		}
		if got := s.inner.Decide(relabelView(snap, perm)); got != out {
			s.violate("relabeling", mu, fmt.Sprintf(
				"distance-class-preserving renumbering %v changed the output from %v to %v; Decide depends on extraction order", perm, out, got))
		}
	}
	if s.inner.Anonymous() && !snap.Anonymous() {
		if got := s.inner.Decide(snap.Anonymize()); got != out {
			s.violate("anonymity", mu, fmt.Sprintf(
				"anonymized view changed the output from %v to %v although Anonymous() is true", out, got))
		}
	}
	if s.cfg.OrderInvariant {
		if remapped, ok := orderinv.RemapViewIDs(snap, shiftedIDTargets(snap)); ok {
			if got := s.inner.Decide(remapped); got != out {
				s.violate("order-invariance", mu, fmt.Sprintf(
					"order-preserving identifier remap changed the output from %v to %v", out, got))
			}
		}
	}
	return out
}

// violate reports through the configured sink, panicking by default.
func (s *Sanitizer) violate(check string, mu *view.View, detail string) {
	v := &Violation{Check: check, Detail: detail, View: mu}
	if s.cfg.Report != nil {
		s.cfg.Report(v)
		return
	}
	panic(v.Error())
}

// viewsDeepEqual compares every field of two views, including map
// contents.
func viewsDeepEqual(a, b *view.View) bool {
	return a.Radius == b.Radius &&
		a.NBound == b.NBound &&
		reflect.DeepEqual(a.Adj, b.Adj) &&
		reflect.DeepEqual(a.Dist, b.Dist) &&
		reflect.DeepEqual(a.Ports, b.Ports) &&
		reflect.DeepEqual(a.IDs, b.IDs) &&
		reflect.DeepEqual(a.Labels, b.Labels)
}

// distClassPerm draws a random permutation of local nodes that fixes the
// center and permutes only within distance classes — exactly the freedom
// the arbitrary host-graph numbering grants view extraction. free is false
// when every class is a singleton, i.e. the view admits no renumbering at
// all (the drawn permutation may still be the identity; that probe is then
// trivially satisfied).
func distClassPerm(mu *view.View, rng *rand.Rand) (perm []int, free bool) {
	n := mu.N()
	classes := map[int][]int{}
	for i := 1; i < n; i++ {
		classes[mu.Dist[i]] = append(classes[mu.Dist[i]], i)
	}
	perm = make([]int, n)
	perm[view.Center] = view.Center
	for d := 0; d <= mu.Radius; d++ {
		members := classes[d]
		if len(members) == 0 {
			continue
		}
		if len(members) > 1 {
			free = true
		}
		shuffled := append([]int(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for k, src := range members {
			perm[src] = shuffled[k]
		}
	}
	return perm, free
}

// relabelView applies perm (old local index -> new local index) to mu,
// producing the view the same extraction would yield under a host
// numbering permuted within distance classes. Adjacency stays sorted and
// the port map is rekeyed, matching view.Extract's invariants.
func relabelView(mu *view.View, perm []int) *view.View {
	n := mu.N()
	out := &view.View{
		Radius: mu.Radius,
		Adj:    make([][]int, n),
		Dist:   make([]int, n),
		Ports:  make(map[[2]int]int, len(mu.Ports)),
		IDs:    make([]int, n),
		Labels: make([]string, n),
		NBound: mu.NBound,
	}
	for i := 0; i < n; i++ {
		ni := perm[i]
		out.Dist[ni] = mu.Dist[i]
		out.IDs[ni] = mu.IDs[i]
		out.Labels[ni] = mu.Labels[i]
		adj := make([]int, len(mu.Adj[i]))
		for k, j := range mu.Adj[i] {
			adj[k] = perm[j]
		}
		sortInts(adj)
		out.Adj[ni] = adj
	}
	for key, p := range mu.Ports {
		out.Ports[[2]int{perm[key[0]], perm[key[1]]}] = p
	}
	return out
}

// sortInts is a tiny insertion sort; adjacency lists are short.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// shiftedIDTargets builds a remap target set that preserves identifier
// order but changes every value (id -> spread ranks), staying within a
// padded NBound so the remapped view remains well-formed.
func shiftedIDTargets(mu *view.View) []int {
	distinct := map[int]bool{}
	for _, id := range mu.IDs {
		if id != 0 {
			distinct[id] = true
		}
	}
	maxID := 0
	for id := range distinct {
		if id > maxID {
			maxID = id
		}
	}
	targets := make([]int, 0, len(distinct))
	for i := 0; i < len(distinct); i++ {
		// maxID+1, maxID+2, ...: ascending and strictly above every
		// original identifier, so the remap changes every value.
		// RemapViewIDs pads NBound when the targets exceed it.
		targets = append(targets, maxID+1+i)
	}
	return targets
}
