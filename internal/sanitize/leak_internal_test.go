package sanitize

import "testing"

// TestParseGoroutineDump pins the dump grammar the probes depend on: header
// id and state, top-of-stack frame, and "created by" attribution, including
// the Go 1.21+ "in goroutine N" suffix and scheduler duration annotations.
func TestParseGoroutineDump(t *testing.T) {
	dump := "goroutine 1 [running]:\n" +
		"main.main()\n" +
		"\t/src/main.go:10 +0x1a\n" +
		"\n" +
		"goroutine 18 [chan receive, 2 minutes]:\n" +
		"hidinglcp/internal/nbhd.worker(0x2, 0xc000010000)\n" +
		"\t/src/shard.go:203 +0x1b\n" +
		"created by hidinglcp/internal/nbhd.BuildSharded in goroutine 1\n" +
		"\t/src/parallel.go:30 +0x5c\n" +
		"\n" +
		"goroutine 19 [semacquire]:\n" +
		"sync.runtime_Semacquire(0xc00001c0c8)\n" +
		"\t/go/src/runtime/sema.go:62 +0x25\n" +
		"created by main.spawn\n" +
		"\t/src/main.go:20 +0x33\n"

	gs := parseGoroutineDump(dump)
	if len(gs) != 3 {
		t.Fatalf("parsed %d goroutines, want 3: %+v", len(gs), gs)
	}

	if g := gs[0]; g.ID != 1 || g.State != "running" || g.Top != "main.main" || g.CreatedBy != "" {
		t.Errorf("main goroutine parsed as %+v", g)
	}
	if g := gs[1]; g.ID != 18 || g.State != "chan receive" ||
		g.Top != "hidinglcp/internal/nbhd.worker" ||
		g.CreatedBy != "hidinglcp/internal/nbhd.BuildSharded" {
		t.Errorf("worker goroutine parsed as %+v", g)
	}
	if g := gs[2]; g.ID != 19 || g.State != "semacquire" || g.CreatedBy != "main.spawn" {
		t.Errorf("semacquire goroutine parsed as %+v", g)
	}
}

// TestParseGoroutineDumpIgnoresJunk: malformed blocks must be skipped, not
// mis-parsed into phantom goroutines.
func TestParseGoroutineDumpIgnoresJunk(t *testing.T) {
	dump := "not a goroutine header\nsome frame\n\n" +
		"goroutine nan [running]:\nframe()\n\n" +
		"goroutine 7 [runnable]:\nf()\n\t/x.go:1 +0x1\n"
	gs := parseGoroutineDump(dump)
	if len(gs) != 1 || gs[0].ID != 7 || gs[0].State != "runnable" {
		t.Fatalf("parsed %+v, want exactly goroutine 7", gs)
	}
}
