// Package engine is the dispatch layer between the CLIs and the pipelines:
// one Registry naming every scheme, canonical family, and experiment, and
// one Runner owning job execution — span, counters, and the translation of
// context cancellation into ErrCancelled. The three binaries (cmd/lcpcheck,
// cmd/nbhdgraph, cmd/experiments) are thin flag-parsing wrappers over this
// package; nothing below it dispatches on scheme or experiment names.
//
// Cancellation contract: every job threads its context into the parallel
// primitives (nbhd.BuildShardedCtx, core.ExhaustiveStrongSoundnessParallelCtx,
// sim.RunSchemeFaultsCtx, the experiment drivers), which stop at their next
// shard/instance/round checkpoint. A job interrupted this way returns an
// error satisfying errors.Is(err, ErrCancelled) — and also errors.Is against
// context.Canceled or context.DeadlineExceeded, whichever fired — while a
// context that never fires leaves every output bit-identical to the
// context-free run.
package engine

import (
	"context"
	"errors"
	"fmt"

	"hidinglcp/internal/cancel"
	"hidinglcp/internal/obs"
)

// ErrCancelled tags every error a Job returns because its context fired.
// CLIs test for it with errors.Is and conventionally exit with code 2.
var ErrCancelled = errors.New("job cancelled")

// Job is one named unit of pipeline work the Runner can execute. Run
// receives the job's context (nil = never cancelled, see internal/cancel)
// and the scope to report into.
type Job struct {
	// Name identifies the job in spans, counters, and error messages.
	Name string
	// Run does the work. It should return promptly after ctx fires —
	// every pipeline primitive it calls stops at its next checkpoint.
	Run func(ctx context.Context, sc obs.Scope) error
}

// Runner executes Jobs against an observability scope. The zero Runner is
// valid: it runs jobs with no instrumentation.
type Runner struct {
	// Scope receives the job span, the engine.jobs.* counters, and the
	// cancellation event. The zero Scope is a no-op.
	Scope obs.Scope
}

// Run executes the job under ctx and returns its error, re-tagged with
// ErrCancelled when the context caused it. Counters: engine.jobs.started
// always; then exactly one of engine.jobs.completed, engine.jobs.failed,
// or engine.jobs.cancelled.
func (r Runner) Run(ctx context.Context, job Job) error {
	sc := r.Scope
	sc.Counter("engine.jobs.started").Inc()
	span := sc.Span("engine.job")
	span.SetAttr("job", job.Name)
	defer span.End()

	err := job.Run(ctx, sc)
	switch {
	case err == nil:
		sc.Counter("engine.jobs.completed").Inc()
		return nil
	case cancel.Cancelled(ctx) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		sc.Counter("engine.jobs.cancelled").Inc()
		if sc.EventsEnabled() {
			sc.EmitSpanEvent(span, obs.LevelWarn, "engine.job.cancelled",
				obs.F("job", job.Name))
		}
		span.SetAttr("outcome", "cancelled")
		if errors.Is(err, ErrCancelled) {
			return err
		}
		// Double-wrap: errors.Is finds both ErrCancelled and the
		// underlying context cause.
		return fmt.Errorf("%w: %s: %w", ErrCancelled, job.Name, err)
	default:
		sc.Counter("engine.jobs.failed").Inc()
		span.SetAttr("outcome", "failed")
		return err
	}
}
