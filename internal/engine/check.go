package engine

import (
	"context"
	"fmt"
	"io"

	"hidinglcp/internal/cli"
	"hidinglcp/internal/core"
	"hidinglcp/internal/faults"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/obs"
	"hidinglcp/internal/sanitize"
	"hidinglcp/internal/sim"
)

// CheckConfig parameterizes the certify→run→report pipeline behind
// cmd/lcpcheck.
type CheckConfig struct {
	// Scheme is the registry identifier of the scheme to run.
	Scheme string
	// Graph is the instance specification (cli.ParseGraph syntax).
	Graph string
	// Plan is the fault-injection plan; an active plan routes the run
	// through the fault-injected simulator.
	Plan faults.Plan
	// Verbose prints per-node certificates and verdicts.
	Verbose bool
	// Conflicts computes the hidden-fraction conflict report.
	Conflicts bool
	// Distributed verifies via the message-passing simulator.
	Distributed bool
	// Sanitize re-runs every decoder decision under the determinism
	// sanitizer.
	Sanitize bool
	// Exhaustive sweeps all labelings of the instance for
	// strong-soundness violations.
	Exhaustive bool
	// Shards and Workers configure the parallel sweep (0 = defaults).
	Shards, Workers int
	// Out receives the report (nil = io.Discard).
	Out io.Writer
}

// maxExhaustiveLabelings bounds the |alphabet|^n search space Exhaustive
// accepts; beyond this the sweep runs for hours and the caller almost
// certainly mistyped the graph size.
const maxExhaustiveLabelings = 20_000_000

// CheckJob builds the lcpcheck pipeline as an engine Job: resolve the
// scheme, certify the instance, evaluate every node (centralized,
// distributed, or fault-injected), and report verdicts, certificate sizes,
// and the optional conflict/exhaustive/sanitizer analyses.
func (r *Registry) CheckJob(cfg CheckConfig) Job {
	return Job{
		Name: "check:" + cfg.Scheme,
		Run: func(ctx context.Context, sc obs.Scope) error {
			return r.runCheck(ctx, sc, cfg)
		},
	}
}

func (r *Registry) runCheck(ctx context.Context, sc obs.Scope, cfg CheckConfig) error {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	// Name the scope after the scheme so every progress line and span of the
	// exhaustive search says which scheme (and shard counts) it is on.
	sc = sc.Named("scheme=" + cfg.Scheme)
	s, err := r.Scheme(cfg.Scheme)
	if err != nil {
		return err
	}
	var sanResult *sanitize.Result
	if cfg.Sanitize {
		s, sanResult = sanitize.WithScheme(s, sanitize.Config{})
	}
	g, err := cli.ParseGraph(cfg.Graph)
	if err != nil {
		return err
	}
	var inst core.Instance
	if s.Decoder.Anonymous() {
		inst = core.NewAnonymousInstance(g)
	} else {
		inst = core.NewInstance(g)
	}

	if cfg.Plan.Active() {
		// Fault injection always goes through the message-passing simulator
		// (faults are scheduler events; there is nothing to inject into a
		// centralized extraction), and it degrades gracefully: per-node
		// verdicts instead of a completeness error.
		if err := cfg.Plan.Validate(g.N()); err != nil {
			return err
		}
		if err := runFaulty(ctx, sc, out, s, inst, cfg.Plan, cfg.Verbose); err != nil {
			return err
		}
		return sanitizerVerdict(out, sanResult)
	}

	labels, err := s.Prover.Certify(inst)
	if err != nil {
		return fmt.Errorf("prover rejects the instance: %w", err)
	}
	l, err := core.NewLabeled(inst, labels)
	if err != nil {
		return err
	}

	var outs []bool
	if cfg.Distributed {
		var stats sim.Stats
		outs, stats, err = sim.RunScheme(s, inst)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "simulator: %d rounds, %d messages, %d records\n", stats.Rounds, stats.Messages, stats.Records)
	} else {
		outs, err = core.Run(s.Decoder, l)
		if err != nil {
			return err
		}
	}

	accepts := 0
	for _, ok := range outs {
		if ok {
			accepts++
		}
	}
	fmt.Fprintf(out, "scheme %s on %v\n", s.Name, g)
	fmt.Fprintf(out, "accepting nodes: %d/%d\n", accepts, g.N())
	fmt.Fprintf(out, "max certificate: %d bits\n", s.MaxLabelBits(labels))
	if cfg.Verbose {
		for v := 0; v < g.N(); v++ {
			// The hiding adversary is the verifier-side observer, not the
			// prover operator inspecting certificates they just generated;
			// -verbose is that operator's explicit request for the raw bytes.
			//lint:ignore certflow operator-requested dump of the operator's own certificates under -verbose
			fmt.Fprintf(out, "  node %2d  accept=%-5v  cert=%s\n", v, outs[v], labels[v])
		}
	}
	if cfg.Conflicts {
		report, err := nbhd.MinExtractionConflicts(s.Decoder, l, 2)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "extraction conflicts: %d distinct views, min bad edges %d, fail fraction %.2f\n",
			report.DistinctViews, report.MinBadEdges, report.FailFraction)
	}
	if cfg.Exhaustive {
		alphabet, err := r.Alphabet(cfg.Scheme)
		if err != nil {
			return err
		}
		space := 1.0
		for i := 0; i < g.N(); i++ {
			space *= float64(len(alphabet))
		}
		if space > maxExhaustiveLabelings {
			return fmt.Errorf("exhaustive search needs %.0f labelings (%d^%d); refusing above %d — use a smaller graph",
				space, len(alphabet), g.N(), maxExhaustiveLabelings)
		}
		if err := core.ExhaustiveStrongSoundnessParallelCtx(ctx, sc, s.Decoder, s.Promise.Lang, inst, alphabet, cfg.Shards, cfg.Workers); err != nil {
			return err
		}
		fmt.Fprintf(out, "strong soundness: no violation across %.0f labelings (%d^%d)\n", space, len(alphabet), g.N())
	}
	if err := sanitizerVerdict(out, sanResult); err != nil {
		return err
	}
	if accepts != g.N() {
		return fmt.Errorf("completeness violated: %d nodes reject", g.N()-accepts)
	}
	return nil
}

// sanitizerVerdict reports the determinism sanitizer's outcome when one was
// attached (nil sanResult = sanitizer off).
func sanitizerVerdict(out io.Writer, sanResult *sanitize.Result) error {
	if sanResult == nil {
		return nil
	}
	if err := sanResult.Err(); err != nil {
		return err
	}
	fmt.Fprintf(out, "sanitizer: %d decisions probed, determinism contract holds\n", sanResult.Decisions())
	return nil
}

// runFaulty drives the scheme through the fault-injected simulator and
// reports the degraded outcome: fault summary, verdict counts, and — with
// Verbose — per-node verdicts. Non-unanimity is the expected result of a
// faulty run, not an error.
func runFaulty(ctx context.Context, sc obs.Scope, out io.Writer, s core.Scheme, inst core.Instance, plan faults.Plan, verbose bool) error {
	fr, err := sim.RunSchemeFaultsCtx(ctx, sc, s, inst, plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scheme %s on %v\n", s.Name, inst.G)
	fmt.Fprintf(out, "fault plan: %s\n", plan)
	fmt.Fprintf(out, "simulator: %d rounds, %d messages, %d records\n",
		fr.Stats.Rounds, fr.Stats.Messages, fr.Stats.Records)
	fmt.Fprintf(out, "faults: %s\n", fr.Faults.Summary())
	accepted, rejected, crashed := fr.Counts()
	fmt.Fprintf(out, "verdicts: %d accept, %d reject, %d crashed\n", accepted, rejected, crashed)
	if verbose {
		for v, verdict := range fr.Verdicts {
			fmt.Fprintf(out, "  node %2d  %s\n", v, verdict)
		}
	}
	if plan.Trace {
		fmt.Fprintln(out, "schedule trace:")
		for _, line := range fr.Faults.TraceLines() {
			fmt.Fprintln(out, "  "+line)
		}
	}
	return nil
}
