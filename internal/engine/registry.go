package engine

import (
	"fmt"
	"strconv"
	"strings"

	"hidinglcp/internal/cli"
	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/experiments"
	"hidinglcp/internal/nbhd"
)

// Registry is the one named-scheme table behind every CLI: schemes (with
// their sweep alphabets), the canonical hiding family of each scheme, and
// the experiment runners. Default() is the production registry; tests can
// build narrower ones.
type Registry struct {
	schemes     []decoders.SchemeEntry
	experiments []experiments.Runner
}

// Default returns the registry over every scheme in decoders.Schemes and
// every experiment in experiments.All.
func Default() *Registry {
	return &Registry{
		schemes:     decoders.Schemes(),
		experiments: experiments.All(),
	}
}

// SchemeNames lists the scheme identifiers, in registry order.
func (r *Registry) SchemeNames() []string {
	names := make([]string, len(r.schemes))
	for i, e := range r.schemes {
		names[i] = e.Name
	}
	return names
}

// Scheme resolves a scheme identifier.
func (r *Registry) Scheme(name string) (core.Scheme, error) {
	for _, e := range r.schemes {
		if e.Name == name {
			return e.New(), nil
		}
	}
	return core.Scheme{}, fmt.Errorf("unknown scheme %q (want one of %s)", name, strings.Join(r.SchemeNames(), ", "))
}

// Alphabet returns the exhaustive-sweep alphabet of a scheme, or an error
// for schemes with identifier-dependent certificates.
func (r *Registry) Alphabet(name string) ([]string, error) {
	for _, e := range r.schemes {
		if e.Name != name {
			continue
		}
		if e.Alphabet == nil {
			return nil, fmt.Errorf("scheme %q has identifier-dependent certificates; no finite alphabet to sweep", name)
		}
		return e.Alphabet(), nil
	}
	return nil, fmt.Errorf("unknown scheme %q (want one of %s)", name, strings.Join(r.SchemeNames(), ", "))
}

// Family picks the canonical hiding family of a scheme — the slice of
// V(D, n) its hiding witness lives in — or builds a prover-labeled family
// from explicit comma-separated graph specs. Families come back sharded so
// the neighborhood-graph build can run on multiple workers.
func (r *Registry) Family(s core.Scheme, schemeName, graphsSpec string) (nbhd.ShardedEnumerator, string, error) {
	if graphsSpec != "" {
		var insts []core.Instance
		for _, spec := range strings.Split(graphsSpec, ",") {
			g, err := cli.ParseGraph(spec)
			if err != nil {
				return nil, "", err
			}
			if s.Decoder.Anonymous() {
				insts = append(insts, core.NewAnonymousInstance(g))
			} else {
				insts = append(insts, core.NewInstance(g))
			}
		}
		return nbhd.ShardedProverLabeled(s, insts...), fmt.Sprintf("prover-labeled %s", graphsSpec), nil
	}
	switch schemeName {
	case "degree-one", "union":
		return nbhd.ShardedAllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(4)...),
			"exhaustive connected bipartite δ=1 slice, n <= 4, all ports and labelings", nil
	case "even-cycle":
		family, err := decoders.EvenCycleFamily(4, 6)
		if err != nil {
			return nil, "", err
		}
		return nbhd.ShardedFromLabeled(family...), "all yes-instances on C4 and C6 (every port assignment, both phases)", nil
	case "shatter", "shatter-literal":
		l1, l2 := decoders.ShatterHidingPair()
		return nbhd.ShardedFromLabeled(l1, l2), "the paper's P8/P7 hiding pair", nil
	case "watermelon":
		family, err := decoders.WatermelonHidingFamily()
		if err != nil {
			return nil, "", err
		}
		return nbhd.ShardedFromLabeled(family...), "P8 identifier pair + rotated even-cycle watermelons", nil
	case "trivial", "trivial3":
		return nil, "", fmt.Errorf("the trivial scheme needs an explicit -graphs family")
	default:
		return nil, "", fmt.Errorf("no canonical family for scheme %q; pass -graphs", schemeName)
	}
}

// Experiments lists every registered experiment runner, in index order.
func (r *Registry) Experiments() []experiments.Runner {
	return r.experiments
}

// NormalizeExperimentID maps user-friendly spellings ("e04", "E04", "4")
// onto the canonical experiment IDs ("E4").
func NormalizeExperimentID(s string) string {
	t := strings.TrimLeft(strings.ToUpper(strings.TrimSpace(s)), "E")
	if n, err := strconv.Atoi(t); err == nil {
		return fmt.Sprintf("E%d", n)
	}
	return strings.ToUpper(strings.TrimSpace(s))
}
