package engine

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"hidinglcp/internal/decoders"
	"hidinglcp/internal/experiments"
	"hidinglcp/internal/faults"
	"hidinglcp/internal/obs"
)

func TestRegistryMatchesDecoders(t *testing.T) {
	r := Default()
	want := decoders.SchemeNames()
	got := r.SchemeNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %d schemes, decoders %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scheme %d: registry %q, decoders %q", i, got[i], want[i])
		}
		s, err := r.Scheme(want[i])
		if err != nil {
			t.Errorf("Scheme(%q): %v", want[i], err)
			continue
		}
		if s.Decoder == nil || s.Prover == nil {
			t.Errorf("scheme %q incomplete", want[i])
		}
	}
	if _, err := r.Scheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := r.Alphabet("degree-one"); err != nil {
		t.Errorf("Alphabet(degree-one): %v", err)
	}
	if _, err := r.Alphabet("watermelon"); err == nil {
		t.Error("identifier-dependent alphabet accepted")
	}
}

func TestNormalizeExperimentID(t *testing.T) {
	for in, want := range map[string]string{
		"e04": "E4", "E04": "E4", "4": "E4", "E17": "E17", " e1 ": "E1", "bogus": "BOGUS",
	} {
		if got := NormalizeExperimentID(in); got != want {
			t.Errorf("NormalizeExperimentID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunnerCountsOutcomes(t *testing.T) {
	sc := obs.NewScope()
	r := Runner{Scope: sc}
	if err := r.Run(nil, Job{Name: "ok", Run: func(context.Context, obs.Scope) error { return nil }}); err != nil {
		t.Fatalf("ok job: %v", err)
	}
	wantErr := errors.New("boom")
	if err := r.Run(nil, Job{Name: "bad", Run: func(context.Context, obs.Scope) error { return wantErr }}); !errors.Is(err, wantErr) {
		t.Fatalf("bad job err = %v", err)
	}
	for name, want := range map[string]int64{
		"engine.jobs.started":   2,
		"engine.jobs.completed": 1,
		"engine.jobs.failed":    1,
	} {
		if got := sc.Registry().Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestRunnerTagsCancellation(t *testing.T) {
	sc := obs.NewScope()
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Runner{Scope: sc}.Run(ctx, Default().CheckJob(CheckConfig{
		Scheme: "degree-one", Graph: "path:5", Exhaustive: true, Shards: 4, Workers: 2,
	}))
	if err == nil {
		t.Fatal("pre-cancelled context produced no error")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want errors.Is(err, ErrCancelled)", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if got := sc.Registry().Counter("engine.jobs.cancelled").Value(); got != 1 {
		t.Errorf("engine.jobs.cancelled = %d, want 1", got)
	}
	if got := sc.Registry().Counter("engine.jobs.failed").Value(); got != 0 {
		t.Errorf("engine.jobs.failed = %d, want 0", got)
	}
}

func TestCheckJobMatchesLegacyOutput(t *testing.T) {
	var buf bytes.Buffer
	err := Runner{}.Run(nil, Default().CheckJob(CheckConfig{
		Scheme: "even-cycle", Graph: "cycle:8", Verbose: true, Conflicts: true,
		Sanitize: true, Out: &buf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scheme even-cycle on", "accepting nodes: 8/8", "max certificate:",
		"extraction conflicts:", "sanitizer:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckJobFaultPlan(t *testing.T) {
	var buf bytes.Buffer
	err := Runner{}.Run(nil, Default().CheckJob(CheckConfig{
		Scheme: "even-cycle", Graph: "cycle:10",
		Plan: faults.Plan{Seed: 7, Drop: 0.3}, Out: &buf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "verdicts:") {
		t.Errorf("fault run missing verdict summary:\n%s", buf.String())
	}
}

func TestBuildJobCanonicalFamily(t *testing.T) {
	var buf bytes.Buffer
	err := Runner{}.Run(nil, Default().BuildJob(BuildConfig{
		Scheme: "shatter", Shards: 3, Workers: 2, Out: &buf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "odd cycle:") {
		t.Errorf("shatter family lost its hiding witness:\n%s", buf.String())
	}
}

func TestBuildJobCancelled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Runner{}.Run(ctx, Default().BuildJob(BuildConfig{Scheme: "degree-one"}))
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
}

func TestExperimentsJobSingle(t *testing.T) {
	var got []string
	err := Runner{}.Run(nil, Default().ExperimentsJob(ExperimentsConfig{
		Only: "E1",
		Emit: func(tb experiments.Table) { got = append(got, tb.ID) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "E1" {
		t.Errorf("emitted %v, want [E1]", got)
	}
}

func TestExperimentsJobUnknown(t *testing.T) {
	err := Runner{}.Run(nil, Default().ExperimentsJob(ExperimentsConfig{Only: "E99"}))
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment error", err)
	}
}

func TestExperimentsJobCancelled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	err := Runner{}.Run(ctx, Default().ExperimentsJob(ExperimentsConfig{Only: "E1"}))
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
}
