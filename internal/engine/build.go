package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/obs"
)

// BuildConfig parameterizes the neighborhood-graph pipeline behind
// cmd/nbhdgraph: build (a slice of) the accepting neighborhood graph
// V(D, n) of Section 3, report its size and 2-colorability, print any odd
// cycle (the Lemma 3.2 hiding witness), and optionally emit DOT.
type BuildConfig struct {
	// Scheme is the registry identifier of the scheme.
	Scheme string
	// Graphs optionally lists comma-separated graph specs for a
	// prover-labeled custom family ("" = the scheme's canonical hiding
	// family).
	Graphs string
	// DotPath writes the neighborhood graph in DOT format to this file
	// ("" = off).
	DotPath string
	// Shards and Workers configure the parallel build (0 = defaults).
	Shards, Workers int
	// Out receives the report (nil = io.Discard).
	Out io.Writer
}

// BuildJob builds the nbhdgraph pipeline as an engine Job.
func (r *Registry) BuildJob(cfg BuildConfig) Job {
	return Job{
		Name: "nbhdgraph:" + cfg.Scheme,
		Run: func(ctx context.Context, sc obs.Scope) error {
			return r.runBuild(ctx, sc, cfg)
		},
	}
}

func (r *Registry) runBuild(ctx context.Context, sc obs.Scope, cfg BuildConfig) error {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	sc = sc.Named("scheme=" + cfg.Scheme)
	s, err := r.Scheme(cfg.Scheme)
	if err != nil {
		return err
	}
	enum, desc, err := r.Family(s, cfg.Scheme, cfg.Graphs)
	if err != nil {
		return err
	}
	ng, err := nbhd.BuildShardedCtx(ctx, sc, s.Decoder, enum, cfg.Shards, cfg.Workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scheme:  %s\n", s.Name)
	fmt.Fprintf(out, "family:  %s\n", desc)
	fmt.Fprintf(out, "views:   %d accepting\n", ng.Size())
	fmt.Fprintf(out, "edges:   %d (+%d self-loops)\n", ng.EdgeCount(), ng.LoopCount())
	fmt.Fprintf(out, "2-colorable: %v\n", ng.IsKColorable(2))
	if cyc := ng.OddCycle(); cyc != nil {
		fmt.Fprintf(out, "odd cycle: length %d -> the scheme is HIDING at this size (Lemma 3.2)\n", len(cyc))
	} else {
		fmt.Fprintf(out, "no odd cycle in this slice -> an extraction decoder exists for it (Lemma 3.2)\n")
	}
	if cfg.DotPath != "" {
		if err := writeDOT(ng, cfg.DotPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "DOT written to %s\n", cfg.DotPath)
	}
	return nil
}

// writeDOT renders the neighborhood graph in DOT format. Node labels carry
// only view indices and sizes — never certificate contents (hiding
// contract).
func writeDOT(ng *nbhd.NGraph, path string) error {
	var b strings.Builder
	b.WriteString("graph V {\n")
	for i := 0; i < ng.Size(); i++ {
		fmt.Fprintf(&b, "  v%d [label=%q];\n", i, fmt.Sprintf("view %d (n=%d)", i, ng.ViewAt(i).N()))
		if ng.HasLoop(i) {
			fmt.Fprintf(&b, "  v%d -- v%d;\n", i, i)
		}
	}
	for _, e := range ng.Graph().Edges() {
		fmt.Fprintf(&b, "  v%d -- v%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
