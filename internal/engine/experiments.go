package engine

import (
	"context"
	"fmt"

	"hidinglcp/internal/cancel"
	"hidinglcp/internal/experiments"
	"hidinglcp/internal/obs"
)

// ExperimentsConfig parameterizes the reproduction-suite pipeline behind
// cmd/experiments.
type ExperimentsConfig struct {
	// Only restricts the run to one canonical experiment ID ("" = all).
	Only string
	// Emit receives each finished table, in index order (nil = tables are
	// dropped). cmd/experiments streams markdown renders through it.
	Emit func(experiments.Table)
}

// ExperimentsJob builds the experiment-suite pipeline as an engine Job:
// dispatch every selected runner (each threads the context into its own
// parallel phases) and fail if any experiment errored. Cancellation stops
// the suite at the next experiment boundary — or inside the current
// experiment at its next shard/instance checkpoint — and the partially
// complete suite reports the cancellation, not a table-failure error.
func (r *Registry) ExperimentsJob(cfg ExperimentsConfig) Job {
	name := "experiments"
	if cfg.Only != "" {
		name += ":" + cfg.Only
	}
	return Job{
		Name: name,
		Run: func(ctx context.Context, sc obs.Scope) error {
			return r.runExperiments(ctx, cfg)
		},
	}
}

func (r *Registry) runExperiments(ctx context.Context, cfg ExperimentsConfig) error {
	ran := 0
	var failed []string
	for _, runner := range r.experiments {
		if cfg.Only != "" && runner.ID != cfg.Only {
			continue
		}
		// Experiment-boundary checkpoint: a context that fired mid-suite
		// stops before dispatching the next experiment.
		if err := cancel.Err(ctx, "experiment suite"); err != nil {
			return err
		}
		ran++
		table := runner.Run(ctx)
		if cfg.Emit != nil {
			cfg.Emit(table)
		}
		if table.Err != nil {
			// A cancellation that fired inside the experiment surfaces as
			// the table's Err; report it as the suite's cancellation
			// rather than an experiment failure.
			if cancel.Cancelled(ctx) {
				return fmt.Errorf("experiment %s: %w", runner.ID, table.Err)
			}
			failed = append(failed, runner.ID)
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (use -list)", cfg.Only)
	}
	if len(failed) > 0 {
		return fmt.Errorf("experiments failed: %v", failed)
	}
	return nil
}
