package decoders

import "testing"

func TestSchemeByName(t *testing.T) {
	for _, name := range SchemeNames() {
		s, err := SchemeByName(name)
		if err != nil {
			t.Errorf("SchemeByName(%q): %v", name, err)
			continue
		}
		if s.Decoder == nil || s.Prover == nil {
			t.Errorf("scheme %q incomplete", name)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestAlphabetFor(t *testing.T) {
	finite := map[string]bool{
		"trivial": true, "trivial3": true, "degree-one": true,
		"even-cycle": true, "union": true,
	}
	for _, e := range Schemes() {
		alphabet, err := AlphabetFor(e.Name)
		if finite[e.Name] {
			if err != nil {
				t.Errorf("AlphabetFor(%q): %v", e.Name, err)
			} else if len(alphabet) == 0 {
				t.Errorf("AlphabetFor(%q): empty alphabet", e.Name)
			}
			continue
		}
		// Identifier-dependent certificates: no finite sweep alphabet.
		if err == nil {
			t.Errorf("AlphabetFor(%q) succeeded; want identifier-dependence error", e.Name)
		}
	}
	if _, err := AlphabetFor("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range SchemeNames() {
		if seen[n] {
			t.Errorf("duplicate scheme name %q", n)
		}
		seen[n] = true
	}
}
