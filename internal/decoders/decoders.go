// Package decoders implements every certification scheme constructed in the
// paper, each as a core.Scheme bundling the decoder, its constructive
// prover, the promise problem it certifies, and its certificate encoding:
//
//   - Trivial(k): the folklore revealing LCP for k-coloring with
//     ceil(log k)-bit certificates (Section 1) — the non-hiding baseline.
//   - DegreeOne: the anonymous strong and hiding scheme for graphs with
//     minimum degree 1 (Lemma 4.1), constant-size certificates.
//   - EvenCycle: the anonymous strong and hiding scheme for even cycles via
//     2-edge-coloring (Lemma 4.2), constant-size certificates; hides the
//     coloring at every node.
//   - Union: the combined scheme of Theorem 1.1 for H1 ∪ H2.
//   - Shatter: the non-anonymous scheme for graphs with a shatter point
//     (Theorem 1.3), certificates of size O(min{Δ², n} + log n).
//   - Watermelon: the non-anonymous scheme for watermelon graphs
//     (Theorem 1.4), certificates of size O(log n).
//
// Labels are encoded as human-readable strings; each scheme documents its
// binary encoding through CertBits so the experiment harness can reproduce
// the paper's certificate-size claims.
package decoders

import (
	"fmt"
	"strconv"
	"strings"
)

// bitsFor returns the number of bits needed to distinguish values 0..m-1
// (at least 1).
func bitsFor(m int) int {
	if m <= 2 {
		return 1
	}
	b := 0
	for v := m - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// bitsForValue returns the number of bits in the binary representation of
// v >= 0 (at least 1).
func bitsForValue(v int) int {
	if v <= 1 {
		return 1
	}
	b := 0
	for ; v > 0; v >>= 1 {
		b++
	}
	return b
}

// parseInts splits s on sep and parses each part as a non-negative integer.
func parseInts(s, sep string) ([]int, error) {
	parts := strings.Split(s, sep)
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("field %d (len=%d) is not a non-negative integer", i, len(p))
		}
		out[i] = v
	}
	return out, nil
}
