package decoders

import (
	"errors"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Certificate symbols of the DegreeOne scheme (Lemma 4.1). The prover
// reveals a 2-coloring everywhere except at one degree-1 node of its
// choosing (labeled Bottom) and that node's unique neighbor (labeled Top).
const (
	DegOneColor0 = "0" // color 0 of the revealed part
	DegOneColor1 = "1" // color 1 of the revealed part
	DegOneBottom = "B" // ⊥: the hidden degree-1 node
	DegOneTop    = "T" // ⊤: the hidden node's unique neighbor
)

// DegOneAlphabet is the full certificate alphabet, handy for exhaustive
// adversarial labeling enumeration in soundness checks.
func DegOneAlphabet() []string {
	return []string{DegOneColor0, DegOneColor1, DegOneBottom, DegOneTop}
}

// DegreeOne returns the anonymous, strong, and hiding one-round LCP of
// Lemma 4.1 for 2-coloring on the class H1 of graphs with minimum degree 1.
// Certificates are constant-size (2 bits).
func DegreeOne() core.Scheme {
	return core.Scheme{
		Name:    "degree-one",
		Decoder: &degOneDecoder{},
		Prover:  &degOneProver{},
		Promise: core.Promise{
			Lang: core.TwoCol(),
			InClass: func(g *graph.Graph) bool {
				return g.IsBipartite() && g.N() >= 2 && g.MinDegree() == 1
			},
		},
		CertBits: func(string) int { return 2 },
	}
}

type degOneDecoder struct{}

var _ core.Decoder = (*degOneDecoder)(nil)

func (d *degOneDecoder) Rounds() int     { return 1 }
func (d *degOneDecoder) Anonymous() bool { return true }

// Decide implements the three rules of Lemma 4.1's decoder:
//
//  1. A ⊥ node accepts iff it has degree 1 and its unique neighbor is ⊤.
//  2. A ⊤ node accepts iff exactly one neighbor is ⊥ and all remaining
//     neighbors carry one common color β ∈ {0, 1}.
//  3. A colored node accepts iff at most one neighbor is ⊤ and every other
//     neighbor carries the opposite color.
func (d *degOneDecoder) Decide(mu *view.View) bool {
	center := view.Center
	nbs := mu.Adj[center]
	switch mu.Labels[center] {
	case DegOneBottom:
		return len(nbs) == 1 && mu.Labels[nbs[0]] == DegOneTop
	case DegOneTop:
		bottoms := 0
		common := ""
		for _, w := range nbs {
			switch l := mu.Labels[w]; l {
			case DegOneBottom:
				bottoms++
			case DegOneColor0, DegOneColor1:
				if common == "" {
					common = l
				} else if common != l {
					return false
				}
			default:
				return false
			}
		}
		return bottoms == 1
	case DegOneColor0, DegOneColor1:
		own := mu.Labels[center]
		tops := 0
		for _, w := range nbs {
			switch l := mu.Labels[w]; l {
			case DegOneTop:
				tops++
				if tops > 1 {
					return false
				}
			case DegOneColor0, DegOneColor1:
				if l == own {
					return false
				}
			default:
				return false
			}
		}
		return true
	default:
		return false
	}
}

type degOneProver struct{}

var _ core.Prover = (*degOneProver)(nil)

// Certify hides the 2-coloring at the smallest degree-1 node: that node
// becomes ⊥, its unique neighbor ⊤, and every other node reveals its color
// in a proper 2-coloring. Within the ⊤ node's component the coloring
// guarantees all of ⊤'s remaining neighbors share one color.
func (p *degOneProver) Certify(inst core.Instance) ([]string, error) {
	g := inst.G
	coloring, ok := g.TwoColoring()
	if !ok {
		return nil, errors.New("graph is not bipartite")
	}
	hidden := -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			hidden = v
			break
		}
	}
	if hidden == -1 {
		return nil, fmt.Errorf("graph has no degree-1 node (outside class H1): %v", g)
	}
	top := g.Neighbors(hidden)[0]
	labels := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		switch v {
		case hidden:
			labels[v] = DegOneBottom
		case top:
			labels[v] = DegOneTop
		default:
			if coloring[v] == 0 {
				labels[v] = DegOneColor0
			} else {
				labels[v] = DegOneColor1
			}
		}
	}
	return labels, nil
}
