package decoders

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sim"
)

// End-to-end properties across randomly generated promise-class instances:
// the prover's certificate is unanimously accepted, both through direct
// view extraction and through the message-passing simulator.

func randomWatermelon(rng *rand.Rand) *graph.Graph {
	k := 1 + rng.Intn(4)
	parity := 2 + rng.Intn(2) // 2 or 3
	paths := make([]int, k)
	for i := range paths {
		paths[i] = parity + 2*rng.Intn(3)
	}
	return graph.MustWatermelon(paths)
}

func TestWatermelonEndToEndProperty(t *testing.T) {
	s := Watermelon()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomWatermelon(rng)
		inst := core.NewInstance(g)
		labels, err := s.Prover.Certify(inst)
		if err != nil {
			return false
		}
		l := core.MustNewLabeled(inst, labels)
		direct, err := core.Run(s.Decoder, l)
		if err != nil {
			return false
		}
		viaSim, _, err := sim.RunScheme(s, inst)
		if err != nil {
			return false
		}
		for v := range direct {
			if !direct[v] || !viaSim[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDegreeOneEndToEndProperty(t *testing.T) {
	s := DegreeOne()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random tree + pendant guarantees the promise class.
		g := graph.RandomTree(3+rng.Intn(8), rng)
		inst := core.NewAnonymousInstance(g)
		labels, err := s.Prover.Certify(inst)
		if err != nil {
			return false
		}
		all, err := core.AllAccept(s.Decoder, core.MustNewLabeled(inst, labels))
		return err == nil && all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestShatterEndToEndProperty(t *testing.T) {
	s := Shatter()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Spiders with >= 2 legs of length >= 2 always have a shatter point
		// and are bipartite.
		k := 2 + rng.Intn(3)
		legs := make([]int, k)
		for i := range legs {
			legs[i] = 2 + rng.Intn(3)
		}
		g := graph.Spider(legs)
		inst := core.NewInstance(g)
		labels, err := s.Prover.Certify(inst)
		if err != nil {
			return false
		}
		all, err := core.AllAccept(s.Decoder, core.MustNewLabeled(inst, labels))
		return err == nil && all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: unanimously accepted instances of every scheme have a bipartite
// accepting subgraph — strong soundness restated as an invariant over
// random adversarial labelings (labels drawn from the scheme alphabets).
func TestStrongSoundnessInvariantProperty(t *testing.T) {
	degOne := DegreeOne()
	cycleAlpha := EvenCycleAlphabet()
	even := EvenCycle()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(7, 0.4, rng)
		inst := core.NewAnonymousInstance(g)
		labelsA := make([]string, g.N())
		labelsB := make([]string, g.N())
		for v := range labelsA {
			labelsA[v] = DegOneAlphabet()[rng.Intn(4)]
			labelsB[v] = cycleAlpha[rng.Intn(len(cycleAlpha))]
		}
		for _, run := range []struct {
			s      core.Scheme
			labels []string
		}{{degOne, labelsA}, {even, labelsB}} {
			acc, err := core.AcceptingSet(run.s.Decoder, core.MustNewLabeled(inst, run.labels))
			if err != nil {
				return false
			}
			sub, _ := g.InducedSubgraph(acc)
			if !sub.IsBipartite() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
