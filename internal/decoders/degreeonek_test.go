package decoders

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestDegreeOneKCompleteness(t *testing.T) {
	s := DegreeOneK(3)
	// 3-colorable graphs with a pendant node.
	pend := func(g *graph.Graph) *graph.Graph {
		h, err := graph.AttachPendant(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	for _, g := range []*graph.Graph{
		graph.Path(5),
		pend(graph.MustCycle(5)), // odd cycle + pendant: 3-chromatic
		pend(graph.Petersen()),   // 3-chromatic
		pend(graph.MustCycle(7)),
		graph.Spider([]int{2, 3}),
	} {
		if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g)); err != nil {
			t.Errorf("completeness on %v: %v", g, err)
		}
	}
}

func TestDegreeOneKProverRejects(t *testing.T) {
	s := DegreeOneK(3)
	if _, err := s.Prover.Certify(core.NewAnonymousInstance(graph.Complete(4))); err == nil {
		t.Error("prover 3-certified K4")
	}
	if _, err := s.Prover.Certify(core.NewAnonymousInstance(graph.MustCycle(5))); err == nil {
		t.Error("prover certified a graph without pendants")
	}
}

func TestDegreeOneKStrongSoundnessExhaustive(t *testing.T) {
	// 5^n labelings on every connected graph up to 4 nodes for k = 3.
	s := DegreeOneK(3)
	alphabet := DegOneKAlphabet(3)
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			inst := core.NewAnonymousInstance(g.Clone())
			if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, alphabet); err != nil {
				t.Errorf("strong soundness: %v", err)
				return false
			}
			return true
		})
	}
}

func TestDegreeOneKStrongSoundnessFuzz(t *testing.T) {
	s := DegreeOneK(3)
	alphabet := DegOneKAlphabet(3)
	rng := rand.New(rand.NewSource(37))
	gen := func(_ int, rng *rand.Rand) string { return alphabet[rng.Intn(len(alphabet))] }
	for _, g := range []*graph.Graph{
		graph.Complete(5), // needs 5 colors
		graph.MustWatermelon([]int{2, 3}),
		graph.Petersen(),
	} {
		inst := core.NewAnonymousInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 700, rng, gen); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

func TestDegreeOneKTopFreeColor(t *testing.T) {
	// A ⊤ whose neighbors exhaust all k colors must reject (no free color
	// remains), the k-ary analogue of the common-β rule.
	s := DegreeOneK(3)
	g := graph.Star(5) // center 0 with 4 leaves
	inst := core.NewAnonymousInstance(g)
	full := []string{
		DegOneKLabel(3, -2), DegOneKLabel(3, -1),
		DegOneKLabel(3, 0), DegOneKLabel(3, 1), DegOneKLabel(3, 2),
	}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, full))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] {
		t.Error("⊤ accepted neighbors exhausting all 3 colors")
	}
	ok := []string{
		DegOneKLabel(3, -2), DegOneKLabel(3, -1),
		DegOneKLabel(3, 0), DegOneKLabel(3, 1), DegOneKLabel(3, 0),
	}
	outs, err = core.Run(s.Decoder, core.MustNewLabeled(inst, ok))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0] {
		t.Error("⊤ rejected neighbors leaving a free color")
	}
}

func TestDegreeOneKMatchesDegreeOneForK2(t *testing.T) {
	// For k = 2 the generalization must agree with the Lemma 4.1 scheme on
	// every labeling of small instances (after translating the alphabets).
	orig := DegreeOne()
	gen := DegreeOneK(2)
	translate := map[string]string{
		DegOneBottom: DegOneKLabel(2, -1),
		DegOneTop:    DegOneKLabel(2, -2),
		DegOneColor0: DegOneKLabel(2, 0),
		DegOneColor1: DegOneKLabel(2, 1),
	}
	graph.EnumConnectedGraphs(4, func(g *graph.Graph) bool {
		inst := core.NewAnonymousInstance(g.Clone())
		graph.EnumLabelings(g.N(), 4, func(idx []int) bool {
			origLabels := make([]string, g.N())
			genLabels := make([]string, g.N())
			for v, a := range idx {
				origLabels[v] = DegOneAlphabet()[a]
				genLabels[v] = translate[origLabels[v]]
			}
			a, err := core.Run(orig.Decoder, core.MustNewLabeled(inst, origLabels))
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Run(gen.Decoder, core.MustNewLabeled(inst, genLabels))
			if err != nil {
				t.Fatal(err)
			}
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("disagreement at node %d of %v under %v: DegreeOne=%v DegreeOneK(2)=%v",
						v, g, origLabels, a[v], b[v])
				}
			}
			return true
		})
		return true
	})
}

// TestDegreeOneKHidingExploration records (without asserting) whether the
// k = 3 generalization exhibits a hiding witness on the small exhaustive
// slice: a non-3-colorable accepting neighborhood graph. This is the open
// direction the paper defers to future work.
func TestDegreeOneKHidingExploration(t *testing.T) {
	s := DegreeOneK(3)
	// Default ports only: exhausting port assignments as in E3 multiplies
	// the slice ~25x for no extra insight here.
	var insts []core.Instance
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if g.MinDegree() == 1 && g.IsKColorable(3) {
				gc := g.Clone()
				insts = append(insts, core.Instance{G: gc, Prt: graph.DefaultPorts(gc), NBound: 4})
			}
			return true
		})
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(DegOneKAlphabet(3), insts...))
	if err != nil {
		t.Fatal(err)
	}
	threeColorable := ng.IsKColorable(3)
	t.Logf("DegreeOneK(3) slice: %d views, %d edges, 3-colorable: %v (non-3-colorable would witness hiding a 3-coloring)",
		ng.Size(), ng.EdgeCount(), threeColorable)
	if ng.Size() == 0 {
		t.Fatal("empty slice")
	}
	// The slice must at least be non-2-colorable: the k = 2 hiding
	// behaviour embeds (an odd cycle of views exists).
	if ng.IsKColorable(2) {
		t.Error("DegreeOneK(3) slice is 2-colorable; expected at least the embedded 2-hiding witness")
	}
	// Empirical finding recorded in EXPERIMENTS.md: the slice IS
	// 3-colorable at this size, i.e. the naive k-generalization does not
	// (yet) witness hiding a 3-coloring — matching the paper's decision to
	// defer the general-k hiding question.
}

func TestDegreeOneKCertBits(t *testing.T) {
	s := DegreeOneK(3)
	// Alphabet of 5 symbols -> 3 bits.
	if got := s.LabelBits(DegOneKLabel(3, 1)); got != 3 {
		t.Errorf("bits = %d, want 3", got)
	}
	if got := DegreeOneK(2).LabelBits(DegOneKLabel(2, 0)); got != 2 {
		t.Errorf("k=2 bits = %d, want 2", got)
	}
}

func TestParseDegOneKCertErrors(t *testing.T) {
	bad := []string{"", "K3", "K3:", "K3:9", "K3:x", "K2:1", "junk"}
	for _, l := range bad {
		if _, err := parseDegOneKCert(3, l); err == nil {
			t.Errorf("parseDegOneKCert(3, %q) succeeded", l)
		}
	}
	if c, err := parseDegOneKCert(3, "K3:2"); err != nil || c.kind != 'C' || c.color != 2 {
		t.Errorf("K3:2 parsed as %+v, %v", c, err)
	}
}
