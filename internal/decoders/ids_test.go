package decoders

import (
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
)

// Section 2.2 quantifies completeness over EVERY identifier assignment;
// these tests enumerate all injective assignments on small instances for
// the identifier-dependent schemes.

func TestShatterCompletenessAllIDs(t *testing.T) {
	s := Shatter()
	g := graph.Path(5)
	pt := graph.DefaultPorts(g)
	count := 0
	graph.EnumIDs(5, 6, func(ids graph.IDs) bool {
		count++
		inst := core.Instance{G: g, Prt: pt, IDs: ids, NBound: 6}
		if _, err := core.CheckCompleteness(s, inst); err != nil {
			t.Errorf("ids %v: %v", ids, err)
			return false
		}
		return true
	})
	if count != 720 {
		t.Fatalf("enumerated %d assignments, want 720", count)
	}
}

func TestWatermelonCompletenessAllIDs(t *testing.T) {
	s := Watermelon()
	g := graph.MustWatermelon([]int{2, 2}) // C4 as a 2-path watermelon
	pt := graph.DefaultPorts(g)
	graph.EnumIDs(4, 5, func(ids graph.IDs) bool {
		inst := core.Instance{G: g, Prt: pt, IDs: ids, NBound: 5}
		if _, err := core.CheckCompleteness(s, inst); err != nil {
			t.Errorf("ids %v: %v", ids, err)
			return false
		}
		return true
	})
}

func TestTrivialCompletenessAllIDs(t *testing.T) {
	// Anonymous schemes must not care; spot-check through the full Run
	// path anyway.
	s := Trivial(2)
	g := graph.MustCycle(4)
	pt := graph.DefaultPorts(g)
	graph.EnumIDs(4, 4, func(ids graph.IDs) bool {
		inst := core.Instance{G: g, Prt: pt, IDs: ids, NBound: 4}
		if _, err := core.CheckCompleteness(s, inst); err != nil {
			t.Errorf("ids %v: %v", ids, err)
			return false
		}
		return true
	})
}

// TestShatterOrderDependence documents that the shatter scheme is NOT
// order-invariant (its certificates mention identifier values), which is
// exactly why Theorem 1.5's order-invariant impossibility does not apply
// to it despite its strong soundness and hiding.
func TestShatterOrderDependence(t *testing.T) {
	s := Shatter()
	g := graph.Path(5)
	inst := core.NewInstance(g)
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	l := core.MustNewLabeled(inst, labels)
	// Same relative order, shifted values: the id-anchored certificates no
	// longer match and nodes reject.
	shifted := l
	shifted.IDs = graph.IDs{11, 12, 13, 14, 15}
	shifted.NBound = 15
	outs, err := core.Run(s.Decoder, shifted)
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for _, ok := range outs {
		if !ok {
			rejected = true
		}
	}
	if !rejected {
		t.Error("order-preserving identifier shift went unnoticed: the scheme would be order-invariant")
	}
}
