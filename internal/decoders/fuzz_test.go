package decoders_test

import (
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sanitize"
)

// fuzzDecide decodes a graph6 string into a host graph, derives a labeling
// from the fuzzed bytes (mostly alphabet certificates, occasionally raw
// garbage so label parsing is exercised too), and runs the scheme's decoder
// at every node under the determinism sanitizer. The decoder must neither
// panic on any input nor violate the purity contract; accept/reject is
// unconstrained because the labeling is adversarial.
func fuzzDecide(f *testing.F, s core.Scheme, alphabet []string) {
	for _, g := range []*graph.Graph{graph.Path(2), graph.Path(4), graph.MustCycle(6), graph.Star(4)} {
		g6, err := g.Graph6()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g6, []byte{0, 1, 2, 3})
	}
	f.Fuzz(func(t *testing.T, g6 string, labelBytes []byte) {
		g, err := graph.ParseGraph6(g6)
		if err != nil || g.N() == 0 || g.N() > 16 {
			t.Skip()
		}
		labels := make([]string, g.N())
		for v := range labels {
			var b byte
			if len(labelBytes) > 0 {
				b = labelBytes[v%len(labelBytes)]
			}
			if b >= 0xf0 {
				labels[v] = string(labelBytes) // raw garbage certificate
			} else {
				labels[v] = alphabet[int(b)%len(alphabet)]
			}
		}
		l, err := core.NewLabeled(core.NewAnonymousInstance(g), labels)
		if err != nil {
			t.Skip()
		}
		san := sanitize.Wrap(s.Decoder, sanitize.Config{
			Report: func(v *sanitize.Violation) { t.Error(v) },
		})
		if _, err := core.Run(san, l); err != nil {
			t.Fatalf("running %s decoder: %v", s.Name, err)
		}
	})
}

func FuzzDegreeOneDecide(f *testing.F) {
	fuzzDecide(f, decoders.DegreeOne(), decoders.DegOneAlphabet())
}

func FuzzEvenCycleDecide(f *testing.F) {
	fuzzDecide(f, decoders.EvenCycle(), decoders.EvenCycleAlphabet())
}

// fuzzDecideWithIDs is fuzzDecide for the non-anonymous schemes: instances
// carry sequential identifiers, and certificates are synthesized from the
// fuzzed bytes through the scheme's own label constructors (so the decoder
// sees well-formed-but-wrong certificates, not just noise) with raw garbage
// mixed in for the parsing paths.
func fuzzDecideWithIDs(f *testing.F, s core.Scheme, label func(b byte, nBound int) string) {
	// Seeds include the P8/P7 paths of the paper's shatter hiding pair and
	// a theta graph from the watermelon family.
	for _, g := range []*graph.Graph{graph.Path(8), graph.Path(7), graph.MustCycle(6), graph.MustWatermelon([]int{2, 4, 2})} {
		g6, err := g.Graph6()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g6, []byte{0, 1, 2, 3, 0x42, 0x99})
	}
	f.Fuzz(func(t *testing.T, g6 string, labelBytes []byte) {
		g, err := graph.ParseGraph6(g6)
		if err != nil || g.N() == 0 || g.N() > 16 {
			t.Skip()
		}
		inst := core.NewInstance(g)
		labels := make([]string, g.N())
		for v := range labels {
			var b byte
			if len(labelBytes) > 0 {
				b = labelBytes[v%len(labelBytes)]
			}
			if b >= 0xf0 {
				labels[v] = string(labelBytes) // raw garbage certificate
			} else {
				labels[v] = label(b, inst.NBound)
			}
		}
		l, err := core.NewLabeled(inst, labels)
		if err != nil {
			t.Skip()
		}
		san := sanitize.Wrap(s.Decoder, sanitize.Config{
			Report: func(v *sanitize.Violation) { t.Error(v) },
		})
		if _, err := core.Run(san, l); err != nil {
			t.Fatalf("running %s decoder: %v", s.Name, err)
		}
	})
}

func shatterLabelFromByte(b byte, nBound int) string {
	id := int(b>>4)%nBound + 1
	colors := []int{int(b) % 2, int(b>>1) % 2}
	switch b % 4 {
	case 0:
		return decoders.ShatterPointLabel(id, colors)
	case 1:
		return decoders.ShatterPointLabelLiteral(id)
	case 2:
		return decoders.ShatterNeighborLabel(id, colors)
	default:
		return decoders.ShatterCompLabel(id, int(b>>2)%3+1, int(b)%2)
	}
}

func watermelonLabelFromByte(b byte, nBound int) string {
	id1 := int(b)%nBound + 1
	id2 := int(b>>3)%nBound + 1
	if b%2 == 0 {
		return decoders.WatermelonEndpointLabel(id1, id2)
	}
	return decoders.WatermelonPathLabel(id1, id2, int(b>>2)%4+1, int(b)%2, int(b>>1)%2, int(b>>2)%2, int(b>>3)%2)
}

func FuzzShatterDecide(f *testing.F) {
	fuzzDecideWithIDs(f, decoders.Shatter(), shatterLabelFromByte)
}

func FuzzWatermelonDecide(f *testing.F) {
	fuzzDecideWithIDs(f, decoders.Watermelon(), watermelonLabelFromByte)
}

// TestHidingPairsSanitized runs the sanitizer-wrapped decoders over the
// paper's hiding instances themselves — the certificates the fuzzers are
// seeded around — so a determinism violation on the canonical inputs fails
// fast instead of depending on fuzzer luck.
func TestHidingPairsSanitized(t *testing.T) {
	shatterL1, shatterL2 := decoders.ShatterHidingPair()
	melonFam, err := decoders.WatermelonHidingFamily()
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		s     core.Scheme
		pairs []core.Labeled
	}{
		{decoders.Shatter(), []core.Labeled{shatterL1, shatterL2}},
		{decoders.ShatterLiteral(), []core.Labeled{shatterL1, shatterL2}},
		{decoders.Watermelon(), melonFam},
	}
	for _, r := range runs {
		san := sanitize.Wrap(r.s.Decoder, sanitize.Config{
			Report: func(v *sanitize.Violation) { t.Errorf("%s: %v", r.s.Name, v) },
		})
		for _, l := range r.pairs {
			if _, err := core.Run(san, l); err != nil {
				t.Fatalf("%s on %v: %v", r.s.Name, l.G, err)
			}
		}
	}
}
