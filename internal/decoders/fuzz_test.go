package decoders_test

import (
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sanitize"
)

// fuzzDecide decodes a graph6 string into a host graph, derives a labeling
// from the fuzzed bytes (mostly alphabet certificates, occasionally raw
// garbage so label parsing is exercised too), and runs the scheme's decoder
// at every node under the determinism sanitizer. The decoder must neither
// panic on any input nor violate the purity contract; accept/reject is
// unconstrained because the labeling is adversarial.
func fuzzDecide(f *testing.F, s core.Scheme, alphabet []string) {
	for _, g := range []*graph.Graph{graph.Path(2), graph.Path(4), graph.MustCycle(6), graph.Star(4)} {
		g6, err := g.Graph6()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g6, []byte{0, 1, 2, 3})
	}
	f.Fuzz(func(t *testing.T, g6 string, labelBytes []byte) {
		g, err := graph.ParseGraph6(g6)
		if err != nil || g.N() == 0 || g.N() > 16 {
			t.Skip()
		}
		labels := make([]string, g.N())
		for v := range labels {
			var b byte
			if len(labelBytes) > 0 {
				b = labelBytes[v%len(labelBytes)]
			}
			if b >= 0xf0 {
				labels[v] = string(labelBytes) // raw garbage certificate
			} else {
				labels[v] = alphabet[int(b)%len(alphabet)]
			}
		}
		l, err := core.NewLabeled(core.NewAnonymousInstance(g), labels)
		if err != nil {
			t.Skip()
		}
		san := sanitize.Wrap(s.Decoder, sanitize.Config{
			Report: func(v *sanitize.Violation) { t.Error(v) },
		})
		if _, err := core.Run(san, l); err != nil {
			t.Fatalf("running %s decoder: %v", s.Name, err)
		}
	})
}

func FuzzDegreeOneDecide(f *testing.F) {
	fuzzDecide(f, decoders.DegreeOne(), decoders.DegOneAlphabet())
}

func FuzzEvenCycleDecide(f *testing.F) {
	fuzzDecide(f, decoders.EvenCycle(), decoders.EvenCycleAlphabet())
}
