package decoders

import (
	"math/rand"
	"strconv"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestTrivialCompleteness(t *testing.T) {
	s := Trivial(2)
	for _, g := range []*graph.Graph{
		graph.Path(5), graph.MustCycle(6), graph.Grid(3, 4),
		graph.CompleteBipartite(2, 3), graph.Star(5),
	} {
		if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g)); err != nil {
			t.Errorf("completeness on %v: %v", g, err)
		}
	}
}

func TestTrivialThreeColoring(t *testing.T) {
	s := Trivial(3)
	for _, g := range []*graph.Graph{graph.MustCycle(5), graph.Petersen()} {
		if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g)); err != nil {
			t.Errorf("3-col completeness on %v: %v", g, err)
		}
	}
	if _, err := s.Prover.Certify(core.NewAnonymousInstance(graph.Complete(4))); err == nil {
		t.Error("prover 3-colored K4")
	}
}

func TestTrivialStrongSoundnessExhaustive(t *testing.T) {
	s := Trivial(2)
	alphabet := []string{"0", "1", "2", "junk"}
	for _, g := range []*graph.Graph{graph.MustCycle(3), graph.MustCycle(5), graph.Complete(4)} {
		inst := core.NewAnonymousInstance(g)
		if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, alphabet); err != nil {
			t.Errorf("strong soundness on %v: %v", g, err)
		}
	}
}

func TestTrivialNotHiding(t *testing.T) {
	// Exhaustive slice of V(D, 4) over connected bipartite graphs: the
	// revealing scheme's neighborhood graph must be 2-colorable, i.e. by
	// Lemma 3.2 the scheme is NOT hiding, and the extraction decoder exists.
	s := Trivial(2)
	var insts []core.Instance
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if g.IsBipartite() {
				gc := g.Clone()
				graph.EnumPorts(gc, func(pt *graph.Ports) bool {
					insts = append(insts, core.Instance{G: gc, Prt: pt, NBound: 4})
					return true
				})
			}
			return true
		})
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings([]string{"0", "1"}, insts...))
	if err != nil {
		t.Fatal(err)
	}
	if ng.Size() == 0 {
		t.Fatal("no accepting views")
	}
	if ng.Hiding() {
		t.Fatal("trivial scheme reported hiding on exhaustive slice")
	}
	ex, err := nbhd.NewExtractor(ng, 2, true)
	if err != nil {
		t.Fatalf("extractor: %v", err)
	}
	// Extract from a fresh certified star (its views appear in the slice).
	target := core.Instance{G: graph.Star(4), Prt: graph.DefaultPorts(graph.Star(4)), NBound: 4}
	labels, err := s.Prover.Certify(target)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := ex.ExtractWitness(core.MustNewLabeled(target, labels), 1)
	if err != nil {
		t.Fatalf("ExtractWitness: %v", err)
	}
	if !target.G.IsProperColoring(witness) {
		t.Errorf("extracted witness %v not proper", witness)
	}
}

func TestTrivialCertBits(t *testing.T) {
	tests := []struct {
		k, want int
	}{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 4}, {17, 5},
	}
	for _, tt := range tests {
		s := Trivial(tt.k)
		if got := s.LabelBits("0"); got != tt.want {
			t.Errorf("Trivial(%d) bits = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestTrivialFuzzStrongSoundness(t *testing.T) {
	s := Trivial(3)
	rng := rand.New(rand.NewSource(7))
	gen := func(_ int, rng *rand.Rand) string {
		if rng.Intn(10) == 0 {
			return "x"
		}
		return strconv.Itoa(rng.Intn(4))
	}
	for _, g := range []*graph.Graph{graph.Petersen(), graph.Complete(5)} {
		inst := core.NewAnonymousInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 300, rng, gen); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

func TestTrivialAnonymous(t *testing.T) {
	s := Trivial(2)
	if !s.Decoder.Anonymous() {
		t.Error("trivial decoder should be anonymous")
	}
	if s.Decoder.Rounds() != 1 {
		t.Error("trivial decoder should be one-round")
	}
}
