package decoders

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// DegreeOneK generalizes the Lemma 4.1 scheme from 2-coloring to
// k-coloring, the direction Section 1.3 of the paper sketches ("some of
// our upper bound techniques are also useful in the general case"): on
// graphs with minimum degree one, reveal a proper k-coloring everywhere
// except at one pendant node (⊥) and its unique neighbor (⊤), and have ⊤
// verify that its colored neighbors leave a color free.
//
// The scheme is anonymous, one-round, complete, and STRONGLY sound for
// k-col: in the accepting-induced subgraph the colored core is properly
// colored, an accepting ⊤ sees at most k-1 distinct neighbor colors (so a
// color remains for it), ⊤ nodes are never adjacent, and each ⊥ is a
// pendant of its ⊤ — so the subgraph is always k-colorable. Certificates
// take ceil(log(k+2)) bits.
//
// Whether the generalization is HIDING for k >= 3 is precisely the open
// direction the paper defers; the tests explore the neighborhood-graph
// slice and record the verdict without asserting it.
func DegreeOneK(k int) core.Scheme {
	return core.Scheme{
		Name:    fmt.Sprintf("degree-one-%d-col", k),
		Decoder: &degOneKDecoder{k: k},
		Prover:  &degOneKProver{k: k},
		Promise: core.Promise{
			Lang: core.KCol(k),
			InClass: func(g *graph.Graph) bool {
				return g.N() >= 2 && g.MinDegree() == 1 && g.IsKColorable(k)
			},
		},
		CertBits: func(string) int { return bitsFor(k + 2) },
	}
}

// DegOneKLabel builds the certificate strings of DegreeOneK: pass
// color = -1 for ⊥ and color = -2 for ⊤.
func DegOneKLabel(k, color int) string {
	switch color {
	case -1:
		return fmt.Sprintf("K%d:B", k)
	case -2:
		return fmt.Sprintf("K%d:T", k)
	default:
		return fmt.Sprintf("K%d:%d", k, color)
	}
}

// DegOneKAlphabet lists every certificate symbol of DegreeOneK(k).
func DegOneKAlphabet(k int) []string {
	out := []string{DegOneKLabel(k, -1), DegOneKLabel(k, -2)}
	for c := 0; c < k; c++ {
		out = append(out, DegOneKLabel(k, c))
	}
	return out
}

type degOneKCert struct {
	kind  byte // 'B', 'T', or 'C'
	color int
}

func parseDegOneKCert(k int, label string) (degOneKCert, error) {
	prefix := fmt.Sprintf("K%d:", k)
	if !strings.HasPrefix(label, prefix) {
		return degOneKCert{}, fmt.Errorf("label (len=%d) is not a K%d certificate", len(label), k)
	}
	body := label[len(prefix):]
	switch body {
	case "B":
		return degOneKCert{kind: 'B'}, nil
	case "T":
		return degOneKCert{kind: 'T'}, nil
	}
	c, err := strconv.Atoi(body)
	if err != nil || c < 0 || c >= k {
		return degOneKCert{}, fmt.Errorf("label (len=%d) has no valid color", len(label))
	}
	return degOneKCert{kind: 'C', color: c}, nil
}

type degOneKDecoder struct {
	k int
}

var _ core.Decoder = (*degOneKDecoder)(nil)

func (d *degOneKDecoder) Rounds() int     { return 1 }
func (d *degOneKDecoder) Anonymous() bool { return true }

func (d *degOneKDecoder) Decide(mu *view.View) bool {
	center := view.Center
	own, err := parseDegOneKCert(d.k, mu.Labels[center])
	if err != nil {
		return false
	}
	nbs := mu.Adj[center]
	certs := make([]degOneKCert, len(nbs))
	for i, w := range nbs {
		c, err := parseDegOneKCert(d.k, mu.Labels[w])
		if err != nil {
			return false
		}
		certs[i] = c
	}
	switch own.kind {
	case 'B':
		return len(nbs) == 1 && certs[0].kind == 'T'
	case 'T':
		bottoms := 0
		seen := make(map[int]bool)
		for _, c := range certs {
			switch c.kind {
			case 'B':
				bottoms++
			case 'C':
				seen[c.color] = true
			default:
				return false
			}
		}
		// A free color must remain for ⊤ itself.
		return bottoms == 1 && len(seen) <= d.k-1
	default: // colored
		tops := 0
		for _, c := range certs {
			switch c.kind {
			case 'T':
				tops++
				if tops > 1 {
					return false
				}
			case 'C':
				if c.color == own.color {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
}

type degOneKProver struct {
	k int
}

var _ core.Prover = (*degOneKProver)(nil)

func (p *degOneKProver) Certify(inst core.Instance) ([]string, error) {
	g := inst.G
	coloring, ok := g.KColoring(p.k)
	if !ok {
		return nil, fmt.Errorf("graph is not %d-colorable", p.k)
	}
	hidden := -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			hidden = v
			break
		}
	}
	if hidden == -1 {
		return nil, errors.New("graph has no degree-1 node (outside class H1)")
	}
	top := g.Neighbors(hidden)[0]
	labels := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		switch v {
		case hidden:
			labels[v] = DegOneKLabel(p.k, -1)
		case top:
			labels[v] = DegOneKLabel(p.k, -2)
		default:
			labels[v] = DegOneKLabel(p.k, coloring[v])
		}
	}
	return labels, nil
}
