package decoders

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestUnionCompleteness(t *testing.T) {
	s := Union()
	// H1 members (δ = 1) and H2 members (even cycles) through one scheme.
	for _, g := range []*graph.Graph{
		graph.Path(5), graph.Star(4), graph.Spider([]int{1, 2, 3}),
		graph.MustCycle(4), graph.MustCycle(8), graph.MustCycle(12),
	} {
		if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g)); err != nil {
			t.Errorf("completeness on %v: %v", g, err)
		}
	}
}

func TestUnionProverRejects(t *testing.T) {
	s := Union()
	for _, g := range []*graph.Graph{
		graph.MustCycle(5),                // odd cycle
		graph.Grid(3, 3),                  // min degree 2, not a cycle
		graph.MustWatermelon([]int{2, 2}), // C4-like but check: it IS an even cycle
	} {
		_, err := s.Prover.Certify(core.NewAnonymousInstance(g))
		isEvenCycle := g.IsCycleGraph() && g.N()%2 == 0
		hasDegOne := g.N() >= 2 && g.MinDegree() == 1
		if (err == nil) != (isEvenCycle || hasDegOne) {
			t.Errorf("prover on %v: err = %v", g, err)
		}
	}
}

func TestUnionStrongSoundnessExhaustiveMixed(t *testing.T) {
	// The union decoder must stay strongly sound under MIXED labelings: both
	// sub-alphabets on one instance. Exhaustive over all connected graphs on
	// 3 nodes with a mixed alphabet.
	s := Union()
	alphabet := append(append([]string{}, DegOneAlphabet()...),
		EvenCycleLabel(1, 0, 1, 1), EvenCycleLabel(2, 1, 1, 0), "junk")
	graph.EnumConnectedGraphs(3, func(g *graph.Graph) bool {
		gc := g.Clone()
		graph.EnumPorts(gc, func(pt *graph.Ports) bool {
			inst := core.Instance{G: gc, Prt: pt, NBound: 3}
			if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, alphabet); err != nil {
				t.Errorf("strong soundness: %v", err)
				return false
			}
			return true
		})
		return true
	})
}

func TestUnionStrongSoundnessFuzzMixed(t *testing.T) {
	s := Union()
	rng := rand.New(rand.NewSource(23))
	cycleAlpha := EvenCycleAlphabet()
	gen := func(_ int, rng *rand.Rand) string {
		if rng.Intn(2) == 0 {
			return DegOneAlphabet()[rng.Intn(4)]
		}
		return cycleAlpha[rng.Intn(len(cycleAlpha))]
	}
	for _, g := range []*graph.Graph{
		graph.MustCycle(5), graph.MustCycle(7), graph.Petersen(),
		graph.MustWatermelon([]int{2, 3}), graph.Complete(4),
	} {
		inst := core.NewAnonymousInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 800, rng, gen); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

func TestUnionHomogeneousBoundary(t *testing.T) {
	// A DegreeOne-colored node with an EvenCycle-labeled neighbor rejects,
	// and vice versa — the property making mixed accepting components
	// impossible.
	s := Union()
	g := graph.Path(3)
	inst := core.NewAnonymousInstance(g)
	labels := []string{DegOneColor0, EvenCycleLabel(1, 0, 1, 1), DegOneColor1}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, labels))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] {
		t.Error("colored node accepted an even-cycle-labeled neighbor")
	}
	if outs[1] {
		t.Error("even-cycle node accepted degree-one-labeled neighbors")
	}
}

func TestUnionHiding(t *testing.T) {
	// The union scheme inherits hiding from both parts: its V(D, n) slice
	// over the degree-one family alone already contains an odd cycle.
	s := Union()
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(DegOneAlphabet(), DegOneFamily(4)...))
	if err != nil {
		t.Fatal(err)
	}
	if ng.OddCycle() == nil {
		t.Error("union scheme lost the degree-one odd cycle")
	}
	family, err := EvenCycleFamily(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	ng2, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(family...))
	if err != nil {
		t.Fatal(err)
	}
	if ng2.OddCycle() == nil {
		t.Error("union scheme lost the even-cycle odd cycle")
	}
}

func TestUnionAnonymousConstantSize(t *testing.T) {
	s := Union()
	if !s.Decoder.Anonymous() || s.Decoder.Rounds() != 1 {
		t.Error("union must be anonymous and one-round")
	}
	if got := s.LabelBits("anything"); got != 6 {
		t.Errorf("LabelBits = %d, want constant 6", got)
	}
}
