package decoders

import (
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Union returns the combined scheme of Theorem 1.1: a single anonymous,
// strong, and hiding one-round LCP for 2-coloring on H1 ∪ H2, where H1 is
// the class of graphs with minimum degree 1 and H2 the class of even
// cycles. Certificates stay constant-size.
//
// The two sub-schemes' label formats are disjoint, so the union decoder
// dispatches on the format. Mixing is safe for strong soundness: an
// accepting DegreeOne-labeled node tolerates only DegreeOne-formatted
// neighbors and an accepting EvenCycle-labeled node demands EvenCycle
// certificates from both neighbors, so every path inside the accepting
// subgraph is homogeneous and each sub-scheme's parity argument applies
// unchanged to each accepting component.
func Union() core.Scheme {
	degOne := DegreeOne()
	cycle := EvenCycle()
	return core.Scheme{
		Name:    "union-theorem-1.1",
		Decoder: &unionDecoder{degOne: degOne.Decoder, cycle: cycle.Decoder},
		Prover:  &unionProver{degOne: degOne.Prover, cycle: cycle.Prover},
		Promise: core.Promise{
			Lang: core.TwoCol(),
			InClass: func(g *graph.Graph) bool {
				return degOne.Promise.InClass(g) || cycle.Promise.InClass(g)
			},
		},
		// Max of the two sub-encodings (2 and 6 bits).
		CertBits: func(string) int { return 6 },
	}
}

type unionDecoder struct {
	degOne core.Decoder
	cycle  core.Decoder
}

var _ core.Decoder = (*unionDecoder)(nil)

func (d *unionDecoder) Rounds() int     { return 1 }
func (d *unionDecoder) Anonymous() bool { return true }

func (d *unionDecoder) Decide(mu *view.View) bool {
	if isDegOneLabel(mu.Labels[view.Center]) {
		return d.degOne.Decide(mu)
	}
	if _, err := parseCycleCert(mu.Labels[view.Center]); err == nil {
		return d.cycle.Decide(mu)
	}
	return false
}

func isDegOneLabel(label string) bool {
	switch label {
	case DegOneColor0, DegOneColor1, DegOneBottom, DegOneTop:
		return true
	}
	return false
}

type unionProver struct {
	degOne core.Prover
	cycle  core.Prover
}

var _ core.Prover = (*unionProver)(nil)

func (p *unionProver) Certify(inst core.Instance) ([]string, error) {
	if inst.G.N() >= 2 && inst.G.MinDegree() == 1 {
		return p.degOne.Certify(inst)
	}
	if inst.G.IsCycleGraph() && inst.G.N()%2 == 0 {
		return p.cycle.Certify(inst)
	}
	return nil, fmt.Errorf("instance outside H1 ∪ H2: %v", inst.G)
}
