package decoders

import (
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// EvenCycle returns the anonymous, strong, and hiding one-round LCP of
// Lemma 4.2 for 2-coloring on the class H2 of even cycles. Instead of a
// node coloring, the certificate reveals a proper 2-EDGE-coloring, which on
// a cycle certifies 2-colorability while hiding the node coloring at every
// node. Certificates are constant-size (6 bits).
//
// The certificate of a degree-2 node u is EvenCycleLabel(q1, c1, q2, c2):
// for each own port j ∈ {1, 2}, the far endpoint's port number qj of the
// edge behind port j together with that edge's color cj.
func EvenCycle() core.Scheme {
	return core.Scheme{
		Name:    "even-cycle",
		Decoder: &evenCycleDecoder{},
		Prover:  &evenCycleProver{},
		Promise: core.Promise{
			Lang: core.TwoCol(),
			InClass: func(g *graph.Graph) bool {
				return g.IsCycleGraph() && g.N()%2 == 0
			},
		},
		CertBits: func(string) int { return 6 },
	}
}

// EvenCycleLabel encodes a certificate of the EvenCycle scheme. qj is the
// far-end port of the edge behind own port j; cj is its color.
func EvenCycleLabel(q1, c1, q2, c2 int) string {
	return fmt.Sprintf("C:%d,%d;%d,%d", q1, c1, q2, c2)
}

// EvenCycleAlphabet returns every well-formed EvenCycle certificate plus one
// malformed symbol, for adversarial labeling enumeration.
func EvenCycleAlphabet() []string {
	var out []string
	for _, q1 := range []int{1, 2} {
		for _, c1 := range []int{0, 1} {
			for _, q2 := range []int{1, 2} {
				for _, c2 := range []int{0, 1} {
					out = append(out, EvenCycleLabel(q1, c1, q2, c2))
				}
			}
		}
	}
	return append(out, "garbage")
}

type cycleCert struct {
	farPort [3]int // farPort[j] for own port j in {1,2}
	color   [3]int // color[j] for own port j in {1,2}
}

var (
	errCycleMalformed = fmt.Errorf("malformed even-cycle certificate")
	errCycleFarPort   = fmt.Errorf("far port out of range (want 1 or 2)")
	errCycleColor     = fmt.Errorf("color out of range (want 0 or 1)")
)

func parseCycleCert(label string) (cycleCert, error) {
	var c cycleCert
	if len(label) < 2 || label[0] != 'C' || label[1] != ':' {
		// Sscanf matches the "C:" literal without space skipping, so these
		// labels are rejects on the slow path too — return a shared error
		// instead of paying the scan-state and Errorf allocations (decoders
		// see arbitrary adversarial labels, so this is a hot reject).
		return c, errCycleMalformed
	}
	q1, c1, q2, c2, ok := parseCycleCertFast(label)
	if !ok {
		var err error
		if q1, c1, q2, c2, err = parseCycleCertSlow(label); err != nil {
			return c, fmt.Errorf("malformed even-cycle certificate (len=%d): %w", len(label), err)
		}
	}
	if (q1 != 1 && q1 != 2) || (q2 != 1 && q2 != 2) {
		return c, errCycleFarPort
	}
	if (c1 != 0 && c1 != 1) || (c2 != 0 && c2 != 1) {
		return c, errCycleColor
	}
	c.farPort[1], c.color[1] = q1, c1
	c.farPort[2], c.color[2] = q2, c2
	return c, nil
}

// parseCycleCertSlow is the fmt.Sscanf fallback for labels outside the
// canonical spelling (signs, spaces, overlong digit runs); it keeps the
// historical accept/reject behavior on adversarial labels bit-identical. It
// lives in its own function so the Sscanf vararg escapes are confined to
// the rare slow calls — inlined at the fast-path call site they would heap-
// allocate all four result ints on every parse.
func parseCycleCertSlow(label string) (q1, c1, q2, c2 int, err error) {
	_, err = fmt.Sscanf(label, "C:%d,%d;%d,%d", &q1, &c1, &q2, &c2)
	return
}

// parseCycleCertFast parses the canonical digit-only spelling
// "C:<d>,<d>;<d>,<d>" — exactly what EvenCycleLabel emits, with trailing
// bytes after the fourth number ignored, matching Sscanf. It reports !ok
// for every other shape (signs, spaces, empty or overlong digit runs),
// deferring those to the fmt.Sscanf slow path so verdicts never diverge
// from the historical parser.
func parseCycleCertFast(label string) (q1, c1, q2, c2 int, ok bool) {
	if len(label) < 2 || label[0] != 'C' || label[1] != ':' {
		return 0, 0, 0, 0, false
	}
	i := 2
	if q1, i, ok = scanCertUint(label, i); !ok {
		return 0, 0, 0, 0, false
	}
	if i >= len(label) || label[i] != ',' {
		return 0, 0, 0, 0, false
	}
	if c1, i, ok = scanCertUint(label, i+1); !ok {
		return 0, 0, 0, 0, false
	}
	if i >= len(label) || label[i] != ';' {
		return 0, 0, 0, 0, false
	}
	if q2, i, ok = scanCertUint(label, i+1); !ok {
		return 0, 0, 0, 0, false
	}
	if i >= len(label) || label[i] != ',' {
		return 0, 0, 0, 0, false
	}
	if c2, _, ok = scanCertUint(label, i+1); !ok {
		return 0, 0, 0, 0, false
	}
	return q1, c1, q2, c2, true
}

// scanCertUint scans a nonempty run of at most 9 decimal digits starting at
// i (longer runs could overflow and are deferred to the slow path).
func scanCertUint(s string, i int) (val, next int, ok bool) {
	start := i
	v := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		if i-start >= 9 {
			return 0, 0, false
		}
		v = v*10 + int(s[i]-'0')
		i++
	}
	if i == start {
		return 0, 0, false
	}
	return v, i, true
}

type evenCycleDecoder struct{}

var _ core.Decoder = (*evenCycleDecoder)(nil)

func (d *evenCycleDecoder) Rounds() int     { return 1 }
func (d *evenCycleDecoder) Anonymous() bool { return true }

// Decide implements Lemma 4.2's decoder: the node must have degree 2, its
// certificate must be well-formed with two differently colored incident
// edges, the claimed far-end ports must match the actual port assignment,
// and each neighbor's certificate must confirm the shared edge with the
// same color.
func (d *evenCycleDecoder) Decide(mu *view.View) bool {
	center := view.Center
	if mu.Degree(center) != 2 {
		return false
	}
	own, err := parseCycleCert(mu.Labels[center])
	if err != nil {
		return false
	}
	if own.color[1] == own.color[2] {
		return false
	}
	for _, w := range mu.Adj[center] {
		j, ok := mu.Port(center, w) // own port of edge {center, w}
		if !ok || (j != 1 && j != 2) {
			return false
		}
		far, ok := mu.Port(w, center) // actual far-end port
		if !ok {
			return false
		}
		if own.farPort[j] != far {
			return false
		}
		nb, err := parseCycleCert(mu.Labels[w])
		if err != nil {
			return false
		}
		// The neighbor's entry for its own port `far` must point back
		// through our port j with the same color.
		if nb.farPort[far] != j || nb.color[far] != own.color[j] {
			return false
		}
	}
	return true
}

type evenCycleProver struct{}

var _ core.Prover = (*evenCycleProver)(nil)

// Certify walks the cycle once, alternately 2-edge-colors it, and encodes
// each node's two incident edge colors together with the far-end ports.
func (p *evenCycleProver) Certify(inst core.Instance) ([]string, error) {
	g := inst.G
	if !g.IsCycleGraph() {
		return nil, fmt.Errorf("graph is not a cycle: %v", g)
	}
	if g.N()%2 != 0 {
		return nil, fmt.Errorf("cycle length %d is odd (not 2-colorable)", g.N())
	}
	// Walk the cycle collecting edges in traversal order.
	edgeColor := make(map[[2]int]int) // normalized edge -> color
	prev, cur := -1, 0
	for i := 0; i < g.N(); i++ {
		next := -1
		for _, w := range g.Neighbors(cur) {
			if w != prev {
				next = w
				break
			}
		}
		if next == -1 { // n == 2 cannot happen in a simple cycle
			return nil, fmt.Errorf("cycle walk stuck at node %d", cur)
		}
		edgeColor[normEdge(cur, next)] = i % 2
		prev, cur = cur, next
	}
	labels := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		var q, c [3]int
		for _, w := range g.Neighbors(v) {
			j := inst.Prt.MustPort(v, w)
			q[j] = inst.Prt.MustPort(w, v)
			c[j] = edgeColor[normEdge(v, w)]
		}
		labels[v] = EvenCycleLabel(q[1], c[1], q[2], c[2])
	}
	return labels, nil
}

func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}
