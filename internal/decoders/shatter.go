package decoders

import (
	"fmt"
	"strconv"
	"strings"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Shatter returns the non-anonymous, strong, and hiding one-round LCP of
// Theorem 1.3 for 2-coloring on the class of graphs admitting a shatter
// point: a node v such that G - N[v] is disconnected. The certificate hides
// the coloring on N[v]; deep component nodes reveal a per-component
// coloring whose global orientation only the shatter point's closed
// neighborhood knows. Certificates take O(min{Δ², n} + log n) bits.
//
// DEVIATION FROM THE PAPER'S LITERAL DECODER: the conditions written in the
// brief announcement's proof of Theorem 1.3 are not strongly sound — when
// the type-0 (shatter point) node itself rejects, two accepting type-1
// nodes may carry different color vectors, and the induced accepting
// subgraph can contain an odd cycle (ShatterLiteral + the tests exhibit a
// concrete counterexample). This implementation patches the scheme
// minimally and in the spirit of the proof:
//
//  1. the type-0 certificate carries the colors vector (content (id, colors)
//     instead of just id);
//  2. a type-1 node additionally checks that its unique type-0 neighbor's
//     REAL identifier equals the announced shatter identifier and that the
//     type-0 neighbor's vector equals its own.
//
// Every accepting type-1 node is then adjacent to the one node carrying the
// announced identifier, whose single certificate fixes one common vector,
// and the paper's parity argument goes through. Completeness, the
// O(min{Δ², n} + log n) size bound, and the paper's P8/P7 hiding pair are
// all unaffected (the shatter point's certificate is invisible at distance
// two or more).
func Shatter() core.Scheme {
	return shatterScheme(false)
}

// ShatterLiteral returns the decoder with exactly the conditions written in
// the paper's proof of Theorem 1.3 (type-0 content is the bare identifier;
// no cross-check of the type-0 neighbor's real identifier or vector). It is
// complete and hiding but NOT strongly sound; it exists so the gap is a
// reproducible artifact.
func ShatterLiteral() core.Scheme {
	return shatterScheme(true)
}

func shatterScheme(literal bool) core.Scheme {
	name := "shatter"
	if literal {
		name = "shatter-literal"
	}
	return core.Scheme{
		Name:    name,
		Decoder: &shatterDecoder{literal: literal},
		Prover:  &shatterProver{literal: literal},
		Promise: core.Promise{
			Lang: core.TwoCol(),
			InClass: func(g *graph.Graph) bool {
				return g.IsBipartite() && graph.HasShatterPoint(g) >= 0
			},
		},
		CertBits: shatterCertBits,
	}
}

// ShatterPointLabel encodes a type-0 certificate of the patched scheme: the
// shatter point's identifier plus the per-component facing colors.
func ShatterPointLabel(id int, colors []int) string {
	return fmt.Sprintf("S0:%d:%s", id, colorBits(colors))
}

// ShatterPointLabelLiteral encodes a type-0 certificate of the literal
// paper scheme: the identifier only.
func ShatterPointLabelLiteral(id int) string { return fmt.Sprintf("S0:%d:", id) }

// ShatterNeighborLabel encodes a type-1 certificate: the shatter point's
// identifier and the vector whose i-th entry is the color facing N(v) in
// component i+1.
func ShatterNeighborLabel(id int, colors []int) string {
	return fmt.Sprintf("S1:%d:%s", id, colorBits(colors))
}

// ShatterCompLabel encodes a type-2 certificate: the shatter point's
// identifier, the node's 1-based component number, and its color.
func ShatterCompLabel(id, comp, x int) string {
	return fmt.Sprintf("S2:%d:%d:%d", id, comp, x)
}

func colorBits(colors []int) string {
	var sb strings.Builder
	for _, c := range colors {
		sb.WriteByte(byte('0' + c))
	}
	return sb.String()
}

type shatterCert struct {
	typ    int
	id     int
	colors []int // types 0 (patched) and 1
	comp   int   // type 2
	x      int   // type 2
}

func parseShatterCert(label string) (shatterCert, error) {
	var c shatterCert
	parts := strings.Split(label, ":")
	switch parts[0] {
	case "S0", "S1":
		if len(parts) != 3 {
			return c, fmt.Errorf("type S0/S1 wants 2 fields, got %d", len(parts)-1)
		}
		id, err := strconv.Atoi(parts[1])
		if err != nil || id < 1 {
			return c, fmt.Errorf("bad identifier (len=%d)", len(parts[1]))
		}
		colors := make([]int, len(parts[2]))
		for i, ch := range parts[2] {
			switch ch {
			case '0':
				colors[i] = 0
			case '1':
				colors[i] = 1
			default:
				return c, fmt.Errorf("bad color vector (len=%d)", len(parts[2]))
			}
		}
		typ := 0
		if parts[0] == "S1" {
			typ = 1
		}
		return shatterCert{typ: typ, id: id, colors: colors}, nil
	case "S2":
		if len(parts) != 4 {
			return c, fmt.Errorf("type 2 wants 3 fields, got %d", len(parts)-1)
		}
		vals, err := parseInts(strings.Join(parts[1:], ":"), ":")
		if err != nil {
			return c, err
		}
		if vals[0] < 1 || vals[1] < 1 || (vals[2] != 0 && vals[2] != 1) {
			return c, fmt.Errorf("fields out of range (len=%d)", len(label))
		}
		return shatterCert{typ: 2, id: vals[0], comp: vals[1], x: vals[2]}, nil
	default:
		return c, fmt.Errorf("unknown type (len=%d)", len(parts[0]))
	}
}

func shatterCertBits(label string) int {
	c, err := parseShatterCert(label)
	if err != nil {
		return 8 * len(label)
	}
	switch c.typ {
	case 0, 1:
		return 2 + bitsForValue(c.id) + len(c.colors)
	default:
		return 2 + bitsForValue(c.id) + bitsForValue(c.comp) + 1
	}
}

type shatterDecoder struct {
	literal bool
}

var _ core.Decoder = (*shatterDecoder)(nil)

func (d *shatterDecoder) Rounds() int     { return 1 }
func (d *shatterDecoder) Anonymous() bool { return false }

// Decide implements the decoder of Theorem 1.3 (conditions 1, 2(a)-(c),
// 3(a)-(c) of its proof), plus — unless literal — the vector-anchoring
// checks documented on Shatter.
func (d *shatterDecoder) Decide(mu *view.View) bool {
	center := view.Center
	own, err := parseShatterCert(mu.Labels[center])
	if err != nil {
		return false
	}
	nbs := mu.Adj[center]
	certs := make([]shatterCert, len(nbs))
	for i, w := range nbs {
		c, err := parseShatterCert(mu.Labels[w])
		if err != nil {
			return false
		}
		certs[i] = c
	}
	switch own.typ {
	case 0:
		// Condition 1: own id field matches own identifier; all neighbors
		// are type 1 with identical content and id field = id(u).
		if own.id != mu.IDs[center] {
			return false
		}
		for i, w := range nbs {
			if certs[i].typ != 1 || certs[i].id != own.id {
				return false
			}
			if mu.Labels[w] != mu.Labels[nbs[0]] {
				return false
			}
		}
		return true
	case 1:
		// Condition 2(a): no type-1 neighbor.
		// Condition 2(b): a unique type-0 neighbor with matching id field —
		// patched: the neighbor's REAL identifier and its vector must match
		// too.
		// Condition 2(c): every type-2 neighbor matches id and its color
		// equals colors[comp].
		shatters := 0
		for i, w := range nbs {
			switch certs[i].typ {
			case 1:
				return false
			case 0:
				shatters++
				if certs[i].id != own.id {
					return false
				}
				if !d.literal {
					if mu.IDs[w] != own.id {
						return false
					}
					if !equalInts(certs[i].colors, own.colors) {
						return false
					}
				}
			case 2:
				if certs[i].id != own.id {
					return false
				}
				if certs[i].comp > len(own.colors) {
					return false
				}
				if own.colors[certs[i].comp-1] != certs[i].x {
					return false
				}
			}
		}
		return shatters == 1
	default: // type 2
		// Condition 3(a): no type-0 neighbor.
		// Condition 3(b): type-1 neighbors match id and colors[comp] = x.
		// Condition 3(c): type-2 neighbors match id and comp, with the
		// opposite color.
		for i := range nbs {
			switch certs[i].typ {
			case 0:
				return false
			case 1:
				if certs[i].id != own.id {
					return false
				}
				if own.comp > len(certs[i].colors) {
					return false
				}
				if certs[i].colors[own.comp-1] != own.x {
					return false
				}
			case 2:
				if certs[i].id != own.id || certs[i].comp != own.comp || certs[i].x == own.x {
					return false
				}
			}
		}
		return true
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type shatterProver struct {
	literal bool
}

var _ core.Prover = (*shatterProver)(nil)

// Certify picks the smallest shatter point v, 2-colors each component of
// G - N[v] independently, and publishes per component the color facing
// N(v), as in the completeness part of Theorem 1.3. The instance must carry
// identifiers (the scheme is non-anonymous).
func (p *shatterProver) Certify(inst core.Instance) ([]string, error) {
	g := inst.G
	if inst.IDs == nil {
		return nil, fmt.Errorf("shatter scheme requires identifiers")
	}
	if !g.IsBipartite() {
		return nil, fmt.Errorf("graph is not bipartite")
	}
	v := graph.HasShatterPoint(g)
	if v < 0 {
		return nil, fmt.Errorf("graph has no shatter point: %v", g)
	}
	rest, orig := g.DeleteClosedNeighborhood(v)
	comps := rest.Components()

	compOf := make(map[int]int)  // host node -> 1-based component number
	colorOf := make(map[int]int) // host node -> color within its component
	colors := make([]int, len(comps))
	for ci, comp := range comps {
		sub, subOrig := rest.InducedSubgraph(comp)
		coloring, ok := sub.TwoColoring()
		if !ok {
			return nil, fmt.Errorf("component %d is not bipartite", ci+1)
		}
		facing := -1
		for si, ri := range subOrig {
			host := orig[ri]
			compOf[host] = ci + 1
			colorOf[host] = coloring[si]
			// Does this node face N(v)?
			for _, u := range g.Neighbors(v) {
				if g.HasEdge(host, u) {
					if facing != -1 && facing != coloring[si] {
						return nil, fmt.Errorf("component %d faces N(v) with both colors (Lemma 7.1(3) violated)", ci+1)
					}
					facing = coloring[si]
				}
			}
		}
		if facing == -1 {
			facing = 0 // component not adjacent to N(v); arbitrary
		}
		colors[ci] = facing
	}

	id := inst.IDs[v]
	labels := make([]string, g.N())
	if p.literal {
		labels[v] = ShatterPointLabelLiteral(id)
	} else {
		labels[v] = ShatterPointLabel(id, colors)
	}
	for _, u := range g.Neighbors(v) {
		labels[u] = ShatterNeighborLabel(id, colors)
	}
	for host, ci := range compOf {
		labels[host] = ShatterCompLabel(id, ci, colorOf[host])
	}
	return labels, nil
}
