package decoders

import (
	"fmt"
	"strings"

	"hidinglcp/internal/core"
)

// SchemeEntry is one named scheme in the registry: the constructor plus the
// certificate alphabet its exhaustive strong-soundness sweeps range over.
// Alphabet is nil for schemes whose certificates embed identifiers
// (shatter, watermelon) — they have no finite instance-independent alphabet.
type SchemeEntry struct {
	// Name is the identifier the CLIs accept (-scheme).
	Name string
	// New constructs the scheme.
	New func() core.Scheme
	// Alphabet returns the sweep alphabet, including a garbage symbol
	// where the well-formed alphabet alone would make the search vacuous.
	Alphabet func() []string
}

// Schemes is the one scheme table behind every CLI and registry: each entry
// names a scheme of the paper and how to build it. The engine layer
// (internal/engine) wraps this into its Registry; nothing else should
// duplicate the name → constructor mapping.
func Schemes() []SchemeEntry {
	return []SchemeEntry{
		{"trivial", func() core.Scheme { return Trivial(2) }, func() []string { return []string{"0", "1", "x"} }},
		{"trivial3", func() core.Scheme { return Trivial(3) }, func() []string { return []string{"0", "1", "2", "x"} }},
		{"degree-one", DegreeOne, DegOneAlphabet},
		{"even-cycle", EvenCycle, EvenCycleAlphabet},
		{"union", Union, func() []string { return append(DegOneAlphabet(), EvenCycleAlphabet()...) }},
		{"shatter", Shatter, nil},
		{"shatter-literal", ShatterLiteral, nil},
		{"watermelon", Watermelon, nil},
	}
}

// SchemeNames lists the identifiers accepted by SchemeByName, in registry
// order.
func SchemeNames() []string {
	entries := Schemes()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// SchemeByName resolves a scheme identifier to its core.Scheme.
func SchemeByName(name string) (core.Scheme, error) {
	for _, e := range Schemes() {
		if e.Name == name {
			return e.New(), nil
		}
	}
	return core.Scheme{}, fmt.Errorf("unknown scheme %q (want one of %s)", name, strings.Join(SchemeNames(), ", "))
}

// AlphabetFor returns the certificate alphabet used for exhaustive
// strong-soundness searches over a scheme's label space. Schemes whose
// certificates embed identifiers have no finite instance-independent
// alphabet and return an error.
func AlphabetFor(name string) ([]string, error) {
	for _, e := range Schemes() {
		if e.Name != name {
			continue
		}
		if e.Alphabet == nil {
			return nil, fmt.Errorf("scheme %q has identifier-dependent certificates; no finite alphabet to sweep", name)
		}
		return e.Alphabet(), nil
	}
	return nil, fmt.Errorf("unknown scheme %q (want one of %s)", name, strings.Join(SchemeNames(), ", "))
}
