package decoders

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestFindWatermelonStructure(t *testing.T) {
	tests := []struct {
		name      string
		g         *graph.Graph
		wantPaths int
		wantErr   bool
	}{
		{"theta", graph.MustWatermelon([]int{2, 2, 2}), 3, false},
		{"two uneven paths", graph.MustWatermelon([]int{2, 4}), 2, false},
		{"plain path", graph.Path(6), 1, false},
		{"even cycle", graph.MustCycle(8), 2, false},
		{"odd cycle", graph.MustCycle(7), 2, false}, // structurally fine, just not bipartite
		{"star", graph.Star(4), 0, true},
		{"grid", graph.Grid(3, 3), 0, true},
		{"single edge", graph.Path(2), 0, true},
		{"disconnected", graph.DisjointUnion(graph.Path(3), graph.Path(3)), 0, true},
		{"k4", graph.Complete(4), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v1, v2, paths, err := FindWatermelonStructure(tt.g)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(paths) != tt.wantPaths {
				t.Errorf("found %d paths, want %d", len(paths), tt.wantPaths)
			}
			for _, p := range paths {
				if p[0] != v1 || p[len(p)-1] != v2 {
					t.Errorf("path %v does not run v1..v2 (%d..%d)", p, v1, v2)
				}
				if len(p) < 3 {
					t.Errorf("path %v shorter than length 2", p)
				}
				for i := 0; i+1 < len(p); i++ {
					if !tt.g.HasEdge(p[i], p[i+1]) {
						t.Errorf("path %v uses non-edge", p)
					}
				}
			}
		})
	}
}

func TestWatermelonCompleteness(t *testing.T) {
	s := Watermelon()
	for _, paths := range [][]int{
		{2, 2}, {3, 3}, {2, 4}, {2, 2, 2}, {3, 5, 3}, {4, 2, 2, 4}, {5},
	} {
		g := graph.MustWatermelon(paths)
		if _, err := core.CheckCompleteness(s, core.NewInstance(g)); err != nil {
			t.Errorf("completeness on watermelon %v: %v", paths, err)
		}
	}
	// Cycles and plain paths are watermelons too.
	for _, g := range []*graph.Graph{graph.MustCycle(6), graph.MustCycle(8), graph.Path(7)} {
		if _, err := core.CheckCompleteness(s, core.NewInstance(g)); err != nil {
			t.Errorf("completeness on %v: %v", g, err)
		}
	}
}

func TestWatermelonCompletenessAllPortsTheta(t *testing.T) {
	s := Watermelon()
	g := graph.MustWatermelon([]int{2, 2, 2})
	graph.EnumPorts(g, func(pt *graph.Ports) bool {
		inst := core.Instance{G: g, Prt: pt, IDs: graph.SequentialIDs(g.N()), NBound: g.N()}
		if _, err := core.CheckCompleteness(s, inst); err != nil {
			t.Errorf("completeness under ports: %v", err)
			return false
		}
		return true
	})
}

func TestWatermelonProverRejects(t *testing.T) {
	s := Watermelon()
	if _, err := s.Prover.Certify(core.NewInstance(graph.MustWatermelon([]int{2, 3}))); err == nil {
		t.Error("prover certified a non-bipartite watermelon")
	}
	if _, err := s.Prover.Certify(core.NewInstance(graph.Grid(3, 3))); err == nil {
		t.Error("prover certified a grid")
	}
	if _, err := s.Prover.Certify(core.NewAnonymousInstance(graph.Path(5))); err == nil {
		t.Error("prover certified an anonymous instance")
	}
}

func melonFuzzGen(maxID int) func(int, *rand.Rand) string {
	return func(_ int, rng *rand.Rand) string {
		id1 := 1 + rng.Intn(maxID-1)
		id2 := id1 + 1 + rng.Intn(maxID-id1)
		switch rng.Intn(4) {
		case 0:
			return WatermelonEndpointLabel(id1, id2)
		case 1:
			return "nonsense"
		default:
			c1 := rng.Intn(2)
			return WatermelonPathLabel(id1, id2, 1+rng.Intn(3),
				1+rng.Intn(3), c1, 1+rng.Intn(3), 1-c1)
		}
	}
}

func TestWatermelonStrongSoundnessFuzz(t *testing.T) {
	s := Watermelon()
	rng := rand.New(rand.NewSource(19))
	for _, g := range []*graph.Graph{
		graph.MustCycle(5), graph.MustCycle(7), graph.Petersen(),
		graph.MustWatermelon([]int{2, 3}), graph.Complete(4), graph.Grid(3, 3),
	} {
		inst := core.NewInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 800, rng, melonFuzzGen(12)); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

// TestWatermelonOddWatermelonRejected drives the canonical adversarial
// case: a watermelon with paths of mismatched parity (an odd cycle through
// both endpoints). The "best effort" cheat 2-edge-colors each path from v1;
// the monochromaticity check at an endpoint must then fail.
func TestWatermelonOddWatermelonRejected(t *testing.T) {
	s := Watermelon()
	g := graph.MustWatermelon([]int{2, 3})
	inst := core.NewInstance(g)
	v1, v2, paths, err := FindWatermelonStructure(g)
	if err != nil {
		t.Fatal(err)
	}
	ids := inst.IDs
	id1, id2 := ids[v1], ids[v2]
	if id1 > id2 {
		id1, id2 = id2, id1
	}
	edgeColor := make(map[[2]int]int)
	for _, path := range paths {
		for i := 0; i+1 < len(path); i++ {
			edgeColor[normEdge(path[i], path[i+1])] = i % 2
		}
	}
	labels := make([]string, g.N())
	labels[v1] = WatermelonEndpointLabel(id1, id2)
	labels[v2] = WatermelonEndpointLabel(id1, id2)
	for pi, path := range paths {
		for _, u := range path[1 : len(path)-1] {
			var q, c [3]int
			for _, w := range g.Neighbors(u) {
				j := inst.Prt.MustPort(u, w)
				q[j] = inst.Prt.MustPort(w, u)
				c[j] = edgeColor[normEdge(u, w)]
			}
			labels[u] = WatermelonPathLabel(id1, id2, pi+1, q[1], c[1], q[2], c[2])
		}
	}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, labels))
	if err != nil {
		t.Fatal(err)
	}
	if outs[v2] {
		t.Error("endpoint v2 accepted paths of mismatched parity (non-monochromatic edges)")
	}
	if err := core.CheckStrongSoundness(s.Decoder, s.Promise.Lang, core.MustNewLabeled(inst, labels)); err != nil {
		t.Errorf("strong soundness: %v", err)
	}
}

// TestWatermelonHiding reproduces the hiding part of Theorem 1.4 with the
// mirror-symmetric port assignment (see WatermelonHidingPair): the views of
// u1 and of u4/u5 coincide across the two identifier assignments, closing
// an odd 7-cycle in V(D, 8).
func TestWatermelonHiding(t *testing.T) {
	s := Watermelon()
	l1, l2, err := WatermelonHidingPair()
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range []core.Labeled{l1, l2} {
		outs, err := core.Run(s.Decoder, l)
		if err != nil {
			t.Fatal(err)
		}
		for v, ok := range outs {
			if !ok {
				t.Fatalf("instance %d: node %d rejects", i+1, v)
			}
		}
	}
	// The paper's equalities, under the corrected ports:
	// view(u1, I1) = view(u1, I2) and view(u4, I1) = view(u5, I2).
	mu11, err := l1.ViewOf(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu12, err := l2.ViewOf(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mu11.Key() != mu12.Key() {
		t.Errorf("view(u1) differs across instances:\n%s\n%s", mu11.Key(), mu12.Key())
	}
	mu41, err := l1.ViewOf(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu52, err := l2.ViewOf(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mu41.Key() != mu52.Key() {
		t.Errorf("view(u4,I1) != view(u5,I2):\n%s\n%s", mu41.Key(), mu52.Key())
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(l1, l2))
	if err != nil {
		t.Fatal(err)
	}
	cyc := ng.OddCycle()
	if cyc == nil {
		t.Fatalf("no odd cycle in V(D,8) slice (size %d, edges %d)", ng.Size(), ng.EdgeCount())
	}
	if len(cyc)%2 == 0 {
		t.Fatalf("cycle %v even", cyc)
	}
	if len(cyc) != 7 {
		t.Logf("note: odd cycle length %d (paper's construction gives 7)", len(cyc))
	}
}

func TestWatermelonHidingFamily(t *testing.T) {
	s := Watermelon()
	family, err := WatermelonHidingFamily()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range family {
		all, err := core.AllAccept(s.Decoder, l)
		if err != nil {
			t.Fatal(err)
		}
		if !all {
			t.Fatalf("family instance not fully accepted: %v", l.G)
		}
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(family...))
	if err != nil {
		t.Fatal(err)
	}
	if ng.OddCycle() == nil {
		t.Error("no odd cycle over the full hiding family")
	}
}

func TestWatermelonLabelRoundTrip(t *testing.T) {
	l := WatermelonPathLabel(1, 8, 3, 2, 0, 1, 1)
	c, err := parseMelonCert(l)
	if err != nil {
		t.Fatal(err)
	}
	if c.typ != 2 || c.id1 != 1 || c.id2 != 8 || c.path != 3 {
		t.Errorf("header lost: %+v", c)
	}
	if c.farPort[1] != 2 || c.color[1] != 0 || c.farPort[2] != 1 || c.color[2] != 1 {
		t.Errorf("entries lost: %+v", c)
	}
	e := WatermelonEndpointLabel(2, 9)
	ce, err := parseMelonCert(e)
	if err != nil {
		t.Fatal(err)
	}
	if ce.typ != 1 || ce.id1 != 2 || ce.id2 != 9 {
		t.Errorf("endpoint header lost: %+v", ce)
	}
}

func TestParseMelonCertErrors(t *testing.T) {
	bad := []string{
		"", "W1:5:3", "W1:5", "W1:0:3", "W2:1:8:1:1,0:1,0", // equal colors
		"W2:1:8:0:1,0:1,1", "W2:1:8:1:0,0:1,1", "W2:1:8:1:1,2:1,0",
		"W2:1:8:1:1,0", "junk", "W3:1:2",
	}
	for _, l := range bad {
		if _, err := parseMelonCert(l); err == nil {
			t.Errorf("parseMelonCert(%q) succeeded, want error", l)
		}
	}
}

func TestWatermelonCertBitsLogShape(t *testing.T) {
	small := watermelonCertBits(WatermelonPathLabel(1, 8, 1, 2, 0, 1, 1))
	big := watermelonCertBits(WatermelonPathLabel(1, 1024, 1, 2, 0, 1, 1))
	if big <= small {
		t.Errorf("larger ids should cost more bits: %d vs %d", big, small)
	}
	// Bits grow logarithmically: id 1024 costs ~10 more than id 8.
	if big-small > 16 {
		t.Errorf("growth too fast: %d vs %d", big, small)
	}
}
