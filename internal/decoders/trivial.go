package decoders

import (
	"fmt"
	"strconv"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Trivial returns the folklore one-round anonymous LCP for k-coloring: the
// certificate of a node is its color in a proper k-coloring, and a node
// accepts iff its own label is a valid color differing from every visible
// neighbor's. Certificates use ceil(log k) bits. The scheme is complete and
// strongly sound but, by design, NOT hiding: the certificate itself is the
// witness.
func Trivial(k int) core.Scheme {
	return core.Scheme{
		Name:    fmt.Sprintf("trivial-%d-col", k),
		Decoder: &trivialDecoder{k: k},
		Prover:  &trivialProver{k: k},
		Promise: core.Promise{
			Lang:    core.KCol(k),
			InClass: func(g *graph.Graph) bool { return g.IsKColorable(k) },
		},
		CertBits: func(string) int { return bitsFor(k) },
	}
}

type trivialDecoder struct {
	k int
}

var _ core.Decoder = (*trivialDecoder)(nil)

func (d *trivialDecoder) Rounds() int     { return 1 }
func (d *trivialDecoder) Anonymous() bool { return true }

func (d *trivialDecoder) Decide(mu *view.View) bool {
	own, err := d.color(mu.Labels[view.Center])
	if err != nil {
		return false
	}
	for _, w := range mu.Adj[view.Center] {
		c, err := d.color(mu.Labels[w])
		if err != nil || c == own {
			return false
		}
	}
	return true
}

func (d *trivialDecoder) color(label string) (int, error) {
	c, err := strconv.Atoi(label)
	if err != nil || c < 0 || c >= d.k {
		return 0, fmt.Errorf("label (len=%d) is not a color in [0,%d)", len(label), d.k)
	}
	return c, nil
}

type trivialProver struct {
	k int
}

var _ core.Prover = (*trivialProver)(nil)

func (p *trivialProver) Certify(inst core.Instance) ([]string, error) {
	coloring, ok := inst.G.KColoring(p.k)
	if !ok {
		return nil, fmt.Errorf("graph is not %d-colorable", p.k)
	}
	labels := make([]string, inst.G.N())
	for v, c := range coloring {
		labels[v] = strconv.Itoa(c)
	}
	return labels, nil
}
