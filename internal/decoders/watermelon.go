package decoders

import (
	"fmt"
	"strings"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Watermelon returns the non-anonymous, strong, and hiding one-round LCP of
// Theorem 1.4 for 2-coloring on the class of watermelon graphs: two
// endpoints joined by internally disjoint paths of length at least 2. The
// certificate reveals a proper 2-EDGE-coloring of every path plus the
// endpoint identifiers and a per-path number; the node 2-coloring stays
// hidden along the paths. Certificates take O(log n) bits.
//
// Label formats:
//
//	WatermelonEndpointLabel(id1, id2)                      type 1
//	WatermelonPathLabel(id1, id2, path, q1, c1, q2, c2)    type 2
//
// with id1 < id2 the endpoint identifiers in increasing order; for a type-2
// node, qj is the far-end port of the edge behind own port j and cj its
// edge color (c1 != c2 by format).
func Watermelon() core.Scheme {
	return core.Scheme{
		Name:    "watermelon",
		Decoder: &watermelonDecoder{},
		Prover:  &watermelonProver{},
		Promise: core.Promise{
			Lang: core.TwoCol(),
			InClass: func(g *graph.Graph) bool {
				v1, v2, _, err := FindWatermelonStructure(g)
				return err == nil && g.IsBipartite() && v1 != v2
			},
		},
		CertBits: watermelonCertBits,
	}
}

// WatermelonEndpointLabel encodes a type-1 certificate.
func WatermelonEndpointLabel(id1, id2 int) string {
	return fmt.Sprintf("W1:%d:%d", id1, id2)
}

// WatermelonPathLabel encodes a type-2 certificate.
func WatermelonPathLabel(id1, id2, path, q1, c1, q2, c2 int) string {
	return fmt.Sprintf("W2:%d:%d:%d:%d,%d:%d,%d", id1, id2, path, q1, c1, q2, c2)
}

type melonCert struct {
	typ      int
	id1, id2 int
	path     int
	farPort  [3]int // indexed by own port 1, 2
	color    [3]int
}

func parseMelonCert(label string) (melonCert, error) {
	var c melonCert
	parts := strings.Split(label, ":")
	switch parts[0] {
	case "W1":
		if len(parts) != 3 {
			return c, fmt.Errorf("type 1 wants 2 fields, got %d", len(parts)-1)
		}
		ids, err := parseInts(strings.Join(parts[1:], ":"), ":")
		if err != nil {
			return c, fmt.Errorf("malformed watermelon certificate (len=%d): %w", len(label), err)
		}
		c.typ, c.id1, c.id2 = 1, ids[0], ids[1]
		if c.id1 < 1 || c.id2 <= c.id1 {
			return c, fmt.Errorf("endpoint ids out of order (len=%d)", len(label))
		}
		return c, nil
	case "W2":
		if len(parts) != 6 {
			return c, fmt.Errorf("type 2 wants 5 fields, got %d", len(parts)-1)
		}
		head, err := parseInts(strings.Join(parts[1:4], ":"), ":")
		if err != nil {
			return c, fmt.Errorf("malformed watermelon certificate (len=%d): %w", len(label), err)
		}
		c.typ, c.id1, c.id2, c.path = 2, head[0], head[1], head[2]
		if c.id1 < 1 || c.id2 <= c.id1 || c.path < 1 {
			return c, fmt.Errorf("header fields out of range (len=%d)", len(label))
		}
		for j := 1; j <= 2; j++ {
			entry, err := parseInts(parts[3+j], ",")
			if err != nil || len(entry) != 2 {
				return c, fmt.Errorf("malformed edge entry %d (len=%d)", j, len(parts[3+j]))
			}
			if entry[0] < 1 {
				return c, fmt.Errorf("far port out of range")
			}
			if entry[1] != 0 && entry[1] != 1 {
				return c, fmt.Errorf("color out of range (want 0 or 1)")
			}
			c.farPort[j], c.color[j] = entry[0], entry[1]
		}
		if c.color[1] == c.color[2] {
			// Format requires the two incident edges differently colored
			// (Theorem 1.4 proof: "the format of ℓ indicates that the two
			// incident edges of each node have different colors").
			return c, fmt.Errorf("equal incident edge colors (len=%d)", len(label))
		}
		return c, nil
	default:
		return c, fmt.Errorf("unknown watermelon certificate type (len=%d)", len(parts[0]))
	}
}

func watermelonCertBits(label string) int {
	c, err := parseMelonCert(label)
	if err != nil {
		return 8 * len(label)
	}
	bits := 1 + bitsForValue(c.id1) + bitsForValue(c.id2)
	if c.typ == 2 {
		bits += bitsForValue(c.path) + bitsForValue(c.farPort[1]) + bitsForValue(c.farPort[2]) + 2
	}
	return bits
}

type watermelonDecoder struct{}

var _ core.Decoder = (*watermelonDecoder)(nil)

func (d *watermelonDecoder) Rounds() int     { return 1 }
func (d *watermelonDecoder) Anonymous() bool { return false }

// Decide implements the decoder of Theorem 1.4 (conditions 1, 2(a)-(d),
// 3(a)-(c) of its proof).
func (d *watermelonDecoder) Decide(mu *view.View) bool {
	center := view.Center
	own, err := parseMelonCert(mu.Labels[center])
	if err != nil {
		return false
	}
	nbs := mu.Adj[center]
	certs := make(map[int]melonCert, len(nbs))
	for _, w := range nbs {
		c, err := parseMelonCert(mu.Labels[w])
		if err != nil {
			return false
		}
		// Condition 1: all neighbors agree on the endpoint identifiers.
		if c.id1 != own.id1 || c.id2 != own.id2 {
			return false
		}
		certs[w] = c
	}
	if own.typ == 1 {
		// Condition 2(a): the node is one of the announced endpoints.
		if mu.IDs[center] != own.id1 && mu.IDs[center] != own.id2 {
			return false
		}
		pathsSeen := make(map[int]bool, len(nbs))
		edgeColor := -1
		for _, w := range nbs {
			c := certs[w]
			// Condition 2(b): all neighbors are path nodes whose entry for
			// the shared edge points back here.
			if c.typ != 2 {
				return false
			}
			j, ok := mu.Port(w, center) // neighbor's own port for the edge
			if !ok || j < 1 || j > 2 {
				return false
			}
			myPort, ok := mu.Port(center, w)
			if !ok || c.farPort[j] != myPort {
				return false
			}
			// Condition 2(c): distinct path numbers across neighbors.
			if pathsSeen[c.path] {
				return false
			}
			pathsSeen[c.path] = true
			// Condition 2(d): all incident edges carry one color.
			if edgeColor == -1 {
				edgeColor = c.color[j]
			} else if edgeColor != c.color[j] {
				return false
			}
		}
		return true
	}
	// Type 2. Condition 3(a): exactly two neighbors, behind ports 1 and 2.
	if len(nbs) != 2 {
		return false
	}
	for _, w := range nbs {
		i, ok := mu.Port(center, w) // own port of this edge
		if !ok || (i != 1 && i != 2) {
			return false
		}
		// Own entry must name the true far-end port.
		far, ok := mu.Port(w, center)
		if !ok || own.farPort[i] != far {
			return false
		}
		c := certs[w]
		switch c.typ {
		case 1:
			// Condition 3(b): a type-1 neighbor is one of the endpoints.
			if mu.IDs[w] != own.id1 && mu.IDs[w] != own.id2 {
				return false
			}
		case 2:
			// Condition 3(c): same path number; the neighbor's entry for
			// the shared edge points back with the same color.
			if c.path != own.path {
				return false
			}
			j := own.farPort[i]
			if j < 1 || j > 2 {
				return false
			}
			if c.farPort[j] != i || c.color[j] != own.color[i] {
				return false
			}
		}
	}
	return true
}

// FindWatermelonStructure locates the endpoints v1, v2 and the node
// sequences of the internally disjoint paths of a watermelon graph. For a
// cycle (a 2-path watermelon with interchangeable endpoints) it picks the
// decomposition at nodes 0 and an opposite node preserving path lengths
// >= 2 and equal parity when possible. It returns an error if g is not a
// watermelon.
func FindWatermelonStructure(g *graph.Graph) (v1, v2 int, paths [][]int, err error) {
	if g.N() < 3 || !g.Connected() {
		return 0, 0, nil, fmt.Errorf("not a watermelon: too small or disconnected")
	}
	// Endpoint candidates: nodes of degree != 2 (there are 0 or 2 of them
	// in a watermelon).
	var special []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 2 {
			special = append(special, v)
		}
	}
	switch len(special) {
	case 0:
		// A cycle: choose v1 = 0 and v2 halfway around, biased to make the
		// two arc lengths share parity (possible iff the cycle is even).
		if !g.IsCycleGraph() {
			return 0, 0, nil, fmt.Errorf("not a watermelon: 2-regular but not a cycle")
		}
		n := g.N()
		half := n / 2
		if half < 2 {
			return 0, 0, nil, fmt.Errorf("cycle too short for paths of length >= 2")
		}
		v1 = 0
		// Walk the cycle to find the node at arc distance half.
		prev, cur := -1, 0
		for i := 0; i < half; i++ {
			next := -1
			for _, w := range g.Neighbors(cur) {
				if w != prev {
					next = w
					break
				}
			}
			prev, cur = cur, next
		}
		v2 = cur
	case 2:
		v1, v2 = special[0], special[1]
	default:
		return 0, 0, nil, fmt.Errorf("not a watermelon: %d nodes of degree != 2", len(special))
	}
	if g.HasEdge(v1, v2) {
		return 0, 0, nil, fmt.Errorf("not a watermelon: endpoints adjacent (a path of length 1)")
	}
	if !graph.IsWatermelon(g, v1, v2) {
		return 0, 0, nil, fmt.Errorf("not a watermelon with endpoints %d, %d", v1, v2)
	}
	// Trace each path from v1 to v2.
	for _, start := range g.Neighbors(v1) {
		path := []int{v1, start}
		prev, cur := v1, start
		for cur != v2 {
			next := -1
			for _, w := range g.Neighbors(cur) {
				if w != prev {
					next = w
					break
				}
			}
			if next == -1 {
				return 0, 0, nil, fmt.Errorf("path trace stuck at node %d", cur)
			}
			prev, cur = cur, next
			path = append(path, cur)
		}
		paths = append(paths, path)
	}
	return v1, v2, paths, nil
}

type watermelonProver struct{}

var _ core.Prover = (*watermelonProver)(nil)

// Certify 2-edge-colors every endpoint-to-endpoint path starting with color
// 0 at v1, numbers the paths, and publishes the sorted endpoint identifier
// pair everywhere, per the completeness part of Theorem 1.4. All paths
// share one parity in a bipartite watermelon, so the edges at v2 are
// monochromatic as condition 2(d) demands.
func (p *watermelonProver) Certify(inst core.Instance) ([]string, error) {
	g := inst.G
	if inst.IDs == nil {
		return nil, fmt.Errorf("watermelon scheme requires identifiers")
	}
	if !g.IsBipartite() {
		return nil, fmt.Errorf("graph is not bipartite")
	}
	v1, v2, paths, err := FindWatermelonStructure(g)
	if err != nil {
		return nil, err
	}
	id1, id2 := inst.IDs[v1], inst.IDs[v2]
	if id1 > id2 {
		id1, id2 = id2, id1
	}
	edgeColor := make(map[[2]int]int)
	for _, path := range paths {
		for i := 0; i+1 < len(path); i++ {
			edgeColor[normEdge(path[i], path[i+1])] = i % 2
		}
	}
	labels := make([]string, g.N())
	labels[v1] = WatermelonEndpointLabel(id1, id2)
	labels[v2] = WatermelonEndpointLabel(id1, id2)
	for pi, path := range paths {
		for _, u := range path[1 : len(path)-1] {
			var q, c [3]int
			for _, w := range g.Neighbors(u) {
				j := inst.Prt.MustPort(u, w)
				q[j] = inst.Prt.MustPort(w, u)
				c[j] = edgeColor[normEdge(u, w)]
			}
			labels[u] = WatermelonPathLabel(id1, id2, pi+1, q[1], c[1], q[2], c[2])
		}
	}
	return labels, nil
}
