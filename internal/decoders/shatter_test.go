package decoders

import (
	"errors"
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestShatterCompleteness(t *testing.T) {
	s := Shatter()
	for _, g := range []*graph.Graph{
		graph.Path(5), graph.Path(8), graph.Spider([]int{2, 2, 2}),
		graph.Grid(3, 3), graph.Grid(4, 4), graph.CompleteBinaryTree(3),
	} {
		if graph.HasShatterPoint(g) < 0 {
			t.Fatalf("test graph %v has no shatter point", g)
		}
		if _, err := core.CheckCompleteness(s, core.NewInstance(g)); err != nil {
			t.Errorf("completeness on %v: %v", g, err)
		}
	}
}

func TestShatterCompletenessExhaustiveSmall(t *testing.T) {
	// Every connected bipartite graph with a shatter point on up to 6 nodes.
	s := Shatter()
	count := 0
	for n := 5; n <= 6; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if !g.IsBipartite() || graph.HasShatterPoint(g) < 0 {
				return true
			}
			count++
			if _, err := core.CheckCompleteness(s, core.NewInstance(g.Clone())); err != nil {
				t.Errorf("completeness: %v", err)
				return false
			}
			return true
		})
	}
	if count == 0 {
		t.Fatal("no instances exercised")
	}
}

func TestShatterProverRejects(t *testing.T) {
	s := Shatter()
	if _, err := s.Prover.Certify(core.NewInstance(graph.MustCycle(6))); err == nil {
		t.Error("prover certified a cycle (no shatter point)")
	}
	if _, err := s.Prover.Certify(core.NewInstance(graph.MustCycle(5))); err == nil {
		t.Error("prover certified an odd cycle")
	}
	inst := core.NewAnonymousInstance(graph.Path(5))
	if _, err := s.Prover.Certify(inst); err == nil {
		t.Error("prover certified an anonymous instance (scheme needs IDs)")
	}
}

func TestShatterStrongSoundnessFuzz(t *testing.T) {
	s := Shatter()
	rng := rand.New(rand.NewSource(17))
	gen := MalformedShatterLabels(9, 3)
	for _, g := range []*graph.Graph{
		graph.MustCycle(5), graph.MustCycle(7), graph.Petersen(),
		graph.Complete(4), graph.MustWatermelon([]int{2, 3}), graph.Grid(3, 3),
	} {
		inst := core.NewInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 800, rng, gen); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

// literalCounterexample builds the labeled instance on which the paper's
// literal Theorem 1.3 decoder accepts an odd cycle: two type-1 nodes u, u'
// carrying DIFFERENT color vectors, each next to its own (rejected or
// incidentally accepted) type-0 node, joined through two path components
// whose facing colors are consistent with both vectors yet of mismatched
// parity.
//
// Nodes: t=0, u=1, a1=2, m=3, a2=4, u'=5, t'=6, b2=7, b1=8.
// Cycle: u-a1-m-a2-u'-b2-b1-u (length 7).
func literalCounterexample() core.Labeled {
	g := graph.MustFromEdges(9, [][2]int{
		{0, 1},         // t - u
		{1, 2},         // u - a1
		{2, 3}, {3, 4}, // a1 - m - a2
		{4, 5}, // a2 - u'
		{5, 6}, // u' - t'
		{5, 7}, // u' - b2
		{7, 8}, // b2 - b1
		{8, 1}, // b1 - u
	})
	inst := core.NewInstance(g) // IDs 1..9; Id(t) = 1
	labels := []string{
		ShatterPointLabelLiteral(1),          // t: claims shatter id 1 = Id(t)
		ShatterNeighborLabel(1, []int{0, 0}), // u
		ShatterCompLabel(1, 1, 0),            // a1
		ShatterCompLabel(1, 1, 1),            // m
		ShatterCompLabel(1, 1, 0),            // a2
		ShatterNeighborLabel(1, []int{0, 1}), // u' — DIFFERENT vector
		ShatterPointLabelLiteral(1),          // t': claims id 1 but Id(t')=7
		ShatterCompLabel(1, 2, 1),            // b2
		ShatterCompLabel(1, 2, 0),            // b1
	}
	return core.MustNewLabeled(inst, labels)
}

// TestShatterLiteralNotStronglySound documents the gap in the brief
// announcement's Theorem 1.3 decoder: the literal conditions accept an odd
// cycle.
func TestShatterLiteralNotStronglySound(t *testing.T) {
	s := ShatterLiteral()
	l := literalCounterexample()
	err := core.CheckStrongSoundness(s.Decoder, s.Promise.Lang, l)
	if err == nil {
		t.Fatal("literal decoder passed strong soundness on the counterexample; expected a violation")
	}
	var v *core.StrongSoundnessViolation
	if !errors.As(err, &v) {
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
	// The 7-cycle u-a1-m-a2-u'-b2-b1 must be fully accepting.
	accepting := make(map[int]bool, len(v.Accepting))
	for _, node := range v.Accepting {
		accepting[node] = true
	}
	for _, node := range []int{1, 2, 3, 4, 5, 7, 8} {
		if !accepting[node] {
			t.Errorf("cycle node %d not accepting", node)
		}
	}
}

// TestShatterPatchedSurvivesCounterexample verifies the patched decoder
// rejects enough of the counterexample to keep the accepting subgraph
// bipartite: u' must reject because its type-0 neighbor t' does not carry
// the announced identifier.
func TestShatterPatchedSurvivesCounterexample(t *testing.T) {
	s := Shatter()
	l := literalCounterexample()
	if err := core.CheckStrongSoundness(s.Decoder, s.Promise.Lang, l); err != nil {
		t.Fatalf("patched decoder violated strong soundness: %v", err)
	}
	outs, err := core.Run(s.Decoder, l)
	if err != nil {
		t.Fatal(err)
	}
	if outs[5] {
		t.Error("u' accepted despite its type-0 neighbor carrying the wrong identifier")
	}
}

// TestShatterPatchedVectorAnchored: two type-1 nodes adjacent to the SAME
// correctly-identified type-0 node cannot carry different vectors — the
// patched check forces both to match the type-0 certificate.
func TestShatterPatchedVectorAnchored(t *testing.T) {
	s := Shatter()
	// t in the middle, u and u' both adjacent to it.
	g := graph.MustFromEdges(3, [][2]int{{0, 1}, {0, 2}})
	inst := core.NewInstance(g) // Id(t)=1
	labels := []string{
		ShatterPointLabel(1, []int{0, 0}),
		ShatterNeighborLabel(1, []int{0, 0}),
		ShatterNeighborLabel(1, []int{0, 1}), // mismatched vector
	}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, labels))
	if err != nil {
		t.Fatal(err)
	}
	if outs[2] {
		t.Error("type-1 node accepted with a vector differing from its type-0 anchor")
	}
	if !outs[1] {
		t.Error("type-1 node with the matching vector should accept")
	}
	if outs[0] {
		t.Error("type-0 node accepted neighbors with differing content")
	}
}

// TestShatterHiding reproduces the hiding part of Theorem 1.3: the P8/P7
// pair is fully accepted, the views of the two far-end nodes coincide across
// the pair, and the lifted paths close an odd cycle in V(D, 8).
func TestShatterHiding(t *testing.T) {
	s := Shatter()
	l1, l2 := ShatterHidingPair()
	for i, l := range []core.Labeled{l1, l2} {
		outs, err := core.Run(s.Decoder, l)
		if err != nil {
			t.Fatal(err)
		}
		for v, ok := range outs {
			if !ok {
				t.Fatalf("instance %d: node %d rejects", i+1, v)
			}
		}
	}
	// view(w3) and view(z2) coincide across the instances.
	for _, pair := range [][2]int{{0, 0}, {7, 6}} {
		mu1, err := l1.ViewOf(pair[0], 1)
		if err != nil {
			t.Fatal(err)
		}
		mu2, err := l2.ViewOf(pair[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		if mu1.Key() != mu2.Key() {
			t.Errorf("views at P1 node %d and P2 node %d differ:\n%s\n%s",
				pair[0], pair[1], mu1.Key(), mu2.Key())
		}
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(l1, l2))
	if err != nil {
		t.Fatal(err)
	}
	cyc := ng.OddCycle()
	if cyc == nil {
		t.Fatalf("no odd cycle in V(D,8) slice (size %d, edges %d)", ng.Size(), ng.EdgeCount())
	}
	if len(cyc)%2 == 0 {
		t.Fatalf("cycle %v even", cyc)
	}
	// The paper's construction yields a 13-cycle (7 + 6 edges).
	if len(cyc) != 13 {
		t.Logf("note: odd cycle has length %d (paper's construction gives 13)", len(cyc))
	}
}

func TestShatterLiteralHiding(t *testing.T) {
	// The literal decoder is also hiding (the gap is in soundness, not in
	// hiding): rebuild the pair with literal type-0 labels.
	s := ShatterLiteral()
	l1, l2 := ShatterHidingPair()
	relabel := func(l core.Labeled, vNode int) core.Labeled {
		labels := append([]string(nil), l.Labels...)
		labels[vNode] = ShatterPointLabelLiteral(5)
		return core.MustNewLabeled(l.Instance, labels)
	}
	l1, l2 = relabel(l1, 4), relabel(l2, 3)
	ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(l1, l2))
	if err != nil {
		t.Fatal(err)
	}
	if ng.OddCycle() == nil {
		t.Error("literal decoder should also be hiding on the P8/P7 pair")
	}
}

func TestShatterDecoderRules(t *testing.T) {
	s := Shatter()
	// P5 = 0-1-2-3-4 with shatter point 2 (Id 3), components {0} and {4}.
	g := graph.Path(5)
	inst := core.NewInstance(g)
	good := []string{
		ShatterCompLabel(3, 1, 0),
		ShatterNeighborLabel(3, []int{0, 0}),
		ShatterPointLabel(3, []int{0, 0}),
		ShatterNeighborLabel(3, []int{0, 0}),
		ShatterCompLabel(3, 2, 0),
	}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, good))
	if err != nil {
		t.Fatal(err)
	}
	for v, ok := range outs {
		if !ok {
			t.Errorf("node %d rejects the hand-built certificate", v)
		}
	}

	// Wrong identifier at the shatter point: it must reject.
	bad := append([]string(nil), good...)
	bad[2] = ShatterPointLabel(9, []int{0, 0})
	outs, err = core.Run(s.Decoder, core.MustNewLabeled(inst, bad))
	if err != nil {
		t.Fatal(err)
	}
	if outs[2] {
		t.Error("shatter point accepted a foreign identifier")
	}

	// Component color contradicting the vector: both endpoints of the
	// relation must reject.
	bad2 := append([]string(nil), good...)
	bad2[0] = ShatterCompLabel(3, 1, 1)
	outs, err = core.Run(s.Decoder, core.MustNewLabeled(inst, bad2))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] || outs[1] {
		t.Error("color/vector mismatch accepted")
	}
}

func TestShatterCertBitsShape(t *testing.T) {
	// Certificate size grows like O(#components + log id): spot-check the
	// accounting.
	small := shatterCertBits(ShatterNeighborLabel(3, []int{0, 1}))
	big := shatterCertBits(ShatterNeighborLabel(3, []int{0, 1, 0, 1, 0, 1}))
	if big <= small {
		t.Errorf("more components should cost more bits: %d vs %d", big, small)
	}
	low := shatterCertBits(ShatterCompLabel(2, 1, 0))
	high := shatterCertBits(ShatterCompLabel(1000, 1, 0))
	if high <= low {
		t.Errorf("larger identifiers should cost more bits: %d vs %d", high, low)
	}
}

func TestParseShatterCertErrors(t *testing.T) {
	bad := []string{
		"", "X", "S0:", "S0:0:", "S1:1", "S1:1:012", "S2:1:1", "S2:0:1:0",
		"S2:1:0:0", "S2:1:1:7", "S1:abc:00",
	}
	for _, l := range bad {
		if _, err := parseShatterCert(l); err == nil {
			t.Errorf("parseShatterCert(%q) succeeded, want error", l)
		}
	}
}
