package decoders

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestDegreeOneCompleteness(t *testing.T) {
	s := DegreeOne()
	// Every connected bipartite graph with δ = 1 on up to 6 nodes.
	for n := 2; n <= 6; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if !g.IsBipartite() || g.MinDegree() != 1 {
				return true
			}
			if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g.Clone())); err != nil {
				t.Errorf("completeness: %v", err)
				return false
			}
			return true
		})
	}
}

func TestDegreeOneCompletenessDisconnected(t *testing.T) {
	// δ(G) = 1 globally; a second component without degree-1 nodes is fine.
	s := DegreeOne()
	g := graph.DisjointUnion(graph.Path(2), graph.MustCycle(4))
	if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g)); err != nil {
		t.Errorf("completeness on disconnected instance: %v", err)
	}
}

func TestDegreeOneProverRejects(t *testing.T) {
	s := DegreeOne()
	if _, err := s.Prover.Certify(core.NewAnonymousInstance(graph.MustCycle(5))); err == nil {
		t.Error("prover certified an odd cycle")
	}
	if _, err := s.Prover.Certify(core.NewAnonymousInstance(graph.MustCycle(4))); err == nil {
		t.Error("prover certified a graph without degree-1 nodes")
	}
}

func TestDegreeOneStrongSoundnessExhaustive(t *testing.T) {
	// Every connected graph on up to 4 nodes (including non-bipartite ones),
	// every port assignment, every labeling over the full alphabet.
	s := DegreeOne()
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			gc := g.Clone()
			graph.EnumPorts(gc, func(pt *graph.Ports) bool {
				inst := core.Instance{G: gc, Prt: pt, NBound: n}
				if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, DegOneAlphabet()); err != nil {
					t.Errorf("strong soundness: %v", err)
					return false
				}
				return true
			})
			return true
		})
	}
}

func TestDegreeOneStrongSoundnessExhaustiveC5(t *testing.T) {
	// The canonical no-instance: all 4^5 labelings of the 5-cycle.
	s := DegreeOne()
	inst := core.NewAnonymousInstance(graph.MustCycle(5))
	if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, DegOneAlphabet()); err != nil {
		t.Errorf("strong soundness on C5: %v", err)
	}
}

func TestDegreeOneStrongSoundnessFuzz(t *testing.T) {
	s := DegreeOne()
	rng := rand.New(rand.NewSource(11))
	gen := func(_ int, rng *rand.Rand) string {
		return DegOneAlphabet()[rng.Intn(4)]
	}
	for _, g := range []*graph.Graph{
		graph.Petersen(), graph.Complete(5), graph.MustWatermelon([]int{2, 3}),
		graph.Grid(3, 3),
	} {
		inst := core.NewAnonymousInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 500, rng, gen); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

// TestDegreeOneHiding reproduces Figs. 3/4: the exhaustive slice of V(D, 4)
// over connected graphs of the promise class contains an odd cycle, so by
// Lemma 3.2 the scheme hides the 2-coloring.
func TestDegreeOneHiding(t *testing.T) {
	s := DegreeOne()
	insts := DegOneFamily(4)
	if len(insts) == 0 {
		t.Fatal("empty family")
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(DegOneAlphabet(), insts...))
	if err != nil {
		t.Fatal(err)
	}
	cyc := ng.OddCycle()
	if cyc == nil {
		t.Fatalf("no odd cycle in V(D,4) slice (size %d, edges %d): scheme should hide", ng.Size(), ng.EdgeCount())
	}
	if len(cyc)%2 == 0 {
		t.Fatalf("cycle %v has even length", cyc)
	}
	// No extraction decoder can exist at this size.
	if _, err := nbhd.NewExtractor(ng, 2, true); err == nil {
		t.Error("extractor built despite hiding")
	}
}

// TestDegreeOneHiddenFraction verifies the scheme hides the coloring at the
// pendant node: on a certified star, the best view-consistent coloring still
// fails somewhere (the hidden node and its neighbor are forced into
// conflict... precisely, the report must show at least one bad edge is NOT
// forced — hiding in this scheme is per-node, so we check the hidden node's
// view admits both colors across the slice instead).
func TestDegreeOneHiddenFraction(t *testing.T) {
	s := DegreeOne()
	// On a single labeled path, all views are distinct, so a view-consistent
	// coloring with zero conflicts exists; per-instance conflict counting
	// cannot certify hiding here (hiding needs the cross-instance argument
	// of Lemma 3.2, tested above). We assert exactly that: zero forced
	// conflicts per instance...
	inst := core.NewAnonymousInstance(graph.Path(4))
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	report, err := nbhd.MinExtractionConflicts(s.Decoder, core.MustNewLabeled(inst, labels), 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.MinBadEdges != 0 {
		t.Errorf("single-instance conflicts = %+v, want 0 (hiding is cross-instance)", report)
	}
}

func TestDegreeOneAnonymity(t *testing.T) {
	s := DegreeOne()
	inst := core.NewInstance(graph.Path(4))
	labels, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	l := core.MustNewLabeled(inst, labels)
	idSets := []graph.IDs{{1, 2, 3, 4}, {4, 3, 2, 1}, {10, 30, 20, 40}}
	bounds := []int{4, 4, 40}
	if err := core.CheckAnonymous(s.Decoder, l, idSets, bounds); err != nil {
		t.Errorf("anonymity: %v", err)
	}
}

func TestDegreeOneDecoderRules(t *testing.T) {
	// Hand-checked accept/reject cases on P4 with labels indexed 0..3.
	s := DegreeOne()
	inst := core.NewAnonymousInstance(graph.Path(4))
	tests := []struct {
		name   string
		labels []string
		want   []bool
	}{
		{
			name:   "prover labeling",
			labels: []string{DegOneBottom, DegOneTop, DegOneColor0, DegOneColor1},
			want:   []bool{true, true, true, true},
		},
		{
			name: "bottom with wrong neighbor",
			// Node 0 (⊥) rejects: its neighbor is not ⊤. Node 1 (colored)
			// also rejects: a colored node tolerates only colored or ⊤
			// neighbors, never ⊥.
			labels: []string{DegOneBottom, DegOneColor0, DegOneColor1, DegOneColor0},
			want:   []bool{false, false, true, true},
		},
		{
			name:   "interior bottom rejected",
			labels: []string{DegOneColor0, DegOneBottom, DegOneTop, DegOneColor1},
			// Node 1 has degree 2 -> rejects; node 0 has a ⊥ neighbor ->
			// rejects; node 2 (⊤) has exactly one ⊥ and one colored -> holds;
			// node 3 neighbors ⊤ only -> accepts.
			want: []bool{false, false, true, true},
		},
		{
			name:   "two colors proper, no hidden pair",
			labels: []string{DegOneColor0, DegOneColor1, DegOneColor0, DegOneColor1},
			want:   []bool{true, true, true, true},
		},
		{
			name:   "monochromatic edge rejected",
			labels: []string{DegOneColor0, DegOneColor0, DegOneColor1, DegOneColor0},
			want:   []bool{false, false, true, true},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, tt.labels))
			if err != nil {
				t.Fatal(err)
			}
			for v := range outs {
				if outs[v] != tt.want[v] {
					t.Errorf("node %d: got %v, want %v (labels %v)", v, outs[v], tt.want[v], tt.labels)
				}
			}
		})
	}
}

func TestDegreeOneTopCommonColor(t *testing.T) {
	// A ⊤ node whose colored neighbors disagree must reject (the common-β
	// requirement that makes the strong-soundness parity argument work).
	s := DegreeOne()
	g := graph.Star(4) // center 0, leaves 1..3
	inst := core.NewAnonymousInstance(g)
	labels := []string{DegOneTop, DegOneBottom, DegOneColor0, DegOneColor1}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, labels))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] {
		t.Error("⊤ center accepted neighbors with two different colors")
	}
	labels2 := []string{DegOneTop, DegOneBottom, DegOneColor0, DegOneColor0}
	outs, err = core.Run(s.Decoder, core.MustNewLabeled(inst, labels2))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0] {
		t.Error("⊤ center rejected a valid common-color neighborhood")
	}
}

func TestDegreeOneCertBits(t *testing.T) {
	s := DegreeOne()
	for _, l := range DegOneAlphabet() {
		if got := s.LabelBits(l); got != 2 {
			t.Errorf("LabelBits(%q) = %d, want 2", l, got)
		}
	}
}
