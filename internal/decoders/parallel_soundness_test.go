package decoders

import (
	"errors"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
)

// distinctLabels collects up to max distinct certificate symbols from a
// labeled instance, in first-appearance order — a small real-symbol alphabet
// for exhaustive soundness sweeps over decoders whose full label space is
// unbounded (shatter, watermelon).
func distinctLabels(l core.Labeled, max int) []string {
	var out []string
	seen := map[string]bool{}
	for _, lab := range l.Labels {
		if seen[lab] {
			continue
		}
		seen[lab] = true
		out = append(out, lab)
		if len(out) == max {
			break
		}
	}
	return out
}

// sameSoundness fails unless the two soundness-search results agree: both
// clean, or the same violation (compared by the violating labeling, falling
// back to the error text for non-violation errors).
func sameSoundness(t *testing.T, tag string, seqErr, parErr error) {
	t.Helper()
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("%s: sequential err %v, parallel err %v", tag, seqErr, parErr)
	}
	if seqErr == nil {
		return
	}
	var sv, pv *core.StrongSoundnessViolation
	if errors.As(seqErr, &sv) != errors.As(parErr, &pv) {
		t.Fatalf("%s: sequential %v, parallel %v", tag, seqErr, parErr)
	}
	if sv == nil {
		if seqErr.Error() != parErr.Error() {
			t.Fatalf("%s: sequential %q != parallel %q", tag, seqErr, parErr)
		}
		return
	}
	if len(sv.Labeled.Labels) != len(pv.Labeled.Labels) {
		t.Fatalf("%s: violation %v != sequential %v", tag, pv.Labeled.Labels, sv.Labeled.Labels)
	}
	for i := range sv.Labeled.Labels {
		if sv.Labeled.Labels[i] != pv.Labeled.Labels[i] {
			t.Fatalf("%s: violation %v != sequential %v", tag, pv.Labeled.Labels, sv.Labeled.Labels)
		}
	}
}

// TestParallelSoundnessMatchesSequential runs the exhaustive strong-soundness
// search sequentially and sharded for every decoder in this package, on a
// small instance with a workable alphabet, and demands identical results.
func TestParallelSoundnessMatchesSequential(t *testing.T) {
	shatterL1, _ := ShatterHidingPair()
	melonL1, _, err := WatermelonHidingPair()
	if err != nil {
		t.Fatal(err)
	}
	litLabels := []string{ShatterPointLabelLiteral(3), ShatterNeighborLabel(3, nil), ShatterCompLabel(3, 1, 0)}
	cases := []struct {
		name     string
		s        core.Scheme
		inst     core.Instance
		alphabet []string
	}{
		{"trivial2", Trivial(2), core.NewAnonymousInstance(graph.MustCycle(5)), []string{"0", "1", "x"}},
		{"trivial3", Trivial(3), core.NewAnonymousInstance(graph.Path(4)), []string{"0", "1", "2"}},
		{"degree-one", DegreeOne(), core.NewAnonymousInstance(graph.MustCycle(5)), DegOneAlphabet()},
		{"degree-one-k3", DegreeOneK(3), core.NewAnonymousInstance(graph.Path(4)), DegOneKAlphabet(3)},
		{"even-cycle", EvenCycle(), core.NewAnonymousInstance(graph.MustCycle(4)), EvenCycleAlphabet()[:6]},
		{"union", Union(), core.NewAnonymousInstance(graph.Path(4)), append(DegOneAlphabet(), "x")},
		{"shatter", Shatter(), shatterL1.Instance, distinctLabels(shatterL1, 3)},
		{"shatter-literal", ShatterLiteral(), core.NewInstance(graph.Path(5)), litLabels},
		{"watermelon", Watermelon(), melonL1.Instance, distinctLabels(melonL1, 3)},
	}
	grid := []struct{ shards, workers int }{{0, 0}, {3, 2}, {16, 7}}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seqErr := core.ExhaustiveStrongSoundness(c.s.Decoder, c.s.Promise.Lang, c.inst, c.alphabet)
			for _, p := range grid {
				parErr := core.ExhaustiveStrongSoundnessParallel(c.s.Decoder, c.s.Promise.Lang, c.inst, c.alphabet, p.shards, p.workers)
				sameSoundness(t, c.name, seqErr, parErr)
			}
		})
	}
}
