package decoders

import (
	"math/rand"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

func TestEvenCycleCompleteness(t *testing.T) {
	s := EvenCycle()
	for n := 4; n <= 16; n += 2 {
		if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(graph.MustCycle(n))); err != nil {
			t.Errorf("completeness on C%d: %v", n, err)
		}
	}
}

func TestEvenCycleCompletenessAllPorts(t *testing.T) {
	s := EvenCycle()
	g := graph.MustCycle(6)
	graph.EnumPorts(g, func(pt *graph.Ports) bool {
		inst := core.Instance{G: g, Prt: pt, NBound: 6}
		if _, err := core.CheckCompleteness(s, inst); err != nil {
			t.Errorf("completeness under ports: %v", err)
			return false
		}
		return true
	})
}

func TestEvenCycleProverRejects(t *testing.T) {
	s := EvenCycle()
	for _, g := range []*graph.Graph{
		graph.MustCycle(5), graph.Path(4), graph.MustWatermelon([]int{2, 2, 2}),
	} {
		if _, err := s.Prover.Certify(core.NewAnonymousInstance(g)); err == nil {
			t.Errorf("prover certified non-even-cycle %v", g)
		}
	}
}

func TestEvenCycleStrongSoundnessExhaustiveC3(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 65^3 labeling search")
	}
	s := EvenCycle()
	inst := core.NewAnonymousInstance(graph.MustCycle(3))
	if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, EvenCycleAlphabet()); err != nil {
		t.Errorf("strong soundness on C3: %v", err)
	}
}

func TestEvenCycleStrongSoundnessFuzz(t *testing.T) {
	s := EvenCycle()
	rng := rand.New(rand.NewSource(13))
	alphabet := EvenCycleAlphabet()
	gen := func(_ int, rng *rand.Rand) string {
		return alphabet[rng.Intn(len(alphabet))]
	}
	for _, g := range []*graph.Graph{
		graph.MustCycle(5), graph.MustCycle(7), graph.Petersen(),
		graph.Complete(4), graph.MustWatermelon([]int{2, 3}),
	} {
		inst := core.NewAnonymousInstance(g)
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, inst, 600, rng, gen); err != nil {
			t.Errorf("fuzz on %v: %v", g, err)
		}
	}
}

// TestEvenCycleOddCycleRejected drives the interesting adversarial case
// directly: on an odd cycle no labeling can make all nodes accept, because
// a proper 2-edge-coloring of an odd cycle does not exist.
func TestEvenCycleOddCycleRejected(t *testing.T) {
	s := EvenCycle()
	// Build the "best effort" cheat: alternate edge colors around C5; the
	// wrap-around node necessarily sees two same-colored edges.
	g := graph.MustCycle(5)
	inst := core.NewAnonymousInstance(g)
	labels := make([]string, 5)
	for v := 0; v < 5; v++ {
		var q, c [3]int
		for _, w := range g.Neighbors(v) {
			j := inst.Prt.MustPort(v, w)
			q[j] = inst.Prt.MustPort(w, v)
			// Edge {v,w} colored by the smaller endpoint's parity.
			lo := v
			if w < lo {
				lo = w
			}
			// wrap edge {4,0} gets color 0 like edge {0,1} — conflict at 0.
			c[j] = lo % 2
		}
		labels[v] = EvenCycleLabel(q[1], c[1], q[2], c[2])
	}
	outs, err := core.Run(s.Decoder, core.MustNewLabeled(inst, labels))
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, ok := range outs {
		if !ok {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("all nodes accepted a cheating labeling of C5")
	}
}

// TestEvenCycleHiding reproduces Figs. 5/6: the slice of V(D, 6) built from
// all yes-instances (C4 and C6 under every port assignment and both
// 2-edge-coloring phases) contains an odd cycle, hence by Lemma 3.2 the
// scheme hides the 2-coloring.
func TestEvenCycleHiding(t *testing.T) {
	s := EvenCycle()
	family, err := EvenCycleFamily(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Every instance in the family is fully accepted (completeness for the
	// flipped phase too).
	for _, l := range family {
		all, err := core.AllAccept(s.Decoder, l)
		if err != nil {
			t.Fatal(err)
		}
		if !all {
			t.Fatalf("family instance not fully accepted: %v", l.G)
		}
	}
	ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(family...))
	if err != nil {
		t.Fatal(err)
	}
	cyc := ng.OddCycle()
	if cyc == nil {
		t.Fatalf("no odd cycle in V(D,6) slice (size %d, edges %d, loops %d)",
			ng.Size(), ng.EdgeCount(), ng.LoopCount())
	}
	if len(cyc)%2 == 0 {
		t.Fatalf("cycle %v has even length", cyc)
	}
}

// TestEvenCycleHiddenEverywhere checks the "hides the 2-coloring from all
// nodes" property (Section 4.2): on a certified even cycle, every
// view-consistent 2-coloring leaves a constant fraction of nodes in
// conflict — unlike DegreeOne, where a per-instance extraction exists.
func TestEvenCycleHiddenEverywhere(t *testing.T) {
	s := EvenCycle()
	// C6 under the port assignment where views repeat with period dividing
	// 2: adjacent nodes can share views, forcing conflicts everywhere.
	found := false
	g := graph.MustCycle(6)
	graph.EnumPorts(g, func(pt *graph.Ports) bool {
		inst := core.Instance{G: g, Prt: pt, NBound: 6}
		labels, err := s.Prover.Certify(inst)
		if err != nil {
			t.Fatal(err)
		}
		report, err := nbhd.MinExtractionConflicts(s.Decoder, core.MustNewLabeled(inst, labels), 2)
		if err != nil {
			t.Fatal(err)
		}
		if report.FailFraction >= 0.5 {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("no port assignment of C6 forces extraction conflicts at half the nodes")
	}
}

func TestEvenCycleLabelRoundTrip(t *testing.T) {
	l := EvenCycleLabel(2, 1, 1, 0)
	c, err := parseCycleCert(l)
	if err != nil {
		t.Fatal(err)
	}
	if c.farPort[1] != 2 || c.color[1] != 1 || c.farPort[2] != 1 || c.color[2] != 0 {
		t.Errorf("round trip lost data: %+v", c)
	}
}

func TestParseCycleCertErrors(t *testing.T) {
	bad := []string{
		"", "garbage", "C:", "C:3,0;1,1", "C:1,5;2,0", "C:1,0", "S0:5:",
	}
	for _, l := range bad {
		if _, err := parseCycleCert(l); err == nil {
			t.Errorf("parseCycleCert(%q) succeeded, want error", l)
		}
	}
}

func TestEvenCycleAlphabetSize(t *testing.T) {
	// 2 far ports x 2 colors per entry, two entries, plus one malformed.
	if got := len(EvenCycleAlphabet()); got != 17 {
		t.Errorf("alphabet size = %d, want 17", got)
	}
}

func TestFlipCycleLabelColors(t *testing.T) {
	labels := []string{EvenCycleLabel(1, 0, 2, 1), "junk"}
	flipped := FlipCycleLabelColors(labels)
	if flipped[0] != EvenCycleLabel(1, 1, 2, 0) {
		t.Errorf("flip = %q", flipped[0])
	}
	if flipped[1] != "junk" {
		t.Error("non-certificate labels should pass through")
	}
}

func TestEvenCycleCertBits(t *testing.T) {
	s := EvenCycle()
	if got := s.LabelBits(EvenCycleLabel(1, 0, 2, 1)); got != 6 {
		t.Errorf("LabelBits = %d, want 6", got)
	}
}

func TestEvenCycleStrongSoundnessExhaustiveC4(t *testing.T) {
	// 17^4 labelings of the even cycle C4 (a YES-instance): strong
	// soundness must hold on yes-instances too — any accepting subset of a
	// bipartite graph is trivially fine, but the run exercises the decoder
	// on every certificate combination without panics or false formats.
	s := EvenCycle()
	inst := core.NewAnonymousInstance(graph.MustCycle(4))
	if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, EvenCycleAlphabet()); err != nil {
		t.Errorf("strong soundness on C4: %v", err)
	}
}

func TestEvenCycleAcceptingLabelingsAreTwoPhases(t *testing.T) {
	// On a fixed port assignment of C6 exactly two labelings are accepted
	// everywhere: the two proper 2-edge-colorings. Verified by exhaustive
	// search over all valid-format labelings at the wrap node... the full
	// 16^6 space is large, so enumerate per-node consistent labels
	// instead: every unanimously accepted labeling must equal the prover's
	// labeling or its flip.
	s := EvenCycle()
	g := graph.MustCycle(6)
	inst := core.NewAnonymousInstance(g)
	want, err := s.Prover.Certify(inst)
	if err != nil {
		t.Fatal(err)
	}
	flip := FlipCycleLabelColors(want)
	count := 0
	graph.EnumLabelings(3, 16, func(idx []int) bool {
		// Sample the space cheaply: fix nodes 3..5 to the prover labels and
		// enumerate nodes 0..2 over all 16 valid labels.
		labels := append([]string(nil), want...)
		alpha := EvenCycleAlphabet()
		for v, a := range idx {
			labels[v] = alpha[a]
		}
		all, err := core.AllAccept(s.Decoder, core.MustNewLabeled(inst, labels))
		if err != nil {
			t.Fatal(err)
		}
		if all {
			count++
			same := true
			for v := range labels {
				if labels[v] != want[v] && labels[v] != flip[v] {
					same = false
				}
			}
			if !same {
				t.Errorf("unexpected unanimously accepted labeling %v", labels)
			}
		}
		return true
	})
	if count != 1 {
		t.Errorf("found %d unanimous labelings in the restricted slice, want exactly 1 (the prover's)", count)
	}
}
