package decoders

import (
	"fmt"
	"math/rand"
	"strings"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
)

// This file provides the concrete instance families behind the paper's
// hiding proofs: the small-graph slice for Lemma 4.1 (Figs. 3/4), the
// two-phase cycle family for Lemma 4.2 (Figs. 5/6), the P8/P7 pair from the
// proof of Theorem 1.3, and the relabeled-path family from the proof of
// Theorem 1.4.

// DegOneFamily returns every connected bipartite graph with minimum degree
// one on 2..maxN labeled nodes, as anonymous instances with every port
// assignment. Together with AllLabelings over DegOneAlphabet this is the
// exhaustive Lemma 3.1 slice of V(D, maxN) for the DegreeOne scheme
// restricted to connected instances.
func DegOneFamily(maxN int) []core.Instance {
	var out []core.Instance
	for n := 2; n <= maxN; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if !g.IsBipartite() || g.MinDegree() != 1 {
				return true
			}
			gc := g.Clone()
			graph.EnumPorts(gc, func(pt *graph.Ports) bool {
				out = append(out, core.Instance{G: gc, Prt: pt, NBound: maxN})
				return true
			})
			return true
		})
	}
	return out
}

// EvenCycleFamily returns the labeled yes-instances used for the Lemma 4.2
// hiding argument: each even cycle length in lens, under every port
// assignment, certified by the prover in both 2-edge-coloring phases.
func EvenCycleFamily(lens ...int) ([]core.Labeled, error) {
	scheme := EvenCycle()
	var out []core.Labeled
	for _, n := range lens {
		if n < 4 || n%2 != 0 {
			return nil, fmt.Errorf("even cycle length %d invalid", n)
		}
		g := graph.MustCycle(n)
		var enumErr error
		graph.EnumPorts(g, func(pt *graph.Ports) bool {
			inst := core.Instance{G: g, Prt: pt, NBound: n}
			labels, err := scheme.Prover.Certify(inst)
			if err != nil {
				enumErr = err
				return false
			}
			out = append(out,
				core.MustNewLabeled(inst, labels),
				core.MustNewLabeled(inst, FlipCycleLabelColors(labels)))
			return true
		})
		if enumErr != nil {
			return nil, enumErr
		}
	}
	return out, nil
}

// FlipCycleLabelColors returns the labeling with both edge colors inverted
// in every EvenCycle certificate — the other proper 2-edge-coloring of the
// same cycle.
func FlipCycleLabelColors(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		c, err := parseCycleCert(l)
		if err != nil {
			out[i] = l
			continue
		}
		out[i] = EvenCycleLabel(c.farPort[1], 1-c.color[1], c.farPort[2], 1-c.color[2])
	}
	return out
}

// FlipWatermelonLabelColors inverts both edge colors in every type-2
// watermelon certificate, yielding the opposite 2-edge-coloring phase.
func FlipWatermelonLabelColors(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		c, err := parseMelonCert(l)
		if err != nil || c.typ != 2 {
			out[i] = l
			continue
		}
		out[i] = WatermelonPathLabel(c.id1, c.id2, c.path,
			c.farPort[1], 1-c.color[1], c.farPort[2], 1-c.color[2])
	}
	return out
}

// ShatterHidingPair builds the two labeled instances from the hiding part
// of Theorem 1.3's proof: the path P1 = (w3, w2, w1, u1, v, u2, z1, z2) with
// shatter point v and component colors (0, 0), and the path
// P2 = (w3, w2, u1, v, u2, z1, z2) — one w-node shorter — with component
// colors (1, 0), sharing identifiers and ports on the common nodes. The
// views of w3 and z2 coincide across the pair while their distance has odd
// parity in P1 and even parity in P2, which puts an odd cycle into V(D, 8).
func ShatterHidingPair() (core.Labeled, core.Labeled) {
	const nBound = 8
	// P1: nodes 0..7 along the path; v is node 4 with identifier 5.
	g1 := graph.Path(8)
	inst1 := core.Instance{
		G:      g1,
		Prt:    graph.DefaultPorts(g1),
		IDs:    graph.IDs{1, 2, 3, 4, 5, 6, 7, 8},
		NBound: nBound,
	}
	const vID = 5
	labels1 := []string{
		ShatterCompLabel(vID, 1, 0),            // w3
		ShatterCompLabel(vID, 1, 1),            // w2
		ShatterCompLabel(vID, 1, 0),            // w1 (faces u1: colors_1 = 0)
		ShatterNeighborLabel(vID, []int{0, 0}), // u1
		ShatterPointLabel(vID, []int{0, 0}),    // v
		ShatterNeighborLabel(vID, []int{0, 0}), // u2
		ShatterCompLabel(vID, 2, 0),            // z1 (faces u2: colors_2 = 0)
		ShatterCompLabel(vID, 2, 1),            // z2
	}
	l1 := core.MustNewLabeled(inst1, labels1)

	// P2: node w1 removed; identifiers restricted.
	g2 := graph.Path(7)
	inst2 := core.Instance{
		G:      g2,
		Prt:    graph.DefaultPorts(g2),
		IDs:    graph.IDs{1, 2, 4, 5, 6, 7, 8},
		NBound: nBound,
	}
	labels2 := []string{
		ShatterCompLabel(vID, 1, 0),            // w3
		ShatterCompLabel(vID, 1, 1),            // w2 (faces u1: colors_1 = 1)
		ShatterNeighborLabel(vID, []int{1, 0}), // u1
		ShatterPointLabel(vID, []int{1, 0}),    // v
		ShatterNeighborLabel(vID, []int{1, 0}), // u2
		ShatterCompLabel(vID, 2, 0),            // z1
		ShatterCompLabel(vID, 2, 1),            // z2
	}
	l2 := core.MustNewLabeled(inst2, labels2)
	return l1, l2
}

// WatermelonHidingPair builds the two labeled instances behind the hiding
// part of Theorem 1.4's proof: the path P8 = u1...u8 under the identity
// identifier assignment id1 and under the middle-reversed assignment id2 of
// the paper (id2(u_i) = 9-i for i in 3..6), with identical certificates.
//
// DEVIATION FROM THE PAPER: the proof fixes the port assignment "port 1 to
// u_{i-1} and port 2 to u_{i+1}", but under that assignment the claimed
// equality view(u4, I1) = view(u5, I2) fails — u4's port 1 leads to the
// identifier-3 node in I1 while u5's port 1 leads to the identifier-5 node
// in I2. The construction goes through verbatim once the port assignment is
// made mirror-symmetric about the middle of the path (port 1 toward u1 on
// the left half, port 1 toward u8 on the right half), which is what we use:
// then view(u1, I1) = view(u1, I2) and view(u4, I1) = view(u5, I2), and the
// two lifted view paths (3 and 4 edges) close an odd 7-cycle in V(D, 8).
func WatermelonHidingPair() (core.Labeled, core.Labeled, error) {
	scheme := Watermelon()
	const nBound = 8
	p8 := graph.Path(8)
	// Mirror-symmetric ports: nodes u2..u4 (indices 1..3) point port 1 at
	// their predecessor; nodes u5..u7 (indices 4..6) point port 1 at their
	// successor. Endpoints have a single port.
	perm := [][]int{{0}, {0, 1}, {0, 1}, {0, 1}, {1, 0}, {1, 0}, {1, 0}, {0}}
	prt, err := graph.PortsFromPerm(p8, perm)
	if err != nil {
		return core.Labeled{}, core.Labeled{}, err
	}
	id1 := graph.IDs{1, 2, 3, 4, 5, 6, 7, 8}
	id2 := graph.IDs{1, 2, 6, 5, 4, 3, 7, 8}

	inst1 := core.Instance{G: p8, Prt: prt, IDs: id1, NBound: nBound}
	labels, err := scheme.Prover.Certify(inst1)
	if err != nil {
		return core.Labeled{}, core.Labeled{}, err
	}
	inst2 := core.Instance{G: p8, Prt: prt, IDs: id2, NBound: nBound}
	// The certificate does not mention interior identifiers, so the same
	// labeling is accepted on both instances.
	return core.MustNewLabeled(inst1, labels), core.MustNewLabeled(inst2, labels), nil
}

// WatermelonHidingFamily builds a broader labeled yes-instance family for
// the Theorem 1.4 hiding argument: the WatermelonHidingPair plus even
// cycles C6 and C8 decomposed as two-path watermelons at every rotation of
// the identifier assignment, each in both 2-edge-coloring phases.
func WatermelonHidingFamily() ([]core.Labeled, error) {
	scheme := Watermelon()
	var out []core.Labeled
	const nBound = 8

	l1, l2, err := WatermelonHidingPair()
	if err != nil {
		return nil, err
	}
	out = append(out, l1, l2,
		core.MustNewLabeled(l1.Instance, FlipWatermelonLabelColors(l1.Labels)),
		core.MustNewLabeled(l2.Instance, FlipWatermelonLabelColors(l2.Labels)))

	for _, n := range []int{6, 8} {
		cyc := graph.MustCycle(n)
		for shift := 0; shift < n; shift++ {
			ids := make(graph.IDs, n)
			for v := 0; v < n; v++ {
				ids[v] = (v+shift)%n + 1
			}
			inst := core.Instance{G: cyc, Prt: graph.DefaultPorts(cyc), IDs: ids, NBound: nBound}
			labels, err := scheme.Prover.Certify(inst)
			if err != nil {
				return nil, err
			}
			out = append(out,
				core.MustNewLabeled(inst, labels),
				core.MustNewLabeled(inst, FlipWatermelonLabelColors(labels)))
		}
	}
	return out, nil
}

// MalformedShatterLabels returns a generator of random shatter-scheme
// labels (valid and invalid mixtures) for fuzzing with
// core.FuzzStrongSoundness, with identifiers bounded by maxID and component
// numbers by maxComp.
func MalformedShatterLabels(maxID, maxComp int) func(node int, rng *rand.Rand) string {
	return func(_ int, rng *rand.Rand) string {
		switch rng.Intn(5) {
		case 0:
			vec := make([]int, 1+rng.Intn(3))
			for i := range vec {
				vec[i] = rng.Intn(2)
			}
			return ShatterPointLabel(1+rng.Intn(maxID), vec)
		case 1:
			vec := make([]int, 1+rng.Intn(3))
			for i := range vec {
				vec[i] = rng.Intn(2)
			}
			return ShatterNeighborLabel(1+rng.Intn(maxID), vec)
		case 2, 3:
			return ShatterCompLabel(1+rng.Intn(maxID), 1+rng.Intn(maxComp), rng.Intn(2))
		default:
			return "junk" + strings.Repeat("!", rng.Intn(3))
		}
	}
}
