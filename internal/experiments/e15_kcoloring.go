package experiments

import (
	"context"
	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E15KColoring explores the general-k direction the paper defers
// (Section 1.3: "our framework for lower bounds is also applicable to
// k-coloring for arbitrary values of k... we do not address those"): the
// library's DegreeOneK(k) scheme generalizes Lemma 4.1's construction to
// k-coloring — complete and strongly sound for every k — and the
// experiment asks whether its neighborhood slice witnesses hiding a
// k-coloring (a non-k-colorable V(D, n)).
func E15KColoring(ctx context.Context) Table {
	t := Table{
		ID:      "E15",
		Title:   "k-coloring generalization of the DegreeOne scheme (extension)",
		Columns: []string{"k", "completeness", "strong soundness (exhaustive n<=4)", "slice views", "slice k-colorable", "hides a k-coloring at this size"},
	}
	for _, k := range []int{2, 3, 4} {
		s := decoders.DegreeOneK(k)

		// Completeness over k-chromatic-or-less pendant graphs.
		complete := true
		pend := func(g *graph.Graph) *graph.Graph {
			h, err := graph.AttachPendant(g, 0)
			if err != nil {
				t.Err = err
				return g
			}
			return h
		}
		corpus := []*graph.Graph{graph.Path(5), graph.Spider([]int{2, 3})}
		if k >= 3 {
			corpus = append(corpus, pend(graph.MustCycle(5)), pend(graph.Petersen()))
		}
		if k >= 4 {
			corpus = append(corpus, pend(graph.Complete(4)))
		}
		for _, g := range corpus {
			if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g)); err != nil {
				t.Err = err
				complete = false
			}
		}
		if t.Err != nil {
			return t
		}

		// Exhaustive strong soundness on all connected graphs up to n = 4.
		sound := true
		for n := 2; n <= 4 && sound; n++ {
			graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
				inst := core.NewAnonymousInstance(g.Clone())
				if err := core.ExhaustiveStrongSoundness(s.Decoder, s.Promise.Lang, inst, decoders.DegOneKAlphabet(k)); err != nil {
					t.Err = err
					sound = false
					return false
				}
				return true
			})
		}
		if t.Err != nil {
			return t
		}

		// The hiding question: is the exhaustive default-port slice
		// k-colorable?
		var insts []core.Instance
		for n := 2; n <= 4; n++ {
			graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
				if g.MinDegree() == 1 && g.IsKColorable(k) {
					gc := g.Clone()
					insts = append(insts, core.Instance{G: gc, Prt: graph.DefaultPorts(gc), NBound: 4})
				}
				return true
			})
		}
		ng, err := nbhd.Build(s.Decoder, nbhd.AllLabelings(decoders.DegOneKAlphabet(k), insts...))
		if err != nil {
			t.Err = err
			return t
		}
		colorable := ng.IsKColorable(k)
		t.AddRow(k, complete, sound, ng.Size(), colorable, !colorable)
	}
	t.Notes = "Extension finding: the pendant-hiding construction stays complete and strongly " +
		"sound for every k (the ⊤ node checks a color remains free), and for k = 2 it hides " +
		"by Lemma 3.2. For k >= 3 the small exhaustive slices ARE k-colorable — the naive " +
		"generalization does not witness hiding a k-coloring at these sizes, matching the " +
		"paper's choice to leave the general-k hiding question open (and consistent with the " +
		"star-graph caveat of Section 1.1: richer structure may force extractability)."
	return t
}
