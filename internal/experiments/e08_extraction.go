package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E8Extraction reproduces Lemma 3.2 in both directions. Forward: for the
// revealing baseline Trivial(2), V(D, n) over an exhaustive slice is
// 2-colorable and the extraction decoder D' recovers a proper 2-coloring of
// fresh accepted instances. Backward: for each hiding scheme, V(D, n)
// contains an odd cycle and building D' fails.
func E8Extraction(ctx context.Context) Table {
	t := Table{
		ID:      "E8",
		Title:   "extraction decoder D' (Lemma 3.2)",
		Columns: []string{"scheme", "V(D,n) slice", "2-colorable", "extraction"},
	}

	// Forward direction: Trivial(2).
	triv := decoders.Trivial(2)
	var insts []core.Instance
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if g.IsBipartite() {
				gc := g.Clone()
				graph.EnumPorts(gc, func(pt *graph.Ports) bool {
					insts = append(insts, core.Instance{G: gc, Prt: pt, NBound: 4})
					return true
				})
			}
			return true
		})
	}
	ngTriv, err := nbhd.Build(triv.Decoder, nbhd.AllLabelings([]string{"0", "1"}, insts...))
	if err != nil {
		t.Err = err
		return t
	}
	ex, err := nbhd.NewExtractor(ngTriv, 2, true)
	if err != nil {
		t.Err = fmt.Errorf("extractor for the revealing scheme: %w", err)
		return t
	}
	// Extract on every bipartite connected 4-node instance afresh.
	extracted, proper := 0, 0
	graph.EnumConnectedGraphs(4, func(g *graph.Graph) bool {
		if !g.IsBipartite() {
			return true
		}
		inst := core.Instance{G: g.Clone(), Prt: graph.DefaultPorts(g), NBound: 4}
		labels, err := triv.Prover.Certify(inst)
		if err != nil {
			t.Err = err
			return false
		}
		witness, err := ex.ExtractWitness(core.MustNewLabeled(inst, labels), 1)
		if err != nil {
			t.Err = err
			return false
		}
		extracted++
		if inst.G.IsProperColoring(witness) {
			proper++
		}
		return true
	})
	if t.Err != nil {
		return t
	}
	t.AddRow("Trivial(2)", fmt.Sprintf("%d views", ngTriv.Size()), true,
		fmt.Sprintf("%d/%d fresh instances properly colored", proper, extracted))

	// Backward direction: the hiding schemes.
	degOne := decoders.DegreeOne()
	ngDeg, err := nbhd.Build(degOne.Decoder, nbhd.AllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(4)...))
	if err != nil {
		t.Err = err
		return t
	}
	_, errDeg := nbhd.NewExtractor(ngDeg, 2, true)
	t.AddRow("DegreeOne", fmt.Sprintf("%d views", ngDeg.Size()), ngDeg.IsKColorable(2),
		fmt.Sprintf("extractor construction fails: %v", errDeg != nil))

	evenFam, err := decoders.EvenCycleFamily(4, 6)
	if err != nil {
		t.Err = err
		return t
	}
	even := decoders.EvenCycle()
	ngEven, err := nbhd.Build(even.Decoder, nbhd.FromLabeled(evenFam...))
	if err != nil {
		t.Err = err
		return t
	}
	_, errEven := nbhd.NewExtractor(ngEven, 2, true)
	t.AddRow("EvenCycle", fmt.Sprintf("%d views", ngEven.Size()), ngEven.IsKColorable(2),
		fmt.Sprintf("extractor construction fails: %v", errEven != nil))

	l1, l2 := decoders.ShatterHidingPair()
	shatter := decoders.Shatter()
	ngSh, err := nbhd.Build(shatter.Decoder, nbhd.FromLabeled(l1, l2))
	if err != nil {
		t.Err = err
		return t
	}
	_, errSh := nbhd.NewExtractor(ngSh, 2, false)
	t.AddRow("Shatter", fmt.Sprintf("%d views", ngSh.Size()), ngSh.IsKColorable(2),
		fmt.Sprintf("extractor construction fails: %v", errSh != nil))

	w1, w2, err := decoders.WatermelonHidingPair()
	if err != nil {
		t.Err = err
		return t
	}
	melon := decoders.Watermelon()
	ngW, err := nbhd.Build(melon.Decoder, nbhd.FromLabeled(w1, w2))
	if err != nil {
		t.Err = err
		return t
	}
	_, errW := nbhd.NewExtractor(ngW, 2, false)
	t.AddRow("Watermelon", fmt.Sprintf("%d views", ngW.Size()), ngW.IsKColorable(2),
		fmt.Sprintf("extractor construction fails: %v", errW != nil))

	t.Notes = "Paper (Lemma 3.2): D is hiding iff V(D,n) is not k-colorable; the proof builds " +
		"D' from a canonical coloring of V(D,n). Measured: D' exists and extracts proper " +
		"2-colorings for the revealing baseline; for all four hiding schemes the slice is " +
		"non-2-colorable and the construction fails, exactly as characterized."
	return t
}
