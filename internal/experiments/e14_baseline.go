package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
)

// E14Baseline compares every scheme against the folklore revealing LCP
// (certificate = the color, ceil(log k) bits): measured maximum certificate
// bits across an instance-size sweep, with the hiding verdicts from
// E3/E4/E6-E8 summarized. The table is the library's analogue of the
// paper's implicit "cost of hiding" comparison: constant extra bits in the
// anonymous classes, O(log n) in the identifier-based classes.
func E14Baseline(ctx context.Context) Table {
	t := Table{
		ID:      "E14",
		Title:   "certificate sizes: revealing baseline vs hiding schemes",
		Columns: []string{"n", "trivial(2)", "degree-one", "even-cycle", "shatter", "watermelon"},
	}
	for _, n := range []int{8, 16, 32, 64} {
		row := []interface{}{n}

		// Trivial on a path.
		triv := decoders.Trivial(2)
		labels, err := triv.Prover.Certify(core.NewAnonymousInstance(graph.Path(n)))
		if err != nil {
			t.Err = err
			return t
		}
		row = append(row, triv.MaxLabelBits(labels))

		// DegreeOne on a path.
		deg := decoders.DegreeOne()
		labels, err = deg.Prover.Certify(core.NewAnonymousInstance(graph.Path(n)))
		if err != nil {
			t.Err = err
			return t
		}
		row = append(row, deg.MaxLabelBits(labels))

		// EvenCycle on C_n.
		even := decoders.EvenCycle()
		labels, err = even.Prover.Certify(core.NewAnonymousInstance(graph.MustCycle(n)))
		if err != nil {
			t.Err = err
			return t
		}
		row = append(row, even.MaxLabelBits(labels))

		// Shatter on a spider with n/2 legs of length 2: the component
		// count k = n/2 grows linearly, exercising the min{Δ², n} term, and
		// identifiers grow with n, exercising the log n term. Reversed
		// identifiers put the largest identifier on the shatter point.
		sh := decoders.Shatter()
		legs := make([]int, n/2)
		for i := range legs {
			legs[i] = 2
		}
		spider := graph.Spider(legs)
		inst := core.NewInstance(spider).WithIDs(reversedIDs(spider.N()), spider.N())
		labels, err = sh.Prover.Certify(inst)
		if err != nil {
			t.Err = err
			return t
		}
		row = append(row, fmt.Sprintf("%d (n=%d, k=%d)", sh.MaxLabelBits(labels), spider.N(), n/2))

		// Watermelon on a 2-path watermelon of total size ~n, with reversed
		// identifiers so the endpoint identifiers grow with n (the log n
		// term of Theorem 1.4).
		wm := decoders.Watermelon()
		g := graph.MustWatermelon([]int{n / 2, n / 2})
		instW := core.NewInstance(g).WithIDs(reversedIDs(g.N()), g.N())
		labels, err = wm.Prover.Certify(instW)
		if err != nil {
			t.Err = err
			return t
		}
		row = append(row, fmt.Sprintf("%d (n=%d)", wm.MaxLabelBits(labels), g.N()))

		t.AddRow(row...)
	}
	t.Notes = "Paper: trivial revealing LCP uses ceil(log k) bits (1 bit for k=2); DegreeOne " +
		"and EvenCycle stay constant (2 and 6 bits, Theorem 1.1); Shatter grows like " +
		"O(min{Δ²,n}+log n) — here the component-count term k = n/2 dominates and the growth " +
		"is linear in the spider's leg count — and Watermelon like O(log n) (Theorems 1.3, " +
		"1.4). Measured bit counts across the sweep exhibit exactly these shapes."
	return t
}

// reversedIDs assigns identifier n-v to node v, putting large identifiers
// on low-index nodes (where the schemes place their anchor roles).
func reversedIDs(n int) graph.IDs {
	ids := make(graph.IDs, n)
	for v := range ids {
		ids[v] = n - v
	}
	return ids
}
