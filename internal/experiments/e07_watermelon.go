package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E7Watermelon reproduces Theorem 1.4: the non-anonymous scheme for
// watermelon graphs with O(log n)-bit certificates, including the
// certificate-size sweep exhibiting the logarithmic shape and the paper's
// two-identifier-assignment hiding construction (under the corrected
// mirror-symmetric port assignment).
func E7Watermelon(ctx context.Context) Table {
	t := Table{
		ID:      "E7",
		Title:   "Watermelon scheme (Theorem 1.4)",
		Columns: []string{"check", "scope", "result"},
	}
	s := decoders.Watermelon()

	// Completeness + size sweep over growing watermelons.
	sizes := ""
	for _, c := range []struct {
		name  string
		paths []int
	}{
		{"2 paths len 2", []int{2, 2}},
		{"3 paths len 4", []int{4, 4, 4}},
		{"4 paths len 8", []int{8, 8, 8, 8}},
		{"5 paths len 16", []int{16, 16, 16, 16, 16}},
		{"6 paths len 32", []int{32, 32, 32, 32, 32, 32}},
	} {
		g := graph.MustWatermelon(c.paths)
		labels, err := core.CheckCompleteness(s, core.NewInstance(g))
		if err != nil {
			t.Err = err
			return t
		}
		sizes += fmt.Sprintf("n=%d:%db ", g.N(), s.MaxLabelBits(labels))
	}
	t.AddRow("completeness + max cert bits", "watermelon sweep", sizes)

	// Parity sweep: same-parity paths accepted, mixed parity rejected by
	// the prover (non-bipartite).
	parity := ""
	for _, paths := range [][]int{{2, 2}, {3, 3}, {2, 4}, {3, 5}, {2, 3}, {4, 5}} {
		g := graph.MustWatermelon(paths)
		_, err := s.Prover.Certify(core.NewInstance(g))
		parity += fmt.Sprintf("%v:%v ", paths, err == nil)
	}
	t.AddRow("parity classification", "2-path watermelons", parity)

	rng := rand.New(rand.NewSource(5))
	gen := func(_ int, rng *rand.Rand) string {
		id1 := 1 + rng.Intn(8)
		id2 := id1 + 1 + rng.Intn(9-id1)
		c1 := rng.Intn(2)
		if rng.Intn(4) == 0 {
			return decoders.WatermelonEndpointLabel(id1, id2)
		}
		return decoders.WatermelonPathLabel(id1, id2, 1+rng.Intn(3), 1+rng.Intn(3), c1, 1+rng.Intn(3), 1-c1)
	}
	for _, g := range []*graph.Graph{graph.MustCycle(5), graph.MustWatermelon([]int{2, 3}), graph.Petersen()} {
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, core.NewInstance(g), 800, rng, gen); err != nil {
			t.Err = err
			return t
		}
	}
	t.AddRow("strong soundness (fuzz x800)", "C5, odd theta, Petersen", "no violation")

	l1, l2, err := decoders.WatermelonHidingPair()
	if err != nil {
		t.Err = err
		return t
	}
	// The paper's view equalities under the corrected ports.
	mu11, _ := l1.ViewOf(0, 1)
	mu12, _ := l2.ViewOf(0, 1)
	mu41, _ := l1.ViewOf(3, 1)
	mu52, _ := l2.ViewOf(4, 1)
	t.AddRow("view(u1,I1) = view(u1,I2)", "P8 pair", mu11.Key() == mu12.Key())
	t.AddRow("view(u4,I1) = view(u5,I2)", "P8 pair", mu41.Key() == mu52.Key())
	ng, err := nbhd.Build(s.Decoder, nbhd.FromLabeled(l1, l2))
	if err != nil {
		t.Err = err
		return t
	}
	cyc := ng.OddCycle()
	if cyc == nil {
		t.Err = fmt.Errorf("no odd cycle from the P8 identifier pair")
		return t
	}
	t.AddRow("hiding (odd cycle in V(D,8))", "two identifier assignments", fmt.Sprintf("length %d (paper: 7)", len(cyc)))
	t.Notes = "Paper: strong and hiding one-round LCP with O(log n) bits; measured: bit counts " +
		"grow logarithmically in n across the sweep, and the two-assignment construction yields " +
		"an odd 7-cycle. FINDING: under the paper's stated port assignment (port 1 toward " +
		"u_{i-1} everywhere) the claimed equality view(u4,I1) = view(u5,I2) fails — port 1 of " +
		"u4 leads to the identifier-3 node in I1 but port 1 of u5 leads to the identifier-5 " +
		"node in I2; making the port assignment mirror-symmetric about the path's middle " +
		"restores the construction verbatim."
	return t
}
