package experiments

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// E11Impossibility probes Theorems 1.2/6.3 on finite slices. A 0-bit
// (single-symbol certificate) one-round anonymous decoder is a boolean
// function on finitely many view classes, so entire decoder spaces can be
// enumerated:
//
//   - Δ = 2: the theorem's hypothesis is empty (every connected graph with
//     δ >= 2 is a cycle, and cycles are exactly the exempt class), and the
//     exhaustive enumeration indeed finds decoders that are strongly sound
//     AND hiding on even cycles — the boundary of the impossibility, where
//     Lemma 4.2 lives.
//   - Δ = 3 (theta graphs in the class, which are not cycles and have
//     δ >= 2): over a large sampled decoder space, every decoder that is
//     strongly sound on the no-instance corpus has a 2-colorable accepting
//     neighborhood slice — i.e. none is hiding, consistent with the
//     impossibility theorem.
func E11Impossibility(ctx context.Context) Table {
	t := Table{
		ID:      "E11",
		Title:   "impossibility slices (Theorems 1.2 / 6.3)",
		Columns: []string{"slice", "decoders", "strongly sound", "sound AND hiding"},
	}

	// ---- Δ = 2 slice (boundary): exhaustive. ----
	// A common identifier bound keeps structurally equal views in one class
	// across instance sizes (nodes knowing different bounds N have
	// different views by definition).
	const bound2 = 7
	yes2 := portInstances(graph.MustCycle(4), bound2)
	yes2 = append(yes2, portInstances(graph.MustCycle(6), bound2)...)
	no2 := portInstances(graph.MustCycle(3), bound2)
	no2 = append(no2, portInstances(graph.MustCycle(5), bound2)...)
	no2 = append(no2, portInstances(graph.MustCycle(7), bound2)...)

	space2, err := newDecoderSpace(append(append([]core.Instance{}, yes2...), no2...))
	if err != nil {
		t.Err = err
		return t
	}
	k := len(space2.classes)
	if k > 16 {
		t.Err = fmt.Errorf("Δ=2 class count %d too large for exhaustive enumeration", k)
		return t
	}
	sound2, hiding2 := 0, 0
	for mask := 0; mask < 1<<k; mask++ {
		if !space2.stronglySound(mask, no2) {
			continue
		}
		sound2++
		if space2.hiding(mask, yes2) {
			hiding2++
		}
	}
	t.AddRow("Δ=2 (cycles only; exempt class)", fmt.Sprintf("all 2^%d", k), sound2, hiding2)

	// ---- Δ = 3 slice: sampled. ----
	const bound3 = 12
	anon := func(g *graph.Graph) core.Instance {
		return core.Instance{G: g, Prt: graph.DefaultPorts(g), NBound: bound3}
	}
	yes3 := []core.Instance{
		anon(graph.MustWatermelon([]int{2, 2, 2})),
		anon(graph.MustWatermelon([]int{2, 4, 2})),
		anon(graph.MustWatermelon([]int{4, 4, 4})),
	}
	// Hand-picked no-instances plus the exhaustive non-bipartite connected
	// Δ<=3 universe on up to 6 nodes. Strong soundness quantifies over ALL
	// graphs; a small corpus produces false "sound" positives, so the
	// experiment reports the candidate counts under both corpora to exhibit
	// the convergence toward the theorem's impossibility.
	no3small := []core.Instance{
		anon(graph.MustCycle(3)),
		anon(graph.MustCycle(5)),
		anon(graph.MustCycle(7)),
		anon(graph.MustWatermelon([]int{2, 3})),
		anon(graph.MustWatermelon([]int{3, 4, 5})),
		anon(graph.Complete(4)),
		anon(graph.Petersen()),
	}
	no3 := append([]core.Instance{}, no3small...)
	for n := 3; n <= 6; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if g.MaxDegree() <= 3 && !g.IsBipartite() {
				no3 = append(no3, anon(g.Clone()))
			}
			return true
		})
	}
	space3, err := newDecoderSpace(append(append([]core.Instance{}, yes3...), no3...))
	if err != nil {
		t.Err = err
		return t
	}
	m := len(space3.classes)
	if m > 60 {
		t.Err = fmt.Errorf("Δ=3 class count %d exceeds the bitmask budget", m)
		return t
	}
	// A decoder violates strong soundness iff the class set of SOME odd
	// cycle of a no-instance is fully accepted; precompute those class
	// masks once and each decoder check becomes a few bit operations.
	badSmall, err := space3.oddCycleMasks(ctx, no3small)
	if err != nil {
		t.Err = err
		return t
	}
	badRest, err := space3.oddCycleMasks(ctx, no3[len(no3small):])
	if err != nil {
		t.Err = err
		return t
	}
	badFull := append(append([]uint64{}, badSmall...), badRest...)
	badFull = minimalMasks(badFull)
	badSmall = minimalMasks(badSmall)

	rng := rand.New(rand.NewSource(1234))
	const samples = 30000
	soundSmall, hidingSmall := 0, 0
	soundFull, hidingFull := 0, 0
	seen := make(map[int]bool, samples)
	for i := 0; i < samples; i++ {
		bits := m
		if bits > 30 {
			bits = 30
		}
		mask := rng.Intn(1 << uint(bits))
		if seen[mask] {
			continue
		}
		seen[mask] = true
		if violates(uint64(mask), badSmall) {
			continue
		}
		soundSmall++
		isHiding := space3.hiding(mask, yes3)
		if isHiding {
			hidingSmall++
		}
		if violates(uint64(mask), badFull) {
			continue
		}
		soundFull++
		if isHiding {
			hidingFull++
		}
	}
	t.AddRow(fmt.Sprintf("Δ=3 thetas, 7-instance no-corpus (%d classes)", m),
		fmt.Sprintf("%d sampled", len(seen)), soundSmall, hidingSmall)
	t.AddRow(fmt.Sprintf("Δ=3 thetas, + exhaustive non-bipartite Δ<=3 corpus n<=6 (%d instances)", len(no3)),
		fmt.Sprintf("%d sampled", len(seen)), soundFull, hidingFull)

	// With COMPLETENESS over the bipartite Δ<=3 universe, a 0-bit decoder
	// must accept every class occurring in a yes-instance; if those classes
	// already cover some odd cycle of a no-instance, no complete and
	// strongly sound 0-bit decoder exists at all.
	var yesCorpus []core.Instance
	for n := 3; n <= 6; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if g.MaxDegree() <= 3 && g.IsBipartite() && g.MinDegree() >= 2 {
				yesCorpus = append(yesCorpus, anon(g.Clone()))
			}
			return true
		})
	}
	var yesMask uint64
	for _, inst := range yesCorpus {
		vec, err := space3.classVector(inst)
		if err != nil {
			t.Err = err
			return t
		}
		for _, c := range vec {
			if c >= 64 {
				t.Err = fmt.Errorf("class index %d exceeds bitmask budget", c)
				return t
			}
			yesMask |= 1 << uint(c)
		}
	}
	completeAndSound := 1
	if violates(yesMask, badFull) {
		completeAndSound = 0
	}
	t.AddRow(fmt.Sprintf("Δ=3, completeness forced over %d bipartite δ>=2 yes-instances", len(yesCorpus)),
		"the unique minimal complete decoder", completeAndSound, 0)
	t.Notes = "Paper (Theorem 6.3): with constant-size certificates, hiding excludes strong " +
		"soundness outside the exempt classes. Measured: on the Δ=2 boundary — where every " +
		"δ>=2 graph is a cycle and the theorem does not apply — strongly sound AND hiding " +
		"decoders exist (0-bit port-pattern decoders already exhibit odd view-cycles there). " +
		"On the Δ=3 theta slice (which contains the 1-forgetful, non-cycle, δ>=2 graph " +
		"θ(4,4,4), so the theorem applies), the sound-AND-hiding candidate count collapses as " +
		"the no-instance corpus grows toward the theorem's universal quantification. Requiring " +
		"COMPLETENESS as well settles it: the classes forced by bipartite yes-instances already " +
		"cover an odd cycle of some no-instance, so no complete and strongly sound 0-bit " +
		"decoder exists — with or without hiding — which is why the paper's schemes need " +
		"non-trivial certificates in the first place."
	return t
}

// portInstances lists g under every port assignment, anonymously.
func portInstances(g *graph.Graph, nBound int) []core.Instance {
	var out []core.Instance
	graph.EnumPorts(g, func(pt *graph.Ports) bool {
		out = append(out, core.Instance{G: g, Prt: pt, NBound: nBound})
		return true
	})
	return out
}

// decoderSpace indexes the anonymized single-label view classes of a corpus
// so that 0-bit decoders become bitmasks over classes.
type decoderSpace struct {
	classes []string
	index   map[string]int
	// classVec caches, per instance graph key+ports pointer, the class of
	// every node. Keyed by position in the corpus at construction.
	vecs map[*graph.Ports][]int
	// binKeys memoizes the legacy class key per binary canonical key. The
	// two keys induce the same partition of views, so one legacy minKey
	// search per class suffices; repeat views ride the cheaper binary key.
	// The legacy key stays the class identity because the sorted class
	// order defines the decoder-mask bit semantics.
	binKeys map[string]string
	// bip caches, per port assignment, the bipartiteness of the subgraph
	// induced by each accepting node bitmask (corpus instances have at
	// most 64 nodes; the verdict depends only on the accepting set).
	bip map[*graph.Ports]map[uint64]bool
	// adjCache holds, per yes corpus (keyed by its first instance), the
	// class-level adjacency and loop masks hiding() walks. The class count
	// is bounded by the bitmask budget (<= 60), so adjacency fits fixed
	// [64]uint64 rows and each hiding() call runs an allocation-free
	// mask-BFS instead of building a graph.Graph per decoder sample.
	adjCache map[*core.Instance]*classAdj
}

// classAdj is the class-level slice of a yes corpus: adj[c] is the bitmask
// of classes sharing an edge with class c in some corpus instance, loops the
// classes adjacent to themselves.
type classAdj struct {
	adj   [64]uint64
	loops uint64
}

// classKey returns the legacy class key of a node view, resolving repeat
// classes through the binary-key memo.
func (s *decoderSpace) classKey(mu *view.View) string {
	a := mu.Anonymize()
	bk := string(a.BinKey())
	if k, ok := s.binKeys[bk]; ok {
		return k
	}
	k := a.Key()
	s.binKeys[bk] = k
	return k
}

func newDecoderSpace(corpus []core.Instance) (*decoderSpace, error) {
	s := &decoderSpace{
		index:    map[string]int{},
		vecs:     map[*graph.Ports][]int{},
		binKeys:  map[string]string{},
		bip:      map[*graph.Ports]map[uint64]bool{},
		adjCache: map[*core.Instance]*classAdj{},
	}
	// Single pass: collect each instance's per-node class keys once, sort
	// the class universe, then number the cached vectors under the sorted
	// index — no second extraction sweep over the corpus. One Extractor
	// shares its template scratch across the whole corpus.
	var ex view.Extractor
	keys := make([][]string, len(corpus))
	for ci, inst := range corpus {
		l := core.MustNewLabeled(inst, make([]string, inst.G.N()))
		views, err := l.ViewsWith(&ex, 1)
		if err != nil {
			return nil, err
		}
		ks := make([]string, len(views))
		for v, mu := range views {
			key := s.classKey(mu)
			ks[v] = key
			if _, ok := s.index[key]; !ok {
				s.index[key] = 0
				s.classes = append(s.classes, key)
			}
		}
		keys[ci] = ks
	}
	sort.Strings(s.classes)
	for i, c := range s.classes {
		s.index[c] = i
	}
	for ci, inst := range corpus {
		vec := make([]int, len(keys[ci]))
		for v, k := range keys[ci] {
			vec[v] = s.index[k]
		}
		s.vecs[inst.Prt] = vec
	}
	return s, nil
}

func (s *decoderSpace) classVector(inst core.Instance) ([]int, error) {
	l := core.MustNewLabeled(inst, make([]string, inst.G.N()))
	views, err := l.Views(1)
	if err != nil {
		return nil, err
	}
	vec := make([]int, len(views))
	for v, mu := range views {
		key := s.classKey(mu)
		if _, ok := s.index[key]; !ok {
			s.index[key] = len(s.classes)
			s.classes = append(s.classes, key)
		}
		vec[v] = s.index[key]
	}
	return vec, nil
}

// stronglySound reports whether the decoder given by mask keeps the
// accepting-induced subgraph bipartite on every corpus instance.
func (s *decoderSpace) stronglySound(mask int, corpus []core.Instance) bool {
	for _, inst := range corpus {
		vec := s.vecs[inst.Prt]
		if len(vec) > 64 {
			// No bitmask memo; compute directly.
			var acc []int
			for v, c := range vec {
				if mask&(1<<uint(c)) != 0 {
					acc = append(acc, v)
				}
			}
			sub, _ := inst.G.InducedSubgraph(acc)
			if !sub.IsBipartite() {
				return false
			}
			continue
		}
		// Many decoder masks induce the same accepting node set on one
		// instance; memoize the bipartiteness verdict per that set.
		var am uint64
		for v, c := range vec {
			if mask&(1<<uint(c)) != 0 {
				am |= 1 << uint(v)
			}
		}
		m := s.bip[inst.Prt]
		if m == nil {
			m = make(map[uint64]bool)
			s.bip[inst.Prt] = m
		}
		ok, hit := m[am]
		if !hit {
			acc := make([]int, 0, len(vec))
			for v := range vec {
				if am&(1<<uint(v)) != 0 {
					acc = append(acc, v)
				}
			}
			sub, _ := inst.G.InducedSubgraph(acc)
			ok = sub.IsBipartite()
			m[am] = ok
		}
		if !ok {
			return false
		}
	}
	return true
}

// oddCycleMasks enumerates the simple odd cycles of every corpus instance
// and returns their class bitmasks: a decoder accepting all classes of some
// mask accepts an odd cycle somewhere and thus violates strong soundness.
// The per-instance cycle searches are independent and run on the configured
// worker pool; the merged mask set is sorted, so the result does not depend
// on scheduling.
func (s *decoderSpace) oddCycleMasks(ctx context.Context, corpus []core.Instance) ([]uint64, error) {
	perInst := make([][]uint64, len(corpus))
	if err := parallelEach(ctx, len(corpus), func(i int) {
		perInst[i] = s.instanceOddCycleMasks(corpus[i])
	}); err != nil {
		return nil, err
	}
	set := make(map[uint64]bool)
	for _, masks := range perInst {
		for _, mask := range masks {
			set[mask] = true
		}
	}
	out := make([]uint64, 0, len(set))
	for mask := range set {
		out = append(out, mask)
	}
	// Deterministic order: the masks feed the minimality filter and the
	// reported counts, which must not vary with map iteration order.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// instanceOddCycleMasks runs the anchored odd-cycle DFS on one instance.
// It only reads the (frozen after construction) class-vector cache, so
// concurrent calls on distinct instances are safe.
func (s *decoderSpace) instanceOddCycleMasks(inst core.Instance) []uint64 {
	set := make(map[uint64]bool)
	vec := s.vecs[inst.Prt]
	g := inst.G
	n := g.N()
	inPath := make([]bool, n)
	var path []int
	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		for _, nb := range g.Neighbors(cur) {
			if nb == start && len(path) >= 3 && len(path)%2 == 1 {
				var mask uint64
				for _, v := range path {
					mask |= 1 << uint(vec[v])
				}
				set[mask] = true
				continue
			}
			// Anchor cycles at their minimum node to bound the search.
			if nb <= start || inPath[nb] {
				continue
			}
			inPath[nb] = true
			path = append(path, nb)
			dfs(start, nb)
			path = path[:len(path)-1]
			inPath[nb] = false
		}
	}
	for start := 0; start < n; start++ {
		path = path[:0]
		path = append(path, start)
		inPath[start] = true
		dfs(start, start)
		inPath[start] = false
	}
	out := make([]uint64, 0, len(set))
	for mask := range set {
		out = append(out, mask)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// minimalMasks drops masks that are supersets of another mask (checking the
// subset suffices).
func minimalMasks(masks []uint64) []uint64 {
	var out []uint64
	for i, a := range masks {
		minimal := true
		for j, b := range masks {
			if i == j {
				continue
			}
			if b&a == b && (b != a || j < i) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a)
		}
	}
	return out
}

// violates reports whether some bad mask is fully accepted.
func violates(mask uint64, bad []uint64) bool {
	for _, b := range bad {
		if b&mask == b {
			return true
		}
	}
	return false
}

// hiding reports whether the class-level accepting neighborhood slice over
// the yes corpus contains an odd cycle (including a self-loop). The corpus
// adjacency is precomputed once (yesAdj); per decoder mask the check is a
// loop-bit test plus an allocation-free bitmask BFS 2-coloring.
func (s *decoderSpace) hiding(mask int, yes []core.Instance) bool {
	ca := s.yesAdj(yes)
	acc := uint64(mask)
	if ca.loops&acc != 0 {
		return true
	}
	var nadj [64]uint64
	for f := acc; f != 0; f &= f - 1 {
		c := bits.TrailingZeros64(f)
		nadj[c] = ca.adj[c] & acc
	}
	return !maskBipartite(acc, &nadj)
}

// yesAdj returns the class-level adjacency of the yes corpus, computed on
// first use and cached (hiding is probed once per sampled decoder mask over
// a fixed corpus). Corpora are identified by their first instance; each
// decoderSpace only ever sees one.
func (s *decoderSpace) yesAdj(yes []core.Instance) *classAdj {
	if ca, ok := s.adjCache[&yes[0]]; ok {
		return ca
	}
	ca := &classAdj{}
	for _, inst := range yes {
		vec := s.vecs[inst.Prt]
		for _, e := range inst.G.Edges() {
			a, b := vec[e[0]], vec[e[1]]
			if a == b {
				ca.loops |= 1 << uint(a)
				continue
			}
			ca.adj[a] |= 1 << uint(b)
			ca.adj[b] |= 1 << uint(a)
		}
	}
	s.adjCache[&yes[0]] = ca
	return ca
}

// maskBipartite 2-colors the graph on the node bitmask whose rows are adj
// (restricted to the mask) by frontier-mask BFS: a layer's neighbor set
// intersecting the layer's own side is an odd cycle. Edges only join
// consecutive BFS layers, so the parity-side test is exact.
func maskBipartite(nodes uint64, adj *[64]uint64) bool {
	visited := uint64(0)
	for {
		rest := nodes &^ visited
		if rest == 0 {
			return true
		}
		var side [2]uint64
		cur := rest & -rest
		si := 0
		for cur != 0 {
			side[si] |= cur
			visited |= cur
			var nxt uint64
			for f := cur; f != 0; f &= f - 1 {
				nxt |= adj[bits.TrailingZeros64(f)]
			}
			if nxt&side[si] != 0 {
				return false
			}
			cur = nxt &^ visited
			si ^= 1
		}
	}
}
