package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E12HiddenFraction measures the quantified-hiding metric the paper
// proposes as future work (Section 2.4 discussion): per certified
// yes-instance, the minimum fraction of nodes at which ANY view-consistent
// extraction must fail. The EvenCycle scheme hides "from all nodes", the
// DegreeOne scheme only at the pendant; the per-instance metric makes the
// contrast quantitative.
func E12HiddenFraction(ctx context.Context) Table {
	t := Table{
		ID:      "E12",
		Title:   "hidden-fraction metric (Section 2.4 future-work notion)",
		Columns: []string{"scheme", "instance", "distinct views", "min bad edges", "fail fraction"},
	}
	type run struct {
		scheme core.Scheme
		name   string
		inst   core.Instance
	}
	runs := []run{
		{decoders.Trivial(2), "grid 3x3", core.NewAnonymousInstance(graph.Grid(3, 3))},
		{decoders.DegreeOne(), "P6", core.NewAnonymousInstance(graph.Path(6))},
		{decoders.DegreeOne(), "spider(2,2,2)", core.NewAnonymousInstance(graph.Spider([]int{2, 2, 2}))},
		{decoders.EvenCycle(), "C6", core.NewAnonymousInstance(graph.MustCycle(6))},
		{decoders.EvenCycle(), "C8", core.NewAnonymousInstance(graph.MustCycle(8))},
		{decoders.Watermelon(), "theta(2,4,2)", core.NewInstance(graph.MustWatermelon([]int{2, 4, 2}))},
		{decoders.Shatter(), "grid 3x3", core.NewInstance(graph.Grid(3, 3))},
	}
	for _, r := range runs {
		labels, err := r.scheme.Prover.Certify(r.inst)
		if err != nil {
			t.Err = fmt.Errorf("%s on %s: %w", r.scheme.Name, r.name, err)
			return t
		}
		l := core.MustNewLabeled(r.inst, labels)
		report, err := nbhd.MinExtractionConflicts(r.scheme.Decoder, l, 2)
		if err != nil {
			t.Err = err
			return t
		}
		t.AddRow(r.scheme.Name, r.name, report.DistinctViews, report.MinBadEdges,
			fmt.Sprintf("%.2f", report.FailFraction))
	}
	// The best-hiding single instances: find the C6 port assignment whose
	// certified instance maximizes the fail fraction. The per-assignment
	// certify+conflict computations are independent; they run on the
	// configured worker pool and reduce through max (order-insensitive),
	// with the lowest-indexed error reported.
	s := decoders.EvenCycle()
	g := graph.MustCycle(6)
	var pts []*graph.Ports
	graph.EnumPorts(g, func(pt *graph.Ports) bool {
		pts = append(pts, pt)
		return true
	})
	fractions := make([]float64, len(pts))
	errs := make([]error, len(pts))
	if err := parallelEach(ctx, len(pts), func(i int) {
		inst := core.Instance{G: g, Prt: pts[i], NBound: 6}
		labels, err := s.Prover.Certify(inst)
		if err != nil {
			errs[i] = err
			return
		}
		report, err := nbhd.MinExtractionConflicts(s.Decoder, core.MustNewLabeled(inst, labels), 2)
		if err != nil {
			errs[i] = err
			return
		}
		fractions[i] = report.FailFraction
	}); err != nil {
		t.Err = err
		return t
	}
	best := 0.0
	for i := range pts {
		if errs[i] != nil {
			t.Err = errs[i]
			return t
		}
		if fractions[i] > best {
			best = fractions[i]
		}
	}
	t.AddRow("even-cycle (best ports)", "C6 over all port assignments", "-", "-", fmt.Sprintf("%.2f", best))
	t.Notes = "Per-instance fail fractions of 0 do NOT contradict hiding: hiding is a " +
		"cross-instance notion (Lemma 3.2); a fraction above 0 is the stronger per-instance " +
		"guarantee the paper's quantified variant asks about. The EvenCycle scheme achieves a " +
		"positive fraction on single instances under view-collapsing port assignments, while " +
		"DegreeOne never does — matching 'hides everywhere' vs 'hides at one node'."
	return t
}
