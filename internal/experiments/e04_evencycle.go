package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E4EvenCycle reproduces Lemma 4.2 and Figs. 5/6: the anonymous EvenCycle
// scheme certifies even cycles by revealing a 2-edge-coloring; it is
// complete, strongly sound, and hiding, with the odd cycle of views found
// in the slice of V(D, 6) built from all yes-instances on C4 and C6.
func E4EvenCycle(ctx context.Context) Table {
	t := Table{
		ID:      "E4",
		Title:   "EvenCycle scheme (Lemma 4.2, Figs. 5-6)",
		Columns: []string{"check", "scope", "result"},
	}
	s := decoders.EvenCycle()

	for n := 4; n <= 14; n += 2 {
		if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(graph.MustCycle(n))); err != nil {
			t.Err = err
			return t
		}
	}
	t.AddRow("completeness", "C4..C14", "all accept")

	// Exhaustive strong soundness on C3 and C4 over the full 17-symbol
	// alphabet (16 well-formed certificates + garbage), searched in
	// labeling-prefix shards.
	shards, workers := parShardsWorkers()
	sc := scope().Named("E4")
	for _, n := range []int{3, 4} {
		inst := core.NewAnonymousInstance(graph.MustCycle(n))
		if err := core.ExhaustiveStrongSoundnessParallelCtx(ctx, sc, s.Decoder, s.Promise.Lang, inst, decoders.EvenCycleAlphabet(), shards, workers); err != nil {
			t.Err = err
			return t
		}
	}
	t.AddRow("strong soundness (exhaustive 17^n labelings)", "C3, C4", "no violation")

	rng := rand.New(rand.NewSource(2))
	alpha := decoders.EvenCycleAlphabet()
	gen := func(_ int, rng *rand.Rand) string { return alpha[rng.Intn(len(alpha))] }
	for _, g := range []*graph.Graph{graph.MustCycle(5), graph.MustCycle(7), graph.Petersen()} {
		if err := core.FuzzStrongSoundnessParallelScoped(sc, s.Decoder, s.Promise.Lang, core.NewAnonymousInstance(g), 500, rng, gen, workers); err != nil {
			t.Err = err
			return t
		}
	}
	t.AddRow("strong soundness (fuzz x500)", "C5, C7, Petersen", "no violation")

	family, err := decoders.EvenCycleFamily(4, 6)
	if err != nil {
		t.Err = err
		return t
	}
	ng, err := nbhd.BuildShardedCtx(ctx, sc, s.Decoder, nbhd.ShardedFromLabeled(family...), shards, workers)
	if err != nil {
		t.Err = err
		return t
	}
	cyc := ng.OddCycle()
	t.AddRow("V(D,6) size / edges / loops", fmt.Sprintf("%d yes-instances", len(family)),
		fmt.Sprintf("%d / %d / %d", ng.Size(), ng.EdgeCount(), ng.LoopCount()))
	if cyc == nil {
		t.Err = fmt.Errorf("no odd cycle found: hiding NOT reproduced")
		return t
	}
	t.AddRow("hiding (odd cycle in V(D,6), Lemma 3.2)", "all ports x both phases", fmt.Sprintf("odd cycle of length %d found", len(cyc)))
	t.Notes = "Paper (Fig. 6): an odd cycle exists in V(D,6) from two instances; measured: the " +
		"full yes-instance slice (every port assignment of C4 and C6, both 2-edge-coloring " +
		"phases) even contains SELF-LOOPED views — an odd closed walk of length 1: under " +
		"symmetric port assignments two adjacent nodes have identical views, the strongest " +
		"possible hiding witness (no decoder can ever split them). Unlike DegreeOne, the " +
		"coloring is hidden at EVERY node (see E12). Certificate size: constant 6 bits."
	return t
}
