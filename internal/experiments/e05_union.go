package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
)

// E5Union reproduces Theorem 1.1: one anonymous, one-round, constant-size
// scheme covering H1 ∪ H2, with completeness across both sub-classes and
// strong soundness under mixed adversarial labelings.
func E5Union(ctx context.Context) Table {
	t := Table{
		ID:      "E5",
		Title:   "Union scheme for H1 ∪ H2 (Theorem 1.1)",
		Columns: []string{"instance", "class", "all accept", "max cert bits"},
	}
	s := decoders.Union()
	corpus := []struct {
		name  string
		g     *graph.Graph
		class string
	}{
		{"P6", graph.Path(6), "H1 (δ=1)"},
		{"star K1,5", graph.Star(6), "H1 (δ=1)"},
		{"spider(2,3,4)", graph.Spider([]int{2, 3, 4}), "H1 (δ=1)"},
		{"C4+pendant", mustPendant(graph.MustCycle(4), 0), "H1 (δ=1)"},
		{"C6", graph.MustCycle(6), "H2 (even cycle)"},
		{"C12", graph.MustCycle(12), "H2 (even cycle)"},
	}
	for _, c := range corpus {
		inst := core.NewAnonymousInstance(c.g)
		labels, err := core.CheckCompleteness(s, inst)
		if err != nil {
			t.Err = err
			return t
		}
		t.AddRow(c.name, c.class, true, s.MaxLabelBits(labels))
	}

	rng := rand.New(rand.NewSource(3))
	cycleAlpha := decoders.EvenCycleAlphabet()
	gen := func(_ int, rng *rand.Rand) string {
		if rng.Intn(2) == 0 {
			return decoders.DegOneAlphabet()[rng.Intn(4)]
		}
		return cycleAlpha[rng.Intn(len(cycleAlpha))]
	}
	for _, g := range []*graph.Graph{graph.MustCycle(5), graph.Petersen(), graph.MustWatermelon([]int{2, 3})} {
		if err := core.FuzzStrongSoundness(s.Decoder, s.Promise.Lang, core.NewAnonymousInstance(g), 600, rng, gen); err != nil {
			t.Err = err
			return t
		}
	}
	t.Notes = "Paper: a single strong and hiding anonymous one-round LCP with constant-size " +
		"certificates exists for H1 ∪ H2; measured: completeness across both classes with " +
		"certificates of at most 6 bits, and no strong-soundness violation under 600 mixed " +
		"adversarial labelings per no-instance (C5, Petersen, odd theta). Hiding is inherited " +
		"from both parts (E3, E4); mixed accepting components are impossible because each " +
		"sub-format rejects the other's labels on its neighbors."
	return t
}

func mustPendant(g *graph.Graph, v int) *graph.Graph {
	h, err := graph.AttachPendant(g, v)
	if err != nil {
		panic(fmt.Sprintf("experiments: pendant: %v", err))
	}
	return h
}
