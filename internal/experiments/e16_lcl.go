package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/lcl"
)

// E16PromiseFreeLCL makes the paper's motivating application (Section 1)
// executable: the LCL Π = "3-color the certificate-valid region" is
// solvable on every input exactly when the certification scheme is
// strongly sound. The table runs the solver over honest, adversarial, and
// counterexample inputs.
func E16PromiseFreeLCL(ctx context.Context) Table {
	t := Table{
		ID:      "E16",
		Title:   "promise-free LCL Π (Section 1 motivation)",
		Columns: []string{"input", "decoder", "accepting nodes", "Π solvable"},
	}

	solve := func(d core.Decoder, l core.Labeled) (int, bool) {
		acc, err := core.AcceptingSet(d, l)
		if err != nil {
			t.Err = err
			return 0, false
		}
		sol, err := lcl.Solve(d, l)
		if err != nil {
			return len(acc), false
		}
		if err := lcl.Check(d, l, sol); err != nil {
			t.Err = fmt.Errorf("solver produced an invalid solution: %w", err)
			return len(acc), false
		}
		return len(acc), true
	}

	// Honest yes-instances across schemes.
	honest := []struct {
		s    core.Scheme
		name string
		g    *graph.Graph
		anon bool
	}{
		{decoders.DegreeOne(), "spider (honest)", graph.Spider([]int{2, 3, 2}), true},
		{decoders.EvenCycle(), "C10 (honest)", graph.MustCycle(10), true},
		{decoders.Watermelon(), "theta(2,4,2) (honest)", graph.MustWatermelon([]int{2, 4, 2}), false},
	}
	for _, h := range honest {
		var inst core.Instance
		if h.anon {
			inst = core.NewAnonymousInstance(h.g)
		} else {
			inst = core.NewInstance(h.g)
		}
		labels, err := h.s.Prover.Certify(inst)
		if err != nil {
			t.Err = err
			return t
		}
		acc, ok := solve(h.s.Decoder, core.MustNewLabeled(inst, labels))
		if t.Err != nil {
			return t
		}
		t.AddRow(h.name, h.s.Name, fmt.Sprintf("%d/%d", acc, h.g.N()), ok)
	}

	// Adversarial certificates on non-bipartite graphs: still solvable for
	// strongly sound decoders — 200 seeded trials summarized in one row.
	s := decoders.DegreeOne()
	rng := rand.New(rand.NewSource(99))
	solvable := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		g := graph.GNP(8, 0.35, rng)
		inst := core.NewAnonymousInstance(g)
		labels := make([]string, g.N())
		for v := range labels {
			labels[v] = decoders.DegOneAlphabet()[rng.Intn(4)]
		}
		if _, ok := solve(s.Decoder, core.MustNewLabeled(inst, labels)); ok {
			solvable++
		}
		if t.Err != nil {
			return t
		}
	}
	t.AddRow(fmt.Sprintf("%d adversarial GNP inputs", trials), s.Name, "varies", fmt.Sprintf("%d/%d", solvable, trials))

	// The strong-soundness counterexample: literal decoder breaks Π,
	// patched decoder restores it.
	cex := literalShatterCounterexample()
	accLit, okLit := solve(decoders.ShatterLiteral().Decoder, cex)
	if t.Err != nil {
		return t
	}
	t.AddRow("9-node counterexample", "shatter-literal", fmt.Sprintf("%d/9", accLit), okLit)
	accPat, okPat := solve(decoders.Shatter().Decoder, cex)
	if t.Err != nil {
		return t
	}
	t.AddRow("9-node counterexample", "shatter (patched)", fmt.Sprintf("%d/9", accPat), okPat)
	if okLit || !okPat {
		t.Err = fmt.Errorf("expected literal=unsolvable, patched=solvable; got %v, %v", okLit, okPat)
	}
	t.Notes = "Paper (Section 1): strong soundness is introduced so that the certificate-backed " +
		"3-coloring LCL is promise-free — valid regions are always 2-colorable, hence " +
		"3-colorable by an algorithm that never needs the promise. Measured: the solver " +
		"succeeds on every honest and adversarial input of the strongly sound schemes, fails " +
		"exactly on the literal shatter decoder's counterexample, and recovers under the patch."
	return t
}
