package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E3DegreeOne reproduces Lemma 4.1 and Figs. 3/4: the anonymous DegreeOne
// scheme is complete on the class H1, strongly sound under exhaustive
// adversarial labelings, and hiding — the exhaustive slice of V(D, 4)
// contains an odd cycle, found automatically.
func E3DegreeOne(ctx context.Context) Table {
	t := Table{
		ID:      "E3",
		Title:   "DegreeOne scheme (Lemma 4.1, Figs. 3-4)",
		Columns: []string{"check", "scope", "result"},
	}
	s := decoders.DegreeOne()

	// Completeness over the whole class up to n = 6.
	completeness := 0
	for n := 2; n <= 6; n++ {
		ok := true
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			if !g.IsBipartite() || g.MinDegree() != 1 {
				return true
			}
			completeness++
			if _, err := core.CheckCompleteness(s, core.NewAnonymousInstance(g.Clone())); err != nil {
				t.Err = err
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return t
		}
	}
	t.AddRow("completeness", fmt.Sprintf("%d connected bipartite δ=1 graphs, n<=6", completeness), "all accept")

	// Exhaustive strong soundness on every connected graph up to n = 4,
	// each 4^n labeling space searched in labeling-prefix shards.
	shards, workers := parShardsWorkers()
	sc := scope().Named("E3")
	checked := 0
	for n := 2; n <= 4; n++ {
		graph.EnumConnectedGraphs(n, func(g *graph.Graph) bool {
			checked++
			inst := core.NewAnonymousInstance(g.Clone())
			if err := core.ExhaustiveStrongSoundnessParallelCtx(ctx, sc, s.Decoder, s.Promise.Lang, inst, decoders.DegOneAlphabet(), shards, workers); err != nil {
				t.Err = err
				return false
			}
			return true
		})
	}
	if t.Err != nil {
		return t
	}
	t.AddRow("strong soundness (exhaustive 4^n labelings)", fmt.Sprintf("%d connected graphs, n<=4", checked), "no violation")

	rng := rand.New(rand.NewSource(1))
	gen := func(_ int, rng *rand.Rand) string { return decoders.DegOneAlphabet()[rng.Intn(4)] }
	for _, g := range []*graph.Graph{graph.Petersen(), graph.Complete(5)} {
		if err := core.FuzzStrongSoundnessParallelScoped(sc, s.Decoder, s.Promise.Lang, core.NewAnonymousInstance(g), 500, rng, gen, workers); err != nil {
			t.Err = err
			return t
		}
	}
	t.AddRow("strong soundness (fuzz x500)", "Petersen, K5", "no violation")

	// Hiding: exhaustive slice of V(D, 4), built shard-parallel.
	ng, err := nbhd.BuildShardedCtx(ctx, sc, s.Decoder, nbhd.ShardedAllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(4)...), shards, workers)
	if err != nil {
		t.Err = err
		return t
	}
	cyc := ng.OddCycle()
	t.AddRow("V(D,4) size / edges / loops", "", fmt.Sprintf("%d / %d / %d", ng.Size(), ng.EdgeCount(), ng.LoopCount()))
	if cyc == nil {
		t.Err = fmt.Errorf("no odd cycle found: hiding NOT reproduced")
		return t
	}
	t.AddRow("hiding (odd cycle in V(D,4), Lemma 3.2)", "exhaustive connected slice", fmt.Sprintf("odd cycle of length %d found", len(cyc)))
	t.Notes = "Paper (Fig. 4): an odd 5-cycle exists in V(D,4); measured: the exhaustive slice " +
		"contains odd cycles (the BFS detector reports one such cycle; its length may differ " +
		"from the paper's hand-drawn witness). Certificate size: constant 2 bits, matching " +
		"Theorem 1.1."
	return t
}
