package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/faults"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sim"
)

// E17Chaos runs the schemes through the fault-injected simulator under
// fixed seeded fault plans — one row per fault kind — and records the
// injected schedule alongside the degraded verdict profile. Every row is a
// deterministic replay: the table contents are a direct consequence of the
// (seed, plan) pairs below and are pinned in EXPERIMENTS.md, so any drift
// in the hash streams or scheduler decision points shows up as a golden
// diff here as well as in the sim package's trace tests.
//
// With cmd/experiments -faults/-crash/-seed, the configured plan replaces
// every row's pinned plan (an exploratory run; the golden comparison only
// applies to the default).
func E17Chaos(ctx context.Context) Table {
	t := Table{
		ID:      "E17",
		Title:   "fault injection and graceful degradation (chaos runs)",
		Columns: []string{"scheme", "instance", "fault plan", "messages", "faults injected", "accept", "reject", "crashed"},
	}
	runs := []struct {
		s    core.Scheme
		name string
		g    *graph.Graph
		anon bool
		plan faults.Plan
	}{
		{decoders.EvenCycle(), "C12", graph.MustCycle(12), true,
			faults.Plan{Seed: 1, Drop: 0.2}},
		{decoders.EvenCycle(), "C12", graph.MustCycle(12), true,
			faults.Plan{Seed: 2, Crashes: map[int]int{3: 0}}},
		{decoders.DegreeOne(), "spider(4,4,4)", graph.Spider([]int{4, 4, 4}), true,
			faults.Plan{Seed: 3, CorruptNodes: []int{2}}},
		{decoders.Trivial(2), "grid 4x4", graph.Grid(4, 4), true,
			faults.Plan{Seed: 4, Duplicate: 0.3, Reorder: true}},
		{decoders.Trivial(2), "grid 4x4", graph.Grid(4, 4), true,
			faults.Plan{Seed: 5, Delay: 0.4, MaxDelay: 2}},
		{decoders.Watermelon(), "watermelon 3x6", graph.MustWatermelon([]int{6, 6, 6}), false,
			faults.Plan{Seed: 6, Drop: 0.15, Crashes: map[int]int{1: 0}}},
	}
	override, active := configuredFaultPlan()
	for _, r := range runs {
		plan := r.plan
		if active {
			plan = override
		}
		var inst core.Instance
		if r.anon {
			inst = core.NewAnonymousInstance(r.g)
		} else {
			inst = core.NewInstance(r.g)
		}
		fr, err := sim.RunSchemeFaultsCtx(ctx, scope(), r.s, inst, plan)
		if err != nil {
			t.Err = fmt.Errorf("%s on %s: %w", r.s.Name, r.name, err)
			return t
		}
		accepted, rejected, crashed := fr.Counts()
		t.AddRow(r.s.Name, r.name, plan.String(), fr.Stats.Messages,
			fr.Faults.Summary(), accepted, rejected, crashed)
	}
	t.Notes = "Every fault decision is a pure function of (seed, round, edge), so each row is a " +
		"bit-identical replay — rerunning the suite reproduces this table exactly. Crashed nodes " +
		"go silent from their crash round on (crash-stop) and are excluded from the verdict vote; " +
		"duplication and reordering never change assembled views because knowledge merging is " +
		"commutative and idempotent, while drops and crashes truncate views and surface as " +
		"rejections wherever the thinned evidence no longer certifies the instance. All the " +
		"paper's decoders verify at radius 1, so every delayed copy overshoots the one-round " +
		"horizon and expires — at r=1 delay degenerates to drop, separately accounted."
	return t
}
