package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"hidinglcp/internal/cancel"
	"hidinglcp/internal/faults"
	"hidinglcp/internal/obs"
)

// parallelism holds the shard/worker counts the experiment drivers pass to
// the sharded search and construction primitives. Zero values select the
// library defaults (4 shards per worker, GOMAXPROCS workers). Every
// parallelized driver is bit-identical to its sequential run at any
// setting, so this only affects wall-clock time, never table contents.
var parallelism = struct {
	mu      sync.Mutex
	shards  int
	workers int
}{}

// SetParallelism configures the shard and worker counts used by the
// experiment drivers (cmd/experiments -shards/-workers).
func SetParallelism(shards, workers int) {
	parallelism.mu.Lock()
	defer parallelism.mu.Unlock()
	parallelism.shards = shards
	parallelism.workers = workers
}

func parShardsWorkers() (int, int) {
	parallelism.mu.Lock()
	defer parallelism.mu.Unlock()
	return parallelism.shards, parallelism.workers
}

// obsScope holds the observability scope the experiment drivers report
// into. The zero Scope (the default) makes every instrument call a no-op,
// and a live scope never changes table contents — only what is measured
// alongside them (pinned by cmd/experiments' golden test).
var obsScope = struct {
	mu sync.Mutex
	sc obs.Scope
}{}

// SetScope configures the observability scope used by the experiment
// drivers (cmd/experiments -metrics-json/-trace/-progress).
func SetScope(sc obs.Scope) {
	obsScope.mu.Lock()
	defer obsScope.mu.Unlock()
	obsScope.sc = sc
}

func scope() obs.Scope {
	obsScope.mu.Lock()
	defer obsScope.mu.Unlock()
	return obsScope.sc
}

// faultPlan holds the fault-injection plan the chaos experiment (E17)
// substitutes for its pinned per-row plans when the user passes
// cmd/experiments -faults/-crash/-seed. Unlike parallelism and the scope,
// an active plan DOES change table contents — deterministically per
// (seed, plan) — so the golden comparison against EXPERIMENTS.md only
// applies to the default (inactive) configuration.
var faultPlan = struct {
	mu   sync.Mutex
	plan faults.Plan
}{}

// SetFaultPlan configures the fault plan used by the chaos experiment
// drivers (cmd/experiments -faults/-crash/-seed).
func SetFaultPlan(p faults.Plan) {
	faultPlan.mu.Lock()
	defer faultPlan.mu.Unlock()
	faultPlan.plan = p
}

func configuredFaultPlan() (faults.Plan, bool) {
	faultPlan.mu.Lock()
	defer faultPlan.mu.Unlock()
	return faultPlan.plan, faultPlan.plan.Active()
}

// parallelEach runs fn(0..n-1) on the configured number of workers. fn must
// be safe for concurrent calls on distinct indices; any aggregation across
// indices is the caller's job and must be order-insensitive (or sorted
// afterwards) to keep experiment tables deterministic.
//
// When ctx fires, no further indices are claimed (items already running
// finish), the pool drains, and the error wraps context.Cause(ctx). A nil
// ctx is the never-cancelled context, and the return is then always nil.
func parallelEach(ctx context.Context, n int, fn func(i int)) error {
	_, workers := parShardsWorkers()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	defer scope().Counter("experiments.parallel_each.items").Add(int64(n))
	var aborted atomic.Bool
	release := cancel.Watch(ctx, &aborted)
	defer release()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if aborted.Load() {
				break
			}
			fn(i)
		}
		return cancel.Err(ctx, "experiment item sweep")
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || aborted.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return cancel.Err(ctx, "experiment item sweep")
}
