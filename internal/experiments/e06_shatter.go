package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
)

// E6Shatter reproduces Theorem 1.3 (and Lemma 7.1): the non-anonymous
// scheme for graphs with a shatter point, its O(min{Δ², n} + log n)
// certificate size across a sweep of instances, the P8/P7 hiding pair, and
// — as a reproduction finding — the strong-soundness counterexample to the
// brief announcement's literal decoder together with the patched decoder
// surviving it.
func E6Shatter(ctx context.Context) Table {
	t := Table{
		ID:      "E6",
		Title:   "Shatter scheme (Theorem 1.3, Lemma 7.1)",
		Columns: []string{"check", "scope", "result"},
	}
	s := decoders.Shatter()

	// Lemma 7.1 both directions, exhaustively on small graphs: a graph with
	// a shatter point v is bipartite iff conditions (1)-(3) hold at v.
	lemmaChecked := 0
	graph.EnumConnectedGraphs(5, func(g *graph.Graph) bool {
		v := graph.HasShatterPoint(g)
		if v < 0 {
			return true
		}
		lemmaChecked++
		if got, want := lemma71Conditions(g, v), g.IsBipartite(); got != want {
			t.Err = fmt.Errorf("Lemma 7.1 mismatch on %v at %d: conditions=%v bipartite=%v", g, v, got, want)
			return false
		}
		return true
	})
	if t.Err != nil {
		return t
	}
	t.AddRow("Lemma 7.1 characterization", fmt.Sprintf("%d shattered graphs, n<=5", lemmaChecked), "both directions hold")

	// Completeness + certificate size sweep.
	sizes := ""
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"P5", graph.Path(5)},
		{"P9", graph.Path(9)},
		{"spider(3,3,3)", graph.Spider([]int{3, 3, 3})},
		{"grid 3x3", graph.Grid(3, 3)},
		{"grid 4x5", graph.Grid(4, 5)},
		{"grid 5x6", graph.Grid(5, 6)},
	} {
		labels, err := core.CheckCompleteness(s, core.NewInstance(c.g))
		if err != nil {
			t.Err = err
			return t
		}
		sizes += fmt.Sprintf("%s(n=%d):%db ", c.name, c.g.N(), s.MaxLabelBits(labels))
	}
	t.AddRow("completeness + max cert bits", "shatter-point sweep", sizes)

	shards, workers := parShardsWorkers()
	sc := scope().Named("E6")
	rng := rand.New(rand.NewSource(4))
	gen := decoders.MalformedShatterLabels(12, 4)
	for _, g := range []*graph.Graph{graph.MustCycle(5), graph.Petersen(), graph.MustWatermelon([]int{2, 3})} {
		if err := core.FuzzStrongSoundnessParallelScoped(sc, s.Decoder, s.Promise.Lang, core.NewInstance(g), 800, rng, gen, workers); err != nil {
			t.Err = err
			return t
		}
	}
	t.AddRow("strong soundness (fuzz x800)", "C5, Petersen, odd theta", "no violation")

	// Hiding via the paper's P8/P7 pair.
	l1, l2 := decoders.ShatterHidingPair()
	ng, err := nbhd.BuildShardedCtx(ctx, sc, s.Decoder, nbhd.ShardedFromLabeled(l1, l2), shards, workers)
	if err != nil {
		t.Err = err
		return t
	}
	cyc := ng.OddCycle()
	if cyc == nil {
		t.Err = fmt.Errorf("no odd cycle from the P8/P7 pair")
		return t
	}
	t.AddRow("hiding (P8/P7 pair, Lemma 3.2)", "V(D,8) slice", fmt.Sprintf("odd cycle of length %d (paper: 13)", len(cyc)))

	// The reproduction finding: the literal decoder accepts an odd 7-cycle.
	lit := decoders.ShatterLiteral()
	cex := literalShatterCounterexample()
	err = core.CheckStrongSoundness(lit.Decoder, lit.Promise.Lang, cex)
	var violation *core.StrongSoundnessViolation
	if !errors.As(err, &violation) {
		t.Err = fmt.Errorf("literal decoder unexpectedly survived the counterexample: %v", err)
		return t
	}
	t.AddRow("literal decoder (paper's conditions)", "9-node counterexample", "STRONG SOUNDNESS VIOLATED (odd 7-cycle accepted)")
	if err := core.CheckStrongSoundness(s.Decoder, s.Promise.Lang, cex); err != nil {
		t.Err = fmt.Errorf("patched decoder failed the counterexample: %w", err)
		return t
	}
	t.AddRow("patched decoder (this library)", "same counterexample", "no violation")
	t.Notes = "Paper: strong and hiding one-round LCP with O(min{Δ²,n}+log n) bits; measured: " +
		"completeness, hiding (odd view-cycle from the paper's own instance pair), and the " +
		"claimed size shape. FINDING: the decoder conditions as written in the brief " +
		"announcement are not strongly sound — two accepting type-1 nodes may carry different " +
		"color vectors when the type-0 node rejects; anchoring the vector in the type-0 " +
		"certificate (and checking the type-0 neighbor's real identifier) repairs the proof " +
		"without affecting completeness, hiding, or the size bound."
	return t
}

// lemma71Conditions evaluates conditions (1)-(3) of Lemma 7.1 at v.
func lemma71Conditions(g *graph.Graph, v int) bool {
	// (1) N(v) independent.
	nbs := g.Neighbors(v)
	for i := 0; i < len(nbs); i++ {
		for j := i + 1; j < len(nbs); j++ {
			if g.HasEdge(nbs[i], nbs[j]) {
				return false
			}
		}
	}
	rest, orig := g.DeleteClosedNeighborhood(v)
	for _, comp := range rest.Components() {
		sub, subOrig := rest.InducedSubgraph(comp)
		// (2) each component bipartite.
		coloring, ok := sub.TwoColoring()
		if !ok {
			return false
		}
		// (3) N²(v) touches only one part of the component.
		facing := -1
		for si, ri := range subOrig {
			host := orig[ri]
			for _, u := range nbs {
				if g.HasEdge(host, u) {
					if facing == -1 {
						facing = coloring[si]
					} else if facing != coloring[si] {
						return false
					}
				}
			}
		}
	}
	return true
}

// literalShatterCounterexample mirrors the instance of
// decoders' TestShatterLiteralNotStronglySound.
func literalShatterCounterexample() core.Labeled {
	g := graph.MustFromEdges(9, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {5, 7}, {7, 8}, {8, 1},
	})
	inst := core.NewInstance(g)
	labels := []string{
		decoders.ShatterPointLabelLiteral(1),
		decoders.ShatterNeighborLabel(1, []int{0, 0}),
		decoders.ShatterCompLabel(1, 1, 0),
		decoders.ShatterCompLabel(1, 1, 1),
		decoders.ShatterCompLabel(1, 1, 0),
		decoders.ShatterNeighborLabel(1, []int{0, 1}),
		decoders.ShatterPointLabelLiteral(1),
		decoders.ShatterCompLabel(1, 2, 1),
		decoders.ShatterCompLabel(1, 2, 0),
	}
	return core.MustNewLabeled(inst, labels)
}
