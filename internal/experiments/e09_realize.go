package experiments

import (
	"context"
	"errors"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/forgetful"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/nbhd"
	"hidinglcp/internal/view"
)

// E9Realize demonstrates the Section 5 machinery end to end on an
// order-invariant strawman decoder ("accept iff the certificate says ok"):
// realizable anchor views assemble into a concrete instance G_bad
// (Lemma 5.1) whose accepted subgraph is an odd cycle, mechanically
// refuting strong soundness; plus the Fig. 8 escape-walk construction and
// its lift into the accepting neighborhood graph (Lemma 5.4), and the
// non-backtracking odd-walk search (Lemma 5.5).
func E9Realize(ctx context.Context) Table {
	t := Table{
		ID:      "E9",
		Title:   "realizability and G_bad (Lemmas 5.1-5.5, Fig. 8)",
		Columns: []string{"stage", "detail", "result"},
	}
	okDecoder := core.NewDecoder(1, false, func(mu *view.View) bool {
		return mu.Labels[view.Center] == "ok"
	})

	// Stage 1: anchors from three path yes-instances.
	hosts := []struct {
		ids graph.IDs
	}{
		{graph.IDs{2, 1, 3}},
		{graph.IDs{1, 2, 3}},
		{graph.IDs{1, 3, 2}},
	}
	var anchorsViews []*view.View
	for _, h := range hosts {
		g := graph.Path(3)
		inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: h.ids, NBound: 3}
		l := core.MustNewLabeled(inst, []string{"ok", "ok", "ok"})
		mu, err := l.ViewOf(1, 1)
		if err != nil {
			t.Err = err
			return t
		}
		anchorsViews = append(anchorsViews, mu)
	}
	anchors, err := forgetful.NewAnchors(anchorsViews...)
	if err != nil {
		t.Err = err
		return t
	}
	if err := forgetful.CheckRealizable(anchorsViews, anchors); err != nil {
		t.Err = err
		return t
	}
	t.AddRow("realizability (Sec. 5.1)", "3 path views, centers see the other two identifiers", "realizable")

	// Stage 2: G_bad assembly.
	gBad, nodeOf, err := forgetful.BuildGBad(anchors, 3)
	if err != nil {
		t.Err = err
		return t
	}
	t.AddRow("G_bad assembly (Lemma 5.1)", fmt.Sprintf("nodes=%d edges=%d", gBad.G.N(), gBad.G.M()),
		fmt.Sprintf("bipartite=%v", gBad.G.IsBipartite()))
	match, err := forgetful.VerifyRealization(gBad, nodeOf, anchors, 1)
	if err != nil {
		t.Err = err
		return t
	}
	matched := 0
	for _, ok := range match {
		if ok {
			matched++
		}
	}
	t.AddRow("realized views vs anchors", fmt.Sprintf("%d/%d exact", matched, len(match)),
		"far-end ports of radius-1 anchors may legitimately differ")

	// Stage 3: strong-soundness refutation.
	err = core.CheckStrongSoundness(okDecoder, core.TwoCol(), gBad)
	var violation *core.StrongSoundnessViolation
	if !errors.As(err, &violation) {
		t.Err = fmt.Errorf("G_bad did not refute the strawman decoder: %v", err)
		return t
	}
	t.AddRow("refutation", fmt.Sprintf("accepting set %v induces an odd cycle", violation.Accepting),
		"strong soundness violated mechanically")

	// Stage 4: Fig. 8 escape walk and its lift (Lemma 5.4).
	host := graph.MustCycle(12)
	walk, err := forgetful.EscapeWalk(host, 0, 1, 1)
	if err != nil {
		t.Err = err
		return t
	}
	labels := make([]string, 12)
	for i := range labels {
		labels[i] = "ok"
	}
	l := core.MustNewLabeled(core.NewInstance(host), labels)
	ng, err := nbhd.Build(okDecoder, nbhd.FromLabeled(l))
	if err != nil {
		t.Err = err
		return t
	}
	views, err := l.Views(1)
	if err != nil {
		t.Err = err
		return t
	}
	lifted, err := forgetful.LiftWalk(ng, views, walk, false)
	if err != nil {
		t.Err = err
		return t
	}
	t.AddRow("escape walk (Fig. 8) + lift (Lemma 5.4)",
		fmt.Sprintf("host C12, |walk|=%d edges, non-backtracking=%v", len(walk)-1, forgetful.IsNonBacktracking(walk)),
		fmt.Sprintf("lifted to %d views, even length=%v", len(lifted), (len(walk)-1)%2 == 0))

	// Stage 5: the non-backtracking odd-walk search (Lemma 5.5) on the
	// assembled G_bad's accepting views.
	ngBad, err := nbhd.Build(okDecoder, nbhd.FromLabeled(gBad))
	if err != nil {
		t.Err = err
		return t
	}
	odd := forgetful.FindOddClosedWalk(ngBad, 9, true)
	if odd == nil {
		t.Err = fmt.Errorf("no non-backtracking odd closed walk over G_bad's views")
		return t
	}
	t.AddRow("non-backtracking odd walk (Lemma 5.5)", "over G_bad's accepting views",
		fmt.Sprintf("found, %d edges", len(odd)-1))
	t.Notes = "Paper: realizable subgraphs of V(D,n) yield instances accepted wherever the " +
		"views prescribe (Lemma 5.1); measured: the pipeline refutes the strawman decoder " +
		"without ever constructing the counterexample by hand. This is the executable core of " +
		"Theorem 1.5's argument."
	return t
}
