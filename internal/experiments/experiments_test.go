package experiments

import (
	"strings"
	"testing"
)

// TestAllExperiments runs the full experiment suite and fails on any
// experiment error — this is the repository's one-shot reproduction check.
func TestAllExperiments(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table := r.Run(nil)
			if table.Err != nil {
				t.Fatalf("%s (%s): %v", r.ID, r.Name, table.Err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			out := table.Render()
			if !strings.Contains(out, table.ID) {
				t.Errorf("render missing ID header")
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{ID: "EX", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1, "x")
	tb.Notes = "note"
	out := tb.Render()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | x |", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRunnerIndexComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if ids[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		ids[r.ID] = true
	}
	if len(ids) != 17 {
		t.Errorf("got %d experiments, want 17", len(ids))
	}
}
