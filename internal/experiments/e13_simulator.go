package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/sim"
)

// E13Simulator runs the schemes as genuine synchronous message-passing
// computations (Section 2.2's model) and reports communication volumes. The
// simulator's views are verified against centralized extraction in the sim
// package's tests; here we record the cost profile.
func E13Simulator(ctx context.Context) Table {
	t := Table{
		ID:      "E13",
		Title:   "message-passing verification (Section 2.2 model)",
		Columns: []string{"scheme", "instance", "n", "rounds", "messages", "records", "all accept"},
	}
	runs := []struct {
		s    core.Scheme
		name string
		g    *graph.Graph
		anon bool
	}{
		{decoders.Trivial(2), "grid 6x6", graph.Grid(6, 6), true},
		{decoders.DegreeOne(), "spider(5,5,5)", graph.Spider([]int{5, 5, 5}), true},
		{decoders.EvenCycle(), "C30", graph.MustCycle(30), true},
		{decoders.Union(), "C24", graph.MustCycle(24), true},
		{decoders.Shatter(), "grid 5x5", graph.Grid(5, 5), false},
		{decoders.Watermelon(), "watermelon 4x8", graph.MustWatermelon([]int{8, 8, 8, 8}), false},
	}
	for _, r := range runs {
		var inst core.Instance
		if r.anon {
			inst = core.NewAnonymousInstance(r.g)
		} else {
			inst = core.NewInstance(r.g)
		}
		accept, stats, err := sim.RunScheme(r.s, inst)
		if err != nil {
			t.Err = fmt.Errorf("%s on %s: %w", r.s.Name, r.name, err)
			return t
		}
		all := true
		for _, ok := range accept {
			all = all && ok
		}
		t.AddRow(r.s.Name, r.name, r.g.N(), stats.Rounds, stats.Messages, stats.Records, all)
	}
	t.Notes = "One message per directed edge per round (2·m·r total), as the synchronous LOCAL " +
		"model prescribes; the records column counts flooded node records, a bandwidth proxy. " +
		"Goroutine-per-node and sequential scheduling produce identical views (property-tested); " +
		"their relative speed is measured by BenchmarkE13Simulator."
	return t
}
