package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/forgetful"
	"hidinglcp/internal/graph"
)

// E1Forgetful reproduces Fig. 1 and Lemma 2.1: it classifies a corpus of
// graph families by the r-forgetful property and confirms that every
// r-forgetful member has diameter at least 2r+1. The paper asserts the
// property "applies to a broad class of graphs, including (regular) grids
// and trees"; the exact-definition check shows that boundaries break it
// (finite grids fail at corners, trees fail at leaves) while toroidal grids
// and long cycles satisfy it — the graphs that matter for Theorem 1.2's
// hypothesis (bipartite, minimum degree >= 2, not a cycle, r-forgetful).
func E1Forgetful(ctx context.Context) Table {
	t := Table{
		ID:      "E1",
		Title:   "r-forgetfulness and Lemma 2.1 (Fig. 1)",
		Columns: []string{"graph", "n", "diam", "1-forgetful", "2-forgetful", "Lemma 2.1 ok"},
	}
	mustTorus := func(r, c int) *graph.Graph {
		g, err := graph.Torus(r, c)
		if err != nil {
			panic(fmt.Sprintf("experiments: torus %dx%d: %v", r, c, err))
		}
		return g
	}
	corpus := []struct {
		name string
		g    *graph.Graph
	}{
		{"C5", graph.MustCycle(5)},
		{"C7", graph.MustCycle(7)},
		{"C12", graph.MustCycle(12)},
		{"P8 (tree)", graph.Path(8)},
		{"binary tree depth 3", graph.CompleteBinaryTree(3)},
		{"grid 4x4", graph.Grid(4, 4)},
		{"grid 5x6", graph.Grid(5, 6)},
		{"torus 4x4", mustTorus(4, 4)},
		{"torus 6x6", mustTorus(6, 6)},
		{"torus 6x8", mustTorus(6, 8)},
		{"K5", graph.Complete(5)},
		{"Petersen", graph.Petersen()},
		{"theta(4,4,4)", graph.MustWatermelon([]int{4, 4, 4})},
	}
	for _, c := range corpus {
		f1, _, _ := forgetful.IsRForgetful(c.g, 1)
		f2, _, _ := forgetful.IsRForgetful(c.g, 2)
		lemmaOK := true
		for r := 1; r <= 2; r++ {
			if err := forgetful.CheckLemma21(c.g, r); err != nil {
				lemmaOK = false
			}
		}
		t.AddRow(c.name, c.g.N(), c.g.Diameter(), f1, f2, lemmaOK)
	}
	t.Notes = "Paper: r-forgetful graphs have diameter >= 2r+1 (Lemma 2.1); measured: " +
		"no violation in the corpus. The literal definition is unsatisfiable for r >= 2 " +
		"(the escape path's own nodes lie in N^r(u)); the table uses the minimal repair " +
		"documented on forgetful.EscapePath."
	return t
}
