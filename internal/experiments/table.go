// Package experiments regenerates every verifiable artifact of the paper —
// its constructions, counterexamples, and certificate-size claims — as
// structured result tables. Each experiment Exx corresponds to a row of the
// index in DESIGN.md; cmd/experiments prints them and the repository-root
// benchmarks time them.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"hidinglcp/internal/obs"
)

// Table is one experiment's result: a title, column headers, and rows of
// rendered cells.
type Table struct {
	// ID is the experiment identifier from DESIGN.md, e.g. "E3".
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes carries free-form commentary (deviations, caveats).
	Notes string
	// Err records a failure to run the experiment; a non-nil Err means the
	// table content is incomplete.
	Err error
}

// AddRow appends a row, rendering each cell with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as GitHub-flavored markdown.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Err != nil {
		fmt.Fprintf(&b, "**ERROR:** %v\n\n", t.Err)
	}
	if len(t.Columns) > 0 {
		b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
		sep := make([]string, len(t.Columns))
		for i := range sep {
			sep[i] = "---"
		}
		b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
	}
	if t.Notes != "" {
		b.WriteString("\n" + t.Notes + "\n")
	}
	return b.String()
}

// Runner is one experiment entry point. Run receives the job's context; a
// nil ctx is the never-cancelled context (internal/cancel), which is what
// the tests and benchmarks pass. A cancelled run returns a Table whose Err
// wraps the context's cause — partial rows are dropped, never published.
type Runner struct {
	ID   string
	Name string
	Run  func(ctx context.Context) Table
}

// All returns every experiment in index order. Each runner is wrapped with
// the package scope's instrumentation: a span per experiment, a duration
// histogram, and completed/failed counters. With the default zero scope the
// wrapper is a no-op and table contents are identical either way.
func All() []Runner {
	rs := allRunners()
	for i := range rs {
		rs[i].Run = instrumentRunner(rs[i].ID, rs[i].Name, rs[i].Run)
	}
	return rs
}

func instrumentRunner(id, name string, run func(context.Context) Table) func(context.Context) Table {
	return func(ctx context.Context) Table {
		sc := scope()
		start := obs.Now()
		span := sc.Span("experiment." + id)
		span.SetAttr("name", name)
		t := run(ctx)
		span.End()
		sc.Histogram("experiments.duration_ns").Observe(obs.Since(start))
		if t.Err != nil {
			sc.Counter("experiments.failed").Inc()
		} else {
			sc.Counter("experiments.completed").Inc()
		}
		return t
	}
}

func allRunners() []Runner {
	return []Runner{
		{"E1", "r-forgetfulness and Lemma 2.1", E1Forgetful},
		{"E2", "views and compatibility (Fig. 2)", E2Views},
		{"E3", "DegreeOne scheme (Lemma 4.1, Figs. 3-4)", E3DegreeOne},
		{"E4", "EvenCycle scheme (Lemma 4.2, Figs. 5-6)", E4EvenCycle},
		{"E5", "Union scheme (Theorem 1.1)", E5Union},
		{"E6", "Shatter scheme (Theorem 1.3)", E6Shatter},
		{"E7", "Watermelon scheme (Theorem 1.4)", E7Watermelon},
		{"E8", "extraction decoder (Lemma 3.2)", E8Extraction},
		{"E9", "realizability pipeline (Lemmas 5.1-5.5)", E9Realize},
		{"E10", "Ramsey and order invariance (Lemmas 6.1-6.2)", E10Ramsey},
		{"E11", "impossibility slice (Theorem 6.3)", E11Impossibility},
		{"E12", "hidden-fraction metric (Section 2.4)", E12HiddenFraction},
		{"E13", "message-passing simulator (Section 2.2)", E13Simulator},
		{"E14", "certificate-size comparison (baseline)", E14Baseline},
		{"E15", "k-coloring generalization (extension)", E15KColoring},
		{"E16", "promise-free LCL application (Section 1)", E16PromiseFreeLCL},
		{"E17", "fault injection and graceful degradation", E17Chaos},
	}
}
