package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
)

// E2Views reproduces Fig. 2 and the Section 3 definitions: the radius-r
// view truncates edges between two distance-r nodes (the paper's "edge
// between nodes 1 and 4 is not visible"), and every edge of a labeled
// instance connects yes-instance-compatible views. The table counts, per
// family and radius, how many of the instance's edges are invisible from at
// least one endpoint's view center... precisely: how many frontier-frontier
// pairs each node's view hides.
func E2Views(ctx context.Context) Table {
	t := Table{
		ID:      "E2",
		Title:   "view truncation and compatibility (Fig. 2)",
		Columns: []string{"graph", "r", "avg view size", "hidden edges per view", "distinct views (anon)"},
	}
	corpus := []struct {
		name string
		g    *graph.Graph
	}{
		{"C5", graph.MustCycle(5)},
		{"C8", graph.MustCycle(8)},
		{"grid 3x4", graph.Grid(3, 4)},
		{"Petersen", graph.Petersen()},
		{"theta(2,3,4)", graph.MustWatermelon([]int{2, 3, 4})},
	}
	for _, c := range corpus {
		for r := 1; r <= 2; r++ {
			l := core.MustNewLabeled(core.NewInstance(c.g), make([]string, c.g.N()))
			views, err := l.Views(r)
			if err != nil {
				t.Err = err
				return t
			}
			totalSize, hidden := 0, 0
			distinct := make(map[string]bool)
			for v, mu := range views {
				totalSize += mu.N()
				distinct[mu.Anonymize().Key()] = true
				// Count host edges inside the ball that the view omits.
				ball := c.g.Ball(v, r)
				inBall := make(map[int]bool, len(ball))
				for _, w := range ball {
					inBall[w] = true
				}
				ballEdges := 0
				for _, e := range c.g.Edges() {
					if inBall[e[0]] && inBall[e[1]] {
						ballEdges++
					}
				}
				visible := len(mu.Ports) / 2
				hidden += ballEdges - visible
			}
			n := c.g.N()
			t.AddRow(c.name, r,
				fmt.Sprintf("%.2f", float64(totalSize)/float64(n)),
				fmt.Sprintf("%.2f", float64(hidden)/float64(n)),
				len(distinct))
		}
	}
	t.Notes = "Paper: G_v^r contains the full structure up to r-1 hops but no edges between " +
		"nodes both at distance r (Fig. 2); measured: every hidden edge is a frontier-frontier " +
		"pair, checked structurally by the view package's tests."
	return t
}
