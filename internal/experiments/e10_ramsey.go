package experiments

import (
	"context"
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/orderinv"
	"hidinglcp/internal/view"
)

// E10Ramsey reproduces the Section 6 machinery: the finite Ramsey instance
// R(3,3) = 6 (Lemma 6.1's smallest classical case) and the Lemma 6.2
// reduction turning an identifier-value-dependent decoder into an
// order-invariant one that agrees with it on a monochromatic identifier
// universe.
func E10Ramsey(ctx context.Context) Table {
	t := Table{
		ID:      "E10",
		Title:   "Ramsey and the order-invariance reduction (Lemmas 6.1-6.2)",
		Columns: []string{"stage", "detail", "result"},
	}
	if err := orderinv.VerifyRamsey33(); err != nil {
		t.Err = err
		return t
	}
	t.AddRow("Lemma 6.1 finite slice", "all 2^15 edge 2-colorings of K6 + pentagon witness on K5", "R(3,3) = 6 verified")

	catalog, err := orderinv.PathTemplates(3, []string{"", "", ""}, 1)
	if err != nil {
		t.Err = err
		return t
	}
	parity := core.NewDecoder(1, false, func(mu *view.View) bool {
		return mu.IDs[view.Center]%2 == 0
	})
	universe := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	mono, typ, err := orderinv.MonochromaticIDs(parity, catalog, universe, 5)
	if err != nil {
		t.Err = err
		return t
	}
	t.AddRow("monochromatic identifier set", fmt.Sprintf("universe [1,12], catalog of %d templates", len(catalog)),
		fmt.Sprintf("Y = %v, type %q", mono, typ))

	dPrime := orderinv.OrderInvariantify(parity, mono)
	inst := core.NewInstance(graph.Path(3))
	l := core.MustNewLabeled(inst, []string{"", "", ""})
	idSets := []graph.IDs{{1, 2, 3}, {10, 20, 30}, {5, 7, 11}, {2, 1, 3}}
	errOriginal := core.CheckOrderInvariant(parity, l, idSets, 40)
	errPrime := core.CheckOrderInvariant(dPrime, l, idSets, 40)
	t.AddRow("order invariance", "parity decoder vs reduced D'",
		fmt.Sprintf("original violates: %v; D' violates: %v", errOriginal != nil, errPrime != nil))
	if errPrime != nil {
		t.Err = errPrime
		return t
	}

	agree := l
	agree.IDs = graph.IDs{mono[0], mono[1], mono[2]}
	agree.NBound = mono[len(mono)-1]
	outD, err := core.Run(parity, agree)
	if err != nil {
		t.Err = err
		return t
	}
	outP, err := core.Run(dPrime, agree)
	if err != nil {
		t.Err = err
		return t
	}
	same := true
	for v := range outD {
		if outD[v] != outP[v] {
			same = false
		}
	}
	t.AddRow("agreement on monochromatic instances", fmt.Sprintf("identifiers %v", agree.IDs),
		fmt.Sprintf("D = D' at every node: %v", same))
	t.Notes = "Paper (Lemma 6.2): constant-size certificates admit finitely many types, Ramsey " +
		"gives an infinite monochromatic identifier set, and relabeling order-preservingly into " +
		"it yields an order-invariant decoder. Measured: the finite search finds the " +
		"monochromatic set (the single-parity identifiers, as expected for the parity decoder), " +
		"and the reduced decoder is order-invariant while agreeing with the original on the set."
	return t
}
