// Package benchjson parses `go test -bench` output into a stable JSON
// snapshot schema and renders benchstat-style comparisons between two
// snapshots. It exists so benchmark evidence can be committed alongside
// performance work and re-checked mechanically in CI.
package benchjson

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is a dated set of benchmark results plus the run environment.
type Snapshot struct {
	Date       string      `json:"date"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output (one or more packages) into a
// Snapshot stamped with date. Lines that are not benchmark results or
// recognized headers are ignored, so the full `go test` output can be piped
// in unfiltered.
func Parse(output, date string) (*Snapshot, error) {
	snap := &Snapshot{Date: date}
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			if snap.Pkg == "" {
				snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   	  1000	 1234 ns/op	 56 B/op	 7 allocs/op
//
// Reported metrics beyond the iteration count are positional value/unit
// pairs; only ns/op, B/op, and allocs/op are retained.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so snapshots from different machines
	// compare by benchmark identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // e.g. "BenchmarkFoo	--- FAIL"
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		}
	}
	return b, true, nil
}

// WriteComparison renders a benchstat-style note comparing two snapshots:
// one line per benchmark present in both, with old, new, and the ratio for
// ns/op and allocs/op. Ratios above 1.0 on ns/op are regressions.
func WriteComparison(w io.Writer, old, cur *Snapshot) error {
	index := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		index[b.Name] = b
	}
	fmt.Fprintf(w, "benchmark comparison: %s -> %s\n", old.Date, cur.Date)
	fmt.Fprintf(w, "%-40s %14s %14s %8s %12s %12s %8s\n",
		"name", "ns/op(old)", "ns/op(new)", "ratio", "allocs(old)", "allocs(new)", "ratio")
	matched := 0
	for _, b := range cur.Benchmarks {
		o, ok := index[b.Name]
		if !ok {
			continue
		}
		matched++
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %8s %12.0f %12.0f %8s\n",
			b.Name, o.NsPerOp, b.NsPerOp, ratio(b.NsPerOp, o.NsPerOp),
			o.AllocsPerOp, b.AllocsPerOp, ratio(b.AllocsPerOp, o.AllocsPerOp))
	}
	if matched == 0 {
		return fmt.Errorf("no common benchmarks between snapshots")
	}
	return nil
}

func ratio(cur, old float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", cur/old)
}
