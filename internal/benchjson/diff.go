package benchjson

import (
	"fmt"
	"io"
)

// Limits bounds the acceptable new/old ratio per metric for one benchmark.
// A zero field means "no limit for this metric" (or, inside a per-benchmark
// override, "inherit the default"). Ratios above the limit are regressions.
type Limits struct {
	NsRatio     float64 `json:"ns_ratio,omitempty"`
	BytesRatio  float64 `json:"bytes_ratio,omitempty"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

// Thresholds is a regression policy: default limits plus per-benchmark
// overrides (matched by exact benchmark name, -GOMAXPROCS suffix stripped).
type Thresholds struct {
	Default  Limits            `json:"default"`
	PerBench map[string]Limits `json:"per_benchmark,omitempty"`
}

// DefaultThresholds returns the policy used when no thresholds file is
// given: wall time is checked loosely (CI machines are noisy), bytes/op
// moderately, and allocs/op tightly — allocation counts are deterministic,
// so any growth there is a real code change.
func DefaultThresholds() Thresholds {
	return Thresholds{Default: Limits{NsRatio: 1.5, BytesRatio: 1.15, AllocsRatio: 1.05}}
}

// limitsFor resolves the effective limits for one benchmark: per-benchmark
// fields override the default field-wise; zero fields inherit.
func (t Thresholds) limitsFor(name string) Limits {
	l := t.Default
	if o, ok := t.PerBench[name]; ok {
		if o.NsRatio != 0 {
			l.NsRatio = o.NsRatio
		}
		if o.BytesRatio != 0 {
			l.BytesRatio = o.BytesRatio
		}
		if o.AllocsRatio != 0 {
			l.AllocsRatio = o.AllocsRatio
		}
	}
	return l
}

// Regression is one exceeded limit (or a benchmark that vanished from the
// new snapshot, reported with Metric "missing").
type Regression struct {
	Name   string
	Metric string // "ns/op", "B/op", "allocs/op", or "missing"
	Old    float64
	New    float64
	Ratio  float64
	Limit  float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but missing from new snapshot", r.Name)
	}
	return fmt.Sprintf("%s %s: %.0f -> %.0f (%.2fx > limit %.2fx)",
		r.Name, r.Metric, r.Old, r.New, r.Ratio, r.Limit)
}

// Diff compares cur against the old baseline under the thresholds, writes a
// per-benchmark report to w, and returns every regression found. Benchmarks
// only in cur are reported as new and never regress; benchmarks only in old
// regress with Metric "missing", so a gate cannot pass by deleting its
// benchmark.
func Diff(w io.Writer, old, cur *Snapshot, th Thresholds) ([]Regression, error) {
	curIndex := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curIndex[b.Name] = b
	}
	var regs []Regression
	fmt.Fprintf(w, "benchmark diff: %s -> %s\n", old.Date, cur.Date)
	fmt.Fprintf(w, "%-44s %-10s %14s %14s %8s %8s  %s\n",
		"name", "metric", "old", "new", "ratio", "limit", "verdict")
	matched := 0
	for _, o := range old.Benchmarks {
		b, ok := curIndex[o.Name]
		if !ok {
			regs = append(regs, Regression{Name: o.Name, Metric: "missing"})
			fmt.Fprintf(w, "%-44s %-10s %14s %14s %8s %8s  REGRESS (missing)\n",
				o.Name, "-", "-", "-", "-", "-")
			continue
		}
		matched++
		lim := th.limitsFor(o.Name)
		for _, m := range []struct {
			metric   string
			old, new float64
			limit    float64
		}{
			{"ns/op", o.NsPerOp, b.NsPerOp, lim.NsRatio},
			{"B/op", o.BytesPerOp, b.BytesPerOp, lim.BytesRatio},
			{"allocs/op", o.AllocsPerOp, b.AllocsPerOp, lim.AllocsRatio},
		} {
			if m.limit == 0 {
				continue
			}
			r, verdict := 0.0, "ok"
			switch {
			case m.old == 0 && m.new == 0:
				// Metric not reported on either side (e.g. no -benchmem).
				continue
			case m.old == 0:
				r, verdict = 0, "ok (no baseline)"
			default:
				r = m.new / m.old
				if r > m.limit {
					verdict = "REGRESS"
					regs = append(regs, Regression{
						Name: o.Name, Metric: m.metric,
						Old: m.old, New: m.new, Ratio: r, Limit: m.limit,
					})
				}
			}
			fmt.Fprintf(w, "%-44s %-10s %14.0f %14.0f %8.2f %8.2f  %s\n",
				o.Name, m.metric, m.old, m.new, r, m.limit, verdict)
		}
	}
	for _, b := range cur.Benchmarks {
		found := false
		for _, o := range old.Benchmarks {
			if o.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-44s %-10s %14s %14s %8s %8s  new (no baseline)\n",
				b.Name, "-", "-", "-", "-", "-")
		}
	}
	if matched == 0 && len(regs) == 0 {
		return nil, fmt.Errorf("no common benchmarks between snapshots")
	}
	return regs, nil
}
