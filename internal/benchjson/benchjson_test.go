package benchjson

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hidinglcp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE3DegreeOne      	       2	 102806824 ns/op	71563188 B/op	 1738803 allocs/op
BenchmarkViewExtract-8 	     500	      4687 ns/op	    3548 B/op	      16 allocs/op
BenchmarkViewKey/with-ids   	     200	      6437 ns/op	    4800 B/op	      30 allocs/op
BenchmarkNoMem 	    1000	       123 ns/op
PASS
ok  	hidinglcp	1.288s
`

func TestParse(t *testing.T) {
	snap, err := Parse(sample, "2026-08-06")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.Pkg != "hidinglcp" {
		t.Fatalf("bad header: %+v", snap)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	byName := map[string]Benchmark{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	e3 := byName["BenchmarkE3DegreeOne"]
	if e3.Iterations != 2 || e3.NsPerOp != 102806824 || e3.AllocsPerOp != 1738803 {
		t.Fatalf("E3 parsed wrong: %+v", e3)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := byName["BenchmarkViewExtract"]; !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", byName)
	}
	if sub, ok := byName["BenchmarkViewKey/with-ids"]; !ok || sub.NsPerOp != 6437 {
		t.Fatalf("sub-benchmark parsed wrong: %+v", sub)
	}
	if nm := byName["BenchmarkNoMem"]; nm.NsPerOp != 123 || nm.AllocsPerOp != 0 {
		t.Fatalf("plain bench parsed wrong: %+v", nm)
	}
	// Deterministic order.
	for i := 1; i < len(snap.Benchmarks); i++ {
		if snap.Benchmarks[i-1].Name > snap.Benchmarks[i].Name {
			t.Fatal("benchmarks not sorted by name")
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse("PASS\nok x 0.1s\n", "d"); err == nil {
		t.Fatal("expected error on output with no benchmarks")
	}
}

func TestWriteComparison(t *testing.T) {
	old, err := Parse(sample, "old")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Parse(strings.ReplaceAll(sample, "102806824", "51403412"), "new")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteComparison(&sb, old, cur); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "BenchmarkE3DegreeOne") || !strings.Contains(out, "0.50x") {
		t.Fatalf("comparison missing ratio line:\n%s", out)
	}
	if !strings.Contains(out, "old -> new") {
		t.Fatalf("comparison missing header:\n%s", out)
	}
}

func TestWriteComparisonDisjoint(t *testing.T) {
	old, _ := Parse("BenchmarkA 1 5 ns/op\n", "o")
	cur, _ := Parse("BenchmarkB 1 5 ns/op\n", "n")
	var sb strings.Builder
	if err := WriteComparison(&sb, old, cur); err == nil {
		t.Fatal("expected error for disjoint snapshots")
	}
}
