package benchjson

import (
	"strings"
	"testing"
)

func diffSnap(date string, bs ...Benchmark) *Snapshot {
	return &Snapshot{Date: date, Benchmarks: bs}
}

func TestDiffNoRegressions(t *testing.T) {
	old := diffSnap("old",
		Benchmark{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 100},
	)
	cur := diffSnap("new",
		Benchmark{Name: "BenchmarkA", NsPerOp: 900, BytesPerOp: 4000, AllocsPerOp: 90},
	)
	var sb strings.Builder
	regs, err := Diff(&sb, old, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
	if !strings.Contains(sb.String(), "ok") {
		t.Errorf("report missing ok verdicts:\n%s", sb.String())
	}
}

func TestDiffCatchesRegressions(t *testing.T) {
	old := diffSnap("old",
		Benchmark{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 100},
	)
	cur := diffSnap("new",
		Benchmark{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 120},
	)
	var sb strings.Builder
	regs, err := Diff(&sb, old, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %v, want one allocs/op regression", regs)
	}
	if regs[0].Ratio < 1.19 || regs[0].Ratio > 1.21 {
		t.Errorf("ratio = %.3f, want 1.2", regs[0].Ratio)
	}
	if !strings.Contains(regs[0].String(), "allocs/op") {
		t.Errorf("regression string %q does not name the metric", regs[0].String())
	}
}

func TestDiffPerBenchmarkOverride(t *testing.T) {
	old := diffSnap("old",
		Benchmark{Name: "BenchmarkNoisy", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkTight", NsPerOp: 1000, AllocsPerOp: 100},
	)
	cur := diffSnap("new",
		Benchmark{Name: "BenchmarkNoisy", NsPerOp: 1000, AllocsPerOp: 150},
		Benchmark{Name: "BenchmarkTight", NsPerOp: 1000, AllocsPerOp: 101},
	)
	th := DefaultThresholds()
	th.PerBench = map[string]Limits{
		"BenchmarkNoisy": {AllocsRatio: 2.0},   // loosened: 1.5x passes
		"BenchmarkTight": {AllocsRatio: 1.001}, // tightened: +1% fails
	}
	var sb strings.Builder
	regs, err := Diff(&sb, old, cur, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkTight" {
		t.Fatalf("regressions = %v, want exactly BenchmarkTight", regs)
	}
}

func TestDiffMissingBenchmarkRegresses(t *testing.T) {
	old := diffSnap("old",
		Benchmark{Name: "BenchmarkGone", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkKept", NsPerOp: 1000, AllocsPerOp: 100},
	)
	cur := diffSnap("new",
		Benchmark{Name: "BenchmarkKept", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkAdded", NsPerOp: 1, AllocsPerOp: 1},
	)
	var sb strings.Builder
	regs, err := Diff(&sb, old, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Name != "BenchmarkGone" {
		t.Fatalf("regressions = %v, want BenchmarkGone missing", regs)
	}
	if !strings.Contains(sb.String(), "new (no baseline)") {
		t.Errorf("report does not mark the added benchmark:\n%s", sb.String())
	}
}

func TestDiffZeroLimitDisablesMetric(t *testing.T) {
	old := diffSnap("old", Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10})
	cur := diffSnap("new", Benchmark{Name: "BenchmarkA", NsPerOp: 10000, AllocsPerOp: 10})
	var sb strings.Builder
	regs, err := Diff(&sb, old, cur, Thresholds{Default: Limits{AllocsRatio: 1.05}})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("ns/op checked despite zero limit: %v", regs)
	}
}

func TestDiffNoCommonBenchmarks(t *testing.T) {
	old := diffSnap("old")
	cur := diffSnap("new", Benchmark{Name: "BenchmarkA"})
	var sb strings.Builder
	if _, err := Diff(&sb, old, cur, DefaultThresholds()); err == nil {
		t.Error("expected an error for disjoint snapshots")
	}
}

func TestLimitsForInheritance(t *testing.T) {
	th := Thresholds{
		Default:  Limits{NsRatio: 1.5, BytesRatio: 1.2, AllocsRatio: 1.1},
		PerBench: map[string]Limits{"BenchmarkA": {BytesRatio: 3.0}},
	}
	l := th.limitsFor("BenchmarkA")
	if l.NsRatio != 1.5 || l.BytesRatio != 3.0 || l.AllocsRatio != 1.1 {
		t.Errorf("limitsFor override/inherit mismatch: %+v", l)
	}
	if l := th.limitsFor("BenchmarkB"); l != th.Default {
		t.Errorf("unlisted benchmark does not inherit defaults: %+v", l)
	}
}
