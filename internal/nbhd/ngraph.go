// Package nbhd implements the accepting neighborhood graph V(D, n) of
// Section 3 of the paper and the hiding characterization of Lemma 3.2.
//
// The node set of V(D, n) is AViews(D, n): every view that D accepts in some
// labeled yes-instance. Two views are joined by an edge iff they are
// yes-instance-compatible: some labeled yes-instance has an edge {u, v} with
// view(u) = μ1 and view(v) = μ2 (the witnessing instance need not accept at
// u or v — membership in AViews may be witnessed elsewhere). Adjacent nodes
// with identical views yield a self-loop, which the paper's graph model
// permits; a looped view makes V(D, n) non-k-colorable for every k.
//
// Lemma 3.1 constructs V(D, n) by enumerating all labeled yes-instances of
// size at most n. We parametrize the construction by an instance enumerator
// so that the promise classes of the paper (even cycles, minimum degree one,
// shatter point, watermelon) can each supply their own family. Finding an
// odd cycle among the enumerated slice proves hiding (the slice is a
// subgraph of the true V(D, n)); concluding NOT hiding requires the
// enumerator to be exhaustive for the class, which we only do on micro
// universes.
package nbhd

import (
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// Enumerator yields labeled yes-instances. Enumeration stops early when
// yield returns false.
type Enumerator func(yield func(core.Labeled) bool) error

// NGraph is (a slice of) the accepting neighborhood graph V(D, n).
type NGraph struct {
	views []*view.View   // views[i] is a representative of node i
	index map[string]int // canonical view key -> node index
	in    *view.Interner // the build's interner, for handle-based probes
	hidx  []int          // interner handle -> node index, -1 if not accepting
	g     *graph.Graph   // loop-free compatibility edges
	loops map[int]bool   // views adjacent to themselves in some yes-instance
}

// Build runs the Lemma 3.1 construction over the instances produced by
// enum, using decoder d to determine acceptance. Views are anonymized before
// keying iff d is anonymous.
//
// Internally Build runs on the canonical-key fast path (binary interned
// keys, handle-indexed dedupe tables, memoized decoder, template-cached
// extraction — see builder); the output is bit-identical to the historical
// string-keyed construction, with nodes in canonical key-sorted order.
func Build(d core.Decoder, enum Enumerator) (*NGraph, error) {
	in := view.NewInterner()
	md := core.NewMemoDecoder(d, in)
	b := newBuilder(d, md, in, "nbhd.Build")
	err := enum(func(l core.Labeled) bool {
		b.absorb(l)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("enumerating instances: %w", err)
	}
	accepting, loops, edges := mergeBuilders([]*builder{b})
	return assemble(in, accepting, loops, edges)
}

// Size returns the number of accepting views (nodes of V(D, n)).
func (ng *NGraph) Size() int { return len(ng.views) }

// EdgeCount returns the number of loop-free compatibility edges.
func (ng *NGraph) EdgeCount() int { return ng.g.M() }

// LoopCount returns the number of self-looped views.
func (ng *NGraph) LoopCount() int { return len(ng.loops) }

// ViewAt returns the representative view of node i.
func (ng *NGraph) ViewAt(i int) *view.View { return ng.views[i] }

// IndexOf returns the node index of the view with the given canonical key,
// or -1 if the view is not an accepting view of the slice.
func (ng *NGraph) IndexOf(key string) int {
	if i, ok := ng.index[key]; ok {
		return i
	}
	return -1
}

// IndexOfView returns the node index of mu's view class, or -1 if mu is not
// an accepting view of the slice. It resolves through the build's interner
// handle — one binary-key probe of the striped intern table, then a dense
// handle→index slice — which is both cheaper than a dedicated key→index map
// and free of the per-node string-cast copies the old map cost at assembly;
// callers on the hot path (the Lemma 3.2 extraction decoder, the
// forgetfulness walks) use it instead of IndexOf(mu.Key()).
func (ng *NGraph) IndexOfView(mu *view.View) int {
	if ng.in == nil {
		return -1
	}
	if h, ok := ng.in.Lookup(mu); ok && int(h) < len(ng.hidx) {
		return ng.hidx[h]
	}
	return -1
}

// Graph exposes the loop-free part of the compatibility graph.
func (ng *NGraph) Graph() *graph.Graph { return ng.g }

// HasLoop reports whether node i carries a self-loop.
func (ng *NGraph) HasLoop(i int) bool { return ng.loops[i] }

// IsKColorable reports whether V(D, n) is k-colorable. Any self-loop makes
// the graph non-colorable.
func (ng *NGraph) IsKColorable(k int) bool {
	if len(ng.loops) > 0 {
		return false
	}
	return ng.g.IsKColorable(k)
}

// KColoring returns a proper k-coloring of V(D, n) if one exists. The
// coloring is deterministic (first found by ordered backtracking), matching
// the canonical coloring used by the extraction decoder of Lemma 3.2.
func (ng *NGraph) KColoring(k int) ([]int, bool) {
	if len(ng.loops) > 0 {
		return nil, false
	}
	return ng.g.KColoring(k)
}

// OddCycle returns the node indices of an odd cycle of V(D, n): either a
// single self-looped view (length-1 odd closed walk) or an odd cycle of the
// loop-free part. It returns nil if V(D, n) is bipartite, which by
// Lemma 3.2 means the decoder is not hiding at this n (for an exhaustive
// enumerator).
func (ng *NGraph) OddCycle() []int {
	for i := 0; i < ng.Size(); i++ {
		if ng.loops[i] {
			return []int{i}
		}
	}
	return ng.g.OddCycle()
}

// Hiding applies the Lemma 3.2 characterization for 2-coloring on this
// slice: the decoder is hiding if the slice contains an odd cycle. A nil
// cycle only implies "not hiding" when the enumerator was exhaustive.
func (ng *NGraph) Hiding() bool {
	return ng.OddCycle() != nil
}
