package nbhd

import (
	"sort"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// referenceBuild is the historical string-keyed Lemma 3.1 construction,
// retained here verbatim in spirit as the differential oracle for the
// interned fast path: per-view extraction, per-occurrence decoding, and
// map[string] dedupe tables keyed by the legacy canonical key.
func referenceBuild(t *testing.T, d core.Decoder, enum Enumerator) (keys []string, edges map[[2]string]bool, loops map[string]bool) {
	t.Helper()
	accepting := map[string]bool{}
	views := map[string]*view.View{}
	edges = map[[2]string]bool{}
	loops = map[string]bool{}
	err := enum(func(l core.Labeled) bool {
		n := l.G.N()
		nodeKey := make([]string, n)
		for v := 0; v < n; v++ {
			mu, err := view.Extract(l.G, l.Prt, l.IDs, l.Labels, l.NBound, v, d.Rounds())
			if err != nil {
				t.Fatalf("reference extraction: %v", err)
			}
			if d.Anonymous() {
				mu = mu.Anonymize()
			}
			k := mu.Key()
			nodeKey[v] = k
			if _, ok := views[k]; !ok {
				views[k] = mu
			}
			if d.Decide(mu) {
				accepting[k] = true
			}
		}
		for _, e := range l.G.Edges() {
			ka, kb := nodeKey[e[0]], nodeKey[e[1]]
			if ka == kb {
				loops[ka] = true
				continue
			}
			if ka > kb {
				ka, kb = kb, ka
			}
			edges[[2]string{ka, kb}] = true
		}
		return true
	})
	if err != nil {
		t.Fatalf("reference enumeration: %v", err)
	}
	for k := range accepting {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Filter edge and loop tables down to accepting endpoints, as assembly
	// does.
	for e := range edges {
		if !accepting[e[0]] || !accepting[e[1]] {
			delete(edges, e)
		}
	}
	for k := range loops {
		if !accepting[k] {
			delete(loops, k)
		}
	}
	return keys, edges, loops
}

// compareAgainstReference checks an NGraph node-for-node and edge-for-edge
// against the reference construction.
func compareAgainstReference(t *testing.T, ng *NGraph, keys []string, edges map[[2]string]bool, loops map[string]bool) {
	t.Helper()
	if ng.Size() != len(keys) {
		t.Fatalf("size %d, reference %d", ng.Size(), len(keys))
	}
	for i, k := range keys {
		if got := ng.ViewAt(i).Key(); got != k {
			t.Fatalf("node %d key %q, reference %q", i, got, k)
		}
		if ng.IndexOf(k) != i {
			t.Fatalf("IndexOf(%q) = %d, want %d", k, ng.IndexOf(k), i)
		}
		if ng.IndexOfView(ng.ViewAt(i)) != i {
			t.Fatalf("IndexOfView at %d does not roundtrip", i)
		}
	}
	gotEdges := map[[2]string]bool{}
	for _, e := range ng.Graph().Edges() {
		ka, kb := keys[e[0]], keys[e[1]]
		if ka > kb {
			ka, kb = kb, ka
		}
		gotEdges[[2]string{ka, kb}] = true
	}
	if len(gotEdges) != len(edges) {
		t.Fatalf("edge count %d, reference %d", len(gotEdges), len(edges))
	}
	for e := range edges {
		if !gotEdges[e] {
			t.Fatalf("reference edge %v missing", e)
		}
	}
	gotLoops := map[string]bool{}
	for i := range keys {
		if ng.HasLoop(i) {
			gotLoops[keys[i]] = true
		}
	}
	if len(gotLoops) != len(loops) {
		t.Fatalf("loop count %d, reference %d", len(gotLoops), len(loops))
	}
	for k := range loops {
		if !gotLoops[k] {
			t.Fatalf("reference loop at %q missing", k)
		}
	}
}

// TestBuildMatchesReference runs the interned fast-path Build against the
// string-keyed reference on every decoder archetype: anonymous (DegreeOne,
// EvenCycle) and identifier-dependent (Shatter), over exhaustive labeling
// enumerations.
func TestBuildMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		d    core.Decoder
		enum func() Enumerator
	}{
		{
			"degree-one-exhaustive-n4",
			decoders.DegreeOne().Decoder,
			func() Enumerator {
				return AllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(4)...)
			},
		},
		{
			"even-cycle-certified",
			decoders.EvenCycle().Decoder,
			func() Enumerator {
				ls, err := decoders.EvenCycleFamily(4, 6, 8)
				if err != nil {
					t.Fatal(err)
				}
				return FromLabeled(ls...)
			},
		},
		{
			"shatter-with-ids",
			decoders.Shatter().Decoder,
			func() Enumerator {
				g := graph.MustCycle(4)
				inst := core.Instance{G: g, Prt: graph.DefaultPorts(g), IDs: graph.SequentialIDs(4), NBound: 4}
				return AllLabelings([]string{"0", "1"}, inst)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keys, edges, loops := referenceBuild(t, tc.d, tc.enum())
			ng, err := Build(tc.d, tc.enum())
			if err != nil {
				t.Fatal(err)
			}
			compareAgainstReference(t, ng, keys, edges, loops)

			// The sharded construction must agree bit-for-bit as well.
			sng, err := BuildSharded(tc.d, shardedFromEnum(tc.enum), 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			compareAgainstReference(t, sng, keys, edges, loops)
		})
	}
}

// shardedFromEnum adapts an enumerator factory to a ShardedEnumerator whose
// shards split the stream round-robin.
func shardedFromEnum(mk func() Enumerator) ShardedEnumerator {
	return &sharded{
		seq: mk(),
		shard: func(i, k int) Enumerator {
			return func(yield func(core.Labeled) bool) error {
				j := 0
				return mk()(func(l core.Labeled) bool {
					use := j%k == i
					j++
					if !use {
						return true
					}
					return yield(l)
				})
			}
		},
	}
}
