package nbhd

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"hidinglcp/internal/core"
	"hidinglcp/internal/decoders"
	"hidinglcp/internal/graph"
)

var shardCounts = []int{1, 2, 3, 7, 16}

// fingerprint serializes a labeled instance so that partition properties
// can compare enumeration outputs. It covers everything that
// distinguishes instances: graph structure, ports, identifiers, the bound,
// and the labels.
func fingerprint(t testing.TB, l core.Labeled) string {
	t.Helper()
	g6, err := l.G.Graph6()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	var b strings.Builder
	b.WriteString(g6)
	b.WriteByte('|')
	for v := 0; v < l.G.N(); v++ {
		for _, w := range l.G.Neighbors(v) {
			fmt.Fprintf(&b, "%d:%d,", w, l.Prt.MustPort(v, w))
		}
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "|%v|%d|%q", l.IDs, l.NBound, l.Labels)
	return b.String()
}

// drain collects the fingerprints an enumerator produces, in order.
func drain(t testing.TB, e Enumerator) []string {
	t.Helper()
	var out []string
	if err := e(func(l core.Labeled) bool {
		out = append(out, fingerprint(t, l))
		return true
	}); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

// checkShardPartition verifies the ShardedEnumerator contract: the multiset
// union of shard outputs equals the sequential enumeration with no
// duplicates and no omissions, and each shard preserves the relative
// sequential order — so the deterministic merge (by sequential rank)
// reconstructs the sequential stream exactly.
func checkShardPartition(t *testing.T, se ShardedEnumerator) {
	t.Helper()
	sequential := drain(t, se.Sequential())
	rank := make(map[string]int, len(sequential))
	for i, fp := range sequential {
		if _, dup := rank[fp]; dup {
			t.Fatalf("sequential enumeration repeats an instance: %s", fp)
		}
		rank[fp] = i
	}
	for _, k := range shardCounts {
		shards := se.Shards(k)
		if len(shards) != k && !(k <= 1 && len(shards) == 1) {
			t.Fatalf("Shards(%d) returned %d enumerators", k, len(shards))
		}
		claimed := make(map[string]int)
		total := 0
		for s, shard := range shards {
			last := -1
			for _, fp := range drain(t, shard) {
				r, ok := rank[fp]
				if !ok {
					t.Fatalf("k=%d shard %d produced an instance outside the sequential enumeration", k, s)
				}
				if r <= last {
					t.Fatalf("k=%d shard %d breaks sequential order (rank %d after %d)", k, s, r, last)
				}
				last = r
				if prev, dup := claimed[fp]; dup {
					t.Fatalf("k=%d: instance claimed by both shard %d and shard %d", k, prev, s)
				}
				claimed[fp] = s
				total++
			}
		}
		if total != len(sequential) {
			t.Fatalf("k=%d: shards produced %d instances, sequential has %d", k, total, len(sequential))
		}
	}
}

func smallInstances() []core.Instance {
	return []core.Instance{
		core.NewAnonymousInstance(graph.Path(3)),
		core.NewAnonymousInstance(graph.MustCycle(4)),
		core.NewAnonymousInstance(graph.Star(3)),
	}
}

func TestShardedEnumeratorPartition(t *testing.T) {
	evenFam, err := decoders.EvenCycleFamily(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	melonFam, err := decoders.WatermelonHidingFamily()
	if err != nil {
		t.Fatal(err)
	}
	degFam := decoders.DegOneFamily(3)
	families := []struct {
		name string
		se   ShardedEnumerator
	}{
		{"FromLabeled/even-cycle", ShardedFromLabeled(evenFam...)},
		{"FromLabeled/watermelon", ShardedFromLabeled(melonFam...)},
		{"ProverLabeled/degree-one", ShardedProverLabeled(decoders.DegreeOne(), degFam...)},
		{"AllLabelings", ShardedAllLabelings([]string{"0", "1", "x"}, smallInstances()...)},
		{"AllPortsAllLabelings", ShardedAllPortsAllLabelings([]string{"0", "1"}, smallInstances()[:2]...)},
		{"ShardEnumerator/chain", ShardEnumerator(Chain(
			FromLabeled(evenFam[:6]...),
			AllLabelings([]string{"a", "b"}, core.NewAnonymousInstance(graph.Path(4))),
		))},
		{"ShardedChain", ShardedChain(
			ShardedFromLabeled(evenFam[:6]...),
			ShardedAllLabelings([]string{"a", "b"}, core.NewAnonymousInstance(graph.Path(4))),
		)},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) { checkShardPartition(t, f.se) })
	}
}

func TestShardedEnumeratorEarlyStop(t *testing.T) {
	se := ShardedAllLabelings([]string{"0", "1"}, smallInstances()...)
	for _, k := range []int{1, 3} {
		for s, shard := range se.Shards(k) {
			count := 0
			if err := shard(func(core.Labeled) bool {
				count++
				return count < 2
			}); err != nil {
				t.Fatal(err)
			}
			if count != 2 {
				t.Errorf("k=%d shard %d yielded %d after stop, want 2", k, s, count)
			}
		}
	}
}

// ngEqual reports whether two neighborhood graphs are deep-equal: same
// views in the same canonical order, identical edge structure, identical
// loop sets.
func ngEqual(a, b *NGraph) string {
	if a.Size() != b.Size() || a.EdgeCount() != b.EdgeCount() || a.LoopCount() != b.LoopCount() {
		return fmt.Sprintf("shape (%d,%d,%d) != (%d,%d,%d)",
			a.Size(), a.EdgeCount(), a.LoopCount(), b.Size(), b.EdgeCount(), b.LoopCount())
	}
	for i := 0; i < a.Size(); i++ {
		if a.ViewAt(i).Key() != b.ViewAt(i).Key() {
			return fmt.Sprintf("view %d differs", i)
		}
		if a.HasLoop(i) != b.HasLoop(i) {
			return fmt.Sprintf("loop at %d differs", i)
		}
	}
	if !a.Graph().Equal(b.Graph()) {
		return "edge structure differs"
	}
	return ""
}

// TestBuildShardedDecoderEquivalence: for every decoder in
// internal/decoders, BuildSharded produces a neighborhood graph deep-equal
// to the sequential Build at every shard/worker combination. This is the
// headline equivalence property of the sharded enumeration layer.
func TestBuildShardedDecoderEquivalence(t *testing.T) {
	shatterL1, shatterL2 := decoders.ShatterHidingPair()
	melonFam, err := decoders.WatermelonHidingFamily()
	if err != nil {
		t.Fatal(err)
	}
	evenFam, err := decoders.EvenCycleFamily(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	degInsts := smallInstances()
	cases := []struct {
		name string
		d    core.Decoder
		se   ShardedEnumerator
	}{
		{"trivial2", decoders.Trivial(2).Decoder, ShardedAllLabelings([]string{"0", "1"}, degInsts...)},
		{"trivial3", decoders.Trivial(3).Decoder, ShardedAllLabelings([]string{"0", "1", "2"}, degInsts[:2]...)},
		{"degree-one", decoders.DegreeOne().Decoder, ShardedAllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(3)...)},
		{"degree-one-k3", decoders.DegreeOneK(3).Decoder, ShardedAllLabelings(decoders.DegOneKAlphabet(3), degInsts...)},
		{"even-cycle", decoders.EvenCycle().Decoder, ShardedFromLabeled(evenFam...)},
		{"union", decoders.Union().Decoder, ShardedAllLabelings(decoders.DegOneAlphabet(), decoders.DegOneFamily(3)...)},
		{"shatter", decoders.Shatter().Decoder, ShardedFromLabeled(shatterL1, shatterL2)},
		{"shatter-literal", decoders.ShatterLiteral().Decoder, ShardedFromLabeled(shatterL1, shatterL2)},
		{"watermelon", decoders.Watermelon().Decoder, ShardedFromLabeled(melonFam...)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq, err := Build(c.d, c.se.Sequential())
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				for _, shards := range []int{0, 1, 3, 16} {
					par, err := BuildSharded(c.d, c.se, shards, workers)
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					if diff := ngEqual(seq, par); diff != "" {
						t.Fatalf("shards=%d workers=%d: %s", shards, workers, diff)
					}
				}
			}
		})
	}
}

func TestForEachShardEarlyStopAndErrors(t *testing.T) {
	insts := smallInstances()
	se := ShardedAllLabelings([]string{"0", "1"}, insts...)
	// Early stop: fn returning false halts the drive; the count stays well
	// below the full space.
	var mu sync.Mutex
	count := 0
	if err := ForEachShard(se, 4, 2, func(_ int, _ core.Labeled) bool {
		mu.Lock()
		defer mu.Unlock()
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	total, err := CountInstances(se, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if count >= total {
		t.Errorf("early stop processed %d of %d instances", count, total)
	}
	// Errors: an invalid instance surfaces from whichever shard owns it.
	bad := core.Labeled{Instance: core.Instance{G: graph.Path(2)}, Labels: []string{"a", "b"}}
	if err := ForEachShard(ShardedFromLabeled(bad), 3, 2, func(int, core.Labeled) bool { return true }); err == nil {
		t.Error("invalid instance not reported")
	}
}

func TestCountInstancesMatchesSequential(t *testing.T) {
	se := ShardedAllLabelings([]string{"0", "1", "2"}, smallInstances()...)
	want := len(drain(t, se.Sequential()))
	for _, k := range shardCounts {
		got, err := CountInstances(se, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("k=%d: CountInstances = %d, want %d", k, got, want)
		}
	}
}
