package nbhd

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hidinglcp/internal/cancel"
	"hidinglcp/internal/core"
	"hidinglcp/internal/obs"
)

// ShardedEnumerator describes a labeled-instance space that can be
// deterministically partitioned into disjoint sub-enumerators, so that the
// parallel drivers (BuildSharded, ForEachShard) can feed independent
// workers without a single producer goroutine on the hot path.
//
// The contract, pinned by the property tests in shard_test.go:
//
//   - Sequential() enumerates the whole space in the canonical order the
//     non-sharded enumerator of the same family uses.
//   - Shards(k) splits the space into k enumerators. Every instance of
//     Sequential() is produced by exactly one shard (no duplicates, no
//     omissions), and each shard preserves the relative sequential order.
//   - k <= 1 yields the sequential enumeration as a single shard.
//
// Because the partition is deterministic and results merge through
// order-insensitive set union (see BuildSharded), every consumer is
// bit-identical to its sequential counterpart at any shard/worker count.
type ShardedEnumerator interface {
	Sequential() Enumerator
	Shards(k int) []Enumerator
}

// sharded is the concrete ShardedEnumerator: a canonical sequential order
// plus a constructor for the i-th of k sub-enumerators.
type sharded struct {
	seq   Enumerator
	shard func(i, k int) Enumerator
}

func (s *sharded) Sequential() Enumerator { return s.seq }

func (s *sharded) Shards(k int) []Enumerator {
	if k <= 1 {
		return []Enumerator{s.seq}
	}
	out := make([]Enumerator, k)
	for i := range out {
		out[i] = s.shard(i, k)
	}
	return out
}

// subList returns every k-th element of xs starting at i — the index-residue
// slice used to shard finite instance lists.
func subList[T any](xs []T, i, k int) []T {
	var out []T
	for j := i; j < len(xs); j += k {
		out = append(out, xs[j])
	}
	return out
}

// ShardedFromLabeled is FromLabeled with index-residue sharding: shard i of
// k holds the instances at positions i, i+k, i+2k, ...
func ShardedFromLabeled(insts ...core.Labeled) ShardedEnumerator {
	return &sharded{
		seq:   FromLabeled(insts...),
		shard: func(i, k int) Enumerator { return FromLabeled(subList(insts, i, k)...) },
	}
}

// ShardedProverLabeled is ProverLabeled with index-residue sharding over the
// instance list. Each shard runs the prover only on its own instances, so
// certification cost parallelizes along with view extraction.
func ShardedProverLabeled(s core.Scheme, insts ...core.Instance) ShardedEnumerator {
	return &sharded{
		seq:   ProverLabeled(s, insts...),
		shard: func(i, k int) Enumerator { return ProverLabeled(s, subList(insts, i, k)...) },
	}
}

// ShardedAllLabelings is AllLabelings with the labeling space of every
// instance split by labeling prefix (graph.EnumLabelingsShard): all shards
// walk the instance list in order, each enumerating only its own slice of
// the |alphabet|^n labelings.
func ShardedAllLabelings(alphabet []string, insts ...core.Instance) ShardedEnumerator {
	return &sharded{
		seq:   allLabelingsShard(alphabet, insts, 0, 1),
		shard: func(i, k int) Enumerator { return allLabelingsShard(alphabet, insts, i, k) },
	}
}

// ShardedAllPortsAllLabelings is AllPortsAllLabelings sharded on the
// labeling dimension: every shard ranges over every port assignment but
// enumerates only its own labeling-prefix slice under each.
func ShardedAllPortsAllLabelings(alphabet []string, insts ...core.Instance) ShardedEnumerator {
	return &sharded{
		seq:   allPortsAllLabelingsShard(alphabet, insts, 0, 1),
		shard: func(i, k int) Enumerator { return allPortsAllLabelingsShard(alphabet, insts, i, k) },
	}
}

// ShardedChain concatenates sharded enumerators: the sequential order chains
// the children's sequential orders, and shard i chains the children's i-th
// shards, preserving disjointness and relative order.
func ShardedChain(ses ...ShardedEnumerator) ShardedEnumerator {
	return &sharded{
		seq: func(yield func(core.Labeled) bool) error {
			enums := make([]Enumerator, len(ses))
			for j, se := range ses {
				enums[j] = se.Sequential()
			}
			return Chain(enums...)(yield)
		},
		shard: func(i, k int) Enumerator {
			return func(yield func(core.Labeled) bool) error {
				enums := make([]Enumerator, len(ses))
				for j, se := range ses {
					enums[j] = se.Shards(k)[i]
				}
				return Chain(enums...)(yield)
			}
		},
	}
}

// ShardEnumerator adapts an arbitrary Enumerator: shard i of k walks the
// full enumeration and keeps the instances at sequence positions ≡ i mod k.
// Enumeration work is repeated per shard — use the family-specific sharded
// constructors when available, and this fallback when only the expensive
// per-instance consumption (view extraction, decoding) needs to scale.
func ShardEnumerator(e Enumerator) ShardedEnumerator {
	return &sharded{
		seq: e,
		shard: func(i, k int) Enumerator {
			return func(yield func(core.Labeled) bool) error {
				idx := 0
				return e(func(l core.Labeled) bool {
					mine := idx%k == i
					idx++
					if !mine {
						return true
					}
					return yield(l)
				})
			}
		},
	}
}

// defaultShardCount oversubscribes workers so that the work-stealing drivers
// can smooth uneven shard costs: a worker finishing a cheap shard steals the
// next unclaimed one.
const shardsPerWorker = 4

func resolveShardsWorkers(shards, workers int) (int, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards <= 0 {
		shards = shardsPerWorker * workers
	}
	if workers > shards {
		workers = shards
	}
	return shards, workers
}

// ForEachShard drives the shards of se through a pool of workers. Workers
// claim unstarted shards from a shared counter (work stealing), so fn must
// be safe for concurrent calls from different worker indices; calls with
// the same worker index are sequential. Returning false from fn stops the
// whole drive early. shards <= 0 selects 4 per worker; workers <= 0 selects
// GOMAXPROCS.
//
// When several shards fail, the error of the lowest-numbered failing shard
// is reported, keeping the result independent of scheduling.
func ForEachShard(se ShardedEnumerator, shards, workers int, fn func(worker int, l core.Labeled) bool) error {
	return forEachShard(nil, obs.Scope{}, se, shards, workers, fn)
}

// ForEachShardScoped is ForEachShard reporting into an observability scope:
// it counts completed and stolen shards (a steal is any claim beyond a
// worker's first), advances the scope's progress phase by one per finished
// shard, and emits a per-shard completion event when a tracer is attached.
// A zero Scope makes every instrument call a nil-receiver no-op, so the
// uninstrumented path keeps its exact historical behavior and cost.
func ForEachShardScoped(sc obs.Scope, se ShardedEnumerator, shards, workers int, fn func(worker int, l core.Labeled) bool) error {
	return forEachShard(nil, sc, se, shards, workers, fn)
}

// ForEachShardCtx is ForEachShardScoped under cooperative cancellation.
// When ctx fires, the drive stops at the next per-instance checkpoint —
// the same stop flag every worker already polls between instances, so a
// never-cancelled context adds exactly one armed watcher goroutine and
// nothing to the per-instance hot path (pinned by
// BenchmarkBuildShardedCtx) — and the error wraps context.Cause(ctx). The
// engine layer re-tags such errors as engine.ErrCancelled.
func ForEachShardCtx(ctx context.Context, sc obs.Scope, se ShardedEnumerator, shards, workers int, fn func(worker int, l core.Labeled) bool) error {
	return forEachShard(ctx, sc, se, shards, workers, fn)
}

// forEachShard is the one work-stealing drive beneath the three exported
// variants. A nil ctx is the never-cancelled context (see internal/cancel):
// the bare and Scoped entry points pass nil rather than manufacturing a
// background context, which the ctxflow analyzer forbids in this package.
func forEachShard(ctx context.Context, sc obs.Scope, se ShardedEnumerator, shards, workers int, fn func(worker int, l core.Labeled) bool) error {
	shards, workers = resolveShardsWorkers(shards, workers)
	enums := se.Shards(shards)
	shardsDone := sc.Counter("nbhd.shards.done")
	shardsStolen := sc.Counter("nbhd.shards.stolen")
	sc.Gauge("nbhd.shards.total").Set(int64(len(enums)))
	sc.Gauge("nbhd.workers").Set(int64(workers))
	errs := make([]error, len(enums))
	var next atomic.Int64
	var stop atomic.Bool
	// Cancellation rides the existing stop flag: the watcher arms it when
	// ctx fires, every worker observes it at its next instance (the same
	// checkpoint early-stopping fn returns use), and the release reclaims
	// the watcher before this function returns.
	release := cancel.Watch(ctx, &stop)
	defer release()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			claimed := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= len(enums) || stop.Load() {
					return
				}
				if claimed > 0 {
					shardsStolen.Inc()
				}
				claimed++
				err := enums[i](func(l core.Labeled) bool {
					if stop.Load() {
						return false
					}
					if !fn(w, l) {
						stop.Store(true)
						return false
					}
					return true
				})
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				shardsDone.Inc()
				sc.Prog().Add(1)
				sc.Event("shard.done", fmt.Sprintf("shard %d/%d on worker %d", i+1, len(enums), w))
				if sc.EventsEnabled() {
					// Per-shard, not per-instance: the event log sees O(shards)
					// appends for a build, never the hot enumeration path.
					sc.EmitEvent(obs.LevelDebug, "nbhd.shard.done",
						obs.Fi("shard", int64(i)),
						obs.Fi("worker", int64(w)),
						obs.Fi("stolen", int64(claimed-1)))
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := cancel.Err(ctx, "sharded enumeration"); err != nil {
		sc.Counter("nbhd.shards.cancelled").Inc()
		if sc.EventsEnabled() {
			sc.EmitEvent(obs.LevelWarn, "nbhd.enumeration.cancelled",
				obs.Fi("shards", int64(len(enums))))
		}
		return err
	}
	return nil
}

// CountInstances drains the sharded enumerator through ForEachShard and
// returns the number of instances produced — the raw enumeration-throughput
// probe used by BenchmarkShardedEnumeration.
func CountInstances(se ShardedEnumerator, shards, workers int) (int, error) {
	var n atomic.Int64
	err := ForEachShard(se, shards, workers, func(int, core.Labeled) bool {
		n.Add(1)
		return true
	})
	return int(n.Load()), err
}
