//go:build !race

package nbhd

import (
	"testing"

	"hidinglcp/internal/view"
)

// TestPairSetSteadyStateAllocs pins the CSR edge accumulator at zero
// allocations once the membership table has grown to the working-set size —
// the property that lets the builders absorb millions of duplicate
// compatibility edges without touching the heap. The race detector
// instruments allocations, so this runs only in plain builds.
func TestPairSetSteadyStateAllocs(t *testing.T) {
	var s pairSet
	for a := view.Handle(0); a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			s.add(packPair(a, b))
		}
	}
	want := s.len()
	if n := testing.AllocsPerRun(100, func() {
		for a := view.Handle(0); a < 40; a++ {
			for b := a + 1; b < 40; b++ {
				s.add(packPair(a, b))
			}
		}
	}); n != 0 {
		t.Errorf("re-adding present pairs allocates %.1f objects per sweep, want 0", n)
	}
	if s.len() != want {
		t.Errorf("pair count changed across duplicate sweeps: %d -> %d", want, s.len())
	}
}
