package nbhd

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hidinglcp/internal/core"
	"hidinglcp/internal/graph"
	"hidinglcp/internal/view"
)

// appendLenPrefixed appends s with a varint length prefix, making
// concatenations of several strings unambiguous.
func appendLenPrefixed(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// builder is one goroutine's accumulator for the Lemma 3.1 construction,
// running on the canonical-key fast path: views are deduplicated through a
// shared view.Interner into dense handles, the accepting and loop sets are
// handle-indexed bool slices instead of map[string] tables, decoder calls
// go through a shared core.MemoDecoder (one inner Decide per view class
// across all workers), and per-instance view extraction reuses templates
// whenever the enumerator varies only the labeling of a fixed instance —
// the AllLabelings/ShardedAllLabelings hot case.
//
// The interner and memo are shared across builders; everything else is
// private to one goroutine.
type builder struct {
	md    *core.MemoDecoder
	in    *view.Interner
	where string
	ex    view.Extractor
	anon  bool
	r     int

	accepting []bool
	loops     []bool
	edges     pairSet
	handles   []view.Handle

	// arena backs the instantiated candidate views: the interner may retain
	// any of them as a class representative, so they are slab-allocated and
	// released wholesale with the builder instead of one heap object per
	// template-memo miss.
	arena view.Arena
	// scratch probes the interner before any arena allocation: most
	// template-memo misses are still interner hits (another labeling or
	// another worker saw the class first), and for those the lookup view
	// never needs to outlive the absorb call.
	scratch view.View

	// Single-entry template cache, keyed on the identity of the instance's
	// label-independent parts.
	tG      *graph.Graph
	tPrt    *graph.Ports
	tNBound int
	tIDs    *int
	tpl     []*view.Template
	tEdges  [][2]int
	// tMemo[v] maps node v's host-labels key to the interned handle of its
	// view, so repeat neighborhood labelings of a cached instance skip
	// instantiation, canonicalization, and interning entirely.
	tMemo  []map[string]view.Handle
	keyBuf []byte

	// Plain (non-atomic) tallies, private to the owning goroutine; the
	// parallel driver reads them only after its WaitGroup barrier.
	nInstances      int64 // labeled instances absorbed
	nViews          int64 // views instantiated + interned (template-memo misses)
	nLookupHits     int64 // scratch-probe interner hits (no arena copy needed)
	nTmplMemoHits   int64 // views served from the per-node label-key memo
	nTemplatesBuilt int64 // template cache rebuilds (instance identity changed)
}

func newBuilder(d core.Decoder, md *core.MemoDecoder, in *view.Interner, where string) *builder {
	return &builder{
		md:    md,
		in:    in,
		where: where,
		anon:  d.Anonymous(),
		r:     d.Rounds(),
	}
}

func (b *builder) grow(n int) {
	if n > len(b.accepting) {
		b.accepting = append(b.accepting, make([]bool, n-len(b.accepting))...)
		b.loops = append(b.loops, make([]bool, n-len(b.loops))...)
	}
}

// absorb folds one labeled instance into the builder.
func (b *builder) absorb(l core.Labeled) {
	b.nInstances++
	ids := l.IDs
	if b.anon {
		// Anonymous decoders are keyed and decided on anonymized views;
		// extracting without identifiers produces them directly, without
		// the legacy per-view Anonymize clone.
		ids = nil
	}
	var idsHead *int
	if len(ids) > 0 {
		idsHead = &ids[0]
	}
	if b.tpl == nil || b.tG != l.G || b.tPrt != l.Prt || b.tNBound != l.NBound || b.tIDs != idsHead {
		n := l.G.N()
		b.tpl = b.tpl[:0]
		for v := 0; v < n; v++ {
			t, err := b.ex.Template(l.G, l.Prt, ids, l.NBound, v, b.r)
			if err != nil {
				// Enumerators produce valid instances by construction.
				panic(fmt.Sprintf("%s: invalid instance from enumerator: %v", b.where, fmt.Errorf("node %d: %w", v, err)))
			}
			b.tpl = append(b.tpl, t)
		}
		b.tEdges = l.G.Edges()
		b.tG, b.tPrt, b.tNBound, b.tIDs = l.G, l.Prt, l.NBound, idsHead
		b.nTemplatesBuilt++
		b.tMemo = make([]map[string]view.Handle, n)
		for v := range b.tMemo {
			b.tMemo[v] = make(map[string]view.Handle)
		}
	}

	handles := b.handles[:0]
	for v := range b.tpl {
		t := b.tpl[v]
		kb := b.keyBuf[:0]
		for _, w := range t.Hosts() {
			kb = appendLenPrefixed(kb, l.Labels[w])
		}
		b.keyBuf = kb
		if h, ok := b.tMemo[v][string(kb)]; ok {
			// The identical (template, neighborhood labels) pair was already
			// interned and decided by this builder.
			b.nTmplMemoHits++
			handles = append(handles, h)
			continue
		}
		b.nViews++
		// Probe with the scratch view first: on a hit (the common case) no
		// durable view is needed at all. Only a genuinely new class — or a
		// race where another worker interns it between Lookup and Intern,
		// which Intern resolves — pays for an arena-backed copy the interner
		// may retain as representative. DecideInterned never retains the
		// view (decoders are pure), so deciding on the scratch is safe.
		mu := t.InstantiateInto(&b.scratch, l.Labels)
		h, ok := b.in.Lookup(mu)
		if ok {
			b.nLookupHits++
		} else {
			mu = t.InstantiateIn(&b.arena, l.Labels)
			h = b.in.Intern(mu)
		}
		b.tMemo[v][string(kb)] = h
		handles = append(handles, h)
		b.grow(int(h) + 1)
		if !b.accepting[h] && b.md.DecideInterned(h, mu) {
			b.accepting[h] = true
		}
	}
	b.handles = handles

	for _, e := range b.tEdges {
		ha, hb := handles[e[0]], handles[e[1]]
		if ha == hb {
			b.loops[ha] = true
			continue
		}
		b.edges.add(packPair(ha, hb))
	}
}

// mergeBuilders unions the per-worker accepting/loop sets and CSR edge
// streams. Handles are global (one shared interner), so the union is
// positional; the merged edge pairs come back sorted and deduplicated
// (mergePairs).
func mergeBuilders(parts []*builder) (accepting, loops []bool, edges []uint64) {
	maxLen := 0
	for _, p := range parts {
		if len(p.accepting) > maxLen {
			maxLen = len(p.accepting)
		}
	}
	accepting = make([]bool, maxLen)
	loops = make([]bool, maxLen)
	for _, p := range parts {
		for h, a := range p.accepting {
			if a {
				accepting[h] = true
			}
		}
		for h, lo := range p.loops {
			if lo {
				loops[h] = true
			}
		}
	}
	return accepting, loops, mergePairs(parts)
}

// assemble keeps only accepting views and builds the NGraph in the
// deterministic canonical (legacy string) key-sorted node order — handle
// values depend on intern order and never leak into the output, so the
// result is bit-identical to the historical string-keyed construction.
// edges is the merged CSR pair stream: distinct packed handle pairs in
// ascending order (mergePairs). Distinct handle pairs map to distinct node
// pairs (the handle→index map is injective), so no HasEdge filtering is
// needed.
func assemble(in *view.Interner, accepting, loops []bool, edges []uint64) (*NGraph, error) {
	type node struct {
		h   view.Handle
		key string
	}
	nodes := make([]node, 0, len(accepting))
	for h, a := range accepting {
		if a {
			hh := view.Handle(h)
			nodes = append(nodes, node{hh, in.ViewOf(hh).Key()})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].key < nodes[j].key })

	ng := &NGraph{
		views: make([]*view.View, len(nodes)),
		index: make(map[string]int, len(nodes)),
		in:    in,
		loops: make(map[int]bool),
	}
	idx := make([]int, in.Len())
	for i := range idx {
		idx[i] = -1
	}
	for i, nd := range nodes {
		ng.views[i] = in.ViewOf(nd.h)
		ng.index[nd.key] = i
		idx[nd.h] = i
	}
	ng.hidx = idx
	ng.g = graph.New(len(nodes))
	for _, e := range edges {
		a, b := unpackPair(e)
		ia, ib := idx[a], idx[b]
		if ia < 0 || ib < 0 {
			continue // an endpoint never accepts anywhere
		}
		if err := ng.g.AddEdge(ia, ib); err != nil {
			return nil, fmt.Errorf("adding compatibility edge: %w", err)
		}
	}
	for h, lo := range loops {
		if lo {
			if i := idx[h]; i >= 0 {
				ng.loops[i] = true
			}
		}
	}
	return ng, nil
}
