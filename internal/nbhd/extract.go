package nbhd

import (
	"fmt"

	"hidinglcp/internal/core"
	"hidinglcp/internal/view"
)

// Extractor is the extraction decoder D' of Lemma 3.2: from a proper
// k-coloring of V(D, n) it deterministically assigns each accepting view a
// color, thereby extracting a proper k-coloring of any instance that D
// accepts everywhere (provided the instance's views all appear in the
// enumerated slice).
type Extractor struct {
	ng        *NGraph
	coloring  []int
	k         int
	anonymous bool
}

// NewExtractor builds D' from the canonical k-coloring of ng. It fails
// exactly when V(D, n) is not k-colorable — which, by Lemma 3.2, is the
// hiding case.
func NewExtractor(ng *NGraph, k int, anonymous bool) (*Extractor, error) {
	coloring, ok := ng.KColoring(k)
	if !ok {
		return nil, fmt.Errorf("neighborhood graph is not %d-colorable: decoder is hiding at this size", k)
	}
	return &Extractor{ng: ng, coloring: coloring, k: k, anonymous: anonymous}, nil
}

// Color returns the extracted color of one view. It fails if the view is
// not an accepting view of the slice.
func (e *Extractor) Color(mu *view.View) (int, error) {
	if e.anonymous {
		mu = mu.Anonymize()
	}
	i := e.ng.IndexOfView(mu)
	if i < 0 {
		return 0, fmt.Errorf("view not in the accepting neighborhood graph")
	}
	return e.coloring[i], nil
}

// ExtractWitness runs D' at every node of the labeled instance (with
// verification radius r) and returns the extracted coloring.
func (e *Extractor) ExtractWitness(l core.Labeled, r int) ([]int, error) {
	views, err := l.Views(r)
	if err != nil {
		return nil, err
	}
	witness := make([]int, len(views))
	for v, mu := range views {
		c, err := e.Color(mu)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", v, err)
		}
		witness[v] = c
	}
	return witness, nil
}

// ConflictReport quantifies how much of a k-coloring is hidden on one
// accepted instance: the minimum, over ALL view-consistent color
// assignments (any map from distinct views to [k], the best any r-round
// extraction decoder could do on this instance), of the number of
// monochromatic edges and of the number of nodes incident to a
// monochromatic edge.
type ConflictReport struct {
	// DistinctViews is the number of distinct views in the instance.
	DistinctViews int
	// MinBadEdges is the minimum achievable number of monochromatic edges.
	MinBadEdges int
	// MinFailNodes is the minimum achievable number of nodes incident to a
	// monochromatic edge.
	MinFailNodes int
	// FailFraction is MinFailNodes / n — the paper's proposed quantified
	// hiding metric (Section 2.4 discussion).
	FailFraction float64
}

// MinExtractionConflicts computes the ConflictReport of decoder d on labeled
// instance l for k colors, by brute force over the k^(#distinct views)
// view-consistent assignments. It is the mechanical counterpart of "no
// decoder can extract a coloring here": MinFailNodes > 0 proves every
// decoder fails somewhere on this instance.
func MinExtractionConflicts(d core.Decoder, l core.Labeled, k int) (ConflictReport, error) {
	views, err := l.Views(d.Rounds())
	if err != nil {
		return ConflictReport{}, err
	}
	index := make(map[string]int)
	nodeClass := make([]int, len(views))
	for v, mu := range views {
		if d.Anonymous() {
			mu = mu.Anonymize()
		}
		// Binary keys partition views exactly as the legacy string keys, so
		// the class numbering (first-occurrence order) is unchanged.
		key := string(mu.BinKey())
		if _, ok := index[key]; !ok {
			index[key] = len(index)
		}
		nodeClass[v] = index[key]
	}
	m := len(index)
	// The search is k^m; refuse absurd inputs instead of hanging.
	cost := 1.0
	for i := 0; i < m; i++ {
		cost *= float64(k)
		if cost > 2e7 {
			return ConflictReport{}, fmt.Errorf("conflict search needs %d^%d assignments; instance has too many distinct views", k, m)
		}
	}
	report := ConflictReport{
		DistinctViews: m,
		MinBadEdges:   l.G.M() + 1,
		MinFailNodes:  l.G.N() + 1,
	}
	assign := make([]int, m)
	edges := l.G.Edges()
	var rec func(i int)
	rec = func(i int) {
		if i < m {
			for c := 0; c < k; c++ {
				assign[i] = c
				rec(i + 1)
			}
			return
		}
		badEdges := 0
		failNode := make(map[int]bool)
		for _, e := range edges {
			if assign[nodeClass[e[0]]] == assign[nodeClass[e[1]]] {
				badEdges++
				failNode[e[0]] = true
				failNode[e[1]] = true
			}
		}
		if badEdges < report.MinBadEdges {
			report.MinBadEdges = badEdges
		}
		if len(failNode) < report.MinFailNodes {
			report.MinFailNodes = len(failNode)
		}
	}
	rec(0)
	if l.G.N() > 0 {
		report.FailFraction = float64(report.MinFailNodes) / float64(l.G.N())
	}
	return report, nil
}
